// Command hammer-workload generates workload artifacts: SmallBank
// transaction files (the client's preparation-phase output, §III-B1),
// control sequences shaped after the synthetic application datasets, and
// the Fig 1 temporal-distribution series.
//
// Usage:
//
//	hammer-workload -count 10000 -out workload.jsonl
//	hammer-workload -control nfts -total 50000 -out control.json
//	hammer-workload -fig1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hammer"
	"hammer/internal/experiments"
	"hammer/internal/viz"
	"hammer/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammer-workload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		count    = flag.Int("count", 10000, "transactions to generate")
		accounts = flag.Int("accounts", 5000, "SmallBank account population")
		seed     = flag.Int64("seed", 7, "random seed")
		out      = flag.String("out", "workload.jsonl", "output file")
		control  = flag.String("control", "", "emit a control sequence shaped after a dataset: defi|sandbox|nfts")
		total    = flag.Int("total", 10000, "total transactions for -control")
		fig1     = flag.Bool("fig1", false, "print the Fig 1 temporal distributions and exit")
	)
	flag.Parse()

	if *fig1 {
		r, err := experiments.Fig1(experiments.Options{Seed: *seed})
		if err != nil {
			return err
		}
		for _, name := range []string{"defi", "sandbox", "nfts"} {
			fmt.Printf("%-8s %7d transactions over 300 h\n", name, r.Totals[name])
			viz.LineChart(os.Stdout, name+" hourly transactions", []viz.Series{{Name: name, Y: r.Series[name]}}, 72, 10)
		}
		return nil
	}

	if *control != "" {
		var series []float64
		switch *control {
		case "defi":
			series = hammer.DeFiLog(*seed).HourlySeries()
		case "sandbox":
			series = hammer.SandboxLog(*seed).HourlySeries()
		case "nfts":
			series = hammer.NFTsLog(*seed).HourlySeries()
		default:
			return fmt.Errorf("unknown dataset %q", *control)
		}
		// One dataset hour maps to one evaluation second, preserving shape.
		cs := hammer.LoadFromSeries(series, time.Second, *total)
		raw, err := json.MarshalIndent(cs, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d slices, %d transactions, peak %.0f tx/s\n",
			*out, len(cs.Counts), cs.Total(), cs.PeakRate())
		return nil
	}

	profile := hammer.DefaultProfile()
	profile.Accounts = *accounts
	profile.Seed = *seed
	gen, err := workload.NewGenerator(profile)
	if err != nil {
		return err
	}
	txs := gen.Batch(*count, "client-0", "server-0")
	if err := workload.WriteFile(*out, txs); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d SmallBank transactions over %d accounts\n", *out, len(txs), *accounts)
	return nil
}
