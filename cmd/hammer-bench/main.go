// Command hammer-bench regenerates the paper's system experiments: Fig 1
// (workload temporal distributions), Fig 6 (chain comparison), Fig 7
// (framework comparison), Fig 8 (signing strategies), Fig 9 (task
// processing vs batch testing), Fig 10 (concurrency sweeps), the §V-C
// correctness validation and the distributed-matching microbenchmark. Each
// experiment prints its rows, renders a terminal chart, and exports a CSV
// under -out. Sweeps run through the experiment harness: -parallel bounds
// how many independent simulations execute concurrently (results are
// identical at any worker count), and every run completion prints a
// progress line.
//
// Usage:
//
//	hammer-bench -exp all
//	hammer-bench -exp fig9 -out results/
//	hammer-bench -exp fig6 -quick -parallel 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"hammer/internal/experiments"
	"hammer/internal/harness"
	"hammer/internal/monitor"
	"hammer/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammer-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1|fig6|fig7|fig8|fig9|fig10|correctness|distributed|all")
		quick    = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		outDir   = flag.String("out", "results", "directory for CSV export")
		seed     = flag.Int64("seed", 7, "random seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiment sweeps (results are identical at any value)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	reg := monitor.NewRegistry()
	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed
	opts.Workers = *parallel
	opts.OnProgress = progressPrinter(reg)

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	ran := 0
	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"fig1", func() error { return runFig1(opts, *outDir) }},
		{"fig6", func() error { return runFig6(ctx, opts, *outDir) }},
		{"fig7", func() error { return runFig7(ctx, opts, *outDir) }},
		{"fig8", func() error { return runFig8(opts, *outDir) }},
		{"fig9", func() error { return runFig9(opts, *outDir) }},
		{"fig10", func() error { return runFig10(ctx, opts, *outDir) }},
		{"correctness", func() error { return runCorrectness(ctx, opts) }},
		{"distributed", func() error { return runDistributed(ctx, opts, *outDir) }},
	}
	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		fmt.Printf("=== %s ===\n", s.name)
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if done := reg.Counter("harness/runs_completed").Value(); done > 0 {
		fmt.Printf("harness: %.0f runs completed, %.0f failed (workers=%d)\n",
			done, reg.Counter("harness/runs_failed").Value(), *parallel)
	}
	return nil
}

// progressPrinter emits one line per completed harness run and mirrors the
// totals into monitor counters so the final summary (and any scraper) sees
// the sweep's run counts.
func progressPrinter(reg *monitor.Registry) func(harness.Progress) {
	return func(p harness.Progress) {
		reg.Counter("harness/runs_completed").Inc()
		status := "ok"
		if p.Err != nil {
			reg.Counter("harness/runs_failed").Inc()
			status = "FAILED"
		}
		fmt.Printf("  [%d/%d] %-40s %s (%v)\n", p.Completed, p.Total, p.Name, status, p.Elapsed.Round(time.Millisecond))
	}
}

func runFig1(opts experiments.Options, outDir string) error {
	r, err := experiments.Fig1(opts)
	if err != nil {
		return err
	}
	for _, name := range []string{"defi", "sandbox", "nfts"} {
		fmt.Printf("%-8s %7d transactions over 300 h\n", name, r.Totals[name])
	}
	viz.LineChart(os.Stdout, "hourly transactions (normalised overlay)", fig1Overlay(r), 72, 14)
	header, rows := experiments.Fig1CSV(r)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig1_temporal_distribution.csv", Header: header, Rows: rows})
}

// fig1Overlay rescales each series to [0,1] so the three applications
// overlay on one chart despite their 100× volume differences.
func fig1Overlay(r *experiments.Fig1Result) []viz.Series {
	var out []viz.Series
	for _, name := range []string{"defi", "sandbox", "nfts"} {
		src := r.Series[name]
		var max float64
		for _, v := range src {
			if v > max {
				max = v
			}
		}
		scaled := make([]float64, len(src))
		for i, v := range src {
			if max > 0 {
				scaled[i] = v / max
			}
		}
		out = append(out, viz.Series{Name: name, Y: scaled})
	}
	return out
}

func runFig6(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Fig6(ctx, opts)
	if err != nil {
		return err
	}
	var groups []viz.BarGroup
	for _, r := range rows {
		fmt.Println(r)
		groups = append(groups, viz.BarGroup{Label: r.Chain, Values: []float64{r.Throughput}})
	}
	viz.BarChart(os.Stdout, "peak throughput (TPS)", []string{""}, groups, 48)
	header, csvRows := experiments.Fig6CSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig6_chain_comparison.csv", Header: header, Rows: csvRows})
}

func runFig7(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Fig7(ctx, opts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	header, csvRows := experiments.Fig7CSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig7_framework_comparison.csv", Header: header, Rows: csvRows})
}

func runFig8(opts experiments.Options, outDir string) error {
	fmt.Println("measured on this machine:")
	rows, err := experiments.Fig8(opts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	header, csvRows := experiments.Fig8CSV(rows)

	fmt.Println("simulated 8-worker testbed (per-signature cost calibrated on this machine):")
	simRows, err := experiments.Fig8Simulated(opts, 8, 0)
	if err != nil {
		return err
	}
	for _, r := range simRows {
		fmt.Println(" ", r)
	}
	simHeader, simCSV := experiments.Fig8SimCSV(simRows)
	return viz.Export(os.Stdout, outDir,
		viz.Dataset{Name: "fig8_signing_measured.csv", Header: header, Rows: csvRows},
		viz.Dataset{Name: "fig8_signing_simulated.csv", Header: simHeader, Rows: simCSV})
}

func runFig9(opts experiments.Options, outDir string) error {
	rows, err := experiments.Fig9(opts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	header, csvRows := experiments.Fig9CSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig9_task_processing.csv", Header: header, Rows: csvRows})
}

func runFig10(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Fig10(ctx, opts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	header, csvRows := experiments.Fig10CSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig10_concurrency.csv", Header: header, Rows: csvRows})
}

func runDistributed(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Distributed(ctx, opts, []int{1, 2, 4, 8}, 10000)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	header, csvRows := experiments.DistributedCSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "distributed_matching.csv", Header: header, Rows: csvRows})
}

func runCorrectness(ctx context.Context, opts experiments.Options) error {
	res, err := experiments.Correctness(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Println(res)
	if !res.Audit.Consistent() {
		return fmt.Errorf("framework statistics do not match the node audit log")
	}
	fmt.Println("framework statistics match the node-side commit log exactly")
	return nil
}
