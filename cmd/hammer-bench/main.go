// Command hammer-bench regenerates the paper's system experiments: Fig 1
// (workload temporal distributions), Fig 6 (chain comparison), Fig 7
// (framework comparison), Fig 8 (signing strategies), Fig 9 (task
// processing vs batch testing), Fig 10 (concurrency sweeps), the §V-C
// correctness validation and the distributed-matching microbenchmark. Each
// experiment prints its rows, renders a terminal chart, and exports a CSV
// under -out. Sweeps run through the experiment harness: -parallel bounds
// how many independent simulations execute concurrently (results are
// identical at any worker count), and every run completion prints a
// progress line.
//
// Usage:
//
//	hammer-bench -exp all
//	hammer-bench -exp fig9 -out results/
//	hammer-bench -exp fig6 -quick -parallel 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"hammer/internal/experiments"
	"hammer/internal/harness"
	"hammer/internal/monitor"
	"hammer/internal/perf"
	"hammer/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammer-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp         = flag.String("exp", "all", "experiment: fig1|fig6|fig7|fig8|fig9|fig10|correctness|distributed|all, plus faults, families, schedbench, conformance, loadplane, blockbench and storebench (explicit only); 'list' prints them all")
		quick       = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		outDir      = flag.String("out", "results", "directory for CSV export")
		seed        = flag.Int64("seed", 7, "random seed")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiment sweeps (results are identical at any value)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchjson   = flag.Bool("benchjson", false, "record per-experiment TPS/wall-clock/allocs into a numbered BENCH_<n>.json under -out")
		events      = flag.Int("events", 1_000_000, "event count for -exp schedbench")
		schedShards = flag.Int("sched-shards", 0, "run simulations on the sharded event engine with N timer-wheel shards (0 = single wheel; results are identical)")
		lpListen    = flag.String("lp-listen", "", "serve the load-plane coordinator at this address for external hammer-worker processes (-exp loadplane)")
		lpWorkers   = flag.Int("lp-workers", 2, "load-plane partition count: expected worker processes with -lp-listen, in-process shards otherwise")
		lpClients   = flag.Int("lp-clients", 0, "run the canonical load-plane spec at this population and write loadplane_merged.csv (0 = scale sweep)")
		lpSeconds   = flag.Int("lp-seconds", 0, "virtual duration of the canonical load-plane spec (0 = the experiment default)")
		lpBench     = flag.Bool("lp-bench", false, "measure load-plane injection rate and heap at 100k/1M clients across 1/2/4 shards (-exp loadplane)")
		stateKind   = flag.String("state", "mem", "world-state backend every SUT run mounts: mem (in-RAM map) | paged (disk-backed paged store); results are byte-identical")
		stateCache  = flag.Int("state-cache-mb", 0, "page-cache budget per paged state instance in MiB (0 = store default, 64)")
		stateDir    = flag.String("state-dir", "", "directory for paged-state files (default: OS temp); run files are removed afterwards")
		stateSnap   = flag.String("state-snapshot", "", "storebench snapshot path: load the population from it when it exists, save it there otherwise (-exp storebench)")
		sbAccounts  = flag.Int("sb-accounts", 1_000_000, "paged-store population for -exp storebench")
		sbOps       = flag.Int("sb-ops", 1_000_000, "operations per measured storebench phase")
		sbBaseline  = flag.Int("sb-baseline", 1_000_000, "in-RAM baseline population for -exp storebench (0 skips the baseline)")
		crossRate   = flag.Float64("cross-rate", 0, "cross-shard transfer fraction for -exp families (0 = the 0.2 default)")
	)
	flag.Parse()
	if *events < 1 {
		return fmt.Errorf("-events must be positive, got %d", *events)
	}
	if *schedShards < 0 {
		return fmt.Errorf("-sched-shards must be >= 0, got %d", *schedShards)
	}
	if err := experiments.ValidateStateBackend(*stateKind); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprofile != "" {
		stopProf, err := perf.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer stopProf()
	}
	var traj *perf.Trajectory
	if *benchjson {
		traj = perf.NewTrajectory("hammer-bench", os.Args[1:])
	}

	reg := monitor.NewRegistry()
	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed
	opts.Workers = *parallel
	opts.SchedShards = *schedShards
	opts.StateBackend = *stateKind
	opts.StateCacheMB = *stateCache
	opts.StateDir = *stateDir
	opts.CrossShardRate = *crossRate
	opts.States = experiments.NewStateRuntime()
	defer opts.States.Close()
	opts.OnProgress = progressPrinter(reg)

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	// wantOnly matches experiments that must be asked for by name —
	// schedbench is a microbenchmark of the framework itself, not a paper
	// figure, so "all" does not include it.
	wantOnly := func(name string) bool {
		for _, s := range selected {
			if s == name {
				return true
			}
		}
		return false
	}

	ran := 0
	// Each step returns its headline throughput (0 when it has none) so the
	// -benchjson trajectory can track TPS alongside wall-clock and allocs.
	type step struct {
		name string
		fn   func() (float64, error)
	}
	steps := []step{
		{"fig1", func() (float64, error) { return 0, runFig1(opts, *outDir) }},
		{"fig6", func() (float64, error) { return runFig6(ctx, opts, *outDir) }},
		{"fig7", func() (float64, error) { return runFig7(ctx, opts, *outDir) }},
		{"fig8", func() (float64, error) { return 0, runFig8(opts, *outDir) }},
		{"fig9", func() (float64, error) { return 0, runFig9(opts, *outDir) }},
		{"fig10", func() (float64, error) { return runFig10(ctx, opts, *outDir) }},
		{"correctness", func() (float64, error) { return 0, runCorrectness(ctx, opts) }},
		{"distributed", func() (float64, error) { return 0, runDistributed(ctx, opts, *outDir) }},
	}
	// Experiments that must be asked for by name: faults is a resilience
	// study, schedbench a microbenchmark of the framework itself — neither
	// is a paper figure, so "all" includes neither.
	explicit := []step{
		{"faults", func() (float64, error) { return runFaults(ctx, opts, *outDir) }},
		{"families", func() (float64, error) { return runFamilies(ctx, opts, *outDir) }},
		{"schedbench", func() (float64, error) { return 0, runSchedBench(*outDir, traj, *events, *schedShards) }},
		{"conformance", func() (float64, error) { return 0, runConformance(ctx, opts, *outDir) }},
		{"loadplane", func() (float64, error) {
			return runLoadPlane(ctx, opts, *outDir, traj,
				lpFlags{listen: *lpListen, workers: *lpWorkers, clients: *lpClients, seconds: *lpSeconds, bench: *lpBench})
		}},
		{"blockbench", func() (float64, error) { return runBlockbench(ctx, opts, *outDir) }},
		{"storebench", func() (float64, error) {
			return runStoreBench(ctx, *outDir, traj, experiments.StoreBenchOptions{
				Accounts: *sbAccounts, CacheMB: *stateCache, Ops: *sbOps,
				Dir: *stateDir, Snapshot: *stateSnap, BaselineAccounts: *sbBaseline, Seed: *seed,
			})
		}},
	}

	if wantOnly("list") {
		fmt.Println("experiments (-exp name, comma-separated; 'all' runs the paper figures):")
		for _, s := range steps {
			fmt.Printf("  %s\n", s.name)
		}
		for _, s := range explicit {
			fmt.Printf("  %s (explicit only)\n", s.name)
		}
		return nil
	}

	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		fmt.Printf("=== %s ===\n", s.name)
		var tps float64
		sample, err := perf.Measure(s.name, func() error {
			var err error
			tps, err = s.fn()
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		sample.TPS = tps
		if traj != nil {
			traj.Add(sample)
		}
		fmt.Println()
		ran++
	}
	for _, s := range explicit {
		if !wantOnly(s.name) {
			continue
		}
		fmt.Printf("=== %s ===\n", s.name)
		var tps float64
		sample, err := perf.Measure(s.name, func() error {
			var err error
			tps, err = s.fn()
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		sample.TPS = tps
		if traj != nil {
			traj.Add(sample)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		known := []string{"all", "list"}
		for _, s := range steps {
			known = append(known, s.name)
		}
		for _, s := range explicit {
			known = append(known, s.name)
		}
		if hint := experiments.Suggest(*exp, known); hint != "" {
			return fmt.Errorf("unknown experiment %q (did you mean %q? -exp list shows all)", *exp, hint)
		}
		return fmt.Errorf("unknown experiment %q (-exp list shows all)", *exp)
	}
	if done := reg.Counter("harness/runs_completed").Value(); done > 0 {
		fmt.Printf("harness: %.0f runs completed, %.0f failed (workers=%d)\n",
			done, reg.Counter("harness/runs_failed").Value(), *parallel)
	}
	if traj != nil {
		path, err := perf.NextPath(*outDir)
		if err != nil {
			return err
		}
		if err := perf.WriteTrajectory(path, traj); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if *memprofile != "" {
		if err := perf.WriteHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	return nil
}

// runFaults runs the chaos resilience experiment: every chain through the
// crash-and-heal and partition-and-heal scenarios, reporting the TPS dip,
// the recovery time, and how many transactions the driver's retries saved.
func runFaults(ctx context.Context, opts experiments.Options, outDir string) (float64, error) {
	rows, err := experiments.Faults(ctx, opts)
	if err != nil {
		return 0, err
	}
	var peak float64
	for _, r := range rows {
		fmt.Println(r)
		if r.BaselineTPS > peak {
			peak = r.BaselineTPS
		}
	}
	faultSec := opts.MeasureSeconds / 3
	healSec := 2 * opts.MeasureSeconds / 3
	fmt.Printf("fault injected at t=%ds, healed at t=%ds\n", faultSec, healSec)
	header, csvRows := experiments.FaultsCSV(rows)
	tlHeader, tlRows := experiments.FaultsTimelineCSV(rows)
	return peak, viz.Export(os.Stdout, outDir,
		viz.Dataset{Name: "faults_resilience.csv", Header: header, Rows: csvRows},
		viz.Dataset{Name: "faults_timeline.csv", Header: tlHeader, Rows: tlRows})
}

// runFamilies sweeps the two consensus families along their scale axis —
// Meepo across shard counts, the BFT committee across committee sizes — with
// a healthy, a crash-and-heal, and an N-way-partition scenario per point.
func runFamilies(ctx context.Context, opts experiments.Options, outDir string) (float64, error) {
	rows, err := experiments.Families(ctx, opts)
	if err != nil {
		return 0, err
	}
	var peak float64
	for _, r := range rows {
		fmt.Println(r)
		if r.Throughput > peak {
			peak = r.Throughput
		}
	}
	faultSec := opts.MeasureSeconds / 3
	healSec := 2 * opts.MeasureSeconds / 3
	fmt.Printf("fault scenarios injected at t=%ds, healed at t=%ds\n", faultSec, healSec)
	header, csvRows := experiments.FamiliesCSV(rows)
	tlHeader, tlRows := experiments.FamiliesTimelineCSV(rows)
	return peak, viz.Export(os.Stdout, outDir,
		viz.Dataset{Name: "families.csv", Header: header, Rows: csvRows},
		viz.Dataset{Name: "families_timeline.csv", Header: tlHeader, Rows: tlRows})
}

// runConformance sweeps every chain through the invariant and conformance
// suites (semantic invariants, bitwise determinism, serial replay, harness
// worker independence, and the scheduler differential oracle) and fails if
// any suite fails.
func runConformance(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Conformance(ctx, opts)
	if err != nil {
		return err
	}
	failed := 0
	for _, r := range rows {
		fmt.Println(r)
		if !r.Pass {
			failed++
		}
	}
	header, csvRows := experiments.ConformanceCSV(rows)
	if err := viz.Export(os.Stdout, outDir, viz.Dataset{Name: "conformance.csv", Header: header, Rows: csvRows}); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d conformance suites failed", failed, len(rows))
	}
	fmt.Printf("all %d conformance suites passed\n", len(rows))
	return nil
}

// runSchedBench compares the binary-heap scheduler, the timer-wheel
// scheduler, and the sharded epoch-merge engine (across a shard × worker
// sweep, or pinned to -sched-shards) on an identical deterministic event
// workload. The default 1M-event run finishes in seconds, so -quick does
// not shrink it; -events rescales it.
func runSchedBench(outDir string, traj *perf.Trajectory, events, shards int) error {
	rows, err := experiments.SchedBench(events, shards)
	if err != nil {
		return err
	}
	var heapRow, wheelRow *experiments.SchedBenchRow
	for i := range rows {
		r := &rows[i]
		fmt.Println(*r)
		switch r.Impl {
		case "heap":
			heapRow = r
		case "wheel":
			wheelRow = r
		}
		if traj != nil {
			traj.Add(perf.Sample{
				Name:           "schedbench/" + r.Impl + schedLabelSuffix(*r),
				WallSeconds:    r.Wall.Seconds(),
				Allocs:         r.Allocs,
				AllocBytes:     r.AllocBytes,
				Events:         r.Events,
				AllocsPerEvent: r.AllocsPerEvent,
			})
		}
	}
	if heapRow != nil && wheelRow != nil && wheelRow.Wall > 0 && wheelRow.Allocs > 0 {
		fmt.Printf("wheel vs heap: %.2fx wall-clock, %.1fx fewer allocations\n",
			float64(heapRow.Wall)/float64(wheelRow.Wall),
			float64(heapRow.Allocs)/float64(wheelRow.Allocs))
	}
	header, csvRows := experiments.SchedBenchCSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "schedbench.csv", Header: header, Rows: csvRows})
}

// schedLabelSuffix distinguishes sharded trajectory samples by configuration.
func schedLabelSuffix(r experiments.SchedBenchRow) string {
	if r.Shards > 0 {
		return fmt.Sprintf("/s=%d,w=%d", r.Shards, r.Workers)
	}
	return ""
}

// progressPrinter emits one line per completed harness run and mirrors the
// totals into monitor counters so the final summary (and any scraper) sees
// the sweep's run counts.
func progressPrinter(reg *monitor.Registry) func(harness.Progress) {
	return func(p harness.Progress) {
		reg.Counter("harness/runs_completed").Inc()
		status := "ok"
		if p.Err != nil {
			reg.Counter("harness/runs_failed").Inc()
			status = "FAILED"
		}
		fmt.Printf("  [%d/%d] %-40s %s (%v)\n", p.Completed, p.Total, p.Name, status, p.Elapsed.Round(time.Millisecond))
	}
}

func runFig1(opts experiments.Options, outDir string) error {
	r, err := experiments.Fig1(opts)
	if err != nil {
		return err
	}
	for _, name := range []string{"defi", "sandbox", "nfts"} {
		fmt.Printf("%-8s %7d transactions over 300 h\n", name, r.Totals[name])
	}
	viz.LineChart(os.Stdout, "hourly transactions (normalised overlay)", fig1Overlay(r), 72, 14)
	header, rows := experiments.Fig1CSV(r)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig1_temporal_distribution.csv", Header: header, Rows: rows})
}

// fig1Overlay rescales each series to [0,1] so the three applications
// overlay on one chart despite their 100× volume differences.
func fig1Overlay(r *experiments.Fig1Result) []viz.Series {
	var out []viz.Series
	for _, name := range []string{"defi", "sandbox", "nfts"} {
		src := r.Series[name]
		var max float64
		for _, v := range src {
			if v > max {
				max = v
			}
		}
		scaled := make([]float64, len(src))
		for i, v := range src {
			if max > 0 {
				scaled[i] = v / max
			}
		}
		out = append(out, viz.Series{Name: name, Y: scaled})
	}
	return out
}

func runFig6(ctx context.Context, opts experiments.Options, outDir string) (float64, error) {
	rows, err := experiments.Fig6(ctx, opts)
	if err != nil {
		return 0, err
	}
	var groups []viz.BarGroup
	var peak float64
	for _, r := range rows {
		fmt.Println(r)
		groups = append(groups, viz.BarGroup{Label: r.Chain, Values: []float64{r.Throughput}})
		if r.Throughput > peak {
			peak = r.Throughput
		}
	}
	viz.BarChart(os.Stdout, "peak throughput (TPS)", []string{""}, groups, 48)
	header, csvRows := experiments.Fig6CSV(rows)
	return peak, viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig6_chain_comparison.csv", Header: header, Rows: csvRows})
}

func runFig7(ctx context.Context, opts experiments.Options, outDir string) (float64, error) {
	rows, err := experiments.Fig7(ctx, opts)
	if err != nil {
		return 0, err
	}
	var peak float64
	for _, r := range rows {
		fmt.Println(r)
		if r.Throughput > peak {
			peak = r.Throughput
		}
	}
	header, csvRows := experiments.Fig7CSV(rows)
	return peak, viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig7_framework_comparison.csv", Header: header, Rows: csvRows})
}

func runFig8(opts experiments.Options, outDir string) error {
	fmt.Println("measured on this machine:")
	rows, err := experiments.Fig8(opts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	header, csvRows := experiments.Fig8CSV(rows)

	fmt.Println("simulated 8-worker testbed (per-signature cost calibrated on this machine):")
	simRows, err := experiments.Fig8Simulated(opts, 8, 0)
	if err != nil {
		return err
	}
	for _, r := range simRows {
		fmt.Println(" ", r)
	}
	simHeader, simCSV := experiments.Fig8SimCSV(simRows)
	return viz.Export(os.Stdout, outDir,
		viz.Dataset{Name: "fig8_signing_measured.csv", Header: header, Rows: csvRows},
		viz.Dataset{Name: "fig8_signing_simulated.csv", Header: simHeader, Rows: simCSV})
}

func runFig9(opts experiments.Options, outDir string) error {
	rows, err := experiments.Fig9(opts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	header, csvRows := experiments.Fig9CSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig9_task_processing.csv", Header: header, Rows: csvRows})
}

func runFig10(ctx context.Context, opts experiments.Options, outDir string) (float64, error) {
	rows, err := experiments.Fig10(ctx, opts)
	if err != nil {
		return 0, err
	}
	var peak float64
	for _, r := range rows {
		fmt.Println(r)
		if r.Throughput > peak {
			peak = r.Throughput
		}
	}
	header, csvRows := experiments.Fig10CSV(rows)
	return peak, viz.Export(os.Stdout, outDir, viz.Dataset{Name: "fig10_concurrency.csv", Header: header, Rows: csvRows})
}

func runDistributed(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Distributed(ctx, opts, []int{1, 2, 4, 8}, 10000)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	header, csvRows := experiments.DistributedCSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "distributed_matching.csv", Header: header, Rows: csvRows})
}

func runCorrectness(ctx context.Context, opts experiments.Options) error {
	res, err := experiments.Correctness(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Println(res)
	if !res.Audit.Consistent() {
		return fmt.Errorf("framework statistics do not match the node audit log")
	}
	fmt.Println("framework statistics match the node-side commit log exactly")
	return nil
}

// runBlockbench runs the BLOCKBENCH micro-workloads (IOHeavy, Analytics,
// DoNothing) on both state backends; identical mem/paged rows per workload
// are the storage-identity check, and the paged rows carry the cache
// economics.
func runBlockbench(ctx context.Context, opts experiments.Options, outDir string) (float64, error) {
	rows, err := experiments.Blockbench(ctx, opts)
	if err != nil {
		return 0, err
	}
	var peak float64
	for _, r := range rows {
		fmt.Println(r)
		if r.Throughput > peak {
			peak = r.Throughput
		}
	}
	header, csvRows := experiments.BlockbenchCSV(rows)
	return peak, viz.Export(os.Stdout, outDir,
		viz.Dataset{Name: "blockbench.csv", Header: header, Rows: csvRows})
}

// runStoreBench drives the paged store directly at populations beyond what
// consensus-path setup reaches (10M+ accounts with -sb-accounts), recording
// per-phase ops/s, cache hit rate and the heap ceiling against the in-RAM
// baseline — one trajectory sample per phase when -benchjson is set.
func runStoreBench(ctx context.Context, outDir string, traj *perf.Trajectory, o experiments.StoreBenchOptions) (float64, error) {
	rows, err := experiments.StoreBench(ctx, o)
	if err != nil {
		return 0, err
	}
	var headline float64
	for _, r := range rows {
		fmt.Println(r)
		if r.Backend == "paged" && r.Phase == "mixed" {
			headline = r.OpsPerSec
		}
		if traj != nil {
			traj.Add(perf.Sample{
				Name:        fmt.Sprintf("storebench/%s/%s", r.Backend, r.Phase),
				TPS:         r.OpsPerSec,
				WallSeconds: float64(r.Ops) / r.OpsPerSec,
				Events:      r.Ops,
				Note: fmt.Sprintf("%d accounts, cache hit %.3f, bloom-neg %d, heap peak %.1f MB, cache budget %.0f MB",
					r.Accounts, r.HitRate, r.BloomNegatives, r.HeapPeakMB, r.CacheBudgetMB),
			})
		}
	}
	header, csvRows := experiments.StoreBenchCSV(rows)
	return headline, viz.Export(os.Stdout, outDir,
		viz.Dataset{Name: "storebench.csv", Header: header, Rows: csvRows})
}
