package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hammer/internal/experiments"
	"hammer/internal/loadplane"
	"hammer/internal/metrics"
	"hammer/internal/perf"
	"hammer/internal/viz"
)

// lpFlags carries the load-plane experiment's CLI knobs.
type lpFlags struct {
	listen  string // serve the coordinator here for external workers; "" = in-process
	workers int    // partition count (and shard count when in-process)
	clients int    // population for the single-spec modes; 0 = run the scale sweep
	seconds int    // virtual duration of the single-spec modes
	bench   bool   // measure injection rate and heap across populations × shard counts
}

// runLoadPlane runs one of three shapes, selected by the -lp-* flags:
//
//   - default: the scale sweep (open- vs closed-loop at each population in
//     Options.LoadClients) plus the chain-driving demo;
//   - -lp-clients N: one in-process run of the canonical spec, writing
//     loadplane_merged.csv — the CI smoke's golden;
//   - -lp-clients N -lp-listen ADDR: serve the coordinator for -lp-workers
//     external hammer-worker processes and write the identically named CSV
//     from the distributed merge. Byte-comparing the two files is the
//     determinism check.
func runLoadPlane(ctx context.Context, opts experiments.Options, outDir string, traj *perf.Trajectory, lp lpFlags) (float64, error) {
	if lp.bench {
		return 0, runLoadPlaneBench(ctx, opts, traj, lp)
	}
	if lp.clients > 0 {
		return 0, runLoadPlaneMerged(ctx, opts, outDir, lp)
	}
	return runLoadPlaneSweep(ctx, opts, outDir, traj)
}

// runLoadPlaneBench measures the sustained injection rate (arrivals
// generated per wall-clock second) and the heap it takes, across client
// populations and shard counts. One sample per configuration lands in the
// -benchjson trajectory; the 1M-client rows demonstrate that open-loop
// generation stays within the ~16 B/client fixed-layout bound instead of
// growing a goroutine or timer per client.
func runLoadPlaneBench(ctx context.Context, opts experiments.Options, traj *perf.Trajectory, lp lpFlags) error {
	// Quick options carry a shrunken LoadClients sweep; skip the 1M tier
	// there so CI smoke runs stay cheap while the default benches 100k/1M.
	populations := []int{100_000, 1_000_000}
	if max := maxInt(opts.LoadClients); max > 0 && max < 100_000 {
		populations = []int{20_000, 100_000}
	}
	seconds := lp.seconds
	if seconds <= 0 {
		seconds = 10
	}
	for _, clients := range populations {
		spec := experiments.LoadPlaneSpec(clients, opts.Seed, seconds)
		for _, shards := range []int{1, 2, 4} {
			var series []metrics.Window
			sample, err := perf.Measure(fmt.Sprintf("loadplane/inject/c=%d,w=%d", clients, shards), func() error {
				got, genErr := loadplane.InProcess(ctx, spec, shards)
				series = got
				return genErr
			})
			if err != nil {
				return err
			}
			arrivals := metrics.SumArrivals(series)
			sample.Events = int(arrivals)
			if sample.WallSeconds > 0 {
				sample.TPS = float64(arrivals) / sample.WallSeconds
			}
			var footprint int64
			for _, rng := range loadplane.PartitionClients(clients, shards) {
				footprint += loadplane.ShardFootprint(rng)
			}
			var mem runtime.MemStats
			runtime.ReadMemStats(&mem)
			sample.Note = fmt.Sprintf("virtual %ds, %d windows, heap_inuse_mb=%d, client_state_bound_mb=%d",
				seconds, len(series), mem.HeapInuse>>20, footprint>>20)
			fmt.Printf("%-32s %10d arrivals  %12.0f arrivals/s  heap %d MB (state bound %d MB)\n",
				sample.Name, arrivals, sample.TPS, mem.HeapInuse>>20, footprint>>20)
			if traj != nil {
				traj.Add(sample)
			}
		}
	}
	return nil
}

// maxInt returns the largest element of xs, or 0 when empty.
func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// runLoadPlaneSweep prints and exports the scale comparison and the
// driver demo.
func runLoadPlaneSweep(ctx context.Context, opts experiments.Options, outDir string, traj *perf.Trajectory) (float64, error) {
	rows, err := experiments.LoadPlane(ctx, opts)
	if err != nil {
		return 0, err
	}
	for _, r := range rows {
		fmt.Println(r)
		if traj != nil && r.Mode == "open" {
			traj.Add(perf.Sample{
				Name:        fmt.Sprintf("loadplane/open/%d", r.Clients),
				TPS:         float64(r.OfferedPerS),
				WallSeconds: 0,
			})
		}
	}
	fmt.Println("open-loop exposes the drop rate and latency climb that closed-loop feedback hides")

	driveRows, err := experiments.LoadPlaneDrive(ctx, opts)
	if err != nil {
		return 0, err
	}
	for _, r := range driveRows {
		fmt.Println(r)
	}

	header, csvRows := experiments.LoadPlaneCSV(rows)
	driveHeader, driveCSV := experiments.LoadPlaneDriveCSV(driveRows)
	return 0, viz.Export(os.Stdout, outDir,
		viz.Dataset{Name: "loadplane_scale.csv", Header: header, Rows: csvRows},
		viz.Dataset{Name: "loadplane_drive.csv", Header: driveHeader, Rows: driveCSV})
}

// runLoadPlaneMerged produces loadplane_merged.csv for the canonical spec —
// in-process when -lp-listen is empty, via the distributed control plane
// otherwise. Both paths must emit identical bytes.
func runLoadPlaneMerged(ctx context.Context, opts experiments.Options, outDir string, lp lpFlags) error {
	if lp.workers < 1 {
		lp.workers = 2
	}
	seconds := lp.seconds
	if seconds <= 0 {
		seconds = opts.MeasureSeconds
	}
	spec := experiments.LoadPlaneSpec(lp.clients, opts.Seed, seconds)

	start := time.Now()
	var (
		series []metrics.Window
		mode   string
	)
	if lp.listen == "" {
		mode = fmt.Sprintf("in-process (%d shards)", lp.workers)
		got, err := loadplane.InProcess(ctx, spec, lp.workers)
		if err != nil {
			return err
		}
		series = got
	} else {
		mode = fmt.Sprintf("distributed (%d workers at %s)", lp.workers, lp.listen)
		coord, err := loadplane.NewCoordinator(loadplane.CoordinatorConfig{
			Spec:        spec,
			Workers:     lp.workers,
			Liveness:    30 * time.Second,
			RecoverLost: true,
		})
		if err != nil {
			return err
		}
		addr, err := coord.Listen(lp.listen)
		if err != nil {
			return err
		}
		defer coord.Close()
		fmt.Printf("coordinator listening on %s for %d workers (%d clients, %d windows)\n",
			addr, lp.workers, spec.Clients, spec.Windows())
		got, err := coord.Wait(ctx)
		if err != nil {
			return err
		}
		if lost := coord.Lost(); len(lost) > 0 {
			fmt.Printf("recovered %d lost range(s) locally: %v\n", len(lost), lost)
		}
		series = got
	}
	csv, err := loadplane.MergedCSV(spec, series)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, "loadplane_merged.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		return err
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Printf("%s: %d clients, %d windows merged in %v, heap %d MB; wrote %s\n",
		mode, spec.Clients, len(series), time.Since(start).Round(time.Millisecond),
		mem.HeapAlloc>>20, path)
	return nil
}
