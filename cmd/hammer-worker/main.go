// Command hammer-worker is one load-plane traffic generator: it joins a
// coordinator, receives a client range, generates open-loop arrivals for its
// range with bounded resident memory, and streams windowed metrics back over
// JSON-RPC. The binary carries no workload knowledge — the coordinator's
// join response is the whole configuration.
//
// Usage:
//
//	hammer-worker -coordinator http://127.0.0.1:9090 -name w0
//
// A worker restarted after a crash rejoins under the same -name and resumes
// from the first window the coordinator is missing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"hammer/internal/loadplane"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammer-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:9090", "coordinator JSON-RPC URL")
		name        = flag.String("name", "", "worker name (stable across restarts; required)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-RPC timeout")
		quiet       = flag.Bool("quiet", false, "suppress the completion line")
	)
	flag.Parse()
	if *name == "" {
		return fmt.Errorf("-name is required (a stable identity enables crash rejoin)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	reported, err := loadplane.RunWorker(ctx, *name, *coordinator, *timeout)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("worker %s: reported %d windows in %v\n", *name, reported, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
