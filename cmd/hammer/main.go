// Command hammer runs one blockchain evaluation end to end: deploy a
// (simulated) system under test, generate and sign a SmallBank workload,
// execute it under a control sequence, and report throughput and latency —
// the paper's Fig 3 execution flow in one invocation.
//
// Usage:
//
//	hammer -chain fabric -rate 300 -duration 30s
//	hammer -playbook deploy.json -rate 2000 -clients 4 -driver hammer
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"hammer"
	"hammer/internal/core"
	"hammer/internal/loadplane"
	"hammer/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		chainKind    = flag.String("chain", "fabric", "SUT to deploy: ethereum|fabric|neuchain|meepo")
		workloadKind = flag.String("workload", "smallbank", "workload: smallbank | ycsb-a..ycsb-f")
		playbook     = flag.String("playbook", "", "JSON deployment playbook (overrides -chain)")
		rate         = flag.Float64("rate", 200, "offered load in tx/s")
		duration     = flag.Duration("duration", 30*time.Second, "measurement window (virtual time)")
		accounts     = flag.Int("accounts", 5000, "SmallBank account population")
		clients      = flag.Int("clients", 2, "client machines")
		threads      = flag.Int("threads", 2, "worker threads per client")
		driver       = flag.String("driver", "hammer", "measurement driver: hammer|batch|interactive")
		signMode     = flag.String("sign", "async", "signing strategy: serial|async|pipelined|off")
		seed         = flag.Int64("seed", 7, "random seed")
		outDir       = flag.String("out", "", "directory for CSV export (optional)")
		showViz      = flag.Bool("viz", true, "run the SQL visualization phase")
		openLoop     = flag.Int("openloop", 0, "drive injection from an open-loop population of this many simulated clients (-rate becomes the population's aggregate rate; 0 = flat-rate injection)")
	)
	flag.Parse()

	sched := hammer.NewScheduler()
	bc, err := buildChain(sched, *playbook, *chainKind)
	if err != nil {
		return err
	}

	cfg := hammer.DefaultEvalConfig()
	cfg.Workload.Accounts = *accounts
	cfg.Workload.Seed = *seed
	cfg.Seed = *seed
	if strings.HasPrefix(*workloadKind, "ycsb-") {
		p := hammer.DefaultYCSBProfile()
		p.Records = *accounts
		p.Workload = strings.TrimPrefix(*workloadKind, "ycsb-")
		p.Seed = *seed
		gen, err := hammer.NewYCSBGenerator(p)
		if err != nil {
			return err
		}
		cfg.Source = gen
		cfg.Contract = hammer.YCSB()
	} else if *workloadKind != "smallbank" {
		return fmt.Errorf("unknown workload %q", *workloadKind)
	}
	cfg.Clients = *clients
	cfg.Threads = *threads
	if *openLoop > 0 {
		spec := loadplane.DefaultSpec()
		spec.Clients = *openLoop
		spec.RatePerClient = *rate / float64(*openLoop)
		spec.Duration = *duration
		spec.Seed = *seed
		merged, err := loadplane.InProcess(context.Background(), spec, 1)
		if err != nil {
			return fmt.Errorf("open-loop generation: %w", err)
		}
		cfg.Control = core.OpenLoopControl(spec, merged, 0)
	} else {
		cfg.Control = hammer.ConstantLoad(*rate, *duration, time.Second)
	}
	switch *driver {
	case "hammer":
		cfg.Driver = hammer.DriverHammer
	case "batch":
		cfg.Driver = hammer.DriverBatch
	case "interactive":
		cfg.Driver = hammer.DriverInteractive
	default:
		return fmt.Errorf("unknown driver %q", *driver)
	}
	switch *signMode {
	case "serial":
		cfg.SignMode = hammer.SignSerial
	case "async":
		cfg.SignMode = hammer.SignAsync
	case "pipelined":
		cfg.SignMode = hammer.SignPipelined
	case "off":
		cfg.SignMode = hammer.SignOff
	default:
		return fmt.Errorf("unknown sign mode %q", *signMode)
	}

	fmt.Printf("evaluating %s under %s: %d tx at %.0f tx/s over %v (%d clients × %d threads, %s driver)\n",
		bc.Name(), *workloadKind, cfg.Control.Total(), *rate, *duration, *clients, *threads, *driver)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := hammer.Evaluate(ctx, sched, bc, cfg)
	if err != nil {
		return err
	}
	rep := res.Report
	fmt.Println()
	fmt.Println(rep)
	fmt.Printf("preparation (real): %v; run covered %v of virtual time\n",
		res.PrepDuration.Round(time.Millisecond), res.VirtualDuration.Round(time.Millisecond))

	viz.LineChart(os.Stdout, fmt.Sprintf("committed TPS per second (%s)", bc.Name()),
		[]viz.Series{{Name: "tps", Y: rep.TPSSeries}}, 72, 12)

	if bc.Shards() > 1 {
		fmt.Println("per-shard breakdown:")
		for shard := 0; shard < bc.Shards(); shard++ {
			if ss, ok := rep.PerShard[shard]; ok {
				fmt.Printf("  shard %d: %d committed (%.1f TPS), %d aborted, avg latency %v\n",
					shard, ss.Committed, ss.Throughput, ss.Aborted, ss.AvgLatency.Round(time.Millisecond))
			}
		}
	}

	if *showViz {
		vr, err := hammer.Visualize(res.Records)
		if err != nil {
			return err
		}
		fmt.Printf("visualization: %d rows staged; Table II TPS query → %d sub-second commits; avg latency %.1f ms over %d rows\n",
			vr.RowsStaged, vr.SubSecondCommits, vr.AvgLatencyMs, vr.LatencyRows)
	}

	rows := make([][]string, len(rep.TPSSeries))
	for i, v := range rep.TPSSeries {
		rows[i] = []string{fmt.Sprint(i), fmt.Sprintf("%.0f", v)}
	}
	return viz.Export(os.Stdout, *outDir, viz.Dataset{Name: "run_tps.csv", Header: []string{"second", "tps"}, Rows: rows})
}

func buildChain(sched *hammer.Scheduler, playbookPath, kind string) (hammer.Blockchain, error) {
	if playbookPath != "" {
		pb, err := hammer.LoadPlaybook(playbookPath)
		if err != nil {
			return nil, err
		}
		return hammer.DeployPlaybook(pb, sched)
	}
	switch kind {
	case "ethereum":
		return hammer.NewEthereum(sched, hammer.DefaultEthereumConfig()), nil
	case "fabric":
		return hammer.NewFabric(sched, hammer.DefaultFabricConfig()), nil
	case "neuchain":
		return hammer.NewNeuchain(sched, hammer.DefaultNeuchainConfig()), nil
	case "meepo":
		return hammer.NewMeepo(sched, hammer.DefaultMeepoConfig()), nil
	default:
		return nil, fmt.Errorf("unknown chain %q (want one of %v)", kind, hammer.ChainKinds())
	}
}
