// Command hammer runs one blockchain evaluation end to end: deploy a
// (simulated) system under test, generate and sign a SmallBank workload,
// execute it under a control sequence, and report throughput and latency —
// the paper's Fig 3 execution flow in one invocation.
//
// Usage:
//
//	hammer -chain fabric -rate 300 -duration 30s
//	hammer -playbook deploy.json -rate 2000 -clients 4 -driver hammer
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"hammer"
	"hammer/internal/chain"
	"hammer/internal/core"
	"hammer/internal/loadplane"
	"hammer/internal/store/pagedstate"
	"hammer/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		chainKind    = flag.String("chain", "fabric", "SUT to deploy: ethereum|fabric|neuchain|meepo|committee")
		workloadKind = flag.String("workload", "smallbank", "workload: smallbank | ycsb-a..ycsb-f")
		playbook     = flag.String("playbook", "", "JSON deployment playbook (overrides -chain)")
		rate         = flag.Float64("rate", 200, "offered load in tx/s")
		duration     = flag.Duration("duration", 30*time.Second, "measurement window (virtual time)")
		accounts     = flag.Int("accounts", 5000, "SmallBank account population")
		clients      = flag.Int("clients", 2, "client machines")
		threads      = flag.Int("threads", 2, "worker threads per client")
		driver       = flag.String("driver", "hammer", "measurement driver: hammer|batch|interactive")
		signMode     = flag.String("sign", "async", "signing strategy: serial|async|pipelined|off")
		seed         = flag.Int64("seed", 7, "random seed")
		outDir       = flag.String("out", "", "directory for CSV export (optional)")
		showViz      = flag.Bool("viz", true, "run the SQL visualization phase")
		openLoop     = flag.Int("openloop", 0, "drive injection from an open-loop population of this many simulated clients (-rate becomes the population's aggregate rate; 0 = flat-rate injection)")
		stateKind    = flag.String("state", "mem", "world-state backend: mem (in-RAM map) | paged (disk-backed paged store)")
		stateCacheMB = flag.Int("state-cache-mb", 64, "page-cache budget per state instance for -state=paged, in MiB")
		stateDir     = flag.String("state-dir", "", "directory for paged-state files (default: OS temp); run files are removed at exit")
		stateSnap    = flag.String("state-snapshot", "", "paged-state snapshot path: load it and skip account setup when it exists, save the final state there otherwise (-state=paged, single-state chains)")
	)
	flag.Parse()

	states := &pagedStates{cacheMB: *stateCacheMB, baseDir: *stateDir, accounts: *accounts}
	defer states.close()

	sched := hammer.NewScheduler()
	bc, err := buildChain(sched, *playbook, *chainKind, *stateKind, states)
	if err != nil {
		return err
	}

	cfg := hammer.DefaultEvalConfig()
	cfg.Workload.Accounts = *accounts
	cfg.Workload.Seed = *seed
	cfg.Seed = *seed
	if strings.HasPrefix(*workloadKind, "ycsb-") {
		p := hammer.DefaultYCSBProfile()
		p.Records = *accounts
		p.Workload = strings.TrimPrefix(*workloadKind, "ycsb-")
		p.Seed = *seed
		gen, err := hammer.NewYCSBGenerator(p)
		if err != nil {
			return err
		}
		cfg.Source = gen
		cfg.Contract = hammer.YCSB()
	} else if *workloadKind != "smallbank" {
		return fmt.Errorf("unknown workload %q", *workloadKind)
	}
	cfg.Clients = *clients
	cfg.Threads = *threads
	if *openLoop > 0 {
		spec := loadplane.DefaultSpec()
		spec.Clients = *openLoop
		spec.RatePerClient = *rate / float64(*openLoop)
		spec.Duration = *duration
		spec.Seed = *seed
		merged, err := loadplane.InProcess(context.Background(), spec, 1)
		if err != nil {
			return fmt.Errorf("open-loop generation: %w", err)
		}
		cfg.Control = core.OpenLoopControl(spec, merged, 0)
	} else {
		cfg.Control = hammer.ConstantLoad(*rate, *duration, time.Second)
	}
	switch *driver {
	case "hammer":
		cfg.Driver = hammer.DriverHammer
	case "batch":
		cfg.Driver = hammer.DriverBatch
	case "interactive":
		cfg.Driver = hammer.DriverInteractive
	default:
		return fmt.Errorf("unknown driver %q", *driver)
	}
	switch *signMode {
	case "serial":
		cfg.SignMode = hammer.SignSerial
	case "async":
		cfg.SignMode = hammer.SignAsync
	case "pipelined":
		cfg.SignMode = hammer.SignPipelined
	case "off":
		cfg.SignMode = hammer.SignOff
	default:
		return fmt.Errorf("unknown sign mode %q", *signMode)
	}

	// Snapshot warm-start: an existing capture is mounted in place of the
	// account-setup phase; a missing one is written from the final state so
	// the next invocation warm-starts.
	warmStarted := false
	if *stateSnap != "" {
		if *stateKind != "paged" {
			return fmt.Errorf("-state-snapshot requires -state=paged")
		}
		loaded, err := states.loadSnapshot(*stateSnap)
		if err != nil {
			return err
		}
		if loaded {
			cfg.SkipSetup = true
			warmStarted = true
			fmt.Printf("warm start: mounted %d keys from %s, skipping account setup\n",
				states.stores[0].Len(), *stateSnap)
		}
	}

	fmt.Printf("evaluating %s under %s: %d tx at %.0f tx/s over %v (%d clients × %d threads, %s driver)\n",
		bc.Name(), *workloadKind, cfg.Control.Total(), *rate, *duration, *clients, *threads, *driver)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := hammer.Evaluate(ctx, sched, bc, cfg)
	if err != nil {
		return err
	}
	rep := res.Report
	fmt.Println()
	fmt.Println(rep)
	if *stateKind == "paged" {
		states.printStats()
		if *stateSnap != "" && !warmStarted {
			if err := states.saveSnapshot(*stateSnap); err != nil {
				return err
			}
			fmt.Printf("saved state snapshot to %s (next run warm-starts)\n", *stateSnap)
		}
	}
	fmt.Printf("preparation (real): %v; run covered %v of virtual time\n",
		res.PrepDuration.Round(time.Millisecond), res.VirtualDuration.Round(time.Millisecond))

	viz.LineChart(os.Stdout, fmt.Sprintf("committed TPS per second (%s)", bc.Name()),
		[]viz.Series{{Name: "tps", Y: rep.TPSSeries}}, 72, 12)

	if bc.Shards() > 1 {
		fmt.Println("per-shard breakdown:")
		for shard := 0; shard < bc.Shards(); shard++ {
			if ss, ok := rep.PerShard[shard]; ok {
				fmt.Printf("  shard %d: %d committed (%.1f TPS), %d aborted, avg latency %v\n",
					shard, ss.Committed, ss.Throughput, ss.Aborted, ss.AvgLatency.Round(time.Millisecond))
			}
		}
	}

	if *showViz {
		vr, err := hammer.Visualize(res.Records)
		if err != nil {
			return err
		}
		fmt.Printf("visualization: %d rows staged; Table II TPS query → %d sub-second commits; avg latency %.1f ms over %d rows\n",
			vr.RowsStaged, vr.SubSecondCommits, vr.AvgLatencyMs, vr.LatencyRows)
	}

	rows := make([][]string, len(rep.TPSSeries))
	for i, v := range rep.TPSSeries {
		rows[i] = []string{fmt.Sprint(i), fmt.Sprintf("%.0f", v)}
	}
	return viz.Export(os.Stdout, *outDir, viz.Dataset{Name: "run_tps.csv", Header: []string{"second", "tps"}, Rows: rows})
}

func buildChain(sched *hammer.Scheduler, playbookPath, kind, stateKind string, states *pagedStates) (hammer.Blockchain, error) {
	var factory chain.StateFactory
	switch stateKind {
	case "", "mem":
	case "paged":
		factory = states.factory()
	default:
		return nil, fmt.Errorf("unknown state backend %q (want mem|paged)", stateKind)
	}
	if playbookPath != "" {
		if factory != nil {
			return nil, fmt.Errorf("-state=paged is not supported with -playbook deployments")
		}
		pb, err := hammer.LoadPlaybook(playbookPath)
		if err != nil {
			return nil, err
		}
		return hammer.DeployPlaybook(pb, sched)
	}
	switch kind {
	case "ethereum":
		cfg := hammer.DefaultEthereumConfig()
		cfg.State = factory
		return hammer.NewEthereum(sched, cfg), nil
	case "fabric":
		cfg := hammer.DefaultFabricConfig()
		cfg.State = factory
		return hammer.NewFabric(sched, cfg), nil
	case "neuchain":
		cfg := hammer.DefaultNeuchainConfig()
		cfg.State = factory
		return hammer.NewNeuchain(sched, cfg), nil
	case "meepo":
		cfg := hammer.DefaultMeepoConfig()
		cfg.State = factory
		return hammer.NewMeepo(sched, cfg), nil
	case "committee":
		cfg := hammer.DefaultCommitteeConfig()
		cfg.State = factory
		return hammer.NewCommittee(sched, cfg), nil
	default:
		return nil, fmt.Errorf("unknown chain %q (want one of %v)", kind, hammer.ChainKinds())
	}
}

// pagedStates tracks the paged stores a run mounts behind the chain.State
// seam: the factory hands one store per state instance (sharded chains call
// it once per shard), and close releases files at exit.
type pagedStates struct {
	cacheMB  int
	baseDir  string
	accounts int
	stores   []*pagedstate.Store
	dirs     []string
}

func (p *pagedStates) factory() chain.StateFactory {
	return func() *chain.State {
		base := p.baseDir
		if base == "" {
			base = os.TempDir()
		}
		dir, err := os.MkdirTemp(base, "hammer-state-")
		if err != nil {
			panic(fmt.Sprintf("paged state dir: %v", err))
		}
		st, err := pagedstate.Open(pagedstate.Config{
			Dir:          dir,
			CacheBytes:   p.cacheMB << 20,
			ExpectedKeys: 4 * p.accounts,
		})
		if err != nil {
			os.RemoveAll(dir)
			panic(fmt.Sprintf("paged state open: %v", err))
		}
		p.stores = append(p.stores, st)
		p.dirs = append(p.dirs, dir)
		return chain.NewStateOn(st)
	}
}

// loadSnapshot mounts a capture when the file exists; ok reports whether it
// did. Snapshots cover single-state chains only — a sharded deployment has
// no single store to restore into.
func (p *pagedStates) loadSnapshot(path string) (ok bool, err error) {
	if _, err := os.Stat(path); err != nil {
		return false, nil
	}
	if len(p.stores) != 1 {
		return false, fmt.Errorf("-state-snapshot needs exactly one state instance, chain has %d (sharded chains are not supported)", len(p.stores))
	}
	if err := p.stores[0].LoadSnapshot(path); err != nil {
		return false, fmt.Errorf("loading snapshot %s: %w", path, err)
	}
	return true, nil
}

func (p *pagedStates) saveSnapshot(path string) error {
	if len(p.stores) != 1 {
		return fmt.Errorf("-state-snapshot needs exactly one state instance, chain has %d (sharded chains are not supported)", len(p.stores))
	}
	if err := p.stores[0].SaveSnapshot(path); err != nil {
		return fmt.Errorf("saving snapshot %s: %w", path, err)
	}
	return nil
}

func (p *pagedStates) printStats() {
	for i, st := range p.stores {
		s := st.Stats()
		fmt.Printf("paged state %d: %d keys, cache hit %.1f%% (%d MiB budget, %d pages resident), bloom-negatives %d, WAL %.1f MiB over %d flushes\n",
			i, s.LiveKeys, 100*s.HitRate(), s.CacheBudgetBytes>>20, s.ResidentPages, s.BloomNegatives,
			float64(s.WALBytes)/(1<<20), s.WALFlushes)
	}
}

func (p *pagedStates) close() {
	for i, st := range p.stores {
		st.Close()
		os.RemoveAll(p.dirs[i])
	}
	p.stores, p.dirs = nil, nil
}
