// Command hammer-predict trains and evaluates the workload-prediction
// models of §IV: Table III (five methods × three datasets), Fig 11
// (real-vs-generated sequences) and the attention ablation. Sweeps run
// through the experiment harness: -parallel bounds how many model trainings
// execute concurrently (results are identical at any worker count).
//
// Usage:
//
//	hammer-predict -exp table3
//	hammer-predict -exp fig11 -out results/
//	hammer-predict -exp ablation -quick
//	hammer-predict -exp nnbench -benchjson
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"hammer/internal/experiments"
	"hammer/internal/harness"
	"hammer/internal/models"
	"hammer/internal/perf"
	"hammer/internal/timeseries"
	"hammer/internal/timeseries/datasets"
	"hammer/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammer-predict:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp         = flag.String("exp", "table3", "experiment: table3|fig11|ablation|nnbench|all; 'list' prints them all")
		quick       = flag.Bool("quick", false, "shrink training budgets for a fast smoke run")
		outDir      = flag.String("out", "results", "directory for CSV export")
		seed        = flag.Int64("seed", 7, "random seed")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiment sweeps (results are identical at any value)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchjson   = flag.Bool("benchjson", false, "record per-experiment wall-clock/allocs into a numbered BENCH_<n>.json under -out")
		schedShards = flag.Int("sched-shards", 0, "run simulations on the sharded event engine with N timer-wheel shards (0 = single wheel; results are identical)")
	)
	flag.Parse()
	if *schedShards < 0 {
		return fmt.Errorf("-sched-shards must be >= 0, got %d", *schedShards)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprofile != "" {
		stopProf, err := perf.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer stopProf()
	}
	var traj *perf.Trajectory
	if *benchjson {
		traj = perf.NewTrajectory("hammer-predict", os.Args[1:])
	}

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed
	opts.Workers = *parallel
	opts.SchedShards = *schedShards
	opts.OnProgress = func(p harness.Progress) {
		status := "ok"
		if p.Err != nil {
			status = "FAILED"
		}
		fmt.Printf("  [%d/%d] %-30s %s (%v)\n", p.Completed, p.Total, p.Name, status, p.Elapsed.Round(time.Millisecond))
	}

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	ran := 0
	steps := []struct {
		name  string
		title string
		fn    func() error
	}{
		{"table3", "=== Table III: model comparison ===", func() error { return runTable3(ctx, opts, *outDir) }},
		{"fig11", "=== Fig 11: real vs generated sequences ===", func() error { return runFig11(ctx, opts, *outDir) }},
		{"ablation", "=== Ablation: multi-head attention ===", func() error { return runAblation(opts) }},
		{"nnbench", "=== nnbench: tensor kernel comparison ===", func() error { return runNnbench(*outDir, *quick, traj) }},
	}

	if len(selected) == 1 && selected[0] == "list" {
		fmt.Println("experiments (-exp name, comma-separated; 'all' runs everything):")
		for _, s := range steps {
			fmt.Printf("  %s\n", s.name)
		}
		return nil
	}

	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		fmt.Println(s.title)
		sample, err := perf.Measure(s.name, s.fn)
		if err != nil {
			return err
		}
		if traj != nil {
			traj.Add(sample)
		}
		ran++
	}
	if ran == 0 {
		known := []string{"all", "list"}
		for _, s := range steps {
			known = append(known, s.name)
		}
		if hint := experiments.Suggest(*exp, known); hint != "" {
			return fmt.Errorf("unknown experiment %q (did you mean %q? -exp list shows all)", *exp, hint)
		}
		return fmt.Errorf("unknown experiment %q (-exp list shows all)", *exp)
	}
	if traj != nil {
		path, err := perf.NextPath(*outDir)
		if err != nil {
			return err
		}
		if err := perf.WriteTrajectory(path, traj); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if *memprofile != "" {
		if err := perf.WriteHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	return nil
}

func runTable3(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Table3(ctx, opts)
	if err != nil {
		return err
	}
	header := []string{"Dataset", "Method", "MAE", "MSE", "RMSE", "R2"}
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Dataset, r.Method,
			fmt.Sprintf("%.3f", r.Metrics.MAE), fmt.Sprintf("%.3f", r.Metrics.MSE),
			fmt.Sprintf("%.3f", r.Metrics.RMSE), fmt.Sprintf("%.4f", r.Metrics.R2),
		})
	}
	viz.Table(os.Stdout, header, tbl)
	csvHeader, csvRows := experiments.Table3CSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "table3_model_comparison.csv", Header: csvHeader, Rows: csvRows})
}

func runFig11(ctx context.Context, opts experiments.Options, outDir string) error {
	rows, err := experiments.Fig11(ctx, opts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%s: one-step MAE %.2f over %d held-out hours\n", r.Dataset, r.OneStepMAE, len(r.Real))
		viz.LineChart(os.Stdout, fmt.Sprintf("%s: real vs generated", r.Dataset), []viz.Series{
			{Name: "real", Y: r.Real},
			{Name: "generated", Y: r.Generated},
			{Name: "one-step", Y: r.OneStep},
		}, 72, 12)
		header, csvRows := experiments.Fig11CSV(r)
		if err := viz.Export(os.Stdout, outDir, viz.Dataset{Name: fmt.Sprintf("fig11_%s.csv", r.Dataset), Header: header, Rows: csvRows}); err != nil {
			return err
		}
	}
	return nil
}

func runNnbench(outDir string, quick bool, traj *perf.Trajectory) error {
	rows, err := experiments.NNBench(quick)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(" ", r)
		if traj != nil {
			traj.Add(r.Sample())
		}
	}
	if s := experiments.NNBenchSpeedup(rows); s > 0 {
		fmt.Printf("  train-step speedup, fused w=1 vs legacy: %.2fx\n", s)
	}
	header, csvRows := experiments.NNBenchCSV(rows)
	return viz.Export(os.Stdout, outDir, viz.Dataset{Name: "nnbench_kernels.csv", Header: header, Rows: csvRows})
}

func runAblation(opts experiments.Options) error {
	cfg := models.DefaultConfig()
	cfg.Epochs = opts.ModelEpochs
	cfg.Lookback = opts.ModelLookback
	cfg.Hidden = opts.ModelHidden
	cfg.Seed = opts.Seed
	for _, log := range datasets.All(opts.Seed) {
		series := log.HourlySeries()
		train, _ := timeseries.Split(series, 0.8)
		for _, mb := range []struct {
			name  string
			build func(models.Config) models.Predictor
		}{
			{"with-attention", models.NewHammer},
			{"no-attention", models.NewHammerNoAttention},
		} {
			p := mb.build(cfg)
			if err := p.Fit(train); err != nil {
				return err
			}
			m, err := models.EvaluateNormalized(p, series, len(train))
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %-15s %s\n", log.Name, mb.name, m)
		}
	}
	return nil
}
