package hammer_test

import (
	"context"

	"testing"
	"time"

	"hammer"
)

// TestPublicAPIEvaluation drives a full evaluation exclusively through the
// public façade, the way a downstream user would.
func TestPublicAPIEvaluation(t *testing.T) {
	sched := hammer.NewScheduler()
	bc := hammer.NewFabric(sched, hammer.DefaultFabricConfig())

	cfg := hammer.DefaultEvalConfig()
	cfg.Workload.Accounts = 500
	cfg.Control = hammer.ConstantLoad(50, 10*time.Second, time.Second)
	cfg.SignMode = hammer.SignOff

	res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if res.Report.Chain != "fabric" {
		t.Fatalf("chain %q", res.Report.Chain)
	}

	viz, err := hammer.Visualize(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	if viz.RowsStaged != len(res.Records) {
		t.Fatalf("visualization staged %d of %d", viz.RowsStaged, len(res.Records))
	}

	audit, err := hammer.VerifyAgainstAuditLog(res.Records, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Consistent() {
		t.Fatalf("audit inconsistent: %+v", audit)
	}
}

func TestPublicAPIPlaybook(t *testing.T) {
	pb, err := hammer.ParsePlaybook([]byte(`{"name":"x","kind":"neuchain"}`))
	if err != nil {
		t.Fatal(err)
	}
	sched := hammer.NewScheduler()
	bc, err := hammer.DeployPlaybook(pb, sched)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Name() != "neuchain" {
		t.Fatalf("deployed %q", bc.Name())
	}
	if len(hammer.ChainKinds()) != 5 {
		t.Fatalf("kinds %v", hammer.ChainKinds())
	}
}

func TestPublicAPIPrediction(t *testing.T) {
	series := hammer.SandboxLog(3).HourlySeries()
	train, _ := hammer.SplitSeries(series, 0.8)

	cfg := hammer.DefaultPredictorConfig()
	cfg.Epochs = 10
	cfg.Lookback = 12
	cfg.Hidden = 8
	p := hammer.NewWorkloadPredictor(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := hammer.EvaluatePredictor(p, series, len(train))
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE <= 0 {
		t.Fatalf("metrics %v", m)
	}
	ext, err := hammer.ExtendSeries(p, series, 24)
	if err != nil {
		t.Fatal(err)
	}
	cs := hammer.LoadFromSeries(ext, time.Second, 1000)
	if cs.Total() != 1000 {
		t.Fatalf("control total %d", cs.Total())
	}
}

func TestPublicAPIRPCBridge(t *testing.T) {
	sched := hammer.NewScheduler()
	cfg := hammer.DefaultNeuchainConfig()
	cfg.EpochInterval = 20 * time.Millisecond
	bc := hammer.NewNeuchain(sched, cfg)
	if err := bc.Deploy(hammer.SmallBank()); err != nil {
		t.Fatal(err)
	}
	rt := hammer.NewRealtime(sched, 10)
	rt.Start()
	defer rt.Stop()
	rt.Do(func() { bc.Start() })

	srv, addr, err := hammer.ServeRPC(bc, "127.0.0.1:0", rt.Do)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := hammer.DialRPC("http://"+addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tx := &hammer.Transaction{Contract: "smallbank", Op: "create", Args: []string{"a", "1", "1"}}
	if _, err := client.Submit(tx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for client.Height(0) == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if client.Height(0) == 0 {
		t.Fatal("no block over the public RPC bridge")
	}
}
