// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus ablation benchmarks for the design choices DESIGN.md
// calls out. SUT experiments run on the virtual clock, so a benchmark
// iteration replays the full experiment and reports the measured TPS and
// latency through b.ReportMetric; CPU-bound experiments (Fig 8, Fig 9,
// Table III) run in real time. The paper-scale CLI equivalents are
// `hammer-bench -exp all` and `hammer-predict -exp all`.
package hammer_test

import (
	"context"

	"fmt"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/experiments"
	"hammer/internal/models"
	"hammer/internal/randx"
	"hammer/internal/taskproc"
	"hammer/internal/timeseries"
	"hammer/internal/timeseries/datasets"
)

// benchOpts keeps virtual-time experiments heavy enough to be meaningful
// but small enough that -bench=. completes in minutes.
func benchOpts() experiments.Options {
	opts := experiments.Quick()
	opts.Accounts = 2000
	opts.MeasureSeconds = 20
	return opts
}

// BenchmarkFig1Datasets regenerates the three application transaction logs
// behind Fig 1.
func BenchmarkFig1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if r.Totals["nfts"] == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkFig6PeakPerformance replays the chain comparison of Fig 6 per
// iteration — the timed region is the full experiment, so -benchtime and
// benchstat comparisons across commits are meaningful. The final iteration's
// peak TPS and average latency are reported alongside ns/op.
func BenchmarkFig6PeakPerformance(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.ChainResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig6(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	var peakTPS, latencyMS float64
	for _, row := range rows {
		if row.Throughput > peakTPS {
			peakTPS = row.Throughput
			latencyMS = row.AvgLatency.Seconds() * 1000
		}
	}
	b.ReportMetric(peakTPS, "peak_tps")
	b.ReportMetric(latencyMS, "latency_ms")
}

// BenchmarkFig7FrameworkComparison replays the Hammer/Blockbench/Caliper
// comparison of Fig 7 on Fabric and Ethereum per iteration, timing the full
// experiment. The final iteration's Hammer-on-Fabric TPS is reported.
func BenchmarkFig7FrameworkComparison(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.FrameworkResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		if row.Chain == "fabric" && row.Framework == "hammer" {
			b.ReportMetric(row.Throughput, "tps")
			b.ReportMetric(row.AvgLatency.Seconds()*1000, "latency_ms")
		}
	}
}

// BenchmarkFig8SignaturePipeline measures real workload-preparation
// throughput under the three signing strategies of Fig 8.
func BenchmarkFig8SignaturePipeline(b *testing.B) {
	opts := benchOpts()
	opts.SignCount = 2000
	for _, strategy := range []string{"serial", "async", "async-pipeline"} {
		strategy := strategy
		b.Run(strategy, func(b *testing.B) {
			var lastSpeedup float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig8(opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Strategy == strategy {
						lastSpeedup = r.Speedup
					}
				}
			}
			b.ReportMetric(lastSpeedup, "speedup")
		})
	}
	b.Run("simulated-8-workers", func(b *testing.B) {
		var pipeline float64
		for i := 0; i < b.N; i++ {
			rows, err := experiments.Fig8Simulated(opts, 8, 0)
			if err != nil {
				b.Fatal(err)
			}
			pipeline = rows[2].Speedup
		}
		b.ReportMetric(pipeline, "speedup")
	})
}

// BenchmarkFig9TaskProcessing measures Hammer's task-processing algorithm
// against the batch-testing baseline across queue lengths (Fig 9) — the
// paper's >50% reduction at 100k transactions.
func BenchmarkFig9TaskProcessing(b *testing.B) {
	for _, n := range []int{10000, 50000, 100000} {
		for _, algo := range []string{"taskproc", "batch"} {
			n, algo := n, algo
			b.Run(fmt.Sprintf("%s/queue-%d", algo, n), func(b *testing.B) {
				tracked, blocks := buildFig9(b, n, 10000)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var m taskproc.Matcher
					if algo == "taskproc" {
						m = taskproc.NewProcessor(n)
					} else {
						m = taskproc.NewBatchQueue(n)
					}
					for _, rec := range tracked {
						m.Track(rec)
					}
					matched := 0
					for _, blk := range blocks {
						matched += m.OnBlock(blk)
					}
					if matched != 10000 {
						b.Fatalf("matched %d", matched)
					}
				}
			})
		}
	}
}

func buildFig9(b *testing.B, n, m int) ([]taskproc.TxRecord, []*chain.Block) {
	b.Helper()
	rng := randx.New(1)
	tracked := make([]taskproc.TxRecord, n)
	ids := make([]chain.TxID, n)
	for i := range tracked {
		rng.Read(ids[i][:])
		tracked[i] = taskproc.TxRecord{ID: ids[i], StartTime: time.Duration(i), Status: chain.StatusPending}
	}
	var blocks []*chain.Block
	picked := rng.Perm(n)[:m]
	for start := 0; start < len(picked); start += 500 {
		end := start + 500
		if end > len(picked) {
			end = len(picked)
		}
		blk := &chain.Block{Timestamp: time.Duration(start)}
		for _, idx := range picked[start:end] {
			blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: ids[idx], Status: chain.StatusCommitted})
		}
		blocks = append(blocks, blk)
	}
	return tracked, blocks
}

// BenchmarkFig10Concurrency replays the thread and client sweeps of Fig 10
// against Fabric.
func BenchmarkFig10Concurrency(b *testing.B) {
	opts := benchOpts()
	type point struct {
		name             string
		clients, threads int
		perClient        float64
	}
	points := []point{
		{"threads-1", 1, 1, 300},
		{"threads-2", 1, 2, 300},
		{"threads-4", 1, 4, 300},
		{"clients-1", 1, 2, 150},
		{"clients-2", 2, 2, 150},
		{"clients-5", 5, 2, 150},
	}
	for _, pt := range points {
		pt := pt
		b.Run(pt.name, func(b *testing.B) {
			var row experiments.Fig10Result
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.Fig10Run(context.Background(), "bench", pt.clients, pt.threads, pt.perClient, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Throughput, "tps")
			b.ReportMetric(row.AvgLatency.Seconds()*1000, "latency_ms")
		})
	}
}

// BenchmarkCorrectness replays the §V-C validation run and verifies the
// framework's statistics against the node commit log.
func BenchmarkCorrectness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Correctness(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Audit.Consistent() {
			b.Fatal("framework statistics inconsistent with node log")
		}
	}
}

// BenchmarkTable3Models measures training+evaluation of each Table III
// method on the sandbox dataset, reporting the held-out MAE.
func BenchmarkTable3Models(b *testing.B) {
	series := datasets.Sandbox(8).HourlySeries()
	train, _ := timeseries.Split(series, 0.8)
	cfg := models.DefaultConfig()
	cfg.Epochs = 40
	cfg.Lookback = 12
	cfg.Hidden = 8
	methods := []struct {
		name  string
		build func(models.Config) models.Predictor
	}{
		{"Linear", func(c models.Config) models.Predictor { return models.NewLinear(c) }},
		{"RNN", models.NewRNN},
		{"TCN", models.NewTCN},
		{"Transformer", models.NewTransformer},
		{"Hammer", models.NewHammer},
	}
	for _, m := range methods {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var mae float64
			for i := 0; i < b.N; i++ {
				p := m.build(cfg)
				if err := p.Fit(train); err != nil {
					b.Fatal(err)
				}
				metrics, err := models.EvaluateNormalized(p, series, len(train))
				if err != nil {
					b.Fatal(err)
				}
				mae = metrics.MAE
			}
			b.ReportMetric(mae, "mae")
		})
	}
}

// BenchmarkFig11Generation measures autoregressive control-sequence
// extension (Fig 11's generated series).
func BenchmarkFig11Generation(b *testing.B) {
	series := datasets.NFTs(9).HourlySeries()
	cfg := models.DefaultConfig()
	cfg.Epochs = 20
	cfg.Lookback = 12
	cfg.Hidden = 8
	p := models.NewHammer(cfg)
	if err := p.Fit(series[:240]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := models.Generate(p, series[:240], 60); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkAblationBloomFilter isolates the Bloom filter's value when
// foreign transactions dominate block contents (the distributed-testing
// scenario of Algorithm 1).
func BenchmarkAblationBloomFilter(b *testing.B) {
	const tracked = 20000
	rng := randx.New(2)
	recs := make([]taskproc.TxRecord, tracked)
	for i := range recs {
		var id chain.TxID
		rng.Read(id[:])
		recs[i] = taskproc.TxRecord{ID: id, Status: chain.StatusPending}
	}
	// Blocks of entirely foreign transactions.
	blk := &chain.Block{Timestamp: time.Second}
	for i := 0; i < 5000; i++ {
		var id chain.TxID
		rng.Read(id[:])
		blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: id, Status: chain.StatusCommitted})
	}
	for _, variant := range []struct {
		name string
		opts []taskproc.Option
	}{
		{"with-bloom", nil},
		{"without-bloom", []taskproc.Option{taskproc.WithoutBloom()}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			p := taskproc.NewProcessor(tracked, variant.opts...)
			for _, rec := range recs {
				p.Track(rec)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if p.OnBlock(blk) != 0 {
					b.Fatal("foreign block should match nothing")
				}
			}
		})
	}
}

// BenchmarkAblationIndexResize compares the dynamically-resized hash index
// against one pre-sized far too small, quantifying the paper's
// "expand the hash table to minimise collisions" choice.
func BenchmarkAblationIndexResize(b *testing.B) {
	const n = 100000
	rng := randx.New(3)
	ids := make([]chain.TxID, n)
	for i := range ids {
		rng.Read(ids[i][:])
	}
	b.Run("presized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := taskproc.NewHashIndex(n)
			for j, id := range ids {
				ix.Put(id, j)
			}
			for _, id := range ids {
				if _, ok := ix.Get(id); !ok {
					b.Fatal("miss")
				}
			}
		}
	})
	b.Run("grown-from-16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := taskproc.NewHashIndex(0)
			for j, id := range ids {
				ix.Put(id, j)
			}
			for _, id := range ids {
				if _, ok := ix.Get(id); !ok {
					b.Fatal("miss")
				}
			}
		}
	})
}

// BenchmarkAblationVectorVsQueue isolates the bookkeeping structure choice:
// Hammer's append-only vector list against the baseline's delete-from-queue.
func BenchmarkAblationVectorVsQueue(b *testing.B) {
	const n = 50000
	tracked, blocks := buildFig9(b, n, n) // match everything: worst case
	b.Run("vector-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := taskproc.NewProcessor(n)
			for _, rec := range tracked {
				p.Track(rec)
			}
			for _, blk := range blocks {
				p.OnBlock(blk)
			}
		}
	})
	b.Run("queue", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := taskproc.NewBatchQueue(n)
			for _, rec := range tracked {
				q.Track(rec)
			}
			for _, blk := range blocks {
				q.OnBlock(blk)
			}
		}
	})
}

// BenchmarkAblationPollInterval sweeps the batch driver's polling interval
// (ξ1 in §II-C1): coarser polling inflates the latency it reports.
func BenchmarkAblationPollInterval(b *testing.B) {
	for _, poll := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		poll := poll
		b.Run(poll.String(), func(b *testing.B) {
			var latency time.Duration
			for i := 0; i < b.N; i++ {
				row, err := experiments.PollIntervalRun(context.Background(), poll, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				latency = row
			}
			b.ReportMetric(latency.Seconds()*1000, "latency_ms")
		})
	}
}
