package hammer

import (
	"time"

	"hammer/internal/chains/committee"
	"hammer/internal/chains/ethereum"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/meepo"
	"hammer/internal/chains/neuchain"
	"hammer/internal/deploy"
	"hammer/internal/smallbank"
)

// Duration re-exports time.Duration for signatures in this package.
type Duration = time.Duration

// Per-chain simulator configurations.
type (
	// EthereumConfig parameterises the PoW Ethereum simulator.
	EthereumConfig = ethereum.Config
	// FabricConfig parameterises the execute-order-validate Fabric
	// simulator.
	FabricConfig = fabric.Config
	// NeuchainConfig parameterises the deterministic-ordering Neuchain
	// simulator.
	NeuchainConfig = neuchain.Config
	// MeepoConfig parameterises the sharded Meepo simulator.
	MeepoConfig = meepo.Config
	// CommitteeConfig parameterises the Tendermint-style BFT committee
	// simulator.
	CommitteeConfig = committee.Config
	// Playbook is a declarative JSON deployment description.
	Playbook = deploy.Playbook
)

// DefaultEthereumConfig matches the paper's 5-node private PoW deployment.
func DefaultEthereumConfig() EthereumConfig { return ethereum.DefaultConfig() }

// NewEthereum builds the simulated Ethereum network on the scheduler.
func NewEthereum(s Sched, cfg EthereumConfig) Blockchain { return ethereum.New(s, cfg) }

// DefaultFabricConfig matches the paper's 1-orderer/4-peer deployment.
func DefaultFabricConfig() FabricConfig { return fabric.DefaultConfig() }

// NewFabric builds the simulated Fabric network on the scheduler.
func NewFabric(s Sched, cfg FabricConfig) Blockchain { return fabric.New(s, cfg) }

// DefaultNeuchainConfig matches the paper's epoch-server deployment.
func DefaultNeuchainConfig() NeuchainConfig { return neuchain.DefaultConfig() }

// NewNeuchain builds the simulated Neuchain deployment on the scheduler.
func NewNeuchain(s Sched, cfg NeuchainConfig) Blockchain { return neuchain.New(s, cfg) }

// DefaultMeepoConfig matches the paper's two-shard deployment.
func DefaultMeepoConfig() MeepoConfig { return meepo.DefaultConfig() }

// NewMeepo builds the simulated sharded Meepo deployment on the scheduler.
func NewMeepo(s Sched, cfg MeepoConfig) Blockchain { return meepo.New(s, cfg) }

// DefaultCommitteeConfig is a 4-validator committee with ~250 ms rounds.
func DefaultCommitteeConfig() CommitteeConfig { return committee.DefaultConfig() }

// NewCommittee builds the simulated BFT committee chain on the scheduler.
func NewCommittee(s Sched, cfg CommitteeConfig) Blockchain { return committee.New(s, cfg) }

// SmallBank is the benchmark contract the paper evaluates with; deploy it
// on custom chains that should serve the standard workload.
func SmallBank() Contract { return smallbank.Contract{} }

// SmallBank operation names, for custom workload mixes.
const (
	OpDeposit    = smallbank.OpDeposit
	OpWithdraw   = smallbank.OpWithdraw
	OpTransfer   = smallbank.OpTransfer
	OpAmalgamate = smallbank.OpAmalgamate
	OpQuery      = smallbank.OpQuery
)

// LoadPlaybook reads a JSON deployment playbook.
func LoadPlaybook(path string) (*Playbook, error) { return deploy.Load(path) }

// ParsePlaybook decodes a JSON deployment playbook.
func ParsePlaybook(raw []byte) (*Playbook, error) { return deploy.Parse(raw) }

// DeployPlaybook builds the SUT a playbook declares.
func DeployPlaybook(pb *Playbook, s Sched) (Blockchain, error) { return pb.Run(s) }

// ChainKinds lists the chain kinds playbooks may declare.
func ChainKinds() []string { return deploy.Kinds() }
