package hammer

import (
	"time"

	"hammer/internal/monitor"
)

// Monitoring API — the Prometheus-equivalent of the paper's visualization
// phase. Hand a registry to EvalConfig.Metrics and the engine publishes
// driver counters (submitted/completed/rejected), the SUT's pending depth,
// and a confirmation-latency histogram; scrape it yourself or run a
// Collector.
type (
	// MetricsRegistry names and stores counters, gauges and histograms.
	MetricsRegistry = monitor.Registry
	// MetricsSample is one scraped data point.
	MetricsSample = monitor.Sample
	// MetricsCollector periodically scrapes a registry into a sink.
	MetricsCollector = monitor.Collector
)

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return monitor.NewRegistry() }

// NewMetricsCollector starts scraping reg every interval into sink; Close
// the collector to stop it.
func NewMetricsCollector(reg *MetricsRegistry, interval time.Duration, sink func([]MetricsSample)) (*MetricsCollector, error) {
	return monitor.NewCollector(reg, interval, sink)
}
