package hammer

import (
	"hammer/internal/ycsb"
)

// YCSB workload API — the other synthetic workload family the paper
// discusses (§II-B). Plug it into an evaluation through EvalConfig.Source
// and EvalConfig.Contract:
//
//	gen, _ := hammer.NewYCSBGenerator(hammer.DefaultYCSBProfile())
//	cfg.Source = gen
//	cfg.Contract = hammer.YCSB()
type (
	// YCSBProfile configures a YCSB workload.
	YCSBProfile = ycsb.Profile
	// YCSBGenerator draws YCSB transactions; it satisfies the engine's
	// TxSource.
	YCSBGenerator = ycsb.Generator
	// YCSBMix weights YCSB operations.
	YCSBMix = ycsb.Mix
)

// DefaultYCSBProfile is workload A over 10k records with zipfian access.
func DefaultYCSBProfile() YCSBProfile { return ycsb.DefaultProfile() }

// NewYCSBGenerator validates the profile and builds a generator.
func NewYCSBGenerator(p YCSBProfile) (*YCSBGenerator, error) { return ycsb.NewGenerator(p) }

// YCSB is the key-value contract the YCSB workload drives.
func YCSB() Contract { return ycsb.Contract{} }

// YCSBWorkloadMix resolves the classic mixes by name ("a".."f").
func YCSBWorkloadMix(name string) (YCSBMix, error) { return ycsb.MixByName(name) }
