package hammer

import (
	"hammer/internal/models"
	"hammer/internal/timeseries"
	"hammer/internal/timeseries/datasets"
)

// Workload-prediction API (paper §IV).
type (
	// Predictor is a trained one-step-ahead workload forecaster.
	Predictor = models.Predictor
	// PredictorConfig hyper-parameterises a predictor.
	PredictorConfig = models.Config
	// PredictorMetrics is one Table III row (MAE/MSE/RMSE/R²).
	PredictorMetrics = models.Metrics
	// TxLog is a synthetic application transaction log.
	TxLog = datasets.TxLog
)

// DefaultPredictorConfig is the Table III configuration.
func DefaultPredictorConfig() PredictorConfig { return models.DefaultConfig() }

// NewWorkloadPredictor builds the paper's TCN → BiGRU → multi-head-attention
// model.
func NewWorkloadPredictor(cfg PredictorConfig) Predictor { return models.NewHammer(cfg) }

// Baseline predictors of Table III.
func NewLinearPredictor(cfg PredictorConfig) Predictor      { return models.NewLinear(cfg) }
func NewRNNPredictor(cfg PredictorConfig) Predictor         { return models.NewRNN(cfg) }
func NewTCNPredictor(cfg PredictorConfig) Predictor         { return models.NewTCN(cfg) }
func NewTransformerPredictor(cfg PredictorConfig) Predictor { return models.NewTransformer(cfg) }

// EvaluatePredictor scores one-step-ahead forecasts whose targets lie in
// series[trainLen:], on the normalized scale of Table III.
func EvaluatePredictor(p Predictor, series []float64, trainLen int) (PredictorMetrics, error) {
	return models.EvaluateNormalized(p, series, trainLen)
}

// ExtendSeries autoregressively extends a series by steps values — the
// control-sequence extension of §IV.
func ExtendSeries(p Predictor, seed []float64, steps int) ([]float64, error) {
	return models.Generate(p, seed, steps)
}

// Synthetic application logs matching the paper's three corpora.
func DeFiLog(seed int64) TxLog    { return datasets.DeFi(seed) }
func SandboxLog(seed int64) TxLog { return datasets.Sandbox(seed) }
func NFTsLog(seed int64) TxLog    { return datasets.NFTs(seed) }

// SplitSeries divides a series into train and test parts.
func SplitSeries(series []float64, trainFrac float64) (train, test []float64) {
	return timeseries.Split(series, trainFrac)
}
