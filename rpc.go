package hammer

import (
	"time"

	"hammer/internal/rpc"
)

// RPCServer bridges any Blockchain onto JSON-RPC 2.0 over HTTP — the
// paper's generic interface for SUTs in any language.
type RPCServer = rpc.Server

// RPCClient implements Blockchain against a remote bridge.
type RPCClient = rpc.Client

// ServeRPC exposes bc over JSON-RPC on addr ("127.0.0.1:0" picks a free
// port) and returns the server and its bound address. When a Realtime
// driver is advancing the chain, pass its Do method as serialize; pass nil
// otherwise.
func ServeRPC(bc Blockchain, addr string, serialize func(func())) (*RPCServer, string, error) {
	var opts []rpc.ServerOption
	if serialize != nil {
		opts = append(opts, rpc.WithSerializer(serialize))
	}
	srv := rpc.NewServer(bc, opts...)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// DialRPC connects to a remote bridge; the returned client satisfies
// Blockchain and can be handed straight to the evaluation engine.
func DialRPC(url string, timeout time.Duration) (*RPCClient, error) {
	return rpc.Dial(url, timeout)
}
