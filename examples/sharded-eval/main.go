// Sharded evaluation: drive the two-shard Meepo deployment with a pure
// transfer workload, then break the measurement down by shard and verify
// the framework's statistics against each shard's commit log — the
// sharding-aware evaluation that, per the paper, no prior framework offers.
package main

import (
	"context"

	"fmt"
	"log"
	"time"

	"hammer"
)

func main() {
	sched := hammer.NewScheduler()
	mcfg := hammer.DefaultMeepoConfig()
	mcfg.Shards = 2
	bc := hammer.NewMeepo(sched, mcfg)

	cfg := hammer.DefaultEvalConfig()
	cfg.Workload.Accounts = 10000 // ≈5000 per shard, as in the paper
	cfg.Workload.OpMix = map[string]float64{hammer.OpTransfer: 1}
	cfg.Clients = 8
	cfg.SubmitCost = 100 * time.Microsecond
	// ~1500 tx/s per shard; with roughly half the transfers crossing
	// shards (and costing execution on both sides), this sits just under
	// the deployment's effective capacity.
	cfg.Control = hammer.ConstantLoad(3000, 30*time.Second, time.Second)

	res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report)

	// Per-shard breakdown from the node-side audit log.
	audit, err := hammer.VerifyAgainstAuditLog(res.Records, bc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: %d/%d framework-committed transactions matched the shards' commit logs\n",
		audit.Matched, audit.FrameworkCommitted)

	perShard := make(map[int]int)
	var crossShard int
	// Shard attribution comes from the committed blocks themselves.
	for shard := 0; shard < bc.Shards(); shard++ {
		for h := uint64(1); h <= bc.Height(shard); h++ {
			blk, ok := bc.BlockAt(shard, h)
			if !ok {
				continue
			}
			for _, r := range blk.Receipts {
				if r.Status == hammer.StatusCommitted {
					perShard[shard]++
				}
			}
		}
	}
	for shard := 0; shard < bc.Shards(); shard++ {
		fmt.Printf("shard %d: %d commits over %d blocks\n", shard, perShard[shard], bc.Height(shard))
	}

	// Cross-shard transfers commit in the destination shard one epoch after
	// the source debit; their share explains the latency tail.
	for _, rec := range res.Records {
		if rec.Status == hammer.StatusCommitted && rec.Latency() > 2*mcfg.EpochInterval {
			crossShard++
		}
	}
	fmt.Printf("%d commits (%.1f%%) took more than two epochs — the cross-epoch relay at work\n",
		crossShard, 100*float64(crossShard)/float64(res.Report.Committed))
}
