// Quickstart: evaluate one blockchain in a dozen lines. A simulated Fabric
// network is deployed on a virtual clock, loaded with 200 tx/s of SmallBank
// traffic for 30 virtual seconds, and measured with Hammer's task-processing
// driver — all in well under a second of real time.
package main

import (
	"context"

	"fmt"
	"log"
	"time"

	"hammer"
)

func main() {
	sched := hammer.NewScheduler()
	bc := hammer.NewFabric(sched, hammer.DefaultFabricConfig())

	cfg := hammer.DefaultEvalConfig()
	cfg.Workload.Accounts = 2000
	cfg.Control = hammer.ConstantLoad(200, 30*time.Second, time.Second)

	res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Report)
	fmt.Printf("peak second: %.0f TPS; preparation took %v of real time\n",
		res.Report.PeakTPS(), res.PrepDuration.Round(time.Millisecond))
}
