// Custom chain through the generic RPC interface: implement your own
// Blockchain (here, a toy round-robin-batching chain), expose it over the
// JSON-RPC bridge, and evaluate it through an RPC client — demonstrating
// how a SUT written in any language plugs into the framework (§III-A2).
package main

import (
	"context"

	"fmt"
	"log"
	"sync"
	"time"

	"hammer"
)

// toyChain is a minimal user-defined SUT: it batches submissions and seals a
// block every second of virtual time, executing against an in-memory map.
type toyChain struct {
	sched *hammer.Scheduler

	mu        sync.Mutex
	contracts map[string]hammer.Contract
	state     map[string][]byte
	pending   []*hammer.Transaction
	blocks    []*hammer.Block
	running   bool
}

type toyCtx struct{ c *toyChain }

func (t *toyCtx) Get(key string) ([]byte, bool) { v, ok := t.c.state[key]; return v, ok }
func (t *toyCtx) Put(key string, val []byte)    { t.c.state[key] = val }
func (t *toyCtx) Del(key string)                { delete(t.c.state, key) }

func newToyChain(sched *hammer.Scheduler) *toyChain {
	return &toyChain{
		sched:     sched,
		contracts: map[string]hammer.Contract{},
		state:     map[string][]byte{},
	}
}

func (c *toyChain) Name() string { return "toychain" }
func (c *toyChain) Shards() int  { return 1 }

func (c *toyChain) Deploy(ct hammer.Contract) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.contracts[ct.Name()] = ct
	return nil
}

func (c *toyChain) Submit(tx *hammer.Transaction) (hammer.TxID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tx.ID == (hammer.TxID{}) {
		tx.ComputeID()
	}
	c.pending = append(c.pending, tx)
	return tx.ID, nil
}

func (c *toyChain) Height(int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint64(len(c.blocks))
}

func (c *toyChain) BlockAt(_ int, h uint64) (*hammer.Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h == 0 || h > uint64(len(c.blocks)) {
		return nil, false
	}
	return c.blocks[h-1], true
}

func (c *toyChain) PendingTxs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

func (c *toyChain) Start() {
	c.mu.Lock()
	c.running = true
	c.mu.Unlock()
	c.sched.Every(time.Second, c.seal)
}

func (c *toyChain) Stop() {
	c.mu.Lock()
	c.running = false
	c.mu.Unlock()
}

func (c *toyChain) seal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.running || len(c.pending) == 0 {
		return
	}
	blk := &hammer.Block{
		Height:    uint64(len(c.blocks) + 1),
		Timestamp: c.sched.Now(),
		Txs:       c.pending,
		Proposer:  "toy-node",
	}
	for _, tx := range c.pending {
		r := &hammer.Receipt{TxID: tx.ID, Height: blk.Height, BlockTime: blk.Timestamp}
		ct, ok := c.contracts[tx.Contract]
		if !ok {
			r.Status = hammer.StatusAborted
			r.Err = "unknown contract"
		} else if err := ct.Invoke(&toyCtx{c: c}, tx.Op, tx.Args); err != nil {
			r.Status = hammer.StatusAborted
			r.Err = err.Error()
		} else {
			r.Status = hammer.StatusCommitted
		}
		blk.Receipts = append(blk.Receipts, r)
	}
	blk.Seal()
	c.pending = nil
	c.blocks = append(c.blocks, blk)
}

func main() {
	// Evaluate the toy chain directly first.
	sched := hammer.NewScheduler()
	bc := newToyChain(sched)

	cfg := hammer.DefaultEvalConfig()
	cfg.Workload.Accounts = 500
	cfg.Control = hammer.ConstantLoad(100, 15*time.Second, time.Second)
	res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-process:", res.Report)

	// Now expose a second instance over JSON-RPC, driven in (accelerated)
	// real time, and interact with it through the generic client.
	sched2 := hammer.NewScheduler()
	bc2 := newToyChain(sched2)
	if err := bc2.Deploy(hammer.SmallBank()); err != nil {
		log.Fatal(err)
	}
	rt := hammer.NewRealtime(sched2, 50) // 50× accelerated
	rt.Start()
	defer rt.Stop()
	rt.Do(func() { bc2.Start() })

	srv, addr, err := hammer.ServeRPC(bc2, "127.0.0.1:0", rt.Do)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("toy chain serving JSON-RPC at", addr)

	client, err := hammer.DialRPC("http://"+addr, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dialed %q with %d shard(s)\n", client.Name(), client.Shards())

	tx := &hammer.Transaction{
		Contract: "smallbank",
		Op:       "create",
		Args:     []string{"alice", "100", "100"},
	}
	id, err := client.Submit(tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("submitted", id.Short(), "over RPC; waiting for a block...")

	deadline := time.Now().Add(10 * time.Second)
	for client.Height(0) == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if h := client.Height(0); h > 0 {
		blk, ok := client.BlockAt(0, h)
		if ok {
			fmt.Printf("block %d sealed with %d transaction(s) at virtual t=%v\n",
				blk.Height, len(blk.Txs), blk.Timestamp)
		}
	} else {
		fmt.Println("no block sealed before the deadline")
	}
}
