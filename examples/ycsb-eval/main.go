// YCSB evaluation: drive the classic key-value workload mixes (A, B, C, F)
// through the same evaluation pipeline the SmallBank experiments use,
// demonstrating the engine's pluggable workload sources. Update-heavy mixes
// conflict under Fabric's MVCC; read-mostly mixes sail through — the kind of
// contract-level insight the framework exists to surface.
package main

import (
	"context"

	"fmt"
	"log"
	"os"
	"time"

	"hammer"
	"hammer/internal/viz"
)

func main() {
	var rows [][]string
	for _, mix := range []string{"a", "b", "c", "f"} {
		sched := hammer.NewScheduler()
		bc := hammer.NewFabric(sched, hammer.DefaultFabricConfig())

		profile := hammer.DefaultYCSBProfile()
		profile.Records = 5000
		profile.Workload = mix
		gen, err := hammer.NewYCSBGenerator(profile)
		if err != nil {
			log.Fatal(err)
		}

		cfg := hammer.DefaultEvalConfig()
		cfg.Source = gen
		cfg.Contract = hammer.YCSB()
		cfg.Control = hammer.ConstantLoad(200, 20*time.Second, time.Second)

		res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
		if err != nil {
			log.Fatalf("workload %s: %v", mix, err)
		}
		rep := res.Report
		fmt.Printf("workload %s: %s\n", mix, rep)
		rows = append(rows, []string{
			"YCSB-" + mix,
			fmt.Sprintf("%.1f", rep.Throughput),
			rep.AvgLatency.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", 100*float64(rep.Aborted)/float64(rep.Submitted)),
		})
	}
	fmt.Println()
	viz.Table(os.Stdout, []string{"workload", "TPS", "avg latency", "conflict aborts"}, rows)
	fmt.Println("\nupdate-heavy mixes (A, F) abort on MVCC conflicts over the zipfian hot keys;")
	fmt.Println("read-mostly mixes (B, C) commit nearly everything.")
}
