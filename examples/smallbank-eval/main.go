// SmallBank evaluation across all four supported blockchain architectures —
// the scenario behind the paper's Fig 6. Each chain is deployed fresh,
// pushed to peak load, and measured with the same driver, demonstrating the
// framework's claim of evaluating sharded and non-sharded systems alike.
package main

import (
	"context"

	"fmt"
	"log"
	"os"
	"time"

	"hammer"
	"hammer/internal/viz"
)

type target struct {
	name  string
	build func(*hammer.Scheduler) hammer.Blockchain
	rate  float64
	tweak func(*hammer.EvalConfig)
}

func main() {
	targets := []target{
		{
			name: "ethereum",
			build: func(s *hammer.Scheduler) hammer.Blockchain {
				cfg := hammer.DefaultEthereumConfig()
				cfg.MempoolCap = 100
				return hammer.NewEthereum(s, cfg)
			},
			rate: 50,
			tweak: func(c *hammer.EvalConfig) {
				c.DrainTimeout = 5 * time.Minute
			},
		},
		{
			name: "fabric",
			build: func(s *hammer.Scheduler) hammer.Blockchain {
				cfg := hammer.DefaultFabricConfig()
				cfg.PendingCap = 300
				return hammer.NewFabric(s, cfg)
			},
			rate: 400,
			tweak: func(c *hammer.EvalConfig) {
				c.Clients = 4
				c.SubmitCost = 500 * time.Microsecond
			},
		},
		{
			name: "meepo (2 shards)",
			build: func(s *hammer.Scheduler) hammer.Blockchain {
				return hammer.NewMeepo(s, hammer.DefaultMeepoConfig())
			},
			rate: 6000,
			tweak: func(c *hammer.EvalConfig) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
				// Sharded runs drive pure transfers, as the paper does.
				c.Workload.OpMix = map[string]float64{hammer.OpTransfer: 1}
			},
		},
		{
			name: "neuchain",
			build: func(s *hammer.Scheduler) hammer.Blockchain {
				return hammer.NewNeuchain(s, hammer.DefaultNeuchainConfig())
			},
			rate: 10000,
			tweak: func(c *hammer.EvalConfig) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
		},
	}

	var rows [][]string
	var bars []viz.BarGroup
	for _, tg := range targets {
		sched := hammer.NewScheduler()
		bc := tg.build(sched)

		cfg := hammer.DefaultEvalConfig()
		cfg.Workload.Accounts = 2000
		cfg.Control = hammer.ConstantLoad(tg.rate, 20*time.Second, time.Second)
		if tg.tweak != nil {
			tg.tweak(&cfg)
		}

		res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
		if err != nil {
			log.Fatalf("%s: %v", tg.name, err)
		}
		rep := res.Report
		fmt.Println(rep)
		rows = append(rows, []string{
			tg.name,
			fmt.Sprintf("%.1f", rep.Throughput),
			rep.AvgLatency.Round(time.Millisecond).String(),
			rep.P95Latency.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", 100*rep.SuccessRate()),
		})
		bars = append(bars, viz.BarGroup{Label: tg.name, Values: []float64{rep.Throughput}})
	}

	fmt.Println()
	viz.Table(os.Stdout, []string{"chain", "TPS", "avg latency", "p95 latency", "success"}, rows)
	fmt.Println()
	viz.BarChart(os.Stdout, "peak throughput under SmallBank (TPS)", []string{""}, bars, 48)
}
