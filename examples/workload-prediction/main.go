// Workload prediction end to end — the paper's central workflow (§IV): learn
// the temporal behaviour of a real application's transaction log, extend it
// into an arbitrarily long control sequence, and evaluate a blockchain under
// that realistic, bursty load instead of a flat rate.
package main

import (
	"context"

	"fmt"
	"log"
	"os"
	"time"

	"hammer"
	"hammer/internal/viz"
)

func main() {
	// 1. Take the NFT application's hourly transaction series.
	series := hammer.NFTsLog(7).HourlySeries()
	train, test := hammer.SplitSeries(series, 0.8)
	fmt.Printf("NFT log: %d hours (%d train, %d held out)\n", len(series), len(train), len(test))

	// 2. Train the TCN→BiGRU→attention predictor on the training span.
	pcfg := hammer.DefaultPredictorConfig()
	pcfg.Epochs = 60 // example-sized budget; Table III uses the full one
	model := hammer.NewWorkloadPredictor(pcfg)
	start := time.Now()
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}
	m, err := hammer.EvaluatePredictor(model, series, len(train))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v; held-out metrics: %s\n", time.Since(start).Round(time.Millisecond), m)

	// 3. Extend the series autoregressively: 120 future hours the log does
	// not contain — the paper's answer to "control sequences for real
	// workloads are too short for large-scale testing".
	extended, err := hammer.ExtendSeries(model, series, 120)
	if err != nil {
		log.Fatal(err)
	}
	viz.LineChart(os.Stdout, "generated 120-hour continuation of the NFT workload",
		[]viz.Series{{Name: "generated", Y: extended}}, 72, 10)

	// 4. Shape an evaluation: each predicted hour becomes one evaluation
	// second, scaled to 6000 transactions total.
	control := hammer.LoadFromSeries(extended, time.Second, 6000)
	fmt.Printf("control sequence: %d slices, %d transactions, peak %.0f tx/s\n",
		len(control.Counts), control.Total(), control.PeakRate())

	// 5. Evaluate Fabric under the learned temporal shape.
	sched := hammer.NewScheduler()
	bc := hammer.NewFabric(sched, hammer.DefaultFabricConfig())
	cfg := hammer.DefaultEvalConfig()
	cfg.Workload.Accounts = 2000
	cfg.Control = control
	res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report)
	viz.LineChart(os.Stdout, "fabric committed TPS under the learned workload shape",
		[]viz.Series{{Name: "tps", Y: res.Report.TPSSeries}}, 72, 10)
}
