// Package timeseries provides the temporal-workload toolkit behind the
// paper's learning-based control sequences (§IV): hourly bucketing of
// transaction logs, supervised windowing, normalisation, and the regression
// metrics (MAE, MSE, RMSE, R²) of Table III.
package timeseries

import (
	"fmt"
	"math"
	"time"
)

// BucketHourly counts events per hour, producing the control-sequence raw
// material ("we pre-process the datasets by dividing them into hourly
// intervals and counting the number of transactions in each interval").
func BucketHourly(events []time.Duration, hours int) []float64 {
	return Bucket(events, time.Hour, hours)
}

// Bucket counts events per fixed-width interval over `buckets` intervals.
// Events beyond the range are dropped.
func Bucket(events []time.Duration, width time.Duration, buckets int) []float64 {
	out := make([]float64, buckets)
	if width <= 0 {
		return out
	}
	for _, e := range events {
		if e < 0 {
			continue
		}
		b := int(e / width)
		if b < buckets {
			out[b]++
		}
	}
	return out
}

// MAE is the mean absolute error (the paper's training loss, eq. 8).
func MAE(y, yhat []float64) float64 {
	n := minLen(y, yhat)
	if n == 0 {
		return math.NaN()
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(y[i] - yhat[i])
	}
	return sum / float64(n)
}

// MSE is the mean squared error.
func MSE(y, yhat []float64) float64 {
	n := minLen(y, yhat)
	if n == 0 {
		return math.NaN()
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := y[i] - yhat[i]
		sum += d * d
	}
	return sum / float64(n)
}

// RMSE is the root mean squared error.
func RMSE(y, yhat []float64) float64 {
	return math.Sqrt(MSE(y, yhat))
}

// R2 is the coefficient of determination; 1 is a perfect fit and values can
// go negative for fits worse than predicting the mean (as Table III shows
// for the Transformer baseline).
func R2(y, yhat []float64) float64 {
	n := minLen(y, yhat)
	if n == 0 {
		return math.NaN()
	}
	var mean float64
	for i := 0; i < n; i++ {
		mean += y[i]
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

func minLen(a, b []float64) int {
	if len(a) < len(b) {
		return len(a)
	}
	return len(b)
}

// Scaler is a z-score normaliser fit on training data only.
type Scaler struct {
	Mean float64
	Std  float64
}

// FitScaler computes mean and standard deviation of xs.
func FitScaler(xs []float64) Scaler {
	s := Scaler{Std: 1}
	if len(xs) == 0 {
		return s
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, v := range xs {
		d := v - s.Mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(xs)))
	if std > 1e-12 {
		s.Std = std
	}
	return s
}

// Transform normalises xs into a new slice.
func (s Scaler) Transform(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = (v - s.Mean) / s.Std
	}
	return out
}

// Invert maps a normalised value back to the original scale.
func (s Scaler) Invert(v float64) float64 { return v*s.Std + s.Mean }

// InvertAll maps a normalised slice back to the original scale.
func (s Scaler) InvertAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = s.Invert(v)
	}
	return out
}

// Windows converts a series into supervised (window, target) pairs with the
// given lookback and prediction horizon: X[i] = series[i : i+lookback],
// Y[i] = series[i+lookback+horizon-1].
func Windows(series []float64, lookback, horizon int) (X [][]float64, Y []float64, err error) {
	if lookback <= 0 || horizon <= 0 {
		return nil, nil, fmt.Errorf("timeseries: lookback %d and horizon %d must be positive", lookback, horizon)
	}
	n := len(series) - lookback - horizon + 1
	if n <= 0 {
		return nil, nil, fmt.Errorf("timeseries: series of %d too short for lookback %d + horizon %d", len(series), lookback, horizon)
	}
	X = make([][]float64, n)
	Y = make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = series[i : i+lookback]
		Y[i] = series[i+lookback+horizon-1]
	}
	return X, Y, nil
}

// Split divides a series into train and test parts at the given fraction.
func Split(series []float64, trainFrac float64) (train, test []float64) {
	if trainFrac <= 0 {
		return nil, series
	}
	if trainFrac >= 1 {
		return series, nil
	}
	cut := int(float64(len(series)) * trainFrac)
	return series[:cut], series[cut:]
}
