package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketHourly(t *testing.T) {
	events := []time.Duration{
		0, 30 * time.Minute, // hour 0
		90 * time.Minute,          // hour 1
		5 * time.Hour,             // hour 5
		300 * time.Hour,           // out of range
		-time.Minute,              // negative, dropped
		299*time.Hour + time.Hour, // boundary, out of range
	}
	s := BucketHourly(events, 6)
	if s[0] != 2 || s[1] != 1 || s[5] != 1 {
		t.Fatalf("buckets %v", s)
	}
	var total float64
	for _, v := range s {
		total += v
	}
	if total != 4 {
		t.Fatalf("total %v, want 4", total)
	}
}

func TestMetricsExactValues(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	yhat := []float64{1, 2, 3, 4}
	if MAE(y, yhat) != 0 || MSE(y, yhat) != 0 || RMSE(y, yhat) != 0 {
		t.Fatal("perfect fit should have zero error")
	}
	if R2(y, yhat) != 1 {
		t.Fatal("perfect fit should have R²=1")
	}
	yhat = []float64{2, 3, 4, 5} // off by one everywhere
	if MAE(y, yhat) != 1 {
		t.Fatalf("MAE %v", MAE(y, yhat))
	}
	if MSE(y, yhat) != 1 {
		t.Fatalf("MSE %v", MSE(y, yhat))
	}
	if RMSE(y, yhat) != 1 {
		t.Fatalf("RMSE %v", RMSE(y, yhat))
	}
	// Predicting the mean gives R²=0.
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := R2(y, mean); math.Abs(r) > 1e-12 {
		t.Fatalf("R² of mean predictor %v", r)
	}
	// Worse than the mean goes negative (as the paper's Table III shows).
	bad := []float64{4, 3, 2, 1}
	if R2(y, bad) >= 0 {
		t.Fatal("anti-correlated predictor should have negative R²")
	}
	if !math.IsNaN(MAE(nil, nil)) {
		t.Fatal("empty MAE should be NaN")
	}
}

func TestR2ConstantSeries(t *testing.T) {
	y := []float64{5, 5, 5}
	if R2(y, []float64{5, 5, 5}) != 1 {
		t.Fatal("exact constant fit should be 1")
	}
	if !math.IsInf(R2(y, []float64{6, 6, 6}), -1) {
		t.Fatal("miss on constant series should be -Inf")
	}
}

func TestScalerRoundTrip(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	s := FitScaler(xs)
	if s.Mean != 5 {
		t.Fatalf("mean %v", s.Mean)
	}
	norm := s.Transform(xs)
	var sum float64
	for _, v := range norm {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatal("normalised series should be zero-mean")
	}
	back := s.InvertAll(norm)
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-9 {
			t.Fatal("invert(transform) should round-trip")
		}
	}
	// Degenerate series keep Std=1 to avoid division by zero.
	deg := FitScaler([]float64{3, 3, 3})
	if deg.Std != 1 {
		t.Fatalf("degenerate std %v", deg.Std)
	}
	empty := FitScaler(nil)
	if empty.Std != 1 || empty.Mean != 0 {
		t.Fatal("empty scaler defaults")
	}
}

func TestWindows(t *testing.T) {
	series := []float64{0, 1, 2, 3, 4, 5}
	X, Y, err := Windows(series, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 3 {
		t.Fatalf("%d windows", len(X))
	}
	if X[0][0] != 0 || X[0][2] != 2 || Y[0] != 3 {
		t.Fatalf("first window %v → %v", X[0], Y[0])
	}
	if Y[2] != 5 {
		t.Fatalf("last target %v", Y[2])
	}
	// Horizon 2 shifts targets.
	_, Y2, err := Windows(series, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if Y2[0] != 4 {
		t.Fatalf("horizon-2 target %v", Y2[0])
	}
	if _, _, err := Windows(series, 6, 1); err == nil {
		t.Fatal("too-short series should error")
	}
	if _, _, err := Windows(series, 0, 1); err == nil {
		t.Fatal("zero lookback should error")
	}
}

func TestSplit(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	train, test := Split(series, 0.8)
	if len(train) != 8 || len(test) != 2 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
	train, test = Split(series, 0)
	if train != nil || len(test) != 10 {
		t.Fatal("zero fraction should keep everything in test")
	}
	train, test = Split(series, 1)
	if len(train) != 10 || test != nil {
		t.Fatal("unit fraction should keep everything in train")
	}
}

// TestQuickScalerInverse property-tests invert∘transform = identity.
func TestQuickScalerInverse(t *testing.T) {
	prop := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		s := FitScaler(xs)
		for _, v := range xs {
			back := s.Invert((v - s.Mean) / s.Std)
			scale := math.Max(1, math.Abs(v))
			if math.Abs(back-v)/scale > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
