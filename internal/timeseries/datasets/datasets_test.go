package datasets

import (
	"sort"
	"testing"
)

func TestCorpusSizes(t *testing.T) {
	targets := map[string]int{"defi": 1791, "sandbox": 22674, "nfts": 233014}
	for _, log := range All(7) {
		want := targets[log.Name]
		got := len(log.Times)
		if got < want*9/10 || got > want*11/10 {
			t.Errorf("%s corpus %d, want ≈%d", log.Name, got, want)
		}
	}
}

func TestTimesSortedAndInRange(t *testing.T) {
	for _, log := range All(3) {
		if !sort.SliceIsSorted(log.Times, func(i, j int) bool { return log.Times[i] < log.Times[j] }) {
			t.Errorf("%s timestamps not sorted", log.Name)
		}
		for _, ts := range log.Times {
			if ts < 0 || ts.Hours() >= Hours {
				t.Errorf("%s timestamp %v outside the 300h window", log.Name, ts)
				break
			}
		}
	}
}

func TestHourlySeriesConsistent(t *testing.T) {
	log := Sandbox(5)
	series := log.HourlySeries()
	if len(series) != Hours {
		t.Fatalf("series length %d", len(series))
	}
	var total float64
	for _, v := range series {
		total += v
	}
	if int(total) != len(log.Times) {
		t.Fatalf("series sums to %v, log has %d events", total, len(log.Times))
	}
}

func TestDeterminism(t *testing.T) {
	a := NFTs(11).HourlySeries()
	b := NFTs(11).HourlySeries()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should generate the same dataset")
		}
	}
	c := NFTs(12).HourlySeries()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestTemporalCharacter(t *testing.T) {
	burstiness := func(series []float64) float64 {
		var sum, max float64
		for _, v := range series {
			sum += v
			if v > max {
				max = v
			}
		}
		return max / (sum / float64(len(series)))
	}
	nfts := NFTs(9).HourlySeries()
	sandbox := Sandbox(8).HourlySeries()
	// Fig 1: sandbox games burst far harder than the other applications.
	// (DeFi is excluded from the ratio check: at ~6 events/hour its
	// max/mean is dominated by Poisson noise, not genuine bursts.)
	if burstiness(sandbox) < 1.4*burstiness(nfts) {
		t.Fatalf("sandbox burstiness %.2f vs nfts %.2f — expected a clear gap",
			burstiness(sandbox), burstiness(nfts))
	}
}
