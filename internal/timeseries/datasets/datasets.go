// Package datasets synthesises the three application transaction logs the
// paper collects from public chains — DeFi (1,791 transactions), Sandbox
// Games (22,674) and NFTs (233,014), each spanning 300 hours — with the
// temporal traits Fig 1 attributes to them: DeFi and NFTs are compartively
// stable with daily periodicity, while Sandbox Games is dominated by sharp
// bursts. The generators are seeded Poisson processes driven by per-hour
// rate functions composed of base load, daily/weekly cycles, trend and
// decaying burst impulses.
package datasets

import (
	"math"
	"sort"
	"time"

	"hammer/internal/randx"
	"hammer/internal/timeseries"
)

// Hours is the span of each log, matching the paper's 300-hour window.
const Hours = 300

// TxLog is a synthetic application transaction log.
type TxLog struct {
	// Name identifies the application ("defi", "sandbox", "nfts").
	Name string
	// Times are event timestamps from the start of the window, sorted.
	Times []time.Duration
}

// HourlySeries buckets the log into per-hour counts — the paper's
// preprocessing step before training.
func (l TxLog) HourlySeries() []float64 {
	return timeseries.BucketHourly(l.Times, Hours)
}

// shape describes a rate function λ(h) in events per hour.
type shape struct {
	base        float64 // baseline events/hour
	dailyAmp    float64 // amplitude of the 24 h cycle, fraction of base
	weeklyAmp   float64 // amplitude of the 168 h cycle, fraction of base
	trendPerH   float64 // linear drift in events/hour per hour
	noiseFrac   float64 // multiplicative log-normal noise sigma
	burstProb   float64 // probability a burst starts at any hour
	burstScale  float64 // burst peak, multiple of base
	burstDecay  float64 // per-hour geometric decay of an active burst
	burstJitter float64 // randomises burst height ±frac
}

// generate draws a log of roughly total events over Hours hours.
func generate(name string, seed int64, total float64, sh shape) TxLog {
	rng := randx.New(seed)
	rates := make([]float64, Hours)
	// Bursts ramp toward a decaying target rather than jumping in a single
	// hour: real application events (mints, game launches) build over a
	// few hours and fade over many, which is what makes them trackable by
	// a sequence model even though their onset is random.
	var burst, burstTarget float64
	var sum float64
	for h := 0; h < Hours; h++ {
		daily := 1 + sh.dailyAmp*math.Sin(2*math.Pi*float64(h)/24)
		weekly := 1 + sh.weeklyAmp*math.Sin(2*math.Pi*float64(h)/168)
		r := sh.base*daily*weekly + sh.trendPerH*float64(h)
		if rng.Float64() < sh.burstProb {
			peak := sh.burstScale * sh.base * (1 + (rng.Float64()*2-1)*sh.burstJitter)
			if peak > burstTarget {
				burstTarget = peak
			}
		}
		burst += 0.30 * (burstTarget - burst)
		burstTarget *= sh.burstDecay
		r += burst
		if sh.noiseFrac > 0 {
			r *= rng.LogNormal(0, sh.noiseFrac)
		}
		if r < 0 {
			r = 0
		}
		rates[h] = r
		sum += r
	}
	// Normalise so the expected event count matches the paper's corpus
	// size for this application.
	scale := total / sum
	log := TxLog{Name: name}
	for h := 0; h < Hours; h++ {
		n := rng.Poisson(rates[h] * scale)
		for i := 0; i < n; i++ {
			offset := time.Duration(rng.Float64() * float64(time.Hour))
			log.Times = append(log.Times, time.Duration(h)*time.Hour+offset)
		}
	}
	sortDurations(log.Times)
	return log
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// DeFi synthesises the decentralized-finance log: low volume, mild daily
// cycle, stable (Fig 1 shows DeFi as the steadiest of the three).
func DeFi(seed int64) TxLog {
	return generate("defi", seed, 1_791, shape{
		base:       1,
		dailyAmp:   0.35,
		weeklyAmp:  0.10,
		noiseFrac:  0.30,
		burstProb:  0.01,
		burstScale: 2.0,
		burstDecay: 0.5,
	})
}

// Sandbox synthesises the sandbox-game log: moderate volume dominated by
// sharp player-event bursts over a low floor.
func Sandbox(seed int64) TxLog {
	return generate("sandbox", seed, 22_674, shape{
		base:        1,
		dailyAmp:    0.25,
		weeklyAmp:   0.15,
		noiseFrac:   0.12,
		burstProb:   0.04,
		burstScale:  12.0,
		burstDecay:  0.82,
		burstJitter: 0.5,
	})
}

// NFTs synthesises the NFT log: high volume, strong daily periodicity, a
// rising trend, and occasional mint-event bursts.
func NFTs(seed int64) TxLog {
	return generate("nfts", seed, 233_014, shape{
		base:        1,
		dailyAmp:    0.45,
		weeklyAmp:   0.20,
		trendPerH:   0.002,
		noiseFrac:   0.08,
		burstProb:   0.025,
		burstScale:  2.5,
		burstDecay:  0.80,
		burstJitter: 0.4,
	})
}

// All returns the three logs under a base seed.
func All(seed int64) []TxLog {
	return []TxLog{DeFi(seed), Sandbox(seed + 1), NFTs(seed + 2)}
}
