package netsim

import (
	"math"
	"testing"
	"time"

	"hammer/internal/eventsim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"zero", Config{}, true},
		{"negative latency", Config{Latency: -time.Millisecond}, false},
		{"negative bandwidth", Config{BandwidthBps: -1}, false},
		{"negative jitter", Config{JitterFrac: -0.1}, false},
		{"jitter above one", Config{JitterFrac: 1.1}, false},
		{"negative loss", Config{LossFrac: -0.1}, false},
		{"loss above one", Config{LossFrac: 1.5}, false},
		{"full loss", Config{LossFrac: 1}, true},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative BandwidthBps should panic")
		}
	}()
	New(eventsim.New(), Config{BandwidthBps: -5})
}

func TestPartitionBlocksCrossGroupTraffic(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, Seed: 1})
	delivered := map[string]int{}
	send := func(from, to string) {
		n.Send(from, to, 10, func() { delivered[from+"->"+to]++ })
	}

	n.Partition([]string{"a", "b"}, []string{"c"})
	send("a", "c") // dropped: cross-partition
	send("c", "b") // dropped: cross-partition
	send("a", "b") // same group, delivered
	send("a", "d") // d is in no group, delivered
	sched.Run()

	if delivered["a->c"] != 0 || delivered["c->b"] != 0 {
		t.Fatalf("cross-partition messages delivered: %v", delivered)
	}
	if delivered["a->b"] != 1 || delivered["a->d"] != 1 {
		t.Fatalf("intra-group or unassigned messages lost: %v", delivered)
	}
	if n.PartitionDrops() != 2 {
		t.Fatalf("PartitionDrops = %d, want 2", n.PartitionDrops())
	}

	n.Heal()
	send("a", "c")
	sched.Run()
	if delivered["a->c"] != 1 {
		t.Fatal("message after Heal not delivered")
	}
}

func TestPartitionGroupsNWay(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, Seed: 1})
	delivered := map[string]int{}
	send := func(from, to string) {
		n.Send(from, to, 10, func() { delivered[from+"->"+to]++ })
	}

	n.PartitionGroups([][]string{{"a", "b"}, {"c"}, {"d"}})
	send("a", "b") // same group, delivered
	send("a", "c") // dropped
	send("c", "d") // dropped: two non-first groups are isolated from each other too
	send("d", "e") // e is in no group, delivered
	sched.Run()

	if delivered["a->c"] != 0 || delivered["c->d"] != 0 {
		t.Fatalf("cross-group messages delivered: %v", delivered)
	}
	if delivered["a->b"] != 1 || delivered["d->e"] != 1 {
		t.Fatalf("intra-group or unassigned messages lost: %v", delivered)
	}
	if n.PartitionDrops() != 2 {
		t.Fatalf("PartitionDrops = %d, want 2", n.PartitionDrops())
	}

	n.Heal()
	send("c", "d")
	sched.Run()
	if delivered["c->d"] != 1 {
		t.Fatal("message after Heal not delivered")
	}
}

func TestSetLinkQualityExtraLatency(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, Seed: 1})
	n.SetLinkQuality("a", "b", LinkQuality{ExtraLatency: 40 * time.Millisecond})
	var degraded, clean time.Duration
	n.Send("a", "b", 10, func() { degraded = sched.Now() })
	n.Send("b", "a", 10, func() { clean = sched.Now() })
	sched.Run()
	if degraded != 41*time.Millisecond {
		t.Fatalf("degraded link arrival %v, want 41ms", degraded)
	}
	if clean != time.Millisecond {
		t.Fatalf("reverse link arrival %v, want 1ms (degradation is directional)", clean)
	}

	n.ClearLinkQuality("a", "b")
	sendAt := sched.Now()
	var restored time.Duration
	n.Send("a", "b", 10, func() { restored = sched.Now() })
	sched.Run()
	if got := restored - sendAt; got != time.Millisecond {
		t.Fatalf("post-clear arrival delta %v, want 1ms", got)
	}
}

func TestSetLinkQualityLoss(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, Seed: 1})
	n.SetLinkQuality("a", "b", LinkQuality{LossFrac: 1})
	delivered := 0
	n.Send("a", "b", 10, func() { delivered++ })
	n.Send("b", "a", 10, func() { delivered++ })
	sched.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want only the clean reverse link", delivered)
	}
}

func TestLossBurstOverridesAndRestores(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, Seed: 1})
	delivered := 0
	n.SetLossFrac(1)
	n.Send("a", "b", 10, func() { delivered++ })
	n.ResetLossFrac()
	n.Send("a", "b", 10, func() { delivered++ })
	sched.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (burst drops, reset restores)", delivered)
	}
}

// TestLossFracStatistics checks that the configured loss fraction is honoured
// within statistical tolerance over a large sample.
func TestLossFracStatistics(t *testing.T) {
	const (
		sent = 20000
		loss = 0.3
	)
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, LossFrac: loss, Seed: 99})
	for i := 0; i < sent; i++ {
		n.Send("a", "b", 1, func() {})
	}
	sched.Run()
	frac := float64(n.Dropped()) / sent
	// Binomial stddev at p=0.3, n=20000 is ~0.0032; 5 sigma ≈ 0.016.
	if math.Abs(frac-loss) > 0.02 {
		t.Fatalf("drop fraction %.4f, want %.2f ± 0.02", frac, loss)
	}
}

// TestLossDeterministicAcrossRuns pins the determinism guarantee: with the
// same seed, the exact set of dropped messages and every arrival time are
// byte-identical across runs.
func TestLossDeterministicAcrossRuns(t *testing.T) {
	trace := func() ([]int, []time.Duration) {
		sched := eventsim.New()
		n := New(sched, Config{Latency: time.Millisecond, JitterFrac: 0.2, LossFrac: 0.25, Seed: 7})
		var delivered []int
		var arrivals []time.Duration
		for i := 0; i < 5000; i++ {
			i := i
			n.Send("a", "b", 64, func() {
				delivered = append(delivered, i)
				arrivals = append(arrivals, sched.Now())
			})
		}
		sched.Run()
		return delivered, arrivals
	}
	d1, a1 := trace()
	d2, a2 := trace()
	if len(d1) != len(d2) {
		t.Fatalf("delivered %d vs %d messages across identical runs", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] || a1[i] != a2[i] {
			t.Fatalf("run divergence at %d: msg %d@%v vs msg %d@%v", i, d1[i], a1[i], d2[i], a2[i])
		}
	}
}
