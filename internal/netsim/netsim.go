// Package netsim models the cluster network between simulated blockchain
// nodes: point-to-point links with propagation latency and finite bandwidth,
// matching the paper's testbed of 5 nodes joined by ~100 Mbps links. Message
// delivery is scheduled on the shared discrete-event scheduler, so network
// delay enters every consensus round trip.
//
// Beyond the healthy-cluster model, the network is a fault-injection target
// for the chaos subsystem (internal/chaos): Partition/Heal split the node set
// into isolated groups, SetLinkQuality degrades individual links with extra
// latency and loss, and SetLossFrac imposes a global loss burst. All fault
// state changes take effect at the virtual instant they are applied and are
// fully deterministic: with a fixed Config.Seed the delivery (and drop)
// schedule is byte-identical across runs.
package netsim

import (
	"fmt"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/randx"
)

// Config describes the homogeneous cluster network.
type Config struct {
	// Latency is the one-way propagation delay between two distinct nodes,
	// in virtual time. Must be >= 0.
	Latency time.Duration
	// BandwidthBps is the per-link bandwidth in BYTES per second (not
	// bits); zero means unlimited. Must be >= 0.
	BandwidthBps float64
	// JitterFrac randomises each delivery's propagation delay by a uniform
	// factor in [1-JitterFrac, 1+JitterFrac]. Dimensionless fraction in
	// [0, 1].
	JitterFrac float64
	// LossFrac silently drops this fraction of messages — failure
	// injection for testing the framework's timeout and drain paths.
	// Dimensionless probability in [0, 1].
	LossFrac float64
	// Seed seeds the jitter and loss streams. Any int64; equal seeds (with
	// equal configs and send sequences) reproduce identical delivery
	// schedules.
	Seed int64
}

// Validate rejects configurations that are physically meaningless: negative
// latency or bandwidth, or jitter/loss fractions outside [0, 1].
func (c Config) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("netsim: Latency %v must be >= 0", c.Latency)
	}
	if c.BandwidthBps < 0 {
		return fmt.Errorf("netsim: BandwidthBps %f must be >= 0 (bytes/s, 0 = unlimited)", c.BandwidthBps)
	}
	if c.JitterFrac < 0 || c.JitterFrac > 1 {
		return fmt.Errorf("netsim: JitterFrac %f must be in [0, 1]", c.JitterFrac)
	}
	if c.LossFrac < 0 || c.LossFrac > 1 {
		return fmt.Errorf("netsim: LossFrac %f must be in [0, 1]", c.LossFrac)
	}
	return nil
}

// DefaultConfig approximates the paper's Aliyun cluster: 100 Mbps links with
// ~1 ms intra-datacenter latency.
func DefaultConfig() Config {
	return Config{
		Latency:      1 * time.Millisecond,
		BandwidthBps: 100e6 / 8, // 100 Mbps
		JitterFrac:   0.1,
		Seed:         1,
	}
}

// LinkQuality is a per-link degradation applied on top of the base Config:
// ExtraLatency is added to the one-way propagation delay, and LossFrac is an
// additional independent drop probability in [0, 1] for messages on that
// link.
type LinkQuality struct {
	ExtraLatency time.Duration
	LossFrac     float64
}

// Network delivers messages between named nodes over the virtual clock.
type Network struct {
	cfg   Config
	sched eventsim.Sched
	rng   *randx.Rand
	// busyUntil tracks per-link serialisation: a link transmits one message
	// at a time, so bandwidth limits queue large payloads.
	busyUntil map[string]time.Duration

	// fault-injection state (set by internal/chaos)
	// partition maps node name -> group id; messages between nodes in
	// different groups are dropped. Nil/absent nodes reach everyone.
	partition map[string]int
	// linkQuality holds per-link degradations keyed "from->to".
	linkQuality map[string]LinkQuality
	// lossOverride, when >= 0, replaces Config.LossFrac (loss burst).
	lossOverride float64

	// stats
	sent           int
	dropped        int
	partitionDrops int
	bytesSent      int64
}

// New builds a network on the given scheduler. Invalid configurations panic:
// like scheduling an event in the past, a negative bandwidth indicates a
// simulation bug, not a recoverable runtime condition. Callers wiring
// user-supplied values should run Config.Validate first.
func New(sched eventsim.Sched, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		cfg:          cfg,
		sched:        sched,
		rng:          randx.New(cfg.Seed),
		busyUntil:    make(map[string]time.Duration),
		lossOverride: -1,
	}
}

// Partition splits the network: nodes in a are isolated from nodes in b
// (messages in either direction are dropped) until Heal. Nodes in neither
// group keep full connectivity. Calling Partition again replaces the previous
// partition.
func (n *Network) Partition(a, b []string) {
	n.PartitionGroups([][]string{a, b})
}

// PartitionGroups splits the network into an arbitrary number of isolated
// groups: messages between nodes in different groups are dropped until Heal.
// Nodes in no group keep full connectivity; a node listed in several groups
// lands in the last one. Calling PartitionGroups again replaces the previous
// partition.
func (n *Network) PartitionGroups(groups [][]string) {
	n.partition = make(map[string]int)
	for i, g := range groups {
		for _, name := range g {
			n.partition[name] = i + 1
		}
	}
}

// Heal removes the current partition; all nodes regain full connectivity.
func (n *Network) Heal() {
	n.partition = nil
}

// Partitioned reports whether from->to traffic is currently blocked by a
// partition.
func (n *Network) Partitioned(from, to string) bool {
	if n.partition == nil {
		return false
	}
	ga, oka := n.partition[from]
	gb, okb := n.partition[to]
	return oka && okb && ga != gb
}

// SetLinkQuality degrades the directed link from->to: q.ExtraLatency is added
// to its propagation delay and q.LossFrac drops that fraction of its
// messages, on top of the global configuration. It panics on a LossFrac
// outside [0, 1].
func (n *Network) SetLinkQuality(from, to string, q LinkQuality) {
	if q.LossFrac < 0 || q.LossFrac > 1 {
		panic(fmt.Sprintf("netsim: SetLinkQuality LossFrac %f must be in [0, 1]", q.LossFrac))
	}
	if n.linkQuality == nil {
		n.linkQuality = make(map[string]LinkQuality)
	}
	n.linkQuality[from+"->"+to] = q
}

// ClearLinkQuality restores the directed link from->to to the base Config.
func (n *Network) ClearLinkQuality(from, to string) {
	delete(n.linkQuality, from+"->"+to)
}

// SetLossFrac imposes a global loss burst: frac replaces Config.LossFrac for
// every message until ResetLossFrac. It panics on a fraction outside [0, 1].
func (n *Network) SetLossFrac(frac float64) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("netsim: SetLossFrac %f must be in [0, 1]", frac))
	}
	n.lossOverride = frac
}

// ResetLossFrac ends a loss burst, restoring Config.LossFrac.
func (n *Network) ResetLossFrac() {
	n.lossOverride = -1
}

// lossFrac is the currently effective global loss probability.
func (n *Network) lossFrac() float64 {
	if n.lossOverride >= 0 {
		return n.lossOverride
	}
	return n.cfg.LossFrac
}

// Send schedules deliver to run on the virtual timeline after the link
// latency plus transmission time for size bytes. Messages between the same
// (from, to) pair are serialised, modeling a single TCP stream.
func (n *Network) Send(from, to string, size int, deliver func()) {
	if deliver == nil {
		panic("netsim: Send with nil deliver")
	}
	if n.Partitioned(from, to) {
		n.dropped++
		n.partitionDrops++
		return
	}
	link := from + "->" + to
	var lq LinkQuality
	if n.linkQuality != nil {
		lq = n.linkQuality[link]
	}
	// Loss draws consume the RNG stream only when a loss probability is
	// active, so fault-free runs stay byte-identical to the pre-chaos model.
	if loss := n.lossFrac(); loss > 0 && n.rng.Float64() < loss {
		n.dropped++
		return
	}
	if lq.LossFrac > 0 && n.rng.Float64() < lq.LossFrac {
		n.dropped++
		return
	}
	now := n.sched.Now()
	start := now
	if busy := n.busyUntil[link]; busy > start {
		start = busy
	}
	var xmit time.Duration
	if n.cfg.BandwidthBps > 0 && size > 0 {
		xmit = time.Duration(float64(size) / n.cfg.BandwidthBps * float64(time.Second))
	}
	n.busyUntil[link] = start + xmit
	delay := n.cfg.Latency
	if from == to {
		delay = 0
	}
	arrival := start + xmit + n.rng.Jitter(delay, n.cfg.JitterFrac) + lq.ExtraLatency
	n.sent++
	n.bytesSent += int64(size)
	// Delivery is the receiver's event: key it by destination so a sharded
	// scheduler keeps each node's inbound timers on one wheel.
	n.sched.AtKey(eventsim.Key(to), arrival, deliver)
}

// Broadcast sends size bytes from one node to every other named node.
func (n *Network) Broadcast(from string, peers []string, size int, deliver func(peer string)) {
	for _, p := range peers {
		if p == from {
			continue
		}
		peer := p
		n.Send(from, peer, size, func() { deliver(peer) })
	}
}

// RoundTrip estimates one request/response exchange of the given sizes,
// without scheduling anything. Chains use it for admission-time estimates.
func (n *Network) RoundTrip(reqSize, respSize int) time.Duration {
	var xmit time.Duration
	if n.cfg.BandwidthBps > 0 {
		xmit = time.Duration(float64(reqSize+respSize) / n.cfg.BandwidthBps * float64(time.Second))
	}
	return 2*n.cfg.Latency + xmit
}

// Stats reports messages and bytes sent so far.
func (n *Network) Stats() (messages int, bytes int64) {
	return n.sent, n.bytesSent
}

// Dropped reports messages lost to injected failures (loss draws plus
// partition drops).
func (n *Network) Dropped() int { return n.dropped }

// PartitionDrops reports messages lost to partitions specifically.
func (n *Network) PartitionDrops() int { return n.partitionDrops }

// String summarises the configuration.
func (n *Network) String() string {
	return fmt.Sprintf("netsim(latency=%v, bw=%.0fB/s)", n.cfg.Latency, n.cfg.BandwidthBps)
}
