// Package netsim models the cluster network between simulated blockchain
// nodes: point-to-point links with propagation latency and finite bandwidth,
// matching the paper's testbed of 5 nodes joined by ~100 Mbps links. Message
// delivery is scheduled on the shared discrete-event scheduler, so network
// delay enters every consensus round trip.
package netsim

import (
	"fmt"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/randx"
)

// Config describes the homogeneous cluster network.
type Config struct {
	// Latency is the one-way propagation delay between two distinct nodes.
	Latency time.Duration
	// BandwidthBps is the per-link bandwidth in bytes per second; zero
	// means unlimited.
	BandwidthBps float64
	// JitterFrac randomises each delivery by ±frac.
	JitterFrac float64
	// LossFrac silently drops this fraction of messages — failure
	// injection for testing the framework's timeout and drain paths.
	LossFrac float64
	// Seed seeds the jitter and loss streams.
	Seed int64
}

// DefaultConfig approximates the paper's Aliyun cluster: 100 Mbps links with
// ~1 ms intra-datacenter latency.
func DefaultConfig() Config {
	return Config{
		Latency:      1 * time.Millisecond,
		BandwidthBps: 100e6 / 8, // 100 Mbps
		JitterFrac:   0.1,
		Seed:         1,
	}
}

// Network delivers messages between named nodes over the virtual clock.
type Network struct {
	cfg   Config
	sched *eventsim.Scheduler
	rng   *randx.Rand
	// busyUntil tracks per-link serialisation: a link transmits one message
	// at a time, so bandwidth limits queue large payloads.
	busyUntil map[string]time.Duration
	// stats
	sent      int
	dropped   int
	bytesSent int64
}

// New builds a network on the given scheduler.
func New(sched *eventsim.Scheduler, cfg Config) *Network {
	if cfg.Latency < 0 {
		cfg.Latency = 0
	}
	return &Network{
		cfg:       cfg,
		sched:     sched,
		rng:       randx.New(cfg.Seed),
		busyUntil: make(map[string]time.Duration),
	}
}

// Send schedules deliver to run on the virtual timeline after the link
// latency plus transmission time for size bytes. Messages between the same
// (from, to) pair are serialised, modeling a single TCP stream.
func (n *Network) Send(from, to string, size int, deliver func()) {
	if deliver == nil {
		panic("netsim: Send with nil deliver")
	}
	if n.cfg.LossFrac > 0 && n.rng.Float64() < n.cfg.LossFrac {
		n.dropped++
		return
	}
	now := n.sched.Now()
	link := from + "->" + to
	start := now
	if busy := n.busyUntil[link]; busy > start {
		start = busy
	}
	var xmit time.Duration
	if n.cfg.BandwidthBps > 0 && size > 0 {
		xmit = time.Duration(float64(size) / n.cfg.BandwidthBps * float64(time.Second))
	}
	n.busyUntil[link] = start + xmit
	delay := n.cfg.Latency
	if from == to {
		delay = 0
	}
	arrival := start + xmit + n.rng.Jitter(delay, n.cfg.JitterFrac)
	n.sent++
	n.bytesSent += int64(size)
	n.sched.At(arrival, deliver)
}

// Broadcast sends size bytes from one node to every other named node.
func (n *Network) Broadcast(from string, peers []string, size int, deliver func(peer string)) {
	for _, p := range peers {
		if p == from {
			continue
		}
		peer := p
		n.Send(from, peer, size, func() { deliver(peer) })
	}
}

// RoundTrip estimates one request/response exchange of the given sizes,
// without scheduling anything. Chains use it for admission-time estimates.
func (n *Network) RoundTrip(reqSize, respSize int) time.Duration {
	var xmit time.Duration
	if n.cfg.BandwidthBps > 0 {
		xmit = time.Duration(float64(reqSize+respSize) / n.cfg.BandwidthBps * float64(time.Second))
	}
	return 2*n.cfg.Latency + xmit
}

// Stats reports messages and bytes sent so far.
func (n *Network) Stats() (messages int, bytes int64) {
	return n.sent, n.bytesSent
}

// Dropped reports messages lost to injected failures.
func (n *Network) Dropped() int { return n.dropped }

// String summarises the configuration.
func (n *Network) String() string {
	return fmt.Sprintf("netsim(latency=%v, bw=%.0fB/s)", n.cfg.Latency, n.cfg.BandwidthBps)
}
