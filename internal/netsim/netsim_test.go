package netsim

import (
	"testing"
	"time"

	"hammer/internal/eventsim"
)

func TestSendDelaysByLatency(t *testing.T) {
	sched := eventsim.New()
	cfg := Config{Latency: 10 * time.Millisecond, Seed: 1}
	n := New(sched, cfg)
	var arrived time.Duration
	n.Send("a", "b", 100, func() { arrived = sched.Now() })
	sched.Run()
	if arrived != 10*time.Millisecond {
		t.Fatalf("arrival at %v, want 10ms (no jitter configured)", arrived)
	}
}

func TestBandwidthSerialisesLink(t *testing.T) {
	sched := eventsim.New()
	cfg := Config{Latency: time.Millisecond, BandwidthBps: 1000, Seed: 1} // 1 KB/s
	n := New(sched, cfg)
	var first, second time.Duration
	n.Send("a", "b", 500, func() { first = sched.Now() })  // 500 ms transmission
	n.Send("a", "b", 500, func() { second = sched.Now() }) // queued behind the first
	sched.Run()
	if first < 500*time.Millisecond {
		t.Fatalf("first arrival %v ignores transmission time", first)
	}
	if second < first+400*time.Millisecond {
		t.Fatalf("second arrival %v not serialised behind first %v", second, first)
	}
}

func TestSelfSendIsImmediate(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: 50 * time.Millisecond, Seed: 1})
	var arrived time.Duration
	n.Send("a", "a", 0, func() { arrived = sched.Now() })
	sched.Run()
	if arrived != 0 {
		t.Fatalf("self-send arrived at %v, want immediate", arrived)
	}
}

func TestBroadcastSkipsSelf(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, Seed: 1})
	var got []string
	n.Broadcast("a", []string{"a", "b", "c"}, 10, func(peer string) {
		got = append(got, peer)
	})
	sched.Run()
	if len(got) != 2 {
		t.Fatalf("broadcast reached %v, want b and c only", got)
	}
}

func TestStatsAndRoundTrip(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, BandwidthBps: 1e6, Seed: 1})
	n.Send("a", "b", 1000, func() {})
	sched.Run()
	msgs, bytes := n.Stats()
	if msgs != 1 || bytes != 1000 {
		t.Fatalf("stats %d msgs %d bytes", msgs, bytes)
	}
	rt := n.RoundTrip(1000, 1000)
	if rt < 2*time.Millisecond {
		t.Fatalf("round trip %v ignores latency", rt)
	}
}

func TestSendNilPanics(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("nil deliver should panic")
		}
	}()
	n.Send("a", "b", 1, nil)
}

func TestLossInjection(t *testing.T) {
	sched := eventsim.New()
	n := New(sched, Config{Latency: time.Millisecond, LossFrac: 0.5, Seed: 1})
	delivered := 0
	const sent = 2000
	for i := 0; i < sent; i++ {
		n.Send("a", "b", 1, func() { delivered++ })
	}
	sched.Run()
	if n.Dropped() == 0 {
		t.Fatal("no messages dropped at 50% loss")
	}
	if delivered+n.Dropped() != sent {
		t.Fatalf("delivered %d + dropped %d != sent %d", delivered, n.Dropped(), sent)
	}
	frac := float64(n.Dropped()) / sent
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction %.2f, want ≈0.5", frac)
	}
}
