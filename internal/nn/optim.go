package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// ZeroGrad clears gradients without updating.
	ZeroGrad()
}

// flatOffsets lays all parameter buffers end to end in one flat state
// buffer, returning per-parameter offsets and the total length. Optimizer
// state allocated this way is one contiguous block: a single allocation at
// construction and cache-friendly sweeps in Step.
func flatOffsets(params []*Tensor) ([]int, int) {
	offs := make([]int, len(params))
	total := 0
	for i, p := range params {
		offs[i] = total
		total += len(p.Data)
	}
	return offs, total
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*Tensor
	lr       float64
	momentum float64
	offs     []int
	velocity []float64 // flat, one segment per parameter
}

// NewSGD builds an optimizer over params. All state is allocated here, once;
// Step never allocates.
func NewSGD(params []*Tensor, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum > 0 {
		var total int
		s.offs, total = flatOffsets(params)
		s.velocity = make([]float64, total)
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		if s.momentum > 0 {
			vel := s.velocity[s.offs[i] : s.offs[i]+len(p.Data)]
			for j := range p.Data {
				vel[j] = s.momentum*vel[j] + p.Grad[j]
				p.Data[j] -= s.lr * vel[j]
			}
		} else {
			for j := range p.Data {
				p.Data[j] -= s.lr * p.Grad[j]
			}
		}
	}
	s.ZeroGrad()
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params []*Tensor
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	offs   []int
	m, v   []float64 // flat first/second moments, one segment per parameter
}

// NewAdam builds Adam with the standard betas. Moment buffers are two flat
// contiguous allocations made once here; Step is allocation-free (guarded by
// TestAdamStepDoesNotAllocate).
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	var total int
	a.offs, total = flatOffsets(params)
	a.m = make([]float64, total)
	a.v = make([]float64, total)
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m := a.m[a.offs[i] : a.offs[i]+len(p.Data)]
		v := a.v[a.offs[i] : a.offs[i]+len(p.Data)]
		for j := range p.Data {
			g := p.Grad[j]
			m[j] = a.beta1*m[j] + (1-a.beta1)*g
			v[j] = a.beta2*v[j] + (1-a.beta2)*g*g
			mHat := m[j] / c1
			vHat := v[j] / c2
			p.Data[j] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
		}
	}
	a.ZeroGrad()
}

// ScaleLR multiplies the learning rate (simple step decay schedules).
func (a *Adam) ScaleLR(f float64) {
	if f > 0 {
		a.lr *= f
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm; it returns the pre-clip norm. Recurrent unrolls need this to
// survive burst-heavy series.
func ClipGradNorm(params []*Tensor, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}

// MAELoss is the paper's training loss (eq. 8): mean |y - ŷ|.
func MAELoss(pred, target *Tensor) *Tensor {
	return Mean(Abs(Sub(pred, target)))
}

// MSELoss is mean squared error.
func MSELoss(pred, target *Tensor) *Tensor {
	d := Sub(pred, target)
	return Mean(Mul(d, d))
}
