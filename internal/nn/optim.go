package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// ZeroGrad clears gradients without updating.
	ZeroGrad()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*Tensor
	lr       float64
	momentum float64
	velocity [][]float64
}

// NewSGD builds an optimizer over params.
func NewSGD(params []*Tensor, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum > 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, len(p.Data))
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		for j := range p.Data {
			g := p.Grad[j]
			if s.momentum > 0 {
				s.velocity[i][j] = s.momentum*s.velocity[i][j] + g
				g = s.velocity[i][j]
			}
			p.Data[j] -= s.lr * g
		}
	}
	s.ZeroGrad()
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params []*Tensor
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   [][]float64
}

// NewAdam builds Adam with the standard betas.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		for j := range p.Data {
			g := p.Grad[j]
			a.m[i][j] = a.beta1*a.m[i][j] + (1-a.beta1)*g
			a.v[i][j] = a.beta2*a.v[i][j] + (1-a.beta2)*g*g
			mHat := a.m[i][j] / c1
			vHat := a.v[i][j] / c2
			p.Data[j] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
		}
	}
	a.ZeroGrad()
}

// ScaleLR multiplies the learning rate (simple step decay schedules).
func (a *Adam) ScaleLR(f float64) {
	if f > 0 {
		a.lr *= f
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm; it returns the pre-clip norm. Recurrent unrolls need this to
// survive burst-heavy series.
func ClipGradNorm(params []*Tensor, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}

// MAELoss is the paper's training loss (eq. 8): mean |y - ŷ|.
func MAELoss(pred, target *Tensor) *Tensor {
	return Mean(Abs(Sub(pred, target)))
}

// MSELoss is mean squared error.
func MSELoss(pred, target *Tensor) *Tensor {
	d := Sub(pred, target)
	return Mean(Mul(d, d))
}
