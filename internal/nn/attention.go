package nn

import (
	"math"

	"hammer/internal/randx"
)

// MultiHeadAttention applies self-attention over a Sequence (eqs. 6-7):
// each head projects the steps into query/key/value spaces, scores every
// (t₁, t₂) pair with scaled dot products, softmax-normalises per query step
// and mixes the values; head outputs are concatenated and projected by Wo.
// The paper adds it after the BiGRU to catch sudden workload bursts.
type MultiHeadAttention struct {
	Heads   int
	HeadDim int
	Wq      []*Tensor // per head [model, headDim]
	Wk      []*Tensor
	Wv      []*Tensor
	Wo      *Tensor // [heads*headDim, model]
	Bo      *Tensor // [1, model]
}

// NewMultiHeadAttention builds attention over `model`-wide steps. model must
// be divisible by heads.
func NewMultiHeadAttention(model, heads int, rng *randx.Rand) *MultiHeadAttention {
	if heads <= 0 {
		heads = 1
	}
	headDim := model / heads
	if headDim == 0 {
		headDim = 1
	}
	scale := math.Sqrt(1.0 / float64(model))
	m := &MultiHeadAttention{
		Heads:   heads,
		HeadDim: headDim,
		Wo:      Param(heads*headDim, model, scale, rng),
		Bo:      Zeros(1, model).RequireGrad(),
	}
	for h := 0; h < heads; h++ {
		m.Wq = append(m.Wq, Param(model, headDim, scale, rng))
		m.Wk = append(m.Wk, Param(model, headDim, scale, rng))
		m.Wv = append(m.Wv, Param(model, headDim, scale, rng))
	}
	return m
}

// Forward attends over the sequence, returning a same-length sequence.
func (m *MultiHeadAttention) Forward(seq Sequence) Sequence {
	T := len(seq)
	invSqrt := 1 / math.Sqrt(float64(m.HeadDim))

	// headOut[h][t] is the mixed value for head h at step t.
	headOut := make([][]*Tensor, m.Heads)
	for h := 0; h < m.Heads; h++ {
		q := make([]*Tensor, T)
		k := make([]*Tensor, T)
		v := make([]*Tensor, T)
		for t := 0; t < T; t++ {
			q[t] = MatMul(seq[t], m.Wq[h])
			k[t] = MatMul(seq[t], m.Wk[h])
			v[t] = MatMul(seq[t], m.Wv[h])
		}
		headOut[h] = make([]*Tensor, T)
		if LegacyKernels() {
			for t1 := 0; t1 < T; t1++ {
				// Scores against every step: [B, T].
				scores := make([]*Tensor, T)
				for t2 := 0; t2 < T; t2++ {
					scores[t2] = Scale(SumCols(Mul(q[t1], k[t2])), invSqrt)
				}
				attn := Softmax(ConcatCols(scores...))
				var mixed *Tensor
				for t2 := 0; t2 < T; t2++ {
					w := SliceCols(attn, t2, t2+1)
					term := ColMul(v[t2], w)
					if mixed == nil {
						mixed = term
					} else {
						mixed = Add(mixed, term)
					}
				}
				headOut[h][t1] = mixed
			}
			continue
		}
		for t1 := 0; t1 < T; t1++ {
			// One fused node replaces the score/softmax/mix lattice.
			headOut[h][t1] = attnMix(q[t1], k, v, invSqrt)
		}
	}

	out := make(Sequence, T)
	for t := 0; t < T; t++ {
		parts := make([]*Tensor, m.Heads)
		for h := 0; h < m.Heads; h++ {
			parts[h] = headOut[h][t]
		}
		if LegacyKernels() {
			out[t] = AddBias(MatMul(ConcatCols(parts...), m.Wo), m.Bo)
		} else {
			out[t] = Affine(ConcatCols(parts...), m.Wo, m.Bo, ActNone)
		}
	}
	return out
}

// Params implements Module.
func (m *MultiHeadAttention) Params() []*Tensor {
	out := []*Tensor{m.Wo, m.Bo}
	out = append(out, m.Wq...)
	out = append(out, m.Wk...)
	out = append(out, m.Wv...)
	return out
}

// PositionalEncoding returns the fixed sinusoidal table [T, model] used by
// the Transformer baseline; it carries no gradient.
func PositionalEncoding(T, model int) []*Tensor {
	out := make([]*Tensor, T)
	for t := 0; t < T; t++ {
		row := Zeros(1, model)
		for i := 0; i < model; i++ {
			angle := float64(t) / math.Pow(10000, float64(2*(i/2))/float64(model))
			if i%2 == 0 {
				row.Data[i] = math.Sin(angle)
			} else {
				row.Data[i] = math.Cos(angle)
			}
		}
		out[t] = row
	}
	return out
}

// AddPositional adds the encoding row pe[t] to every batch row of seq[t].
func AddPositional(seq Sequence, pe []*Tensor) Sequence {
	out := make(Sequence, len(seq))
	for t := range seq {
		out[t] = AddBias(seq[t], pe[t])
	}
	return out
}
