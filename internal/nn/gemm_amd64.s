#include "textflag.h"

// func cpuHasAVX() bool
// CPUID leaf 1: ECX bit 27 = OSXSAVE, bit 28 = AVX. When both are set,
// XGETBV(0) bits 1-2 confirm the OS saves xmm+ymm state on context switch.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	MOVL	CX, BX
	ANDL	$0x18000000, BX
	CMPL	BX, $0x18000000
	JNE	noavx
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func gemmKernel4x4(a0, a1, a2, a3, bp, c0, c1, c2, c3 *float64, k, mode int)
//
// Four A rows against one 4-lane panel: Y0-Y3 accumulate one output row
// each. The four VADDPD chains are independent, hiding the add latency that
// bounds the 2×4 kernel. Per-lane operation order is identical to the
// scalar tile, so results match bit for bit. Operand pointers advance in
// place; k counts down.
TEXT ·gemmKernel4x4(SB), NOSPLIT, $0-88
	MOVQ	a0+0(FP), SI
	MOVQ	a1+8(FP), DI
	MOVQ	a2+16(FP), R12
	MOVQ	a3+24(FP), R13
	MOVQ	bp+32(FP), BX
	MOVQ	c0+40(FP), R8
	MOVQ	c1+48(FP), R9
	MOVQ	c2+56(FP), R10
	MOVQ	c3+64(FP), R11
	MOVQ	k+72(FP), CX
	MOVQ	mode+80(FP), DX
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	CMPQ	DX, $2
	JNE	begin4
	VMOVUPD	(R8), Y0
	VMOVUPD	(R9), Y1
	VMOVUPD	(R10), Y2
	VMOVUPD	(R11), Y3
begin4:
	TESTQ	CX, CX
	JZ	reduce4
loop4:
	VBROADCASTSD	(SI), Y4
	VBROADCASTSD	(DI), Y5
	VBROADCASTSD	(R12), Y6
	VBROADCASTSD	(R13), Y7
	VMOVUPD	(BX), Y8
	VMULPD	Y8, Y4, Y9
	VADDPD	Y9, Y0, Y0
	VMULPD	Y8, Y5, Y10
	VADDPD	Y10, Y1, Y1
	VMULPD	Y8, Y6, Y11
	VADDPD	Y11, Y2, Y2
	VMULPD	Y8, Y7, Y12
	VADDPD	Y12, Y3, Y3
	ADDQ	$8, SI
	ADDQ	$8, DI
	ADDQ	$8, R12
	ADDQ	$8, R13
	ADDQ	$32, BX
	DECQ	CX
	JNZ	loop4
reduce4:
	CMPQ	DX, $1
	JNE	store4
	VADDPD	(R8), Y0, Y0
	VADDPD	(R9), Y1, Y1
	VADDPD	(R10), Y2, Y2
	VADDPD	(R11), Y3, Y3
store4:
	VMOVUPD	Y0, (R8)
	VMOVUPD	Y1, (R9)
	VMOVUPD	Y2, (R10)
	VMOVUPD	Y3, (R11)
	VZEROUPPER
	RET

// func gemmKernel2x4(a0, a1, bp, c0, c1 *float64, k, mode int)
//
// Y0 accumulates the four outputs of row i, Y1 those of row i+1. Per step p:
// broadcast a0[p] and a1[p], load the panel's four lanes bp[p*4:p*4+4], then
// one VMULPD+VADDPD per row. Every lane performs exactly the scalar tile's
// operation sequence — fl(s + fl(a·b)) with p ascending — so results match
// the pure-Go kernel bit for bit. mode: 0 store, 1 add complete dot, 2 seed
// the accumulators from c (streaming accumulation, see gemmAcc).
TEXT ·gemmKernel2x4(SB), NOSPLIT, $0-56
	MOVQ	a0+0(FP), SI
	MOVQ	a1+8(FP), DI
	MOVQ	bp+16(FP), BX
	MOVQ	c0+24(FP), R8
	MOVQ	c1+32(FP), R9
	MOVQ	k+40(FP), CX
	MOVQ	mode+48(FP), DX
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	CMPQ	DX, $2
	JNE	begin
	VMOVUPD	(R8), Y0
	VMOVUPD	(R9), Y1
begin:
	XORQ	AX, AX
	MOVQ	CX, R10
	ANDQ	$-2, R10
	JMP	check2
loop2:
	MOVQ	AX, R11
	SHLQ	$5, R11
	VBROADCASTSD	(SI)(AX*8), Y2
	VBROADCASTSD	(DI)(AX*8), Y3
	VMOVUPD	(BX)(R11*1), Y4
	VMULPD	Y4, Y2, Y5
	VADDPD	Y5, Y0, Y0
	VMULPD	Y4, Y3, Y6
	VADDPD	Y6, Y1, Y1
	VBROADCASTSD	8(SI)(AX*8), Y2
	VBROADCASTSD	8(DI)(AX*8), Y3
	VMOVUPD	32(BX)(R11*1), Y4
	VMULPD	Y4, Y2, Y5
	VADDPD	Y5, Y0, Y0
	VMULPD	Y4, Y3, Y6
	VADDPD	Y6, Y1, Y1
	ADDQ	$2, AX
check2:
	CMPQ	AX, R10
	JLT	loop2
	CMPQ	AX, CX
	JGE	reduce
	MOVQ	AX, R11
	SHLQ	$5, R11
	VBROADCASTSD	(SI)(AX*8), Y2
	VBROADCASTSD	(DI)(AX*8), Y3
	VMOVUPD	(BX)(R11*1), Y4
	VMULPD	Y4, Y2, Y5
	VADDPD	Y5, Y0, Y0
	VMULPD	Y4, Y3, Y6
	VADDPD	Y6, Y1, Y1
reduce:
	CMPQ	DX, $1
	JNE	store
	VADDPD	(R8), Y0, Y0
	VADDPD	(R9), Y1, Y1
store:
	VMOVUPD	Y0, (R8)
	VMOVUPD	Y1, (R9)
	VZEROUPPER
	RET
