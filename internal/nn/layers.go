package nn

import (
	"math"

	"hammer/internal/randx"
)

// Module is anything with trainable parameters.
type Module interface {
	// Params returns the trainable tensors for the optimizer.
	Params() []*Tensor
}

// Dense is a fully-connected layer y = x@W + b.
type Dense struct {
	W *Tensor // [in, out]
	B *Tensor // [1, out]
}

// NewDense builds a dense layer with Xavier initialisation.
func NewDense(in, out int, rng *randx.Rand) *Dense {
	scale := math.Sqrt(2.0 / float64(in+out))
	return &Dense{
		W: Param(in, out, scale, rng),
		B: Zeros(1, out).RequireGrad(),
	}
}

// Forward applies the layer to x [B, in].
func (d *Dense) Forward(x *Tensor) *Tensor {
	return d.ForwardAct(x, ActNone)
}

// ForwardAct applies the layer with a fused activation: one Affine node
// instead of the MatMul/AddBias/activation chain. Legacy mode rebuilds the
// original graph.
func (d *Dense) ForwardAct(x *Tensor, act Activation) *Tensor {
	if LegacyKernels() {
		out := AddBias(MatMul(x, d.W), d.B)
		switch act {
		case ActSigmoid:
			out = Sigmoid(out)
		case ActTanh:
			out = Tanh(out)
		case ActReLU:
			out = ReLU(out)
		}
		return out
	}
	return Affine(x, d.W, d.B, act)
}

// Params implements Module.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.W, d.B} }

// Sequence is a time series represented as one tensor per step, each
// [batch, channels].
type Sequence []*Tensor

// Channels reports the per-step width.
func (s Sequence) Channels() int {
	if len(s) == 0 {
		return 0
	}
	return s[0].Cols
}

// Batch reports the batch size.
func (s Sequence) Batch() int {
	if len(s) == 0 {
		return 0
	}
	return s[0].Rows
}

// Last returns the final step.
func (s Sequence) Last() *Tensor { return s[len(s)-1] }

// MapSequence applies a step-wise transformation.
func MapSequence(s Sequence, fn func(*Tensor) *Tensor) Sequence {
	out := make(Sequence, len(s))
	for i, t := range s {
		out[i] = fn(t)
	}
	return out
}

// SequenceFromWindows packs supervised windows (each of length T) into a
// Sequence of T [len(windows), 1] tensors — the batched input layout the
// recurrent and convolutional layers consume.
func SequenceFromWindows(windows [][]float64) Sequence {
	if len(windows) == 0 {
		return nil
	}
	T := len(windows[0])
	b := len(windows)
	seq := make(Sequence, T)
	for t := 0; t < T; t++ {
		step := Zeros(b, 1)
		for i, w := range windows {
			step.Data[i] = w[t]
		}
		seq[t] = step
	}
	return seq
}
