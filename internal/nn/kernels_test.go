package nn

import (
	"fmt"
	"testing"

	"hammer/internal/parallel"
	"hammer/internal/randx"
)

// ---------------------------------------------------------------------------
// Finite-difference gradient checks for the fused kernels.

func TestGradAffine(t *testing.T) {
	for _, act := range []Activation{ActNone, ActSigmoid, ActTanh, ActReLU} {
		t.Run(fmt.Sprintf("act=%d", act), func(t *testing.T) {
			rng := testRand()
			x := randParam(5, 3, rng)
			w := randParam(3, 4, rng)
			b := randParam(1, 4, rng)
			checkGrads(t, []*Tensor{x, w, b}, func() *Tensor {
				return Mean(Affine(x, w, b, act))
			})
		})
	}
}

func TestGradFusedGate(t *testing.T) {
	for _, act := range []Activation{ActSigmoid, ActTanh} {
		t.Run(fmt.Sprintf("act=%d", act), func(t *testing.T) {
			rng := testRand()
			x := randParam(4, 3, rng)
			wx := randParam(3, 5, rng)
			h := randParam(4, 5, rng)
			wh := randParam(5, 5, rng)
			b := randParam(1, 5, rng)
			checkGrads(t, []*Tensor{x, wx, h, wh, b}, func() *Tensor {
				return Mean(FusedGate(x, wx, h, wh, b, act))
			})
		})
	}
}

func TestGradConvStep(t *testing.T) {
	rng := testRand()
	in0 := randParam(4, 3, rng)
	in1 := randParam(4, 3, rng)
	in2 := randParam(4, 3, rng)
	w0 := randParam(3, 2, rng)
	w1 := randParam(3, 2, rng)
	w2 := randParam(3, 2, rng)
	b := randParam(1, 2, rng)
	params := []*Tensor{in0, in1, in2, w0, w1, w2, b}
	checkGrads(t, params, func() *Tensor {
		return Mean(convStep([]*Tensor{in0, in1, in2}, []*Tensor{w0, w1, w2}, b, ActReLU))
	})
}

func TestGradAttnMix(t *testing.T) {
	rng := testRand()
	const B, d, T = 3, 4, 3
	q := randParam(B, d, rng)
	ks := []*Tensor{randParam(B, d, rng), randParam(B, d, rng), randParam(B, d, rng)}
	vs := []*Tensor{randParam(B, d, rng), randParam(B, d, rng), randParam(B, d, rng)}
	params := append([]*Tensor{q}, append(append([]*Tensor{}, ks...), vs...)...)
	checkGrads(t, params, func() *Tensor {
		return Mean(attnMix(q, ks, vs, 0.5))
	})
}

// ---------------------------------------------------------------------------
// Blocked kernels vs. straightforward reference loops, on awkward shapes and
// with the worker pool forced on. Results must be exactly equal — the blocked
// kernels keep the same per-element accumulation order.

func refGemmDot(m, n, k int, a, bt, c []float64, acc bool) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * bt[j*k+p]
			}
			if acc {
				c[i*n+j] += s
			} else {
				c[i*n+j] = s
			}
		}
	}
}

func refGemmATB(m, k, n int, a, g, dB []float64) {
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a[i*k+p]
			for j := 0; j < n; j++ {
				dB[p*n+j] += av * g[i*n+j]
			}
		}
	}
}

func randSlice(n int, rng *randx.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestBlockedGemmMatchesReference(t *testing.T) {
	origWorkers := parallel.Workers()
	parallel.SetWorkers(3) // force helper participation even on 1-CPU hosts
	defer parallel.SetWorkers(origWorkers)

	rng := randx.New(5)
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {2, 3, 5}, {7, 1, 9}, {1, 13, 4}, {5, 5, 5},
		{33, 17, 3}, {70, 70, 10}, {129, 65, 33}, {64, 64, 64},
	}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.n, sh.k), func(t *testing.T) {
			a := randSlice(sh.m*sh.k, rng)
			bt := randSlice(sh.n*sh.k, rng)
			want := randSlice(sh.m*sh.n, rng)
			got := append([]float64(nil), want...)
			for _, acc := range []bool{false, true} {
				refGemmDot(sh.m, sh.n, sh.k, a, bt, want, acc)
				gemmDot(sh.m, sh.n, sh.k, a, bt, got, acc)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("gemmDot acc=%v element %d: got %v, want %v", acc, i, got[i], want[i])
					}
				}
			}
			g := randSlice(sh.m*sh.n, rng)
			wantB := randSlice(sh.k*sh.n, rng)
			gotB := append([]float64(nil), wantB...)
			refGemmATB(sh.m, sh.k, sh.n, a, g, wantB)
			gemmATB(sh.m, sh.k, sh.n, a, g, gotB)
			for i := range wantB {
				if wantB[i] != gotB[i] {
					t.Fatalf("gemmATB element %d: got %v, want %v", i, gotB[i], wantB[i])
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// End-to-end bit-compatibility: training the full layer stack with the
// blocked/fused kernels must produce parameters bitwise identical to the
// legacy (pre-rewrite) graphs, step for step.

// testStack is a miniature of the paper's model touching every fused path:
// Dense embed → TCN block (conv+ReLU) → BiGRU (gates) → attention → head.
type testStack struct {
	embed *Dense
	tcn   *TCN
	gru   *BiGRU
	attn  *MultiHeadAttention
	head  *Dense
}

func newTestStack(rng *randx.Rand) *testStack {
	return &testStack{
		embed: NewDense(1, 6, rng),
		tcn:   NewTCN(6, 6, 3, 1, rng),
		gru:   NewBiGRU(6, 3, rng),
		attn:  NewMultiHeadAttention(6, 2, rng),
		head:  NewDense(6, 1, rng),
	}
}

func (s *testStack) params() []*Tensor {
	out := append(s.embed.Params(), s.tcn.Params()...)
	out = append(out, s.gru.Params()...)
	out = append(out, s.attn.Params()...)
	return append(out, s.head.Params()...)
}

func (s *testStack) forward(seq Sequence) *Tensor {
	h := MapSequence(seq, s.embed.Forward)
	h = s.tcn.Forward(h)
	h = s.gru.Run(h)
	a := s.attn.Forward(h)
	out := make(Sequence, len(h))
	for t := range h {
		out[t] = Add(h[t], a[t])
	}
	return s.head.Forward(out.Last())
}

func trainStackSteps(legacy bool, steps int) []*Tensor {
	prev := SetLegacyKernels(legacy)
	defer SetLegacyKernels(prev)
	rng := randx.New(42)
	stack := newTestStack(rng)
	const B, T = 9, 5
	seq := make(Sequence, T)
	for t := 0; t < T; t++ {
		seq[t] = Zeros(B, 1)
		for i := range seq[t].Data {
			seq[t].Data[i] = rng.NormFloat64()
		}
	}
	target := Zeros(B, 1)
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64()
	}
	params := stack.params()
	opt := NewAdam(params, 0.01)
	for s := 0; s < steps; s++ {
		loss := MAELoss(stack.forward(seq), target)
		loss.Backward()
		ClipGradNorm(params, 5)
		opt.Step()
		if !legacy {
			Release(loss)
		}
	}
	return params
}

func TestFusedKernelsMatchLegacyBitwise(t *testing.T) {
	want := trainStackSteps(true, 4)
	got := trainStackSteps(false, 4)
	if len(want) != len(got) {
		t.Fatalf("param count mismatch: %d vs %d", len(want), len(got))
	}
	for pi := range want {
		for i := range want[pi].Data {
			if want[pi].Data[i] != got[pi].Data[i] {
				t.Fatalf("param %d element %d diverged after 4 steps: legacy %v, fused %v",
					pi, i, want[pi].Data[i], got[pi].Data[i])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Allocation guards.

func TestAdamStepDoesNotAllocate(t *testing.T) {
	rng := testRand()
	params := []*Tensor{randParam(16, 16, rng), randParam(1, 16, rng), randParam(16, 1, rng)}
	opt := NewAdam(params, 0.01)
	fill := func() {
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] = 0.01 * float64(i%7)
			}
		}
	}
	fill()
	opt.Step() // warm up t and any lazily touched state
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		opt.Step()
	})
	if allocs != 0 {
		t.Fatalf("Adam.Step allocates %v times per run, want 0", allocs)
	}
}

func TestTrainStepNearZeroAllocations(t *testing.T) {
	rng := randx.New(7)
	stack := newTestStack(rng)
	const B, T = 16, 6
	seq := make(Sequence, T)
	for ts := 0; ts < T; ts++ {
		seq[ts] = Zeros(B, 1)
		for i := range seq[ts].Data {
			seq[ts].Data[i] = rng.NormFloat64()
		}
	}
	target := Zeros(B, 1)
	params := stack.params()
	opt := NewAdam(params, 0.001)
	step := func() {
		loss := MAELoss(stack.forward(seq), target)
		loss.Backward()
		opt.Step()
		Release(loss)
	}
	// Warm the freelists and the tensor/struct pools.
	for i := 0; i < 3; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(5, step)
	// The graph itself (hundreds of nodes and buffers per step) is fully
	// recycled; what remains is small per-call slice headers in the layer
	// drivers (Sequence slices, per-head projections). Pin an order of
	// magnitude below one node's worth of the old per-step churn.
	const maxAllocs = 400
	if allocs > maxAllocs {
		t.Fatalf("train step allocates %v times, want <= %d", allocs, maxAllocs)
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks (run by the CI bench-smoke job via -exp nnbench as well).

func benchMatMul(b *testing.B, size int, legacy bool) {
	prev := SetLegacyKernels(legacy)
	defer SetLegacyKernels(prev)
	rng := randx.New(3)
	x := randParam(size, size, rng)
	w := randParam(size, size, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := MatMul(x, w)
		loss := Mean(out)
		loss.Backward()
		x.ZeroGrad()
		w.ZeroGrad()
		if !legacy {
			Release(loss)
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("legacy/%d", size), func(b *testing.B) { benchMatMul(b, size, true) })
		b.Run(fmt.Sprintf("blocked/%d", size), func(b *testing.B) { benchMatMul(b, size, false) })
	}
}

// benchStack mirrors the paper model's dimensions (DefaultConfig: hidden 16,
// three TCN levels, four heads), unlike the deliberately tiny testStack.
func newBenchStack(rng *randx.Rand) *testStack {
	return &testStack{
		embed: NewDense(1, 16, rng),
		tcn:   NewTCN(16, 16, 3, 3, rng),
		gru:   NewBiGRU(16, 8, rng),
		attn:  NewMultiHeadAttention(16, 4, rng),
		head:  NewDense(16, 1, rng),
	}
}

func benchTrainStep(b *testing.B, legacy bool) {
	prev := SetLegacyKernels(legacy)
	defer SetLegacyKernels(prev)
	rng := randx.New(11)
	stack := newBenchStack(rng)
	// Full-batch training over an hourly series puts several hundred windows
	// in one step; lookback 24 is the paper's input length.
	const B, T = 256, 24
	seq := make(Sequence, T)
	for ts := 0; ts < T; ts++ {
		seq[ts] = Zeros(B, 1)
		for i := range seq[ts].Data {
			seq[ts].Data[i] = rng.NormFloat64()
		}
	}
	target := Zeros(B, 1)
	params := stack.params()
	opt := NewAdam(params, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := MAELoss(stack.forward(seq), target)
		loss.Backward()
		opt.Step()
		if !legacy {
			Release(loss)
		}
	}
}

func BenchmarkTrainStep(b *testing.B) {
	b.Run("legacy", func(b *testing.B) { benchTrainStep(b, true) })
	b.Run("fused", func(b *testing.B) { benchTrainStep(b, false) })
}
