//go:build amd64

package nn

// useAVX gates the vectorized micro-kernel in gemm_amd64.s. The four SIMD
// lanes are four independent output columns, each receiving the same IEEE
// mul/add sequence as the scalar tile, so the kernel is bit-identical to the
// pure-Go path — vectorization here is across outputs, never within a dot.
var useAVX = cpuHasAVX()

// cpuHasAVX reports whether the CPU supports AVX and the OS saves ymm state
// (CPUID feature bits plus XGETBV).
func cpuHasAVX() bool

// gemmKernel2x4 runs the 2×4 micro-tile over a full 4-lane panel: two A rows
// (a0, a1, each k long) against panel bp (k groups of 4 interleaved lanes),
// landing in c0 = &c[i*n+j] and c1 = &c[(i+1)*n+j] per mode (gemmAcc).
//
//go:noescape
func gemmKernel2x4(a0, a1, bp, c0, c1 *float64, k, mode int)

// gemmKernel4x4 is the 4-row variant: four independent accumulator chains
// hide VADDPD latency, roughly doubling throughput on latency-bound shapes.
//
//go:noescape
func gemmKernel4x4(a0, a1, a2, a3, bp, c0, c1, c2, c3 *float64, k, mode int)
