package nn

import (
	"math"

	"hammer/internal/randx"
)

// RNNCell is an Elman recurrent cell: h' = tanh(x@Wx + h@Wh + b).
type RNNCell struct {
	Wx *Tensor // [in, hidden]
	Wh *Tensor // [hidden, hidden]
	B  *Tensor // [1, hidden]
}

// NewRNNCell builds an Elman cell.
func NewRNNCell(in, hidden int, rng *randx.Rand) *RNNCell {
	return &RNNCell{
		Wx: Param(in, hidden, math.Sqrt(1.0/float64(in)), rng),
		Wh: Param(hidden, hidden, math.Sqrt(1.0/float64(hidden)), rng),
		B:  Zeros(1, hidden).RequireGrad(),
	}
}

// Step advances one timestep.
func (c *RNNCell) Step(x, h *Tensor) *Tensor {
	if LegacyKernels() {
		return Tanh(AddBias(Add(MatMul(x, c.Wx), MatMul(h, c.Wh)), c.B))
	}
	return FusedGate(x, c.Wx, h, c.Wh, c.B, ActTanh)
}

// Params implements Module.
func (c *RNNCell) Params() []*Tensor { return []*Tensor{c.Wx, c.Wh, c.B} }

// Hidden reports the cell width.
func (c *RNNCell) Hidden() int { return c.Wh.Rows }

// Run unrolls the cell over a sequence, returning the hidden state at every
// step.
func (c *RNNCell) Run(seq Sequence) Sequence {
	h := Zeros(seq.Batch(), c.Hidden())
	out := make(Sequence, len(seq))
	for t, x := range seq {
		h = c.Step(x, h)
		out[t] = h
	}
	return out
}

// GRUCell implements the gated recurrent unit of eq. (4): update gate z,
// reset gate r, candidate h̃, blended state h.
type GRUCell struct {
	Wxz, Whz, Bz *Tensor
	Wxr, Whr, Br *Tensor
	Wxh, Whh, Bh *Tensor
}

// NewGRUCell builds a GRU cell.
func NewGRUCell(in, hidden int, rng *randx.Rand) *GRUCell {
	sx := math.Sqrt(1.0 / float64(in))
	sh := math.Sqrt(1.0 / float64(hidden))
	return &GRUCell{
		Wxz: Param(in, hidden, sx, rng), Whz: Param(hidden, hidden, sh, rng), Bz: Zeros(1, hidden).RequireGrad(),
		Wxr: Param(in, hidden, sx, rng), Whr: Param(hidden, hidden, sh, rng), Br: Zeros(1, hidden).RequireGrad(),
		Wxh: Param(in, hidden, sx, rng), Whh: Param(hidden, hidden, sh, rng), Bh: Zeros(1, hidden).RequireGrad(),
	}
}

// Hidden reports the cell width.
func (c *GRUCell) Hidden() int { return c.Whz.Rows }

// Step advances one timestep (eq. 4):
//
//	r = σ(x@Wxr + h@Whr + br)
//	z = σ(x@Wxz + h@Whz + bz)
//	h̃ = tanh(x@Wxh + (r⊙h)@Whh + bh)
//	h' = (1-z)⊙h + z⊙h̃
func (c *GRUCell) Step(x, h *Tensor) *Tensor {
	if LegacyKernels() {
		r := Sigmoid(AddBias(Add(MatMul(x, c.Wxr), MatMul(h, c.Whr)), c.Br))
		z := Sigmoid(AddBias(Add(MatMul(x, c.Wxz), MatMul(h, c.Whz)), c.Bz))
		hTilde := Tanh(AddBias(Add(MatMul(x, c.Wxh), MatMul(Mul(r, h), c.Whh)), c.Bh))
		oneMinusZ := AddScalar(Scale(z, -1), 1)
		return Add(Mul(oneMinusZ, h), Mul(z, hTilde))
	}
	r := FusedGate(x, c.Wxr, h, c.Whr, c.Br, ActSigmoid)
	z := FusedGate(x, c.Wxz, h, c.Whz, c.Bz, ActSigmoid)
	hTilde := FusedGate(x, c.Wxh, Mul(r, h), c.Whh, c.Bh, ActTanh)
	oneMinusZ := AddScalar(Scale(z, -1), 1)
	return Add(Mul(oneMinusZ, h), Mul(z, hTilde))
}

// Params implements Module.
func (c *GRUCell) Params() []*Tensor {
	return []*Tensor{c.Wxz, c.Whz, c.Bz, c.Wxr, c.Whr, c.Br, c.Wxh, c.Whh, c.Bh}
}

// Run unrolls the cell forward over a sequence.
func (c *GRUCell) Run(seq Sequence) Sequence {
	h := Zeros(seq.Batch(), c.Hidden())
	out := make(Sequence, len(seq))
	for t, x := range seq {
		h = c.Step(x, h)
		out[t] = h
	}
	return out
}

// RunReverse unrolls the cell backward in time (the ← direction of eq. 5).
func (c *GRUCell) RunReverse(seq Sequence) Sequence {
	h := Zeros(seq.Batch(), c.Hidden())
	out := make(Sequence, len(seq))
	for t := len(seq) - 1; t >= 0; t-- {
		h = c.Step(seq[t], h)
		out[t] = h
	}
	return out
}

// BiGRU runs a forward and a backward GRU and concatenates their states per
// step (eq. 5: h_t = h→_t ⊕ h←_t).
type BiGRU struct {
	Fwd *GRUCell
	Bwd *GRUCell
}

// NewBiGRU builds the bidirectional pair; the concatenated output width is
// 2·hidden.
func NewBiGRU(in, hidden int, rng *randx.Rand) *BiGRU {
	return &BiGRU{
		Fwd: NewGRUCell(in, hidden, rng),
		Bwd: NewGRUCell(in, hidden, rng),
	}
}

// Run produces the concatenated hidden sequence.
func (b *BiGRU) Run(seq Sequence) Sequence {
	fwd := b.Fwd.Run(seq)
	bwd := b.Bwd.RunReverse(seq)
	out := make(Sequence, len(seq))
	for t := range seq {
		out[t] = ConcatCols(fwd[t], bwd[t])
	}
	return out
}

// Params implements Module.
func (b *BiGRU) Params() []*Tensor {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}
