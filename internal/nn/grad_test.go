package nn

import (
	"math"
	"testing"

	"hammer/internal/randx"
)

// numericalGrad estimates dLoss/dParam[i] by central differences.
func numericalGrad(t *testing.T, param *Tensor, i int, loss func() float64) float64 {
	t.Helper()
	const h = 1e-6
	orig := param.Data[i]
	param.Data[i] = orig + h
	up := loss()
	param.Data[i] = orig - h
	down := loss()
	param.Data[i] = orig
	return (up - down) / (2 * h)
}

// checkGrads compares analytic and numerical gradients of loss w.r.t. every
// element of every param.
func checkGrads(t *testing.T, params []*Tensor, forward func() *Tensor) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	out := forward()
	out.Backward()
	lossFn := func() float64 { return forward().Item() }
	for pi, p := range params {
		for i := range p.Data {
			want := numericalGrad(t, p, i, lossFn)
			got := p.Grad[i]
			diff := math.Abs(want - got)
			scale := math.Max(1, math.Max(math.Abs(want), math.Abs(got)))
			if diff/scale > 1e-4 {
				t.Errorf("param %d element %d: analytic grad %.8f, numerical %.8f", pi, i, got, want)
			}
		}
	}
}

func testRand() *randx.Rand { return randx.New(99) }

func randParam(rows, cols int, rng *randx.Rand) *Tensor {
	return Param(rows, cols, 0.5, rng)
}

func TestGradAddSubMul(t *testing.T) {
	rng := testRand()
	a := randParam(3, 4, rng)
	b := randParam(3, 4, rng)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return Mean(Mul(Add(a, b), Sub(a, b)))
	})
}

func TestGradMatMul(t *testing.T) {
	rng := testRand()
	a := randParam(3, 5, rng)
	b := randParam(5, 2, rng)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return Mean(MatMul(a, b))
	})
}

func TestGradActivations(t *testing.T) {
	rng := testRand()
	tests := []struct {
		name string
		fn   func(*Tensor) *Tensor
	}{
		{"sigmoid", Sigmoid},
		{"tanh", Tanh},
		{"relu", ReLU},
		{"abs", Abs},
		{"softmax", Softmax},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			x := randParam(4, 6, rng)
			w := randParam(6, 1, rng)
			checkGrads(t, []*Tensor{x, w}, func() *Tensor {
				return Mean(MatMul(tc.fn(x), w))
			})
		})
	}
}

func TestGradBiasAndScale(t *testing.T) {
	rng := testRand()
	x := randParam(4, 3, rng)
	b := randParam(1, 3, rng)
	checkGrads(t, []*Tensor{x, b}, func() *Tensor {
		return Mean(Scale(AddBias(x, b), 1.7))
	})
}

func TestGradColMul(t *testing.T) {
	rng := testRand()
	x := randParam(4, 3, rng)
	c := randParam(4, 1, rng)
	checkGrads(t, []*Tensor{x, c}, func() *Tensor {
		return Mean(ColMul(x, c))
	})
}

func TestGradConcatAndSlice(t *testing.T) {
	rng := testRand()
	a := randParam(3, 2, rng)
	b := randParam(3, 4, rng)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		cat := ConcatCols(a, b)
		left := SliceCols(cat, 0, 3)
		return Mean(Mul(left, left))
	})
}

func TestGradSliceRows(t *testing.T) {
	rng := testRand()
	a := randParam(5, 3, rng)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		top := SliceRows(a, 1, 4)
		return Mean(Mul(top, top))
	})
}

func TestGradSumColsTranspose(t *testing.T) {
	rng := testRand()
	a := randParam(3, 4, rng)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return Mean(Mul(SumCols(a), SumCols(a)))
	})
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		tr := Transpose(a)
		return Mean(Mul(tr, tr))
	})
}

func TestGradLayerNorm(t *testing.T) {
	rng := testRand()
	x := randParam(4, 6, rng)
	g := randParam(1, 6, rng)
	b := randParam(1, 6, rng)
	checkGrads(t, []*Tensor{x, g, b}, func() *Tensor {
		y := LayerNorm(x, g, b, 1e-5)
		return Mean(Mul(y, y))
	})
}

func TestGradGRUCell(t *testing.T) {
	rng := testRand()
	cell := NewGRUCell(2, 3, rng)
	x1 := randParam(2, 2, rng)
	x2 := randParam(2, 2, rng)
	params := append(cell.Params(), x1, x2)
	checkGrads(t, params, func() *Tensor {
		h := cell.Step(x1, Zeros(2, 3))
		h = cell.Step(x2, h)
		return Mean(Mul(h, h))
	})
}

func TestGradCausalConv(t *testing.T) {
	rng := testRand()
	conv := NewCausalConv1D(2, 3, 3, 2, rng)
	seq := Sequence{randParam(2, 2, rng), randParam(2, 2, rng), randParam(2, 2, rng), randParam(2, 2, rng)}
	params := append(conv.Params(), seq...)
	checkGrads(t, params, func() *Tensor {
		out := conv.Forward(seq)
		var loss *Tensor
		for _, o := range out {
			m := Mean(Mul(o, o))
			if loss == nil {
				loss = m
			} else {
				loss = Add(loss, m)
			}
		}
		return loss
	})
}

func TestGradAttention(t *testing.T) {
	rng := testRand()
	attn := NewMultiHeadAttention(4, 2, rng)
	seq := Sequence{randParam(2, 4, rng), randParam(2, 4, rng), randParam(2, 4, rng)}
	params := append(attn.Params(), seq...)
	checkGrads(t, params, func() *Tensor {
		out := attn.Forward(seq)
		var loss *Tensor
		for _, o := range out {
			m := Mean(Mul(o, o))
			if loss == nil {
				loss = m
			} else {
				loss = Add(loss, m)
			}
		}
		return loss
	})
}

func TestGradMAEMSE(t *testing.T) {
	rng := testRand()
	pred := randParam(5, 1, rng)
	target := Zeros(5, 1)
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64()
	}
	checkGrads(t, []*Tensor{pred}, func() *Tensor {
		return MSELoss(pred, target)
	})
	checkGrads(t, []*Tensor{pred}, func() *Tensor {
		return MAELoss(pred, target)
	})
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	rng := testRand()
	a := randParam(2, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar should panic")
		}
	}()
	Mul(a, a).Backward()
}

func TestAdamReducesLoss(t *testing.T) {
	rng := testRand()
	// Learn y = 2x + 1 with a dense layer.
	d := NewDense(1, 1, rng)
	x := Zeros(16, 1)
	y := Zeros(16, 1)
	for i := 0; i < 16; i++ {
		v := rng.NormFloat64()
		x.Data[i] = v
		y.Data[i] = 2*v + 1
	}
	opt := NewAdam(d.Params(), 0.05)
	var first, last float64
	for epoch := 0; epoch < 300; epoch++ {
		loss := MSELoss(d.Forward(x), y)
		loss.Backward()
		opt.Step()
		if epoch == 0 {
			first = loss.Item()
		}
		last = loss.Item()
	}
	if last > first/100 {
		t.Fatalf("Adam failed to fit linear map: first loss %.4f, last %.4f", first, last)
	}
	if math.Abs(d.W.Data[0]-2) > 0.1 || math.Abs(d.B.Data[0]-1) > 0.1 {
		t.Fatalf("learned w=%.3f b=%.3f, want w≈2 b≈1", d.W.Data[0], d.B.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := testRand()
	p := randParam(2, 2, rng)
	for i := range p.Grad {
		p.Grad[i] = 10
	}
	norm := ClipGradNorm([]*Tensor{p}, 1)
	if math.Abs(norm-20) > 1e-9 {
		t.Fatalf("pre-clip norm = %v, want 20", norm)
	}
	var after float64
	for _, g := range p.Grad {
		after += g * g
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(after))
	}
}
