//go:build !amd64

package nn

// Non-amd64 builds always take the pure-Go panel tile in gemmDotRange.
const useAVX = false

func gemmKernel2x4(a0, a1, bp, c0, c1 *float64, k, mode int) {
	panic("nn: gemmKernel2x4 called without assembly support")
}

func gemmKernel4x4(a0, a1, a2, a3, bp, c0, c1, c2, c3 *float64, k, mode int) {
	panic("nn: gemmKernel4x4 called without assembly support")
}
