package nn

import (
	"fmt"
	"math"
)

// Fused kernels for the hottest composite graph shapes. Each fused node
// replaces a chain of elementary nodes that was single-consumer inside one
// layer invocation; because such a chain occupies a contiguous block of the
// topological order, a fused node that (a) computes the same per-element
// arithmetic and (b) performs its parent-gradient updates in the chain's
// original reverse order is bit-identical to the unfused graph — the
// determinism the table3/fig11 golden tests pin down. Legacy mode
// (SetLegacyKernels) rebuilds the original unfused graphs instead; layers
// switch on it.

// Activation selects the nonlinearity fused into Affine/FusedGate/conv
// kernels. All three derivatives are expressible from the output value
// alone, which is what the fused backward uses.
type Activation uint8

const (
	ActNone Activation = iota
	ActSigmoid
	ActTanh
	ActReLU
)

// actNone is the zero value stored on non-fused nodes.
const actNone = ActNone

func applyAct(v float64, act Activation) float64 {
	switch act {
	case ActSigmoid:
		return 1 / (1 + math.Exp(-v))
	case ActTanh:
		return math.Tanh(v)
	case ActReLU:
		if v > 0 {
			return v
		}
		return 0
	}
	return v
}

// actBackward writes g ⊙ act'(y) into dst. For ReLU, y > 0 ⟺ pre-activation
// > 0, so the output-side test matches the original input-side one.
func actBackward(g, y, dst []float64, act Activation) {
	switch act {
	case ActSigmoid:
		for i, gv := range g {
			yv := y[i]
			dst[i] = gv * yv * (1 - yv)
		}
	case ActTanh:
		for i, gv := range g {
			yv := y[i]
			dst[i] = gv * (1 - yv*yv)
		}
	case ActReLU:
		for i, gv := range g {
			if y[i] > 0 {
				dst[i] = gv
			} else {
				dst[i] = 0
			}
		}
	}
}

// addBiasApplyAct finishes a fused forward: out[r,c] = act(out[r,c] + b[c]),
// with the activation switch hoisted out of the element loop.
func addBiasApplyAct(data []float64, rows, cols int, bias []float64, act Activation) {
	switch act {
	case ActSigmoid:
		for r := 0; r < rows; r++ {
			row := data[r*cols : r*cols+cols]
			for c, v := range row {
				row[c] = 1 / (1 + math.Exp(-(v + bias[c])))
			}
		}
	case ActTanh:
		for r := 0; r < rows; r++ {
			row := data[r*cols : r*cols+cols]
			for c, v := range row {
				row[c] = math.Tanh(v + bias[c])
			}
		}
	case ActReLU:
		for r := 0; r < rows; r++ {
			row := data[r*cols : r*cols+cols]
			for c, v := range row {
				if x := v + bias[c]; x > 0 {
					row[c] = x
				} else {
					row[c] = 0
				}
			}
		}
	default:
		for r := 0; r < rows; r++ {
			row := data[r*cols : r*cols+cols]
			for c, v := range row {
				row[c] = v + bias[c]
			}
		}
	}
}

// gradAfterAct returns the gradient past the fused activation: t.Grad itself
// for ActNone (no copy), otherwise a freelist buffer the caller must return.
func (t *Tensor) gradAfterAct() []float64 {
	if t.act == ActNone {
		return t.Grad
	}
	g := getFloats(len(t.Grad))
	actBackward(t.Grad, t.Data, g, t.act)
	return g
}

// addBiasColsum accumulates column sums of g into bias.Grad in the original
// AddBias order (rows outer, columns inner).
func addBiasColsum(g []float64, rows, cols int, bias *Tensor) {
	bias.ensureGrad()
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			bias.Grad[c] += g[base+c]
		}
	}
}

// Affine is the fused act(x·w + b) for x [B, k], w [k, n], b [1, n] —
// one graph node instead of the MatMul/AddBias/activation triple.
func Affine(x, w, b *Tensor, act Activation) *Tensor {
	if x.Cols != w.Rows || b.Rows != 1 || b.Cols != w.Cols {
		panic(fmt.Sprintf("nn: Affine %dx%d @ %dx%d + %dx%d", x.Rows, x.Cols, w.Rows, w.Cols, b.Rows, b.Cols))
	}
	m, n := x.Rows, w.Cols
	out := newResult(m, n, opAffine, x, w, b)
	out.act = act
	matMulForward(x, w, out)
	addBiasApplyAct(out.Data, m, n, b.Data, act)
	return out
}

func (t *Tensor) backwardAffine() {
	x, w, b := t.parents[0], t.parents[1], t.parents[2]
	m, k, n := x.Rows, x.Cols, w.Cols
	g := t.gradAfterAct()
	if b.requiresGrad {
		addBiasColsum(g, m, n, b)
	}
	if x.requiresGrad {
		x.ensureGrad()
		gemmDot(m, k, n, g, w.Data, x.Grad, true)
	}
	if w.requiresGrad {
		w.ensureGrad()
		gemmATB(m, k, n, x.Data, g, w.Grad)
	}
	if t.act != ActNone {
		putFloats(g)
	}
}

// FusedGate is act(x·wx + h·wh + b) — the RNN/GRU gate shape — for x [B, kx],
// wx [kx, n], h [B, kh], wh [kh, n], b [1, n]. It builds TWO nodes, not one:
// a real MatMul(x, wx), then a fused tail act(m1 + h·wh + b). The split is a
// determinism requirement, not an aesthetic: in the unfused graph the DFS
// claims the entire recurrent prefix (the previous step's subtree, or the
// reset gate feeding h̃) BETWEEN the two products, so the x-side product's
// backward — which accumulates into the shared x.Grad and wx.Grad buffers —
// runs only after that whole prefix has unwound. Keeping m1 a separate node
// preserves exactly that topological slot; fusing it into the tail would
// reorder those shared accumulations and drift by ulps.
func FusedGate(x, wx, h, wh, b *Tensor, act Activation) *Tensor {
	if x.Cols != wx.Rows || h.Cols != wh.Rows || wx.Cols != wh.Cols || b.Rows != 1 || b.Cols != wx.Cols {
		panic(fmt.Sprintf("nn: FusedGate %dx%d@%dx%d + %dx%d@%dx%d + %dx%d",
			x.Rows, x.Cols, wx.Rows, wx.Cols, h.Rows, h.Cols, wh.Rows, wh.Cols, b.Rows, b.Cols))
	}
	m1 := MatMul(x, wx)
	m, n := m1.Rows, m1.Cols
	out := newResult(m, n, opGate, m1, h, wh, b)
	out.act = act
	copy(out.Data, m1.Data)
	// Second product accumulates complete dots, matching Add of two
	// complete matrices in the unfused graph.
	bp := getFloats(roundUp4(n) * h.Cols)
	panelsFromCols(wh.Data, h.Cols, n, bp)
	gemmDotPanels(m, n, h.Cols, h.Data, bp, out.Data, gemmAccAdd)
	putFloats(bp)
	addBiasApplyAct(out.Data, m, n, b.Data, act)
	return out
}

func (t *Tensor) backwardGate() {
	m1, h, wh, b := t.parents[0], t.parents[1], t.parents[2], t.parents[3]
	m, n := t.Rows, t.Cols
	g := t.gradAfterAct()
	if b.requiresGrad {
		addBiasColsum(g, m, n, b)
	}
	if m1.requiresGrad {
		m1.ensureGrad()
		for i, gv := range g {
			m1.Grad[i] += gv
		}
	}
	if h.requiresGrad {
		h.ensureGrad()
		gemmDot(m, h.Cols, n, g, wh.Data, h.Grad, true)
	}
	if wh.requiresGrad {
		wh.ensureGrad()
		gemmATB(m, h.Cols, n, h.Data, g, wh.Grad)
	}
	if t.act != ActNone {
		putFloats(g)
	}
}

// convStep is the fused act(Σ_j in_j·w_j + b) — one causal-convolution
// output step over its dilated taps. Parents: in/w pairs in tap order, then
// the bias.
func convStep(ins, ws []*Tensor, b *Tensor, act Activation) *Tensor {
	taps := len(ins)
	m, n := ins[0].Rows, ws[0].Cols
	parents := make([]*Tensor, 0, 2*taps+1)
	for j := 0; j < taps; j++ {
		parents = append(parents, ins[j], ws[j])
	}
	parents = append(parents, b)
	out := newResult(m, n, opConvStep, parents...)
	out.act = act
	out.i0 = taps
	matMulForward(ins[0], ws[0], out)
	for j := 1; j < taps; j++ {
		in, w := ins[j], ws[j]
		bp := getFloats(roundUp4(n) * in.Cols)
		panelsFromCols(w.Data, in.Cols, n, bp)
		gemmDotPanels(m, n, in.Cols, in.Data, bp, out.Data, gemmAccAdd)
		putFloats(bp)
	}
	addBiasApplyAct(out.Data, m, n, b.Data, act)
	return out
}

func (t *Tensor) backwardConvStep() {
	taps := t.i0
	b := t.parents[2*taps]
	m, n := t.Rows, t.Cols
	g := t.gradAfterAct()
	if b.requiresGrad {
		addBiasColsum(g, m, n, b)
	}
	// The unfused Add chain unwinds last tap first.
	for j := taps - 1; j >= 0; j-- {
		in, w := t.parents[2*j], t.parents[2*j+1]
		if in.requiresGrad {
			in.ensureGrad()
			gemmDot(m, in.Cols, n, g, w.Data, in.Grad, true)
		}
		if w.requiresGrad {
			w.ensureGrad()
			gemmATB(m, in.Cols, n, in.Data, g, w.Grad)
		}
	}
	if t.act != ActNone {
		putFloats(g)
	}
}

// attnMix is the fused softmax-attention row pass for one query position:
// scores s_t = invScale·⟨q_b, k_t,b⟩, probs = softmax rows over t, output
// out_b = Σ_t probs_t·v_t,b — replacing the Mul/SumCols/Scale/ConcatCols/
// Softmax/SliceCols/ColMul/Add lattice built per (head, position). The
// parent list is ordered v_0, q, k_0…k_{T-1}, v_1…v_{T-1}: the exact order
// the unfused lattice's DFS first reaches those nodes, which fixes where
// shared projections land in the global topological order and therefore the
// accumulation order into every shared gradient. Probs are saved in scratch
// for backward.
func attnMix(q *Tensor, ks, vs []*Tensor, invScale float64) *Tensor {
	T := len(ks)
	B, d := q.Rows, q.Cols
	parents := make([]*Tensor, 0, 2*T+1)
	parents = append(parents, vs[0], q)
	parents = append(parents, ks...)
	parents = append(parents, vs[1:]...)
	out := newResult(B, d, opAttnMix, parents...)
	out.fval = invScale
	out.i0 = T
	out.scratch = getFloats(B * T)
	probs := out.scratch
	for bi := 0; bi < B; bi++ {
		qrow := q.Data[bi*d : (bi+1)*d]
		srow := probs[bi*T : (bi+1)*T]
		for t2 := 0; t2 < T; t2++ {
			krow := ks[t2].Data[bi*d : (bi+1)*d]
			var s float64
			for c, qv := range qrow {
				s += qv * krow[c]
			}
			srow[t2] = s * invScale
		}
		softmaxRow(srow, srow)
		orow := out.Data[bi*d : (bi+1)*d]
		w0 := srow[0]
		for c, vv := range vs[0].Data[bi*d : (bi+1)*d] {
			orow[c] = w0 * vv
		}
		for t2 := 1; t2 < T; t2++ {
			w := srow[t2]
			vrow := vs[t2].Data[bi*d : (bi+1)*d]
			for c, vv := range vrow {
				orow[c] += w * vv
			}
		}
	}
	return out
}

func (t *Tensor) backwardAttnMix() {
	T := t.i0
	// Parent layout mirrors the unfused DFS first-visit order:
	// [v_0, q, k_0…k_{T-1}, v_1…v_{T-1}].
	q := t.parents[1]
	ks := t.parents[2 : 2+T]
	vAt := func(t2 int) *Tensor {
		if t2 == 0 {
			return t.parents[0]
		}
		return t.parents[1+T+t2]
	}
	B, d := t.Rows, t.Cols
	probs := t.scratch
	g := t.Grad
	// Stage 1 — value side, unwound last position first like the unfused
	// ColMul/Add chain: dV_t = probs_t ⊙ g, and the probability gradient
	// sG[b,t] = ⟨g_b, v_t,b⟩.
	sG := getFloats(B * T)
	for t2 := T - 1; t2 >= 0; t2-- {
		v := vAt(t2)
		if v.requiresGrad {
			v.ensureGrad()
			for bi := 0; bi < B; bi++ {
				w := probs[bi*T+t2]
				base := bi * d
				for c := 0; c < d; c++ {
					v.Grad[base+c] += g[base+c] * w
				}
			}
		}
		for bi := 0; bi < B; bi++ {
			base := bi * d
			var s float64
			for c := 0; c < d; c++ {
				s += g[base+c] * v.Data[base+c]
			}
			sG[bi*T+t2] = s
		}
	}
	// Stage 2 — softmax backward, in place over sG (row dot first, then the
	// elementwise update, exactly the Softmax op's order).
	for bi := 0; bi < B; bi++ {
		y := probs[bi*T : (bi+1)*T]
		gy := sG[bi*T : (bi+1)*T]
		var dot float64
		for i := range y {
			dot += gy[i] * y[i]
		}
		for i := range y {
			gy[i] = y[i] * (gy[i] - dot)
		}
	}
	// Stage 3 — score side, also last position first: through the Scale,
	// SumCols broadcast, and Mul(q, k), q before k.
	inv := t.fval
	for t2 := T - 1; t2 >= 0; t2-- {
		k := ks[t2]
		if q.requiresGrad {
			q.ensureGrad()
			for bi := 0; bi < B; bi++ {
				g2 := sG[bi*T+t2] * inv
				base := bi * d
				for c := 0; c < d; c++ {
					q.Grad[base+c] += g2 * k.Data[base+c]
				}
			}
		}
		if k.requiresGrad {
			k.ensureGrad()
			for bi := 0; bi < B; bi++ {
				g2 := sG[bi*T+t2] * inv
				base := bi * d
				for c := 0; c < d; c++ {
					k.Grad[base+c] += g2 * q.Data[base+c]
				}
			}
		}
	}
	putFloats(sG)
}
