package nn

import (
	"math"
	"testing"

	"hammer/internal/randx"
)

func TestDenseShapesAndForward(t *testing.T) {
	rng := randx.New(1)
	d := NewDense(3, 2, rng)
	x := Zeros(4, 3)
	y := d.Forward(x)
	if y.Rows != 4 || y.Cols != 2 {
		t.Fatalf("forward shape %dx%d", y.Rows, y.Cols)
	}
	// Zero input → bias only (zero-initialised) → zero output.
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("zero input through zero bias should be zero")
		}
	}
	if len(d.Params()) != 2 {
		t.Fatal("dense should expose W and B")
	}
}

func TestSequenceFromWindows(t *testing.T) {
	seq := SequenceFromWindows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	if len(seq) != 3 {
		t.Fatalf("sequence length %d", len(seq))
	}
	if seq.Batch() != 2 || seq.Channels() != 1 {
		t.Fatalf("batch %d channels %d", seq.Batch(), seq.Channels())
	}
	if seq[0].At(0, 0) != 1 || seq[0].At(1, 0) != 4 {
		t.Fatal("step 0 values wrong")
	}
	if seq.Last().At(0, 0) != 3 || seq.Last().At(1, 0) != 6 {
		t.Fatal("last step values wrong")
	}
	if SequenceFromWindows(nil) != nil {
		t.Fatal("empty windows should give nil sequence")
	}
}

func TestGRURunShapes(t *testing.T) {
	rng := randx.New(2)
	cell := NewGRUCell(1, 5, rng)
	if cell.Hidden() != 5 {
		t.Fatalf("hidden %d", cell.Hidden())
	}
	seq := SequenceFromWindows([][]float64{{1, 2, 3, 4}})
	out := cell.Run(seq)
	if len(out) != 4 || out[0].Rows != 1 || out[0].Cols != 5 {
		t.Fatal("GRU output shapes wrong")
	}
	rev := cell.RunReverse(seq)
	if len(rev) != 4 {
		t.Fatal("reverse run length")
	}
	// The reverse pass at step 0 has seen the whole sequence; the forward
	// pass at step 0 has seen one value — they must differ.
	same := true
	for i := range out[0].Data {
		if math.Abs(out[0].Data[i]-rev[0].Data[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Fatal("forward and reverse states should differ")
	}
}

func TestBiGRUConcatWidth(t *testing.T) {
	rng := randx.New(3)
	b := NewBiGRU(1, 4, rng)
	seq := SequenceFromWindows([][]float64{{1, 2, 3}})
	out := b.Run(seq)
	if out[0].Cols != 8 {
		t.Fatalf("BiGRU width %d, want 2×hidden", out[0].Cols)
	}
	if len(b.Params()) != 18 {
		t.Fatalf("BiGRU params %d, want 2×9", len(b.Params()))
	}
}

func TestTCNPreservesLengthAndReceptiveField(t *testing.T) {
	rng := randx.New(4)
	tcn := NewTCN(1, 8, 3, 3, rng)
	seq := SequenceFromWindows([][]float64{{1, 2, 3, 4, 5, 6}})
	out := tcn.Forward(seq)
	if len(out) != len(seq) {
		t.Fatalf("TCN changed sequence length: %d", len(out))
	}
	if out[0].Cols != 8 {
		t.Fatalf("TCN width %d", out[0].Cols)
	}
	// Three blocks at dilations 1,2,4 with k=3: rf = 1+2·2·(1+2+4) = 29.
	if rf := tcn.ReceptiveField(); rf != 29 {
		t.Fatalf("receptive field %d, want 29", rf)
	}
}

func TestCausalityOfConv(t *testing.T) {
	rng := randx.New(5)
	conv := NewCausalConv1D(1, 1, 3, 1, rng)
	// Two sequences identical up to t=2, differing afterwards: outputs at
	// t ≤ 2 must match (no future leakage).
	a := SequenceFromWindows([][]float64{{1, 2, 3, 9, 9}})
	b := SequenceFromWindows([][]float64{{1, 2, 3, -5, 0}})
	oa := conv.Forward(a)
	ob := conv.Forward(b)
	for tt := 0; tt <= 2; tt++ {
		if math.Abs(oa[tt].Data[0]-ob[tt].Data[0]) > 1e-12 {
			t.Fatalf("causal conv leaked future at t=%d", tt)
		}
	}
}

func TestPositionalEncodingProperties(t *testing.T) {
	pe := PositionalEncoding(10, 8)
	if len(pe) != 10 || pe[0].Cols != 8 {
		t.Fatal("positional encoding shape")
	}
	// First row: sin(0)=0, cos(0)=1 alternating.
	if pe[0].Data[0] != 0 || pe[0].Data[1] != 1 {
		t.Fatalf("t=0 row %v", pe[0].Data[:2])
	}
	// Distinct positions must encode differently.
	same := true
	for i := range pe[1].Data {
		if pe[1].Data[i] != pe[2].Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("positions 1 and 2 encode identically")
	}
}

func TestAttentionShapes(t *testing.T) {
	rng := randx.New(6)
	attn := NewMultiHeadAttention(8, 4, rng)
	seq := Sequence{Zeros(3, 8), Zeros(3, 8), Zeros(3, 8)}
	out := attn.Forward(seq)
	if len(out) != 3 || out[0].Rows != 3 || out[0].Cols != 8 {
		t.Fatal("attention output shapes wrong")
	}
	if len(attn.Params()) != 2+3*4 {
		t.Fatalf("attention params %d", len(attn.Params()))
	}
}

func TestSGDMomentum(t *testing.T) {
	rng := randx.New(7)
	d := NewDense(1, 1, rng)
	x := Zeros(8, 1)
	y := Zeros(8, 1)
	for i := 0; i < 8; i++ {
		v := rng.NormFloat64()
		x.Data[i] = v
		y.Data[i] = 3 * v
	}
	opt := NewSGD(d.Params(), 0.05, 0.9)
	var last float64
	for epoch := 0; epoch < 200; epoch++ {
		loss := MSELoss(d.Forward(x), y)
		loss.Backward()
		opt.Step()
		last = loss.Item()
	}
	if last > 0.01 {
		t.Fatalf("SGD+momentum failed to fit: loss %v", last)
	}
}

func TestTensorHelpers(t *testing.T) {
	v := FromVector([]float64{1, 2, 3})
	if v.Rows != 1 || v.Cols != 3 || v.At(0, 2) != 3 {
		t.Fatal("FromVector")
	}
	f := Full(2, 2, 7)
	if f.Data[3] != 7 {
		t.Fatal("Full")
	}
	c := f.Clone()
	c.Set(0, 0, 9)
	if f.At(0, 0) == 9 {
		t.Fatal("Clone should copy")
	}
	one := Full(1, 1, 5)
	if one.Item() != 5 {
		t.Fatal("Item")
	}
	if one.String() == "" {
		t.Fatal("String")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Item on non-scalar should panic")
		}
	}()
	f.Item()
}
