package nn

import (
	"sync"
	"sync/atomic"
)

// Buffer recycling for the training hot loop. Every derived tensor's
// Data/Grad/scratch buffer comes from a size-classed freelist and returns to
// it when the step's graph is released (Release), turning the steady-state
// forward+backward into near-zero heap allocations. Leaves (parameters,
// inputs) are ordinary heap slices and never enter the freelist.
//
// The freelist is shared across goroutines (harness.Execute trains several
// models concurrently in one process), so classes are guarded by small
// mutexes; the critical sections are pointer pushes/pops, orders of
// magnitude cheaper than the kernels they serve.

// legacyKernels switches the whole package to the pre-rewrite behaviour:
// naive triple-loop GEMM with the data-dependent zero-skip, unfused layer
// graphs, and no buffer recycling. It exists so benchmarks (hammer-predict
// -exp nnbench) can compare old and new stacks in one binary, and so tests
// can pin the two paths to identical numerics. Not intended to be toggled
// while graphs are alive.
var legacyKernels atomic.Bool

// SetLegacyKernels selects the pre-rewrite scalar kernels (true) or the
// blocked/fused kernel layer (false, the default). Returns the previous
// setting. Toggle only between training runs, never mid-graph.
func SetLegacyKernels(on bool) bool { return legacyKernels.Swap(on) }

// LegacyKernels reports whether the pre-rewrite kernels are active.
func LegacyKernels() bool { return legacyKernels.Load() }

// Float buffers are pooled in power-of-two size classes. Class i holds
// buffers with cap exactly 1<<i; requests round up. Classes above maxClass
// (4M floats = 32 MB) fall through to plain make and are never recycled.
const (
	minClassBits = 3 // smallest pooled cap: 8 floats
	maxClassBits = 22
	numClasses   = maxClassBits + 1
)

// classBytesCap bounds how much memory one class may hold on its freelist so
// a burst of huge temporaries cannot pin the heap.
const classBytesCap = 16 << 20

type floatClass struct {
	mu   sync.Mutex
	bufs [][]float64
	max  int // max resident buffers, derived from classBytesCap
}

var floatClasses [numClasses]floatClass

func init() {
	for i := range floatClasses {
		max := classBytesCap / (8 << uint(i))
		if max < 4 {
			max = 4
		}
		if max > 4096 {
			max = 4096
		}
		floatClasses[i].max = max
	}
}

// classFor returns the smallest class whose cap fits n, or -1 when n is too
// large to pool.
func classFor(n int) int {
	c := minClassBits
	for c <= maxClassBits && (1<<uint(c)) < n {
		c++
	}
	if c > maxClassBits {
		return -1
	}
	return c
}

// getFloats returns a length-n slice with unspecified contents. Callers must
// fully overwrite it (every op kernel does).
func getFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	if legacyKernels.Load() {
		return make([]float64, n)
	}
	c := classFor(n)
	if c < 0 {
		return make([]float64, n)
	}
	fc := &floatClasses[c]
	fc.mu.Lock()
	if len(fc.bufs) > 0 {
		b := fc.bufs[len(fc.bufs)-1]
		fc.bufs = fc.bufs[:len(fc.bufs)-1]
		fc.mu.Unlock()
		return b[:n]
	}
	fc.mu.Unlock()
	return make([]float64, n, 1<<uint(c))
}

// getFloatsZeroed returns a zeroed length-n slice from the freelist.
func getFloatsZeroed(n int) []float64 {
	s := getFloats(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// putFloats returns a buffer to its class. Buffers whose cap is not an exact
// class size (plain make'd slices, e.g. from legacy mode) are dropped for
// the GC to take.
func putFloats(s []float64) {
	if s == nil || legacyKernels.Load() {
		return
	}
	c := classFor(cap(s))
	if c < 0 || cap(s) != 1<<uint(c) {
		return
	}
	fc := &floatClasses[c]
	fc.mu.Lock()
	if len(fc.bufs) < fc.max {
		fc.bufs = append(fc.bufs, s[:0])
	}
	fc.mu.Unlock()
}

// Tensor structs are pooled too; parents capacity survives recycling so the
// per-node parent list stops allocating after warm-up.
var tensorPool = sync.Pool{New: func() any { return new(Tensor) }}

func getTensorStruct() *Tensor {
	if legacyKernels.Load() {
		return new(Tensor)
	}
	return tensorPool.Get().(*Tensor)
}

func putTensorStruct(t *Tensor) {
	if legacyKernels.Load() {
		return
	}
	tensorPool.Put(t)
}

// Topological-order scratch for Backward/Release walks.
var walkPool = sync.Pool{New: func() any { return new(walkScratch) }}

type walkScratch struct {
	order []*Tensor
	stack []walkFrame
}

type walkFrame struct {
	node *Tensor
	next int
}

// stampCounter issues unique visit stamps so graph walks need no visited
// map. Tensors are only ever walked by their owning goroutine, but the
// counter itself is shared by all concurrent trainings.
var stampCounter atomic.Uint64

func nextStamp() uint64 { return stampCounter.Add(1) }
