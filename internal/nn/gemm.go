package nn

import "hammer/internal/parallel"

// Blocked GEMM kernels. The forward product and both backward products are
// expressed so every output element is a single-accumulator dot product with
// the summation index ascending — the exact accumulation order of the
// original triple loop — so the blocked kernels are bit-compatible with the
// scalar ones (minus the old data-dependent zero-skip, see opMatMul).
//
//	C = A·B        →  pack B's columns into panels, C[i,j] = dot(A row i, col j)
//	dA = dC·Bᵀ     →  pack B's rows into panels, dot(dC row i, B row j)
//	dB = Aᵀ·dC     →  pack Aᵀ and dC's columns, seeded dot over i (see gemmATB)
//
// The panel layout interleaves four operand vectors element-by-element
// (bp[j0*k + p*4 + lane]), which makes the four column-accumulators of the
// 2×4 register tile adjacent in memory. On amd64 with AVX the micro-tile
// runs 4 lanes wide (gemm_amd64.s); each lane is still an independent
// accumulator receiving IEEE mul/add in the same order as the scalar tile,
// so vectorization does not change a single bit. Parallelism splits the
// OUTPUT rows into fixed blocks (parallel.For), so concurrent workers write
// disjoint ranges and results are byte-identical at any worker count.
const (
	// gemmRowGrain rows of output per parallel block. Fixed: it must not
	// depend on worker count, or the partition stops being deterministic.
	gemmRowGrain = 32
	// gemmParFlops is the m·n·k threshold below which parallel dispatch
	// costs more than it saves and kernels stay on the caller.
	gemmParFlops = 1 << 15
	// gemmColBlock bounds how many output columns are streamed per pass so
	// the packed panels stay cache-resident while the A rows sweep them.
	gemmColBlock = 64
)

// gemmAcc selects how a dot-product result lands in c. The three modes exist
// because the legacy engine produced two distinct rounding sequences and both
// must be reproduced exactly:
//
//	gemmAccStore  c[i,j] = dot            (forward products)
//	gemmAccAdd    c[i,j] += complete dot  (legacy dX: full dot, then one add)
//	gemmAccSeed   accumulator starts at c[i,j] and streams the products in
//	              (legacy dB: axpy order — c participates in every rounding)
type gemmAcc int

const (
	gemmAccStore gemmAcc = iota
	gemmAccAdd
	gemmAccSeed
)

func roundUp4(n int) int { return (n + 3) &^ 3 }

// packTranspose writes bt = bᵀ for a k×n row-major b, so column j of b
// becomes the contiguous row bt[j*k : (j+1)*k].
func packTranspose(b []float64, k, n int, bt []float64) {
	for p := 0; p < k; p++ {
		row := b[p*n : p*n+n]
		for j, v := range row {
			bt[j*k+p] = v
		}
	}
}

// panelsFromCols packs the n columns of a k×n row-major matrix into 4-wide
// interleaved panels: bp[(j&^3)*k + p*4 + j&3] = b[p*n + j]. bp must hold
// roundUp4(n)*k elements; tail lanes are zero-padded (their accumulators are
// computed and discarded, never stored).
func panelsFromCols(b []float64, k, n int, bp []float64) {
	for p := 0; p < k; p++ {
		row := b[p*n : p*n+n]
		p4 := p * 4
		for j, v := range row {
			bp[(j&^3)*k+p4+(j&3)] = v
		}
	}
	padPanels(k, n, bp)
}

// panelsFromRows packs the rows of a rows×k row-major matrix into the same
// interleaved panel layout, row r becoming lane r&3 of panel r>>2.
func panelsFromRows(src []float64, rows, k int, bp []float64) {
	for r := 0; r < rows; r++ {
		in := src[r*k : r*k+k]
		out := bp[(r&^3)*k+(r&3):]
		for p, v := range in {
			out[p*4] = v
		}
	}
	padPanels(k, rows, bp)
}

func padPanels(k, n int, bp []float64) {
	if n&3 == 0 {
		return
	}
	base := (n &^ 3) * k
	for p := 0; p < k; p++ {
		for l := n & 3; l < 4; l++ {
			bp[base+p*4+l] = 0
		}
	}
}

// gemmDot computes, for every output element of the m×n matrix c,
//
//	c[i,j] = dot(a[i,:], bt[j,:])    (acc=false: overwrite)
//	c[i,j] += dot(a[i,:], bt[j,:])   (acc=true: add the complete dot)
//
// where a is m×k and bt is n×k, both row-major (bt rows are the operand
// vectors). The operand is panel-packed once, then rows of c are split
// across the shared worker pool when the problem is large enough.
func gemmDot(m, n, k int, a, bt, c []float64, acc bool) {
	mode := gemmAccStore
	if acc {
		mode = gemmAccAdd
	}
	bp := getFloats(roundUp4(n) * k)
	panelsFromRows(bt, n, k, bp)
	gemmDotPanels(m, n, k, a, bp, c, mode)
	putFloats(bp)
}

// gemmDotPanels is the shared entry point once the operand is panel-packed.
func gemmDotPanels(m, n, k int, a, bp, c []float64, mode gemmAcc) {
	if m*n*k >= gemmParFlops {
		parallel.For(m, gemmRowGrain, func(lo, hi int) {
			gemmDotRange(lo, hi, n, k, a, bp, c, mode)
		})
		return
	}
	gemmDotRange(0, m, n, k, a, bp, c, mode)
}

// gemmDotRange handles output rows [lo, hi) with 2×4 register tiling: two
// A rows × one 4-lane panel per inner pass, eight independent accumulators.
// Full panels go through the AVX micro-kernel when the host supports it.
func gemmDotRange(lo, hi, n, k int, a, bp, c []float64, mode gemmAcc) {
	for jc := 0; jc < n; jc += gemmColBlock {
		jEnd := jc + gemmColBlock
		if jEnd > n {
			jEnd = n
		}
		i := lo
		if useAVX && k > 0 {
			for ; i+4 <= hi; i += 4 {
				j := jc
				for ; j+4 <= jEnd; j += 4 {
					gemmKernel4x4(&a[i*k], &a[(i+1)*k], &a[(i+2)*k], &a[(i+3)*k], &bp[j*k],
						&c[i*n+j], &c[(i+1)*n+j], &c[(i+2)*n+j], &c[(i+3)*n+j], k, int(mode))
				}
				for ; j < jEnd; j++ {
					scalarPanelCol(i, i+4, j, n, k, a, bp, c, mode)
				}
			}
		}
		for ; i+2 <= hi; i += 2 {
			a0 := a[i*k : i*k+k]
			a1 := a[(i+1)*k:][:len(a0)]
			j := jc
			if useAVX && k > 0 {
				for ; j+4 <= jEnd; j += 4 {
					gemmKernel2x4(&a0[0], &a1[0], &bp[j*k], &c[i*n+j], &c[(i+1)*n+j], k, int(mode))
				}
			}
			for ; j+4 <= jEnd; j += 4 {
				// Scalar fallback tile: 8 accumulators plus 6 operands —
				// within amd64's 16 XMM registers, nothing spills. The
				// [:...] reslices pin lengths so the loop carries no
				// bounds checks.
				pj := bp[j*k : j*k+4*k]
				c0 := c[i*n+j : i*n+j+4]
				c1 := c[(i+1)*n+j:][:4]
				var s00, s01, s02, s03 float64
				var s10, s11, s12, s13 float64
				if mode == gemmAccSeed {
					s00, s01, s02, s03 = c0[0], c0[1], c0[2], c0[3]
					s10, s11, s12, s13 = c1[0], c1[1], c1[2], c1[3]
				}
				for p, av0 := range a0 {
					av1 := a1[p]
					q := pj[p*4 : p*4+4]
					s00 += av0 * q[0]
					s01 += av0 * q[1]
					s02 += av0 * q[2]
					s03 += av0 * q[3]
					s10 += av1 * q[0]
					s11 += av1 * q[1]
					s12 += av1 * q[2]
					s13 += av1 * q[3]
				}
				if mode == gemmAccAdd {
					c0[0] += s00
					c0[1] += s01
					c0[2] += s02
					c0[3] += s03
					c1[0] += s10
					c1[1] += s11
					c1[2] += s12
					c1[3] += s13
				} else {
					c0[0] = s00
					c0[1] = s01
					c0[2] = s02
					c0[3] = s03
					c1[0] = s10
					c1[1] = s11
					c1[2] = s12
					c1[3] = s13
				}
			}
			for ; j < jEnd; j++ {
				pj := bp[(j&^3)*k+(j&3):]
				var s0, s1 float64
				if mode == gemmAccSeed {
					s0, s1 = c[i*n+j], c[(i+1)*n+j]
				}
				for p, av0 := range a0 {
					bv := pj[p*4]
					s0 += av0 * bv
					s1 += a1[p] * bv
				}
				if mode == gemmAccAdd {
					c[i*n+j] += s0
					c[(i+1)*n+j] += s1
				} else {
					c[i*n+j] = s0
					c[(i+1)*n+j] = s1
				}
			}
		}
		for ; i < hi; i++ {
			for j := jc; j < jEnd; j++ {
				scalarPanelCol(i, i+1, j, n, k, a, bp, c, mode)
			}
		}
	}
}

// scalarPanelCol computes output column j for rows [iLo, iHi) straight from
// the panel layout — the tail path when a row group or column block doesn't
// fill a full tile.
func scalarPanelCol(iLo, iHi, j, n, k int, a, bp, c []float64, mode gemmAcc) {
	pj := bp[(j&^3)*k+(j&3):]
	for i := iLo; i < iHi; i++ {
		ai := a[i*k : i*k+k]
		var s float64
		if mode == gemmAccSeed {
			s = c[i*n+j]
		}
		for p, av := range ai {
			s += av * pj[p*4]
		}
		if mode == gemmAccAdd {
			c[i*n+j] += s
		} else {
			c[i*n+j] = s
		}
	}
}

// gemmATB accumulates dB += Aᵀ·G for an m×k matrix a and m×n matrix g:
//
//	dB[p,j] += Σ_i a[i,p]·g[i,j]
//
// The original backward updated each dB element with i ascending in axpy
// form, so the prior dB value participates in every intermediate rounding.
// Here Aᵀ is packed plain (k×m, rows contiguous over i), G's columns are
// panel-packed, and the tiled dot kernel runs in gemmAccSeed mode: the
// accumulator starts at dB[p,j] and streams the products in with i ascending
// — the identical rounding sequence, far fewer memory operations. Rows p of
// dB are the parallel dimension.
func gemmATB(m, k, n int, a, g, dB []float64) {
	at := getFloats(k * m)
	packTranspose(a, m, k, at)
	gp := getFloats(roundUp4(n) * m)
	panelsFromCols(g, m, n, gp)
	if m*n*k >= gemmParFlops {
		parallel.For(k, gemmRowGrain, func(lo, hi int) {
			gemmDotRange(lo, hi, n, m, at, gp, dB, gemmAccSeed)
		})
	} else {
		gemmDotRange(0, k, n, m, at, gp, dB, gemmAccSeed)
	}
	putFloats(at)
	putFloats(gp)
}

// matMulForward runs the blocked forward product out = a·b, packing b once.
func matMulForward(a, b, out *Tensor) {
	m, k, n := a.Rows, a.Cols, b.Cols
	bp := getFloats(roundUp4(n) * k)
	panelsFromCols(b.Data, k, n, bp)
	gemmDotPanels(m, n, k, a.Data, bp, out.Data, gemmAccStore)
	putFloats(bp)
}

// Legacy scalar kernels: the pre-rewrite triple loops, zero-skip included,
// kept verbatim as the nnbench baseline and the bit-compatibility oracle.

func legacyMatMulForward(a, b, out *Tensor) {
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		for p := 0; p < a.Cols; p++ {
			av := a.Data[i*a.Cols+p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*b.Cols : (p+1)*b.Cols]
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

func legacyMatMulBackward(a, b, out *Tensor) {
	if a.requiresGrad {
		a.ensureGrad()
		for i := 0; i < a.Rows; i++ {
			gi := out.Grad[i*b.Cols : (i+1)*b.Cols]
			for p := 0; p < a.Cols; p++ {
				brow := b.Data[p*b.Cols : (p+1)*b.Cols]
				var s float64
				for j, bv := range brow {
					s += gi[j] * bv
				}
				a.Grad[i*a.Cols+p] += s
			}
		}
	}
	if b.requiresGrad {
		b.ensureGrad()
		for p := 0; p < a.Cols; p++ {
			bg := b.Grad[p*b.Cols : (p+1)*b.Cols]
			for i := 0; i < a.Rows; i++ {
				av := a.Data[i*a.Cols+p]
				if av == 0 {
					continue
				}
				gi := out.Grad[i*b.Cols : (i+1)*b.Cols]
				for j, gv := range gi {
					bg[j] += av * gv
				}
			}
		}
	}
}
