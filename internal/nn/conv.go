package nn

import (
	"math"

	"hammer/internal/randx"
)

// CausalConv1D is a dilated causal 1-D convolution over a Sequence (eq. 3):
// out[t] = b + Σ_{j=0..k-1} in[t - j·d] @ W_j, with missing (t-j·d < 0)
// terms treated as zero padding. Causality means out[t] never reads the
// future; dilation d widens the receptive field to (k-1)·d + 1.
type CausalConv1D struct {
	W        []*Tensor // k taps, each [in, out]
	B        *Tensor   // [1, out]
	Dilation int
}

// NewCausalConv1D builds a convolution with k taps and the given dilation.
func NewCausalConv1D(in, out, k, dilation int, rng *randx.Rand) *CausalConv1D {
	if k <= 0 {
		k = 1
	}
	if dilation <= 0 {
		dilation = 1
	}
	scale := math.Sqrt(2.0 / float64(in*k))
	c := &CausalConv1D{B: Zeros(1, out).RequireGrad(), Dilation: dilation}
	for j := 0; j < k; j++ {
		c.W = append(c.W, Param(in, out, scale, rng))
	}
	return c
}

// Forward convolves the sequence, preserving its length.
func (c *CausalConv1D) Forward(seq Sequence) Sequence {
	return c.ForwardAct(seq, ActNone)
}

// ForwardAct convolves with a fused activation: each output step is one
// convStep node instead of a MatMul/Add chain per tap. Legacy mode rebuilds
// the original graph.
func (c *CausalConv1D) ForwardAct(seq Sequence, act Activation) Sequence {
	out := make(Sequence, len(seq))
	if LegacyKernels() {
		for t := range seq {
			var acc *Tensor
			for j, w := range c.W {
				src := t - j*c.Dilation
				if src < 0 {
					continue
				}
				term := MatMul(seq[src], w)
				if acc == nil {
					acc = term
				} else {
					acc = Add(acc, term)
				}
			}
			if acc == nil {
				acc = MatMul(seq[t], c.W[0]) // unreachable for j=0; defensive
			}
			step := AddBias(acc, c.B)
			switch act {
			case ActSigmoid:
				step = Sigmoid(step)
			case ActTanh:
				step = Tanh(step)
			case ActReLU:
				step = ReLU(step)
			}
			out[t] = step
		}
		return out
	}
	ins := make([]*Tensor, 0, len(c.W))
	ws := make([]*Tensor, 0, len(c.W))
	for t := range seq {
		ins, ws = ins[:0], ws[:0]
		for j, w := range c.W {
			src := t - j*c.Dilation
			if src < 0 {
				continue
			}
			ins = append(ins, seq[src])
			ws = append(ws, w)
		}
		out[t] = convStep(ins, ws, c.B, act)
	}
	return out
}

// Params implements Module.
func (c *CausalConv1D) Params() []*Tensor {
	out := append([]*Tensor(nil), c.W...)
	return append(out, c.B)
}

// TCNBlock is one temporal block: two dilated causal convolutions with ReLU
// activations plus a residual connection (1×1-projected when widths differ).
type TCNBlock struct {
	Conv1, Conv2 *CausalConv1D
	Residual     *Dense // nil when in == out
}

// NewTCNBlock builds a block at the given dilation.
func NewTCNBlock(in, out, k, dilation int, rng *randx.Rand) *TCNBlock {
	b := &TCNBlock{
		Conv1: NewCausalConv1D(in, out, k, dilation, rng),
		Conv2: NewCausalConv1D(out, out, k, dilation, rng),
	}
	if in != out {
		b.Residual = NewDense(in, out, rng)
	}
	return b
}

// Forward applies the block.
func (b *TCNBlock) Forward(seq Sequence) Sequence {
	h := b.Conv1.ForwardAct(seq, ActReLU)
	h = b.Conv2.ForwardAct(h, ActReLU)
	out := make(Sequence, len(seq))
	for t := range seq {
		res := seq[t]
		if b.Residual != nil {
			res = b.Residual.Forward(res)
		}
		out[t] = Add(h[t], res)
	}
	return out
}

// Params implements Module.
func (b *TCNBlock) Params() []*Tensor {
	out := append(b.Conv1.Params(), b.Conv2.Params()...)
	if b.Residual != nil {
		out = append(out, b.Residual.Params()...)
	}
	return out
}

// TCN stacks temporal blocks with exponentially growing dilation
// (1, 2, 4, …), the standard construction from Bai et al. the paper adopts.
type TCN struct {
	Blocks []*TCNBlock
}

// NewTCN builds `levels` blocks from `in` channels to `hidden` channels.
func NewTCN(in, hidden, k, levels int, rng *randx.Rand) *TCN {
	t := &TCN{}
	width := in
	dilation := 1
	for l := 0; l < levels; l++ {
		t.Blocks = append(t.Blocks, NewTCNBlock(width, hidden, k, dilation, rng))
		width = hidden
		dilation *= 2
	}
	return t
}

// Forward applies every block in order.
func (t *TCN) Forward(seq Sequence) Sequence {
	for _, b := range t.Blocks {
		seq = b.Forward(seq)
	}
	return seq
}

// Params implements Module.
func (t *TCN) Params() []*Tensor {
	var out []*Tensor
	for _, b := range t.Blocks {
		out = append(out, b.Params()...)
	}
	return out
}

// ReceptiveField reports how many past steps influence the last output.
func (t *TCN) ReceptiveField() int {
	rf := 1
	dilation := 1
	for range t.Blocks {
		// Two k-tap convolutions per block.
		k := 0
		if len(t.Blocks) > 0 {
			k = len(t.Blocks[0].Conv1.W)
		}
		rf += 2 * (k - 1) * dilation
		dilation *= 2
	}
	return rf
}
