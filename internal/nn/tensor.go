// Package nn is a small reverse-mode automatic-differentiation engine and
// layer library, sufficient to train the paper's workload-prediction model
// (TCN → BiGRU → multi-head attention, §IV) and its baselines (RNN, TCN,
// Transformer) from scratch on CPU. Tensors are dense 2-D float64 matrices;
// sequences are represented as slices of [batch, channels] tensors.
package nn

import (
	"fmt"
	"math"

	"hammer/internal/randx"
)

// Tensor is a 2-D matrix participating in the autodiff graph. Gradients are
// accumulated into Grad during Backward.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64

	requiresGrad bool
	parents      []*Tensor
	backFn       func()
}

// New wraps data (len rows*cols, row-major) without copying.
func New(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("nn: New(%d,%d) with %d values", rows, cols, len(data)))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Zeros allocates a zero matrix.
func Zeros(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Full allocates a matrix filled with v.
func Full(rows, cols int, v float64) *Tensor {
	t := Zeros(rows, cols)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromVector wraps a slice as a [1, n] row vector (copying).
func FromVector(v []float64) *Tensor {
	d := make([]float64, len(v))
	copy(d, v)
	return New(1, len(v), d)
}

// Param allocates a trainable matrix with scaled Gaussian init
// (He/Xavier-style: scale ~ sqrt(1/fanIn) chosen by the caller).
func Param(rows, cols int, scale float64, rng *randx.Rand) *Tensor {
	t := Zeros(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	t.requiresGrad = true
	t.Grad = make([]float64, rows*cols)
	return t
}

// RequireGrad marks the tensor trainable and returns it.
func (t *Tensor) RequireGrad() *Tensor {
	t.requiresGrad = true
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	return t
}

// RequiresGrad reports whether the tensor is trainable or derived from a
// trainable tensor.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At reads element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set writes element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// Item returns the single element of a 1×1 tensor.
func (t *Tensor) Item() float64 {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("nn: Item on %dx%d tensor", t.Rows, t.Cols))
	}
	return t.Data[0]
}

// Clone copies the values (detached from the graph).
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return New(t.Rows, t.Cols, d)
}

// newResult builds a graph node derived from parents.
func newResult(rows, cols int, parents ...*Tensor) *Tensor {
	out := Zeros(rows, cols)
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.Grad = make([]float64, rows*cols)
		out.parents = parents
	}
	return out
}

// ensureGrad lazily allocates a parent's gradient buffer during backward.
func ensureGrad(t *Tensor) {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// Backward runs reverse-mode differentiation from a scalar output: the
// output's gradient is seeded with 1 and every reachable node's backFn runs
// in reverse topological order.
func (t *Tensor) Backward() {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward from non-scalar %dx%d tensor", t.Rows, t.Cols))
	}
	if !t.requiresGrad {
		return
	}
	order := topoSort(t)
	ensureGrad(t)
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn != nil {
			n.backFn()
		}
	}
}

func topoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	visited := make(map[*Tensor]bool)
	// Iterative DFS to avoid deep recursion on long unrolled sequences.
	type frame struct {
		node *Tensor
		next int
	}
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.parents) {
			p := f.node.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{node: p})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// GradNorm is the L2 norm of the gradient (for clipping and diagnostics).
func (t *Tensor) GradNorm() float64 {
	var s float64
	for _, g := range t.Grad {
		s += g * g
	}
	return math.Sqrt(s)
}

// String renders shape and a preview.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
}

func sameShape(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
