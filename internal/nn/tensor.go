// Package nn is a small reverse-mode automatic-differentiation engine and
// layer library, sufficient to train the paper's workload-prediction model
// (TCN → BiGRU → multi-head attention, §IV) and its baselines (RNN, TCN,
// Transformer) from scratch on CPU. Tensors are dense 2-D float64 matrices;
// sequences are represented as slices of [batch, channels] tensors.
//
// The engine records each node's operation as a small op code instead of a
// backward closure, draws Data/Grad buffers from a freelist (pool.go), and
// runs its matrix products through blocked, register-tiled kernels (gemm.go)
// that parallelize over fixed row blocks. Accumulation orders are preserved
// from the original scalar implementation, so training results are
// bit-compatible with it and byte-identical at any worker count.
package nn

import (
	"fmt"
	"math"

	"hammer/internal/randx"
)

// Tensor is a 2-D matrix participating in the autodiff graph. Gradients are
// accumulated into Grad during Backward.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64

	requiresGrad bool
	parents      []*Tensor
	op           opKind
	act          Activation
	fval         float64   // op-specific scalar (Scale factor, attention 1/√d, …)
	i0, i1       int       // op-specific ints (slice bounds, tap count, …)
	scratch      []float64 // op-specific saved state (softmax probs, layernorm x̂, …)
	stamp        uint64    // visit mark for graph walks; owned by the training goroutine
	backFn       func()    // legacy mode only: the seed engine's per-node closure
}

// New wraps data (len rows*cols, row-major) without copying.
func New(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("nn: New(%d,%d) with %d values", rows, cols, len(data)))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Zeros allocates a zero matrix.
func Zeros(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Full allocates a matrix filled with v.
func Full(rows, cols int, v float64) *Tensor {
	t := Zeros(rows, cols)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromVector wraps a slice as a [1, n] row vector (copying).
func FromVector(v []float64) *Tensor {
	d := make([]float64, len(v))
	copy(d, v)
	return New(1, len(v), d)
}

// Param allocates a trainable matrix with scaled Gaussian init
// (He/Xavier-style: scale ~ sqrt(1/fanIn) chosen by the caller).
func Param(rows, cols int, scale float64, rng *randx.Rand) *Tensor {
	t := Zeros(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	t.requiresGrad = true
	t.Grad = make([]float64, rows*cols)
	return t
}

// RequireGrad marks the tensor trainable and returns it.
func (t *Tensor) RequireGrad() *Tensor {
	t.requiresGrad = true
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	return t
}

// RequiresGrad reports whether the tensor is trainable or derived from a
// trainable tensor.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At reads element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set writes element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// Item returns the single element of a 1×1 tensor.
func (t *Tensor) Item() float64 {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("nn: Item on %dx%d tensor", t.Rows, t.Cols))
	}
	return t.Data[0]
}

// Clone copies the values (detached from the graph).
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return New(t.Rows, t.Cols, d)
}

// newResult builds a graph node derived from parents. Its Data buffer comes
// from the freelist with unspecified contents: every op kernel fully
// overwrites it. Grad stays nil until backward first touches the node.
// Parents are recorded even for non-grad nodes so Release can walk and free
// whole derived subgraphs.
func newResult(rows, cols int, op opKind, parents ...*Tensor) *Tensor {
	t := getTensorStruct()
	t.Rows, t.Cols = rows, cols
	t.Data = getFloats(rows * cols)
	t.Grad = nil
	t.op = op
	t.act = actNone
	t.fval = 0
	t.i0, t.i1 = 0, 0
	t.scratch = nil
	t.stamp = 0
	t.requiresGrad = false
	t.backFn = nil
	t.parents = append(t.parents[:0], parents...)
	for _, p := range parents {
		if p.requiresGrad {
			t.requiresGrad = true
			break
		}
	}
	// Legacy mode replicates the seed engine's per-node costs so the A/B
	// baseline is honest: a zeroed gradient buffer allocated eagerly at
	// construction and a backward closure per node.
	if t.requiresGrad && LegacyKernels() {
		t.Grad = make([]float64, rows*cols)
		t.backFn = t.backward
	}
	return t
}

// ensureGrad lazily allocates a gradient buffer during backward. Derived
// nodes draw zeroed buffers from the freelist; leaves always pre-allocate in
// Param/RequireGrad, so freelist buffers never outlive the step's graph.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = getFloatsZeroed(len(t.Data))
	}
}

// Backward runs reverse-mode differentiation from a scalar output: the
// output's gradient is seeded with 1 and every reachable node's backward op
// runs in reverse topological order.
func (t *Tensor) Backward() {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward from non-scalar %dx%d tensor", t.Rows, t.Cols))
	}
	if !t.requiresGrad {
		return
	}
	if LegacyKernels() {
		// Seed-engine walk: map-based visited set, append-grown order,
		// dispatch through the per-node closures.
		order := legacyTopoSort(t)
		t.ensureGrad()
		t.Grad[0] = 1
		for i := len(order) - 1; i >= 0; i-- {
			if fn := order[i].backFn; fn != nil {
				fn()
			}
		}
		return
	}
	ws := walkPool.Get().(*walkScratch)
	order, stack := topoSortInto(t, ws.order[:0], ws.stack[:0])
	t.ensureGrad()
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		order[i].backward()
	}
	ws.order = order[:0]
	ws.stack = stack[:0]
	walkPool.Put(ws)
}

// legacyTopoSort is the seed engine's traversal, verbatim: identical visit
// order to topoSortInto, with the original allocation profile.
func legacyTopoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	visited := make(map[*Tensor]bool)
	type frame struct {
		node *Tensor
		next int
	}
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.parents) {
			p := f.node.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{node: p})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// topoSortInto is the original iterative DFS with the visited map replaced
// by a per-walk stamp: identical traversal, zero allocations after warm-up.
// Only grad-requiring parents are followed, as Backward needs.
func topoSortInto(root *Tensor, order []*Tensor, stack []walkFrame) ([]*Tensor, []walkFrame) {
	stamp := nextStamp()
	stack = append(stack, walkFrame{node: root})
	root.stamp = stamp
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.parents) {
			p := f.node.parents[f.next]
			f.next++
			if p.stamp != stamp && p.requiresGrad {
				p.stamp = stamp
				stack = append(stack, walkFrame{node: p})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order, stack
}

// Release returns every derived node reachable from root — buffers and
// structs — to the freelist. Call it once per training step after the
// optimizer has consumed the gradients (or after reading a prediction);
// leaves (parameters, inputs) are untouched. The graph must not be used
// afterwards.
func Release(root *Tensor) {
	if root == nil || root.op == opLeaf {
		return
	}
	ws := walkPool.Get().(*walkScratch)
	order, stack := ws.order[:0], ws.stack[:0]
	stamp := nextStamp()
	stack = append(stack, walkFrame{node: root})
	root.stamp = stamp
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.node.op != opLeaf {
			order = append(order, f.node)
		}
		for _, p := range f.node.parents {
			if p.stamp != stamp {
				p.stamp = stamp
				stack = append(stack, walkFrame{node: p})
			}
		}
	}
	for _, n := range order {
		putFloats(n.Data)
		putFloats(n.Grad)
		putFloats(n.scratch)
		n.Data = nil
		n.Grad = nil
		n.scratch = nil
		n.backFn = nil
		n.parents = n.parents[:0]
		n.op = opLeaf
		n.requiresGrad = false
		putTensorStruct(n)
	}
	ws.order = order[:0]
	ws.stack = stack[:0]
	walkPool.Put(ws)
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// GradNorm is the L2 norm of the gradient (for clipping and diagnostics).
func (t *Tensor) GradNorm() float64 {
	var s float64
	for _, g := range t.Grad {
		s += g * g
	}
	return math.Sqrt(s)
}

// String renders shape and a preview.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
}

func sameShape(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
