package nn

import (
	"fmt"
	"math"
)

// opKind identifies the operation that produced a derived node. Backward
// passes dispatch on it (Tensor.backward) instead of calling a per-node
// closure, which keeps graph construction allocation-free.
type opKind uint8

const (
	opLeaf opKind = iota
	opAdd
	opSub
	opMul
	opScale
	opAddScalar
	opAddBias
	opColMul
	opMatMul
	opSigmoid
	opTanh
	opReLU
	opAbs
	opSoftmax
	opConcatCols
	opSliceCols
	opSliceRows
	opSumCols
	opMean
	opTranspose
	opLayerNorm
	opAffine
	opGate
	opConvStep
	opAttnMix
)

// backward applies this node's vector-Jacobian product to its parents. The
// per-op bodies keep the exact loop and accumulation orders of the original
// closure implementation; bit-compatibility of training runs depends on it.
func (t *Tensor) backward() {
	switch t.op {
	case opLeaf:
	case opAdd:
		a, b := t.parents[0], t.parents[1]
		if a.requiresGrad {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g
			}
		}
		if b.requiresGrad {
			b.ensureGrad()
			for i, g := range t.Grad {
				b.Grad[i] += g
			}
		}
	case opSub:
		a, b := t.parents[0], t.parents[1]
		if a.requiresGrad {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g
			}
		}
		if b.requiresGrad {
			b.ensureGrad()
			for i, g := range t.Grad {
				b.Grad[i] -= g
			}
		}
	case opMul:
		a, b := t.parents[0], t.parents[1]
		if a.requiresGrad {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g * b.Data[i]
			}
		}
		if b.requiresGrad {
			b.ensureGrad()
			for i, g := range t.Grad {
				b.Grad[i] += g * a.Data[i]
			}
		}
	case opScale:
		x := t.parents[0]
		x.ensureGrad()
		for i, g := range t.Grad {
			x.Grad[i] += g * t.fval
		}
	case opAddScalar:
		x := t.parents[0]
		x.ensureGrad()
		for i, g := range t.Grad {
			x.Grad[i] += g
		}
	case opAddBias:
		x, bias := t.parents[0], t.parents[1]
		if x.requiresGrad {
			x.ensureGrad()
			for i, g := range t.Grad {
				x.Grad[i] += g
			}
		}
		if bias.requiresGrad {
			bias.ensureGrad()
			for r := 0; r < t.Rows; r++ {
				base := r * t.Cols
				for c := 0; c < t.Cols; c++ {
					bias.Grad[c] += t.Grad[base+c]
				}
			}
		}
	case opColMul:
		x, col := t.parents[0], t.parents[1]
		if x.requiresGrad {
			x.ensureGrad()
			for r := 0; r < t.Rows; r++ {
				w := col.Data[r]
				base := r * t.Cols
				for c := 0; c < t.Cols; c++ {
					x.Grad[base+c] += t.Grad[base+c] * w
				}
			}
		}
		if col.requiresGrad {
			col.ensureGrad()
			for r := 0; r < t.Rows; r++ {
				base := r * t.Cols
				var s float64
				for c := 0; c < t.Cols; c++ {
					s += t.Grad[base+c] * x.Data[base+c]
				}
				col.Grad[r] += s
			}
		}
	case opMatMul:
		a, b := t.parents[0], t.parents[1]
		if legacyKernels.Load() {
			legacyMatMulBackward(a, b, t)
			return
		}
		m, k, n := a.Rows, a.Cols, b.Cols
		if a.requiresGrad {
			a.ensureGrad()
			// dA = dC·Bᵀ: rows of B are already the contiguous panels.
			gemmDot(m, k, n, t.Grad, b.Data, a.Grad, true)
		}
		if b.requiresGrad {
			b.ensureGrad()
			// dB = Aᵀ·dC in axpy form, i ascending per element.
			gemmATB(m, k, n, a.Data, t.Grad, b.Grad)
		}
	case opSigmoid:
		x := t.parents[0]
		x.ensureGrad()
		for i, g := range t.Grad {
			y := t.Data[i]
			x.Grad[i] += g * y * (1 - y)
		}
	case opTanh:
		x := t.parents[0]
		x.ensureGrad()
		for i, g := range t.Grad {
			y := t.Data[i]
			x.Grad[i] += g * (1 - y*y)
		}
	case opReLU:
		x := t.parents[0]
		x.ensureGrad()
		for i, g := range t.Grad {
			if x.Data[i] > 0 {
				x.Grad[i] += g
			}
		}
	case opAbs:
		x := t.parents[0]
		x.ensureGrad()
		for i, g := range t.Grad {
			switch {
			case x.Data[i] > 0:
				x.Grad[i] += g
			case x.Data[i] < 0:
				x.Grad[i] -= g
			}
		}
	case opSoftmax:
		x := t.parents[0]
		x.ensureGrad()
		for r := 0; r < t.Rows; r++ {
			y := t.Data[r*t.Cols : (r+1)*t.Cols]
			gy := t.Grad[r*t.Cols : (r+1)*t.Cols]
			gx := x.Grad[r*t.Cols : (r+1)*t.Cols]
			var dot float64
			for i := range y {
				dot += gy[i] * y[i]
			}
			for i := range y {
				gx[i] += y[i] * (gy[i] - dot)
			}
		}
	case opConcatCols:
		off := 0
		for _, p := range t.parents {
			if p.requiresGrad {
				p.ensureGrad()
				for r := 0; r < t.Rows; r++ {
					src := t.Grad[r*t.Cols+off : r*t.Cols+off+p.Cols]
					dst := p.Grad[r*p.Cols : (r+1)*p.Cols]
					for i, g := range src {
						dst[i] += g
					}
				}
			}
			off += p.Cols
		}
	case opSliceCols:
		x := t.parents[0]
		x.ensureGrad()
		from, w := t.i0, t.Cols
		for r := 0; r < t.Rows; r++ {
			for c := 0; c < w; c++ {
				x.Grad[r*x.Cols+from+c] += t.Grad[r*w+c]
			}
		}
	case opSliceRows:
		x := t.parents[0]
		x.ensureGrad()
		from := t.i0
		for i, g := range t.Grad {
			x.Grad[from*x.Cols+i] += g
		}
	case opSumCols:
		x := t.parents[0]
		x.ensureGrad()
		for r := 0; r < x.Rows; r++ {
			g := t.Grad[r]
			for c := 0; c < x.Cols; c++ {
				x.Grad[r*x.Cols+c] += g
			}
		}
	case opMean:
		x := t.parents[0]
		x.ensureGrad()
		g := t.Grad[0] / float64(len(x.Data))
		for i := range x.Grad {
			x.Grad[i] += g
		}
	case opTranspose:
		x := t.parents[0]
		x.ensureGrad()
		for r := 0; r < x.Rows; r++ {
			for c := 0; c < x.Cols; c++ {
				x.Grad[r*x.Cols+c] += t.Grad[c*x.Rows+r]
			}
		}
	case opLayerNorm:
		t.backwardLayerNorm()
	case opAffine:
		t.backwardAffine()
	case opGate:
		t.backwardGate()
	case opConvStep:
		t.backwardConvStep()
	case opAttnMix:
		t.backwardAttnMix()
	}
}

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Rows, a.Cols, opAdd, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b (same shape).
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Rows, a.Cols, opSub, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the elementwise product a ⊙ b (same shape).
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Rows, a.Cols, opMul, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s·x.
func Scale(x *Tensor, s float64) *Tensor {
	out := newResult(x.Rows, x.Cols, opScale, x)
	out.fval = s
	for i := range out.Data {
		out.Data[i] = x.Data[i] * s
	}
	return out
}

// AddScalar returns x + s.
func AddScalar(x *Tensor, s float64) *Tensor {
	out := newResult(x.Rows, x.Cols, opAddScalar, x)
	for i := range out.Data {
		out.Data[i] = x.Data[i] + s
	}
	return out
}

// AddBias broadcasts a [1, C] bias over the rows of x [B, C].
func AddBias(x, bias *Tensor) *Tensor {
	if bias.Rows != 1 || bias.Cols != x.Cols {
		panic(fmt.Sprintf("nn: AddBias %dx%d onto %dx%d", bias.Rows, bias.Cols, x.Rows, x.Cols))
	}
	out := newResult(x.Rows, x.Cols, opAddBias, x, bias)
	for r := 0; r < x.Rows; r++ {
		base := r * x.Cols
		for c := 0; c < x.Cols; c++ {
			out.Data[base+c] = x.Data[base+c] + bias.Data[c]
		}
	}
	return out
}

// ColMul broadcasts a [B, 1] column over the columns of x [B, C],
// multiplying elementwise (used by attention to weight value vectors).
func ColMul(x, col *Tensor) *Tensor {
	if col.Cols != 1 || col.Rows != x.Rows {
		panic(fmt.Sprintf("nn: ColMul %dx%d with %dx%d", x.Rows, x.Cols, col.Rows, col.Cols))
	}
	out := newResult(x.Rows, x.Cols, opColMul, x, col)
	for r := 0; r < x.Rows; r++ {
		w := col.Data[r]
		base := r * x.Cols
		for c := 0; c < x.Cols; c++ {
			out.Data[base+c] = x.Data[base+c] * w
		}
	}
	return out
}

// MatMul returns a @ b for a [m, k] and b [k, n], through the blocked
// kernels (gemm.go) or — in legacy mode — the original triple loop.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := newResult(a.Rows, b.Cols, opMatMul, a, b)
	if legacyKernels.Load() {
		legacyMatMulForward(a, b, out)
	} else {
		matMulForward(a, b, out)
	}
	return out
}

// Sigmoid applies 1/(1+e^-x) elementwise.
func Sigmoid(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, opSigmoid, x)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

// Tanh applies tanh elementwise.
func Tanh(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, opTanh, x)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, opReLU, x)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Abs applies |x| elementwise (subgradient 0 at 0).
func Abs(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, opAbs, x)
	for i, v := range x.Data {
		out.Data[i] = math.Abs(v)
	}
	return out
}

// Softmax normalises each row into a probability distribution (eq. 6's
// softmax over attention scores).
func Softmax(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, opSoftmax, x)
	for r := 0; r < x.Rows; r++ {
		row := x.Data[r*x.Cols : (r+1)*x.Cols]
		orow := out.Data[r*x.Cols : (r+1)*x.Cols]
		softmaxRow(row, orow)
	}
	return out
}

// softmaxRow writes softmax(row) into orow with the standard max-shifted
// exponentials; shared by Softmax and the fused attention kernel so both
// produce identical bits.
func softmaxRow(row, orow []float64) {
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(v - max)
		orow[i] = e
		sum += e
	}
	for i := range orow {
		orow[i] /= sum
	}
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	cols := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic(fmt.Sprintf("nn: ConcatCols row mismatch %d vs %d", t.Rows, rows))
		}
		cols += t.Cols
	}
	out := newResult(rows, cols, opConcatCols, ts...)
	off := 0
	for _, t := range ts {
		for r := 0; r < rows; r++ {
			copy(out.Data[r*cols+off:r*cols+off+t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols])
		}
		off += t.Cols
	}
	return out
}

// SliceCols returns columns [from, to) as a new tensor.
func SliceCols(x *Tensor, from, to int) *Tensor {
	if from < 0 || to > x.Cols || from >= to {
		panic(fmt.Sprintf("nn: SliceCols[%d:%d] of %d columns", from, to, x.Cols))
	}
	w := to - from
	out := newResult(x.Rows, w, opSliceCols, x)
	out.i0, out.i1 = from, to
	for r := 0; r < x.Rows; r++ {
		copy(out.Data[r*w:(r+1)*w], x.Data[r*x.Cols+from:r*x.Cols+to])
	}
	return out
}

// SliceRows returns rows [from, to) as a new tensor.
func SliceRows(x *Tensor, from, to int) *Tensor {
	if from < 0 || to > x.Rows || from >= to {
		panic(fmt.Sprintf("nn: SliceRows[%d:%d] of %d rows", from, to, x.Rows))
	}
	h := to - from
	out := newResult(h, x.Cols, opSliceRows, x)
	out.i0, out.i1 = from, to
	copy(out.Data, x.Data[from*x.Cols:to*x.Cols])
	return out
}

// SumCols reduces each row to its sum, producing [B, 1].
func SumCols(x *Tensor) *Tensor {
	out := newResult(x.Rows, 1, opSumCols, x)
	for r := 0; r < x.Rows; r++ {
		var s float64
		for c := 0; c < x.Cols; c++ {
			s += x.Data[r*x.Cols+c]
		}
		out.Data[r] = s
	}
	return out
}

// Mean reduces the whole tensor to its scalar mean.
func Mean(x *Tensor) *Tensor {
	out := newResult(1, 1, opMean, x)
	var s float64
	for _, v := range x.Data {
		s += v
	}
	out.Data[0] = s / float64(len(x.Data))
	return out
}

// Transpose returns xᵀ.
func Transpose(x *Tensor) *Tensor {
	out := newResult(x.Cols, x.Rows, opTranspose, x)
	for r := 0; r < x.Rows; r++ {
		for c := 0; c < x.Cols; c++ {
			out.Data[c*x.Rows+r] = x.Data[r*x.Cols+c]
		}
	}
	return out
}

// LayerNorm normalises each row to zero mean and unit variance, then applies
// the learned affine (gamma, beta), both [1, C].
func LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor {
	if gamma.Cols != x.Cols || beta.Cols != x.Cols || gamma.Rows != 1 || beta.Rows != 1 {
		panic("nn: LayerNorm affine shape mismatch")
	}
	if eps <= 0 {
		eps = 1e-5
	}
	out := newResult(x.Rows, x.Cols, opLayerNorm, x, gamma, beta)
	n := float64(x.Cols)
	// scratch = x̂ followed by per-row 1/σ, both needed in backward.
	out.scratch = getFloats(len(x.Data) + x.Rows)
	xhat := out.scratch[:len(x.Data)]
	invStd := out.scratch[len(x.Data):]
	for r := 0; r < x.Rows; r++ {
		row := x.Data[r*x.Cols : (r+1)*x.Cols]
		var mu float64
		for _, v := range row {
			mu += v
		}
		mu /= n
		var va float64
		for _, v := range row {
			d := v - mu
			va += d * d
		}
		va /= n
		is := 1 / math.Sqrt(va+eps)
		invStd[r] = is
		for c, v := range row {
			xh := (v - mu) * is
			xhat[r*x.Cols+c] = xh
			out.Data[r*x.Cols+c] = xh*gamma.Data[c] + beta.Data[c]
		}
	}
	return out
}

func (t *Tensor) backwardLayerNorm() {
	x, gamma, beta := t.parents[0], t.parents[1], t.parents[2]
	n := float64(t.Cols)
	xhat := t.scratch[:len(x.Data)]
	invStd := t.scratch[len(x.Data):]
	for r := 0; r < t.Rows; r++ {
		gy := t.Grad[r*t.Cols : (r+1)*t.Cols]
		xh := xhat[r*t.Cols : (r+1)*t.Cols]
		if gamma.requiresGrad {
			gamma.ensureGrad()
			for c := range gy {
				gamma.Grad[c] += gy[c] * xh[c]
			}
		}
		if beta.requiresGrad {
			beta.ensureGrad()
			for c := range gy {
				beta.Grad[c] += gy[c]
			}
		}
		if x.requiresGrad {
			x.ensureGrad()
			// dxhat = gy * gamma; dx = invStd*(dxhat - mean(dxhat)
			//        - xhat * mean(dxhat ⊙ xhat))
			var m1, m2 float64
			for c := range gy {
				d := gy[c] * gamma.Data[c]
				m1 += d
				m2 += d * xh[c]
			}
			m1 /= n
			m2 /= n
			is := invStd[r]
			for c := range gy {
				d := gy[c] * gamma.Data[c]
				x.Grad[r*t.Cols+c] += is * (d - m1 - xh[c]*m2)
			}
		}
	}
}
