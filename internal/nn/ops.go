package nn

import (
	"fmt"
	"math"
)

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Rows, a.Cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				ensureGrad(a)
				for i, g := range out.Grad {
					a.Grad[i] += g
				}
			}
			if b.requiresGrad {
				ensureGrad(b)
				for i, g := range out.Grad {
					b.Grad[i] += g
				}
			}
		}
	}
	return out
}

// Sub returns a - b (same shape).
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Rows, a.Cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				ensureGrad(a)
				for i, g := range out.Grad {
					a.Grad[i] += g
				}
			}
			if b.requiresGrad {
				ensureGrad(b)
				for i, g := range out.Grad {
					b.Grad[i] -= g
				}
			}
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b (same shape).
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Rows, a.Cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				ensureGrad(a)
				for i, g := range out.Grad {
					a.Grad[i] += g * b.Data[i]
				}
			}
			if b.requiresGrad {
				ensureGrad(b)
				for i, g := range out.Grad {
					b.Grad[i] += g * a.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns s·x.
func Scale(x *Tensor, s float64) *Tensor {
	out := newResult(x.Rows, x.Cols, x)
	for i := range out.Data {
		out.Data[i] = x.Data[i] * s
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for i, g := range out.Grad {
				x.Grad[i] += g * s
			}
		}
	}
	return out
}

// AddScalar returns x + s.
func AddScalar(x *Tensor, s float64) *Tensor {
	out := newResult(x.Rows, x.Cols, x)
	for i := range out.Data {
		out.Data[i] = x.Data[i] + s
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for i, g := range out.Grad {
				x.Grad[i] += g
			}
		}
	}
	return out
}

// AddBias broadcasts a [1, C] bias over the rows of x [B, C].
func AddBias(x, bias *Tensor) *Tensor {
	if bias.Rows != 1 || bias.Cols != x.Cols {
		panic(fmt.Sprintf("nn: AddBias %dx%d onto %dx%d", bias.Rows, bias.Cols, x.Rows, x.Cols))
	}
	out := newResult(x.Rows, x.Cols, x, bias)
	for r := 0; r < x.Rows; r++ {
		base := r * x.Cols
		for c := 0; c < x.Cols; c++ {
			out.Data[base+c] = x.Data[base+c] + bias.Data[c]
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if x.requiresGrad {
				ensureGrad(x)
				for i, g := range out.Grad {
					x.Grad[i] += g
				}
			}
			if bias.requiresGrad {
				ensureGrad(bias)
				for r := 0; r < out.Rows; r++ {
					base := r * out.Cols
					for c := 0; c < out.Cols; c++ {
						bias.Grad[c] += out.Grad[base+c]
					}
				}
			}
		}
	}
	return out
}

// ColMul broadcasts a [B, 1] column over the columns of x [B, C],
// multiplying elementwise (used by attention to weight value vectors).
func ColMul(x, col *Tensor) *Tensor {
	if col.Cols != 1 || col.Rows != x.Rows {
		panic(fmt.Sprintf("nn: ColMul %dx%d with %dx%d", x.Rows, x.Cols, col.Rows, col.Cols))
	}
	out := newResult(x.Rows, x.Cols, x, col)
	for r := 0; r < x.Rows; r++ {
		w := col.Data[r]
		base := r * x.Cols
		for c := 0; c < x.Cols; c++ {
			out.Data[base+c] = x.Data[base+c] * w
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if x.requiresGrad {
				ensureGrad(x)
				for r := 0; r < out.Rows; r++ {
					w := col.Data[r]
					base := r * out.Cols
					for c := 0; c < out.Cols; c++ {
						x.Grad[base+c] += out.Grad[base+c] * w
					}
				}
			}
			if col.requiresGrad {
				ensureGrad(col)
				for r := 0; r < out.Rows; r++ {
					base := r * out.Cols
					var s float64
					for c := 0; c < out.Cols; c++ {
						s += out.Grad[base+c] * x.Data[base+c]
					}
					col.Grad[r] += s
				}
			}
		}
	}
	return out
}

// MatMul returns a @ b for a [m, k] and b [k, n].
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	out := newResult(m, n, a, b)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				oi[j] += av * bp[j]
			}
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				ensureGrad(a)
				// dA = dC @ B^T
				for i := 0; i < m; i++ {
					gi := out.Grad[i*n : (i+1)*n]
					for p := 0; p < k; p++ {
						bp := b.Data[p*n : (p+1)*n]
						var s float64
						for j := 0; j < n; j++ {
							s += gi[j] * bp[j]
						}
						a.Grad[i*k+p] += s
					}
				}
			}
			if b.requiresGrad {
				ensureGrad(b)
				// dB = A^T @ dC
				for p := 0; p < k; p++ {
					for i := 0; i < m; i++ {
						av := a.Data[i*k+p]
						if av == 0 {
							continue
						}
						gi := out.Grad[i*n : (i+1)*n]
						bg := b.Grad[p*n : (p+1)*n]
						for j := 0; j < n; j++ {
							bg[j] += av * gi[j]
						}
					}
				}
			}
		}
	}
	return out
}

// Sigmoid applies 1/(1+e^-x) elementwise.
func Sigmoid(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, x)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for i, g := range out.Grad {
				y := out.Data[i]
				x.Grad[i] += g * y * (1 - y)
			}
		}
	}
	return out
}

// Tanh applies tanh elementwise.
func Tanh(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, x)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for i, g := range out.Grad {
				y := out.Data[i]
				x.Grad[i] += g * (1 - y*y)
			}
		}
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, x)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for i, g := range out.Grad {
				if x.Data[i] > 0 {
					x.Grad[i] += g
				}
			}
		}
	}
	return out
}

// Abs applies |x| elementwise (subgradient 0 at 0).
func Abs(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, x)
	for i, v := range x.Data {
		out.Data[i] = math.Abs(v)
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for i, g := range out.Grad {
				switch {
				case x.Data[i] > 0:
					x.Grad[i] += g
				case x.Data[i] < 0:
					x.Grad[i] -= g
				}
			}
		}
	}
	return out
}

// Softmax normalises each row into a probability distribution (eq. 6's
// softmax over attention scores).
func Softmax(x *Tensor) *Tensor {
	out := newResult(x.Rows, x.Cols, x)
	for r := 0; r < x.Rows; r++ {
		row := x.Data[r*x.Cols : (r+1)*x.Cols]
		orow := out.Data[r*x.Cols : (r+1)*x.Cols]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(v - max)
			orow[i] = e
			sum += e
		}
		for i := range orow {
			orow[i] /= sum
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for r := 0; r < out.Rows; r++ {
				y := out.Data[r*out.Cols : (r+1)*out.Cols]
				gy := out.Grad[r*out.Cols : (r+1)*out.Cols]
				gx := x.Grad[r*out.Cols : (r+1)*out.Cols]
				var dot float64
				for i := range y {
					dot += gy[i] * y[i]
				}
				for i := range y {
					gx[i] += y[i] * (gy[i] - dot)
				}
			}
		}
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	cols := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic(fmt.Sprintf("nn: ConcatCols row mismatch %d vs %d", t.Rows, rows))
		}
		cols += t.Cols
	}
	out := newResult(rows, cols, ts...)
	off := 0
	for _, t := range ts {
		for r := 0; r < rows; r++ {
			copy(out.Data[r*cols+off:r*cols+off+t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols])
		}
		off += t.Cols
	}
	if out.requiresGrad {
		out.backFn = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					ensureGrad(t)
					for r := 0; r < rows; r++ {
						src := out.Grad[r*cols+off : r*cols+off+t.Cols]
						dst := t.Grad[r*t.Cols : (r+1)*t.Cols]
						for i, g := range src {
							dst[i] += g
						}
					}
				}
				off += t.Cols
			}
		}
	}
	return out
}

// SliceCols returns columns [from, to) as a new tensor.
func SliceCols(x *Tensor, from, to int) *Tensor {
	if from < 0 || to > x.Cols || from >= to {
		panic(fmt.Sprintf("nn: SliceCols[%d:%d] of %d columns", from, to, x.Cols))
	}
	w := to - from
	out := newResult(x.Rows, w, x)
	for r := 0; r < x.Rows; r++ {
		copy(out.Data[r*w:(r+1)*w], x.Data[r*x.Cols+from:r*x.Cols+to])
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for r := 0; r < out.Rows; r++ {
				for c := 0; c < w; c++ {
					x.Grad[r*x.Cols+from+c] += out.Grad[r*w+c]
				}
			}
		}
	}
	return out
}

// SliceRows returns rows [from, to) as a new tensor.
func SliceRows(x *Tensor, from, to int) *Tensor {
	if from < 0 || to > x.Rows || from >= to {
		panic(fmt.Sprintf("nn: SliceRows[%d:%d] of %d rows", from, to, x.Rows))
	}
	h := to - from
	out := newResult(h, x.Cols, x)
	copy(out.Data, x.Data[from*x.Cols:to*x.Cols])
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for i, g := range out.Grad {
				x.Grad[from*x.Cols+i] += g
			}
		}
	}
	return out
}

// SumCols reduces each row to its sum, producing [B, 1].
func SumCols(x *Tensor) *Tensor {
	out := newResult(x.Rows, 1, x)
	for r := 0; r < x.Rows; r++ {
		var s float64
		for c := 0; c < x.Cols; c++ {
			s += x.Data[r*x.Cols+c]
		}
		out.Data[r] = s
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for r := 0; r < x.Rows; r++ {
				g := out.Grad[r]
				for c := 0; c < x.Cols; c++ {
					x.Grad[r*x.Cols+c] += g
				}
			}
		}
	}
	return out
}

// Mean reduces the whole tensor to its scalar mean.
func Mean(x *Tensor) *Tensor {
	out := newResult(1, 1, x)
	var s float64
	for _, v := range x.Data {
		s += v
	}
	n := float64(len(x.Data))
	out.Data[0] = s / n
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			g := out.Grad[0] / n
			for i := range x.Grad {
				x.Grad[i] += g
			}
		}
	}
	return out
}

// Transpose returns xᵀ.
func Transpose(x *Tensor) *Tensor {
	out := newResult(x.Cols, x.Rows, x)
	for r := 0; r < x.Rows; r++ {
		for c := 0; c < x.Cols; c++ {
			out.Data[c*x.Rows+r] = x.Data[r*x.Cols+c]
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			ensureGrad(x)
			for r := 0; r < x.Rows; r++ {
				for c := 0; c < x.Cols; c++ {
					x.Grad[r*x.Cols+c] += out.Grad[c*x.Rows+r]
				}
			}
		}
	}
	return out
}

// LayerNorm normalises each row to zero mean and unit variance, then applies
// the learned affine (gamma, beta), both [1, C].
func LayerNorm(x, gamma, beta *Tensor, eps float64) *Tensor {
	if gamma.Cols != x.Cols || beta.Cols != x.Cols || gamma.Rows != 1 || beta.Rows != 1 {
		panic("nn: LayerNorm affine shape mismatch")
	}
	if eps <= 0 {
		eps = 1e-5
	}
	out := newResult(x.Rows, x.Cols, x, gamma, beta)
	n := float64(x.Cols)
	xhat := make([]float64, len(x.Data))
	invStd := make([]float64, x.Rows)
	for r := 0; r < x.Rows; r++ {
		row := x.Data[r*x.Cols : (r+1)*x.Cols]
		var mu float64
		for _, v := range row {
			mu += v
		}
		mu /= n
		var va float64
		for _, v := range row {
			d := v - mu
			va += d * d
		}
		va /= n
		is := 1 / math.Sqrt(va+eps)
		invStd[r] = is
		for c, v := range row {
			xh := (v - mu) * is
			xhat[r*x.Cols+c] = xh
			out.Data[r*x.Cols+c] = xh*gamma.Data[c] + beta.Data[c]
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			for r := 0; r < out.Rows; r++ {
				gy := out.Grad[r*out.Cols : (r+1)*out.Cols]
				xh := xhat[r*out.Cols : (r+1)*out.Cols]
				if gamma.requiresGrad {
					ensureGrad(gamma)
					for c := range gy {
						gamma.Grad[c] += gy[c] * xh[c]
					}
				}
				if beta.requiresGrad {
					ensureGrad(beta)
					for c := range gy {
						beta.Grad[c] += gy[c]
					}
				}
				if x.requiresGrad {
					ensureGrad(x)
					// dxhat = gy * gamma; dx = invStd*(dxhat - mean(dxhat)
					//        - xhat * mean(dxhat ⊙ xhat))
					var m1, m2 float64
					for c := range gy {
						d := gy[c] * gamma.Data[c]
						m1 += d
						m2 += d * xh[c]
					}
					m1 /= n
					m2 /= n
					is := invStd[r]
					for c := range gy {
						d := gy[c] * gamma.Data[c]
						x.Grad[r*out.Cols+c] += is * (d - m1 - xh[c]*m2)
					}
				}
			}
		}
	}
	return out
}
