package invariant

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

// mkBlock seals a well-formed block at the given height carrying one
// committed SmallBank deposit of amount, chained onto prev (zero Hash for the
// genesis successor).
func mkBlock(height uint64, ts time.Duration, prev chain.Hash, amount int) *chain.Block {
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpDeposit,
		Args:     []string{fmt.Sprintf("acct%d", height), fmt.Sprintf("%d", amount)},
		Gas:      21000,
	}
	tx.ComputeID()
	blk := &chain.Block{
		Height:    height,
		Timestamp: ts,
		PrevHash:  prev,
		Txs:       []*chain.Transaction{tx},
	}
	blk.Seal()
	blk.Receipts = []*chain.Receipt{{TxID: tx.ID, Status: chain.StatusCommitted, Height: height}}
	return blk
}

func violationNames(vs []Violation) []string {
	var names []string
	for _, v := range vs {
		names = append(names, v.Invariant)
	}
	return names
}

func TestRecorderCleanChain(t *testing.T) {
	rec := NewRecorder(WithGasCap(1_000_000))
	var prev chain.Hash
	for h := uint64(1); h <= 5; h++ {
		blk := mkBlock(h, time.Duration(h)*time.Second, prev, 10)
		rec.OnBlock(0, blk)
		prev = blk.BlockHash
	}
	if vs := rec.Violations(); len(vs) != 0 {
		t.Fatalf("clean chain produced violations: %v", vs)
	}
	if rec.Blocks() != 5 || rec.Commits() != 5 {
		t.Fatalf("saw %d blocks, %d commits; want 5 and 5", rec.Blocks(), rec.Commits())
	}
	if rec.ExpectedTotal() != 50 {
		t.Fatalf("expected total %d, want 50 (5 deposits of 10)", rec.ExpectedTotal())
	}
}

func TestRecorderDigestIsOrderSensitive(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	blk1 := mkBlock(1, time.Second, chain.Hash{}, 10)
	blk2 := mkBlock(2, 2*time.Second, blk1.BlockHash, 20)
	a.OnBlock(0, blk1)
	a.OnBlock(0, blk2)
	b.OnBlock(0, blk2)
	b.OnBlock(0, blk1)
	if a.CommitDigest() == b.CommitDigest() {
		t.Fatal("digest did not change when the commit order changed")
	}

	c := NewRecorder()
	c.OnBlock(0, blk1)
	c.OnBlock(0, blk2)
	if a.CommitDigest() != c.CommitDigest() {
		t.Fatal("same commit sequence produced different digests")
	}
}

func TestRecorderFlagsDoubleCommit(t *testing.T) {
	rec := NewRecorder()
	blk1 := mkBlock(1, time.Second, chain.Hash{}, 10)
	// Same transaction committed again at height 2.
	blk2 := &chain.Block{
		Height:    2,
		Timestamp: 2 * time.Second,
		PrevHash:  blk1.BlockHash,
		Txs:       blk1.Txs,
	}
	blk2.Seal()
	blk2.Receipts = []*chain.Receipt{{TxID: blk1.Txs[0].ID, Status: chain.StatusCommitted, Height: 2}}
	rec.OnBlock(0, blk1)
	rec.OnBlock(0, blk2)
	names := violationNames(rec.Violations())
	if len(names) != 1 || names[0] != "no-double-commit" {
		t.Fatalf("want exactly one no-double-commit violation, got %v", names)
	}
	// The duplicate must not inflate the conservation expectation.
	if rec.ExpectedTotal() != 10 {
		t.Fatalf("expected total %d, want 10 (double commit counted twice)", rec.ExpectedTotal())
	}
}

func TestRecorderFlagsStructuralBreaches(t *testing.T) {
	blk1 := mkBlock(1, time.Second, chain.Hash{}, 10)
	cases := []struct {
		name string
		blk  func() *chain.Block
		want string
	}{
		{"height gap", func() *chain.Block {
			return mkBlock(3, 2*time.Second, blk1.BlockHash, 10)
		}, "height-contiguity"},
		{"clock went backwards", func() *chain.Block {
			return mkBlock(2, time.Second/2, blk1.BlockHash, 10)
		}, "monotone-timestamp"},
		{"broken hash chain", func() *chain.Block {
			return mkBlock(2, 2*time.Second, chain.Hash{0xde, 0xad}, 10)
		}, "hash-chain"},
		{"tampered seal", func() *chain.Block {
			blk := mkBlock(2, 2*time.Second, blk1.BlockHash, 10)
			blk.TxRoot[0] ^= 0xff
			return blk
		}, "seal"},
		{"missing receipt", func() *chain.Block {
			blk := mkBlock(2, 2*time.Second, blk1.BlockHash, 10)
			blk.Receipts = nil
			return blk
		}, "receipt-alignment"},
		{"misattributed receipt", func() *chain.Block {
			blk := mkBlock(2, 2*time.Second, blk1.BlockHash, 10)
			blk.Receipts[0].TxID = chain.TxID{0x01}
			return blk
		}, "receipt-alignment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := NewRecorder()
			rec.OnBlock(0, blk1)
			rec.OnBlock(0, tc.blk())
			names := violationNames(rec.Violations())
			found := false
			for _, n := range names {
				if n == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a %s violation, got %v", tc.want, names)
			}
		})
	}
}

func TestRecorderFlagsGasCapBreach(t *testing.T) {
	rec := NewRecorder(WithGasCap(20000))
	rec.OnBlock(0, mkBlock(1, time.Second, chain.Hash{}, 10)) // tx.Gas = 21000
	names := violationNames(rec.Violations())
	if len(names) != 1 || names[0] != "gas-cap" {
		t.Fatalf("want exactly one gas-cap violation, got %v", names)
	}
}

func TestRecorderTracksShardsIndependently(t *testing.T) {
	rec := NewRecorder()
	// Each shard has its own height 1 and hash chain; neither may be
	// mistaken for the other's successor.
	b0 := mkBlock(1, time.Second, chain.Hash{}, 10)
	b1 := mkBlock(1, time.Second, chain.Hash{}, 20)
	rec.OnBlock(0, b0)
	rec.OnBlock(1, b1)
	rec.OnBlock(0, mkBlock(2, 2*time.Second, b0.BlockHash, 10))
	rec.OnBlock(1, mkBlock(2, 2*time.Second, b1.BlockHash, 20))
	if vs := rec.Violations(); len(vs) != 0 {
		t.Fatalf("independent shards produced violations: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: "seal", Shard: 2, Height: 7, Detail: "mismatch"}
	if s := v.String(); !strings.Contains(s, "seal") || !strings.Contains(s, "shard 2") {
		t.Fatalf("unhelpful violation string: %q", s)
	}
}
