package invariant

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/parallel"
)

func TestDiffSchedulersAgreeAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		if err := DiffSchedulers(DefaultProgram(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDiffSchedulersAgreeOnEdgeShapedPrograms(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Program)
	}{
		{"no jitter", func(p *Program) { p.JitterFrac = 0 }},
		{"tiny batches", func(p *Program) { p.CutSize = 1 }},
		{"timeout-dominated", func(p *Program) { p.CutSize = 10_000; p.BatchTimeout = 7 * time.Millisecond }},
		{"instant exec", func(p *Program) { p.ExecCost = 0 }},
		{"poll storm", func(p *Program) { p.PollEvery = time.Millisecond }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultProgram(3)
			p.Duration = 500 * time.Millisecond
			tc.mod(&p)
			if err := DiffSchedulers(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDiffSchedulersAcrossShardAndKeyCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, keys := range []int{1, 3, 8} {
			p := DefaultProgram(9)
			p.Duration = 500 * time.Millisecond
			p.Shards = shards
			p.Keys = keys
			if err := DiffSchedulers(p); err != nil {
				t.Fatalf("shards=%d keys=%d: %v", shards, keys, err)
			}
		}
	}
}

func TestDiffSchedulersWorkerIndependence(t *testing.T) {
	defer parallel.SetWorkers(parallel.Workers())
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		parallel.SetWorkers(workers)
		if err := DiffSchedulers(DefaultProgram(21)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestRunProgramProducesCommitsAndPolls(t *testing.T) {
	p := DefaultProgram(5)
	log := runProgram(schedInterfaceBackend{s: eventsim.New()}, p)
	var commits, polls int
	for _, line := range log {
		switch {
		case strings.HasPrefix(line, "commit"):
			commits++
		case strings.HasPrefix(line, "poll"):
			polls++
		}
	}
	if commits == 0 || polls == 0 {
		t.Fatalf("program exercised nothing: %d commits, %d polls over %d events", commits, polls, len(log))
	}
	if !strings.HasPrefix(log[len(log)-1], "end ") {
		t.Fatalf("log should end with the summary line, got %q", log[len(log)-1])
	}
}

func TestRunProgramIsDeterministicPerBackend(t *testing.T) {
	p := DefaultProgram(11)
	a := runProgram(schedInterfaceBackend{s: eventsim.New()}, p)
	b := runProgram(schedInterfaceBackend{s: eventsim.New()}, p)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}
