package invariant

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"time"

	"hammer/internal/chain"
)

// Violation is one observed breach of a ledger invariant.
type Violation struct {
	// Invariant names the violated property (e.g. "no-double-commit").
	Invariant string
	Shard     int
	Height    uint64
	// Detail is a human-readable description of the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: shard %d height %d: %s", v.Invariant, v.Shard, v.Height, v.Detail)
}

// Recorder enforces the structural ledger invariants on every sealed block.
// It is installed through basechain's ObserveBlocks hook and runs on the
// scheduler goroutine in commit order, so its running commit digest is a
// deterministic fingerprint of the chain's entire commit sequence — equal
// digests mean bitwise-identical schedules, the basis for the determinism
// and worker-independence suites.
//
// Invariants checked per block:
//   - height-contiguity: heights increase by exactly one per shard
//   - monotone-timestamp: block timestamps never decrease per shard
//   - hash-chain: PrevHash equals the previous block's hash
//   - seal: TxRoot and BlockHash match a recomputation over the contents
//   - receipt-alignment: receipts pair 1:1 and in order with transactions
//   - no-double-commit: a transaction ID gains at most one committed receipt
//   - gas-cap: a block's summed gas stays within the configured cap
//
// The recorder also accumulates the SmallBank conservation expectation (see
// conserve.go) from every committed operation it observes.
type Recorder struct {
	mu       sync.Mutex
	gasCap   uint64
	shards   map[int]*shardCursor
	commits  map[chain.TxID]struct{}
	breaches []Violation
	digest   hash.Hash
	expected int64
	blocks   int
	nCommits int
}

type shardCursor struct {
	height uint64
	ts     time.Duration
	hash   chain.Hash
}

// Option customises a Recorder.
type Option func(*Recorder)

// WithGasCap enables the gas-cap invariant with the given per-block limit.
func WithGasCap(cap uint64) Option {
	return func(r *Recorder) { r.gasCap = cap }
}

// NewRecorder builds an empty recorder.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{
		shards:  make(map[int]*shardCursor),
		commits: make(map[chain.TxID]struct{}),
		digest:  sha256.New(),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// OnBlock checks blk against the invariant catalogue and folds it into the
// commit digest. It has the signature basechain.Base.ObserveBlocks expects.
func (r *Recorder) OnBlock(shard int, blk *chain.Block) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.blocks++

	cur, ok := r.shards[shard]
	if !ok {
		cur = &shardCursor{}
		r.shards[shard] = cur
	}
	if blk.Height != cur.height+1 {
		r.violate("height-contiguity", shard, blk.Height,
			fmt.Sprintf("height %d follows %d", blk.Height, cur.height))
	}
	if blk.Timestamp < cur.ts {
		r.violate("monotone-timestamp", shard, blk.Height,
			fmt.Sprintf("timestamp %v before previous block's %v", blk.Timestamp, cur.ts))
	}
	if cur.height > 0 && blk.PrevHash != cur.hash {
		r.violate("hash-chain", shard, blk.Height,
			fmt.Sprintf("prev hash %s, previous block sealed as %s", blk.PrevHash, cur.hash))
	}
	reseal := chain.Block{
		Shard:     blk.Shard,
		Height:    blk.Height,
		Timestamp: blk.Timestamp,
		PrevHash:  blk.PrevHash,
		Txs:       blk.Txs,
		Proposer:  blk.Proposer,
	}
	reseal.Seal()
	if reseal.TxRoot != blk.TxRoot || reseal.BlockHash != blk.BlockHash {
		r.violate("seal", shard, blk.Height, "TxRoot or BlockHash does not match recomputation")
	}
	cur.height = blk.Height
	cur.ts = blk.Timestamp
	cur.hash = blk.BlockHash

	if len(blk.Receipts) != len(blk.Txs) {
		r.violate("receipt-alignment", shard, blk.Height,
			fmt.Sprintf("%d receipts for %d transactions", len(blk.Receipts), len(blk.Txs)))
	}

	var gas uint64
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(shard)<<32|blk.Height)
	r.digest.Write(hdr[:])
	for i, tx := range blk.Txs {
		gas += tx.Gas
		if i >= len(blk.Receipts) {
			break
		}
		rc := blk.Receipts[i]
		if rc.TxID != tx.ID {
			r.violate("receipt-alignment", shard, blk.Height,
				fmt.Sprintf("receipt %d is for %s, transaction is %s", i, rc.TxID.Short(), tx.ID.Short()))
			continue
		}
		r.digest.Write(rc.TxID[:])
		r.digest.Write([]byte{byte(rc.Status)})
		if rc.Status != chain.StatusCommitted {
			continue
		}
		if _, dup := r.commits[rc.TxID]; dup {
			r.violate("no-double-commit", shard, blk.Height,
				fmt.Sprintf("transaction %s committed twice", rc.TxID.Short()))
			continue
		}
		r.commits[rc.TxID] = struct{}{}
		r.nCommits++
		r.expected += SmallBankDelta(tx)
	}
	if r.gasCap > 0 && gas > r.gasCap {
		r.violate("gas-cap", shard, blk.Height,
			fmt.Sprintf("block uses %d gas, cap is %d", gas, r.gasCap))
	}
}

func (r *Recorder) violate(name string, shard int, height uint64, detail string) {
	// Cap retained violations: one broken invariant in a long run would
	// otherwise accumulate millions of identical entries.
	if len(r.breaches) < 1000 {
		r.breaches = append(r.breaches, Violation{Invariant: name, Shard: shard, Height: height, Detail: detail})
	}
}

// Violations returns the breaches observed so far (capped at 1000).
func (r *Recorder) Violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Violation, len(r.breaches))
	copy(out, r.breaches)
	return out
}

// CommitDigest fingerprints the commit sequence observed so far: every
// (shard, height, txID, status) in commit order. Two runs with equal digests
// produced bitwise-identical schedules.
func (r *Recorder) CommitDigest() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return hex.EncodeToString(r.digest.Sum(nil))
}

// ExpectedTotal is the SmallBank balance total implied by the committed
// operations observed (see conserve.go).
func (r *Recorder) ExpectedTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expected
}

// Blocks and Commits report how much ledger the recorder has seen — useful
// for asserting a suite actually exercised the chain.
func (r *Recorder) Blocks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.blocks
}

// Commits reports the number of distinct committed transactions observed.
func (r *Recorder) Commits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nCommits
}
