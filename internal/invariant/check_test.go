package invariant

import (
	"fmt"
	"reflect"
	"testing"

	"hammer/internal/randx"
)

// ledgerOp is a miniature banking operation for the engine's own acceptance
// test: a ledger with a deliberately injected conservation bug that Check
// must find, shrink to a minimal input, and replay from the printed seed.
type ledgerOp struct {
	Kind   string // "mint", "burn", "move"
	A, B   int
	Amount int64
}

// buggyApply executes ops over a 4-account ledger and returns the final
// total. The injected bug: a move of more than 50 units loses one unit in
// transit (the classic off-by-one a conservation invariant exists to catch).
func buggyApply(ops []ledgerOp) (total int64, expected int64) {
	var bal [4]int64
	for _, op := range ops {
		switch op.Kind {
		case "mint":
			bal[op.A] += op.Amount
			expected += op.Amount
		case "burn":
			bal[op.A] -= op.Amount
			expected -= op.Amount
		case "move":
			bal[op.A] -= op.Amount
			credited := op.Amount
			if op.Amount > 50 {
				credited-- // the injected conservation bug
			}
			bal[op.B] += credited
		}
	}
	for _, b := range bal {
		total += b
	}
	return total, expected
}

func genOps(rng *randx.Rand) []ledgerOp {
	n := 1 + rng.Intn(40)
	ops := make([]ledgerOp, n)
	kinds := []string{"mint", "burn", "move"}
	for i := range ops {
		ops[i] = ledgerOp{
			Kind:   kinds[rng.Intn(len(kinds))],
			A:      rng.Intn(4),
			B:      rng.Intn(4),
			Amount: int64(rng.Intn(200)),
		}
	}
	return ops
}

func shrinkOps(ops []ledgerOp) [][]ledgerOp {
	return ShrinkSlice(ops, func(op ledgerOp) []ledgerOp {
		var out []ledgerOp
		for _, a := range ShrinkInt(int(op.Amount)) {
			smaller := op
			smaller.Amount = int64(a)
			out = append(out, smaller)
		}
		return out
	})
}

func conserved(ops []ledgerOp) error {
	total, expected := buggyApply(ops)
	if total != expected {
		return fmt.Errorf("total %d, committed operations imply %d", total, expected)
	}
	return nil
}

// TestCheckShrinksInjectedConservationBug is the engine's acceptance
// criterion: the randomized check finds the injected bug, shrinks the
// failing operation list to the minimal reproducer (one move of exactly 51
// units), and the printed (seed, run) coordinates regenerate the original
// failing input exactly.
func TestCheckShrinksInjectedConservationBug(t *testing.T) {
	cfg := Config{Runs: 200, Seed: 7}
	f := Check(cfg, genOps, shrinkOps, conserved)
	if f == nil {
		t.Fatal("Check did not find the injected conservation bug")
	}
	t.Logf("failure: %v", f)
	t.Logf("minimal input: %+v", f.Minimal)
	if len(f.Minimal) != 1 {
		t.Fatalf("shrinking stopped at %d operations, want 1: %+v", len(f.Minimal), f.Minimal)
	}
	op := f.Minimal[0]
	if op.Kind != "move" || op.Amount != 51 {
		t.Fatalf("minimal failing input should be a move of 51 units, got %+v", op)
	}
	if f.Shrinks == 0 {
		t.Fatal("expected at least one successful shrink step")
	}

	// The replay contract: the coordinates in the error message regenerate
	// the failing input bit-for-bit.
	replayed := Replay(f.Seed, f.Run, genOps)
	if !reflect.DeepEqual(replayed, f.Input) {
		t.Fatalf("Replay(seed=%d, run=%d) did not regenerate the failing input", f.Seed, f.Run)
	}
	if err := conserved(replayed); err == nil {
		t.Fatal("replayed input no longer fails the property")
	}
}

func TestCheckPassesCleanProperty(t *testing.T) {
	cfg := Config{Runs: 100, Seed: 3}
	f := Check(cfg, genOps, shrinkOps, func(ops []ledgerOp) error {
		// Same ledger without the bug: strip the lossy branch by capping
		// amounts at 50 before applying.
		capped := append([]ledgerOp(nil), ops...)
		for i := range capped {
			if capped[i].Amount > 50 {
				capped[i].Amount = 50
			}
		}
		return conserved(capped)
	})
	if f != nil {
		t.Fatalf("clean property reported a failure: %v", f)
	}
}

func TestCheckIsDeterministic(t *testing.T) {
	cfg := Config{Runs: 200, Seed: 7}
	a := Check(cfg, genOps, shrinkOps, conserved)
	b := Check(cfg, genOps, shrinkOps, conserved)
	if a == nil || b == nil {
		t.Fatal("expected both checks to fail")
	}
	if a.Run != b.Run || !reflect.DeepEqual(a.Minimal, b.Minimal) {
		t.Fatalf("same seed produced different failures: run %d vs %d", a.Run, b.Run)
	}
}

func TestShrinkSliceProposesSmallerVariants(t *testing.T) {
	cands := ShrinkSlice([]int{1, 2, 3, 4}, func(n int) []int { return ShrinkInt(n) })
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if len(c) > 4 {
			t.Fatalf("candidate grew: %v", c)
		}
	}
	if got := ShrinkSlice([]int{}, nil); got != nil {
		t.Fatalf("empty slice should not shrink, got %v", got)
	}
}
