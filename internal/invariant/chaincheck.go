package invariant

import (
	"hammer/internal/chain"
)

// BlockObserver is the observation hook basechain exposes; every simulated
// chain inherits it.
type BlockObserver interface {
	ObserveBlocks(fn func(shard int, blk *chain.Block))
}

// Optional capability interfaces the simulated chains expose for end-of-run
// checks. A chain that exposes none of them still gets the streaming block
// invariants; it just skips conservation.
type (
	gasCapped   interface{ GasCap() uint64 }
	singleState interface{ State() *chain.State }
	shardStates interface {
		ShardState(shard int) (*chain.State, error)
		Shards() int
	}
	inTransit interface{ OutstandingCrossDebits() int64 }
)

// Attach installs a fresh Recorder on bc's block stream. It reports false
// when the chain does not expose the observation hook (e.g. an external SUT
// reached over RPC). Chains with a block gas cap get the gas invariant.
func Attach(bc chain.Blockchain) (*Recorder, bool) {
	obs, ok := bc.(BlockObserver)
	if !ok {
		return nil, false
	}
	var opts []Option
	if g, ok := bc.(gasCapped); ok {
		opts = append(opts, WithGasCap(g.GasCap()))
	}
	rec := NewRecorder(opts...)
	obs.ObserveBlocks(rec.OnBlock)
	return rec, true
}

// FinalChecks runs the end-of-run invariants — currently conservation —
// against whatever world state the chain exposes, and returns them as
// violations alongside the recorder's streaming findings.
func FinalChecks(bc chain.Blockchain, rec *Recorder) []Violation {
	var states []*chain.State
	switch c := bc.(type) {
	case singleState:
		states = append(states, c.State())
	case shardStates:
		for sh := 0; sh < c.Shards(); sh++ {
			st, err := c.ShardState(sh)
			if err != nil {
				return []Violation{{Invariant: "conservation", Shard: sh, Detail: err.Error()}}
			}
			states = append(states, st)
		}
	default:
		return nil // no state access; streaming invariants only
	}
	var transit int64
	if t, ok := bc.(inTransit); ok {
		transit = t.OutstandingCrossDebits()
	}
	if err := CheckConservation(rec, transit, states...); err != nil {
		return []Violation{{Invariant: "conservation", Detail: err.Error()}}
	}
	return nil
}
