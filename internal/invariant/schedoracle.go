package invariant

import (
	"fmt"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/eventsim/heapsched"
	"hammer/internal/randx"
)

// Program parameterises the differential replay oracle's synthetic workload:
// a chain-shaped event program (jittered injection, count/timeout batch
// cutting, costed execution, periodic polling) interpreted identically
// against the timer-wheel scheduler and the preserved binary-heap reference.
// Any divergence in firing order, clock reads or Stop semantics between the
// two backends shows up as a mismatched event log.
type Program struct {
	// Seed drives the jitter stream (same draws on both backends).
	Seed int64
	// Duration is the virtual time the program runs for.
	Duration time.Duration
	// InjectEvery is the mean gap between injected transactions; JitterFrac
	// spreads it (0 disables jitter).
	InjectEvery time.Duration
	JitterFrac  float64
	// CutSize cuts a batch on count; BatchTimeout cuts a partial batch.
	CutSize      int
	BatchTimeout time.Duration
	// ExecCost delays each cut batch's commit.
	ExecCost time.Duration
	// PollEvery is the observer ticker interval.
	PollEvery time.Duration
	// Keys is the number of distinct shard keys the program spreads its
	// timers across (0 behaves as 1). Keys route timers to wheels on the
	// sharded backend and are ignored by the others, so any value must
	// leave the event log unchanged.
	Keys int
	// Shards is the wheel count for the sharded backend (0 picks 4).
	Shards int
}

// DefaultProgram returns a program shaped like the quick experiments: ~1k
// transactions through count- and timeout-cut batches with an observing
// poller.
func DefaultProgram(seed int64) Program {
	return Program{
		Seed:         seed,
		Duration:     2 * time.Second,
		InjectEvery:  2 * time.Millisecond,
		JitterFrac:   0.5,
		CutSize:      37,
		BatchTimeout: 45 * time.Millisecond,
		ExecCost:     11 * time.Millisecond,
		PollEvery:    100 * time.Millisecond,
		Keys:         5,
		Shards:       4,
	}
}

// schedBackend is the least common denominator of the scheduler
// implementations the oracle drives. afterKey carries a shard key: the
// wheel and heap backends ignore it, the sharded backend routes by it, and
// the logs must match regardless.
type schedBackend interface {
	now() time.Duration
	after(d time.Duration, fn func()) (stop func() bool)
	afterKey(key uint64, d time.Duration, fn func()) (stop func() bool)
	every(d time.Duration, fn func()) (stop func())
	runUntil(t time.Duration)
}

// schedInterfaceBackend adapts anything implementing eventsim.Sched — the
// timer wheel and the sharded engine alike.
type schedInterfaceBackend struct{ s eventsim.Sched }

func (w schedInterfaceBackend) now() time.Duration { return w.s.Now() }
func (w schedInterfaceBackend) after(d time.Duration, fn func()) func() bool {
	t := w.s.After(d, fn)
	return t.Stop
}
func (w schedInterfaceBackend) afterKey(key uint64, d time.Duration, fn func()) func() bool {
	t := w.s.AfterKey(key, d, fn)
	return t.Stop
}
func (w schedInterfaceBackend) every(d time.Duration, fn func()) func() {
	t := w.s.Every(d, fn)
	return t.Stop
}
func (w schedInterfaceBackend) runUntil(t time.Duration) { w.s.RunUntil(t) }

type heapBackend struct{ s *heapsched.Scheduler }

func (h heapBackend) now() time.Duration { return h.s.Now() }
func (h heapBackend) after(d time.Duration, fn func()) func() bool {
	t := h.s.After(d, fn)
	return t.Stop
}
func (h heapBackend) afterKey(_ uint64, d time.Duration, fn func()) func() bool {
	return h.after(d, fn)
}
func (h heapBackend) every(d time.Duration, fn func()) func() {
	t := h.s.Every(d, fn)
	return t.Stop
}
func (h heapBackend) runUntil(t time.Duration) { h.s.RunUntil(t) }

// runProgram interprets the program against one backend and returns its
// event log: one line per commit and per poll observation, carrying the
// virtual timestamps and contents a divergent scheduler would get wrong.
func runProgram(b schedBackend, p Program) []string {
	rng := randx.New(p.Seed)
	keys := p.Keys
	if keys < 1 {
		keys = 1
	}
	// Rotate arms across the key space deterministically so every backend
	// draws the same key sequence; only the sharded backend acts on it.
	var keyCtr uint64
	nextKey := func() uint64 {
		keyCtr++
		return keyCtr % uint64(keys)
	}
	var (
		log        []string
		queue      []int
		nextTx     int
		height     int
		cancelCut  func() bool
		cutPending bool
	)
	commit := func(batch []int) {
		height++
		first, last := -1, -1
		if len(batch) > 0 {
			first, last = batch[0], batch[len(batch)-1]
		}
		log = append(log, fmt.Sprintf("commit h=%d t=%v n=%d first=%d last=%d",
			height, b.now(), len(batch), first, last))
	}
	cut := func() {
		if cutPending && cancelCut != nil {
			cancelCut()
		}
		cutPending = false
		if len(queue) == 0 {
			return
		}
		batch := queue
		queue = nil
		b.afterKey(nextKey(), rng.Jitter(p.ExecCost, p.JitterFrac), func() { commit(batch) })
	}
	var inject func()
	inject = func() {
		queue = append(queue, nextTx)
		nextTx++
		if len(queue) >= p.CutSize {
			cut()
		} else if !cutPending {
			cutPending = true
			cancelCut = b.afterKey(nextKey(), p.BatchTimeout, func() {
				cutPending = false
				cut()
			})
		}
		if b.now() < p.Duration-p.BatchTimeout {
			b.afterKey(nextKey(), rng.Jitter(p.InjectEvery, p.JitterFrac), inject)
		}
	}
	stopPoll := b.every(p.PollEvery, func() {
		log = append(log, fmt.Sprintf("poll t=%v height=%d queued=%d", b.now(), height, len(queue)))
	})
	b.after(0, inject)
	b.runUntil(p.Duration)
	stopPoll()
	log = append(log, fmt.Sprintf("end t=%v injected=%d height=%d queued=%d", b.now(), nextTx, height, len(queue)))
	return log
}

// DiffSchedulers runs the program on all three scheduler backends — timer
// wheel, binary-heap reference, and the sharded epoch-merge engine — and
// returns an error describing the first divergence between their event logs,
// or nil when all three logs are byte-identical.
func DiffSchedulers(p Program) error {
	shards := p.Shards
	if shards < 1 {
		shards = 4
	}
	wheel := runProgram(schedInterfaceBackend{s: eventsim.New()}, p)
	ref := runProgram(heapBackend{s: heapsched.New()}, p)
	sharded := runProgram(schedInterfaceBackend{s: eventsim.NewSharded(shards)}, p)
	if err := diffLogs("wheel", wheel, "heap", ref); err != nil {
		return err
	}
	return diffLogs("wheel", wheel, "sharded", sharded)
}

// diffLogs reports the first line-level divergence between two event logs.
func diffLogs(aName string, a []string, bName string, b []string) error {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Errorf("invariant: scheduler divergence at event %d:\n  %s: %s\n  %s: %s", i, aName, a[i], bName, b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Errorf("invariant: scheduler divergence: %s logged %d events, %s %d", aName, len(a), bName, len(b))
	}
	return nil
}
