package invariant_test

import (
	"fmt"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/ethereum"
	"hammer/internal/eventsim"
	"hammer/internal/invariant"
	"hammer/internal/smallbank"
)

func sbTx(nonce uint64, op string, args ...string) *chain.Transaction {
	tx := &chain.Transaction{
		ClientID: "c0",
		ServerID: "s0",
		Chain:    "ethereum",
		Contract: smallbank.ContractName,
		Op:       op,
		Args:     args,
		From:     "tester",
		Nonce:    nonce,
		Gas:      smallbank.Contract{}.Gas(op),
	}
	tx.ComputeID()
	return tx
}

// runSmallBankWorkload drives a short mixed workload through a fresh
// ethereum simulator with the invariant recorder attached, and returns both.
func runSmallBankWorkload(t *testing.T, seed int64) (*ethereum.Chain, *invariant.Recorder) {
	t.Helper()
	sched := eventsim.New()
	c := ethereum.New(sched, ethereum.Config{
		Nodes:         2,
		BlockInterval: 200 * time.Millisecond,
		Seed:          seed,
	})
	if err := c.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	rec, ok := invariant.Attach(c)
	if !ok {
		t.Fatal("ethereum chain does not expose the observation hook")
	}
	c.Start()

	nonce := uint64(0)
	submit := func(op string, args ...string) {
		tx := sbTx(nonce, op, args...)
		nonce++
		if _, err := c.Submit(tx); err != nil {
			t.Fatalf("submit %s: %v", op, err)
		}
	}
	for i := 0; i < 8; i++ {
		submit(smallbank.OpCreate, smallbank.AccountName(i), "1000", "500")
	}
	sched.RunUntil(2 * time.Second)
	for i := 0; i < 8; i++ {
		submit(smallbank.OpTransfer, smallbank.AccountName(i), smallbank.AccountName((i+1)%8), fmt.Sprintf("%d", 10+i))
		submit(smallbank.OpDeposit, smallbank.AccountName(i), "7")
		if i%2 == 0 {
			submit(smallbank.OpWithdraw, smallbank.AccountName(i), "3")
		}
	}
	sched.RunUntil(6 * time.Second)
	c.Stop()
	return c, rec
}

// TestEthereumWorkloadSatisfiesInvariants runs the full catalogue against a
// real simulator: streaming checks stay clean, conservation holds, and the
// committed schedule replays serially onto the exact live state.
func TestEthereumWorkloadSatisfiesInvariants(t *testing.T) {
	c, rec := runSmallBankWorkload(t, 1)
	if vs := rec.Violations(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if rec.Commits() == 0 {
		t.Fatal("workload committed nothing; the test exercised no invariants")
	}
	if vs := invariant.FinalChecks(c, rec); len(vs) != 0 {
		t.Fatalf("final checks failed: %v", vs)
	}

	replayed, err := invariant.ReplaySerial(c, 0, smallbank.Contract{})
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.DiffStates(replayed, c.State()); err != nil {
		t.Fatal(err)
	}
	if invariant.StateDigest(replayed) != invariant.StateDigest(c.State()) {
		t.Fatal("state digests differ after serial replay")
	}
}

// TestEthereumSameSeedRunsAreBitwiseIdentical is the determinism invariant:
// two runs from the same seed must produce identical commit sequences and
// identical world state.
func TestEthereumSameSeedRunsAreBitwiseIdentical(t *testing.T) {
	c1, rec1 := runSmallBankWorkload(t, 9)
	c2, rec2 := runSmallBankWorkload(t, 9)
	if rec1.CommitDigest() != rec2.CommitDigest() {
		t.Fatal("same seed produced different commit digests")
	}
	if invariant.StateDigest(c1.State()) != invariant.StateDigest(c2.State()) {
		t.Fatal("same seed produced different world state")
	}

	c3, rec3 := runSmallBankWorkload(t, 10)
	_ = c3
	if rec1.CommitDigest() == rec3.CommitDigest() {
		t.Fatal("different seeds produced identical commit digests — digest is insensitive")
	}
}

// TestAttachDeclinesOpaqueChains: a Blockchain without the observation hook
// is reported, not silently ignored.
func TestAttachDeclinesOpaqueChains(t *testing.T) {
	if rec, ok := invariant.Attach(opaqueChain{}); ok || rec != nil {
		t.Fatal("Attach accepted a chain with no observation hook")
	}
	if vs := invariant.FinalChecks(opaqueChain{}, invariant.NewRecorder()); vs != nil {
		t.Fatalf("FinalChecks on a stateless chain should be a no-op, got %v", vs)
	}
}

type opaqueChain struct{}

func (opaqueChain) Name() string                                  { return "opaque" }
func (opaqueChain) Deploy(chain.Contract) error                   { return nil }
func (opaqueChain) Submit(*chain.Transaction) (chain.TxID, error) { return chain.TxID{}, nil }
func (opaqueChain) Shards() int                                   { return 1 }
func (opaqueChain) Height(int) uint64                             { return 0 }
func (opaqueChain) BlockAt(int, uint64) (*chain.Block, bool)      { return nil, false }
func (opaqueChain) PendingTxs() int                               { return 0 }
func (opaqueChain) Start()                                        {}
func (opaqueChain) Stop()                                         {}
