package invariant

import (
	"fmt"
	"strconv"
	"strings"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

// SmallBankDelta is the change a committed SmallBank operation makes to the
// total value in the ledger. Deposits mint, withdrawals burn, creations seed
// both accounts; transfers and amalgamations move value without changing the
// total. Non-SmallBank transactions and malformed arguments (which abort at
// execution and therefore never commit) contribute zero.
func SmallBankDelta(tx *chain.Transaction) int64 {
	if tx.Contract != smallbank.ContractName {
		return 0
	}
	arg := func(i int) int64 {
		if i >= len(tx.Args) {
			return 0
		}
		v, err := strconv.ParseInt(tx.Args[i], 10, 64)
		if err != nil {
			return 0
		}
		return v
	}
	switch tx.Op {
	case smallbank.OpCreate:
		return arg(1) + arg(2)
	case smallbank.OpDeposit:
		return arg(1)
	case smallbank.OpWithdraw:
		return -arg(1)
	default: // transfer, amalgamate, query conserve
		return 0
	}
}

// LedgerTotal sums every SmallBank account balance (checking "c:" and
// savings "s:" keys) across the given states.
func LedgerTotal(states ...*chain.State) (int64, error) {
	var total int64
	for _, st := range states {
		for _, key := range st.Keys() {
			if !strings.HasPrefix(key, "c:") && !strings.HasPrefix(key, "s:") {
				continue
			}
			raw, _, ok := st.Get(key)
			if !ok {
				continue
			}
			v, err := strconv.ParseInt(string(raw), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("invariant: corrupt balance at %q: %w", key, err)
			}
			total += v
		}
	}
	return total, nil
}

// CheckConservation asserts that the value sitting in the world state, plus
// any value in transit between shards, equals the total implied by the
// committed operation sequence the recorder observed. inTransit is zero for
// single-state chains; sharded chains report debited-but-not-yet-credited
// cross-shard value (meepo's OutstandingCrossDebits).
func CheckConservation(rec *Recorder, inTransit int64, states ...*chain.State) error {
	actual, err := LedgerTotal(states...)
	if err != nil {
		return err
	}
	expected := rec.ExpectedTotal()
	if actual+inTransit != expected {
		return fmt.Errorf("invariant: conservation violated: state holds %d (+%d in transit), committed operations imply %d (diff %d)",
			actual, inTransit, expected, actual+inTransit-expected)
	}
	return nil
}
