package invariant

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"hammer/internal/chain"
)

// ReplaySerial re-executes a shard's committed schedule — every transaction
// with a committed receipt, in block order — against a fresh state. For
// order-execute chains (ethereum, neuchain) the replay must reproduce the
// live state exactly; for Fabric it is the serializability oracle: MVCC
// validation promises the surviving schedule is equivalent to this serial
// execution, so a divergence means the validator admitted a non-serializable
// history. A committed transaction that fails to re-execute is reported as an
// error for the same reason.
func ReplaySerial(bc chain.Blockchain, shard int, ct chain.Contract) (*chain.State, error) {
	state := chain.NewState()
	for h := uint64(1); h <= bc.Height(shard); h++ {
		blk, ok := bc.BlockAt(shard, h)
		if !ok {
			return nil, fmt.Errorf("invariant: replay: shard %d block %d missing", shard, h)
		}
		for i, tx := range blk.Txs {
			if i >= len(blk.Receipts) || blk.Receipts[i].Status != chain.StatusCommitted {
				continue
			}
			ex := chain.NewExecutor(state)
			if err := ct.Invoke(ex, tx.Op, tx.Args); err != nil {
				return nil, fmt.Errorf("invariant: replay: committed transaction %s (shard %d height %d) does not re-execute: %w",
					tx.ID.Short(), shard, h, err)
			}
			ex.RWSet().Apply(state, h)
		}
	}
	return state, nil
}

// DiffStates compares two states by key set and value (versions are
// bookkeeping and intentionally ignored). It returns nil when equal, or an
// error naming the first divergent key.
func DiffStates(got, want *chain.State) error {
	gotKeys, wantKeys := got.Keys(), want.Keys()
	seen := make(map[string]struct{}, len(wantKeys))
	for _, k := range wantKeys {
		seen[k] = struct{}{}
		gv, _, gok := got.Get(k)
		wv, _, _ := want.Get(k)
		if !gok {
			return fmt.Errorf("invariant: state diff: key %q missing", k)
		}
		if !bytes.Equal(gv, wv) {
			return fmt.Errorf("invariant: state diff: key %q is %q, want %q", k, gv, wv)
		}
	}
	for _, k := range gotKeys {
		if _, ok := seen[k]; !ok {
			return fmt.Errorf("invariant: state diff: unexpected key %q", k)
		}
	}
	return nil
}

// StateDigest fingerprints one or more states: sorted key/value pairs hashed
// in order, versions excluded. Equal digests mean value-identical states —
// the second half of the bitwise-determinism check (equal commit digest plus
// equal state digest).
func StateDigest(states ...*chain.State) string {
	h := sha256.New()
	var n [4]byte
	for _, st := range states {
		for _, k := range st.Keys() {
			v, _, _ := st.Get(k)
			binary.BigEndian.PutUint32(n[:], uint32(len(k)))
			h.Write(n[:])
			h.Write([]byte(k))
			binary.BigEndian.PutUint32(n[:], uint32(len(v)))
			h.Write(n[:])
			h.Write(v)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
