// Package invariant is the correctness subsystem for the simulated chains:
// a small randomized property-testing engine with shrinking (Check), a block
// observer that enforces structural ledger invariants as blocks seal
// (Recorder), SmallBank conservation accounting (conserve.go), a serial
// re-execution oracle for committed schedules (replay.go), and a differential
// oracle that replays the same seeded workload on the timer-wheel and
// binary-heap schedulers (schedoracle.go).
//
// Everything is stdlib-only and seed-deterministic: a failure prints the
// (seed, run) pair that regenerates its input exactly, so any violation found
// in CI replays locally with Replay.
package invariant

import (
	"fmt"

	"hammer/internal/randx"
)

// Config bounds one property check.
type Config struct {
	// Runs is how many generated inputs the property is evaluated on
	// (default 100).
	Runs int
	// Seed is the base seed; the input for run r is generated from the
	// deterministic derived seed RunSeed(Seed, r).
	Seed int64
	// MaxShrink caps property evaluations spent shrinking a failure
	// (default 2000).
	MaxShrink int
}

// Failure describes a failed property together with its replay coordinates
// and the minimal failing input shrinking reached.
type Failure[I any] struct {
	// Seed and Run replay the original input: Replay(Seed, Run, gen).
	Seed int64
	Run  int
	// Input is the generated input that first failed.
	Input I
	// Minimal is the smallest failing input the shrinker reached (equal to
	// Input when no shrink candidate still failed).
	Minimal I
	// Err is the property error for Minimal.
	Err error
	// Shrinks counts accepted shrink steps from Input to Minimal.
	Shrinks int
}

// Error formats the failure with the replay seed, which is the contract the
// "replay a failure" workflow in the README depends on.
func (f *Failure[I]) Error() string {
	return fmt.Sprintf("invariant: property failed (replay with seed=%d run=%d, %d shrinks): %v",
		f.Seed, f.Run, f.Shrinks, f.Err)
}

// RunSeed derives the generator seed for run r from the base seed, using a
// splitmix64 step so consecutive runs get well-separated streams.
func RunSeed(seed int64, run int) int64 {
	z := uint64(seed) + uint64(run+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Check evaluates prop on Runs inputs drawn from gen. On the first failure it
// shrinks: shrink proposes smaller variants of the current minimal input, and
// any variant that still fails becomes the new minimum, until no candidate
// fails or the shrink budget runs out. Check returns nil when every input
// passed. gen must be deterministic in the randx stream; shrink may be nil to
// disable shrinking.
func Check[I any](cfg Config, gen func(*randx.Rand) I, shrink func(I) []I, prop func(I) error) *Failure[I] {
	if cfg.Runs <= 0 {
		cfg.Runs = 100
	}
	if cfg.MaxShrink <= 0 {
		cfg.MaxShrink = 2000
	}
	for run := 0; run < cfg.Runs; run++ {
		input := gen(randx.New(RunSeed(cfg.Seed, run)))
		err := prop(input)
		if err == nil {
			continue
		}
		f := &Failure[I]{Seed: cfg.Seed, Run: run, Input: input, Minimal: input, Err: err}
		if shrink == nil {
			return f
		}
		budget := cfg.MaxShrink
		for improved := true; improved && budget > 0; {
			improved = false
			for _, cand := range shrink(f.Minimal) {
				if budget <= 0 {
					break
				}
				budget--
				if cerr := prop(cand); cerr != nil {
					f.Minimal, f.Err = cand, cerr
					f.Shrinks++
					improved = true
					break
				}
			}
		}
		return f
	}
	return nil
}

// Replay regenerates the exact input of a failed run from the coordinates a
// Failure printed.
func Replay[I any](seed int64, run int, gen func(*randx.Rand) I) I {
	return gen(randx.New(RunSeed(seed, run)))
}

// ShrinkSlice proposes smaller variants of xs: drop the first or second
// half, drop each single element, and (when elem is non-nil) shrink each
// element in place. Candidates are ordered most-aggressive first so shrinking
// converges in few property evaluations.
func ShrinkSlice[T any](xs []T, elem func(T) []T) [][]T {
	if len(xs) == 0 {
		return nil
	}
	var out [][]T
	if len(xs) > 1 {
		mid := len(xs) / 2
		out = append(out, append([]T(nil), xs[mid:]...)) // drop first half
		out = append(out, append([]T(nil), xs[:mid]...)) // drop second half
		for i := range xs {
			cand := make([]T, 0, len(xs)-1)
			cand = append(cand, xs[:i]...)
			cand = append(cand, xs[i+1:]...)
			out = append(out, cand)
		}
	}
	if elem != nil {
		for i, x := range xs {
			for _, smaller := range elem(x) {
				cand := append([]T(nil), xs...)
				cand[i] = smaller
				out = append(out, cand)
			}
		}
	}
	return out
}

// ShrinkInt proposes smaller non-negative variants of n, halving toward zero.
func ShrinkInt(n int) []int {
	if n <= 0 {
		return nil
	}
	out := []int{0}
	if n > 2 {
		out = append(out, n/2)
	}
	out = append(out, n-1)
	return out
}
