// Package models implements the five workload predictors compared in the
// paper's Table III: a linear (ridge) regressor, an Elman RNN, a TCN, a
// Transformer encoder, and Hammer's own TCN → BiGRU → multi-head-attention
// model (§IV). All neural models train full-batch with Adam on the MAE loss
// (eq. 8) over z-score-normalised hourly series.
package models

import (
	"fmt"
	"math"

	"hammer/internal/timeseries"
)

// Config hyper-parameterises a predictor.
type Config struct {
	// Lookback is the input window length in hours.
	Lookback int
	// Horizon is how many steps ahead the target lies (paper: 1).
	Horizon int
	// Hidden is the hidden width of neural models.
	Hidden int
	// Levels is the TCN block count.
	Levels int
	// KernelSize is the TCN tap count.
	KernelSize int
	// Heads is the attention head count.
	Heads int
	// Epochs bounds training; training also stops when the loss converges.
	Epochs int
	// LR is the Adam learning rate.
	LR float64
	// ClipNorm bounds the global gradient norm (0 disables clipping).
	ClipNorm float64
	// Ridge is the L2 regulariser of the linear model.
	Ridge float64
	// Seed fixes initialisation.
	Seed int64
}

// DefaultConfig is the configuration used for Table III.
func DefaultConfig() Config {
	return Config{
		Lookback:   24,
		Horizon:    1,
		Hidden:     16,
		Levels:     3,
		KernelSize: 3,
		Heads:      4,
		Epochs:     400,
		LR:         0.004,
		ClipNorm:   5,
		Ridge:      1e-3,
		Seed:       1,
	}
}

func (c *Config) fillDefaults() {
	def := DefaultConfig()
	if c.Lookback <= 0 {
		c.Lookback = def.Lookback
	}
	if c.Horizon <= 0 {
		c.Horizon = def.Horizon
	}
	if c.Hidden <= 0 {
		c.Hidden = def.Hidden
	}
	if c.Levels <= 0 {
		c.Levels = def.Levels
	}
	if c.KernelSize <= 0 {
		c.KernelSize = def.KernelSize
	}
	if c.Heads <= 0 {
		c.Heads = def.Heads
	}
	if c.Epochs <= 0 {
		c.Epochs = def.Epochs
	}
	if c.LR <= 0 {
		c.LR = def.LR
	}
	if c.ClipNorm < 0 {
		c.ClipNorm = def.ClipNorm
	}
	if c.Ridge <= 0 {
		c.Ridge = def.Ridge
	}
}

// Predictor is a trained one-step-ahead forecaster over raw (unnormalised)
// series values.
type Predictor interface {
	// Name labels the model in reports ("Linear", "RNN", ...).
	Name() string
	// Fit trains on the series (internally normalising).
	Fit(series []float64) error
	// Predict forecasts the value Horizon steps after the window, which
	// must be exactly Lookback long.
	Predict(window []float64) (float64, error)
	// Lookback reports the required window length.
	Lookback() int
}

// Metrics is one Table III row.
type Metrics struct {
	MAE  float64
	MSE  float64
	RMSE float64
	R2   float64
}

// String renders the row.
func (m Metrics) String() string {
	return fmt.Sprintf("MAE=%.3f MSE=%.3f RMSE=%.3f R2=%.4f", m.MAE, m.MSE, m.RMSE, m.R2)
}

// EvaluateNormalized scores like Evaluate but on the z-score scale of a
// scaler fit on the training region, which is how Table III's
// cross-dataset-comparable MAE/MSE/RMSE values arise (raw transaction
// counts differ by two orders of magnitude between DeFi and NFTs).
func EvaluateNormalized(p Predictor, series []float64, trainLen int) (Metrics, error) {
	scaler := timeseries.FitScaler(series[:trainLen])
	m, y, yhat, err := evaluate(p, series, trainLen)
	if err != nil {
		return m, err
	}
	ny := make([]float64, len(y))
	nyhat := make([]float64, len(yhat))
	for i := range y {
		ny[i] = (y[i] - scaler.Mean) / scaler.Std
		nyhat[i] = (yhat[i] - scaler.Mean) / scaler.Std
	}
	return Metrics{
		MAE:  timeseries.MAE(ny, nyhat),
		MSE:  timeseries.MSE(ny, nyhat),
		RMSE: timeseries.RMSE(ny, nyhat),
		R2:   timeseries.R2(ny, nyhat),
	}, nil
}

// Evaluate scores one-step-ahead predictions whose targets lie in
// series[trainLen:]. Windows may reach back into the training region, which
// matches standard rolling evaluation.
func Evaluate(p Predictor, series []float64, trainLen int) (Metrics, error) {
	m, _, _, err := evaluate(p, series, trainLen)
	return m, err
}

func evaluate(p Predictor, series []float64, trainLen int) (Metrics, []float64, []float64, error) {
	lb := p.Lookback()
	var y, yhat []float64
	for target := trainLen; target < len(series); target++ {
		start := target - lb // horizon 1: window ends right before target
		if start < 0 {
			continue
		}
		pred, err := p.Predict(series[start : start+lb])
		if err != nil {
			return Metrics{}, nil, nil, err
		}
		y = append(y, series[target])
		yhat = append(yhat, pred)
	}
	if len(y) == 0 {
		return Metrics{}, nil, nil, fmt.Errorf("models: no test windows (series %d, trainLen %d, lookback %d)", len(series), trainLen, lb)
	}
	m := Metrics{
		MAE:  timeseries.MAE(y, yhat),
		MSE:  timeseries.MSE(y, yhat),
		RMSE: timeseries.RMSE(y, yhat),
		R2:   timeseries.R2(y, yhat),
	}
	return m, y, yhat, nil
}

// Generate autoregressively extends a series: each prediction is appended
// and fed back, producing the arbitrarily long control sequences the paper
// needs for large-scale testing (§IV). Negative forecasts clamp to zero
// since the series are transaction counts.
func Generate(p Predictor, seed []float64, steps int) ([]float64, error) {
	lb := p.Lookback()
	if len(seed) < lb {
		return nil, fmt.Errorf("models: seed of %d shorter than lookback %d", len(seed), lb)
	}
	buf := append([]float64(nil), seed...)
	out := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		window := buf[len(buf)-lb:]
		v, err := p.Predict(window)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			v = 0
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("models: %s produced non-finite forecast at step %d", p.Name(), i)
		}
		buf = append(buf, v)
		out = append(out, v)
	}
	return out, nil
}
