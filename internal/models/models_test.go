package models

import (
	"math"
	"testing"

	"hammer/internal/randx"
)

// quickCfg keeps neural training fast in unit tests.
func quickCfg() Config {
	return Config{
		Lookback: 12, Horizon: 1, Hidden: 8, Levels: 2, KernelSize: 3,
		Heads: 2, Epochs: 40, LR: 0.01, ClipNorm: 5, Ridge: 1e-3, Seed: 1,
	}
}

// sineSeries is a noiseless predictable series.
func sineSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + 40*math.Sin(2*math.Pi*float64(i)/24)
	}
	return out
}

// noisySeries adds mild seeded noise.
func noisySeries(n int, seed int64) []float64 {
	rng := randx.New(seed)
	out := sineSeries(n)
	for i := range out {
		out[i] += rng.NormFloat64() * 2
	}
	return out
}

func builders() map[string]func(Config) Predictor {
	return map[string]func(Config) Predictor{
		"Linear":        func(c Config) Predictor { return NewLinear(c) },
		"RNN":           NewRNN,
		"TCN":           NewTCN,
		"Transformer":   NewTransformer,
		"Hammer":        NewHammer,
		"Hammer-NoAttn": NewHammerNoAttention,
	}
}

func TestAllModelsLearnASine(t *testing.T) {
	series := noisySeries(240, 3)
	train := series[:190]
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			p := build(quickCfg())
			if p.Name() == "" {
				t.Error("empty model name")
			}
			if err := p.Fit(train); err != nil {
				t.Fatal(err)
			}
			m, err := EvaluateNormalized(p, series, len(train))
			if err != nil {
				t.Fatal(err)
			}
			// A ±40 sine with σ=2 noise: any functioning model must reach
			// R² > 0.5 on held-out data.
			if m.R2 < 0.5 {
				t.Errorf("%s R² %.3f on a clean sine — model is not learning", name, m.R2)
			}
		})
	}
}

func TestLinearExactOnARProcess(t *testing.T) {
	// x_t = 0.6 x_{t-1} + 0.3 x_{t-2} with no noise is exactly linear.
	series := make([]float64, 200)
	series[0], series[1] = 1, 2
	for i := 2; i < len(series); i++ {
		series[i] = 0.6*series[i-1] + 0.3*series[i-2] + 0.5
	}
	cfg := quickCfg()
	p := NewLinear(cfg)
	if err := p.Fit(series[:150]); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(p, series, 150)
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE > 1e-6 {
		t.Fatalf("linear model should recover an AR process exactly, MAE %v", m.MAE)
	}
}

func TestPredictValidation(t *testing.T) {
	p := NewLinear(quickCfg())
	if _, err := p.Predict(make([]float64, 12)); err == nil {
		t.Fatal("predict before fit should error")
	}
	if err := p.Fit(sineSeries(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(make([]float64, 5)); err == nil {
		t.Fatal("wrong window length should error")
	}
	h := NewHammer(quickCfg())
	if _, err := h.Predict(make([]float64, 12)); err == nil {
		t.Fatal("neural predict before fit should error")
	}
}

func TestFitTooShortSeries(t *testing.T) {
	for name, build := range builders() {
		p := build(quickCfg())
		if err := p.Fit([]float64{1, 2, 3}); err == nil {
			t.Errorf("%s: fitting a 3-point series should error", name)
		}
	}
}

func TestGenerateExtendsFinite(t *testing.T) {
	series := noisySeries(240, 5)
	p := NewHammer(quickCfg())
	if err := p.Fit(series); err != nil {
		t.Fatal(err)
	}
	out, err := Generate(p, series, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 48 {
		t.Fatalf("generated %d", len(out))
	}
	for i, v := range out {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("generated[%d] = %v", i, v)
		}
	}
	// The generated continuation must stay in a sane range for a series
	// oscillating in [60, 140].
	for _, v := range out {
		if v > 1000 {
			t.Fatalf("autoregressive extension diverged: %v", v)
		}
	}
	if _, err := Generate(p, series[:5], 10); err == nil {
		t.Fatal("seed shorter than lookback should error")
	}
}

func TestEvaluateNormalizedScale(t *testing.T) {
	series := noisySeries(240, 6)
	p := NewLinear(quickCfg())
	if err := p.Fit(series[:190]); err != nil {
		t.Fatal(err)
	}
	raw, err := Evaluate(p, series, 190)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := EvaluateNormalized(p, series, 190)
	if err != nil {
		t.Fatal(err)
	}
	// R² is scale-invariant; MAE is not.
	if math.Abs(raw.R2-norm.R2) > 1e-9 {
		t.Fatalf("R² should be scale-invariant: %v vs %v", raw.R2, norm.R2)
	}
	if norm.MAE >= raw.MAE {
		t.Fatalf("normalised MAE %v should be far below raw %v for a ±40 series", norm.MAE, raw.MAE)
	}
}

func TestDeterministicTraining(t *testing.T) {
	series := noisySeries(150, 7)
	mk := func() float64 {
		p := NewRNN(quickCfg())
		if err := p.Fit(series); err != nil {
			t.Fatal(err)
		}
		v, err := p.Predict(series[len(series)-12:])
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if mk() != mk() {
		t.Fatal("same seed should train to identical weights")
	}
}

func TestHammerNeverWorseThanLinearOnLinearData(t *testing.T) {
	// On a purely linear process the warm-started highway plus validation
	// checkpointing must keep Hammer at ridge-level accuracy.
	series := make([]float64, 250)
	rng := randx.New(8)
	series[0] = 10
	for i := 1; i < len(series); i++ {
		series[i] = 0.8*series[i-1] + 5 + rng.NormFloat64()
	}
	cfg := quickCfg()
	lin := NewLinear(cfg)
	if err := lin.Fit(series[:200]); err != nil {
		t.Fatal(err)
	}
	ml, err := EvaluateNormalized(lin, series, 200)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHammer(cfg)
	if err := h.Fit(series[:200]); err != nil {
		t.Fatal(err)
	}
	mh, err := EvaluateNormalized(h, series, 200)
	if err != nil {
		t.Fatal(err)
	}
	if mh.MAE > ml.MAE*1.15 {
		t.Fatalf("Hammer MAE %.4f far above Linear %.4f on linear data", mh.MAE, ml.MAE)
	}
}
