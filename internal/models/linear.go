package models

import (
	"fmt"

	"hammer/internal/timeseries"
)

// Linear is the ridge-regression baseline: ŷ = w·window + b, solved in
// closed form from the normal equations (XᵀX + λI)w = Xᵀy.
type Linear struct {
	cfg    Config
	scaler timeseries.Scaler
	w      []float64
	b      float64
	fitted bool
}

var _ Predictor = (*Linear)(nil)

// NewLinear builds the baseline.
func NewLinear(cfg Config) *Linear {
	cfg.fillDefaults()
	return &Linear{cfg: cfg}
}

// Name implements Predictor.
func (l *Linear) Name() string { return "Linear" }

// Lookback implements Predictor.
func (l *Linear) Lookback() int { return l.cfg.Lookback }

// Fit implements Predictor.
func (l *Linear) Fit(series []float64) error {
	l.scaler = timeseries.FitScaler(series)
	norm := l.scaler.Transform(series)
	X, Y, err := timeseries.Windows(norm, l.cfg.Lookback, l.cfg.Horizon)
	if err != nil {
		return fmt.Errorf("models: linear fit: %w", err)
	}
	sol, err := ridgeFit(X, Y, l.cfg.Lookback, l.cfg.Ridge)
	if err != nil {
		return fmt.Errorf("models: linear fit: %w", err)
	}
	l.w = sol[:l.cfg.Lookback]
	l.b = sol[l.cfg.Lookback]
	l.fitted = true
	return nil
}

// Predict implements Predictor.
func (l *Linear) Predict(window []float64) (float64, error) {
	if !l.fitted {
		return 0, fmt.Errorf("models: linear predict before fit")
	}
	if len(window) != l.cfg.Lookback {
		return 0, fmt.Errorf("models: linear window of %d, want %d", len(window), l.cfg.Lookback)
	}
	v := l.b
	for i, x := range window {
		v += l.w[i] * (x - l.scaler.Mean) / l.scaler.Std
	}
	return l.scaler.Invert(v), nil
}

// ridgeFit solves the normal equations (XᵀX + λI)w = Xᵀy over windows with
// an appended bias column, returning the weight vector (last entry bias).
func ridgeFit(X [][]float64, Y []float64, lookback int, ridge float64) ([]float64, error) {
	d := lookback + 1
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	rhs := make([]float64, d)
	row := make([]float64, d)
	for s := range X {
		copy(row, X[s])
		row[d-1] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			rhs[i] += row[i] * Y[s]
		}
	}
	for i := 0; i < d-1; i++ { // do not regularise the bias
		a[i][i] += ridge
	}
	return solveLinear(a, rhs)
}

// solveLinear solves a dense system with Gaussian elimination and partial
// pivoting. It mutates its arguments.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("models: singular normal matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
