package models

import (
	"hammer/internal/nn"
	"hammer/internal/randx"
)

// NewHammer builds the paper's workload predictor (§IV, Fig 5): an embedding
// projection feeds a TCN that captures long-distance dependencies
// (periodicity), its output feeds a BiGRU that captures short-distance
// dependencies in both directions, and a multi-head attention stage catches
// sudden bursts; a dense head reads the last step.
func NewHammer(cfg Config) Predictor {
	cfg.fillDefaults()
	rng := randx.New(cfg.Seed)

	embed := nn.NewDense(1, cfg.Hidden, rng)
	tcn := nn.NewTCN(cfg.Hidden, cfg.Hidden, cfg.KernelSize, cfg.Levels, rng)
	gruHidden := cfg.Hidden / 2
	if gruHidden == 0 {
		gruHidden = 1
	}
	bigru := nn.NewBiGRU(cfg.Hidden, gruHidden, rng)
	attn := nn.NewMultiHeadAttention(2*gruHidden, cfg.Heads, rng)
	head := nn.NewDense(2*gruHidden, 1, rng)
	// Autoregressive highway: a linear bypass over the raw window that the
	// nonlinear TCN→BiGRU→attention stack corrects — the outermost
	// residual of the Fig 5 stack. It is warm-started at the closed-form
	// ridge solution and the head is zero-initialised, so training begins
	// exactly at the linear baseline and gradient descent only adds the
	// nonlinear corrections (burst tracking) on top.
	arW := nn.Zeros(cfg.Lookback, 1).RequireGrad()
	arB := nn.Zeros(1, 1).RequireGrad()
	arW.Data[cfg.Lookback-1] = 1
	for i := range head.W.Data {
		head.W.Data[i] = 0
	}

	m := &neural{name: "Hammer", cfg: cfg}
	m.params = append(m.params, embed.Params()...)
	m.params = append(m.params, tcn.Params()...)
	m.params = append(m.params, bigru.Params()...)
	m.params = append(m.params, attn.Params()...)
	m.params = append(m.params, head.Params()...)
	m.params = append(m.params, arW, arB)
	m.warmStart = warmStartAR(arW, arB, cfg)
	m.forward = func(seq nn.Sequence) *nn.Tensor {
		h := nn.MapSequence(seq, embed.Forward)
		h = tcn.Forward(h)
		h = bigru.Run(h)
		a := attn.Forward(h)
		// Residual around attention keeps the recurrent signal when no
		// burst is present.
		out := make(nn.Sequence, len(h))
		for t := range h {
			out[t] = nn.Add(h[t], a[t])
		}
		pred := head.Forward(out.Last())
		window := nn.ConcatCols([]*nn.Tensor(seq)...)
		pred = nn.Add(pred, nn.MatMul(window, arW))
		return nn.AddBias(pred, arB)
	}
	return m
}

// warmStartAR fills the AR highway with the ridge solution over the
// training windows.
func warmStartAR(arW, arB *nn.Tensor, cfg Config) func(X [][]float64, Y []float64) error {
	return func(X [][]float64, Y []float64) error {
		sol, err := ridgeFit(X, Y, cfg.Lookback, cfg.Ridge)
		if err != nil {
			return err
		}
		copy(arW.Data, sol[:cfg.Lookback])
		arB.Data[0] = sol[cfg.Lookback]
		return nil
	}
}

// NewHammerNoAttention is the ablation variant without the multi-head
// attention stage, used to quantify attention's contribution to burst
// tracking.
func NewHammerNoAttention(cfg Config) Predictor {
	cfg.fillDefaults()
	rng := randx.New(cfg.Seed)

	embed := nn.NewDense(1, cfg.Hidden, rng)
	tcn := nn.NewTCN(cfg.Hidden, cfg.Hidden, cfg.KernelSize, cfg.Levels, rng)
	gruHidden := cfg.Hidden / 2
	if gruHidden == 0 {
		gruHidden = 1
	}
	bigru := nn.NewBiGRU(cfg.Hidden, gruHidden, rng)
	head := nn.NewDense(2*gruHidden, 1, rng)
	arW := nn.Zeros(cfg.Lookback, 1).RequireGrad()
	arB := nn.Zeros(1, 1).RequireGrad()
	arW.Data[cfg.Lookback-1] = 1
	for i := range head.W.Data {
		head.W.Data[i] = 0
	}

	m := &neural{name: "Hammer-NoAttn", cfg: cfg}
	m.params = append(m.params, embed.Params()...)
	m.params = append(m.params, tcn.Params()...)
	m.params = append(m.params, bigru.Params()...)
	m.params = append(m.params, head.Params()...)
	m.params = append(m.params, arW, arB)
	m.warmStart = warmStartAR(arW, arB, cfg)
	m.forward = func(seq nn.Sequence) *nn.Tensor {
		h := nn.MapSequence(seq, embed.Forward)
		h = tcn.Forward(h)
		h = bigru.Run(h)
		pred := head.Forward(h.Last())
		window := nn.ConcatCols([]*nn.Tensor(seq)...)
		pred = nn.Add(pred, nn.MatMul(window, arW))
		return nn.AddBias(pred, arB)
	}
	return m
}
