package models

import (
	"hammer/internal/nn"
	"hammer/internal/randx"
)

// NewRNN builds the Elman-RNN baseline of Table III: a single recurrent
// layer whose final hidden state feeds a dense head.
func NewRNN(cfg Config) Predictor {
	cfg.fillDefaults()
	rng := randx.New(cfg.Seed)
	cell := nn.NewRNNCell(1, cfg.Hidden, rng)
	head := nn.NewDense(cfg.Hidden, 1, rng)
	m := &neural{name: "RNN", cfg: cfg}
	m.params = append(cell.Params(), head.Params()...)
	m.forward = func(seq nn.Sequence) *nn.Tensor {
		return head.Forward(cell.Run(seq).Last())
	}
	return m
}

// NewTCN builds the TCN baseline of Table III: stacked dilated causal
// convolutions (eq. 3) with a dense head on the last step.
func NewTCN(cfg Config) Predictor {
	cfg.fillDefaults()
	rng := randx.New(cfg.Seed)
	tcn := nn.NewTCN(1, cfg.Hidden, cfg.KernelSize, cfg.Levels, rng)
	head := nn.NewDense(cfg.Hidden, 1, rng)
	m := &neural{name: "TCN", cfg: cfg}
	m.params = append(tcn.Params(), head.Params()...)
	m.forward = func(seq nn.Sequence) *nn.Tensor {
		return head.Forward(tcn.Forward(seq).Last())
	}
	return m
}

// transformerBlock is one pre-norm encoder block: x + MHA(LN(x)), then
// x + FFN(LN(x)).
type transformerBlock struct {
	attn       *nn.MultiHeadAttention
	ffn1, ffn2 *nn.Dense
	g1, b1     *nn.Tensor
	g2, b2     *nn.Tensor
}

func newTransformerBlock(model, heads int, rng *randx.Rand) *transformerBlock {
	return &transformerBlock{
		attn: nn.NewMultiHeadAttention(model, heads, rng),
		ffn1: nn.NewDense(model, 2*model, rng),
		ffn2: nn.NewDense(2*model, model, rng),
		g1:   nn.Full(1, model, 1).RequireGrad(),
		b1:   nn.Zeros(1, model).RequireGrad(),
		g2:   nn.Full(1, model, 1).RequireGrad(),
		b2:   nn.Zeros(1, model).RequireGrad(),
	}
}

func (b *transformerBlock) forward(seq nn.Sequence) nn.Sequence {
	normed := nn.MapSequence(seq, func(x *nn.Tensor) *nn.Tensor {
		return nn.LayerNorm(x, b.g1, b.b1, 1e-5)
	})
	att := b.attn.Forward(normed)
	h := make(nn.Sequence, len(seq))
	for t := range seq {
		h[t] = nn.Add(seq[t], att[t])
	}
	out := make(nn.Sequence, len(seq))
	for t := range h {
		ff := b.ffn2.Forward(nn.ReLU(b.ffn1.Forward(nn.LayerNorm(h[t], b.g2, b.b2, 1e-5))))
		out[t] = nn.Add(h[t], ff)
	}
	return out
}

func (b *transformerBlock) params() []*nn.Tensor {
	out := b.attn.Params()
	out = append(out, b.ffn1.Params()...)
	out = append(out, b.ffn2.Params()...)
	out = append(out, b.g1, b.b1, b.g2, b.b2)
	return out
}

// NewTransformer builds the Transformer baseline of Table III: input
// projection, sinusoidal positional encoding, encoder blocks, dense head on
// the last step. The paper finds it overfits these small workload corpora
// (negative R² on DeFi and Sandbox).
func NewTransformer(cfg Config) Predictor {
	cfg.fillDefaults()
	rng := randx.New(cfg.Seed)
	embed := nn.NewDense(1, cfg.Hidden, rng)
	pe := nn.PositionalEncoding(cfg.Lookback, cfg.Hidden)
	blocks := []*transformerBlock{
		newTransformerBlock(cfg.Hidden, cfg.Heads, rng),
		newTransformerBlock(cfg.Hidden, cfg.Heads, rng),
	}
	head := nn.NewDense(cfg.Hidden, 1, rng)

	m := &neural{name: "Transformer", cfg: cfg}
	m.params = append(embed.Params(), head.Params()...)
	for _, b := range blocks {
		m.params = append(m.params, b.params()...)
	}
	m.forward = func(seq nn.Sequence) *nn.Tensor {
		h := nn.MapSequence(seq, embed.Forward)
		h = nn.AddPositional(h, pe)
		for _, b := range blocks {
			h = b.forward(h)
		}
		return head.Forward(h.Last())
	}
	return m
}
