package models

import (
	"fmt"
	"math"

	"hammer/internal/nn"
	"hammer/internal/timeseries"
)

// neural holds what every gradient-trained model shares: the scaler, the
// parameter list, a forward pass over a batched sequence, and the full-batch
// Adam training loop on MAE loss with validation-based checkpointing.
type neural struct {
	name    string
	cfg     Config
	scaler  timeseries.Scaler
	params  []*nn.Tensor
	forward func(seq nn.Sequence) *nn.Tensor // returns [B, 1] predictions
	// warmStart, when set, initialises parameters from the supervised
	// windows before gradient training (e.g. the AR highway's ridge
	// solution).
	warmStart func(X [][]float64, Y []float64) error
	fitted    bool

	// FinalLoss is the training loss at the last executed epoch.
	FinalLoss float64
	// BestValLoss is the validation loss of the restored checkpoint.
	BestValLoss float64
	// EpochsRun counts epochs actually executed.
	EpochsRun int
}

// Name implements Predictor.
func (n *neural) Name() string { return n.name }

// Lookback implements Predictor.
func (n *neural) Lookback() int { return n.cfg.Lookback }

// valFrac is the time-ordered tail of the training windows held out for
// checkpoint selection.
const valFrac = 0.15

// Fit implements Predictor: full-batch Adam on the MAE loss (eq. 8), with
// the last 15% of training windows held out for validation; the parameters
// of the best validation epoch are restored at the end ("the training
// process concludes when the model's loss converges").
func (n *neural) Fit(series []float64) error {
	n.scaler = timeseries.FitScaler(series)
	norm := n.scaler.Transform(series)
	X, Y, err := timeseries.Windows(norm, n.cfg.Lookback, n.cfg.Horizon)
	if err != nil {
		return fmt.Errorf("models: %s fit: %w", n.name, err)
	}
	if n.warmStart != nil {
		if err := n.warmStart(X, Y); err != nil {
			return fmt.Errorf("models: %s warm start: %w", n.name, err)
		}
	}

	nVal := int(valFrac * float64(len(X)))
	if nVal < 1 && len(X) > 4 {
		nVal = 1
	}
	cut := len(X) - nVal
	trainSeq := nn.SequenceFromWindows(X[:cut])
	trainY := nn.Zeros(cut, 1)
	copy(trainY.Data, Y[:cut])

	var valSeq nn.Sequence
	var valY *nn.Tensor
	if nVal > 0 {
		valSeq = nn.SequenceFromWindows(X[cut:])
		valY = nn.Zeros(nVal, 1)
		copy(valY.Data, Y[cut:])
	}

	opt := nn.NewAdam(n.params, n.cfg.LR)
	// Halve the learning rate twice over the budget; Adam on full-batch
	// MAE benefits from the tail refinement.
	decayAt := map[int]bool{n.cfg.Epochs / 2: true, n.cfg.Epochs * 3 / 4: true}
	const patience = 60

	best := math.Inf(1)
	stall := 0
	var checkpoint [][]float64

	snapshot := func() {
		if checkpoint == nil {
			checkpoint = make([][]float64, len(n.params))
			for i, p := range n.params {
				checkpoint[i] = make([]float64, len(p.Data))
			}
		}
		for i, p := range n.params {
			copy(checkpoint[i], p.Data)
		}
	}
	restore := func() {
		if checkpoint == nil {
			return
		}
		for i, p := range n.params {
			copy(p.Data, checkpoint[i])
		}
	}

	score := func() float64 {
		if valSeq == nil {
			return n.FinalLoss
		}
		loss := nn.MAELoss(n.forward(valSeq), valY)
		v := loss.Item()
		nn.Release(loss)
		return v
	}

	// Score the warm-started parameters before any gradient step, so a
	// model that only gets worse keeps its initialisation.
	if v := score(); !math.IsNaN(v) {
		best = v
		snapshot()
	}

	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		if decayAt[epoch] {
			opt.ScaleLR(0.5)
		}
		pred := n.forward(trainSeq)
		loss := nn.MAELoss(pred, trainY)
		loss.Backward()
		if n.cfg.ClipNorm > 0 {
			nn.ClipGradNorm(n.params, n.cfg.ClipNorm)
		}
		opt.Step()
		n.FinalLoss = loss.Item()
		// The step's graph is fully consumed: recycle every derived node.
		nn.Release(loss)
		n.EpochsRun = epoch + 1
		if math.IsNaN(n.FinalLoss) || math.IsInf(n.FinalLoss, 0) {
			restore()
			return fmt.Errorf("models: %s diverged at epoch %d", n.name, epoch)
		}
		v := score()
		if v < best {
			best = v
			snapshot()
			stall = 0
		} else {
			stall++
			if stall >= patience {
				break
			}
		}
	}
	restore()
	n.BestValLoss = best
	n.fitted = true
	return nil
}

// Predict implements Predictor.
func (n *neural) Predict(window []float64) (float64, error) {
	if !n.fitted {
		return 0, fmt.Errorf("models: %s predict before fit", n.name)
	}
	if len(window) != n.cfg.Lookback {
		return 0, fmt.Errorf("models: %s window of %d, want %d", n.name, len(window), n.cfg.Lookback)
	}
	seq := make(nn.Sequence, len(window))
	for t, v := range window {
		step := nn.Zeros(1, 1)
		step.Data[0] = (v - n.scaler.Mean) / n.scaler.Std
		seq[t] = step
	}
	out := n.forward(seq)
	v := out.Data[0]
	nn.Release(out)
	return n.scaler.Invert(v), nil
}
