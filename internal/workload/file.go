package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hammer/internal/chain"
)

// WriteFile persists transactions as JSON lines — the workload file the
// paper's client generates, persists and ships to the server over SCP
// (§III-B1, step ①). The format is line-oriented so the server can stream
// it through the signing pipeline without loading everything first.
func WriteFile(path string, txs []*chain.Transaction) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("workload: close %s: %w", path, cerr)
		}
	}()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, tx := range txs {
		if err := enc.Encode(tx); err != nil {
			return fmt.Errorf("workload: encode transaction: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("workload: flush %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a JSON-lines workload file fully.
func ReadFile(path string) ([]*chain.Transaction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: open %s: %w", path, err)
	}
	defer f.Close()
	var txs []*chain.Transaction
	err = StreamFile(f, func(tx *chain.Transaction) error {
		txs = append(txs, tx)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return txs, nil
}

// StreamFile decodes transactions one at a time, feeding each to fn — the
// streaming entry point of the server's pipelined preparation.
func StreamFile(r io.Reader, fn func(*chain.Transaction) error) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		tx := &chain.Transaction{}
		if err := dec.Decode(tx); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("workload: decode transaction: %w", err)
		}
		if err := fn(tx); err != nil {
			return err
		}
	}
}
