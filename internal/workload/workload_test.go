package workload

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Profile{Accounts: 1}); err == nil {
		t.Fatal("1 account should be rejected")
	}
	if _, err := NewGenerator(Profile{Accounts: 10, InitialBalance: -1}); err == nil {
		t.Fatal("negative balance should be rejected")
	}
	if _, err := NewGenerator(Profile{Accounts: 10, OpMix: map[string]float64{"nope": 1}}); err == nil {
		t.Fatal("mix selecting nothing should be rejected")
	}
}

func TestSetupTxs(t *testing.T) {
	g, err := NewGenerator(Profile{Accounts: 5, InitialBalance: 77, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	setup := g.SetupTxs()
	if len(setup) != 5 {
		t.Fatalf("%d setup txs", len(setup))
	}
	for i, tx := range setup {
		if tx.Op != smallbank.OpCreate {
			t.Fatalf("setup op %q", tx.Op)
		}
		if tx.Args[0] != smallbank.AccountName(i) || tx.Args[1] != "77" {
			t.Fatalf("setup args %v", tx.Args)
		}
	}
}

func TestUniformMix(t *testing.T) {
	g, err := NewGenerator(Profile{Accounts: 100, Seed: 2, MaxAmount: 10})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		tx := g.Next("c0", "s0")
		counts[tx.Op]++
		if tx.ClientID != "c0" || tx.ServerID != "s0" {
			t.Fatal("attribution missing")
		}
	}
	for _, op := range smallbank.Ops {
		frac := float64(counts[op]) / n
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("op %s frequency %.3f, want ≈0.25 (uniform)", op, frac)
		}
	}
}

func TestCustomMix(t *testing.T) {
	g, err := NewGenerator(Profile{
		Accounts: 10, Seed: 3,
		OpMix: map[string]float64{smallbank.OpTransfer: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tx := g.Next("c", "s")
		if tx.Op != smallbank.OpTransfer {
			t.Fatalf("op %q under transfer-only mix", tx.Op)
		}
		if tx.Args[0] == tx.Args[1] {
			t.Fatal("transfer endpoints must differ")
		}
		if tx.From != tx.Args[0] {
			t.Fatal("From should be the source account")
		}
	}
}

func TestAmountsBounded(t *testing.T) {
	g, err := NewGenerator(Profile{Accounts: 10, Seed: 4, MaxAmount: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tx := g.Next("c", "s")
		if tx.Op == smallbank.OpAmalgamate {
			continue
		}
		amt, _ := strconv.Atoi(tx.Args[len(tx.Args)-1])
		if amt < 1 || amt > 7 {
			t.Fatalf("amount %d outside [1,7]", amt)
		}
	}
}

func TestSkewedAccess(t *testing.T) {
	g, err := NewGenerator(Profile{Accounts: 1000, Seed: 5, AccessSkew: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		tx := g.Next("c", "s")
		counts[tx.Args[0]]++
	}
	if counts[smallbank.AccountName(0)] < 200 {
		t.Fatalf("zipf head accessed only %d times", counts[smallbank.AccountName(0)])
	}
}

func TestNoncesUnique(t *testing.T) {
	g, _ := NewGenerator(Profile{Accounts: 10, Seed: 6})
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		tx := g.Next("c", "s")
		if seen[tx.Nonce] {
			t.Fatal("duplicate nonce")
		}
		seen[tx.Nonce] = true
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []string {
		g, _ := NewGenerator(Profile{Accounts: 50, Seed: 9})
		var ops []string
		for i := 0; i < 50; i++ {
			tx := g.Next("c", "s")
			ops = append(ops, tx.Op+":"+tx.Args[0])
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should generate the same workload")
		}
	}
}

func TestConstantControlSequence(t *testing.T) {
	cs := Constant(150, 10*time.Second, time.Second)
	if len(cs.Counts) != 10 {
		t.Fatalf("%d slices", len(cs.Counts))
	}
	if cs.Total() != 1500 {
		t.Fatalf("total %d, want 1500", cs.Total())
	}
	if cs.Duration() != 10*time.Second {
		t.Fatalf("duration %v", cs.Duration())
	}
	// Fractional rates accumulate without loss.
	cs = Constant(0.5, 10*time.Second, time.Second)
	if cs.Total() != 5 {
		t.Fatalf("fractional total %d, want 5", cs.Total())
	}
}

func TestFromSeriesPreservesShape(t *testing.T) {
	series := []float64{1, 2, 3, 4, -1, 0}
	cs := FromSeries(series, time.Second, 100)
	if cs.Total() != 100 {
		t.Fatalf("total %d, want 100", cs.Total())
	}
	if cs.Counts[4] != 0 || cs.Counts[5] != 0 {
		t.Fatal("negative and zero points should clamp to zero")
	}
	if !(cs.Counts[3] > cs.Counts[0]) {
		t.Fatalf("shape not preserved: %v", cs.Counts)
	}
	if cs.PeakRate() != float64(cs.Counts[3]) {
		t.Fatalf("peak %v", cs.PeakRate())
	}
	// All-zero series yields an all-zero sequence.
	zero := FromSeries([]float64{0, 0}, time.Second, 10)
	if zero.Total() != 0 {
		t.Fatal("zero series should produce zero transactions")
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	g, _ := NewGenerator(Profile{Accounts: 20, Seed: 7})
	txs := g.Batch(50, "c0", "s0")
	for _, tx := range txs {
		tx.ComputeID()
	}
	path := filepath.Join(t.TempDir(), "wl.jsonl")
	if err := WriteFile(path, txs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(txs) {
		t.Fatalf("read %d of %d", len(back), len(txs))
	}
	for i := range txs {
		if back[i].ID != txs[i].ID {
			t.Fatalf("tx %d id mismatch", i)
		}
	}
}

func TestStreamFileStopsOnError(t *testing.T) {
	g, _ := NewGenerator(Profile{Accounts: 20, Seed: 8})
	txs := g.Batch(10, "c", "s")
	path := filepath.Join(t.TempDir(), "wl.jsonl")
	if err := WriteFile(path, txs); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sentinel := errors.New("stop here")
	err = StreamFile(f, func(*chain.Transaction) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Fatalf("stream stopped after %d with %v", n, err)
	}
}
