// Package workload generates the transactions an evaluation sends to the
// system under test. A Profile (the paper's parsed JSON workload
// configuration) fixes the contract, account population, operation mix and
// access skew; a Generator materialises transactions; and a ControlSequence
// — the temporal heart of the paper — dictates how many transactions are
// injected in each time slice, so the evaluation follows realistic bursty
// and periodic load rather than a flat rate.
package workload

import (
	"fmt"
	"strconv"
	"time"

	"hammer/internal/chain"
	"hammer/internal/randx"
	"hammer/internal/smallbank"
)

// Profile configures a workload.
type Profile struct {
	// Name labels the workload in reports.
	Name string `json:"name"`
	// Contract is the target contract (default smallbank).
	Contract string `json:"contract"`
	// Accounts is the customer population (paper: 5,000 per shard).
	Accounts int `json:"accounts"`
	// InitialBalance seeds each account's checking and savings.
	InitialBalance int64 `json:"initial_balance"`
	// OpMix weights operations; empty means the paper's uniform
	// distribution over deposit/withdraw/transfer/amalgamate.
	OpMix map[string]float64 `json:"op_mix,omitempty"`
	// AccessSkew > 1 draws accounts from a Zipf distribution with that
	// exponent; 0 or 1 draws uniformly. Skew creates the hot-key conflicts
	// behind Fig 10's client-count cliff.
	AccessSkew float64 `json:"access_skew"`
	// MaxAmount bounds transfer/deposit amounts.
	MaxAmount int64 `json:"max_amount"`
	// Seed makes generation reproducible.
	Seed int64 `json:"seed"`
}

// DefaultProfile is the paper's SmallBank setup.
func DefaultProfile() Profile {
	return Profile{
		Name:           "smallbank-uniform",
		Contract:       smallbank.ContractName,
		Accounts:       10_000,
		InitialBalance: 1_000_000,
		MaxAmount:      100,
		Seed:           7,
	}
}

// Generator draws transactions from a profile.
type Generator struct {
	profile Profile
	rng     *randx.Rand
	zipf    *randx.Zipf
	ops     []string
	cum     []float64
	nonce   uint64
}

// NewGenerator validates the profile and builds a generator.
func NewGenerator(p Profile) (*Generator, error) {
	if p.Contract == "" {
		p.Contract = smallbank.ContractName
	}
	if p.Accounts < 2 {
		return nil, fmt.Errorf("workload: need at least 2 accounts, got %d", p.Accounts)
	}
	if p.InitialBalance < 0 {
		return nil, fmt.Errorf("workload: negative initial balance %d", p.InitialBalance)
	}
	if p.MaxAmount <= 0 {
		p.MaxAmount = 100
	}
	g := &Generator{profile: p, rng: randx.New(p.Seed)}
	if p.AccessSkew > 1 {
		g.zipf = randx.NewZipf(g.rng, p.AccessSkew, uint64(p.Accounts))
	}
	mix := p.OpMix
	if len(mix) == 0 {
		mix = make(map[string]float64, len(smallbank.Ops))
		for _, op := range smallbank.Ops {
			mix[op] = 1
		}
	}
	var total float64
	for _, op := range smallbank.Ops {
		w, ok := mix[op]
		if !ok || w <= 0 {
			continue
		}
		total += w
		g.ops = append(g.ops, op)
		g.cum = append(g.cum, total)
	}
	if len(g.ops) == 0 {
		return nil, fmt.Errorf("workload: operation mix selects no operations")
	}
	for i := range g.cum {
		g.cum[i] /= total
	}
	return g, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.profile }

// SetupTxs creates the account population. These run before measurement.
func (g *Generator) SetupTxs() []*chain.Transaction {
	txs := make([]*chain.Transaction, g.profile.Accounts)
	for i := range txs {
		name := smallbank.AccountName(i)
		txs[i] = &chain.Transaction{
			Contract: g.profile.Contract,
			Op:       smallbank.OpCreate,
			Args: []string{
				name,
				strconv.FormatInt(g.profile.InitialBalance, 10),
				strconv.FormatInt(g.profile.InitialBalance, 10),
			},
			From:  name,
			Nonce: g.nextNonce(),
		}
	}
	return txs
}

func (g *Generator) nextNonce() uint64 {
	g.nonce++
	return g.nonce
}

func (g *Generator) pickAccount() int {
	if g.zipf != nil {
		return int(g.zipf.Next())
	}
	return g.rng.Intn(g.profile.Accounts)
}

// pickTwoAccounts draws two distinct accounts.
func (g *Generator) pickTwoAccounts() (int, int) {
	a := g.pickAccount()
	b := g.pickAccount()
	for b == a {
		b = (b + 1 + g.rng.Intn(g.profile.Accounts-1)) % g.profile.Accounts
	}
	return a, b
}

// Next draws one benchmark transaction attributed to the given client and
// server (the paper's c_id and s_id).
func (g *Generator) Next(clientID, serverID string) *chain.Transaction {
	u := g.rng.Float64()
	op := g.ops[len(g.ops)-1]
	for i, c := range g.cum {
		if u <= c {
			op = g.ops[i]
			break
		}
	}
	tx := &chain.Transaction{
		ClientID: clientID,
		ServerID: serverID,
		Contract: g.profile.Contract,
		Op:       op,
		Nonce:    g.nextNonce(),
	}
	amount := 1 + g.rng.Int63n(g.profile.MaxAmount)
	switch op {
	case smallbank.OpDeposit, smallbank.OpWithdraw:
		a := smallbank.AccountName(g.pickAccount())
		tx.Args = []string{a, strconv.FormatInt(amount, 10)}
		tx.From = a
	case smallbank.OpTransfer:
		a, b := g.pickTwoAccounts()
		tx.Args = []string{smallbank.AccountName(a), smallbank.AccountName(b), strconv.FormatInt(amount, 10)}
		tx.From = smallbank.AccountName(a)
	case smallbank.OpAmalgamate:
		a, b := g.pickTwoAccounts()
		tx.Args = []string{smallbank.AccountName(a), smallbank.AccountName(b)}
		tx.From = smallbank.AccountName(a)
	}
	return tx
}

// Batch draws n transactions.
func (g *Generator) Batch(n int, clientID, serverID string) []*chain.Transaction {
	txs := make([]*chain.Transaction, n)
	for i := range txs {
		txs[i] = g.Next(clientID, serverID)
	}
	return txs
}

// ControlSequence dictates how many transactions are injected per time
// slice (paper §IV: "a time sequence to control the number of concurrent
// transactions within a time period").
type ControlSequence struct {
	// Interval is the slice width.
	Interval time.Duration `json:"interval"`
	// Counts is the number of transactions to inject in each slice.
	Counts []int `json:"counts"`
}

// Constant builds a flat sequence of rate tx/sec for the given duration —
// what the paper says existing frameworks are limited to.
func Constant(ratePerSecond float64, duration, interval time.Duration) ControlSequence {
	if interval <= 0 {
		interval = time.Second
	}
	slices := int(duration / interval)
	if slices < 1 {
		slices = 1
	}
	per := ratePerSecond * interval.Seconds()
	counts := make([]int, slices)
	carry := 0.0
	for i := range counts {
		carry += per
		counts[i] = int(carry)
		carry -= float64(counts[i])
	}
	return ControlSequence{Interval: interval, Counts: counts}
}

// FromSeries scales a predicted/learned series so that it sums to total
// transactions, preserving its shape. Negative points clamp to zero.
func FromSeries(series []float64, interval time.Duration, total int) ControlSequence {
	if interval <= 0 {
		interval = time.Second
	}
	var sum float64
	clamped := make([]float64, len(series))
	for i, v := range series {
		if v < 0 {
			v = 0
		}
		clamped[i] = v
		sum += v
	}
	counts := make([]int, len(series))
	if sum == 0 {
		return ControlSequence{Interval: interval, Counts: counts}
	}
	scale := float64(total) / sum
	carry := 0.0
	assigned := 0
	peak := 0
	for i, v := range clamped {
		carry += v * scale
		counts[i] = int(carry)
		carry -= float64(counts[i])
		assigned += counts[i]
		if counts[i] > counts[peak] {
			peak = i
		}
	}
	// Floating-point carry can leave the sequence a transaction short (or,
	// pathologically, long); settle the difference on the peak slice.
	if deficit := total - assigned; deficit != 0 && counts[peak]+deficit >= 0 {
		counts[peak] += deficit
	}
	return ControlSequence{Interval: interval, Counts: counts}
}

// Total sums the per-slice counts.
func (cs ControlSequence) Total() int {
	n := 0
	for _, c := range cs.Counts {
		n += c
	}
	return n
}

// Duration is the sequence's wall span.
func (cs ControlSequence) Duration() time.Duration {
	return time.Duration(len(cs.Counts)) * cs.Interval
}

// PeakRate reports the highest per-second injection rate.
func (cs ControlSequence) PeakRate() float64 {
	if cs.Interval <= 0 {
		return 0
	}
	max := 0
	for _, c := range cs.Counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / cs.Interval.Seconds()
}
