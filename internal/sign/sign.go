// Package sign implements transaction signing for workload preparation.
// Unlike database benchmarks, every blockchain workload item carries a client
// signature (paper §III-D1); preparing a large workload is therefore
// CPU-bound. This package provides the three preparation strategies the
// paper compares in Fig 8: serial signing, asynchronous (parallel) signing,
// and a streaming pipeline that overlaps signing with execution.
package sign

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"hammer/internal/chain"
)

// Signer holds an ECDSA P-256 keypair and signs transaction IDs.
type Signer struct {
	key *ecdsa.PrivateKey
	pub []byte
}

// deterministicReader yields a reproducible byte stream from a seed, so
// tests and benchmarks generate identical keys and signatures run-to-run.
type deterministicReader struct {
	counter uint64
	seed    [32]byte
	buf     []byte
}

func (r *deterministicReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			h := sha256.New()
			h.Write(r.seed[:])
			var c [8]byte
			binary.BigEndian.PutUint64(c[:], r.counter)
			r.counter++
			h.Write(c[:])
			r.buf = h.Sum(nil)
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}

// NewSigner generates a keypair from the seed. The same seed always yields
// the same key. The scalar is derived directly from the seed stream rather
// than through ecdsa.GenerateKey, whose internal randutil.MaybeReadByte
// makes it non-deterministic even over a deterministic reader.
func NewSigner(seed int64) (*Signer, error) {
	rd := &deterministicReader{}
	binary.BigEndian.PutUint64(rd.seed[:8], uint64(seed))
	curve := elliptic.P256()
	n := curve.Params().N
	one := big.NewInt(1)
	// Rejection-sample a scalar in [1, N-1].
	var d *big.Int
	buf := make([]byte, (n.BitLen()+7)/8)
	for {
		if _, err := io.ReadFull(rd, buf); err != nil {
			return nil, fmt.Errorf("sign: derive key: %w", err)
		}
		d = new(big.Int).SetBytes(buf)
		d.Mod(d, new(big.Int).Sub(n, one))
		d.Add(d, one)
		if d.Sign() > 0 {
			break
		}
	}
	key := &ecdsa.PrivateKey{D: d}
	key.PublicKey.Curve = curve
	key.PublicKey.X, key.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	s := &Signer{key: key}
	s.pub = marshalPub(&key.PublicKey)
	return s, nil
}

// marshalPub encodes a P-256 public key as X||Y, 32 bytes each.
func marshalPub(pub *ecdsa.PublicKey) []byte {
	out := make([]byte, 64)
	pub.X.FillBytes(out[:32])
	pub.Y.FillBytes(out[32:])
	return out
}

// unmarshalPub decodes an X||Y public key.
func unmarshalPub(b []byte) (*ecdsa.PublicKey, error) {
	if len(b) != 64 {
		return nil, fmt.Errorf("sign: public key must be 64 bytes, got %d", len(b))
	}
	pub := &ecdsa.PublicKey{
		Curve: elliptic.P256(),
		X:     new(big.Int).SetBytes(b[:32]),
		Y:     new(big.Int).SetBytes(b[32:]),
	}
	if !pub.Curve.IsOnCurve(pub.X, pub.Y) {
		return nil, errors.New("sign: public key not on curve")
	}
	return pub, nil
}

// PublicKey returns the encoded public key.
func (s *Signer) PublicKey() []byte { return s.pub }

// Sign computes the transaction ID and attaches an ECDSA signature over it.
func (s *Signer) Sign(tx *chain.Transaction) error {
	id := tx.ComputeID()
	sig, err := ecdsa.SignASN1(&deterministicReader{seed: id}, s.key, id[:])
	if err != nil {
		return fmt.Errorf("sign: %w", err)
	}
	tx.Signature = sig
	tx.PubKey = s.pub
	return nil
}

// Verify checks a transaction's signature against its recomputed ID.
func Verify(tx *chain.Transaction) error {
	if len(tx.Signature) == 0 {
		return errors.New("sign: missing signature")
	}
	pub, err := unmarshalPub(tx.PubKey)
	if err != nil {
		return err
	}
	cp := *tx
	id := cp.ComputeID()
	if id != tx.ID {
		return fmt.Errorf("sign: transaction id mismatch: claimed %s, computed %s", tx.ID.Short(), id.Short())
	}
	if !ecdsa.VerifyASN1(pub, id[:], tx.Signature) {
		return errors.New("sign: invalid signature")
	}
	return nil
}
