package sign

import (
	"testing"

	"hammer/internal/chain"
)

func sampleTx(i int) *chain.Transaction {
	return &chain.Transaction{
		ClientID: "c",
		Contract: "smallbank",
		Op:       "deposit",
		Args:     []string{"acct1", "10"},
		Nonce:    uint64(i),
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s, err := NewSigner(1)
	if err != nil {
		t.Fatal(err)
	}
	tx := sampleTx(1)
	if err := s.Sign(tx); err != nil {
		t.Fatal(err)
	}
	if tx.ID == (chain.TxID{}) {
		t.Fatal("sign should compute the ID")
	}
	if err := Verify(tx); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	s, err := NewSigner(1)
	if err != nil {
		t.Fatal(err)
	}
	tx := sampleTx(1)
	if err := s.Sign(tx); err != nil {
		t.Fatal(err)
	}
	tx.Args[1] = "100000"
	if err := Verify(tx); err == nil {
		t.Fatal("tampered args should fail verification")
	}
}

func TestVerifyRejectsWrongKeyAndMissingSig(t *testing.T) {
	s1, _ := NewSigner(1)
	s2, _ := NewSigner(2)
	tx := sampleTx(1)
	if err := s1.Sign(tx); err != nil {
		t.Fatal(err)
	}
	tx.PubKey = s2.PublicKey()
	if err := Verify(tx); err == nil {
		t.Fatal("wrong public key should fail verification")
	}
	bare := sampleTx(2)
	if err := Verify(bare); err == nil {
		t.Fatal("missing signature should fail verification")
	}
	bad := sampleTx(3)
	bad.Signature = []byte{1}
	bad.PubKey = []byte{1, 2}
	if err := Verify(bad); err == nil {
		t.Fatal("garbage public key should fail verification")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a, _ := NewSigner(7)
	b, _ := NewSigner(7)
	c, _ := NewSigner(8)
	if string(a.PublicKey()) != string(b.PublicKey()) {
		t.Fatal("same seed should give the same keypair")
	}
	if string(a.PublicKey()) == string(c.PublicKey()) {
		t.Fatal("different seeds should give different keypairs")
	}
}

func TestSignSerialAndAsyncAgree(t *testing.T) {
	s, _ := NewSigner(3)
	mk := func() []*chain.Transaction {
		txs := make([]*chain.Transaction, 50)
		for i := range txs {
			txs[i] = sampleTx(i)
		}
		return txs
	}
	serial := mk()
	if err := SignSerial(serial, s); err != nil {
		t.Fatal(err)
	}
	async := mk()
	if err := SignAsync(async, s, 4); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].ID != async[i].ID {
			t.Fatalf("tx %d: serial and async IDs differ", i)
		}
		if err := Verify(async[i]); err != nil {
			t.Fatalf("async-signed tx %d fails verification: %v", i, err)
		}
	}
}

func TestPipelineDeliversAll(t *testing.T) {
	s, _ := NewSigner(4)
	p := NewPipeline(s, 3)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(sampleTx(i))
		}
		p.Close()
	}()
	seen := make(map[chain.TxID]bool)
	for tx := range p.Out() {
		if err := Verify(tx); err != nil {
			t.Errorf("pipeline output fails verification: %v", err)
		}
		seen[tx.ID] = true
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("pipeline delivered %d unique transactions, want %d", len(seen), n)
	}
}

func TestPipelineCloseIdempotent(t *testing.T) {
	s, _ := NewSigner(5)
	p := NewPipeline(s, 1)
	p.Close()
	p.Close() // must not panic
	for range p.Out() {
		t.Fatal("no output expected")
	}
}
