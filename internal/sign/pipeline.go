package sign

import (
	"runtime"
	"sync"

	"hammer/internal/chain"
)

// SignSerial signs every transaction on the calling goroutine — the naive
// baseline of Fig 8 ("Serial"). It returns the first error encountered.
func SignSerial(txs []*chain.Transaction, signer *Signer) error {
	for _, tx := range txs {
		if err := signer.Sign(tx); err != nil {
			return err
		}
	}
	return nil
}

// SignAsync signs transactions with a pool of workers ("Asynchronous" in
// Fig 8): signatures are independent of one another, so they parallelise
// perfectly, but the caller still waits for the whole batch before
// execution can begin.
func SignAsync(txs []*chain.Transaction, signer *Signer, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan *chain.Transaction)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for tx := range next {
				if err := signer.Sign(tx); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, tx := range txs {
		next <- tx
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Pipeline signs transactions with a worker pool and streams them out as
// they become ready ("Asynchronous Pipeline" in Fig 8): the consumer can
// begin executing the first signed transactions while later ones are still
// being signed, overlapping the preparation and execution phases
// (paper §III-D2).
type Pipeline struct {
	signer  *Signer
	workers int

	out  chan *chain.Transaction
	in   chan *chain.Transaction
	wg   sync.WaitGroup
	once sync.Once

	mu       sync.Mutex
	firstErr error
}

// NewPipeline starts a signing pipeline with the given number of workers
// (GOMAXPROCS when ≤ 0). Callers must drain Out and call Close when done
// submitting.
func NewPipeline(signer *Signer, workers int) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{
		signer:  signer,
		workers: workers,
		in:      make(chan *chain.Transaction),
		out:     make(chan *chain.Transaction),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.out)
	}()
	return p
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for tx := range p.in {
		if err := p.signer.Sign(tx); err != nil {
			p.mu.Lock()
			if p.firstErr == nil {
				p.firstErr = err
			}
			p.mu.Unlock()
			continue
		}
		p.out <- tx
	}
}

// Submit feeds one transaction into the pipeline. It must not be called
// after Close.
func (p *Pipeline) Submit(tx *chain.Transaction) {
	p.in <- tx
}

// Out returns the stream of signed transactions. The channel closes after
// Close once all in-flight transactions have drained.
func (p *Pipeline) Out() <-chan *chain.Transaction { return p.out }

// Close signals that no more transactions will be submitted.
func (p *Pipeline) Close() {
	p.once.Do(func() { close(p.in) })
}

// Err returns the first signing error observed, if any. Call after Out has
// closed.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr
}
