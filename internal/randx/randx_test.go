package randx

import (
	"math"
	"testing"
	"time"
)

func TestExponentialMean(t *testing.T) {
	r := New(1)
	const n = 20000
	mean := 100 * time.Millisecond
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += r.Exponential(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.05 {
		t.Fatalf("exponential mean %v, want ≈%v", time.Duration(got), mean)
	}
	if r.Exponential(0) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(2)
	for _, lambda := range []float64{0.5, 4, 50, 200} {
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda)/lambda > 0.08 {
			t.Errorf("poisson(%v) mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.15 {
			t.Errorf("poisson(%v) variance %v", lambda, variance)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("non-positive lambda should yield 0")
	}
}

func TestNormalAndLogNormal(t *testing.T) {
	r := New(3)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean %v, want ≈10", mean)
	}
	// LogNormal(0, σ) has median 1.
	var above int
	for i := 0; i < n; i++ {
		if r.LogNormal(0, 0.5) > 1 {
			above++
		}
	}
	if frac := float64(above) / n; math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("lognormal median fraction %v, want ≈0.5", frac)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(4)
	const n = 20000
	below := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("pareto draw %v below scale", v)
		}
		if v < 2 {
			below++
		}
	}
	// P(X < 2) = 1 - (1/2)^2 = 0.75.
	if frac := float64(below) / n; math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("pareto CDF(2) ≈ %v, want 0.75", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(5)
	z := NewZipf(r, 1.2, 1000)
	counts := make(map[uint64]int)
	const n = 30000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] < counts[500]*5 {
		t.Fatalf("zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestJitter(t *testing.T) {
	r := New(6)
	d := time.Second
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.2)
		if j < 800*time.Millisecond || j > 1200*time.Millisecond {
			t.Fatalf("jitter %v outside ±20%%", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("zero jitter should return the input")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give identical streams")
		}
	}
}
