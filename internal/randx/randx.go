// Package randx provides seeded random-variate generators used by the
// simulated blockchains and the synthetic workload datasets. Every generator
// is explicitly seeded so that simulations and datasets are reproducible.
package randx

import (
	"math"
	"math/rand"
	"time"
)

// Rand wraps math/rand.Rand with distribution helpers.
type Rand struct {
	*rand.Rand
}

// New returns a generator seeded with seed.
func New(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Exponential draws from an exponential distribution with the given mean.
// It is used for PoW block intervals and Poisson-process arrivals.
func (r *Rand) Exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// Poisson draws from a Poisson distribution with parameter lambda using
// Knuth's method for small lambda and a normal approximation otherwise.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		n := int(math.Round(r.NormFloat64()*math.Sqrt(lambda) + lambda))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		k++
		p *= r.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// Normal draws from a normal distribution with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return r.NormFloat64()*stddev + mean
}

// LogNormal draws from a log-normal distribution parameterised by the mean
// and standard deviation of the underlying normal.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Pareto draws from a Pareto distribution with scale xm and shape alpha.
// Heavy-tailed draws model workload bursts.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf draws integers in [0, n) with a Zipfian skew s ≥ 1. It is used for
// hot-account access patterns.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over [0, n) with skew s (s > 1) and v = 1.
func NewZipf(r *Rand, s float64, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(r.Rand, s, 1, n-1)}
}

// Next draws the next Zipf-distributed value.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (r *Rand) Jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	f := 1 + (r.Float64()*2-1)*frac
	return time.Duration(float64(d) * f)
}
