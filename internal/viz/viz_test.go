package viz

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLineChartRenders(t *testing.T) {
	var sb strings.Builder
	LineChart(&sb, "demo", []Series{
		{Name: "a", Y: []float64{1, 2, 3, 4, 5}},
		{Name: "b", Y: []float64{5, 4, 3, 2, 1}},
	}, 40, 8)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Fatalf("chart missing elements:\n%s", out)
	}
	if !strings.Contains(out, "5.00") || !strings.Contains(out, "1.00") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestLineChartHandlesEdgeCases(t *testing.T) {
	var sb strings.Builder
	LineChart(&sb, "empty", nil, 40, 8)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
	sb.Reset()
	LineChart(&sb, "flat", []Series{{Name: "x", Y: []float64{2, 2, 2}}}, 40, 8)
	if !strings.Contains(sb.String(), "x") {
		t.Fatal("flat series should still render")
	}
	sb.Reset()
	LineChart(&sb, "nan", []Series{{Name: "x", Y: []float64{1, math.NaN(), 3}}}, 40, 8)
	if sb.Len() == 0 {
		t.Fatal("NaN points should be skipped, not crash")
	}
	sb.Reset()
	LineChart(&sb, "single", []Series{{Name: "x", Y: []float64{42}}}, 40, 8)
	if sb.Len() == 0 {
		t.Fatal("single point should render")
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "tps", []string{"hammer", "caliper"}, []BarGroup{
		{Label: "fabric", Values: []float64{239, 176}},
		{Label: "ethereum", Values: []float64{18.6, 18.2}},
	}, 40)
	out := sb.String()
	if !strings.Contains(out, "fabric hammer") || !strings.Contains(out, "239.00") {
		t.Fatalf("bars missing:\n%s", out)
	}
	// Zero-only chart must not divide by zero.
	sb.Reset()
	BarChart(&sb, "zeros", nil, []BarGroup{{Label: "x", Values: []float64{0}}}, 40)
	if sb.Len() == 0 {
		t.Fatal("zero chart should render")
	}
}

func TestCSVEscaping(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"a", "b"}, [][]string{
		{"plain", `has,comma`},
		{`has"quote`, "has\nnewline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote not doubled:\n%s", out)
	}
}

func TestCSVArityChecked(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"a", "b"}, [][]string{{"only-one"}}); err == nil {
		t.Fatal("short row should error")
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	path, err := WriteCSVFile(dir, "x.csv", []string{"h"}, [][]string{{"1"}, {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "h\n1\n2\n" {
		t.Fatalf("file contents %q", raw)
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"name", "tps"}, [][]string{
		{"fabric", "239"},
		{"ethereum-long-name", "18.6"},
	})
	out := sb.String()
	if !strings.Contains(out, "| name") || !strings.Contains(out, "ethereum-long-name") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header+sep+2 rows", len(lines))
	}
	if len(lines[0]) != len(lines[2]) {
		t.Fatal("rows not aligned")
	}
}
