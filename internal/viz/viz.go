// Package viz is the Grafana-equivalent of the paper's visualization layer:
// it renders time series and grouped bars as terminal charts and exports the
// exact numbers as CSV, one file per reproduced table or figure.
package viz

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Series is one named line of (x, y) points with a shared x grid.
type Series struct {
	Name string
	Y    []float64
}

// LineChart renders one or more series sharing an implicit x axis
// (0..n-1) as an ASCII chart of the given size.
func LineChart(w io.Writer, title string, series []Series, width, height int) {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 14
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if maxLen == 0 || math.IsInf(lo, 1) {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			yFrac := (v - lo) / (hi - lo)
			y := height - 1 - int(yFrac*float64(height-1))
			if y >= 0 && y < height && x >= 0 && x < width {
				grid[y][x] = mark
			}
		}
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.2f ", hi)
		case height - 1:
			label = fmt.Sprintf("%9.2f ", lo)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	fmt.Fprintf(w, "%s%s\n", strings.Repeat(" ", 11), strings.Join(legend, "  "))
}

// BarGroup is one cluster of labelled bars (e.g. one chain with several
// measured values).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart renders horizontally scaled bars grouped by label. valueNames
// labels the positions within each group.
func BarChart(w io.Writer, title string, valueNames []string, groups []BarGroup, width int) {
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, g := range groups {
		for _, v := range g.Values {
			if v > max {
				max = v
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if max == 0 {
		max = 1
	}
	labelW := 0
	for _, g := range groups {
		for i := range g.Values {
			name := valueName(valueNames, i)
			l := len(g.Label) + 1 + len(name)
			if l > labelW {
				labelW = l
			}
		}
	}
	for _, g := range groups {
		for i, v := range g.Values {
			name := valueName(valueNames, i)
			full := g.Label
			if name != "" {
				full += " " + name
			}
			n := int(v / max * float64(width))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "  %-*s |%s %.2f\n", labelW, full, strings.Repeat("=", n), v)
		}
	}
}

func valueName(names []string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return ""
}

// CSV writes a header row and data rows. Every row must have len(header)
// cells.
func CSV(w io.Writer, header []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := write(header); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("viz: row %d has %d cells, header has %d", i, len(row), len(header))
		}
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVFile writes a CSV into dir/name, creating dir if needed.
func WriteCSVFile(dir, name string, header []string, rows [][]string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("viz: create output dir: %w", err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("viz: create %s: %w", path, err)
	}
	defer f.Close()
	if err := CSV(f, header, rows); err != nil {
		return "", err
	}
	return path, nil
}

// Dataset is one named CSV export: a file name plus the header and rows to
// write into it. Experiment CLIs build Datasets from the experiments
// package's *CSV renderers and hand them to Export, so CSV emission lives in
// exactly one place.
type Dataset struct {
	Name   string // file name, e.g. "fig6_chain_comparison.csv"
	Header []string
	Rows   [][]string
}

// Export writes every dataset into dir and logs "wrote <path>" to w. An
// empty dir disables export (the CLIs' -out "" convention).
func Export(w io.Writer, dir string, ds ...Dataset) error {
	if dir == "" {
		return nil
	}
	for _, d := range ds {
		path, err := WriteCSVFile(dir, d.Name, d.Header, d.Rows)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", path)
	}
	return nil
}

// Table renders an aligned text table.
func Table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	printRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range rows {
		printRow(row)
	}
}
