package ycsb

import (
	"math"
	"strconv"
	"testing"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
)

type mapCtx map[string][]byte

func (m mapCtx) Get(k string) ([]byte, bool) { v, ok := m[k]; return v, ok }
func (m mapCtx) Put(k string, v []byte)      { m[k] = v }
func (m mapCtx) Del(k string)                { delete(m, k) }

func loaded(t *testing.T, n int) mapCtx {
	t.Helper()
	ctx := mapCtx{}
	c := Contract{}
	for i := 0; i < n; i++ {
		if err := c.Invoke(ctx, OpInsert, []string{RecordKey(i), "v"}); err != nil {
			t.Fatal(err)
		}
	}
	return ctx
}

func TestCRUDOps(t *testing.T) {
	ctx := loaded(t, 5)
	c := Contract{}
	if err := c.Invoke(ctx, OpRead, []string{RecordKey(0)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(ctx, OpRead, []string{"ghost"}); err == nil {
		t.Fatal("read of absent key should fail")
	}
	if err := c.Invoke(ctx, OpUpdate, []string{RecordKey(0), "new"}); err != nil {
		t.Fatal(err)
	}
	if v, _ := ctx.Get("y:" + RecordKey(0)); string(v) != "new" {
		t.Fatalf("update wrote %q", v)
	}
	if err := c.Invoke(ctx, OpUpdate, []string{"ghost", "x"}); err == nil {
		t.Fatal("update of absent key should fail")
	}
	if err := c.Invoke(ctx, OpRMW, []string{RecordKey(1), "rmw"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(ctx, OpScan, []string{"0", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(ctx, OpScan, []string{"0", "5000"}); err == nil {
		t.Fatal("oversized scan should fail")
	}
	if err := c.Invoke(ctx, "fly", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "A"} {
		if _, err := MixByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := MixByName("z"); err == nil {
		t.Fatal("unknown mix should error")
	}
}

func TestGeneratorMixFrequencies(t *testing.T) {
	p := DefaultProfile()
	p.Workload = "b" // 95/5 read/update
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[g.Next("c", "s").Op]++
	}
	if frac := float64(counts[OpRead]) / n; math.Abs(frac-0.95) > 0.02 {
		t.Fatalf("read fraction %.3f, want ≈0.95", frac)
	}
}

func TestGeneratorInsertsExtendKeySpace(t *testing.T) {
	p := DefaultProfile()
	p.Records = 10
	p.Workload = "d"
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	maxIdx := -1
	for i := 0; i < 500; i++ {
		tx := g.Next("c", "s")
		if tx.Op != OpInsert {
			continue
		}
		idx, _ := strconv.Atoi(tx.Args[0][len("usertable:"):])
		if idx <= maxIdx {
			t.Fatal("inserts must extend the key space monotonically")
		}
		maxIdx = idx
	}
	if maxIdx < 10 {
		t.Fatal("no inserts generated under workload d")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Profile{Records: 0, Workload: "a"}); err == nil {
		t.Fatal("zero records should error")
	}
	if _, err := NewGenerator(Profile{Records: 10, Workload: "zz"}); err == nil {
		t.Fatal("bad workload should error")
	}
	if _, err := NewGenerator(Profile{Records: 10, Mix: Mix{"nothing": 1}}); err == nil {
		t.Fatal("mix selecting nothing should error")
	}
}

// TestYCSBOnChain runs workload A through a simulated chain end to end.
func TestYCSBOnChain(t *testing.T) {
	sched := eventsim.New()
	base := &basechain.Base{}
	base.Init("mini", sched, 1)
	if err := base.Deploy(Contract{}); err != nil {
		t.Fatal(err)
	}
	state := chain.NewState()

	p := DefaultProfile()
	p.Records = 50
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	setup := g.SetupTxs()
	for _, tx := range setup {
		tx.ComputeID()
	}
	receipts := base.ExecuteOrdered(state, setup, 1)
	for _, r := range receipts {
		if r.Status != chain.StatusCommitted {
			t.Fatalf("setup aborted: %s", r.Err)
		}
	}
	work := g.Batch(200, "c", "s")
	for _, tx := range work {
		tx.ComputeID()
	}
	receipts = base.ExecuteOrdered(state, work, 2)
	committed := 0
	for _, r := range receipts {
		if r.Status == chain.StatusCommitted {
			committed++
		}
	}
	if committed != 200 {
		t.Fatalf("%d of 200 committed", committed)
	}
}
