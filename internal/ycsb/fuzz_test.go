package ycsb

import (
	"strconv"
	"strings"
	"testing"

	"hammer/internal/chain"
)

// FuzzYCSBKeys fuzzes the contract with arbitrary operation names, keys and
// values: Invoke must never panic, must only ever touch namespaced "y:"
// storage keys, and successful writes must be readable back.
func FuzzYCSBKeys(f *testing.F) {
	f.Add("insert", "user1", "value", 0, 1)
	f.Add("update", "user1", "v2", 0, 1)
	f.Add("read", "user1", "", 0, 0)
	f.Add("scan", "0", "", 0, 10)
	f.Add("scan", "x", "", -5, 2000)
	f.Add("rmw", "user1", "v3", 0, 0)
	f.Add("drop", "table", "", 9, 9)
	f.Add("insert", "", "", 0, 0)
	f.Add("read", "usertable:\x00", "", 1<<30, 1<<30)
	f.Fuzz(func(t *testing.T, op, key, val string, a, b int) {
		state := chain.NewState()
		// Seed a few canonical records so reads and scans can succeed.
		seed := chain.NewExecutor(state)
		for i := 0; i < 4; i++ {
			if err := (Contract{}).Invoke(seed, OpInsert, []string{RecordKey(i), "seed"}); err != nil {
				t.Fatal(err)
			}
		}
		seed.RWSet().Apply(state, 1)

		ex := chain.NewExecutor(state)
		argSets := [][]string{
			{key, val},
			{key},
			{RecordKey(a % 8), val},
			{strconv.Itoa(a), strconv.Itoa(b)},
			nil,
		}
		for _, args := range argSets {
			err := (Contract{}).Invoke(ex, op, args)
			if err != nil {
				continue
			}
			// A successful write must be immediately visible in-transaction.
			if (op == OpInsert || op == OpUpdate || op == OpRMW) && len(args) == 2 {
				got, ok := ex.Get("y:" + args[0])
				if !ok || string(got) != args[1] {
					t.Fatalf("%s(%q) committed but reads back %q (present=%v)", op, args, got, ok)
				}
			}
		}
		ex.RWSet().Apply(state, 2)
		for _, k := range state.Keys() {
			if !strings.HasPrefix(k, "y:") {
				t.Fatalf("contract escaped its namespace: wrote key %q", k)
			}
		}
	})
}
