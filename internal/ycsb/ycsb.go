// Package ycsb implements a YCSB-style key-value contract — the other
// standard synthetic workload the paper discusses alongside SmallBank
// (§II-B). Records are fixed-size opaque values addressed by key; operations
// are read, update, insert, scan and read-modify-write, weighted per the
// classic YCSB workload mixes (A-E).
package ycsb

import (
	"fmt"
	"strconv"

	"hammer/internal/chain"
)

// Operation names accepted by Invoke.
const (
	OpInsert = "insert" // insert(key, value)
	OpRead   = "read"   // read(key)
	OpUpdate = "update" // update(key, value)
	OpScan   = "scan"   // scan(startIndex, count) over ycsb key space
	OpRMW    = "rmw"    // read-modify-write(key, value)
)

// ContractName is the name under which the contract deploys.
const ContractName = "ycsb"

// Contract is the YCSB key-value store chaincode. The zero value is usable.
type Contract struct{}

var _ chain.Contract = Contract{}

// Name implements chain.Contract.
func (Contract) Name() string { return ContractName }

// Gas implements chain.Contract: scans cost proportionally more.
func (Contract) Gas(op string) uint64 {
	switch op {
	case OpScan:
		return 60000
	case OpRMW:
		return 30000
	case OpInsert, OpUpdate:
		return 21000
	case OpRead:
		return 5000
	default:
		return 21000
	}
}

// RecordKey formats the canonical key for record index i.
func RecordKey(i int) string { return "usertable:" + strconv.Itoa(i) }

func storageKey(k string) string { return "y:" + k }

// Invoke implements chain.Contract.
func (Contract) Invoke(ctx chain.TxContext, op string, args []string) error {
	switch op {
	case OpInsert, OpUpdate:
		if len(args) != 2 {
			return fmt.Errorf("ycsb: %s wants (key, value), got %d args", op, len(args))
		}
		if op == OpUpdate {
			if _, ok := ctx.Get(storageKey(args[0])); !ok {
				return fmt.Errorf("ycsb: update of absent key %q", args[0])
			}
		}
		ctx.Put(storageKey(args[0]), []byte(args[1]))
		return nil

	case OpRead:
		if len(args) != 1 {
			return fmt.Errorf("ycsb: read wants (key), got %d args", len(args))
		}
		if _, ok := ctx.Get(storageKey(args[0])); !ok {
			return fmt.Errorf("ycsb: read of absent key %q", args[0])
		}
		return nil

	case OpScan:
		if len(args) != 2 {
			return fmt.Errorf("ycsb: scan wants (start, count), got %d args", len(args))
		}
		start, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("ycsb: scan start: %w", err)
		}
		count, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("ycsb: scan count: %w", err)
		}
		if count < 0 || count > 1000 {
			return fmt.Errorf("ycsb: scan count %d out of [0,1000]", count)
		}
		for i := start; i < start+count; i++ {
			// Missing records simply end the scan, as in YCSB.
			if _, ok := ctx.Get(storageKey(RecordKey(i))); !ok {
				return nil
			}
		}
		return nil

	case OpRMW:
		if len(args) != 2 {
			return fmt.Errorf("ycsb: rmw wants (key, value), got %d args", len(args))
		}
		old, ok := ctx.Get(storageKey(args[0]))
		if !ok {
			return fmt.Errorf("ycsb: rmw of absent key %q", args[0])
		}
		_ = old
		ctx.Put(storageKey(args[0]), []byte(args[1]))
		return nil

	default:
		return fmt.Errorf("%w: %q", chain.ErrUnknownOp, op)
	}
}

// Mix is a YCSB operation mix.
type Mix map[string]float64

// The classic YCSB workload mixes.
var (
	// WorkloadA: update-heavy (50/50 read/update).
	WorkloadA = Mix{OpRead: 0.5, OpUpdate: 0.5}
	// WorkloadB: read-mostly (95/5).
	WorkloadB = Mix{OpRead: 0.95, OpUpdate: 0.05}
	// WorkloadC: read-only.
	WorkloadC = Mix{OpRead: 1}
	// WorkloadD: read-latest (95/5 read/insert).
	WorkloadD = Mix{OpRead: 0.95, OpInsert: 0.05}
	// WorkloadE: short scans (95/5 scan/insert).
	WorkloadE = Mix{OpScan: 0.95, OpInsert: 0.05}
	// WorkloadF: read-modify-write (50/50 read/rmw).
	WorkloadF = Mix{OpRead: 0.5, OpRMW: 0.5}
)

// MixByName resolves "a".."f" to the classic mixes.
func MixByName(name string) (Mix, error) {
	switch name {
	case "a", "A":
		return WorkloadA, nil
	case "b", "B":
		return WorkloadB, nil
	case "c", "C":
		return WorkloadC, nil
	case "d", "D":
		return WorkloadD, nil
	case "e", "E":
		return WorkloadE, nil
	case "f", "F":
		return WorkloadF, nil
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %q", name)
	}
}
