package ycsb

import (
	"fmt"
	"strconv"
	"strings"

	"hammer/internal/chain"
	"hammer/internal/randx"
)

// Profile configures a YCSB workload.
type Profile struct {
	// Records is the initial table size.
	Records int `json:"records"`
	// ValueBytes is the payload size per record.
	ValueBytes int `json:"value_bytes"`
	// Workload names the classic mix ("a".."f"); Mix overrides it.
	Workload string `json:"workload"`
	Mix      Mix    `json:"-"`
	// Skew > 1 draws keys from a Zipf distribution (YCSB's default access
	// pattern); 0 draws uniformly.
	Skew float64 `json:"skew"`
	// MaxScanLen bounds scan lengths (workload E).
	MaxScanLen int `json:"max_scan_len"`
	// Seed makes generation reproducible.
	Seed int64 `json:"seed"`
}

// DefaultProfile is workload A over 10k records with YCSB's standard zipf.
func DefaultProfile() Profile {
	return Profile{
		Records:    10_000,
		ValueBytes: 100,
		Workload:   "a",
		Skew:       1.1,
		MaxScanLen: 20,
		Seed:       7,
	}
}

// Generator draws YCSB transactions.
type Generator struct {
	profile  Profile
	rng      *randx.Rand
	zipf     *randx.Zipf
	ops      []string
	cum      []float64
	inserted int
	value    string
	nonce    uint64
}

// NewGenerator validates the profile and builds a generator.
func NewGenerator(p Profile) (*Generator, error) {
	if p.Records < 1 {
		return nil, fmt.Errorf("ycsb: need at least 1 record, got %d", p.Records)
	}
	if p.ValueBytes <= 0 {
		p.ValueBytes = 100
	}
	if p.MaxScanLen <= 0 {
		p.MaxScanLen = 20
	}
	mix := p.Mix
	if mix == nil {
		var err error
		mix, err = MixByName(p.Workload)
		if err != nil {
			return nil, err
		}
	}
	g := &Generator{
		profile:  p,
		rng:      randx.New(p.Seed),
		inserted: p.Records,
		value:    strings.Repeat("x", p.ValueBytes),
	}
	if p.Skew > 1 {
		g.zipf = randx.NewZipf(g.rng, p.Skew, uint64(p.Records))
	}
	var total float64
	for _, op := range []string{OpRead, OpUpdate, OpInsert, OpScan, OpRMW} {
		w := mix[op]
		if w <= 0 {
			continue
		}
		total += w
		g.ops = append(g.ops, op)
		g.cum = append(g.cum, total)
	}
	if len(g.ops) == 0 {
		return nil, fmt.Errorf("ycsb: mix selects no operations")
	}
	for i := range g.cum {
		g.cum[i] /= total
	}
	return g, nil
}

// SetupTxs loads the initial table.
func (g *Generator) SetupTxs() []*chain.Transaction {
	txs := make([]*chain.Transaction, g.profile.Records)
	for i := range txs {
		g.nonce++
		txs[i] = &chain.Transaction{
			Contract: ContractName,
			Op:       OpInsert,
			Args:     []string{RecordKey(i), g.value},
			From:     RecordKey(i),
			Nonce:    g.nonce,
		}
	}
	return txs
}

func (g *Generator) pickKey() string {
	if g.zipf != nil {
		return RecordKey(int(g.zipf.Next()))
	}
	return RecordKey(g.rng.Intn(g.profile.Records))
}

// Next draws one benchmark transaction.
func (g *Generator) Next(clientID, serverID string) *chain.Transaction {
	u := g.rng.Float64()
	op := g.ops[len(g.ops)-1]
	for i, c := range g.cum {
		if u <= c {
			op = g.ops[i]
			break
		}
	}
	g.nonce++
	tx := &chain.Transaction{
		ClientID: clientID,
		ServerID: serverID,
		Contract: ContractName,
		Op:       op,
		Nonce:    g.nonce,
	}
	switch op {
	case OpRead:
		key := g.pickKey()
		tx.Args = []string{key}
		tx.From = key
	case OpUpdate, OpRMW:
		key := g.pickKey()
		tx.Args = []string{key, g.value}
		tx.From = key
	case OpInsert:
		key := RecordKey(g.inserted)
		g.inserted++
		tx.Args = []string{key, g.value}
		tx.From = key
	case OpScan:
		start := g.rng.Intn(g.profile.Records)
		count := 1 + g.rng.Intn(g.profile.MaxScanLen)
		tx.Args = []string{strconv.Itoa(start), strconv.Itoa(count)}
		tx.From = RecordKey(start)
	}
	return tx
}

// Batch draws n transactions.
func (g *Generator) Batch(n int, clientID, serverID string) []*chain.Transaction {
	txs := make([]*chain.Transaction, n)
	for i := range txs {
		txs[i] = g.Next(clientID, serverID)
	}
	return txs
}
