package chain

import (
	"fmt"
	"sort"
	"testing"
)

// mapBackend is a minimal StateBackend used to prove the State seam
// delegates every method (and only then).
type mapBackend struct {
	data  map[string]VersionedValue
	calls map[string]int
}

func newMapBackend() *mapBackend {
	return &mapBackend{data: make(map[string]VersionedValue), calls: make(map[string]int)}
}

func (b *mapBackend) Get(key string) ([]byte, uint64, bool) {
	b.calls["get"]++
	vv, ok := b.data[key]
	return vv.Value, vv.Version, ok
}

func (b *mapBackend) Set(key string, val []byte, version uint64) {
	b.calls["set"]++
	b.data[key] = VersionedValue{Value: val, Version: version}
}

func (b *mapBackend) Delete(key string) {
	b.calls["delete"]++
	delete(b.data, key)
}

func (b *mapBackend) Len() int {
	b.calls["len"]++
	return len(b.data)
}

func (b *mapBackend) Keys() []string {
	b.calls["keys"]++
	keys := make([]string, 0, len(b.data))
	for k := range b.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestStateDelegatesToBackend(t *testing.T) {
	b := newMapBackend()
	s := NewStateOn(b)
	if s.Backend() != StateBackend(b) {
		t.Fatalf("Backend() = %v, want the mounted backend", s.Backend())
	}

	s.Set("a", []byte("1"), 7)
	s.Set("b", []byte("2"), 8)
	if val, ver, ok := s.Get("a"); !ok || string(val) != "1" || ver != 7 {
		t.Fatalf("Get(a) = %q v%d ok=%v", val, ver, ok)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported ok")
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	if keys := s.Keys(); len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	s.Delete("a")
	if n := s.Len(); n != 1 {
		t.Fatalf("Len after delete = %d, want 1", n)
	}
	for _, m := range []string{"get", "set", "delete", "len", "keys"} {
		if b.calls[m] == 0 {
			t.Errorf("backend method %s never called", m)
		}
	}
}

func TestNewStateOnNilIsMapState(t *testing.T) {
	s := NewStateOn(nil)
	if s.Backend() != nil {
		t.Fatalf("nil backend should mount the in-RAM map, got %v", s.Backend())
	}
	s.Set("k", []byte("v"), 1)
	if val, _, ok := s.Get("k"); !ok || string(val) != "v" {
		t.Fatalf("Get(k) = %q ok=%v", val, ok)
	}
}

// TestStageWriteWideSet pins the rewrite-in-place semantics of stageWrite
// after the O(writes²) scan was replaced with the key→index map: a wide
// write set stays one entry per key, with the last value winning.
func TestStageWriteWideSet(t *testing.T) {
	const keys = 5000
	e := NewExecutor(NewState())
	for i := 0; i < keys; i++ {
		e.Put(fmt.Sprintf("k%04d", i), []byte("first"))
	}
	for i := 0; i < keys; i++ {
		e.Put(fmt.Sprintf("k%04d", i), []byte("second"))
	}
	rw := e.RWSet()
	if len(rw.Writes) != keys {
		t.Fatalf("writes = %d entries, want %d (one per key)", len(rw.Writes), keys)
	}
	for i, w := range rw.Writes {
		if string(w.Value) != "second" {
			t.Fatalf("write %d (%s) = %q, want rewrite to win", i, w.Key, w.Value)
		}
	}
	// Deletions overwrite in place too.
	e.Del("k0000")
	if len(e.RWSet().Writes) != keys {
		t.Fatalf("delete of staged key appended instead of updating: %d entries", len(e.RWSet().Writes))
	}
	if e.RWSet().Writes[0].Value != nil {
		t.Fatalf("delete did not stage a nil value: %q", e.RWSet().Writes[0].Value)
	}
}

// TestStageWriteRestageAllocs guards the hot path: re-staging an
// already-staged key must not allocate at all.
func TestStageWriteRestageAllocs(t *testing.T) {
	e := NewExecutor(NewState())
	val := []byte("v")
	e.Put("hot", val)
	allocs := testing.AllocsPerRun(1000, func() {
		e.Put("hot", val)
	})
	if allocs > 0 {
		t.Fatalf("re-staging an existing key allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkStageWriteWide is the regression bench for the quadratic scan:
// staging N distinct keys is ~O(N) now, so per-op time must stay flat as
// the write set widens.
func BenchmarkStageWriteWide(b *testing.B) {
	for _, width := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("keys=%d", width), func(b *testing.B) {
			keys := make([]string, width)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%06d", i)
			}
			val := []byte("value")
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				e := NewExecutor(NewState())
				for _, k := range keys {
					e.Put(k, val)
				}
			}
			b.ReportMetric(float64(width), "keys/op")
		})
	}
}
