package chain

import (
	"errors"
	"fmt"
	"time"
)

// TxContext is the world-state view a contract sees while executing one
// transaction. Reads observe earlier writes of the same transaction.
type TxContext interface {
	// Get returns the current value of key; ok is false for absent keys.
	Get(key string) (val []byte, ok bool)
	// Put writes key.
	Put(key string, val []byte)
	// Del removes key.
	Del(key string)
}

// Contract is a deployable smart contract. Invoke must be deterministic:
// given the same state and arguments it must perform the same reads and
// writes on every node.
type Contract interface {
	// Name is the contract's registered name.
	Name() string
	// Invoke executes op with args against ctx. A returned error aborts the
	// transaction (its writes are discarded) without failing the block.
	Invoke(ctx TxContext, op string, args []string) error
	// Gas estimates the execution cost of op, charged against block gas
	// caps on chains that meter gas.
	Gas(op string) uint64
}

// ErrUnknownOp is returned by contracts for unsupported operations.
var ErrUnknownOp = errors.New("chain: unknown contract operation")

// ErrUnknownContract is returned when a transaction names a contract that
// is not deployed on the chain.
var ErrUnknownContract = errors.New("chain: unknown contract")

// ErrAlreadyDeployed is returned by Deploy for a duplicate contract name.
var ErrAlreadyDeployed = errors.New("chain: contract already deployed")

// Blockchain is the generic system-under-test interface (paper §III-A2).
// Every simulated chain implements it, and the Hammer framework drives SUTs
// exclusively through it (in-process or via the JSON-RPC bridge), which is
// what makes the framework architecture- and language-agnostic.
type Blockchain interface {
	// Name identifies the chain implementation (e.g. "ethereum").
	Name() string
	// Deploy registers a contract. It must be called before Start.
	Deploy(c Contract) error
	// Submit enqueues a signed transaction and returns its ID, or an error
	// when the chain rejects it at admission (e.g. overload, bad
	// signature). Admission errors model node-side request rejection under
	// overload (paper §V-D).
	Submit(tx *Transaction) (TxID, error)
	// Shards reports the number of shards (1 for non-sharded chains).
	Shards() int
	// Height returns the height of the newest sealed block on shard.
	Height(shard int) uint64
	// BlockAt returns the sealed block at height on shard.
	BlockAt(shard int, height uint64) (*Block, bool)
	// PendingTxs reports transactions admitted but not yet committed, for
	// monitoring.
	PendingTxs() int
	// Start begins block production; Stop halts it.
	Start()
	Stop()
}

// AuditLogger is implemented by chains that keep a node-side commit log.
// The correctness experiment (paper §V-C) compares the framework's measured
// statistics against this ground truth, standing in for parsing Fabric peer
// logs.
type AuditLogger interface {
	// AuditLog returns every commit event the node observed.
	AuditLog() []AuditEntry
}

// AuditEntry is one node-side commit record.
type AuditEntry struct {
	TxID   TxID
	Status TxStatus
	Shard  int
	Height uint64
	Time   time.Duration
}

// ErrOverloaded is returned by Submit when a node sheds load; the paper
// observes Fabric nodes rejecting requests beyond their processing capacity
// (§V-D).
var ErrOverloaded = errors.New("chain: node overloaded, transaction rejected")

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("chain: chain is stopped")

// ErrUnavailable is returned by Submit when the nodes that would admit the
// transaction are crashed or unreachable (fault injection, internal/chaos).
// Unlike ErrStopped it is transient: drivers with retry enabled resubmit
// after a backoff.
var ErrUnavailable = errors.New("chain: node unavailable")

// ErrDuplicateTx is the abort reason stamped on the receipt of a transaction
// whose ID already has a committed receipt — the replay protection every
// chain applies at validation time. Duplicates arise when the driver's
// timeout/retry path resubmits a transaction that was stalled (not lost) by a
// fault; the chain must commit such an ID at most once or conservation and
// audit invariants break.
var ErrDuplicateTx = errors.New("chain: duplicate transaction")

// ValidateShard normalises and checks a shard index against a chain.
func ValidateShard(bc Blockchain, shard int) error {
	if shard < 0 || shard >= bc.Shards() {
		return fmt.Errorf("chain: shard %d out of range [0,%d)", shard, bc.Shards())
	}
	return nil
}
