package chain

import (
	"encoding/binary"
	"fmt"
)

// maxDecodeArgs bounds the argument count a decoded transaction may claim.
// The wire format length-prefixes each argument with 4 bytes, so any honest
// payload satisfies this; the bound exists so a corrupt count field cannot
// drive a huge allocation before the truncation check fires.
const maxDecodeArgs = 1 << 16

// DecodeTransaction parses the deterministic wire encoding produced by
// Transaction.Encode and recomputes the content ID. It is the inverse the
// RPC layer needs to accept signed payloads from external clients: for every
// transaction, DecodeTransaction(tx.Encode()) reproduces the signed fields
// exactly. Signature, PubKey and SubmittedAt are not part of the signed
// payload and are left zero. Truncated input, corrupt length prefixes and
// trailing bytes are all errors, never panics.
func DecodeTransaction(raw []byte) (*Transaction, error) {
	d := txDecoder{buf: raw}
	tx := &Transaction{}
	tx.ClientID = d.str()
	tx.ServerID = d.str()
	tx.Chain = d.str()
	tx.Contract = d.str()
	tx.Op = d.str()
	nargs := d.u32()
	if d.err == nil && nargs > 0 {
		if nargs > maxDecodeArgs || uint64(nargs)*4 > uint64(len(d.buf)-d.off) {
			return nil, fmt.Errorf("chain: decode transaction: argument count %d exceeds remaining payload", nargs)
		}
		tx.Args = make([]string, 0, nargs)
		for i := uint32(0); i < nargs && d.err == nil; i++ {
			tx.Args = append(tx.Args, d.str())
		}
	}
	tx.From = d.str()
	tx.Nonce = d.u64()
	tx.Gas = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(raw) {
		return nil, fmt.Errorf("chain: decode transaction: %d trailing bytes", len(raw)-d.off)
	}
	tx.ComputeID()
	return tx, nil
}

// txDecoder is a cursor over the wire encoding; the first failure sticks and
// every later read returns zero values.
type txDecoder struct {
	buf []byte
	off int
	err error
}

func (d *txDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("chain: decode transaction: truncated %s at offset %d", what, d.off)
	}
}

func (d *txDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("length")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *txDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("integer")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *txDecoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if uint64(n) > uint64(len(d.buf)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
