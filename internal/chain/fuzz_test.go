package chain

import (
	"bytes"
	"reflect"
	"testing"
)

func fuzzSeedTxs() []*Transaction {
	return []*Transaction{
		{},
		{
			ClientID: "client-0", ServerID: "server-0", Chain: "ethereum",
			Contract: "smallbank", Op: "transfer",
			Args: []string{"acct1", "acct2", "50"},
			From: "acct1", Nonce: 7, Gas: 21000,
		},
		{
			ClientID: "c", Op: "create",
			Args: []string{"", "1000", "500"},
			Gas:  ^uint64(0),
		},
		{
			Chain: "meepo", Contract: "ycsb", Op: "scan",
			Args: []string{"0", "10"}, From: "u\x00ser", Nonce: ^uint64(0),
		},
	}
}

// FuzzTxDecode fuzzes the wire decoder: arbitrary bytes must never panic,
// and any bytes that decode must round-trip bit-for-bit through Encode with
// a stable content ID.
func FuzzTxDecode(f *testing.F) {
	for _, tx := range fuzzSeedTxs() {
		f.Add(tx.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x00}, 48))
	f.Fuzz(func(t *testing.T, raw []byte) {
		tx, err := DecodeTransaction(raw)
		if err != nil {
			return
		}
		re := tx.Encode()
		if !bytes.Equal(re, raw) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", raw, re)
		}
		again, err := DecodeTransaction(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.ID != tx.ID {
			t.Fatalf("content ID unstable: %s vs %s", tx.ID, again.ID)
		}
	})
}

func TestDecodeTransactionRoundTrip(t *testing.T) {
	for _, tx := range fuzzSeedTxs() {
		tx.ComputeID()
		got, err := DecodeTransaction(tx.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", tx, err)
		}
		if got.ID != tx.ID || got.Op != tx.Op || got.From != tx.From ||
			got.Nonce != tx.Nonce || got.Gas != tx.Gas ||
			!reflect.DeepEqual(append([]string{}, got.Args...), append([]string{}, tx.Args...)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tx)
		}
	}
}

func TestDecodeTransactionRejectsCorruptPayloads(t *testing.T) {
	valid := fuzzSeedTxs()[1].Encode()
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": valid[:3],
		"truncated middle": valid[:len(valid)/2],
		"truncated nonce":  valid[:len(valid)-9],
		"trailing bytes":   append(append([]byte{}, valid...), 0x00),
		"huge arg count": func() []byte {
			// Five empty strings, then an argument count far beyond the
			// remaining payload.
			b := bytes.Repeat([]byte{0}, 20)
			return append(b, 0xff, 0xff, 0xff, 0xff)
		}(),
	}
	for name, raw := range cases {
		if _, err := DecodeTransaction(raw); err == nil {
			t.Errorf("%s: decode accepted corrupt payload %x", name, raw)
		}
	}
}
