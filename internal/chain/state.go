package chain

import (
	"fmt"
	"sort"
	"sync"
)

// VersionedValue is a world-state entry with the version (commit sequence)
// of its last write, as used by MVCC validation in Fabric-style chains.
type VersionedValue struct {
	Value   []byte
	Version uint64
}

// State is a versioned key-value world state. The zero value is empty and
// ready to use. State is safe for concurrent readers and writers; the
// simulated chains additionally serialise commits through their event loop.
type State struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
}

// NewState returns an empty world state.
func NewState() *State {
	return &State{data: make(map[string]VersionedValue)}
}

// Get returns the value and version for key. ok is false when the key has
// never been written.
func (s *State) Get(key string) (val []byte, version uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vv, ok := s.data[key]
	if !ok {
		return nil, 0, false
	}
	return vv.Value, vv.Version, true
}

// Set writes key at the given version.
func (s *State) Set(key string, val []byte, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string]VersionedValue)
	}
	s.data[key] = VersionedValue{Value: val, Version: version}
}

// Delete removes key.
func (s *State) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// Len reports the number of live keys.
func (s *State) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Keys returns all keys in sorted order (used by audits and tests).
func (s *State) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ReadEntry records a key read during simulated execution together with the
// version observed, for MVCC validation.
type ReadEntry struct {
	Key     string
	Version uint64
	// Exists distinguishes a read of an absent key (version 0) from a read
	// of a key genuinely written at version 0.
	Exists bool
}

// WriteEntry records a key written during simulated execution.
type WriteEntry struct {
	Key   string
	Value []byte
}

// RWSet is the read-write set produced by endorsing (executing) a
// transaction against a state snapshot.
type RWSet struct {
	Reads  []ReadEntry
	Writes []WriteEntry
}

// Keys returns the union of read and written keys, deduplicated and sorted.
func (rw *RWSet) Keys() []string {
	set := make(map[string]struct{}, len(rw.Reads)+len(rw.Writes))
	for _, r := range rw.Reads {
		set[r.Key] = struct{}{}
	}
	for _, w := range rw.Writes {
		set[w.Key] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Validate checks the read set against the current state: every read must
// still observe the version it saw at execution time. It returns nil when
// the set is still valid, or a descriptive conflict error.
func (rw *RWSet) Validate(s *State) error {
	for _, r := range rw.Reads {
		_, ver, ok := s.Get(r.Key)
		if ok != r.Exists || (ok && ver != r.Version) {
			return fmt.Errorf("chain: mvcc conflict on %q: read version %d (exists=%v), now %d (exists=%v)",
				r.Key, r.Version, r.Exists, ver, ok)
		}
	}
	return nil
}

// Apply installs the write set at the given commit version.
func (rw *RWSet) Apply(s *State, version uint64) {
	for _, w := range rw.Writes {
		if w.Value == nil {
			s.Delete(w.Key)
			continue
		}
		s.Set(w.Key, w.Value, version)
	}
}

// Executor runs a transaction against a state snapshot and records its
// read-write set. It implements the TxContext seen by contracts.
type Executor struct {
	state   *State
	rwset   RWSet
	pending map[string][]byte
}

// NewExecutor builds an executor over the given state.
func NewExecutor(state *State) *Executor {
	return &Executor{state: state, pending: make(map[string][]byte)}
}

// Get reads key, preferring this transaction's own uncommitted writes
// (read-your-writes), and records the read in the RW set otherwise.
func (e *Executor) Get(key string) ([]byte, bool) {
	if v, ok := e.pending[key]; ok {
		return v, v != nil
	}
	val, ver, ok := e.state.Get(key)
	e.rwset.Reads = append(e.rwset.Reads, ReadEntry{Key: key, Version: ver, Exists: ok})
	return val, ok
}

// Put stages a write to key.
func (e *Executor) Put(key string, val []byte) {
	if val == nil {
		val = []byte{}
	}
	e.pending[key] = val
	e.stageWrite(key, val)
}

// Del stages a deletion of key.
func (e *Executor) Del(key string) {
	e.pending[key] = nil
	e.stageWrite(key, nil)
}

func (e *Executor) stageWrite(key string, val []byte) {
	for i := range e.rwset.Writes {
		if e.rwset.Writes[i].Key == key {
			e.rwset.Writes[i].Value = val
			return
		}
	}
	e.rwset.Writes = append(e.rwset.Writes, WriteEntry{Key: key, Value: val})
}

// RWSet returns the recorded read-write set.
func (e *Executor) RWSet() *RWSet { return &e.rwset }
