package chain

import (
	"fmt"
	"sort"
	"sync"
)

// VersionedValue is a world-state entry with the version (commit sequence)
// of its last write, as used by MVCC validation in Fabric-style chains.
type VersionedValue struct {
	Value   []byte
	Version uint64
}

// StateBackend is the storage engine behind a State. The in-RAM map is the
// default; internal/store/pagedstate provides a disk-backed paged engine so
// runs with 10M+ accounts keep a bounded heap. Backends own their
// concurrency control: every method must be safe for concurrent callers.
//
// Contract (shared with the map backend, pinned by invariant tests):
//   - Get returns the value and version of the last Set; ok is false for a
//     key never written or deleted since.
//   - Set stores an independent copy semantics-wise: callers may not mutate
//     val after the call, and backends may not hand out aliases that a later
//     Set mutates in place.
//   - Keys returns every live key in ascending order.
type StateBackend interface {
	Get(key string) (val []byte, version uint64, ok bool)
	Set(key string, val []byte, version uint64)
	Delete(key string)
	Len() int
	Keys() []string
}

// StateFactory constructs the world state a chain (or one of its shards)
// commits into. A nil factory means the in-RAM map backend. Factories are
// called once per state instance, so a sharded chain gets independent
// stores per shard.
type StateFactory func() *State

// NewStateFrom invokes the factory, or NewState when it is nil — the
// one-liner every chain constructor uses to honour its Config.State seam.
func NewStateFrom(f StateFactory) *State {
	if f == nil {
		return NewState()
	}
	return f()
}

// State is a versioned key-value world state. The zero value is empty and
// ready to use. State is safe for concurrent readers and writers; the
// simulated chains additionally serialise commits through their event loop.
//
// With no backend attached the State is the original mutex-guarded in-RAM
// map (the hot path pays nothing for the seam); NewStateOn mounts any
// StateBackend — the paged disk store — behind the identical interface.
type State struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
	// backend, when non-nil, replaces the inline map entirely. Backends do
	// their own locking, so delegated calls skip State.mu.
	backend StateBackend
}

// NewState returns an empty world state on the in-RAM map backend.
func NewState() *State {
	return &State{data: make(map[string]VersionedValue)}
}

// NewStateOn returns a world state served by the given backend. A nil
// backend is equivalent to NewState.
func NewStateOn(b StateBackend) *State {
	if b == nil {
		return NewState()
	}
	return &State{backend: b}
}

// Backend returns the mounted storage engine, or nil for the in-RAM map.
// Callers use it to reach engine-specific surface (stats, snapshots, Close)
// behind the State seam.
func (s *State) Backend() StateBackend { return s.backend }

// Get returns the value and version for key. ok is false when the key has
// never been written.
func (s *State) Get(key string) (val []byte, version uint64, ok bool) {
	if s.backend != nil {
		return s.backend.Get(key)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	vv, ok := s.data[key]
	if !ok {
		return nil, 0, false
	}
	return vv.Value, vv.Version, true
}

// Set writes key at the given version.
func (s *State) Set(key string, val []byte, version uint64) {
	if s.backend != nil {
		s.backend.Set(key, val, version)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string]VersionedValue)
	}
	s.data[key] = VersionedValue{Value: val, Version: version}
}

// Delete removes key.
func (s *State) Delete(key string) {
	if s.backend != nil {
		s.backend.Delete(key)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// Len reports the number of live keys.
func (s *State) Len() int {
	if s.backend != nil {
		return s.backend.Len()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Keys returns all keys in sorted order (used by audits and tests).
func (s *State) Keys() []string {
	if s.backend != nil {
		return s.backend.Keys()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ReadEntry records a key read during simulated execution together with the
// version observed, for MVCC validation.
type ReadEntry struct {
	Key     string
	Version uint64
	// Exists distinguishes a read of an absent key (version 0) from a read
	// of a key genuinely written at version 0.
	Exists bool
}

// WriteEntry records a key written during simulated execution.
type WriteEntry struct {
	Key   string
	Value []byte
}

// RWSet is the read-write set produced by endorsing (executing) a
// transaction against a state snapshot.
type RWSet struct {
	Reads  []ReadEntry
	Writes []WriteEntry
}

// Keys returns the union of read and written keys, deduplicated and sorted.
func (rw *RWSet) Keys() []string {
	set := make(map[string]struct{}, len(rw.Reads)+len(rw.Writes))
	for _, r := range rw.Reads {
		set[r.Key] = struct{}{}
	}
	for _, w := range rw.Writes {
		set[w.Key] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Validate checks the read set against the current state: every read must
// still observe the version it saw at execution time. It returns nil when
// the set is still valid, or a descriptive conflict error.
func (rw *RWSet) Validate(s *State) error {
	for _, r := range rw.Reads {
		_, ver, ok := s.Get(r.Key)
		if ok != r.Exists || (ok && ver != r.Version) {
			return fmt.Errorf("chain: mvcc conflict on %q: read version %d (exists=%v), now %d (exists=%v)",
				r.Key, r.Version, r.Exists, ver, ok)
		}
	}
	return nil
}

// Apply installs the write set at the given commit version.
func (rw *RWSet) Apply(s *State, version uint64) {
	for _, w := range rw.Writes {
		if w.Value == nil {
			s.Delete(w.Key)
			continue
		}
		s.Set(w.Key, w.Value, version)
	}
}

// Executor runs a transaction against a state snapshot and records its
// read-write set. It implements the TxContext seen by contracts.
type Executor struct {
	state   *State
	rwset   RWSet
	pending map[string][]byte
	// writeIdx maps a staged key to its slot in rwset.Writes so repeated
	// writes update in place in O(1); the slice scan it replaces made wide
	// write sets (IOHeavy batches, Analytics aggregates) quadratic.
	writeIdx map[string]int
}

// NewExecutor builds an executor over the given state.
func NewExecutor(state *State) *Executor {
	return &Executor{state: state, pending: make(map[string][]byte)}
}

// Get reads key, preferring this transaction's own uncommitted writes
// (read-your-writes), and records the read in the RW set otherwise.
func (e *Executor) Get(key string) ([]byte, bool) {
	if v, ok := e.pending[key]; ok {
		return v, v != nil
	}
	val, ver, ok := e.state.Get(key)
	e.rwset.Reads = append(e.rwset.Reads, ReadEntry{Key: key, Version: ver, Exists: ok})
	return val, ok
}

// Put stages a write to key.
func (e *Executor) Put(key string, val []byte) {
	if val == nil {
		val = []byte{}
	}
	e.pending[key] = val
	e.stageWrite(key, val)
}

// Del stages a deletion of key.
func (e *Executor) Del(key string) {
	e.pending[key] = nil
	e.stageWrite(key, nil)
}

func (e *Executor) stageWrite(key string, val []byte) {
	if i, ok := e.writeIdx[key]; ok {
		e.rwset.Writes[i].Value = val
		return
	}
	if e.writeIdx == nil {
		e.writeIdx = make(map[string]int)
	}
	e.writeIdx[key] = len(e.rwset.Writes)
	e.rwset.Writes = append(e.rwset.Writes, WriteEntry{Key: key, Value: val})
}

// RWSet returns the recorded read-write set.
func (e *Executor) RWSet() *RWSet { return &e.rwset }
