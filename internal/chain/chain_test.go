package chain

import (
	"encoding/json"
	"testing"
	"testing/quick"
	"time"
)

func sampleTx() *Transaction {
	return &Transaction{
		ClientID: "client-1",
		ServerID: "server-0",
		Chain:    "fabric",
		Contract: "smallbank",
		Op:       "transfer",
		Args:     []string{"a", "b", "10"},
		From:     "a",
		Nonce:    7,
		Gas:      40000,
	}
}

func TestTxIDDeterministic(t *testing.T) {
	a, b := sampleTx(), sampleTx()
	if a.ComputeID() != b.ComputeID() {
		t.Fatal("identical transactions should hash identically")
	}
	b.Args[2] = "11"
	if a.ComputeID() == b.ComputeID() {
		t.Fatal("different args should change the ID")
	}
}

func TestTxEncodeInjective(t *testing.T) {
	// Field-boundary confusion check: moving a byte between adjacent
	// fields must change the encoding.
	a := &Transaction{ClientID: "ab", ServerID: "c"}
	b := &Transaction{ClientID: "a", ServerID: "bc"}
	if a.ComputeID() == b.ComputeID() {
		t.Fatal("length-prefixed encoding should distinguish field boundaries")
	}
}

func TestTxIDJSONRoundTrip(t *testing.T) {
	tx := sampleTx()
	tx.ComputeID()
	raw, err := json.Marshal(tx)
	if err != nil {
		t.Fatal(err)
	}
	decoded := &Transaction{}
	if err := json.Unmarshal(raw, decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != tx.ID || decoded.Op != tx.Op || decoded.Args[2] != "10" {
		t.Fatalf("roundtrip mismatch: %+v", decoded)
	}
}

func TestParseTxIDErrors(t *testing.T) {
	if _, err := ParseTxID("zz"); err == nil {
		t.Fatal("bad hex should error")
	}
	if _, err := ParseTxID("abcd"); err == nil {
		t.Fatal("short id should error")
	}
	tx := sampleTx()
	id := tx.ComputeID()
	parsed, err := ParseTxID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Fatal("ParseTxID(String()) should round-trip")
	}
}

func TestBlockSealChainsHashes(t *testing.T) {
	tx := sampleTx()
	tx.ComputeID()
	b1 := &Block{Txs: []*Transaction{tx}, Timestamp: time.Second}
	b1.Seal()
	if b1.BlockHash == (Hash{}) {
		t.Fatal("seal should produce a non-zero hash")
	}
	b2 := &Block{PrevHash: b1.BlockHash, Height: 2}
	b2.Seal()
	if b2.BlockHash == b1.BlockHash {
		t.Fatal("different blocks should hash differently")
	}
}

func TestMerkleRootProperties(t *testing.T) {
	empty := MerkleRoot(nil)
	if empty == (Hash{}) {
		t.Fatal("empty root should still be defined")
	}
	a := MerkleRoot([][]byte{[]byte("x"), []byte("y")})
	b := MerkleRoot([][]byte{[]byte("y"), []byte("x")})
	if a == b {
		t.Fatal("merkle root should depend on leaf order")
	}
	odd := MerkleRoot([][]byte{[]byte("x"), []byte("y"), []byte("z")})
	if odd == a {
		t.Fatal("extra leaf should change the root")
	}
	// Determinism.
	if MerkleRoot([][]byte{[]byte("x"), []byte("y")}) != a {
		t.Fatal("merkle root should be deterministic")
	}
}

func TestStateVersioning(t *testing.T) {
	s := NewState()
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("empty state should miss")
	}
	s.Set("k", []byte("v1"), 1)
	v, ver, ok := s.Get("k")
	if !ok || string(v) != "v1" || ver != 1 {
		t.Fatalf("got %q v%d ok=%v", v, ver, ok)
	}
	s.Set("k", []byte("v2"), 5)
	_, ver, _ = s.Get("k")
	if ver != 5 {
		t.Fatalf("version %d, want 5", ver)
	}
	s.Delete("k")
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("deleted key should miss")
	}
}

func TestExecutorReadYourWrites(t *testing.T) {
	s := NewState()
	s.Set("a", []byte("1"), 1)
	ex := NewExecutor(s)
	ex.Put("a", []byte("2"))
	if v, ok := ex.Get("a"); !ok || string(v) != "2" {
		t.Fatalf("read-your-writes broken: %q ok=%v", v, ok)
	}
	// The read of our own write must not appear in the read set.
	if len(ex.RWSet().Reads) != 0 {
		t.Fatalf("own-write read leaked into read set: %+v", ex.RWSet().Reads)
	}
	ex.Del("a")
	if _, ok := ex.Get("a"); ok {
		t.Fatal("deleted-in-tx key should read as absent")
	}
}

func TestRWSetValidateDetectsConflicts(t *testing.T) {
	s := NewState()
	s.Set("a", []byte("1"), 1)

	ex := NewExecutor(s)
	ex.Get("a")
	ex.Put("a", []byte("2"))
	rw := ex.RWSet()
	if err := rw.Validate(s); err != nil {
		t.Fatalf("unchanged state should validate: %v", err)
	}
	// Another writer commits in between.
	s.Set("a", []byte("9"), 2)
	if err := rw.Validate(s); err == nil {
		t.Fatal("version bump should invalidate the read set")
	}
}

func TestRWSetValidateAbsentKey(t *testing.T) {
	s := NewState()
	ex := NewExecutor(s)
	ex.Get("ghost")
	rw := ex.RWSet()
	if err := rw.Validate(s); err != nil {
		t.Fatalf("absent key unchanged should validate: %v", err)
	}
	s.Set("ghost", []byte("now"), 1)
	if err := rw.Validate(s); err == nil {
		t.Fatal("key appearing should invalidate a read-of-absent")
	}
}

func TestRWSetApplyAndKeys(t *testing.T) {
	s := NewState()
	ex := NewExecutor(s)
	ex.Put("b", []byte("2"))
	ex.Put("a", []byte("1"))
	ex.Get("c")
	rw := ex.RWSet()
	keys := rw.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys %v, want [a b c]", keys)
	}
	rw.Apply(s, 9)
	if _, ver, ok := s.Get("a"); !ok || ver != 9 {
		t.Fatal("apply should install writes at the commit version")
	}
}

func TestTxStatusStrings(t *testing.T) {
	cases := map[TxStatus]string{
		StatusPending:   "pending",
		StatusCommitted: "committed",
		StatusAborted:   "aborted",
		StatusRejected:  "rejected",
		StatusTimedOut:  "timed_out",
		TxStatus(99):    "TxStatus(99)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d → %q, want %q", int(st), st.String(), want)
		}
	}
}

// TestTxIDQuickInjective property-tests that distinct argument lists yield
// distinct IDs.
func TestTxIDQuickInjective(t *testing.T) {
	f := func(a, b string, n1, n2 uint64) bool {
		t1 := &Transaction{Op: a, Nonce: n1}
		t2 := &Transaction{Op: b, Nonce: n2}
		same := a == b && n1 == n2
		return (t1.ComputeID() == t2.ComputeID()) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashJSONRoundTrip(t *testing.T) {
	var h Hash
	h[0] = 0xab
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hash
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("hash JSON roundtrip mismatch")
	}
	if err := json.Unmarshal([]byte(`"zz"`), &back); err == nil {
		t.Fatal("bad hex should error")
	}
	if err := json.Unmarshal([]byte(`"abcd"`), &back); err == nil {
		t.Fatal("short hash should error")
	}
}
