package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"
)

// Hash is a 32-byte block or Merkle hash.
type Hash [32]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// MarshalJSON renders the hash as a hex string.
func (h Hash) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.String())
}

// UnmarshalJSON parses a hex string.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("chain: hash: %w", err)
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("chain: hash: %w", err)
	}
	if len(raw) != len(h) {
		return fmt.Errorf("chain: hash: want %d bytes, got %d", len(h), len(raw))
	}
	copy(h[:], raw)
	return nil
}

// Block is a committed batch of transactions on one shard. Non-sharded
// chains use shard 0 exclusively.
type Block struct {
	Shard     int           `json:"shard"`
	Height    uint64        `json:"height"`
	Timestamp time.Duration `json:"timestamp"`
	PrevHash  Hash          `json:"prev_hash"`
	TxRoot    Hash          `json:"tx_root"`
	BlockHash Hash          `json:"block_hash"`
	// Txs are the transactions included in order; Receipts align 1:1.
	Txs      []*Transaction `json:"txs"`
	Receipts []*Receipt     `json:"receipts"`
	// Proposer identifies the node that produced the block.
	Proposer string `json:"proposer"`
}

// Seal computes the Merkle root over the transaction IDs and the block hash
// over the header fields. Chains call it once the tx set is final.
func (b *Block) Seal() {
	ids := make([][]byte, len(b.Txs))
	for i, tx := range b.Txs {
		id := tx.ID
		ids[i] = id[:]
	}
	b.TxRoot = MerkleRoot(ids)

	h := sha256.New()
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], uint64(b.Shard))
	h.Write(u[:])
	binary.BigEndian.PutUint64(u[:], b.Height)
	h.Write(u[:])
	binary.BigEndian.PutUint64(u[:], uint64(b.Timestamp))
	h.Write(u[:])
	h.Write(b.PrevHash[:])
	h.Write(b.TxRoot[:])
	h.Write([]byte(b.Proposer))
	copy(b.BlockHash[:], h.Sum(nil))
}

// CommittedIDs returns the IDs of transactions whose receipt says committed.
func (b *Block) CommittedIDs() []TxID {
	ids := make([]TxID, 0, len(b.Receipts))
	for _, r := range b.Receipts {
		if r.Status == StatusCommitted {
			ids = append(ids, r.TxID)
		}
	}
	return ids
}

// MerkleRoot computes a binary SHA-256 Merkle root over the leaves. An odd
// node at any level is paired with itself; zero leaves hash to the empty
// root.
func MerkleRoot(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return sha256.Sum256(nil)
	}
	level := make([]Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = sha256.Sum256(leaf)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i
			}
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[j][:])
			var out Hash
			copy(out[:], h.Sum(nil))
			next = append(next, out)
		}
		level = next
	}
	return level[0]
}
