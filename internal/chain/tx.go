// Package chain defines the common ledger vocabulary shared by every
// simulated blockchain in this repository: transactions, blocks, receipts,
// world state with version metadata (for MVCC validation), contracts and the
// generic system-under-test interface that the Hammer framework drives
// through its RPC layer.
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"
)

// TxID is the content hash of a transaction. It is the key the evaluation
// framework uses to match submitted transactions against committed blocks.
type TxID [32]byte

// String renders the ID as lowercase hex.
func (id TxID) String() string { return hex.EncodeToString(id[:]) }

// Short returns the first 8 hex characters, for logs.
func (id TxID) Short() string { return hex.EncodeToString(id[:4]) }

// MarshalJSON renders the ID as a hex string.
func (id TxID) MarshalJSON() ([]byte, error) {
	return json.Marshal(id.String())
}

// UnmarshalJSON parses a hex string.
func (id *TxID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("chain: tx id: %w", err)
	}
	parsed, err := ParseTxID(s)
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// ParseTxID decodes a 64-character hex string into a TxID.
func ParseTxID(s string) (TxID, error) {
	var id TxID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("chain: parse tx id: %w", err)
	}
	if len(b) != len(id) {
		return id, fmt.Errorf("chain: parse tx id: want %d bytes, got %d", len(id), len(b))
	}
	copy(id[:], b)
	return id, nil
}

// Transaction is a signed invocation of a contract operation. The ClientID
// and ServerID fields mirror the paper's c_id / s_id (Algorithm 1), used for
// flood protection and per-client/server load accounting.
type Transaction struct {
	// ID is the content hash; zero until ComputeID or Seal is called.
	ID TxID `json:"id"`
	// ClientID identifies the workload-generating client (paper: c_id).
	ClientID string `json:"client_id"`
	// ServerID identifies the submitting Hammer server (paper: s_id).
	ServerID string `json:"server_id"`
	// Chain and Contract name the target ledger and smart contract.
	Chain    string `json:"chain"`
	Contract string `json:"contract"`
	// Op is the contract operation (e.g. "transfer" for SmallBank).
	Op string `json:"op"`
	// Args are the operation arguments, contract-defined.
	Args []string `json:"args"`
	// From is the sender account; Nonce orders its transactions.
	From  string `json:"from"`
	Nonce uint64 `json:"nonce"`
	// Gas is the execution budget charged against a block's gas cap
	// (Ethereum-like chains).
	Gas uint64 `json:"gas"`
	// Signature and PubKey carry the ECDSA signature over the ID.
	Signature []byte `json:"signature,omitempty"`
	PubKey    []byte `json:"pubkey,omitempty"`
	// SubmittedAt is the virtual time at which the framework sent the
	// transaction; it is bookkeeping for the evaluation, not part of the
	// signed payload.
	SubmittedAt time.Duration `json:"submitted_at"`
}

// Encode renders the signed payload deterministically. The ID, signature and
// submission timestamp are excluded.
func (t *Transaction) Encode() []byte {
	var buf []byte
	appendStr := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		buf = append(buf, n[:]...)
		buf = append(buf, s...)
	}
	appendStr(t.ClientID)
	appendStr(t.ServerID)
	appendStr(t.Chain)
	appendStr(t.Contract)
	appendStr(t.Op)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(t.Args)))
	buf = append(buf, n[:]...)
	for _, a := range t.Args {
		appendStr(a)
	}
	appendStr(t.From)
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], t.Nonce)
	buf = append(buf, u[:]...)
	binary.BigEndian.PutUint64(u[:], t.Gas)
	buf = append(buf, u[:]...)
	return buf
}

// ComputeID hashes the signed payload and stores the result in ID.
func (t *Transaction) ComputeID() TxID {
	t.ID = sha256.Sum256(t.Encode())
	return t.ID
}

// TxStatus is the lifecycle state of a transaction as observed by the
// evaluation framework.
type TxStatus int

// Transaction lifecycle states. Values start at 1 so the zero value is
// detectably invalid.
const (
	StatusPending TxStatus = iota + 1
	StatusCommitted
	StatusAborted
	StatusRejected
	// StatusTimedOut marks a transaction the evaluation driver gave up on:
	// it may still commit on-chain later, but the framework reports it
	// failed — the client-timeout measurement artifact behind the paper's
	// §V-D observations.
	StatusTimedOut
)

// String implements fmt.Stringer.
func (s TxStatus) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	case StatusRejected:
		return "rejected"
	case StatusTimedOut:
		return "timed_out"
	default:
		return fmt.Sprintf("TxStatus(%d)", int(s))
	}
}

// Receipt records the outcome of a transaction inside a block.
type Receipt struct {
	TxID      TxID          `json:"tx_id"`
	Status    TxStatus      `json:"status"`
	Shard     int           `json:"shard"`
	Height    uint64        `json:"height"`
	BlockTime time.Duration `json:"block_time"`
	// Err holds the abort reason, if any.
	Err string `json:"err,omitempty"`
}
