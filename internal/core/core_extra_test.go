package core

import (
	"context"

	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/meepo"
	"hammer/internal/eventsim"
	"hammer/internal/monitor"
	"hammer/internal/smallbank"
	"hammer/internal/taskproc"
	"hammer/internal/workload"
	"hammer/internal/ycsb"
)

func TestConfigValidation(t *testing.T) {
	sched := eventsim.New()
	bc := fabric.New(sched, fabric.DefaultConfig())

	cfg := DefaultConfig()
	if _, err := New(sched, bc, cfg); err == nil {
		t.Fatal("empty control sequence should be rejected")
	}
	cfg.Control = workload.Constant(10, 5*time.Second, time.Second)
	cfg.Driver = DriverKind(99)
	if _, err := New(sched, bc, cfg); err == nil {
		t.Fatal("bad driver should be rejected")
	}
	cfg = DefaultConfig()
	cfg.Control = workload.Constant(10, 5*time.Second, time.Second)
	cfg.SignMode = SignMode(99)
	if _, err := New(sched, bc, cfg); err == nil {
		t.Fatal("bad sign mode should be rejected")
	}
}

func TestStringers(t *testing.T) {
	if DriverHammer.String() != "hammer" || DriverBatch.String() != "batch" || DriverInteractive.String() != "interactive" {
		t.Fatal("driver strings")
	}
	if SignSerial.String() != "serial" || SignPipelined.String() != "pipelined" || SignOff.String() != "off" || SignAsync.String() != "async" {
		t.Fatal("sign mode strings")
	}
}

func TestEngineMeepoSharded(t *testing.T) {
	sched := eventsim.New()
	bc := meepo.New(sched, meepo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workload = testProfile(1000)
	cfg.Workload.OpMix = map[string]float64{smallbank.OpTransfer: 1}
	cfg.Control = workload.Constant(1000, 10*time.Second, time.Second)
	cfg.Clients = 4
	cfg.SubmitCost = 200 * time.Microsecond
	cfg.SignMode = SignOff
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("meepo: %s", rep)
	if rep.Committed < 9000 {
		t.Fatalf("committed %d of 10000 on the sharded chain", rep.Committed)
	}
	// Both shards must have produced blocks the driver consumed.
	if bc.Height(0) == 0 || bc.Height(1) == 0 {
		t.Fatal("expected blocks on both shards")
	}
	audit, err := VerifyAgainstAuditLog(res.Records, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Consistent() {
		t.Fatalf("sharded audit inconsistent: %+v", audit)
	}
}

func TestEngineWithSigning(t *testing.T) {
	for _, mode := range []SignMode{SignSerial, SignAsync, SignPipelined} {
		sched := eventsim.New()
		bc := fabric.New(sched, fabric.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Workload = testProfile(200)
		cfg.Control = workload.Constant(30, 5*time.Second, time.Second)
		cfg.SignMode = mode
		eng, err := New(sched, bc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Report.Committed == 0 {
			t.Fatalf("%v: nothing committed", mode)
		}
		if res.PrepDuration <= 0 {
			t.Fatalf("%v: preparation duration not measured", mode)
		}
	}
}

func TestEngineTxTimeout(t *testing.T) {
	sched := eventsim.New()
	// A fabric so slow that nothing commits within the timeout.
	fcfg := fabric.DefaultConfig()
	fcfg.ValidateCostPerTx = 2 * time.Second
	bc := fabric.New(sched, fcfg)
	cfg := DefaultConfig()
	cfg.Workload = testProfile(100)
	cfg.Control = workload.Constant(20, 5*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.SkipSetup = true // setup would never finish on this crippled chain
	cfg.TxTimeout = 3 * time.Second
	cfg.DrainTimeout = 30 * time.Second
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.TimedOut == 0 {
		t.Fatalf("expected driver timeouts, got %+v", res.Report)
	}
}

func TestEngineBatchDriverStampsPollTime(t *testing.T) {
	run := func(driver DriverKind) *Result {
		sched := eventsim.New()
		bc := fabric.New(sched, fabric.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Workload = testProfile(500)
		cfg.Control = workload.Constant(50, 10*time.Second, time.Second)
		cfg.SignMode = SignOff
		cfg.Driver = driver
		if driver == DriverBatch {
			cfg.PollInterval = time.Second
		}
		eng, err := New(sched, bc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hammerRes := run(DriverHammer)
	batchRes := run(DriverBatch)
	if batchRes.Report.Committed == 0 || hammerRes.Report.Committed == 0 {
		t.Fatal("both drivers should commit")
	}
	// ξ1: the batch driver's poll-time stamping must inflate latency.
	if batchRes.Report.AvgLatency <= hammerRes.Report.AvgLatency {
		t.Fatalf("batch latency %v should exceed hammer's %v",
			batchRes.Report.AvgLatency, hammerRes.Report.AvgLatency)
	}
}

func TestEngineInteractiveDriverDropsUnderLoad(t *testing.T) {
	sched := eventsim.New()
	bc := fabric.New(sched, fabric.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workload = testProfile(1000)
	cfg.Control = workload.Constant(200, 10*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.Driver = DriverInteractive
	cfg.EventCost = 20 * time.Millisecond // listener far slower than the chain
	cfg.EventBacklogLimit = 200 * time.Millisecond
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedResponses == 0 {
		t.Fatal("interactive listener should lose responses under this load")
	}
	if res.Report.Unmatched != res.DroppedResponses {
		t.Fatalf("dropped %d responses but %d unmatched records",
			res.DroppedResponses, res.Report.Unmatched)
	}
}

func TestVisualizeMatchesRecords(t *testing.T) {
	records := []taskproc.TxRecord{
		{ID: chain.TxID{1}, ClientID: "c0", StartTime: 0, EndTime: 500 * time.Millisecond, Status: chain.StatusCommitted},
		{ID: chain.TxID{2}, ClientID: "c0", StartTime: time.Second, EndTime: 3 * time.Second, Status: chain.StatusCommitted},
		{ID: chain.TxID{3}, ClientID: "c1", StartTime: time.Second, EndTime: 2 * time.Second, Status: chain.StatusAborted},
	}
	rep, err := Visualize(records)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsStaged != 3 {
		t.Fatalf("staged %d", rep.RowsStaged)
	}
	// Table II TPS query: committed AND confirmed within a second → only tx 1.
	if rep.SubSecondCommits != 1 {
		t.Fatalf("sub-second commits %d, want 1", rep.SubSecondCommits)
	}
	if rep.LatencyRows != 3 {
		t.Fatalf("latency rows %d", rep.LatencyRows)
	}
	// Avg latency over all rows: (500 + 2000 + 1000)/3 ms.
	want := (500.0 + 2000 + 1000) / 3
	if rep.AvgLatencyMs < want-1 || rep.AvgLatencyMs > want+1 {
		t.Fatalf("avg latency %v, want ≈%v", rep.AvgLatencyMs, want)
	}
}

func TestVerifyAgainstAuditLogDetectsMismatch(t *testing.T) {
	sched := eventsim.New()
	bc := fabric.New(sched, fabric.DefaultConfig())
	// A record claiming commitment that the chain never saw.
	records := []taskproc.TxRecord{
		{ID: chain.TxID{9}, Status: chain.StatusCommitted, EndTime: time.Second},
	}
	rep, err := VerifyAgainstAuditLog(records, bc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent() {
		t.Fatal("phantom commit should be flagged")
	}
	if rep.MissingFromNode != 1 {
		t.Fatalf("missing %d, want 1", rep.MissingFromNode)
	}
}

func TestEngineCustomSourceYCSB(t *testing.T) {
	sched := eventsim.New()
	bc := fabric.New(sched, fabric.DefaultConfig())

	p := ycsb.DefaultProfile()
	p.Records = 2000
	p.Skew = 0 // uniform keys keep Fabric MVCC conflicts rare in this smoke test
	p.Workload = "a"
	gen, err := ycsb.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Source = gen
	cfg.Contract = ycsb.Contract{}
	cfg.Control = workload.Constant(80, 10*time.Second, time.Second)
	cfg.SignMode = SignOff
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("ycsb-a on fabric: %s", rep)
	if rep.Committed < 600 {
		t.Fatalf("committed %d of 800 YCSB ops", rep.Committed)
	}
	if res.SetupCommitted != 2000 {
		t.Fatalf("setup committed %d, want 2000 records loaded", res.SetupCommitted)
	}
}

func TestEngineCustomSourceRequiresContract(t *testing.T) {
	sched := eventsim.New()
	bc := fabric.New(sched, fabric.DefaultConfig())
	gen, err := ycsb.NewGenerator(ycsb.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Source = gen
	cfg.Control = workload.Constant(10, time.Second, time.Second)
	if _, err := New(sched, bc, cfg); err == nil {
		t.Fatal("Source without Contract should be rejected")
	}
}

func TestEngineMetricsRegistry(t *testing.T) {
	sched := eventsim.New()
	bc := fabric.New(sched, fabric.DefaultConfig())
	reg := monitor.NewRegistry()
	cfg := DefaultConfig()
	cfg.Workload = testProfile(300)
	cfg.Control = workload.Constant(50, 5*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.Metrics = reg
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, s := range reg.Scrape() {
		byName[s.Name] = s.Value
	}
	if int(byName["driver/submitted"]) != res.Submitted {
		t.Fatalf("submitted counter %v vs %d", byName["driver/submitted"], res.Submitted)
	}
	if int(byName["driver/completed"]) != res.Report.Committed+res.Report.Aborted {
		t.Fatalf("completed counter %v vs %d", byName["driver/completed"], res.Report.Committed+res.Report.Aborted)
	}
	if byName["driver/confirm_latency_ms_count"] == 0 {
		t.Fatal("latency histogram never observed")
	}
}

// TestEngineSurvivesLossyNetwork injects 20% message loss into the Fabric
// cluster network: endorsements and blocks vanish, transactions strand, and
// the driver's timeout path must reclaim them instead of hanging the run.
func TestEngineSurvivesLossyNetwork(t *testing.T) {
	sched := eventsim.New()
	fcfg := fabric.DefaultConfig()
	fcfg.Net.LossFrac = 0.2
	fcfg.Net.Seed = 5
	bc := fabric.New(sched, fcfg)
	cfg := DefaultConfig()
	cfg.Workload = testProfile(300)
	cfg.Control = workload.Constant(50, 10*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.SkipSetup = true // account creation itself would strand on the lossy net
	cfg.TxTimeout = 5 * time.Second
	cfg.DrainTimeout = 30 * time.Second
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("lossy fabric: %s (timed out %d)", rep, rep.TimedOut)
	if rep.TimedOut == 0 {
		t.Fatal("20% message loss should strand transactions into driver timeouts")
	}
	if rep.Unmatched != 0 {
		t.Fatalf("%d records left unmatched — the timeout path failed to reclaim them", rep.Unmatched)
	}
}
