// Package core implements the Hammer evaluation engine: the client/server
// pipeline of the paper's architecture (Fig 2-3). A run moves through the
// three phases of §III-B — preparation (account setup, workload generation,
// signing), execution (control-sequence-driven injection, block monitoring,
// task processing), and visualization (KV staging → SQL table → Table II
// queries) — entirely on the virtual clock shared with the simulated SUT.
package core

import (
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/monitor"
	"hammer/internal/workload"
)

// DriverKind selects the measurement strategy the engine uses — Hammer's
// task-processing algorithm or one of the two baselines it is compared
// against in Fig 7.
type DriverKind int

// Driver kinds.
const (
	// DriverHammer is Algorithm 1: vector list + hash index + bloom
	// filter, completion stamped with the block production time.
	DriverHammer DriverKind = iota + 1
	// DriverBatch is the Blockbench-style baseline: queue matching in
	// O(n·m), completion stamped when the poll that found the block
	// finishes — which inflates latency by the polling delay (ξ1).
	DriverBatch
	// DriverInteractive is the Caliper-style baseline: per-transaction
	// response listening that costs driver CPU per event and drops
	// responses when the listener backlog saturates.
	DriverInteractive
)

// String implements fmt.Stringer.
func (d DriverKind) String() string {
	switch d {
	case DriverHammer:
		return "hammer"
	case DriverBatch:
		return "batch"
	case DriverInteractive:
		return "interactive"
	default:
		return fmt.Sprintf("DriverKind(%d)", int(d))
	}
}

// SignMode selects the preparation-phase signing strategy (Fig 8).
type SignMode int

// Sign modes.
const (
	// SignSerial signs every transaction on one goroutine before
	// execution starts.
	SignSerial SignMode = iota + 1
	// SignAsync signs with a parallel worker pool, still completing before
	// execution starts.
	SignAsync
	// SignPipelined streams signed transactions into execution while later
	// ones are still being signed (§III-D2).
	SignPipelined
	// SignOff skips signing (for tests that exercise other paths).
	SignOff
)

// String implements fmt.Stringer.
func (m SignMode) String() string {
	switch m {
	case SignSerial:
		return "serial"
	case SignAsync:
		return "async"
	case SignPipelined:
		return "pipelined"
	case SignOff:
		return "off"
	default:
		return fmt.Sprintf("SignMode(%d)", int(m))
	}
}

// TxSource supplies the transactions an evaluation injects. The default
// source is the SmallBank generator built from Config.Workload; any other
// contract's generator (e.g. YCSB) can be plugged in instead.
type TxSource interface {
	// SetupTxs returns the population-initialisation transactions, run and
	// awaited before measurement.
	SetupTxs() []*chain.Transaction
	// Next draws one benchmark transaction attributed to a client/server.
	Next(clientID, serverID string) *chain.Transaction
}

// Config parameterises one evaluation run.
type Config struct {
	// Workload describes the SmallBank transaction population; ignored
	// when Source is set.
	Workload workload.Profile
	// Source overrides the workload generator (e.g. a YCSB generator);
	// Contract must then name the chain.Contract to deploy alongside it.
	Source   TxSource
	Contract chain.Contract
	// Control dictates per-slice injection counts. Required.
	Control workload.ControlSequence
	// Clients is the number of workload-generating client machines;
	// Threads is the worker-thread count per client (Fig 10's two knobs).
	Clients int
	Threads int
	// ClientCores models each client machine's vCPUs (paper: 2).
	ClientCores int
	// SubmitCost is the client CPU consumed to send one transaction
	// (serialisation, SDK, network syscalls).
	SubmitCost time.Duration
	// ThreadOverhead is the extra per-operation cost fraction for each
	// thread beyond ClientCores — the context-switching penalty the paper
	// measures in Fig 10.
	ThreadOverhead float64
	// PollInterval is the block-monitoring cadence (ξ1).
	PollInterval time.Duration
	// TxTimeout expires driver records still pending after this long;
	// zero disables timeouts.
	TxTimeout time.Duration
	// MaxRetries caps how many times the driver resubmits a transaction
	// that was refused at admission or went unconfirmed past TxTimeout —
	// the recovery path for work lost to faults (internal/chaos). Zero
	// disables retries; a positive value requires TxTimeout and a matcher
	// with per-ID record access (the Hammer processor). A transaction whose
	// retries are exhausted is recorded as timed out, never left pending,
	// so faulted runs always drain.
	MaxRetries int
	// RetryBackoff is how long the driver waits after detecting a lost or
	// refused transaction before resubmitting it.
	RetryBackoff time.Duration
	// OnMeasureStart, when set, is called as the execution phase begins
	// with the virtual time of the first injection. The chaos injector arms
	// fault scenarios here so scenario offsets are relative to measurement
	// rather than to account setup, which consumes virtual time first.
	OnMeasureStart func(start time.Duration)
	// Driver selects the measurement strategy.
	Driver DriverKind
	// MatchCostPerOp is the driver CPU per elementary match operation:
	// the batch baseline spends queue×block of these per block, Hammer
	// spends one per block transaction.
	MatchCostPerOp time.Duration
	// EventCost is the per-response listener cost of the interactive
	// driver; EventBacklogLimit is the listener backlog beyond which
	// responses are lost.
	EventCost         time.Duration
	EventBacklogLimit time.Duration
	// DriverCores models the evaluation server's CPU lanes.
	DriverCores int
	// TrackRejected makes the driver keep records for submissions the SUT
	// refused. Blockbench-style batch testing submits fire-and-forget and
	// only learns outcomes from blocks, so shed transactions linger in its
	// matching queue forever — the queue-growth pathology of §II-C1 (ξ2).
	// The engine enables it automatically for DriverBatch.
	TrackRejected bool
	// SignMode selects the preparation strategy; SignWorkers sizes the
	// async pool (0 = GOMAXPROCS).
	SignMode    SignMode
	SignWorkers int
	// SkipSetup starts measuring without creating accounts (the caller
	// seeded state some other way).
	SkipSetup bool
	// SetupRate throttles account-creation submissions (tx/s); zero uses
	// a default tuned to the SUT's admission caps.
	SetupRate float64
	// DrainTimeout bounds how long after the last injection the engine
	// waits for stragglers.
	DrainTimeout time.Duration
	// Invariants attaches the semantic-invariant recorder to the SUT's block
	// stream (internal/invariant): height contiguity, hash chaining, seal
	// integrity, receipt alignment, no-double-commit, gas caps and
	// end-of-run conservation. Violations and the run's commit digest land
	// in the Result. On by default in the conformance suites and tests,
	// off by default here so benchmark hot paths stay clean.
	Invariants bool
	// Metrics, when set, receives the engine's live counters and gauges
	// (submitted/committed/rejected counts, SUT pending depth, confirmation
	// latency histogram) — the paper's Prometheus monitoring step (§III-B3).
	Metrics *monitor.Registry
	// Seed drives workload generation and signing keys.
	Seed int64
}

// DefaultConfig returns the engine defaults used across the experiments.
func DefaultConfig() Config {
	return Config{
		Workload:       workload.DefaultProfile(),
		Clients:        2,
		Threads:        2,
		ClientCores:    2,
		SubmitCost:     2 * time.Millisecond,
		ThreadOverhead: 0.35,
		PollInterval:   100 * time.Millisecond,
		Driver:         DriverHammer,
		MatchCostPerOp: 150 * time.Nanosecond,
		EventCost:      1200 * time.Microsecond,

		EventBacklogLimit: 500 * time.Millisecond,
		DriverCores:       2,
		SignMode:          SignAsync,
		DrainTimeout:      2 * time.Minute,
		Seed:              11,
	}
}

func (c *Config) fillDefaults() {
	def := DefaultConfig()
	if c.Clients <= 0 {
		c.Clients = def.Clients
	}
	if c.Threads <= 0 {
		c.Threads = def.Threads
	}
	if c.ClientCores <= 0 {
		c.ClientCores = def.ClientCores
	}
	if c.SubmitCost <= 0 {
		c.SubmitCost = def.SubmitCost
	}
	if c.ThreadOverhead < 0 {
		c.ThreadOverhead = def.ThreadOverhead
	}
	if c.PollInterval <= 0 {
		c.PollInterval = def.PollInterval
	}
	if c.Driver == 0 {
		c.Driver = def.Driver
	}
	if c.MatchCostPerOp <= 0 {
		c.MatchCostPerOp = def.MatchCostPerOp
	}
	if c.EventCost <= 0 {
		c.EventCost = def.EventCost
	}
	if c.EventBacklogLimit <= 0 {
		c.EventBacklogLimit = def.EventBacklogLimit
	}
	if c.DriverCores <= 0 {
		c.DriverCores = def.DriverCores
	}
	if c.SignMode == 0 {
		c.SignMode = def.SignMode
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = def.DrainTimeout
	}
	if c.Workload.Accounts == 0 {
		c.Workload = def.Workload
	}
	if c.MaxRetries > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
}

// Validate rejects impossible configurations.
func (c *Config) Validate() error {
	if len(c.Control.Counts) == 0 {
		return fmt.Errorf("core: control sequence is empty")
	}
	if c.Control.Interval <= 0 {
		return fmt.Errorf("core: control sequence interval %v must be positive", c.Control.Interval)
	}
	switch c.Driver {
	case DriverHammer, DriverBatch, DriverInteractive:
	default:
		return fmt.Errorf("core: unknown driver kind %d", int(c.Driver))
	}
	switch c.SignMode {
	case SignSerial, SignAsync, SignPipelined, SignOff:
	default:
		return fmt.Errorf("core: unknown sign mode %d", int(c.SignMode))
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("core: negative MaxRetries %d", c.MaxRetries)
	}
	if c.MaxRetries > 0 && c.TxTimeout <= 0 {
		return fmt.Errorf("core: MaxRetries %d requires a positive TxTimeout", c.MaxRetries)
	}
	return nil
}
