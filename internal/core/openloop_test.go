package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"hammer/internal/loadplane"
	"hammer/internal/metrics"
)

func openLoopSpec() loadplane.Spec {
	return loadplane.Spec{
		Clients:       400,
		RatePerClient: 2,
		Duration:      5 * time.Second,
		Window:        time.Second,
		Seed:          11,
		Service:       loadplane.ServiceModel{RatePerSec: 1000, QueueCap: 2000, BaseLatency: time.Millisecond},
	}
}

func TestOpenLoopControlPreservesArrivals(t *testing.T) {
	spec := openLoopSpec()
	merged := []metrics.Window{
		{Index: 0, Arrivals: 100}, {Index: 1, Arrivals: 250}, {Index: 2, Arrivals: 0}, {Index: 3, Arrivals: 77},
	}
	ctrl := OpenLoopControl(spec, merged, 0)
	if ctrl.Interval != spec.Window {
		t.Fatalf("interval %v, want %v", ctrl.Interval, spec.Window)
	}
	want := []int{100, 250, 0, 77}
	if !reflect.DeepEqual(ctrl.Counts, want) {
		t.Fatalf("counts %v, want %v", ctrl.Counts, want)
	}
}

func TestOpenLoopControlScalesExactly(t *testing.T) {
	spec := openLoopSpec()
	merged := []metrics.Window{
		{Index: 0, Arrivals: 333}, {Index: 1, Arrivals: 333}, {Index: 2, Arrivals: 334},
	}
	ctrl := OpenLoopControl(spec, merged, 100)
	var total int
	for _, n := range ctrl.Counts {
		total += n
	}
	// Integer scaling with carry must hit the cap exactly, not approximately.
	if total != 100 {
		t.Fatalf("scaled total %d, want exactly 100", total)
	}
	// And must be deterministic.
	again := OpenLoopControl(spec, merged, 100)
	if !reflect.DeepEqual(ctrl, again) {
		t.Fatal("scaling is not deterministic")
	}
}

func TestOpenLoopControlFromGeneratedSeries(t *testing.T) {
	spec := openLoopSpec()
	merged, err := loadplane.InProcess(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := OpenLoopControl(spec, merged, 0)
	var total int64
	for _, n := range ctrl.Counts {
		total += int64(n)
	}
	if total != metrics.SumArrivals(merged) {
		t.Fatalf("schedule injects %d of %d arrivals", total, metrics.SumArrivals(merged))
	}
	if len(ctrl.Counts) != int(spec.Windows()) {
		t.Fatalf("schedule has %d slices, want %d", len(ctrl.Counts), spec.Windows())
	}
}
