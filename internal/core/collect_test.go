package core

import (
	"context"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/fabric"
	"hammer/internal/eventsim"
	"hammer/internal/workload"
)

// growingChain is a minimal Blockchain whose shard count can be raised
// mid-run, modelling dynamically formed shards (Meepo-style).
type growingChain struct {
	blocks [][]*chain.Block // per shard, sealed in order
}

func (g *growingChain) Name() string                { return "growing" }
func (g *growingChain) Deploy(chain.Contract) error { return nil }
func (g *growingChain) Shards() int                 { return len(g.blocks) }
func (g *growingChain) Height(shard int) uint64     { return uint64(len(g.blocks[shard])) }
func (g *growingChain) PendingTxs() int             { return 0 }
func (g *growingChain) Start()                      {}
func (g *growingChain) Stop()                       {}
func (g *growingChain) Submit(*chain.Transaction) (chain.TxID, error) {
	return chain.TxID{}, nil
}
func (g *growingChain) BlockAt(shard int, height uint64) (*chain.Block, bool) {
	if int(height) > len(g.blocks[shard]) {
		return nil, false
	}
	return g.blocks[shard][height-1], true
}

// seal appends an empty block on shard.
func (g *growingChain) seal(shard int) {
	g.blocks[shard] = append(g.blocks[shard], &chain.Block{Shard: shard})
}

// TestCollectBlocksShardGrowth drives collectBlocks through a sequence of
// seals and shard-count increases and checks the height cursors follow: new
// shards must be picked up from height zero without re-delivering blocks on
// existing shards.
func TestCollectBlocksShardGrowth(t *testing.T) {
	bc := &growingChain{blocks: make([][]*chain.Block, 1)}
	e := &Engine{bc: bc, lastHeights: make([]uint64, bc.Shards())}

	collect := func() int {
		n := 0
		e.collectBlocks(func(*chain.Block) { n++ })
		return n
	}

	steps := []struct {
		name    string
		mutate  func()
		want    int // newly delivered blocks
		wantCur []uint64
	}{
		{
			name:    "initial seals on shard 0",
			mutate:  func() { bc.seal(0); bc.seal(0) },
			want:    2,
			wantCur: []uint64{2},
		},
		{
			name:    "idle pass delivers nothing",
			mutate:  func() {},
			want:    0,
			wantCur: []uint64{2},
		},
		{
			name: "shard forms mid-run with backlog",
			mutate: func() {
				bc.blocks = append(bc.blocks, nil)
				bc.seal(1)
				bc.seal(1)
				bc.seal(1)
			},
			want:    3,
			wantCur: []uint64{2, 3},
		},
		{
			name: "two more shards form, old shards keep advancing",
			mutate: func() {
				bc.blocks = append(bc.blocks, nil, nil)
				bc.seal(0)
				bc.seal(2)
				bc.seal(3)
				bc.seal(3)
			},
			want:    4,
			wantCur: []uint64{3, 3, 1, 2},
		},
	}
	for _, st := range steps {
		st.mutate()
		if got := collect(); got != st.want {
			t.Fatalf("%s: delivered %d blocks, want %d", st.name, got, st.want)
		}
		if len(e.lastHeights) != len(st.wantCur) {
			t.Fatalf("%s: %d cursors, want %d", st.name, len(e.lastHeights), len(st.wantCur))
		}
		for i, want := range st.wantCur {
			if e.lastHeights[i] != want {
				t.Fatalf("%s: shard %d cursor %d, want %d", st.name, i, e.lastHeights[i], want)
			}
		}
	}
}

// TestEngineRunCancelled checks the engine honors context cancellation: a
// pre-cancelled context aborts before any work, and a mid-run cancel
// surfaces context.Canceled rather than running to the drain deadline.
func TestEngineRunCancelled(t *testing.T) {
	newEngine := func() *Engine {
		sched := eventsim.New()
		bc := fabric.New(sched, fabric.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Workload = testProfile(200)
		cfg.Control = workload.Constant(50, 20*time.Second, time.Second)
		cfg.SignMode = SignOff
		eng, err := New(sched, bc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := newEngine().Run(ctx); err != context.Canceled {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	// A deadline already in the past cancels during the virtual-time loop.
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := newEngine().Run(ctx2); err != context.DeadlineExceeded {
		t.Fatalf("expired run returned %v, want context.DeadlineExceeded", err)
	}
}
