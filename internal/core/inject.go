package core

import (
	"time"

	"hammer/internal/chain"
)

// sliceInjector paces one control-sequence slice's transactions with a single
// self-rearming scheduler event instead of one event per transaction, so the
// resident event count during a run is O(slices + in-flight) rather than
// O(total transactions). Determinism is preserved exactly: the injector's
// sequence numbers were reserved up front (Scheduler.ReserveSeq) in the same
// order eager scheduling would have consumed them, so every injection fires
// at the identical (time, sequence) rank and byte-identical output follows.
type sliceInjector struct {
	e   *Engine
	txs []*chain.Transaction
	// base is the global index of txs[0], preserving the round-robin client
	// assignment of the eager scheme.
	base  int
	next  int
	start time.Duration
	gap   time.Duration
	// seq is the reserved tie-break sequence of txs[0]; txs[j] owns seq+j.
	seq uint64
	// key pins the slice's pacing event to one scheduler shard (the client
	// machine that receives the slice's first dispatch).
	key uint64
	// fire is bound once so rearming does not allocate a closure per event.
	fire func()
}

// step dispatches the due transaction, then either dispatches same-instant
// successors inline (a sub-millisecond gap rounds to zero) or rearms the
// pacing event at the next transaction's reserved (time, sequence) slot.
// Inline dispatch is order-equivalent to separate events: the reserved
// sequences are consecutive, so no other event can fire between them.
func (si *sliceInjector) step() {
	e := si.e
	now := e.sched.Now()
	for {
		e.dispatch(si.txs[si.next], (si.base+si.next)%len(e.clients))
		si.next++
		if si.next >= len(si.txs) {
			return
		}
		at := si.start + time.Duration(si.next)*si.gap
		if at > now {
			e.sched.AtKeySeq(si.key, at, si.seq+uint64(si.next), si.fire)
			return
		}
	}
}
