package core

import (
	"context"

	"testing"
	"time"

	"hammer/internal/chains/ethereum"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/neuchain"
	"hammer/internal/eventsim"
	"hammer/internal/workload"
)

func testProfile(accounts int) workload.Profile {
	p := workload.DefaultProfile()
	p.Accounts = accounts
	return p
}

func TestEngineFabricSmoke(t *testing.T) {
	sched := eventsim.New()
	bc := fabric.New(sched, fabric.DefaultConfig())
	cfg := DefaultConfig()
	// MVCC conflict probability scales with in-flight txs over account
	// count; 2000 accounts keeps aborts to the few-percent regime the
	// paper's 5000-per-shard population would see.
	cfg.Workload = testProfile(2000)
	cfg.Control = workload.Constant(100, 20*time.Second, time.Second)
	cfg.SignMode = SignOff
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("fabric: %s (peak %.1f), unmatched=%d, dur=%v", rep, rep.PeakTPS(), rep.Unmatched, res.VirtualDuration)
	if rep.Committed < 1500 {
		t.Fatalf("fabric committed %d of %d, expected most of the 2000", rep.Committed, rep.Submitted)
	}
	if rep.Unmatched > 0 {
		t.Fatalf("fabric left %d records unmatched after drain", rep.Unmatched)
	}
	if rep.Throughput < 80 || rep.Throughput > 120 {
		t.Errorf("fabric throughput %.1f TPS, want ≈100 under a 100 TPS offered load", rep.Throughput)
	}
	if rep.AvgLatency <= 0 || rep.AvgLatency > 5*time.Second {
		t.Errorf("fabric avg latency %v out of plausible range", rep.AvgLatency)
	}
}

func TestEngineEthereumPeak(t *testing.T) {
	sched := eventsim.New()
	bc := ethereum.New(sched, ethereum.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workload = testProfile(200)
	cfg.Control = workload.Constant(40, 60*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.DrainTimeout = 5 * time.Minute
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("ethereum: %s, dur=%v", rep, res.VirtualDuration)
	// Offered 40 TPS against a ~19 TPS PoW ceiling: committed throughput
	// must sit well below the offered rate and latency in whole seconds.
	if rep.Throughput > 25 {
		t.Errorf("ethereum throughput %.1f TPS, expected PoW ceiling near 19", rep.Throughput)
	}
	if rep.Throughput < 12 {
		t.Errorf("ethereum throughput %.1f TPS, implausibly low", rep.Throughput)
	}
	if rep.AvgLatency < time.Second {
		t.Errorf("ethereum avg latency %v, expected seconds under overload", rep.AvgLatency)
	}
}

func TestEngineNeuchainFast(t *testing.T) {
	sched := eventsim.New()
	bc := neuchain.New(sched, neuchain.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workload = testProfile(500)
	cfg.Control = workload.Constant(2000, 10*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.SubmitCost = 200 * time.Microsecond // fast client for a fast chain
	cfg.Clients = 4
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("neuchain: %s, dur=%v", rep, res.VirtualDuration)
	if rep.Throughput < 1500 {
		t.Errorf("neuchain throughput %.1f TPS under a 2000 TPS load, want ≈2000", rep.Throughput)
	}
	if rep.AvgLatency > 500*time.Millisecond {
		t.Errorf("neuchain avg latency %v, want well under .5s", rep.AvgLatency)
	}
}
