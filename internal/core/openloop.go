package core

import (
	"hammer/internal/loadplane"
	"hammer/internal/metrics"
	"hammer/internal/workload"
)

// OpenLoopControl turns a load-plane merged arrival series into the
// engine's injection schedule: window w's arrivals become control slice w's
// transaction count, so the SUT sees the open-loop population's burstiness
// instead of a flat rate. maxTotal caps the total injected transactions
// (0 means inject every arrival); the down-scale is integer arithmetic with
// a carried remainder, so the schedule — like everything upstream of it —
// is a deterministic function of the merged series.
func OpenLoopControl(spec loadplane.Spec, merged []metrics.Window, maxTotal int) workload.ControlSequence {
	counts := make([]int, len(merged))
	total := metrics.SumArrivals(merged)
	if maxTotal <= 0 || total <= int64(maxTotal) {
		for i := range merged {
			counts[i] = int(merged[i].Arrivals)
		}
		return workload.ControlSequence{Interval: spec.Window, Counts: counts}
	}
	var carry int64
	for i := range merged {
		num := merged[i].Arrivals*int64(maxTotal) + carry
		counts[i] = int(num / total)
		carry = num % total
	}
	return workload.ControlSequence{Interval: spec.Window, Counts: counts}
}
