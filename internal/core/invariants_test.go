package core

import (
	"context"
	"testing"
	"time"

	"hammer/internal/chains/meepo"
	"hammer/internal/chains/neuchain"
	"hammer/internal/eventsim"
	"hammer/internal/workload"
)

// TestEngineInvariantsWiring: Config.Invariants attaches the recorder, the
// run stays violation-free and the Result carries a commit digest; with the
// flag off, neither is populated.
func TestEngineInvariantsWiring(t *testing.T) {
	run := func(invariants bool, seed int64) *Result {
		t.Helper()
		sched := eventsim.New()
		bc := neuchain.New(sched, neuchain.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Workload = testProfile(300)
		cfg.Workload.Seed = seed // the workload stream's seed, not the signing seed
		cfg.Control = workload.Constant(400, 5*time.Second, time.Second)
		cfg.SignMode = SignOff
		cfg.Invariants = invariants
		eng, err := New(sched, bc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	on := run(true, 11)
	if len(on.Violations) != 0 {
		t.Fatalf("neuchain run violated invariants: %v", on.Violations)
	}
	if on.CommitDigest == "" {
		t.Fatal("Invariants run produced no commit digest")
	}

	// Determinism across full engine runs: same seed, same digest.
	again := run(true, 11)
	if again.CommitDigest != on.CommitDigest {
		t.Fatal("same-seed engine runs produced different commit digests")
	}
	other := run(true, 12)
	if other.CommitDigest == on.CommitDigest {
		t.Fatal("different-seed engine runs produced identical commit digests")
	}

	off := run(false, 11)
	if off.CommitDigest != "" || off.Violations != nil {
		t.Fatal("Invariants=false still populated the Result")
	}
}

// TestEngineInvariantsMeepoCrossShard runs the sharded chain, whose
// conservation check must account for value in transit between shards.
func TestEngineInvariantsMeepoCrossShard(t *testing.T) {
	sched := eventsim.New()
	bc := meepo.New(sched, meepo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workload = testProfile(1000)
	cfg.Control = workload.Constant(500, 5*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.Invariants = true
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("meepo run violated invariants: %v", res.Violations)
	}
	if res.Report.Committed == 0 {
		t.Fatal("meepo run committed nothing")
	}
}
