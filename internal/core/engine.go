package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
	"hammer/internal/invariant"
	"hammer/internal/metrics"
	"hammer/internal/monitor"
	"hammer/internal/sign"
	"hammer/internal/smallbank"
	"hammer/internal/taskproc"
	"hammer/internal/workload"
)

// Shard keys for the engine's own timers on a sharded scheduler. The driver
// node (block matching, polling) owns key 0; each simulated client machine
// owns its own key, so client compute completions and injection pacing
// spread across wheels. Keys only pick the wheel that holds a timer — never
// its firing order — so these choices cannot affect results.
const driverShardKey uint64 = 0

func clientShardKey(i int) uint64 { return uint64(i) + 1 }

// Engine drives one evaluation of one system under test.
type Engine struct {
	cfg   Config
	sched eventsim.Sched
	bc    chain.Blockchain

	gen     TxSource
	signer  *sign.Signer
	matcher taskproc.Matcher

	clients []*basechain.Compute
	driver  *basechain.Compute

	lastHeights []uint64
	pollTicker  *eventsim.Ticker

	submitted      int
	rejected       int
	dropped        int // interactive responses lost to listener backlog
	retried        int // resubmissions performed by the retry path
	// retryQueue is the deterministic FIFO of transactions the retry path is
	// watching; it is scanned on poll ticks in dispatch order, so retry
	// behaviour is independent of map iteration or wall-clock effects.
	retryQueue   []retryEntry
	retrySupport taskproc.RetrySupport
	// scratch and single are reused block headers for the batch and
	// interactive driver cost models, so re-stamping a block per poll tick
	// (or per receipt) does not allocate. Safe because matchers copy fields
	// out of the block and never retain it.
	scratch       chain.Block
	single        chain.Block
	singleReceipt [1]*chain.Receipt
	// recorder observes the SUT's block stream when Config.Invariants is
	// set; nil otherwise (the hot path pays nothing).
	recorder *invariant.Recorder

	mon            *engineMetrics
	injectionEnd   time.Duration
	perOpCost      time.Duration
	prepDuration   time.Duration
	setupCommitted int
}

// New validates the configuration and builds an engine over the chain,
// which must share the scheduler.
func New(sched eventsim.Sched, bc chain.Blockchain, cfg Config) (*Engine, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var gen TxSource
	if cfg.Source != nil {
		if cfg.Contract == nil {
			return nil, fmt.Errorf("core: custom Source requires Contract")
		}
		gen = cfg.Source
	} else {
		g, err := workload.NewGenerator(cfg.Workload)
		if err != nil {
			return nil, err
		}
		gen = g
	}
	signer, err := sign.NewSigner(cfg.Seed)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		sched:       sched,
		bc:          bc,
		gen:         gen,
		signer:      signer,
		lastHeights: make([]uint64, bc.Shards()),
		driver:      basechain.NewComputeKey(sched, cfg.DriverCores, driverShardKey),
	}
	lanes := cfg.Threads
	if lanes > cfg.ClientCores {
		lanes = cfg.ClientCores
	}
	for i := 0; i < cfg.Clients; i++ {
		e.clients = append(e.clients, basechain.NewComputeKey(sched, lanes, clientShardKey(i)))
	}
	// Context-switch penalty beyond the core count (Fig 10).
	over := 0
	if cfg.Threads > cfg.ClientCores {
		over = cfg.Threads - cfg.ClientCores
	}
	e.perOpCost = time.Duration(float64(cfg.SubmitCost) * (1 + cfg.ThreadOverhead*float64(over)))
	if cfg.Threads == 1 && cfg.ClientCores > 1 {
		// A single thread cannot overlap submissions at all.
		e.perOpCost = cfg.SubmitCost
	}

	e.mon = newEngineMetrics(cfg.Metrics, bc)
	if cfg.Invariants {
		if rec, ok := invariant.Attach(bc); ok {
			e.recorder = rec
		}
	}

	capacity := cfg.Control.Total()
	switch cfg.Driver {
	case DriverBatch:
		e.matcher = taskproc.NewBatchQueue(capacity)
	default:
		e.matcher = taskproc.NewProcessor(capacity)
	}
	if cfg.MaxRetries > 0 {
		rs, ok := e.matcher.(taskproc.RetrySupport)
		if !ok {
			return nil, fmt.Errorf("core: MaxRetries requires a matcher with per-ID record access; the %v driver has none", cfg.Driver)
		}
		e.retrySupport = rs
	}
	return e, nil
}

// Result is the outcome of one evaluation run.
type Result struct {
	// Report is the digested performance measurement.
	Report *metrics.Report
	// Records are the driver's raw per-transaction records.
	Records []taskproc.TxRecord
	// Submitted counts injected transactions; Rejected counts SUT
	// admission refusals; DroppedResponses counts interactive-listener
	// losses.
	Submitted        int
	Rejected         int
	DroppedResponses int
	// Retried counts resubmissions performed by the retry path.
	Retried int
	// SetupCommitted is the number of account-creation transactions that
	// committed during preparation.
	SetupCommitted int
	// PrepDuration is the real (wall-clock) time spent generating and
	// signing the workload.
	PrepDuration time.Duration
	// VirtualDuration is how much simulated time the run covered.
	VirtualDuration time.Duration
	// Violations holds every semantic-invariant breach the recorder
	// observed (Config.Invariants); empty on a clean run or when the
	// recorder is off.
	Violations []invariant.Violation
	// CommitDigest fingerprints the SUT's commit sequence when
	// Config.Invariants is set: two runs with equal digests produced
	// bitwise-identical schedules.
	CommitDigest string
}

// Run executes the three phases and returns the measurement. The context is
// honored at every virtual-time step: canceling it (Ctrl-C, per-run timeout)
// aborts the run promptly instead of spinning the scheduler to its drain
// deadline.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.deploy(); err != nil {
		return nil, err
	}
	e.bc.Start()
	if !e.cfg.SkipSetup {
		if err := e.setupAccounts(ctx); err != nil {
			return nil, err
		}
	}
	txs, err := e.prepare()
	if err != nil {
		return nil, err
	}
	if err := e.execute(ctx, txs); err != nil {
		return nil, err
	}
	e.bc.Stop()

	records := e.matcher.Results()
	// With TrackRejected the shed submissions are already in the records
	// (as never-matched entries), so they must not be double-counted.
	rejectedForReport := e.rejected
	if e.cfg.TrackRejected {
		rejectedForReport = 0
	}
	report := metrics.Analyze(e.bc.Name(), records, rejectedForReport)
	e.mon.observeRun(records)
	var violations []invariant.Violation
	var commitDigest string
	if e.recorder != nil {
		violations = append(e.recorder.Violations(), invariant.FinalChecks(e.bc, e.recorder)...)
		commitDigest = e.recorder.CommitDigest()
	}
	return &Result{
		Report:           report,
		Records:          records,
		Submitted:        e.submitted,
		Rejected:         e.rejected,
		DroppedResponses: e.dropped,
		Retried:          e.retried,
		SetupCommitted:   e.setupCommitted,
		PrepDuration:     e.prepDuration,
		VirtualDuration:  e.sched.Now(),
		Violations:       violations,
		CommitDigest:     commitDigest,
	}, nil
}

func (e *Engine) deploy() error {
	var ct chain.Contract = smallbank.Contract{}
	if e.cfg.Contract != nil {
		ct = e.cfg.Contract
	}
	err := e.bc.Deploy(ct)
	if err != nil && !errors.Is(err, chain.ErrAlreadyDeployed) {
		return fmt.Errorf("core: deploy contract: %w", err)
	}
	return nil
}

// setupAccounts creates the account population through ordinary
// transactions, throttled to the SUT's admission capacity, and waits (in
// virtual time) until every creation commits.
func (e *Engine) setupAccounts(ctx context.Context) error {
	setup := e.gen.SetupTxs()
	for _, tx := range setup {
		tx.ComputeID()
	}
	tracker := taskproc.NewProcessor(len(setup))
	rate := e.cfg.SetupRate
	if rate <= 0 {
		rate = 2000
	}
	const tick = 50 * time.Millisecond
	perTick := int(rate * tick.Seconds())
	if perTick < 1 {
		perTick = 1
	}

	next := 0
	pump := e.sched.Every(tick, func() {
		for sent := 0; sent < perTick && next < len(setup); sent++ {
			tx := setup[next]
			if _, err := e.bc.Submit(tx); err != nil {
				return // back off until the next tick
			}
			tracker.Track(taskproc.TxRecord{ID: tx.ID, StartTime: e.sched.Now(), Status: chain.StatusPending})
			next++
		}
		e.collectBlocks(func(blk *chain.Block) { tracker.OnBlock(blk) })
	})
	defer pump.Stop()

	// A generous virtual ceiling: even Ethereum at ~19 TPS creates 10k
	// accounts within a couple of virtual hours.
	deadline := e.sched.Now() + 4*time.Hour
	for e.sched.Now() < deadline {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.sched.RunUntil(e.sched.Now() + time.Second)
		if next == len(setup) && tracker.Pending() == 0 {
			e.setupCommitted = len(setup)
			// Consume any remaining setup blocks so measurement starts
			// with a clean height cursor.
			e.collectBlocks(func(blk *chain.Block) { tracker.OnBlock(blk) })
			return nil
		}
	}
	return fmt.Errorf("core: account setup incomplete after %v: %d/%d submitted, %d pending",
		e.sched.Now(), next, len(setup), tracker.Pending())
}

// prepare generates and signs the measurement workload (phase ① of Fig 3),
// timing the real CPU cost of preparation (Fig 8's subject).
func (e *Engine) prepare() ([]*chain.Transaction, error) {
	total := e.cfg.Control.Total()
	txs := make([]*chain.Transaction, 0, total)
	for i := 0; i < total; i++ {
		client := fmt.Sprintf("client-%d", i%e.cfg.Clients)
		txs = append(txs, e.gen.Next(client, "server-0"))
	}
	start := time.Now()
	switch e.cfg.SignMode {
	case SignSerial:
		if err := sign.SignSerial(txs, e.signer); err != nil {
			return nil, fmt.Errorf("core: serial signing: %w", err)
		}
	case SignAsync:
		if err := sign.SignAsync(txs, e.signer, e.cfg.SignWorkers); err != nil {
			return nil, fmt.Errorf("core: async signing: %w", err)
		}
	case SignPipelined:
		p := sign.NewPipeline(e.signer, e.cfg.SignWorkers)
		go func() {
			for _, tx := range txs {
				p.Submit(tx)
			}
			p.Close()
		}()
		n := 0
		for range p.Out() {
			n++
		}
		if err := p.Err(); err != nil {
			return nil, fmt.Errorf("core: pipelined signing: %w", err)
		}
		if n != len(txs) {
			return nil, fmt.Errorf("core: pipelined signing lost transactions: %d/%d", n, len(txs))
		}
	case SignOff:
		for _, tx := range txs {
			tx.ComputeID()
		}
	}
	e.prepDuration = time.Since(start)
	return txs, nil
}

// execute runs the measurement phase on the virtual clock: injections
// follow the control sequence, the block monitor polls on PollInterval, and
// the run drains for up to DrainTimeout after the last injection.
func (e *Engine) execute(ctx context.Context, txs []*chain.Transaction) error {
	startAt := e.sched.Now()
	if e.cfg.OnMeasureStart != nil {
		e.cfg.OnMeasureStart(startAt)
	}
	e.scheduleInjections(txs, startAt)
	e.startPolling()

	deadline := e.injectionEnd + e.cfg.DrainTimeout
	for e.sched.Now() < deadline {
		if err := ctx.Err(); err != nil {
			e.stopPolling()
			return err
		}
		step := e.sched.Now() + time.Second
		if step > deadline {
			step = deadline
		}
		e.sched.RunUntil(step)
		if e.sched.Now() >= e.injectionEnd && e.matcher.Pending() == 0 {
			break
		}
	}
	e.stopPolling()
	e.finalSweep()
	return nil
}

func (e *Engine) stopPolling() {
	if e.pollTicker != nil {
		e.pollTicker.Stop()
	}
}

// finalSweep collects once more after the drain loop exits: a block sealed
// between the last poll tick and the drain deadline would otherwise be
// silently missed and its transactions reported unmatched. The sweep then
// fires the driver's in-flight matching events, bounded to one extra
// PollInterval of virtual time so a genuinely stuck run still terminates.
func (e *Engine) finalSweep() {
	e.collectBlocks(e.processBlock)
	grace := e.sched.Now() + e.cfg.PollInterval
	for e.matcher.Pending() > 0 {
		at, ok := e.sched.NextAt()
		if !ok || at > grace {
			break
		}
		e.sched.RunUntil(at)
		e.collectBlocks(e.processBlock)
	}
}

// scheduleInjections spreads each control-sequence slice's transactions
// uniformly within the slice, round-robin across clients. Each slice gets a
// single pacing event (sliceInjector) that streams its transactions in
// order; the tie-break sequence numbers the eager one-event-per-transaction
// scheme would have consumed are reserved here, in the same loop order, so
// the event stream — and therefore every result — is byte-identical.
func (e *Engine) scheduleInjections(txs []*chain.Transaction, startAt time.Duration) {
	cs := e.cfg.Control
	idx := 0
	for slice, count := range cs.Counts {
		if count <= 0 || idx >= len(txs) {
			continue
		}
		m := count
		if rem := len(txs) - idx; m > rem {
			m = rem
		}
		sliceStart := startAt + time.Duration(slice)*cs.Interval
		gap := cs.Interval / time.Duration(count)
		si := &sliceInjector{
			e:     e,
			txs:   txs[idx : idx+m],
			base:  idx,
			start: sliceStart,
			gap:   gap,
			seq:   e.sched.ReserveSeq(m),
			key:   clientShardKey(idx % e.cfg.Clients),
		}
		si.fire = si.step
		e.sched.AtKeySeq(si.key, sliceStart, si.seq, si.fire)
		idx += m
	}
	e.injectionEnd = startAt + cs.Duration()
}

// dispatch models one client thread sending a transaction: the record is
// stamped at dispatch (Algorithm 1 line 4), the client CPU is charged, and
// the SUT admits or rejects on completion.
func (e *Engine) dispatch(tx *chain.Transaction, clientIdx int) {
	rec := taskproc.TxRecord{
		ID:        tx.ID,
		ClientID:  tx.ClientID,
		ServerID:  tx.ServerID,
		Chain:     e.bc.Name(),
		Contract:  tx.Contract,
		StartTime: e.sched.Now(),
		Status:    chain.StatusPending,
	}
	e.submitted++
	e.mon.submitted.Inc()
	e.clients[clientIdx].Run(e.perOpCost, func() {
		tx.SubmittedAt = e.sched.Now()
		if _, err := e.bc.Submit(tx); err != nil {
			if e.retrySupport != nil {
				// With retries enabled a refused submission stays tracked
				// and re-enters through the backoff queue instead of being
				// dropped on the floor.
				e.matcher.Track(rec)
				e.retryQueue = append(e.retryQueue, retryEntry{
					tx: tx, attempts: 1, waiting: true,
					due: e.sched.Now() + e.cfg.RetryBackoff,
				})
				return
			}
			e.rejected++
			e.mon.rejected.Inc()
			if e.cfg.TrackRejected {
				// Fire-and-forget drivers never learn the submission was
				// shed; the record lingers in their matching queue.
				e.matcher.Track(rec)
			}
			return
		}
		e.matcher.Track(rec)
		if e.retrySupport != nil {
			e.retryQueue = append(e.retryQueue, retryEntry{
				tx: tx, due: e.sched.Now() + e.cfg.TxTimeout,
			})
		}
	})
}

// retryEntry is the retry path's view of one in-flight transaction. An entry
// is either watching a submitted transaction for its confirmation timeout
// (waiting=false, due=submit+TxTimeout) or backing off before a resubmission
// (waiting=true, due=detection+RetryBackoff).
type retryEntry struct {
	tx       *chain.Transaction
	attempts int // resubmissions consumed
	waiting  bool
	due      time.Duration
}

// processRetries advances the retry state machine on the virtual clock. It
// runs on poll ticks, scanning the FIFO in dispatch order: entries whose
// transaction completed are discarded; watch entries past their timeout move
// into backoff (or expire once attempts are exhausted); backoff entries past
// their delay resubmit. Exhausted transactions are stamped timed out, so a
// faulted run's drain loop always terminates.
func (e *Engine) processRetries() {
	now := e.sched.Now()
	keep := e.retryQueue[:0]
	for _, ent := range e.retryQueue {
		if ent.due > now {
			keep = append(keep, ent)
			continue
		}
		st, ok := e.retrySupport.StatusOf(ent.tx.ID)
		if !ok || st != chain.StatusPending {
			continue // confirmed (or already expired) — nothing to do
		}
		if !ent.waiting {
			// Confirmation timeout hit: the transaction was admitted but
			// never reached a block — lost to a crash, partition or drop.
			if ent.attempts >= e.cfg.MaxRetries {
				e.retrySupport.ExpireByID(ent.tx.ID, now)
				continue
			}
			ent.attempts++
			ent.waiting = true
			ent.due = now + e.cfg.RetryBackoff
			keep = append(keep, ent)
			continue
		}
		// Backoff elapsed: resubmit.
		ent.tx.SubmittedAt = now
		if _, err := e.bc.Submit(ent.tx); err != nil {
			if ent.attempts >= e.cfg.MaxRetries {
				e.retrySupport.ExpireByID(ent.tx.ID, now)
				continue
			}
			ent.attempts++
			ent.due = now + e.cfg.RetryBackoff
			keep = append(keep, ent)
			continue
		}
		e.retried++
		ent.waiting = false
		ent.due = now + e.cfg.TxTimeout
		keep = append(keep, ent)
	}
	e.retryQueue = keep
}

func (e *Engine) startPolling() {
	e.pollTicker = e.sched.EveryKey(driverShardKey, e.cfg.PollInterval, func() {
		e.collectBlocks(e.processBlock)
		if e.retrySupport != nil {
			// Per-ID expiry supersedes the blanket scan: a record past its
			// timeout may be about to get another attempt.
			e.processRetries()
			return
		}
		if e.cfg.TxTimeout > 0 {
			if exp, ok := e.matcher.(taskproc.Expirer); ok {
				now := e.sched.Now()
				exp.ExpireStartedBefore(now-e.cfg.TxTimeout, now)
			}
		}
	})
}

// collectBlocks advances the per-shard height cursors, handing every newly
// sealed block to fn. Dynamically formed shards grow the cursor set.
func (e *Engine) collectBlocks(fn func(*chain.Block)) {
	for len(e.lastHeights) < e.bc.Shards() {
		e.lastHeights = append(e.lastHeights, 0)
	}
	for shard := 0; shard < e.bc.Shards(); shard++ {
		for e.lastHeights[shard] < e.bc.Height(shard) {
			blk, ok := e.bc.BlockAt(shard, e.lastHeights[shard]+1)
			if !ok {
				break
			}
			e.lastHeights[shard]++
			fn(blk)
		}
	}
}

// processBlock charges the measurement cost model for the configured driver
// and completes matching records.
func (e *Engine) processBlock(blk *chain.Block) {
	m := len(blk.Txs)
	if m == 0 {
		return
	}
	switch e.cfg.Driver {
	case DriverHammer:
		// Algorithm 1: O(m) — bloom screen plus hash-index lookup per
		// block transaction; completion time is the block timestamp.
		cost := time.Duration(m) * e.cfg.MatchCostPerOp
		e.driver.Run(cost, func() {
			e.mon.completed.Add(float64(e.matcher.OnBlock(blk)))
		})

	case DriverBatch:
		// Blockbench: O(n·m) queue scan, and the completion time is when
		// the poll finishes processing — inflating latency by polling and
		// matching delay (ξ1, ξ2).
		n := e.matcher.Pending()
		if n < 1 {
			n = 1
		}
		cost := time.Duration(n) * time.Duration(m) * e.cfg.MatchCostPerOp
		e.driver.Run(cost, func() {
			e.scratch = *blk
			e.scratch.Timestamp = e.sched.Now()
			e.matcher.OnBlock(&e.scratch)
		})

	case DriverInteractive:
		// Caliper: one listener event per transaction response; events
		// beyond the listener's backlog capacity are lost, so their
		// transactions never complete.
		for _, r := range blk.Receipts {
			if e.driver.Backlog() > e.cfg.EventBacklogLimit {
				e.dropped++
				continue
			}
			receipt := r
			shard, height := blk.Shard, blk.Height
			e.driver.Run(e.cfg.EventCost, func() {
				e.single = chain.Block{
					Shard:     shard,
					Height:    height,
					Timestamp: e.sched.Now(),
				}
				e.singleReceipt[0] = receipt
				e.single.Receipts = e.singleReceipt[:]
				e.matcher.OnBlock(&e.single)
			})
		}
	}
}

// engineMetrics binds the engine's live state to a monitor.Registry; a nil
// registry turns every update into a no-op so the hot path stays clean.
type engineMetrics struct {
	enabled   bool
	submitted *monitor.Counter
	completed *monitor.Counter
	rejected  *monitor.Counter
	latency   *monitor.Histogram
}

// noop metric sinks used when monitoring is off.
var (
	noopCounter   = &monitor.Counter{}
	noopHistogram = monitor.NewHistogram([]float64{1})
)

func newEngineMetrics(reg *monitor.Registry, bc chain.Blockchain) *engineMetrics {
	if reg == nil {
		return &engineMetrics{
			submitted: noopCounter,
			completed: noopCounter,
			rejected:  noopCounter,
			latency:   noopHistogram,
		}
	}
	reg.Gauge("sut/pending").Bind(func() float64 { return float64(bc.PendingTxs()) })
	return &engineMetrics{
		enabled:   true,
		submitted: reg.Counter("driver/submitted"),
		completed: reg.Counter("driver/completed"),
		rejected:  reg.Counter("driver/rejected"),
		latency: reg.Histogram("driver/confirm_latency_ms",
			[]float64{10, 50, 100, 250, 500, 1000, 2500, 5000, 10000}),
	}
}

// observeRun feeds the finished run's per-transaction confirmation
// latencies into the histogram.
func (m *engineMetrics) observeRun(records []taskproc.TxRecord) {
	if !m.enabled {
		return
	}
	for i := range records {
		if records[i].Status == chain.StatusCommitted {
			m.latency.Observe(records[i].Latency().Seconds() * 1000)
		}
	}
}
