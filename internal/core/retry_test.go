package core

import (
	"context"
	"testing"
	"time"

	"hammer/internal/chains/neuchain"
	"hammer/internal/eventsim"
	"hammer/internal/workload"
)

func TestValidateRetryConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Control = workload.Constant(10, time.Second, time.Second)
	cfg.MaxRetries = 2
	if err := cfg.Validate(); err == nil {
		t.Fatal("MaxRetries without TxTimeout should be rejected")
	}
	cfg.TxTimeout = time.Second
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid retry config rejected: %v", err)
	}
	cfg.MaxRetries = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative MaxRetries should be rejected")
	}
}

func TestRetryRequiresPerIDMatcher(t *testing.T) {
	sched := eventsim.New()
	bc := neuchain.New(sched, neuchain.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Control = workload.Constant(10, time.Second, time.Second)
	cfg.Driver = DriverBatch
	cfg.TxTimeout = time.Second
	cfg.MaxRetries = 1
	if _, err := New(sched, bc, cfg); err == nil {
		t.Fatal("batch driver cannot support retries and should be refused")
	}
}

// retryRunConfig is the shared engine setup for the fault-recovery tests: a
// modest constant load with a tight timeout and retries enabled.
func retryRunConfig(retries int) Config {
	cfg := DefaultConfig()
	cfg.Workload = testProfile(500)
	cfg.Control = workload.Constant(200, 15*time.Second, time.Second)
	cfg.SignMode = SignOff
	cfg.TxTimeout = 2 * time.Second
	cfg.MaxRetries = retries
	cfg.RetryBackoff = 500 * time.Millisecond
	cfg.DrainTimeout = 30 * time.Second
	return cfg
}

// A transaction stranded by a crash (the block server dies with the epoch
// batch in flight) is resubmitted after its timeout and commits once the
// node is back — the run ends with no unmatched records.
func TestRetryRecoversTransactionsLostToCrash(t *testing.T) {
	sched := eventsim.New()
	bc := neuchain.New(sched, neuchain.DefaultConfig())
	cfg := retryRunConfig(3)
	cfg.OnMeasureStart = func(start time.Duration) {
		// The chain's epoch ticker started at virtual time zero, so epochs
		// cut at multiples of EpochInterval on the global clock. Crash just
		// after a cut, while the batch is on the wire to the block servers,
		// so the epoch is genuinely lost rather than merely stalled.
		interval := neuchain.DefaultConfig().EpochInterval
		at := start + 2*time.Second
		at = at - at%interval + interval + 500*time.Microsecond
		sched.At(at, func() {
			for _, n := range []string{"block-server-0", "block-server-1", "block-server-2"} {
				bc.CrashNode(n)
			}
		})
		sched.At(start+5*time.Second, func() {
			for _, n := range []string{"block-server-0", "block-server-1", "block-server-2"} {
				bc.RestartNode(n)
			}
		})
	}
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("neuchain crash+retry: %s, retried=%d stranded=%d", rep, res.Retried, bc.Stranded())
	if bc.Stranded() == 0 {
		t.Fatal("the crash should strand at least one in-flight epoch")
	}
	if res.Retried == 0 {
		t.Fatal("stranded transactions should have been retried")
	}
	if rep.Unmatched != 0 {
		t.Fatalf("%d records left unmatched (pending) after the drain", rep.Unmatched)
	}
	if rep.Committed < rep.Submitted*8/10 {
		t.Fatalf("committed %d of %d; retries should recover most of the load", rep.Committed, rep.Submitted)
	}
}

// When the fault never heals, retries exhaust: every lost transaction is
// stamped timed out — not left pending — and the drain loop terminates well
// before its deadline instead of hanging.
func TestExhaustedRetriesTimeOutAndDrainTerminates(t *testing.T) {
	sched := eventsim.New()
	bc := neuchain.New(sched, neuchain.DefaultConfig())
	cfg := retryRunConfig(2)
	cfg.OnMeasureStart = func(start time.Duration) {
		sched.At(start+2*time.Second, func() {
			bc.CrashNode("epoch-server") // stalls every epoch, forever
		})
	}
	eng, err := New(sched, bc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("neuchain permanent fault: %s, retried=%d dur=%v", rep, res.Retried, res.VirtualDuration)
	if rep.TimedOut == 0 {
		t.Fatal("exhausted retries should surface as timed out")
	}
	if rep.Unmatched != 0 {
		t.Fatalf("%d records left unmatched: the retry path must resolve every record", rep.Unmatched)
	}
	// Injection ends at 15s; timeouts+retries resolve within a few seconds
	// after that. Reaching the full drain deadline would mean the drain hung
	// on permanently-pending records.
	if res.VirtualDuration >= 15*time.Second+cfg.DrainTimeout {
		t.Fatalf("drain ran to its %v deadline (virtual %v)", cfg.DrainTimeout, res.VirtualDuration)
	}
}
