package core

import (
	"fmt"
	"strconv"

	"hammer/internal/chain"
	"hammer/internal/store/kvstore"
	"hammer/internal/store/minisql"
	"hammer/internal/store/tablestore"
	"hammer/internal/taskproc"
)

// TPSQuery and LatencyQuery are the paper's Table II statements, run
// verbatim against the Performance table by the visualization phase.
const (
	TPSQuery = `SELECT COUNT(*) AS TPS FROM Performance WHERE STATUS = '1' AND TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1`

	LatencyQuery = `SELECT tx_id, start_time, end_time, TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency FROM Performance`
)

// VizReport is the output of the visualization phase.
type VizReport struct {
	// RowsStaged is how many records passed through the KV store.
	RowsStaged int
	// SubSecondCommits is the Table II TPS query result: committed
	// transactions confirmed within one second.
	SubSecondCommits int64
	// AvgLatencyMs averages the Table II latency query output.
	AvgLatencyMs float64
	// LatencyRows is the latency query's row count.
	LatencyRows int
}

// Visualize replays the paper's §III-B3 data path: records are staged into
// the Redis-equivalent KV store, periodically drained into the
// MySQL-equivalent Performance table, and the Table II SQL statements are
// evaluated over it.
func Visualize(records []taskproc.TxRecord) (*VizReport, error) {
	kv := kvstore.New()
	// Stage: the server pushes vector-list state into the KV store.
	for i := range records {
		rec := &records[i]
		key := fmt.Sprintf("txstat:%s", rec.ID.String())
		status := "0"
		if rec.Status == chain.StatusCommitted {
			status = "1"
		}
		val := fmt.Sprintf("%s|%s|%d|%d", status, rec.ClientID, int64(rec.StartTime), int64(rec.EndTime))
		kv.Set(key, []byte(val))
	}

	// Drain: the KV store's contents are committed to the SQL store.
	ts := tablestore.New()
	table, err := ts.CreateTable("Performance", []tablestore.Column{
		{Name: "tx_id", Kind: tablestore.KindString},
		{Name: "client_id", Kind: tablestore.KindString},
		{Name: "status", Kind: tablestore.KindString},
		{Name: "start_time", Kind: tablestore.KindInt64},
		{Name: "end_time", Kind: tablestore.KindInt64},
	})
	if err != nil {
		return nil, fmt.Errorf("core: visualization: %w", err)
	}
	staged := 0
	for _, key := range kv.Keys("txstat:") {
		raw, ok := kv.Get(key)
		if !ok {
			continue
		}
		var status, clientID string
		var startNs, endNs int64
		if err := parseStaged(string(raw), &status, &clientID, &startNs, &endNs); err != nil {
			return nil, fmt.Errorf("core: visualization: %w", err)
		}
		err := table.Insert(tablestore.Row{
			tablestore.Str(key[len("txstat:"):]),
			tablestore.Str(clientID),
			tablestore.Str(status),
			tablestore.Int(startNs),
			tablestore.Int(endNs),
		})
		if err != nil {
			return nil, fmt.Errorf("core: visualization: %w", err)
		}
		staged++
	}

	out := &VizReport{RowsStaged: staged}

	res, err := minisql.Query(ts, TPSQuery)
	if err != nil {
		return nil, fmt.Errorf("core: TPS query: %w", err)
	}
	if len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		out.SubSecondCommits = res.Rows[0][0].I
	}

	res, err = minisql.Query(ts, LatencyQuery)
	if err != nil {
		return nil, fmt.Errorf("core: latency query: %w", err)
	}
	var sum float64
	count := 0
	for _, row := range res.Rows {
		lat, ok := row[3].AsFloat()
		if !ok || lat < 0 {
			continue
		}
		sum += lat
		count++
	}
	out.LatencyRows = len(res.Rows)
	if count > 0 {
		out.AvgLatencyMs = sum / float64(count)
	}
	return out, nil
}

func parseStaged(raw string, status, clientID *string, startNs, endNs *int64) error {
	var s, c, a, b string
	if n := splitN(raw, '|', &s, &c, &a, &b); n != 4 {
		return fmt.Errorf("malformed staged value %q", raw)
	}
	var err error
	*status, *clientID = s, c
	if *startNs, err = strconv.ParseInt(a, 10, 64); err != nil {
		return fmt.Errorf("bad start_time in %q: %w", raw, err)
	}
	if *endNs, err = strconv.ParseInt(b, 10, 64); err != nil {
		return fmt.Errorf("bad end_time in %q: %w", raw, err)
	}
	return nil
}

// splitN splits raw on sep into at most len(dst) pieces, returning how many
// pieces were produced.
func splitN(raw string, sep byte, dst ...*string) int {
	n := 0
	start := 0
	for i := 0; i < len(raw) && n < len(dst)-1; i++ {
		if raw[i] == sep {
			*dst[n] = raw[start:i]
			n++
			start = i + 1
		}
	}
	if n < len(dst) {
		*dst[n] = raw[start:]
		n++
	}
	return n
}

// CorrectnessReport compares the framework's measurements against the SUT's
// node-side audit log (the paper's §V-C validation, which compares Hammer's
// statistics against Fabric peer logs).
type CorrectnessReport struct {
	// FrameworkCommitted / NodeCommitted are committed counts from each
	// side; Matched counts committed records whose ID, block and commit
	// time agree with the audit log.
	FrameworkCommitted int
	NodeCommitted      int
	Matched            int
	// TimeMismatches counts records whose commit time differs from the
	// audit entry (expected 0 for the Hammer driver, which stamps block
	// production time).
	TimeMismatches int
	// MissingFromNode counts records the framework reports committed but
	// the node never logged.
	MissingFromNode int
}

// Consistent reports whether every framework-committed record is backed by
// the node log with matching commit times.
func (c *CorrectnessReport) Consistent() bool {
	return c.MissingFromNode == 0 && c.TimeMismatches == 0 &&
		c.Matched == c.FrameworkCommitted
}

// VerifyAgainstAuditLog cross-checks records against the chain's audit log.
func VerifyAgainstAuditLog(records []taskproc.TxRecord, bc chain.Blockchain) (*CorrectnessReport, error) {
	auditor, ok := bc.(chain.AuditLogger)
	if !ok {
		return nil, fmt.Errorf("core: chain %q does not expose an audit log", bc.Name())
	}
	byID := make(map[chain.TxID]chain.AuditEntry)
	rep := &CorrectnessReport{}
	for _, entry := range auditor.AuditLog() {
		if entry.Status == chain.StatusCommitted {
			rep.NodeCommitted++
			byID[entry.TxID] = entry
		}
	}
	for i := range records {
		rec := &records[i]
		if rec.Status != chain.StatusCommitted {
			continue
		}
		rep.FrameworkCommitted++
		entry, ok := byID[rec.ID]
		if !ok {
			rep.MissingFromNode++
			continue
		}
		if entry.Time != rec.EndTime {
			rep.TimeMismatches++
			continue
		}
		rep.Matched++
	}
	return rep, nil
}
