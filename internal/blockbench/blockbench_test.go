package blockbench

import (
	"strings"
	"testing"

	"hammer/internal/chain"
)

func invoke(t *testing.T, st *chain.State, tx *chain.Transaction) *chain.Executor {
	t.Helper()
	ex := chain.NewExecutor(st)
	if err := (Contract{}).Invoke(ex, tx.Op, tx.Args); err != nil {
		t.Fatalf("%s%v: %v", tx.Op, tx.Args, err)
	}
	return ex
}

func TestContractOps(t *testing.T) {
	st := chain.NewState()
	st.Set(Key(0), []byte("alpha"), 1)
	st.Set(Key(1), []byte("beta"), 1)

	ex := invoke(t, st, &chain.Transaction{Op: OpWrite, Args: []string{Key(2), "gamma"}})
	if w := ex.RWSet().Writes; len(w) != 1 || string(w[0].Value) != "gamma" {
		t.Fatalf("write staged %v", w)
	}

	ex = invoke(t, st, &chain.Transaction{Op: OpRead, Args: []string{Key(0)}})
	if r := ex.RWSet().Reads; len(r) != 1 || !r[0].Exists {
		t.Fatalf("read recorded %v", r)
	}

	ex = invoke(t, st, &chain.Transaction{Op: OpScan, Args: []string{"0", "3", "agg:x"}})
	rw := ex.RWSet()
	if len(rw.Reads) != 3 {
		t.Fatalf("scan read %d keys, want 3", len(rw.Reads))
	}
	if len(rw.Writes) != 1 || rw.Writes[0].Key != "agg:x" {
		t.Fatalf("scan staged %v", rw.Writes)
	}

	ex = invoke(t, st, &chain.Transaction{Op: OpNothing})
	if rw := ex.RWSet(); len(rw.Reads)+len(rw.Writes) != 0 {
		t.Fatalf("nothing touched state: %+v", rw)
	}

	if err := (Contract{}).Invoke(chain.NewExecutor(st), "bogus", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestScanDeterministic pins the aggregate: same population, same checksum,
// and the checksum reacts to value changes.
func TestScanDeterministic(t *testing.T) {
	build := func(v1 string) string {
		st := chain.NewState()
		st.Set(Key(0), []byte(v1), 1)
		st.Set(Key(1), []byte("fixed"), 1)
		ex := invoke(t, st, &chain.Transaction{Op: OpScan, Args: []string{"0", "2", "agg:x"}})
		return string(ex.RWSet().Writes[0].Value)
	}
	if build("a") != build("a") {
		t.Fatal("scan checksum not deterministic")
	}
	if build("a") == build("b") {
		t.Fatal("scan checksum ignores values")
	}
}

func TestGeneratorPopulations(t *testing.T) {
	for _, w := range Workloads {
		p := DefaultProfile(w)
		p.Records = 50
		p.Seed = 7
		g, err := NewGenerator(p)
		if err != nil {
			t.Fatal(err)
		}
		setup := g.SetupTxs()
		if w == DoNothing {
			if len(setup) != 0 {
				t.Fatalf("%s: unexpected setup txs", w)
			}
		} else if len(setup) != 50 {
			t.Fatalf("%s: %d setup txs, want 50", w, len(setup))
		}
		for i := 0; i < 200; i++ {
			tx := g.Next("c0", "s0")
			if tx.Contract != ContractName || tx.Nonce == 0 {
				t.Fatalf("%s: malformed tx %+v", w, tx)
			}
			switch w {
			case IOHeavy:
				if tx.Op != OpWrite && tx.Op != OpRead {
					t.Fatalf("ioheavy drew %q", tx.Op)
				}
			case Analytics:
				if tx.Op != OpScan || !strings.HasPrefix(tx.Args[2], "agg:") {
					t.Fatalf("analytics drew %q %v", tx.Op, tx.Args)
				}
			case DoNothing:
				if tx.Op != OpNothing {
					t.Fatalf("donothing drew %q", tx.Op)
				}
			}
		}
	}
}

// TestGeneratorDeterministic pins same-seed reproducibility, which the
// mem-vs-paged identity comparisons rely on.
func TestGeneratorDeterministic(t *testing.T) {
	draw := func() []string {
		p := DefaultProfile(IOHeavy)
		p.Records = 100
		p.Seed = 11
		g, _ := NewGenerator(p)
		var out []string
		for i := 0; i < 50; i++ {
			tx := g.Next("c", "s")
			out = append(out, tx.Op+strings.Join(tx.Args, ","))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestNewGeneratorRejectsBadProfiles(t *testing.T) {
	if _, err := NewGenerator(Profile{Workload: "ycsb", Records: 10}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := NewGenerator(Profile{Workload: IOHeavy}); err == nil {
		t.Fatal("zero records accepted")
	}
	if _, err := NewGenerator(Profile{Workload: IOHeavy, Records: 10, WriteFrac: 1.5}); err == nil {
		t.Fatal("bad write fraction accepted")
	}
}
