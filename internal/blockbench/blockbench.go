// Package blockbench implements the BLOCKBENCH micro-workloads the paper
// cites as prior art (Dinh et al., SIGMOD'17): IOHeavy exercises raw
// key-value reads and writes against the ledger state, Analytics scans key
// ranges and aggregates them, and DoNothing measures the consensus floor
// with transactions that touch no state at all. Together with SmallBank and
// YCSB they make the storage engine, not the workload, the variable — which
// is what the paged-state experiments compare.
package blockbench

import (
	"fmt"
	"strconv"

	"hammer/internal/chain"
	"hammer/internal/randx"
)

// Operation names accepted by Invoke.
const (
	OpWrite   = "write"   // write(key, value)
	OpRead    = "read"    // read(key) → no writes
	OpScan    = "scan"    // scan(startIdx, count, resultKey): aggregate a key range
	OpNothing = "nothing" // nothing(): consensus floor, no state access
)

// ContractName is the name under which the contract deploys.
const ContractName = "blockbench"

// Workload names, mirroring the BLOCKBENCH suite.
const (
	IOHeavy   = "ioheavy"
	Analytics = "analytics"
	DoNothing = "donothing"
)

// Workloads lists the three micro-workloads in report order.
var Workloads = []string{IOHeavy, Analytics, DoNothing}

// Key is the state key of record i; the population is a dense array of
// these, so scans address ranges by index.
func Key(i int) string { return fmt.Sprintf("io:%08d", i) }

// Contract is the BLOCKBENCH chaincode. The zero value is ready to use.
type Contract struct{}

var _ chain.Contract = Contract{}

// Name implements chain.Contract.
func (Contract) Name() string { return ContractName }

// Gas implements chain.Contract. Scans are priced as range reads; nothing
// still pays the base transaction cost.
func (Contract) Gas(op string) uint64 {
	switch op {
	case OpWrite:
		return 21000
	case OpRead:
		return 6000
	case OpScan:
		return 120000
	case OpNothing:
		return 1000
	default:
		return 21000
	}
}

// Invoke implements chain.Contract.
func (Contract) Invoke(ctx chain.TxContext, op string, args []string) error {
	switch op {
	case OpWrite:
		if len(args) != 2 {
			return fmt.Errorf("blockbench: write wants 2 args, got %d", len(args))
		}
		ctx.Put(args[0], []byte(args[1]))
		return nil
	case OpRead:
		if len(args) != 1 {
			return fmt.Errorf("blockbench: read wants 1 arg, got %d", len(args))
		}
		ctx.Get(args[0])
		return nil
	case OpScan:
		if len(args) != 3 {
			return fmt.Errorf("blockbench: scan wants 3 args, got %d", len(args))
		}
		start, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("blockbench: scan start: %w", err)
		}
		count, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("blockbench: scan count: %w", err)
		}
		if count < 0 {
			return fmt.Errorf("blockbench: negative scan count %d", count)
		}
		// Aggregate the range with a rolling FNV-style checksum over the
		// values read; absent keys contribute a fixed miss marker so the
		// result is deterministic for any population.
		var sum uint64 = 14695981039346656037
		for i := start; i < start+count; i++ {
			v, ok := ctx.Get(Key(i))
			if !ok {
				sum = (sum ^ 0xff) * 1099511628211
				continue
			}
			for _, b := range v {
				sum = (sum ^ uint64(b)) * 1099511628211
			}
		}
		ctx.Put(args[2], []byte(strconv.FormatUint(sum, 16)))
		return nil
	case OpNothing:
		return nil
	default:
		return fmt.Errorf("blockbench: %q: %w", op, chain.ErrUnknownOp)
	}
}

// Profile configures a generator.
type Profile struct {
	// Workload picks the micro-benchmark: ioheavy, analytics or donothing.
	Workload string
	// Records is the populated key count (the setup phase writes them all).
	Records int
	// ValueBytes sizes each record's value.
	ValueBytes int
	// WriteFrac is the IOHeavy write fraction; the remainder are reads.
	WriteFrac float64
	// ScanLen is the Analytics range length per transaction.
	ScanLen int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultProfile returns the BLOCKBENCH defaults for a workload.
func DefaultProfile(workload string) Profile {
	return Profile{
		Workload:   workload,
		Records:    10_000,
		ValueBytes: 64,
		WriteFrac:  0.5,
		ScanLen:    100,
	}
}

// Generator draws transactions for one micro-workload. It implements the
// engine's TxSource contract (SetupTxs + Next).
type Generator struct {
	p     Profile
	rng   *randx.Rand
	value string
	nonce uint64
}

// NewGenerator validates the profile and builds a generator.
func NewGenerator(p Profile) (*Generator, error) {
	switch p.Workload {
	case IOHeavy, Analytics, DoNothing:
	default:
		return nil, fmt.Errorf("blockbench: unknown workload %q (want %v)", p.Workload, Workloads)
	}
	if p.Records < 1 {
		return nil, fmt.Errorf("blockbench: need at least 1 record, got %d", p.Records)
	}
	if p.ValueBytes < 1 {
		p.ValueBytes = DefaultProfile(p.Workload).ValueBytes
	}
	if p.WriteFrac < 0 || p.WriteFrac > 1 {
		return nil, fmt.Errorf("blockbench: write fraction %v outside [0,1]", p.WriteFrac)
	}
	if p.ScanLen < 1 {
		p.ScanLen = DefaultProfile(p.Workload).ScanLen
	}
	if p.ScanLen > p.Records {
		p.ScanLen = p.Records
	}
	return &Generator{p: p, rng: randx.New(p.Seed), value: pattern(p.ValueBytes)}, nil
}

// pattern builds a fixed printable value of n bytes; writes vary only a
// nonce prefix so value sizes stay constant across the run.
func pattern(n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = 'a' + byte(i%26)
	}
	return string(buf)
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

func (g *Generator) nextNonce() uint64 {
	g.nonce++
	return g.nonce
}

// valueFor stamps the write nonce into the fixed pattern so every write is
// distinguishable but identically sized.
func (g *Generator) valueFor(nonce uint64) string {
	stamp := strconv.FormatUint(nonce, 16)
	if len(stamp) >= len(g.value) {
		return stamp[:len(g.value)]
	}
	return stamp + g.value[len(stamp):]
}

// SetupTxs populates the record array. DoNothing needs no state and returns
// nothing.
func (g *Generator) SetupTxs() []*chain.Transaction {
	if g.p.Workload == DoNothing {
		return nil
	}
	txs := make([]*chain.Transaction, g.p.Records)
	for i := range txs {
		txs[i] = &chain.Transaction{
			Contract: ContractName,
			Op:       OpWrite,
			Args:     []string{Key(i), g.valueFor(uint64(i))},
			From:     owner(i),
			Nonce:    g.nextNonce(),
		}
	}
	return txs
}

// owner attributes a transaction to the record's index — the routing
// account sharded chains hash.
func owner(i int) string { return fmt.Sprintf("%08d", i) }

// Next draws one benchmark transaction attributed to a client/server.
func (g *Generator) Next(clientID, serverID string) *chain.Transaction {
	tx := &chain.Transaction{
		ClientID: clientID,
		ServerID: serverID,
		Contract: ContractName,
		Nonce:    g.nextNonce(),
	}
	switch g.p.Workload {
	case IOHeavy:
		i := g.rng.Intn(g.p.Records)
		if g.rng.Float64() < g.p.WriteFrac {
			tx.Op = OpWrite
			tx.Args = []string{Key(i), g.valueFor(tx.Nonce)}
		} else {
			tx.Op = OpRead
			tx.Args = []string{Key(i)}
		}
		tx.From = owner(i)
	case Analytics:
		start := g.rng.Intn(g.p.Records - g.p.ScanLen + 1)
		tx.Op = OpScan
		tx.Args = []string{
			strconv.Itoa(start),
			strconv.Itoa(g.p.ScanLen),
			fmt.Sprintf("agg:%016x", tx.Nonce),
		}
		tx.From = owner(start)
	case DoNothing:
		tx.Op = OpNothing
		tx.From = owner(int(tx.Nonce) % g.p.Records)
	}
	return tx
}
