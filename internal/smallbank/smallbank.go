// Package smallbank implements the SmallBank benchmark contract the paper
// uses as its workload (§V, "Workload"): a basic banking system in which
// every customer holds a checking and a savings account, with deposit,
// withdraw, transfer and amalgamate operations drawn uniformly.
package smallbank

import (
	"fmt"
	"strconv"

	"hammer/internal/chain"
)

// Operation names accepted by Invoke.
const (
	OpCreate     = "create"     // create(account, checking, savings)
	OpDeposit    = "deposit"    // deposit(account, amount) → checking
	OpWithdraw   = "withdraw"   // withdraw(account, amount) ← checking
	OpTransfer   = "transfer"   // transfer(from, to, amount) checking→checking
	OpAmalgamate = "amalgamate" // amalgamate(from, to): move all of from's funds to to's checking
	OpQuery      = "query"      // query(account) → no writes
)

// Ops lists the four benchmark operations drawn uniformly by the workload
// generator (OpCreate and OpQuery are setup/read helpers).
var Ops = []string{OpDeposit, OpWithdraw, OpTransfer, OpAmalgamate}

// ContractName is the name under which the contract deploys.
const ContractName = "smallbank"

// Contract is the SmallBank chaincode. The zero value is ready to use.
type Contract struct{}

var _ chain.Contract = Contract{}

// Name implements chain.Contract.
func (Contract) Name() string { return ContractName }

// Gas implements chain.Contract. Costs approximate relative execution
// weight: transfers and amalgamations touch two customers.
func (Contract) Gas(op string) uint64 {
	switch op {
	case OpTransfer, OpAmalgamate:
		return 40000
	case OpDeposit, OpWithdraw, OpCreate:
		return 21000
	case OpQuery:
		return 5000
	default:
		return 21000
	}
}

func checkingKey(account string) string { return "c:" + account }
func savingsKey(account string) string  { return "s:" + account }

func readBalance(ctx chain.TxContext, key string) (int64, error) {
	raw, ok := ctx.Get(key)
	if !ok {
		return 0, fmt.Errorf("smallbank: account record %q does not exist", key)
	}
	v, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("smallbank: corrupt balance at %q: %w", key, err)
	}
	return v, nil
}

func writeBalance(ctx chain.TxContext, key string, v int64) {
	ctx.Put(key, []byte(strconv.FormatInt(v, 10)))
}

// Invoke implements chain.Contract.
func (Contract) Invoke(ctx chain.TxContext, op string, args []string) error {
	switch op {
	case OpCreate:
		if len(args) != 3 {
			return fmt.Errorf("smallbank: create wants 3 args, got %d", len(args))
		}
		checking, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("smallbank: create checking amount: %w", err)
		}
		savings, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("smallbank: create savings amount: %w", err)
		}
		writeBalance(ctx, checkingKey(args[0]), checking)
		writeBalance(ctx, savingsKey(args[0]), savings)
		return nil

	case OpDeposit:
		account, amount, err := accountAmount(op, args)
		if err != nil {
			return err
		}
		bal, err := readBalance(ctx, checkingKey(account))
		if err != nil {
			return err
		}
		writeBalance(ctx, checkingKey(account), bal+amount)
		return nil

	case OpWithdraw:
		account, amount, err := accountAmount(op, args)
		if err != nil {
			return err
		}
		bal, err := readBalance(ctx, checkingKey(account))
		if err != nil {
			return err
		}
		// Overdraft is permitted, following SmallBank's WriteCheck
		// semantics (and Blockbench's chaincode): balances may go
		// negative, keeping total funds conserved.
		writeBalance(ctx, checkingKey(account), bal-amount)
		return nil

	case OpTransfer:
		if len(args) != 3 {
			return fmt.Errorf("smallbank: transfer wants 3 args, got %d", len(args))
		}
		from, to := args[0], args[1]
		amount, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("smallbank: transfer amount: %w", err)
		}
		if amount < 0 {
			return fmt.Errorf("smallbank: negative transfer amount %d", amount)
		}
		if from == to {
			return fmt.Errorf("smallbank: transfer from %q to itself", from)
		}
		fromBal, err := readBalance(ctx, checkingKey(from))
		if err != nil {
			return err
		}
		toBal, err := readBalance(ctx, checkingKey(to))
		if err != nil {
			return err
		}
		writeBalance(ctx, checkingKey(from), fromBal-amount)
		writeBalance(ctx, checkingKey(to), toBal+amount)
		return nil

	case OpAmalgamate:
		if len(args) != 2 {
			return fmt.Errorf("smallbank: amalgamate wants 2 args, got %d", len(args))
		}
		from, to := args[0], args[1]
		if from == to {
			return fmt.Errorf("smallbank: amalgamate %q with itself", from)
		}
		fromSav, err := readBalance(ctx, savingsKey(from))
		if err != nil {
			return err
		}
		fromChk, err := readBalance(ctx, checkingKey(from))
		if err != nil {
			return err
		}
		toChk, err := readBalance(ctx, checkingKey(to))
		if err != nil {
			return err
		}
		writeBalance(ctx, savingsKey(from), 0)
		writeBalance(ctx, checkingKey(from), 0)
		writeBalance(ctx, checkingKey(to), toChk+fromSav+fromChk)
		return nil

	case OpQuery:
		if len(args) != 1 {
			return fmt.Errorf("smallbank: query wants 1 arg, got %d", len(args))
		}
		if _, err := readBalance(ctx, checkingKey(args[0])); err != nil {
			return err
		}
		_, err := readBalance(ctx, savingsKey(args[0]))
		return err

	default:
		return fmt.Errorf("%w: %q", chain.ErrUnknownOp, op)
	}
}

func accountAmount(op string, args []string) (string, int64, error) {
	if len(args) != 2 {
		return "", 0, fmt.Errorf("smallbank: %s wants 2 args, got %d", op, len(args))
	}
	amount, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("smallbank: %s amount: %w", op, err)
	}
	if amount < 0 {
		return "", 0, fmt.Errorf("smallbank: negative %s amount %d", op, amount)
	}
	return args[0], amount, nil
}

// AccountName formats the canonical name for account index i.
func AccountName(i int) string { return "acct" + strconv.Itoa(i) }

// TotalBalance sums checking+savings across accounts [0,n) in the given
// state; it is the conservation invariant checked by property tests
// (transfers and amalgamations preserve it).
func TotalBalance(get func(key string) ([]byte, bool), n int) (int64, error) {
	var total int64
	for i := 0; i < n; i++ {
		name := AccountName(i)
		for _, key := range []string{checkingKey(name), savingsKey(name)} {
			raw, ok := get(key)
			if !ok {
				return 0, fmt.Errorf("smallbank: missing record %q", key)
			}
			v, err := strconv.ParseInt(string(raw), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("smallbank: corrupt balance at %q: %w", key, err)
			}
			total += v
		}
	}
	return total, nil
}
