package smallbank

import (
	"strconv"
	"testing"
	"testing/quick"
)

// mapCtx is a trivial TxContext over a map.
type mapCtx map[string][]byte

func (m mapCtx) Get(k string) ([]byte, bool) { v, ok := m[k]; return v, ok }
func (m mapCtx) Put(k string, v []byte)      { m[k] = v }
func (m mapCtx) Del(k string)                { delete(m, k) }

func newBank(t *testing.T, accounts int, balance int64) mapCtx {
	t.Helper()
	ctx := mapCtx{}
	c := Contract{}
	for i := 0; i < accounts; i++ {
		err := c.Invoke(ctx, OpCreate, []string{AccountName(i), strconv.FormatInt(balance, 10), strconv.FormatInt(balance, 10)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return ctx
}

func balance(t *testing.T, ctx mapCtx, key string) int64 {
	t.Helper()
	raw, ok := ctx[key]
	if !ok {
		t.Fatalf("missing key %s", key)
	}
	v, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDepositWithdraw(t *testing.T) {
	ctx := newBank(t, 2, 100)
	c := Contract{}
	if err := c.Invoke(ctx, OpDeposit, []string{"acct0", "50"}); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, ctx, "c:acct0"); got != 150 {
		t.Fatalf("checking %d, want 150", got)
	}
	if err := c.Invoke(ctx, OpWithdraw, []string{"acct0", "200"}); err != nil {
		t.Fatalf("overdraft should be permitted (WriteCheck semantics): %v", err)
	}
	if got := balance(t, ctx, "c:acct0"); got != -50 {
		t.Fatalf("checking %d, want -50 after overdraft", got)
	}
}

func TestTransferMovesFunds(t *testing.T) {
	ctx := newBank(t, 2, 100)
	c := Contract{}
	if err := c.Invoke(ctx, OpTransfer, []string{"acct0", "acct1", "30"}); err != nil {
		t.Fatal(err)
	}
	if balance(t, ctx, "c:acct0") != 70 || balance(t, ctx, "c:acct1") != 130 {
		t.Fatal("transfer amounts wrong")
	}
	if err := c.Invoke(ctx, OpTransfer, []string{"acct0", "acct0", "1"}); err == nil {
		t.Fatal("self-transfer should fail")
	}
}

func TestAmalgamateDrainsSource(t *testing.T) {
	ctx := newBank(t, 2, 100)
	c := Contract{}
	if err := c.Invoke(ctx, OpAmalgamate, []string{"acct0", "acct1"}); err != nil {
		t.Fatal(err)
	}
	if balance(t, ctx, "c:acct0") != 0 || balance(t, ctx, "s:acct0") != 0 {
		t.Fatal("amalgamate should zero the source")
	}
	if balance(t, ctx, "c:acct1") != 300 {
		t.Fatalf("destination checking %d, want 300", balance(t, ctx, "c:acct1"))
	}
}

func TestQueryAndErrors(t *testing.T) {
	ctx := newBank(t, 1, 100)
	c := Contract{}
	if err := c.Invoke(ctx, OpQuery, []string{"acct0"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(ctx, OpQuery, []string{"ghost"}); err == nil {
		t.Fatal("query of unknown account should fail")
	}
	if err := c.Invoke(ctx, OpDeposit, []string{"ghost", "1"}); err == nil {
		t.Fatal("deposit to unknown account should fail")
	}
	if err := c.Invoke(ctx, OpDeposit, []string{"acct0", "-5"}); err == nil {
		t.Fatal("negative deposit should fail")
	}
	if err := c.Invoke(ctx, OpDeposit, []string{"acct0"}); err == nil {
		t.Fatal("wrong arity should fail")
	}
	if err := c.Invoke(ctx, "melt", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestGasWeights(t *testing.T) {
	c := Contract{}
	if c.Gas(OpTransfer) <= c.Gas(OpDeposit) {
		t.Fatal("two-account ops should cost more gas")
	}
	if c.Gas("unknown") == 0 {
		t.Fatal("unknown op gas should default non-zero")
	}
}

// TestConservationQuick property-tests that any sequence of deposits,
// withdrawals, transfers and amalgamations changes total funds only by the
// net deposit/withdraw flow.
func TestConservationQuick(t *testing.T) {
	const accounts = 5
	type op struct {
		Kind uint8
		A, B uint8
		Amt  uint16
	}
	prop := func(ops []op) bool {
		ctx := mapCtx{}
		c := Contract{}
		for i := 0; i < accounts; i++ {
			if err := c.Invoke(ctx, OpCreate, []string{AccountName(i), "1000", "1000"}); err != nil {
				return false
			}
		}
		var net int64
		for _, o := range ops {
			a := AccountName(int(o.A) % accounts)
			b := AccountName(int(o.B) % accounts)
			amt := strconv.Itoa(int(o.Amt))
			switch o.Kind % 4 {
			case 0:
				if c.Invoke(ctx, OpDeposit, []string{a, amt}) == nil {
					net += int64(o.Amt)
				}
			case 1:
				if c.Invoke(ctx, OpWithdraw, []string{a, amt}) == nil {
					net -= int64(o.Amt)
				}
			case 2:
				_ = c.Invoke(ctx, OpTransfer, []string{a, b, amt}) // conserves
			case 3:
				_ = c.Invoke(ctx, OpAmalgamate, []string{a, b}) // conserves
			}
		}
		total, err := TotalBalance(ctx.Get, accounts)
		if err != nil {
			return false
		}
		return total == int64(accounts)*2000+net
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
