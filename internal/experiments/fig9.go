package experiments

import (
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/randx"
	"hammer/internal/taskproc"
)

// Fig9Result is one Fig 9 data point: how long one algorithm takes to match
// a stream of confirmed blocks against a tracked-transaction population.
type Fig9Result struct {
	Algorithm string // "taskproc" (Hammer, Algorithm 1) or "batch"
	QueueLen  int    // tracked transactions (n)
	BlockTxs  int    // transactions parsed from blocks (m total)
	Duration  time.Duration
	Matched   int
}

// String renders the row.
func (r Fig9Result) String() string {
	return fmt.Sprintf("%-8s n=%6d m=%5d  %12v  (%d matched)",
		r.Algorithm, r.QueueLen, r.BlockTxs, r.Duration, r.Matched)
}

// buildFig9Workload tracks n transactions in the matcher and returns blocks
// carrying m of their IDs (interleaved with foreign transactions the driver
// never sent, which the Bloom filter should reject cheaply).
func buildFig9Workload(n, m int, seed int64) (tracked []taskproc.TxRecord, blocks []*chain.Block) {
	rng := randx.New(seed)
	tracked = make([]taskproc.TxRecord, n)
	ids := make([]chain.TxID, n)
	for i := range tracked {
		var id chain.TxID
		rng.Read(id[:])
		ids[i] = id
		tracked[i] = taskproc.TxRecord{ID: id, StartTime: time.Duration(i), Status: chain.StatusPending}
	}
	// m matched transactions spread over blocks of 500, each block padded
	// with 10% foreign transactions.
	perBlock := 500
	picked := rng.Perm(n)[:min(m, n)]
	for start := 0; start < len(picked); start += perBlock {
		end := start + perBlock
		if end > len(picked) {
			end = len(picked)
		}
		blk := &chain.Block{Timestamp: time.Duration(start)}
		for _, idx := range picked[start:end] {
			blk.Txs = append(blk.Txs, &chain.Transaction{ID: ids[idx]})
			blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: ids[idx], Status: chain.StatusCommitted})
		}
		foreign := (end - start) / 10
		for i := 0; i < foreign; i++ {
			var id chain.TxID
			rng.Read(id[:])
			blk.Txs = append(blk.Txs, &chain.Transaction{ID: id})
			blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: id, Status: chain.StatusCommitted})
		}
		blocks = append(blocks, blk)
	}
	return tracked, blocks
}

// runFig9Once times one matcher over one workload.
func runFig9Once(m taskproc.Matcher, tracked []taskproc.TxRecord, blocks []*chain.Block) (time.Duration, int) {
	start := time.Now()
	for _, rec := range tracked {
		m.Track(rec)
	}
	matched := 0
	for _, blk := range blocks {
		matched += m.OnBlock(blk)
	}
	return time.Since(start), matched
}

// Fig9 compares Hammer's task-processing algorithm against the batch-testing
// baseline across queue lengths and block volumes, in real time with the
// real data structures. Expected shape (paper): the baseline's time grows
// linearly with queue length (O(n·m)) while Hammer's stays flat, ≈4× faster
// at a 100k queue.
func Fig9(opts Options) ([]Fig9Result, error) {
	opts.fillDefaults()
	var out []Fig9Result
	for _, n := range opts.QueueLens {
		for _, m := range opts.BlockSizes {
			if m > n {
				continue
			}
			tracked, blocks := buildFig9Workload(n, m, opts.Seed)

			dur, matched := runFig9Once(taskproc.NewProcessor(n), tracked, blocks)
			if matched != m {
				return nil, fmt.Errorf("experiments: fig9 taskproc matched %d of %d", matched, m)
			}
			out = append(out, Fig9Result{Algorithm: "taskproc", QueueLen: n, BlockTxs: m, Duration: dur, Matched: matched})

			dur, matched = runFig9Once(taskproc.NewBatchQueue(n), tracked, blocks)
			if matched != m {
				return nil, fmt.Errorf("experiments: fig9 batch matched %d of %d", matched, m)
			}
			out = append(out, Fig9Result{Algorithm: "batch", QueueLen: n, BlockTxs: m, Duration: dur, Matched: matched})
		}
	}
	return out, nil
}

// Fig9CSV renders the rows for the CSV exporter.
func Fig9CSV(rows []Fig9Result) (header []string, records [][]string) {
	header = []string{"algorithm", "queue_len", "block_txs", "duration_s", "matched"}
	for _, r := range rows {
		records = append(records, []string{
			r.Algorithm, fmt.Sprint(r.QueueLen), fmt.Sprint(r.BlockTxs), fmtSeconds(r.Duration), fmt.Sprint(r.Matched),
		})
	}
	return header, records
}
