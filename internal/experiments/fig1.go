package experiments

import (
	"fmt"

	"hammer/internal/timeseries/datasets"
)

// Fig1Result is the temporal distribution of the three application
// workloads over 300 hours (the paper's motivating figure).
type Fig1Result struct {
	// Series maps application name to its hourly transaction counts.
	Series map[string][]float64
	// Totals maps application name to its corpus size.
	Totals map[string]int
}

// Fig1 synthesises the three application logs and buckets them hourly.
func Fig1(opts Options) (*Fig1Result, error) {
	opts.fillDefaults()
	out := &Fig1Result{Series: map[string][]float64{}, Totals: map[string]int{}}
	for _, log := range datasets.All(opts.Seed) {
		out.Series[log.Name] = log.HourlySeries()
		out.Totals[log.Name] = len(log.Times)
	}
	return out, nil
}

// Fig1CSV renders the three series side by side.
func Fig1CSV(r *Fig1Result) (header []string, records [][]string) {
	header = []string{"hour", "defi", "sandbox", "nfts"}
	for h := 0; h < datasets.Hours; h++ {
		records = append(records, []string{
			fmt.Sprint(h),
			fmtF(r.Series["defi"][h]),
			fmtF(r.Series["sandbox"][h]),
			fmtF(r.Series["nfts"][h]),
		})
	}
	return header, records
}
