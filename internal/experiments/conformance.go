package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/committee"
	"hammer/internal/chains/ethereum"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/meepo"
	"hammer/internal/chains/neuchain"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/invariant"
	"hammer/internal/parallel"
	"hammer/internal/smallbank"
	"hammer/internal/workload"
)

// The conformance experiment is not a performance study: it sweeps every
// simulated chain through the invariant catalogue (internal/invariant) and
// reports pass/fail per suite. Suites:
//
//   - invariants: one instrumented run per chain; every streaming invariant
//     (height contiguity, hash chain, seal, receipt alignment,
//     no-double-commit, gas cap) plus end-of-run conservation must hold.
//   - determinism: two runs from the same seed must produce bitwise-identical
//     commit sequences and world state (neuchain's deterministic-execution
//     claim, applied to all four chains).
//   - replay: the committed schedule re-executed serially must reproduce the
//     live state — order-execute chains must match trivially; for Fabric this
//     is the serializability oracle for its MVCC validator. (Meepo is skipped:
//     a cross-shard transfer's debit and credit live in different shards'
//     blocks, so per-shard serial re-execution does not apply.)
//   - workers: the same run set executed at harness worker counts {1, 4,
//     NumCPU} must produce identical digests — parallelism must not leak into
//     results.
//   - scheduler: a chain-shaped event program interpreted on the timer-wheel
//     scheduler and the preserved binary-heap reference must produce
//     identical event logs (the differential replay oracle).

// ConformanceResult is one chain×suite verdict.
type ConformanceResult struct {
	Chain string
	Suite string
	Pass  bool
	// Detail says what was checked on pass, or what broke on failure.
	Detail string
}

// String renders the row.
func (r ConformanceResult) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-9s %-12s %s  %s", r.Chain, r.Suite, verdict, r.Detail)
}

// conformanceRun is the instrumented outcome of one engine run.
type conformanceRun struct {
	Chain        string
	Violations   []invariant.Violation
	CommitDigest string
	StateDigest  string
	Commits      int
	ReplayErr    error
	Replayed     bool
}

// conformanceSetup binds one chain to its load and oracle parameters.
type conformanceSetup struct {
	name    string
	offered float64
	build   func(sched eventsim.Sched, opts Options) chain.Blockchain
	engCfg  func(*core.Config)
	// replayable marks chains whose committed schedule re-executes serially
	// per shard (everything except meepo's cross-shard split transactions).
	replayable bool
	// program shapes the scheduler-oracle workload like this chain's block
	// production.
	program func(seed int64) invariant.Program
}

// conformanceSetups returns every chain family under moderate load — the
// goal is coverage of the commit paths, not peak throughput. Meepo appears
// at N ∈ {2, 4, 8} shards (the N=4 entry reshards to 8 mid-run, so the
// dynamic join path is under the same digests-at-any-worker-count proof),
// and the committee chain runs all five suites including serial replay.
func conformanceSetups(opts Options) []conformanceSetup {
	return []conformanceSetup{
		{
			name:    "ethereum",
			offered: 12,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := ethereum.DefaultConfig()
				cfg.Seed = opts.Seed
				cfg.State = opts.stateFactory()
				return ethereum.New(sched, cfg)
			},
			engCfg:     func(c *core.Config) { c.DrainTimeout = 5 * time.Minute },
			replayable: true,
			// PoW: slow stochastic block cadence, gas-capped (count-cut) blocks.
			program: func(seed int64) invariant.Program {
				return invariant.Program{
					Seed: seed, Duration: 2 * time.Second,
					InjectEvery: 5 * time.Millisecond, JitterFrac: 0.8,
					CutSize: 60, BatchTimeout: 300 * time.Millisecond,
					ExecCost: 20 * time.Millisecond, PollEvery: 100 * time.Millisecond,
				}
			},
		},
		{
			name:    "fabric",
			offered: 120,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := fabric.DefaultConfig()
				cfg.State = opts.stateFactory()
				return fabric.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 4
				c.SubmitCost = 500 * time.Microsecond
			},
			replayable: true,
			// Orderer: count-cut blocks with a batch timeout backstop.
			program: func(seed int64) invariant.Program {
				return invariant.Program{
					Seed: seed, Duration: 2 * time.Second,
					InjectEvery: 2 * time.Millisecond, JitterFrac: 0.5,
					CutSize: 100, BatchTimeout: 250 * time.Millisecond,
					ExecCost: 15 * time.Millisecond, PollEvery: 100 * time.Millisecond,
				}
			},
		},
		{
			name:    "meepo",
			offered: 2500,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := meepo.DefaultConfig()
				cfg.State = opts.stateFactory()
				return meepo.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
			replayable: false,
			// Epoch-driven: pure timeout cutting, count cut never fires.
			program: func(seed int64) invariant.Program {
				return invariant.Program{
					Seed: seed, Duration: 2 * time.Second,
					InjectEvery: 400 * time.Microsecond, JitterFrac: 0.5,
					CutSize: 1 << 20, BatchTimeout: 50 * time.Millisecond,
					ExecCost: 8 * time.Millisecond, PollEvery: 100 * time.Millisecond,
				}
			},
		},
		{
			name:    "meepo-n4",
			offered: 2500,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := meepo.DefaultConfig()
				cfg.Shards = 4
				cfg.State = opts.stateFactory()
				// Join four more shards mid-run: the dynamic reshard path
				// must hold every digest identity the static layout does.
				cfg.Reshard = []meepo.ReshardEvent{
					{At: time.Duration(opts.MeasureSeconds) * time.Second / 2, Shards: 8},
				}
				return meepo.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
			replayable: false,
			program: func(seed int64) invariant.Program {
				return invariant.Program{
					Seed: seed, Duration: 2 * time.Second,
					InjectEvery: 400 * time.Microsecond, JitterFrac: 0.5,
					CutSize: 1 << 20, BatchTimeout: 40 * time.Millisecond,
					ExecCost: 6 * time.Millisecond, PollEvery: 100 * time.Millisecond,
				}
			},
		},
		{
			name:    "meepo-n8",
			offered: 3000,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := meepo.DefaultConfig()
				cfg.Shards = 8
				cfg.State = opts.stateFactory()
				return meepo.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
			replayable: false,
			program: func(seed int64) invariant.Program {
				return invariant.Program{
					Seed: seed, Duration: 2 * time.Second,
					InjectEvery: 300 * time.Microsecond, JitterFrac: 0.5,
					CutSize: 1 << 20, BatchTimeout: 30 * time.Millisecond,
					ExecCost: 4 * time.Millisecond, PollEvery: 100 * time.Millisecond,
				}
			},
		},
		{
			name:    "committee",
			offered: 2000,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := committee.DefaultConfig()
				cfg.State = opts.stateFactory()
				return committee.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
			replayable: true,
			// BFT rounds: paced proposals with two vote round trips folded
			// into the per-block cost.
			program: func(seed int64) invariant.Program {
				return invariant.Program{
					Seed: seed, Duration: 2 * time.Second,
					InjectEvery: 500 * time.Microsecond, JitterFrac: 0.5,
					CutSize: 2000, BatchTimeout: 250 * time.Millisecond,
					ExecCost: 10 * time.Millisecond, PollEvery: 100 * time.Millisecond,
				}
			},
		},
		{
			name:    "neuchain",
			offered: 4000,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := neuchain.DefaultConfig()
				cfg.State = opts.stateFactory()
				return neuchain.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
			replayable: true,
			// Fast epochs: high injection rate, small exec cost.
			program: func(seed int64) invariant.Program {
				return invariant.Program{
					Seed: seed, Duration: 2 * time.Second,
					InjectEvery: 250 * time.Microsecond, JitterFrac: 0.5,
					CutSize: 500, BatchTimeout: 50 * time.Millisecond,
					ExecCost: 5 * time.Millisecond, PollEvery: 100 * time.Millisecond,
				}
			},
		},
	}
}

// conformanceStateDigest fingerprints whatever world state the chain
// exposes (single state or per-shard states).
func conformanceStateDigest(bc chain.Blockchain) string {
	switch c := bc.(type) {
	case interface{ State() *chain.State }:
		return invariant.StateDigest(c.State())
	case interface {
		ShardState(int) (*chain.State, error)
	}:
		var states []*chain.State
		for sh := 0; sh < bc.Shards(); sh++ {
			st, err := c.ShardState(sh)
			if err != nil {
				return "unavailable"
			}
			states = append(states, st)
		}
		return invariant.StateDigest(states...)
	default:
		return "unavailable"
	}
}

// conformanceRuns builds two identical instrumented runs per chain: the
// pair feeds the determinism suite, and each run feeds the invariant,
// replay and worker suites.
func conformanceRuns(opts Options) []harness.Run[conformanceRun] {
	var runs []harness.Run[conformanceRun]
	for _, setup := range conformanceSetups(opts) {
		for rep := 0; rep < 2; rep++ {
			setup, rep := setup, rep
			runs = append(runs, harness.Run[conformanceRun]{
				Name: fmt.Sprintf("conformance/%s/run%d", setup.name, rep),
				Seed: opts.Seed,
				Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
					sched := opts.NewSched()
					bc := setup.build(sched, opts)
					cfg := core.DefaultConfig()
					cfg.Seed = seed
					cfg.Workload.Accounts = opts.Accounts
					cfg.Workload.Seed = seed
					cfg.Control = workload.Constant(setup.offered, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
					cfg.SignMode = core.SignOff
					cfg.Invariants = true
					if setup.engCfg != nil {
						setup.engCfg(&cfg)
					}
					return sched, bc, cfg, nil
				},
				Digest: func(res *core.Result, bc chain.Blockchain) (conformanceRun, error) {
					row := conformanceRun{
						Chain:        setup.name,
						Violations:   res.Violations,
						CommitDigest: res.CommitDigest,
						StateDigest:  conformanceStateDigest(bc),
						Commits:      res.Report.Committed,
					}
					// Replaying once per chain is enough; it is the most
					// expensive check.
					if setup.replayable && rep == 0 {
						row.Replayed = true
						row.ReplayErr = conformanceReplay(bc)
					}
					return row, nil
				},
			})
		}
	}
	return runs
}

// conformanceReplay re-executes every shard's committed schedule serially
// and diffs the result against the live state.
func conformanceReplay(bc chain.Blockchain) error {
	single, ok := bc.(interface{ State() *chain.State })
	if !ok {
		return fmt.Errorf("chain exposes no state for replay")
	}
	replayed, err := invariant.ReplaySerial(bc, 0, smallbank.Contract{})
	if err != nil {
		return err
	}
	return invariant.DiffStates(replayed, single.State())
}

// conformanceWorkerCounts is the sweep of harness worker counts the workers
// suite compares: serial, a fixed small pool, and one worker per core.
func conformanceWorkerCounts() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	var out []int
	for _, c := range counts {
		dup := false
		for _, seen := range out {
			dup = dup || seen == c
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// Conformance sweeps every chain through the conformance suites and returns
// one verdict row per chain×suite.
func Conformance(ctx context.Context, opts Options) ([]ConformanceResult, error) {
	opts.fillDefaults()
	runs := conformanceRuns(opts)

	// Baseline execution, serial: the reference digests every other worker
	// count must reproduce.
	workerCounts := conformanceWorkerCounts()
	byWorkers := make(map[int][]conformanceRun, len(workerCounts))
	for _, wc := range workerCounts {
		hopts := harness.Options{Workers: wc, OnProgress: opts.OnProgress}
		rows, err := harness.Collect(harness.Execute(ctx, runs, hopts))
		if err != nil {
			return nil, fmt.Errorf("experiments: conformance (workers=%d): %w", wc, err)
		}
		byWorkers[wc] = rows
	}
	base := byWorkers[workerCounts[0]]

	var out []ConformanceResult
	for i, setup := range conformanceSetups(opts) {
		run0, run1 := base[2*i], base[2*i+1]

		// invariants: streaming catalogue + conservation, and the run must
		// actually have exercised the chain.
		inv := ConformanceResult{Chain: setup.name, Suite: "invariants", Pass: true,
			Detail: fmt.Sprintf("%d commits, 0 violations", run0.Commits)}
		if len(run0.Violations) > 0 {
			inv.Pass = false
			inv.Detail = fmt.Sprintf("%d violations, first: %s", len(run0.Violations), run0.Violations[0])
		} else if run0.Commits == 0 {
			inv.Pass = false
			inv.Detail = "run committed nothing"
		}
		out = append(out, inv)

		// determinism: same seed, same commit sequence and world state.
		det := ConformanceResult{Chain: setup.name, Suite: "determinism", Pass: true,
			Detail: "commit and state digests identical across same-seed runs"}
		if run0.CommitDigest != run1.CommitDigest {
			det.Pass = false
			det.Detail = "commit digests differ between same-seed runs"
		} else if run0.StateDigest != run1.StateDigest {
			det.Pass = false
			det.Detail = "state digests differ between same-seed runs"
		}
		out = append(out, det)

		// replay: serial re-execution of the committed schedule.
		if setup.replayable {
			rep := ConformanceResult{Chain: setup.name, Suite: "replay", Pass: true,
				Detail: "serial replay reproduces the live state"}
			if !run0.Replayed {
				rep.Pass = false
				rep.Detail = "replay did not run"
			} else if run0.ReplayErr != nil {
				rep.Pass = false
				rep.Detail = run0.ReplayErr.Error()
			}
			out = append(out, rep)
		}

		// workers: digests identical at every worker count.
		wrk := ConformanceResult{Chain: setup.name, Suite: "workers", Pass: true,
			Detail: fmt.Sprintf("digests identical at workers=%v", workerCounts)}
		for _, wc := range workerCounts[1:] {
			rows := byWorkers[wc]
			for _, j := range []int{2 * i, 2*i + 1} {
				if rows[j].CommitDigest != base[j].CommitDigest || rows[j].StateDigest != base[j].StateDigest {
					wrk.Pass = false
					wrk.Detail = fmt.Sprintf("digest changed between workers=%d and workers=%d", workerCounts[0], wc)
				}
			}
		}
		out = append(out, wrk)

		// scheduler: the differential replay oracle on a chain-shaped
		// program — wheel vs heap vs sharded engine, swept across pool
		// worker counts because the sharded barrier runs on the pool.
		sch := ConformanceResult{Chain: setup.name, Suite: "scheduler", Pass: true,
			Detail: fmt.Sprintf("wheel, heap and sharded engines match event-for-event at workers=%v", workerCounts)}
		func() {
			defer parallel.SetWorkers(parallel.Workers())
			for _, wc := range workerCounts {
				parallel.SetWorkers(wc)
				if err := invariant.DiffSchedulers(setup.program(opts.Seed)); err != nil {
					sch.Pass = false
					sch.Detail = fmt.Sprintf("workers=%d: %v", wc, err)
					return
				}
			}
		}()
		out = append(out, sch)
	}
	return out, nil
}

// ConformanceCSV renders the verdict rows.
func ConformanceCSV(rows []ConformanceResult) (header []string, records [][]string) {
	header = []string{"chain", "suite", "pass", "detail"}
	for _, r := range rows {
		records = append(records, []string{r.Chain, r.Suite, fmt.Sprint(r.Pass), r.Detail})
	}
	return header, records
}
