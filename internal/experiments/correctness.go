package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/fabric"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/workload"
)

// CorrectnessResult reports the §V-C validation: the framework's statistics
// are compared against the SUT's node-side commit log (standing in for the
// paper's Python analysis of Fabric peer logs), and the visualization
// phase's SQL output is cross-checked against the in-memory analysis.
type CorrectnessResult struct {
	Audit *core.CorrectnessReport
	Viz   *core.VizReport
	// FrameworkTPS is the throughput the framework computed.
	FrameworkTPS float64
	// Submitted / Committed are the run totals.
	Submitted int
	Committed int
}

// String renders the summary.
func (r CorrectnessResult) String() string {
	return fmt.Sprintf("correctness: %d/%d committed match node log (time mismatches %d, missing %d); viz staged %d rows, avg latency %.1f ms",
		r.Audit.Matched, r.Audit.FrameworkCommitted, r.Audit.TimeMismatches, r.Audit.MissingFromNode,
		r.Viz.RowsStaged, r.Viz.AvgLatencyMs)
}

// Correctness runs the paper's validation workload — 100,000 transactions
// at 600 TPS against Fabric (scaled by opts) — and cross-checks the
// framework's records against the node audit log.
func Correctness(ctx context.Context, opts Options) (*CorrectnessResult, error) {
	opts.fillDefaults()
	run := harness.Run[*CorrectnessResult]{
		Name: "correctness/fabric",
		Seed: opts.Seed,
		Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
			sched := opts.NewSched()
			fcfg := fabric.DefaultConfig()
			// The paper's Fabric deployment sustains the full 600 TPS;
			// configure the validator accordingly so all 100k transactions
			// complete, as in §V-C.
			fcfg.ValidateCostPerTx = 1400 * time.Microsecond
			fcfg.PendingCap = 1 << 20
			bc := fabric.New(sched, fcfg)

			total := 100_000
			rate := 600.0
			// Scale the run so Quick() options finish fast while Default
			// keeps the paper's parameters in miniature (the full 100k
			// version is exercised by the benchmark harness).
			if opts.MeasureSeconds < 60 {
				total = 6_000
			}
			duration := time.Duration(float64(total)/rate*float64(time.Second)) + time.Second

			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Workload.Accounts = opts.Accounts
			cfg.Workload.Seed = seed
			cfg.Control = workload.Constant(rate, duration, time.Second)
			cfg.SignMode = core.SignOff
			cfg.Clients = 4
			cfg.SubmitCost = time.Millisecond
			cfg.DrainTimeout = 30 * time.Minute
			return sched, bc, cfg, nil
		},
		Digest: func(res *core.Result, bc chain.Blockchain) (*CorrectnessResult, error) {
			audit, err := core.VerifyAgainstAuditLog(res.Records, bc)
			if err != nil {
				return nil, err
			}
			viz, err := core.Visualize(res.Records)
			if err != nil {
				return nil, err
			}
			return &CorrectnessResult{
				Audit:        audit,
				Viz:          viz,
				FrameworkTPS: res.Report.Throughput,
				Submitted:    res.Report.Submitted,
				Committed:    res.Report.Committed,
			}, nil
		},
	}
	rows, err := harness.Collect(harness.Execute(ctx, []harness.Run[*CorrectnessResult]{run}, opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows[0], nil
}
