package experiments

import (
	"context"
	"fmt"

	"hammer/internal/harness"
	"hammer/internal/models"
	"hammer/internal/timeseries"
	"hammer/internal/timeseries/datasets"
)

// Fig11Result holds one real-vs-generated sequence comparison: the model is
// trained on the first 80% of a dataset's hourly series, then extends the
// seed autoregressively over the test span, as the paper does to
// demonstrate burst and dependency tracking (and to manufacture arbitrarily
// long control sequences, §IV).
type Fig11Result struct {
	Dataset string
	// Real is the held-out tail; Generated the model's autoregressive
	// extension over the same span; OneStep the rolling one-step forecast.
	Real      []float64
	Generated []float64
	OneStep   []float64
	// OneStepMAE scores the rolling forecast against the real tail.
	OneStepMAE float64
}

// Fig11 produces the real-vs-generated comparison for every dataset; each
// dataset trains independently, so the harness runs them concurrently.
func Fig11(ctx context.Context, opts Options) ([]Fig11Result, error) {
	opts.fillDefaults()
	cfg := table3Config(opts)

	var runs []harness.Run[Fig11Result]
	for i, log := range datasets.All(opts.Seed) {
		i, name := i, log.Name
		runs = append(runs, harness.Run[Fig11Result]{
			Name: "fig11/" + name,
			Fn: func(context.Context) (Fig11Result, error) {
				// Regenerate the dataset inside the run so concurrent runs
				// never share series storage.
				log := datasets.All(opts.Seed)[i]
				series := log.HourlySeries()
				train, test := timeseries.Split(series, 0.8)
				p := models.NewHammer(cfg)
				if err := p.Fit(train); err != nil {
					return Fig11Result{}, fmt.Errorf("fit: %w", err)
				}

				generated, err := models.Generate(p, train, len(test))
				if err != nil {
					return Fig11Result{}, fmt.Errorf("generate: %w", err)
				}

				oneStep := make([]float64, 0, len(test))
				for target := len(train); target < len(series); target++ {
					start := target - cfg.Lookback
					if start < 0 {
						continue
					}
					v, err := p.Predict(series[start : start+cfg.Lookback])
					if err != nil {
						return Fig11Result{}, fmt.Errorf("predict: %w", err)
					}
					oneStep = append(oneStep, v)
				}

				return Fig11Result{
					Dataset:    name,
					Real:       append([]float64(nil), test...),
					Generated:  generated,
					OneStep:    oneStep,
					OneStepMAE: timeseries.MAE(test, oneStep),
				}, nil
			},
		})
	}
	rows, err := harness.Collect(harness.Execute(ctx, runs, opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// Fig11CSV renders one dataset's comparison for the CSV exporter.
func Fig11CSV(r Fig11Result) (header []string, records [][]string) {
	header = []string{"hour", "real", "generated", "one_step"}
	for i := range r.Real {
		gen, step := "", ""
		if i < len(r.Generated) {
			gen = fmtF(r.Generated[i])
		}
		if i < len(r.OneStep) {
			step = fmtF(r.OneStep[i])
		}
		records = append(records, []string{fmt.Sprint(i), fmtF(r.Real[i]), gen, step})
	}
	return header, records
}
