package experiments

import (
	"fmt"

	"hammer/internal/models"
	"hammer/internal/timeseries"
	"hammer/internal/timeseries/datasets"
)

// Fig11Result holds one real-vs-generated sequence comparison: the model is
// trained on the first 80% of a dataset's hourly series, then extends the
// seed autoregressively over the test span, as the paper does to
// demonstrate burst and dependency tracking (and to manufacture arbitrarily
// long control sequences, §IV).
type Fig11Result struct {
	Dataset string
	// Real is the held-out tail; Generated the model's autoregressive
	// extension over the same span; OneStep the rolling one-step forecast.
	Real      []float64
	Generated []float64
	OneStep   []float64
	// OneStepMAE scores the rolling forecast against the real tail.
	OneStepMAE float64
}

// Fig11 produces the real-vs-generated comparison for every dataset.
func Fig11(opts Options) ([]Fig11Result, error) {
	opts.fillDefaults()
	cfg := table3Config(opts)

	var out []Fig11Result
	for _, log := range datasets.All(opts.Seed) {
		series := log.HourlySeries()
		train, test := timeseries.Split(series, 0.8)
		p := models.NewHammer(cfg)
		if err := p.Fit(train); err != nil {
			return nil, fmt.Errorf("experiments: fig11 %s: %w", log.Name, err)
		}

		generated, err := models.Generate(p, train, len(test))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig11 generate %s: %w", log.Name, err)
		}

		oneStep := make([]float64, 0, len(test))
		for target := len(train); target < len(series); target++ {
			start := target - cfg.Lookback
			if start < 0 {
				continue
			}
			v, err := p.Predict(series[start : start+cfg.Lookback])
			if err != nil {
				return nil, fmt.Errorf("experiments: fig11 predict %s: %w", log.Name, err)
			}
			oneStep = append(oneStep, v)
		}

		out = append(out, Fig11Result{
			Dataset:    log.Name,
			Real:       append([]float64(nil), test...),
			Generated:  generated,
			OneStep:    oneStep,
			OneStepMAE: timeseries.MAE(test, oneStep),
		})
	}
	return out, nil
}

// Fig11CSV renders one dataset's comparison for the CSV exporter.
func Fig11CSV(r Fig11Result) (header []string, records [][]string) {
	header = []string{"hour", "real", "generated", "one_step"}
	for i := range r.Real {
		gen, step := "", ""
		if i < len(r.Generated) {
			gen = fmtF(r.Generated[i])
		}
		if i < len(r.OneStep) {
			step = fmtF(r.OneStep[i])
		}
		records = append(records, []string{fmt.Sprint(i), fmtF(r.Real[i]), gen, step})
	}
	return header, records
}
