package experiments

import (
	"fmt"
	"time"

	"hammer/internal/chains/basechain"
	"hammer/internal/sign"
	"hammer/internal/workload"
)

// Fig8SimResult is one simulated Fig 8 data point: the preparation makespan
// of a signing strategy on a W-core testbed client, with the per-signature
// cost calibrated from real ECDSA signing on this machine.
type Fig8SimResult struct {
	Strategy string
	Count    int
	Workers  int
	// SignCost is the calibrated real cost of one signature.
	SignCost time.Duration
	// Makespan is the virtual time until every transaction has been
	// signed and handed to execution.
	Makespan time.Duration
	// Speedup is relative to the serial strategy.
	Speedup float64
}

// String renders the row.
func (r Fig8SimResult) String() string {
	return fmt.Sprintf("%-14s %6d txs on %d cores  %10v  %5.2fx",
		r.Strategy, r.Count, r.Workers, r.Makespan.Round(time.Millisecond), r.Speedup)
}

// CalibrateSignCost measures the real per-signature cost by signing a small
// batch of transactions with ECDSA P-256.
func CalibrateSignCost(seed int64) (time.Duration, error) {
	signer, err := sign.NewSigner(seed)
	if err != nil {
		return 0, err
	}
	gen, err := workload.NewGenerator(workload.Profile{
		Name: "calibrate", Accounts: 100, InitialBalance: 1, MaxAmount: 10, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	const n = 256
	txs := gen.Batch(n, "c", "s")
	start := time.Now()
	if err := sign.SignSerial(txs, signer); err != nil {
		return 0, err
	}
	return time.Since(start) / n, nil
}

// Fig8Simulated reproduces Fig 8 on the paper's multi-core testbed via
// discrete-event simulation: the per-signature cost is measured for real on
// this machine, then the three strategies are replayed on a virtual client
// with the given worker count. execRate is how fast the execution phase can
// consume prepared transactions into its send pipeline (tx/s); pipelining
// hides signing behind that consumption, which is where the paper's ≈6.88×
// over serial comes from.
func Fig8Simulated(opts Options, workers int, execRate float64) ([]Fig8SimResult, error) {
	opts.fillDefaults()
	if workers <= 0 {
		workers = 8
	}
	if execRate <= 0 {
		execRate = 500_000
	}
	signCost, err := CalibrateSignCost(opts.Seed)
	if err != nil {
		return nil, err
	}
	n := opts.SignCount
	execGap := time.Duration(float64(time.Second) / execRate)

	// dispatchOverhead models the queue/channel coordination per
	// transaction that keeps real pools below perfect scaling.
	const dispatchOverhead = 8 * time.Microsecond

	run := func(strategy string) time.Duration {
		sched := opts.NewSched()
		var pool *basechain.Compute
		switch strategy {
		case "serial":
			pool = basechain.NewCompute(sched, 1)
		default:
			pool = basechain.NewCompute(sched, workers)
		}
		perTx := signCost
		if strategy != "serial" {
			perTx += dispatchOverhead
		}

		var lastReady time.Duration
		for i := 0; i < n; i++ {
			done := pool.Run(perTx, nil)
			if done > lastReady {
				lastReady = done
			}
		}
		switch strategy {
		case "async-pipeline":
			// Execution consumes transactions as they are signed; the
			// makespan is when the last transaction is both signed and
			// consumed.
			execDone := time.Duration(n) * execGap
			if lastReady > execDone {
				return lastReady
			}
			return execDone
		default:
			// Serial and async wait for the whole batch, then execution
			// starts from zero.
			return lastReady + time.Duration(n)*execGap
		}
	}

	serial := run("serial")
	var out []Fig8SimResult
	for _, strategy := range []string{"serial", "async", "async-pipeline"} {
		makespan := run(strategy)
		out = append(out, Fig8SimResult{
			Strategy: strategy,
			Count:    n,
			Workers:  workers,
			SignCost: signCost,
			Makespan: makespan,
			Speedup:  serial.Seconds() / makespan.Seconds(),
		})
	}
	return out, nil
}

// Fig8SimCSV renders the rows for the CSV exporter.
func Fig8SimCSV(rows []Fig8SimResult) (header []string, records [][]string) {
	header = []string{"strategy", "count", "workers", "sign_cost_us", "makespan_s", "speedup_vs_serial"}
	for _, r := range rows {
		records = append(records, []string{
			r.Strategy, fmt.Sprint(r.Count), fmt.Sprint(r.Workers),
			fmt.Sprintf("%.1f", float64(r.SignCost.Nanoseconds())/1000), fmtSeconds(r.Makespan), fmtF(r.Speedup),
		})
	}
	return header, records
}
