package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/fabric"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/loadplane"
	"hammer/internal/metrics"
)

// LoadPlaneRow is one scale point of the open- vs closed-loop comparison:
// the same client population, service model and duration, driven by the two
// injection disciplines.
type LoadPlaneRow struct {
	Mode         string // "open" | "closed"
	Clients      int
	Workers      int // generation shards (0 for the closed-loop model)
	OfferedPerS  int64
	AdmittedPerS int64
	ServedPerS   int64
	DroppedFrac  float64
	FinalQueue   int64
	AvgLatencyMs float64
	Checksum     uint64 // arrival-multiset checksum (open-loop only)
}

// String renders the row.
func (r LoadPlaneRow) String() string {
	return fmt.Sprintf("%-6s %9d clients  offered %8d/s admitted %8d/s served %8d/s  dropped %5.1f%%  queue %7d  latency %8.1f ms",
		r.Mode, r.Clients, r.OfferedPerS, r.AdmittedPerS, r.ServedPerS, 100*r.DroppedFrac, r.FinalQueue, r.AvgLatencyMs)
}

// LoadPlaneSpec is the canonical spec for a given population: the service
// model scales with the population (capacity at half the offered rate, so
// every scale point saturates identically) and everything is a pure function
// of (clients, seed, seconds) — the CLI's distributed mode and the in-process
// golden derive the same spec from the same flags, which is what makes their
// CSVs comparable byte-for-byte.
func LoadPlaneSpec(clients int, seed int64, seconds int) loadplane.Spec {
	spec := loadplane.DefaultSpec()
	spec.Clients = clients
	spec.Seed = seed
	spec.Duration = time.Duration(seconds) * time.Second
	offered := int64(float64(clients) * spec.RatePerClient)
	spec.Service.RatePerSec = offered/2 + 1
	spec.Service.QueueCap = offered + 1
	return spec
}

// summarize folds an evaluated series into one row.
func summarize(mode string, spec loadplane.Spec, workers int, rows []loadplane.Row) LoadPlaneRow {
	var offered, admitted, served, dropped, latNs int64
	var checksum uint64
	for _, r := range rows {
		offered += r.Offered
		admitted += r.Admitted
		served += r.Served
		dropped += r.Dropped
		latNs += r.AvgLatencyNs
		checksum += r.Checksum
	}
	secs := int64(spec.Duration / time.Second)
	if secs < 1 {
		secs = 1
	}
	out := LoadPlaneRow{
		Mode:     mode,
		Clients:  spec.Clients,
		Workers:  workers,
		Checksum: checksum,
	}
	out.OfferedPerS = offered / secs
	out.AdmittedPerS = admitted / secs
	out.ServedPerS = served / secs
	if offered > 0 {
		out.DroppedFrac = float64(dropped) / float64(offered)
	}
	if n := int64(len(rows)); n > 0 {
		out.AvgLatencyMs = float64(latNs/n) / 1e6
	}
	out.FinalQueue = rows[len(rows)-1].Queue
	return out
}

// LoadPlane sweeps the client population, generating each scale's open-loop
// arrivals in-process (4 shards — the merge is partition-invariant, so the
// shard count is a throughput knob, not a results knob) and evaluating the
// closed-loop model over the identical population for contrast: open-loop
// exposes the drop rate and latency climb that closed-loop feedback hides.
func LoadPlane(ctx context.Context, opts Options) ([]LoadPlaneRow, error) {
	opts.fillDefaults()
	const shards = 4
	rows := make([]LoadPlaneRow, 0, 2*len(opts.LoadClients))
	for _, clients := range opts.LoadClients {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec := LoadPlaneSpec(clients, opts.Seed, opts.MeasureSeconds)
		merged, err := loadplane.InProcess(ctx, spec, shards)
		if err != nil {
			return nil, fmt.Errorf("experiments: loadplane %d clients: %w", clients, err)
		}
		rows = append(rows, summarize("open", spec, shards, loadplane.Evaluate(spec, merged)))
		rows = append(rows, summarize("closed", spec, 0, loadplane.ClosedLoop(spec)))
	}
	return rows, nil
}

// LoadPlaneCSV renders the scale sweep for the CSV exporter.
func LoadPlaneCSV(rows []LoadPlaneRow) (header []string, records [][]string) {
	header = []string{"mode", "clients", "workers", "offered_per_s", "admitted_per_s",
		"served_per_s", "dropped_frac", "final_queue", "avg_latency_ms", "checksum"}
	for _, r := range rows {
		records = append(records, []string{
			r.Mode, fmt.Sprint(r.Clients), fmt.Sprint(r.Workers),
			fmt.Sprint(r.OfferedPerS), fmt.Sprint(r.AdmittedPerS), fmt.Sprint(r.ServedPerS),
			fmtF(r.DroppedFrac), fmt.Sprint(r.FinalQueue), fmtF(r.AvgLatencyMs),
			fmt.Sprintf("%016x", r.Checksum),
		})
	}
	return header, records
}

// LoadPlaneDriveRow is one SUT run driven by the load plane's arrival
// schedule instead of a flat rate.
type LoadPlaneDriveRow struct {
	Driver string
	ChainResult
}

// String renders the row.
func (r LoadPlaneDriveRow) String() string {
	return fmt.Sprintf("%-12s %s", r.Driver, r.ChainResult)
}

// LoadPlaneDriveRuns describes the chain-driving demo: a Fabric deployment
// injected under the open-loop arrival schedule (via core.OpenLoopControl)
// with the Hammer driver and the Caliper-style interactive driver — the
// end-to-end path from distributed generation into the evaluation engine.
func LoadPlaneDriveRuns(opts Options) ([]harness.Run[LoadPlaneDriveRow], error) {
	opts.fillDefaults()
	// A small population whose offered load (~400 tx/s) sits at Fabric's
	// saturation point from Fig 6.
	spec := LoadPlaneSpec(800, opts.Seed, opts.MeasureSeconds)
	merged, err := loadplane.InProcess(context.Background(), spec, 2)
	if err != nil {
		return nil, err
	}
	drivers := []struct {
		name string
		mode core.DriverKind
	}{
		{"hammer", core.DriverHammer},
		{"interactive", core.DriverInteractive},
	}
	runs := make([]harness.Run[LoadPlaneDriveRow], 0, len(drivers))
	for _, d := range drivers {
		d := d
		runs = append(runs, harness.Run[LoadPlaneDriveRow]{
			Name: "loadplane/drive-" + d.name,
			Seed: opts.Seed,
			Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
				sched := opts.NewSched()
				fcfg := fabric.DefaultConfig()
				fcfg.PendingCap = 300
				bc := fabric.New(sched, fcfg)
				cfg := core.DefaultConfig()
				cfg.Seed = seed
				cfg.Workload.Accounts = opts.Accounts
				cfg.Workload.Seed = seed
				cfg.Clients = 4
				cfg.Control = core.OpenLoopControl(spec, merged, 0)
				cfg.Driver = d.mode
				cfg.SignMode = core.SignOff
				return sched, bc, cfg, nil
			},
			Digest: func(res *core.Result, bc chain.Blockchain) (LoadPlaneDriveRow, error) {
				cr, err := digestChainResult(res, bc)
				return LoadPlaneDriveRow{Driver: d.name, ChainResult: cr}, err
			},
		})
	}
	return runs, nil
}

// LoadPlaneDrive executes the chain-driving demo.
func LoadPlaneDrive(ctx context.Context, opts Options) ([]LoadPlaneDriveRow, error) {
	runs, err := LoadPlaneDriveRuns(opts)
	if err != nil {
		return nil, err
	}
	rows, err := harness.Collect(harness.Execute(ctx, runs, opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// LoadPlaneDriveCSV renders the drive demo for the CSV exporter.
func LoadPlaneDriveCSV(rows []LoadPlaneDriveRow) (header []string, records [][]string) {
	header = []string{"driver", "throughput_tps", "avg_latency_s", "p95_latency_s", "committed", "aborted", "rejected", "submitted"}
	for _, r := range rows {
		records = append(records, []string{
			r.Driver, fmtF(r.Throughput), fmtSeconds(r.AvgLatency), fmtSeconds(r.P95Latency),
			fmt.Sprint(r.Committed), fmt.Sprint(r.Aborted), fmt.Sprint(r.Rejected), fmt.Sprint(r.Submitted),
		})
	}
	return header, records
}

// LoadPlaneMergedSeries generates the canonical spec's merged series
// in-process — the golden the CI smoke compares a distributed run against.
func LoadPlaneMergedSeries(ctx context.Context, clients, shards int, seed int64, seconds int) (loadplane.Spec, []metrics.Window, error) {
	spec := LoadPlaneSpec(clients, seed, seconds)
	merged, err := loadplane.InProcess(ctx, spec, shards)
	return spec, merged, err
}
