package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"hammer/internal/viz"
)

// The golden files were captured from the pre-timer-wheel implementation
// (lazy-cancel binary heap, one scheduler event per injected transaction).
// These tests pin the determinism invariant of the hot-path overhaul: the
// wheel scheduler and streaming injection must reproduce the exact event
// interleaving of the original code, making serial quick-mode output
// byte-identical. Regenerate only if an experiment's semantics deliberately
// change: go run ./cmd/hammer-bench -exp fig6,fig7 -quick -parallel 1, then
// copy the CSVs over testdata/.

func goldenOpts() Options {
	opts := Quick()
	opts.Workers = 1 // serial: parallel sweeps interleave progress, not results
	return opts
}

func renderCSV(t *testing.T, header []string, rows [][]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := viz.CSV(&buf, header, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestFig6QuickSerialGolden(t *testing.T) {
	rows, err := Fig6(context.Background(), goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	header, csvRows := Fig6CSV(rows)
	checkGolden(t, "fig6_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}

func TestFig7QuickSerialGolden(t *testing.T) {
	rows, err := Fig7(context.Background(), goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	header, csvRows := Fig7CSV(rows)
	checkGolden(t, "fig7_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}

// TestFig6ShardedSchedulerGolden pins the sharded engine's byte-identity
// promise at the experiment level: the same golden CSV must come out when
// every simulation runs on a 4-shard scheduler.
func TestFig6ShardedSchedulerGolden(t *testing.T) {
	opts := goldenOpts()
	opts.SchedShards = 4
	rows, err := Fig6(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	header, csvRows := Fig6CSV(rows)
	checkGolden(t, "fig6_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}

func TestFig7ShardedSchedulerGolden(t *testing.T) {
	opts := goldenOpts()
	opts.SchedShards = 4
	rows, err := Fig7(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	header, csvRows := Fig7CSV(rows)
	checkGolden(t, "fig7_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}
