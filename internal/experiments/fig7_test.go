package experiments

import (
	"context"
	"testing"
)

// TestFig7Shape checks the framework-comparison artifacts: on Fabric,
// Hammer reports the highest throughput, Caliper loses responses, and
// Blockbench's queue matching inflates latency; on Ethereum the three
// frameworks roughly agree.
func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	get := func(chain, fw string) FrameworkResult {
		for _, r := range rows {
			t.Log(r)
			if r.Chain == chain && r.Framework == fw {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", chain, fw)
		return FrameworkResult{}
	}
	fabHammer := get("fabric", "hammer")
	fabBB := get("fabric", "blockbench")
	fabCaliper := get("fabric", "caliper")

	if !(fabHammer.Throughput > fabCaliper.Throughput) {
		t.Errorf("hammer %.1f TPS should exceed caliper %.1f on fabric", fabHammer.Throughput, fabCaliper.Throughput)
	}
	if !(fabHammer.Throughput > fabBB.Throughput) {
		t.Errorf("hammer %.1f TPS should exceed blockbench %.1f on fabric", fabHammer.Throughput, fabBB.Throughput)
	}
	if fabCaliper.Dropped == 0 {
		t.Error("caliper on fabric should lose responses under load")
	}
	if fabBB.AvgLatency <= fabHammer.AvgLatency {
		t.Errorf("blockbench latency %v should exceed hammer's %v (poll-time stamping)", fabBB.AvgLatency, fabHammer.AvgLatency)
	}

	ethHammer := get("ethereum", "hammer")
	ethBB := get("ethereum", "blockbench")
	ethCaliper := get("ethereum", "caliper")
	for _, r := range []FrameworkResult{ethBB, ethCaliper} {
		ratio := r.Throughput / ethHammer.Throughput
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s reports %.1f TPS on ethereum, hammer %.1f — frameworks should roughly agree at low load",
				r.Framework, r.Throughput, ethHammer.Throughput)
		}
	}
}
