// Package experiments contains one runner per table and figure in the
// paper's evaluation (§V). Each runner describes its independent simulations
// as harness runs and executes them through harness.Execute — concurrently
// across cores, with per-run panic isolation and context cancellation — then
// returns structured rows that the CLIs and the repository benchmarks render
// as charts and CSV. Results are always in sweep order, so parallel output
// is identical to serial. DESIGN.md §3 maps each experiment to the modules
// it exercises.
package experiments

import (
	"fmt"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/harness"
)

// Options tunes how heavy the runners are. The defaults reproduce the
// paper-scale configuration; Quick() shrinks everything so the full suite
// runs in seconds (used by tests).
type Options struct {
	// Seed drives every stochastic component.
	Seed int64
	// Accounts is the SmallBank population per run.
	Accounts int
	// MeasureSeconds is the injection window for SUT experiments.
	MeasureSeconds int
	// SignCount is the workload size for the Fig 8 signing comparison.
	SignCount int
	// QueueLens and BlockSizes parameterise Fig 9.
	QueueLens  []int
	BlockSizes []int
	// ModelEpochs bounds predictor training; ModelLookback the window.
	ModelEpochs   int
	ModelLookback int
	// ModelHidden is the neural width for Table III.
	ModelHidden int
	// LoadClients is the client-population sweep for the load-plane
	// experiment (open- vs closed-loop injection at each scale).
	LoadClients []int
	// FamilyShards and FamilyCommittees are the scale axes of the
	// consensus-family sweep: Meepo shard counts and BFT committee sizes.
	FamilyShards     []int
	FamilyCommittees []int
	// CrossShardRate is the fraction of the family sweep's Meepo transfers
	// whose destination lives on a foreign shard (0 means the 0.2 default).
	CrossShardRate float64
	// Workers bounds how many runs a sweep executes concurrently;
	// 0 means one worker per core (runtime.GOMAXPROCS(0)).
	Workers int
	// SchedShards selects the event engine each simulation runs on: 0 (the
	// default) is the single timer wheel, n >= 1 is the sharded engine with
	// n wheels. Results are byte-identical either way.
	SchedShards int
	// StateBackend selects the world-state engine every SUT run mounts:
	// "" or "mem" is the in-RAM map, "paged" the disk-backed paged store
	// (internal/store/pagedstate). Results are byte-identical either way —
	// the paged-identity tests pin it.
	StateBackend string
	// StateCacheMB budgets the paged store's page cache per state instance
	// (0 = the store default, 64 MiB).
	StateCacheMB int
	// StateDir is where paged stores place their files; each state instance
	// gets a fresh subdirectory. Empty means the OS temp directory.
	StateDir string
	// States tracks every paged store the runs open, so the owner (CLI or
	// test) can read stats and release the files afterwards. Left nil with
	// StateBackend "paged", stores land in a process-wide runtime that is
	// only released at exit.
	States *StateRuntime
	// OnProgress, when set, observes every harness run completion — the
	// CLIs wire it to live progress lines and monitor counters.
	OnProgress func(harness.Progress)
}

// NewSched builds the scheduler each simulation runs on, honouring
// SchedShards. Every runner's Build closure goes through this so a sharded
// sweep exercises identical code paths.
func (o *Options) NewSched() eventsim.Sched {
	if o.SchedShards >= 1 {
		return eventsim.NewSharded(o.SchedShards)
	}
	return eventsim.New()
}

// harnessOptions translates the sweep knobs into harness options.
func (o *Options) harnessOptions() harness.Options {
	return harness.Options{Workers: o.Workers, OnProgress: o.OnProgress}
}

// Default returns paper-scale options.
func Default() Options {
	return Options{
		Seed:           7,
		Accounts:       5000,
		MeasureSeconds: 60,
		SignCount:      20000,
		QueueLens:      []int{10000, 25000, 50000, 100000},
		BlockSizes:     []int{1000, 5000, 10000},
		ModelEpochs:    150,
		ModelLookback:  24,
		ModelHidden:    16,
		LoadClients:    []int{100_000, 500_000, 1_000_000},
		// The paper-scale family sweep spans 2 to 64 shards or validators.
		FamilyShards:     []int{2, 8, 32, 64},
		FamilyCommittees: []int{2, 8, 32, 64},
		CrossShardRate:   0.2,
	}
}

// Quick returns options small enough for unit tests.
func Quick() Options {
	return Options{
		Seed:           7,
		Accounts:       500,
		MeasureSeconds: 15,
		SignCount:      600,
		QueueLens:      []int{500, 1000},
		BlockSizes:     []int{100, 200},
		ModelEpochs:    8,
		ModelLookback:  12,
		ModelHidden:    8,
		LoadClients:    []int{2_000, 10_000},
		// Small points with distinct quorum shapes: 4 tolerates one fault,
		// 7 tolerates two.
		FamilyShards:     []int{2, 4},
		FamilyCommittees: []int{4, 7},
		CrossShardRate:   0.2,
	}
}

func (o *Options) fillDefaults() {
	def := Default()
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.Accounts <= 0 {
		o.Accounts = def.Accounts
	}
	if o.MeasureSeconds <= 0 {
		o.MeasureSeconds = def.MeasureSeconds
	}
	if o.SignCount <= 0 {
		o.SignCount = def.SignCount
	}
	if len(o.QueueLens) == 0 {
		o.QueueLens = def.QueueLens
	}
	if len(o.BlockSizes) == 0 {
		o.BlockSizes = def.BlockSizes
	}
	if o.ModelEpochs <= 0 {
		o.ModelEpochs = def.ModelEpochs
	}
	if o.ModelLookback <= 0 {
		o.ModelLookback = def.ModelLookback
	}
	if o.ModelHidden <= 0 {
		o.ModelHidden = def.ModelHidden
	}
	if len(o.LoadClients) == 0 {
		o.LoadClients = def.LoadClients
	}
	if len(o.FamilyShards) == 0 {
		o.FamilyShards = def.FamilyShards
	}
	if len(o.FamilyCommittees) == 0 {
		o.FamilyCommittees = def.FamilyCommittees
	}
	if o.CrossShardRate <= 0 {
		o.CrossShardRate = def.CrossShardRate
	}
}

// fmtSeconds renders a duration in seconds with 3 decimals for CSV rows.
func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// fmtF renders a float for CSV rows.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }
