package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/ethereum"
	"hammer/internal/chains/fabric"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/workload"
)

// FrameworkResult is one Fig 7 data point: the peak performance one
// evaluation framework reports for one SUT. The SUT is identical across
// frameworks — the differences are measurement artifacts of each
// framework's collection strategy.
type FrameworkResult struct {
	Chain      string
	Framework  string // "hammer", "blockbench", "caliper"
	Throughput float64
	AvgLatency time.Duration
	Committed  int
	Unmatched  int
	Dropped    int
}

// String renders the row.
func (r FrameworkResult) String() string {
	return fmt.Sprintf("%-9s via %-10s %8.1f TPS  latency %8v  (%d committed, %d unmatched, %d dropped)",
		r.Chain, r.Framework, r.Throughput, r.AvgLatency.Round(time.Millisecond),
		r.Committed, r.Unmatched, r.Dropped)
}

// frameworkDriver maps a published framework to the engine's driver model.
func frameworkDriver(framework string) (core.DriverKind, error) {
	switch framework {
	case "hammer":
		return core.DriverHammer, nil
	case "blockbench":
		return core.DriverBatch, nil
	case "caliper":
		return core.DriverInteractive, nil
	default:
		return 0, fmt.Errorf("experiments: unknown framework %q", framework)
	}
}

// Fig7 measures the peak performance of Ethereum and Fabric as reported by
// Hammer, Blockbench (batch testing) and Caliper (interactive testing).
// Expected shape (paper): the three frameworks agree on Ethereum (load far
// below any driver's limits), while on Fabric Hammer reports the highest
// throughput (≈239 TPS), Caliper under-reports (≈176) because its listener
// loses responses under load, and Blockbench under-reports because its
// O(n·m) queue matching falls behind.
func Fig7(ctx context.Context, opts Options) ([]FrameworkResult, error) {
	opts.fillDefaults()
	frameworks := []string{"hammer", "blockbench", "caliper"}

	var runs []harness.Run[FrameworkResult]
	for _, chainName := range []string{"ethereum", "fabric"} {
		for _, fw := range frameworks {
			runs = append(runs, frameworkRun(chainName, fw, opts))
		}
	}
	rows, err := harness.Collect(harness.Execute(ctx, runs, opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// frameworkRun describes one chain×framework evaluation for the harness.
func frameworkRun(chainName, framework string, opts Options) harness.Run[FrameworkResult] {
	return harness.Run[FrameworkResult]{
		Name: fmt.Sprintf("fig7/%s/%s", chainName, framework),
		Seed: opts.Seed,
		Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
			driver, err := frameworkDriver(framework)
			if err != nil {
				return nil, nil, core.Config{}, err
			}
			sched := opts.NewSched()
			var bc chain.Blockchain
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Workload.Accounts = opts.Accounts
			cfg.Workload.Seed = seed
			cfg.Driver = driver
			cfg.SignMode = core.SignOff

			switch chainName {
			case "ethereum":
				ecfg := ethereum.DefaultConfig()
				ecfg.MempoolCap = 100
				ecfg.Seed = seed
				bc = ethereum.New(sched, ecfg)
				cfg.Control = workload.Constant(50, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
				cfg.DrainTimeout = 5 * time.Minute
			case "fabric":
				fcfg := fabric.DefaultConfig()
				fcfg.PendingCap = 300
				bc = fabric.New(sched, fcfg)
				cfg.Control = workload.Constant(400, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
				cfg.Clients = 4
				cfg.SubmitCost = 500 * time.Microsecond
			default:
				return nil, nil, core.Config{}, fmt.Errorf("experiments: unknown chain %q", chainName)
			}

			switch driver {
			case core.DriverBatch:
				// Blockbench polls coarsely and matches against a queue that also
				// holds fire-and-forget submissions the SUT shed.
				cfg.PollInterval = time.Second
				cfg.TrackRejected = true
			case core.DriverInteractive:
				// Caliper's per-response listener: each response costs listener
				// CPU; the paper attributes its losses to that resource drain.
				cfg.EventCost = 11 * time.Millisecond
				cfg.EventBacklogLimit = 400 * time.Millisecond
			}
			return sched, bc, cfg, nil
		},
		Digest: func(res *core.Result, bc chain.Blockchain) (FrameworkResult, error) {
			rep := res.Report
			return FrameworkResult{
				Chain:      chainName,
				Framework:  framework,
				Throughput: rep.Throughput,
				AvgLatency: rep.AvgLatency,
				Committed:  rep.Committed,
				Unmatched:  rep.Unmatched,
				Dropped:    res.DroppedResponses,
			}, nil
		},
	}
}

// Fig7CSV renders the rows for the CSV exporter.
func Fig7CSV(rows []FrameworkResult) (header []string, records [][]string) {
	header = []string{"chain", "framework", "throughput_tps", "avg_latency_s", "committed", "unmatched", "dropped"}
	for _, r := range rows {
		records = append(records, []string{
			r.Chain, r.Framework, fmtF(r.Throughput), fmtSeconds(r.AvgLatency),
			fmt.Sprint(r.Committed), fmt.Sprint(r.Unmatched), fmt.Sprint(r.Dropped),
		})
	}
	return header, records
}

// PollIntervalRun measures the batch driver's reported average latency at
// one polling interval against the default Fabric deployment — the ξ1
// sensitivity of §II-C1 (coarser polls stamp completions later).
func PollIntervalRun(ctx context.Context, poll time.Duration, opts Options) (time.Duration, error) {
	opts.fillDefaults()
	run := harness.Run[time.Duration]{
		Name: fmt.Sprintf("fig7/poll=%v", poll),
		Seed: opts.Seed,
		Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
			sched := opts.NewSched()
			fcfg := fabric.DefaultConfig()
			fcfg.PendingCap = 300
			bc := fabric.New(sched, fcfg)

			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Workload.Accounts = opts.Accounts
			cfg.Workload.Seed = seed
			cfg.Driver = core.DriverBatch
			cfg.PollInterval = poll
			cfg.SignMode = core.SignOff
			cfg.Control = workload.Constant(150, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
			return sched, bc, cfg, nil
		},
		Digest: func(res *core.Result, _ chain.Blockchain) (time.Duration, error) {
			return res.Report.AvgLatency, nil
		},
	}
	rows, err := harness.Collect(harness.Execute(ctx, []harness.Run[time.Duration]{run}, opts.harnessOptions()))
	if err != nil {
		return 0, fmt.Errorf("experiments: %w", err)
	}
	return rows[0], nil
}
