package experiments

import (
	"context"

	"fmt"
	"runtime"
	"testing"
)

func TestFig1Datasets(t *testing.T) {
	r, err := Fig1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Corpus sizes should land near the paper's (Poisson-drawn).
	targets := map[string]int{"defi": 1791, "sandbox": 22674, "nfts": 233014}
	for name, want := range targets {
		got := r.Totals[name]
		if got < want*9/10 || got > want*11/10 {
			t.Errorf("%s corpus %d, want ≈%d", name, got, want)
		}
		if len(r.Series[name]) != 300 {
			t.Errorf("%s series has %d hours, want 300", name, len(r.Series[name]))
		}
	}
	// Sandbox should be the burstiest of the high-volume applications
	// (DeFi's max/mean is Poisson-noise-dominated at ~6 events/hour).
	burst := func(series []float64) float64 {
		var sum, max float64
		for _, v := range series {
			sum += v
			if v > max {
				max = v
			}
		}
		return max / (sum / float64(len(series)))
	}
	if burst(r.Series["sandbox"]) < 1.4*burst(r.Series["nfts"]) {
		t.Errorf("sandbox burstiness %.1f should dwarf nfts' %.1f",
			burst(r.Series["sandbox"]), burst(r.Series["nfts"]))
	}
}

func TestFig8Speedups(t *testing.T) {
	opts := Quick()
	opts.SignCount = 2000
	rows, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig8Result{}
	for _, r := range rows {
		t.Log(r)
		byName[r.Strategy] = r
	}
	// Real parallel speedups need real cores; on a single-CPU machine the
	// measured run can only sanity-check that nothing regresses badly.
	if runtime.NumCPU() > 1 {
		if byName["async"].Speedup < 1.5 {
			t.Errorf("async speedup %.2fx, want parallel scaling", byName["async"].Speedup)
		}
	} else if byName["async"].Speedup < 0.5 {
		t.Errorf("async speedup %.2fx collapsed even on one core", byName["async"].Speedup)
	}
	if byName["async-pipeline"].Speedup < byName["async"].Speedup*0.7 {
		t.Errorf("pipeline speedup %.2fx should be comparable to async %.2fx",
			byName["async-pipeline"].Speedup, byName["async"].Speedup)
	}
}

func TestFig8SimulatedTestbed(t *testing.T) {
	opts := Quick()
	opts.SignCount = 5000
	rows, err := Fig8Simulated(opts, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig8SimResult{}
	for _, r := range rows {
		t.Log(r)
		byName[r.Strategy] = r
	}
	pipe := byName["async-pipeline"].Speedup
	if pipe < 5 || pipe > 8.5 {
		t.Errorf("simulated async-pipeline speedup %.2fx, paper reports ≈6.88x on 8 workers", pipe)
	}
	if !(pipe > byName["async"].Speedup && byName["async"].Speedup > 1.5) {
		t.Errorf("ordering broken: pipeline %.2fx, async %.2fx, serial 1x", pipe, byName["async"].Speedup)
	}
}

func TestFig9Shape(t *testing.T) {
	opts := Quick()
	opts.QueueLens = []int{2000, 8000}
	opts.BlockSizes = []int{1000}
	rows, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(algo string, n int) Fig9Result {
		for _, r := range rows {
			if r.Algorithm == algo && r.QueueLen == n {
				return r
			}
		}
		t.Fatalf("missing %s n=%d", algo, n)
		return Fig9Result{}
	}
	for _, r := range rows {
		t.Log(r)
	}
	// Hammer faster than batch at the larger queue.
	tpBig, batchBig := get("taskproc", 8000), get("batch", 8000)
	if batchBig.Duration < 2*tpBig.Duration {
		t.Errorf("batch %v should be much slower than taskproc %v at n=8000", batchBig.Duration, tpBig.Duration)
	}
	// Batch grows superlinearly with queue length; taskproc stays flat-ish.
	batchSmall := get("batch", 2000)
	if batchBig.Duration < 2*batchSmall.Duration {
		t.Errorf("batch time should grow with queue length: %v at 2000 vs %v at 8000",
			batchSmall.Duration, batchBig.Duration)
	}
}

func TestCorrectnessQuick(t *testing.T) {
	res, err := Correctness(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Audit.Consistent() {
		t.Errorf("framework statistics inconsistent with node log: %+v", res.Audit)
	}
	if res.Audit.FrameworkCommitted == 0 {
		t.Fatal("no committed transactions measured")
	}
	if res.Viz.RowsStaged != res.Submitted {
		t.Errorf("visualization staged %d rows, submitted %d", res.Viz.RowsStaged, res.Submitted)
	}
}

func TestFig10ThreadSweepQuick(t *testing.T) {
	opts := Quick()
	opts.Accounts = 2000
	var rows []Fig10Result
	for _, threads := range []int{1, 2, 4} {
		r, err := Fig10Run(context.Background(), "threads", 1, threads, 300, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(r)
		rows = append(rows, r)
	}
	if !(rows[1].Throughput > rows[0].Throughput) {
		t.Errorf("2 threads (%.1f TPS) should beat 1 thread (%.1f)", rows[1].Throughput, rows[0].Throughput)
	}
	if !(rows[1].Throughput > rows[2].Throughput) {
		t.Errorf("2 threads (%.1f TPS) should beat 4 threads (%.1f)", rows[1].Throughput, rows[2].Throughput)
	}
	if !(rows[1].AvgLatency < rows[0].AvgLatency && rows[1].AvgLatency < rows[2].AvgLatency) {
		t.Errorf("2 threads latency %v should be the minimum (1t %v, 4t %v)",
			rows[1].AvgLatency, rows[0].AvgLatency, rows[2].AvgLatency)
	}
}

func TestFig10ClientSweepQuick(t *testing.T) {
	opts := Quick()
	opts.Accounts = 2000
	opts.MeasureSeconds = 30
	var rows []Fig10Result
	for _, clients := range []int{1, 2, 5} {
		r, err := Fig10Run(context.Background(), "clients", clients, 2, 150, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(r)
		rows = append(rows, r)
	}
	if !(rows[1].Throughput > rows[0].Throughput) {
		t.Errorf("2 clients (%.1f TPS) should beat 1 client (%.1f)", rows[1].Throughput, rows[0].Throughput)
	}
	if !(rows[2].Throughput < rows[1].Throughput) {
		t.Errorf("5 clients (%.1f TPS) should fall below the 2-client peak (%.1f) as nodes shed load",
			rows[2].Throughput, rows[1].Throughput)
	}
	if rows[2].Rejected == 0 && rows[2].Aborted == 0 {
		t.Error("5 clients should trigger load shedding or conflicts")
	}
}

func TestDistributedShape(t *testing.T) {
	// Real-time measurements are noisy on a loaded CI machine; keep the
	// fastest of three runs per data point.
	best := map[string]DistributedResult{}
	for attempt := 0; attempt < 3; attempt++ {
		rows, err := Distributed(context.Background(), Quick(), []int{1, 4}, 2000)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			key := fmt.Sprintf("%s/%d", r.Algorithm, r.Drivers)
			if cur, ok := best[key]; !ok || r.Duration < cur.Duration {
				best[key] = r
			}
		}
	}
	get := func(algo string, drivers int) DistributedResult {
		r, ok := best[fmt.Sprintf("%s/%d", algo, drivers)]
		if !ok {
			t.Fatalf("missing %s/%d", algo, drivers)
		}
		return r
	}
	for _, r := range best {
		t.Log(r)
	}
	// The batch baseline's cost must grow steeply with foreign content;
	// Hammer's processor stays near-flat.
	b1, b4 := get("batch", 1), get("batch", 4)
	if b4.Duration < 2*b1.Duration {
		t.Errorf("batch at 4 drivers (%v) should cost far more than at 1 (%v)", b4.Duration, b1.Duration)
	}
	t4 := get("taskproc", 4)
	if b4.Duration < 5*t4.Duration {
		t.Errorf("batch (%v) should be far slower than taskproc (%v) with 75%% foreign content", b4.Duration, t4.Duration)
	}
}
