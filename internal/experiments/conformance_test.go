package experiments

import (
	"context"
	"testing"
)

// The conformance sweep is itself a test of the simulators: every suite on
// every chain must pass, in quick mode, at any worker count.
func TestConformanceQuick(t *testing.T) {
	opts := Quick()
	opts.MeasureSeconds = 6 // enough virtual time for hundreds of blocks per chain
	rows, err := Conformance(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// 4 chains × (invariants, determinism, workers, scheduler) + 3 replay
	// rows (meepo's cross-shard schedule is not serially replayable).
	if len(rows) != 4*4+3 {
		t.Fatalf("expected 19 verdict rows, got %d", len(rows))
	}
	suites := make(map[string]int)
	for _, r := range rows {
		suites[r.Suite]++
		if !r.Pass {
			t.Errorf("%s/%s failed: %s", r.Chain, r.Suite, r.Detail)
		}
	}
	for suite, want := range map[string]int{
		"invariants": 4, "determinism": 4, "replay": 3, "workers": 4, "scheduler": 4,
	} {
		if suites[suite] != want {
			t.Errorf("suite %s has %d rows, want %d", suite, suites[suite], want)
		}
	}

	header, records := ConformanceCSV(rows)
	if len(header) != 4 || len(records) != len(rows) {
		t.Fatalf("CSV shape wrong: %d columns, %d records", len(header), len(records))
	}
}
