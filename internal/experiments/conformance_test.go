package experiments

import (
	"context"
	"testing"
)

// The conformance sweep is itself a test of the simulators: every suite on
// every chain must pass, in quick mode, at any worker count.
func TestConformanceQuick(t *testing.T) {
	opts := Quick()
	opts.MeasureSeconds = 6 // enough virtual time for hundreds of blocks per chain
	rows, err := Conformance(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// 7 chain setups × (invariants, determinism, workers, scheduler) + 4
	// replay rows (meepo's cross-shard schedule is not serially replayable
	// at any shard count; ethereum, fabric, neuchain and committee are).
	if len(rows) != 7*4+4 {
		t.Fatalf("expected 32 verdict rows, got %d", len(rows))
	}
	suites := make(map[string]int)
	chains := make(map[string]int)
	for _, r := range rows {
		suites[r.Suite]++
		chains[r.Chain]++
		if !r.Pass {
			t.Errorf("%s/%s failed: %s", r.Chain, r.Suite, r.Detail)
		}
	}
	// The new families must be fully covered: committee runs all five
	// suites, the meepo shard sweep runs everything but replay.
	if chains["committee"] != 5 {
		t.Errorf("committee has %d suite rows, want 5", chains["committee"])
	}
	for _, name := range []string{"meepo", "meepo-n4", "meepo-n8"} {
		if chains[name] != 4 {
			t.Errorf("%s has %d suite rows, want 4", name, chains[name])
		}
	}
	for suite, want := range map[string]int{
		"invariants": 7, "determinism": 7, "replay": 4, "workers": 7, "scheduler": 7,
	} {
		if suites[suite] != want {
			t.Errorf("suite %s has %d rows, want %d", suite, suites[suite], want)
		}
	}

	header, records := ConformanceCSV(rows)
	if len(header) != 4 || len(records) != len(rows) {
		t.Fatalf("CSV shape wrong: %d columns, %d records", len(header), len(records))
	}
}
