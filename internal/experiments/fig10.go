package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/fabric"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/workload"
)

// Fig10Result is one Fig 10 data point: Fabric throughput and latency at a
// given client/thread configuration.
type Fig10Result struct {
	Sweep      string // "threads" or "clients"
	Clients    int
	Threads    int
	Throughput float64
	AvgLatency time.Duration
	Committed  int
	Aborted    int
	Rejected   int
}

// String renders the row.
func (r Fig10Result) String() string {
	return fmt.Sprintf("%-7s clients=%d threads=%d  %7.1f TPS  latency %9v  (%d committed, %d aborted, %d rejected)",
		r.Sweep, r.Clients, r.Threads, r.Throughput, r.AvgLatency.Round(time.Millisecond),
		r.Committed, r.Aborted, r.Rejected)
}

// fig10Run describes one Fabric evaluation at the given concurrency.
func fig10Run(sweep string, clients, threads int, offeredPerClient float64, opts Options) harness.Run[Fig10Result] {
	return harness.Run[Fig10Result]{
		Name: fmt.Sprintf("fig10/%s clients=%d threads=%d", sweep, clients, threads),
		Seed: opts.Seed,
		Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
			sched := opts.NewSched()
			fcfg := fabric.DefaultConfig()
			// A deep admission queue lets backlog (and with it MVCC conflict
			// windows) grow with offered load, which is what produces the
			// client-count behaviour of Fig 10.
			fcfg.PendingCap = 2000
			bc := fabric.New(sched, fcfg)

			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Workload.Accounts = opts.Accounts
			cfg.Workload.Seed = seed
			cfg.Clients = clients
			cfg.Threads = threads
			cfg.SignMode = core.SignOff
			// 7 ms of client CPU per submission makes two threads on a 2-vCPU
			// client machine the sweet spot: one thread cannot keep Fabric fed,
			// and beyond two the context-switch overhead shrinks capacity again.
			cfg.SubmitCost = 7 * time.Millisecond
			cfg.ThreadOverhead = 0.35
			cfg.Control = workload.Constant(offeredPerClient*float64(clients),
				time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
			cfg.DrainTimeout = 3 * time.Minute
			return sched, bc, cfg, nil
		},
		Digest: func(res *core.Result, _ chain.Blockchain) (Fig10Result, error) {
			rep := res.Report
			return Fig10Result{
				Sweep:      sweep,
				Clients:    clients,
				Threads:    threads,
				Throughput: rep.Throughput,
				AvgLatency: rep.AvgLatency,
				Committed:  rep.Committed,
				Aborted:    rep.Aborted,
				Rejected:   rep.Rejected,
			}, nil
		},
	}
}

// Fig10Run executes one Fabric evaluation at the given concurrency.
func Fig10Run(ctx context.Context, sweep string, clients, threads int, offeredPerClient float64, opts Options) (Fig10Result, error) {
	opts.fillDefaults()
	runs := []harness.Run[Fig10Result]{fig10Run(sweep, clients, threads, offeredPerClient, opts)}
	rows, err := harness.Collect(harness.Execute(ctx, runs, opts.harnessOptions()))
	if err != nil {
		return Fig10Result{}, fmt.Errorf("experiments: %w", err)
	}
	return rows[0], nil
}

// Fig10 sweeps worker threads (at one client) and client machines (at two
// threads each) against Fabric. Expected shape (paper): throughput peaks
// and latency bottoms at 2 threads (matching the client's 2 vCPUs);
// throughput peaks at 2 clients, latency rises significantly at 3-4 clients
// as conflicts grow with the backlog, and at 5 clients the nodes shed load
// — committed throughput drops while surviving-transaction latency stops
// rising.
func Fig10(ctx context.Context, opts Options) ([]Fig10Result, error) {
	opts.fillDefaults()
	var runs []harness.Run[Fig10Result]
	for _, threads := range []int{1, 2, 3, 4, 6, 8} {
		// 260 tx/s sits just under the 2-thread client capacity, so the
		// sweep isolates client-side scheduling rather than chain backlog.
		runs = append(runs, fig10Run("threads", 1, threads, 260, opts))
	}
	for _, clients := range []int{1, 2, 3, 4, 5} {
		runs = append(runs, fig10Run("clients", clients, 2, 150, opts))
	}
	rows, err := harness.Collect(harness.Execute(ctx, runs, opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// Fig10CSV renders the rows for the CSV exporter.
func Fig10CSV(rows []Fig10Result) (header []string, records [][]string) {
	header = []string{"sweep", "clients", "threads", "throughput_tps", "avg_latency_s", "committed", "aborted", "rejected"}
	for _, r := range rows {
		records = append(records, []string{
			r.Sweep, fmt.Sprint(r.Clients), fmt.Sprint(r.Threads), fmtF(r.Throughput),
			fmtSeconds(r.AvgLatency), fmt.Sprint(r.Committed), fmt.Sprint(r.Aborted), fmt.Sprint(r.Rejected),
		})
	}
	return header, records
}
