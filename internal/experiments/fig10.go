package experiments

import (
	"fmt"
	"time"

	"hammer/internal/chains/fabric"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/workload"
)

// Fig10Result is one Fig 10 data point: Fabric throughput and latency at a
// given client/thread configuration.
type Fig10Result struct {
	Sweep      string // "threads" or "clients"
	Clients    int
	Threads    int
	Throughput float64
	AvgLatency time.Duration
	Committed  int
	Aborted    int
	Rejected   int
}

// String renders the row.
func (r Fig10Result) String() string {
	return fmt.Sprintf("%-7s clients=%d threads=%d  %7.1f TPS  latency %9v  (%d committed, %d aborted, %d rejected)",
		r.Sweep, r.Clients, r.Threads, r.Throughput, r.AvgLatency.Round(time.Millisecond),
		r.Committed, r.Aborted, r.Rejected)
}

// Fig10Run executes one Fabric evaluation at the given concurrency.
func Fig10Run(sweep string, clients, threads int, offeredPerClient float64, opts Options) (Fig10Result, error) {
	sched := eventsim.New()
	fcfg := fabric.DefaultConfig()
	// A deep admission queue lets backlog (and with it MVCC conflict
	// windows) grow with offered load, which is what produces the
	// client-count behaviour of Fig 10.
	fcfg.PendingCap = 2000
	bc := fabric.New(sched, fcfg)

	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.Workload.Accounts = opts.Accounts
	cfg.Workload.Seed = opts.Seed
	cfg.Clients = clients
	cfg.Threads = threads
	cfg.SignMode = core.SignOff
	// 7 ms of client CPU per submission makes two threads on a 2-vCPU
	// client machine the sweet spot: one thread cannot keep Fabric fed,
	// and beyond two the context-switch overhead shrinks capacity again.
	cfg.SubmitCost = 7 * time.Millisecond
	cfg.ThreadOverhead = 0.35
	cfg.Control = workload.Constant(offeredPerClient*float64(clients),
		time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
	cfg.DrainTimeout = 3 * time.Minute

	eng, err := core.New(sched, bc, cfg)
	if err != nil {
		return Fig10Result{}, err
	}
	res, err := eng.Run()
	if err != nil {
		return Fig10Result{}, err
	}
	rep := res.Report
	return Fig10Result{
		Sweep:      sweep,
		Clients:    clients,
		Threads:    threads,
		Throughput: rep.Throughput,
		AvgLatency: rep.AvgLatency,
		Committed:  rep.Committed,
		Aborted:    rep.Aborted,
		Rejected:   rep.Rejected,
	}, nil
}

// Fig10 sweeps worker threads (at one client) and client machines (at two
// threads each) against Fabric. Expected shape (paper): throughput peaks
// and latency bottoms at 2 threads (matching the client's 2 vCPUs);
// throughput peaks at 2 clients, latency rises significantly at 3-4 clients
// as conflicts grow with the backlog, and at 5 clients the nodes shed load
// — committed throughput drops while surviving-transaction latency stops
// rising.
func Fig10(opts Options) ([]Fig10Result, error) {
	opts.fillDefaults()
	var out []Fig10Result
	for _, threads := range []int{1, 2, 3, 4, 6, 8} {
		// 260 tx/s sits just under the 2-thread client capacity, so the
		// sweep isolates client-side scheduling rather than chain backlog.
		r, err := Fig10Run("threads", 1, threads, 260, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig10 threads=%d: %w", threads, err)
		}
		out = append(out, r)
	}
	for _, clients := range []int{1, 2, 3, 4, 5} {
		r, err := Fig10Run("clients", clients, 2, 150, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig10 clients=%d: %w", clients, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig10CSV renders the rows for the CSV exporter.
func Fig10CSV(rows []Fig10Result) (header []string, records [][]string) {
	header = []string{"sweep", "clients", "threads", "throughput_tps", "avg_latency_s", "committed", "aborted", "rejected"}
	for _, r := range rows {
		records = append(records, []string{
			r.Sweep, fmt.Sprint(r.Clients), fmt.Sprint(r.Threads), fmtF(r.Throughput),
			fmtSeconds(r.AvgLatency), fmt.Sprint(r.Committed), fmt.Sprint(r.Aborted), fmt.Sprint(r.Rejected),
		})
	}
	return header, records
}
