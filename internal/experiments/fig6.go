package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/ethereum"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/meepo"
	"hammer/internal/chains/neuchain"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/smallbank"
	"hammer/internal/workload"
)

// ChainResult is one Fig 6 data point: a chain's peak throughput and
// latency under the SmallBank workload.
type ChainResult struct {
	Chain      string
	Throughput float64
	AvgLatency time.Duration
	P95Latency time.Duration
	Committed  int
	Aborted    int
	Rejected   int
	Submitted  int
}

// String renders the row.
func (r ChainResult) String() string {
	return fmt.Sprintf("%-9s %9.1f TPS  latency avg %8v p95 %8v  (%d committed, %d aborted, %d rejected)",
		r.Chain, r.Throughput, r.AvgLatency.Round(time.Millisecond), r.P95Latency.Round(time.Millisecond),
		r.Committed, r.Aborted, r.Rejected)
}

// chainSetup binds a chain constructor to the offered load that pushes it
// to peak, mirroring how the paper loads each SUT until throughput
// saturates.
type chainSetup struct {
	name    string
	build   func(sched eventsim.Sched) chain.Blockchain
	offered float64 // tx/s
	cfg     func(*core.Config)
}

// fig6Setups returns the four SUT deployments of Fig 6. Admission caps are
// chosen so that queueing delay at saturation reproduces each system's
// latency regime (Ethereum ≈ 5 s, Fabric ≈ 1.5 s, Meepo ≈ 3 s, Neuchain
// tens of ms).
func fig6Setups(opts Options) []chainSetup {
	return []chainSetup{
		{
			name: "ethereum",
			build: func(sched eventsim.Sched) chain.Blockchain {
				cfg := ethereum.DefaultConfig()
				cfg.MempoolCap = 100
				cfg.Seed = opts.Seed
				cfg.State = opts.stateFactory()
				return ethereum.New(sched, cfg)
			},
			offered: 50,
			cfg: func(c *core.Config) {
				c.DrainTimeout = 5 * time.Minute
			},
		},
		{
			name: "fabric",
			build: func(sched eventsim.Sched) chain.Blockchain {
				cfg := fabric.DefaultConfig()
				cfg.PendingCap = 300
				cfg.State = opts.stateFactory()
				return fabric.New(sched, cfg)
			},
			offered: 400,
			cfg: func(c *core.Config) {
				c.Clients = 4
				c.SubmitCost = 500 * time.Microsecond
			},
		},
		{
			name: "meepo",
			build: func(sched eventsim.Sched) chain.Blockchain {
				cfg := meepo.DefaultConfig()
				cfg.PendingCapPerShard = 4000
				cfg.State = opts.stateFactory()
				return meepo.New(sched, cfg)
			},
			offered: 8000,
			cfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
				// The paper's Meepo deployment drives random transfers
				// between the shards' accounts.
				c.Workload.OpMix = map[string]float64{smallbank.OpTransfer: 1}
			},
		},
		{
			name: "neuchain",
			build: func(sched eventsim.Sched) chain.Blockchain {
				cfg := neuchain.DefaultConfig()
				// A tight proxy admission window keeps queueing delay low
				// at saturation while still feeding the executor at its
				// ~8.7k TPS capacity.
				cfg.PendingCap = 1400
				cfg.State = opts.stateFactory()
				return neuchain.New(sched, cfg)
			},
			offered: 12000,
			cfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
		},
	}
}

// Fig6Runs returns the four Fig 6 evaluations as harness run descriptors;
// the harness determinism test executes them at several worker counts.
func Fig6Runs(opts Options) []harness.Run[ChainResult] {
	opts.fillDefaults()
	runs := make([]harness.Run[ChainResult], 0, 4)
	for _, setup := range fig6Setups(opts) {
		setup := setup
		runs = append(runs, harness.Run[ChainResult]{
			Name: "fig6/" + setup.name,
			Seed: opts.Seed,
			Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
				sched := opts.NewSched()
				bc := setup.build(sched)
				cfg := core.DefaultConfig()
				cfg.Seed = seed
				cfg.Workload.Accounts = opts.Accounts
				cfg.Workload.Seed = seed
				cfg.Control = workload.Constant(setup.offered, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
				cfg.SignMode = core.SignOff // signing cost is Fig 8's subject, not Fig 6's
				if setup.cfg != nil {
					setup.cfg(&cfg)
				}
				return sched, bc, cfg, nil
			},
			Digest: digestChainResult,
		})
	}
	return runs
}

func digestChainResult(res *core.Result, bc chain.Blockchain) (ChainResult, error) {
	rep := res.Report
	return ChainResult{
		Chain:      bc.Name(),
		Throughput: rep.Throughput,
		AvgLatency: rep.AvgLatency,
		P95Latency: rep.P95Latency,
		Committed:  rep.Committed,
		Aborted:    rep.Aborted,
		Rejected:   rep.Rejected,
		Submitted:  rep.Submitted,
	}, nil
}

// Fig6 measures peak throughput and latency of the four blockchain systems
// with the Hammer driver.
func Fig6(ctx context.Context, opts Options) ([]ChainResult, error) {
	opts.fillDefaults()
	rows, err := harness.Collect(harness.Execute(ctx, Fig6Runs(opts), opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// Fig6CSV renders the rows for the CSV exporter.
func Fig6CSV(rows []ChainResult) (header []string, records [][]string) {
	header = []string{"chain", "throughput_tps", "avg_latency_s", "p95_latency_s", "committed", "aborted", "rejected", "submitted"}
	for _, r := range rows {
		records = append(records, []string{
			r.Chain, fmtF(r.Throughput), fmtSeconds(r.AvgLatency), fmtSeconds(r.P95Latency),
			fmt.Sprint(r.Committed), fmt.Sprint(r.Aborted), fmt.Sprint(r.Rejected), fmt.Sprint(r.Submitted),
		})
	}
	return header, records
}
