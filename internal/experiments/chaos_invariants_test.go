package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chaos"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/invariant"
	"hammer/internal/monitor"
	"hammer/internal/workload"
)

// Chaos does not excuse the simulators from their invariants. Every fault
// scenario of the resilience experiment — miners crashing mid-mine, the
// orderer partitioned away from its peers, a shard losing quorum, the relay
// between shards severed — reruns here with the invariant recorder attached:
// blocks must still chain, heights must stay contiguous, no transaction may
// commit twice (the driver's retry path resubmits everything the fault
// strands), gas caps must hold, and conservation — including value in transit
// across a partitioned relay — must balance once the run drains.
func TestFaultScenariosPreserveInvariants(t *testing.T) {
	opts := Quick()
	// 9 virtual seconds: fault at 3s, heal at 6s, then the drain completes
	// the retried backlog. Short enough to keep the 8-scenario sweep cheap.
	opts.MeasureSeconds = 9
	opts.fillDefaults()
	faultSec, healSec := faultTimes(opts)
	fault := time.Duration(faultSec) * time.Second
	heal := time.Duration(healSec) * time.Second

	type verdict struct {
		Violations  []invariant.Violation
		Commits     int
		Retried     int
		FaultEvents int
	}
	var runs []harness.Run[verdict]
	for _, setup := range faultsSetups(opts) {
		for _, sc := range []struct {
			name string
			scen chaos.Scenario
		}{
			{"crash", setup.crash(fault, heal)},
			{"partition", setup.partition(fault, heal)},
		} {
			setup, sc := setup, sc
			var inj *chaos.Injector
			runs = append(runs, harness.Run[verdict]{
				Name: "chaos-invariants/" + setup.name + "/" + sc.name,
				Seed: opts.Seed,
				Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
					sched := eventsim.New()
					bc := setup.build(sched, opts)
					cfg := core.DefaultConfig()
					cfg.Seed = seed
					cfg.Workload.Accounts = opts.Accounts
					cfg.Workload.Seed = seed
					cfg.Control = workload.Constant(setup.offered, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
					cfg.SignMode = core.SignOff
					cfg.Metrics = monitor.NewRegistry()
					cfg.TxTimeout = setup.txTimeout
					cfg.MaxRetries = 2
					cfg.RetryBackoff = 500 * time.Millisecond
					cfg.Invariants = true
					if setup.engCfg != nil {
						setup.engCfg(&cfg)
					}
					nf, ok := bc.(chaos.NodeFaulter)
					if !ok {
						return nil, nil, core.Config{}, fmt.Errorf("chain %s exposes no liveness hooks", setup.name)
					}
					var err error
					inj, err = chaos.NewInjector(sched, nf, sc.scen, cfg.Metrics)
					if err != nil {
						return nil, nil, core.Config{}, err
					}
					cfg.OnMeasureStart = func(start time.Duration) { inj.Arm(start) }
					return sched, bc, cfg, nil
				},
				Digest: func(res *core.Result, bc chain.Blockchain) (verdict, error) {
					return verdict{
						Violations:  res.Violations,
						Commits:     res.Report.Committed,
						Retried:     res.Retried,
						FaultEvents: len(inj.Applied()),
					}, nil
				},
			})
		}
	}

	rows, err := harness.Collect(harness.Execute(context.Background(), runs, harness.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		name := runs[i].Name
		if row.FaultEvents == 0 {
			t.Errorf("%s: no chaos events fired — the scenario never engaged", name)
		}
		if row.Commits == 0 {
			t.Errorf("%s: nothing committed", name)
		}
		for _, v := range row.Violations {
			t.Errorf("%s: invariant violated under fault: %s", name, v)
		}
	}
}
