package experiments

import (
	"context"
	"testing"

	"hammer/internal/harness"
)

// These tests pin the storage-identity claim of the paged state store: the
// state backend is an engine implementation detail, so swapping the in-RAM
// map for disk-backed pages must change no observable result — not the
// golden CSV bytes, not the conformance commit/state digests.

func pagedOpts(t *testing.T) Options {
	t.Helper()
	opts := Quick()
	opts.StateBackend = "paged"
	opts.StateCacheMB = 8
	opts.States = NewStateRuntime()
	t.Cleanup(func() {
		if err := opts.States.Close(); err != nil {
			t.Errorf("closing paged stores: %v", err)
		}
	})
	return opts
}

// TestFig6PagedBackendGolden reruns the Fig 6 quick sweep on the paged
// backend and compares against the same golden file the mem backend pins —
// the strongest form of the identity claim.
func TestFig6PagedBackendGolden(t *testing.T) {
	opts := pagedOpts(t)
	opts.Workers = 1 // serial, like the golden capture
	rows, err := Fig6(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.States.Stores() == 0 {
		t.Fatal("paged backend selected but no store was opened")
	}
	header, csvRows := Fig6CSV(rows)
	checkGolden(t, "fig6_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}

// TestConformancePagedDigestIdentity runs the instrumented conformance runs
// on both backends and requires identical commit and state digests per run
// — the invariant/conformance suites of PR 5 re-proved over the paged
// engine.
func TestConformancePagedDigestIdentity(t *testing.T) {
	run := func(opts Options) []conformanceRun {
		opts.fillDefaults()
		rows, err := harness.Collect(harness.Execute(context.Background(),
			conformanceRuns(opts), opts.harnessOptions()))
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	memRows := run(Quick())
	pagedRows := run(pagedOpts(t))
	if len(memRows) != len(pagedRows) {
		t.Fatalf("row counts differ: %d vs %d", len(memRows), len(pagedRows))
	}
	for i, m := range memRows {
		p := pagedRows[i]
		if m.Commits == 0 {
			t.Errorf("%s run %d committed nothing", m.Chain, i)
		}
		if m.CommitDigest != p.CommitDigest {
			t.Errorf("%s run %d: commit digest differs mem vs paged", m.Chain, i)
		}
		if m.StateDigest != p.StateDigest {
			t.Errorf("%s run %d: state digest differs mem vs paged", m.Chain, i)
		}
		if len(p.Violations) > 0 {
			t.Errorf("%s run %d on paged backend: %d invariant violations, first: %s",
				p.Chain, i, len(p.Violations), p.Violations[0])
		}
		if p.Replayed && p.ReplayErr != nil {
			t.Errorf("%s run %d on paged backend: serial replay: %v", p.Chain, i, p.ReplayErr)
		}
	}
}

// TestBlockbenchBackendIdentity checks the experiment's own mem/paged row
// pairs agree on everything the SUT observes.
func TestBlockbenchBackendIdentity(t *testing.T) {
	opts := Quick()
	opts.StateCacheMB = 8
	rows, err := Blockbench(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows)%2 != 0 {
		t.Fatalf("odd row count %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		mem, paged := rows[i], rows[i+1]
		if mem.Backend != "mem" || paged.Backend != "paged" || mem.Workload != paged.Workload {
			t.Fatalf("unexpected row order: %+v / %+v", mem, paged)
		}
		if mem.Committed == 0 {
			t.Errorf("%s committed nothing", mem.Workload)
		}
		if mem.Committed != paged.Committed || mem.Aborted != paged.Aborted ||
			mem.Throughput != paged.Throughput || mem.AvgLatency != paged.AvgLatency {
			t.Errorf("%s: mem and paged rows diverge:\n  mem   %s\n  paged %s",
				mem.Workload, mem, paged)
		}
		if paged.Workload != "donothing" && paged.CacheHitRate == 0 {
			t.Errorf("%s: paged row reports no cache traffic", paged.Workload)
		}
	}
}

// TestStoreBenchQuick exercises the direct store sweep end to end at a size
// CI can afford, including the snapshot warm-start arm.
func TestStoreBenchQuick(t *testing.T) {
	snap := t.TempDir() + "/bench.snap"
	o := StoreBenchOptions{
		Accounts: 20_000, CacheMB: 1, ValueBytes: 32, Ops: 30_000,
		Dir: t.TempDir(), Snapshot: snap, BaselineAccounts: 20_000, Seed: 7,
	}
	rows, err := StoreBench(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	for _, r := range rows {
		phases[r.Backend+"/"+r.Phase] = true
		if r.OpsPerSec <= 0 {
			t.Errorf("%s/%s: no throughput", r.Backend, r.Phase)
		}
	}
	for _, want := range []string{"paged/populate", "paged/read-hit", "paged/read-miss", "paged/mixed", "mem/populate", "mem/mixed"} {
		if !phases[want] {
			t.Errorf("missing phase %s in %v", want, phases)
		}
	}
	// Second invocation must warm-start from the snapshot.
	rows, err = StoreBench(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Phase != "snapshot-load" {
		t.Errorf("second run started with %q, want snapshot-load", rows[0].Phase)
	}
}
