package experiments

import (
	"fmt"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/eventsim/heapsched"
	"hammer/internal/perf"
)

// SchedBenchRow is one side of the scheduler microbenchmark: the same
// deterministic event workload run on the original binary-heap scheduler
// (heapsched) and on the timer-wheel scheduler (eventsim).
type SchedBenchRow struct {
	Impl           string
	Events         int
	Wall           time.Duration
	Allocs         uint64
	AllocBytes     uint64
	AllocsPerEvent float64
	EventsPerSec   float64
}

func (r SchedBenchRow) String() string {
	return fmt.Sprintf("%-10s %9d events in %8v  %11.0f events/s  %6.2f allocs/event",
		r.Impl, r.Events, r.Wall.Round(time.Millisecond), r.EventsPerSec, r.AllocsPerEvent)
}

// schedBenchResident is the steady-state pending-event population: large
// enough that heap operations pay their O(log n) and the wheel spreads over
// many buckets, small enough that the workload is schedule/fire dominated
// like a real simulation.
const schedBenchResident = 10_000

// schedDelay returns the deterministic delay sequence both schedulers
// replay: a xorshift stream shaped like a real simulation's mix — short
// compute costs, medium consensus/poll intervals (all inside the wheel
// window) — with every 64th delay pushed past the window so the overflow
// heap and cascade paths are exercised too.
func schedDelay(rng *uint64, n int) time.Duration {
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	switch {
	case n%64 == 63:
		return 300*time.Millisecond + time.Duration(x%uint64(100*time.Millisecond))
	case n%4 == 0:
		return time.Duration(x % uint64(2*time.Millisecond))
	default:
		return time.Duration(x % uint64(200*time.Millisecond))
	}
}

// runSchedWorkload drives one scheduler through total events: resident
// self-rescheduling timer chains, each with a single closure, plus a
// cancellation every 16th fire (schedule a far timer, stop it immediately)
// so Stop cost is part of the measurement. The firing order is identical
// across implementations, so both consume the same delay stream.
func runSchedWorkload(after func(time.Duration, func()), stopLast func(), run func(), resident, total int) int {
	fired := 0
	scheduled := 0
	var rng uint64 = 0x9E3779B97F4A7C15
	spawn := func() {
		var fn func()
		fn = func() {
			fired++
			if fired%16 == 0 {
				after(500*time.Millisecond, func() {})
				stopLast()
			}
			if scheduled < total {
				n := scheduled
				scheduled++
				after(schedDelay(&rng, n), fn)
			}
		}
		n := scheduled
		scheduled++
		after(schedDelay(&rng, n), fn)
	}
	if resident > total {
		resident = total
	}
	for i := 0; i < resident; i++ {
		spawn()
	}
	run()
	return fired
}

// SchedBench runs the microbenchmark at the given event count and returns
// one row per implementation, heap first.
func SchedBench(events int) ([]SchedBenchRow, error) {
	var rows []SchedBenchRow

	heapRun := func() (func(time.Duration, func()), func(), func()) {
		s := heapsched.New()
		var last *heapsched.Timer
		after := func(d time.Duration, fn func()) { last = s.After(d, fn) }
		return after, func() { last.Stop() }, s.Run
	}
	wheelRun := func() (func(time.Duration, func()), func(), func()) {
		s := eventsim.New()
		var last eventsim.Timer
		after := func(d time.Duration, fn func()) { last = s.After(d, fn) }
		return after, func() { last.Stop() }, s.Run
	}

	for _, impl := range []struct {
		name  string
		build func() (func(time.Duration, func()), func(), func())
	}{
		{"heap", heapRun},
		{"wheel", wheelRun},
	} {
		var fired int
		after, stopLast, run := impl.build()
		sample, err := perf.Measure(impl.name, func() error {
			fired = runSchedWorkload(after, stopLast, run, schedBenchResident, events)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if fired == 0 {
			return nil, fmt.Errorf("schedbench: %s fired no events", impl.name)
		}
		rows = append(rows, SchedBenchRow{
			Impl:           impl.name,
			Events:         fired,
			Wall:           time.Duration(sample.WallSeconds * float64(time.Second)),
			Allocs:         sample.Allocs,
			AllocBytes:     sample.AllocBytes,
			AllocsPerEvent: float64(sample.Allocs) / float64(fired),
			EventsPerSec:   float64(fired) / sample.WallSeconds,
		})
	}
	return rows, nil
}

// SchedBenchCSV renders the rows for export.
func SchedBenchCSV(rows []SchedBenchRow) ([]string, [][]string) {
	header := []string{"impl", "events", "wall_ms", "events_per_sec", "allocs", "allocs_per_event"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Impl,
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.1f", float64(r.Wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%d", r.Allocs),
			fmt.Sprintf("%.3f", r.AllocsPerEvent),
		})
	}
	return header, out
}
