package experiments

import (
	"fmt"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/eventsim/heapsched"
	"hammer/internal/parallel"
	"hammer/internal/perf"
)

// SchedBenchRow is one configuration of the scheduler microbenchmark: the
// same deterministic event workload run on the original binary-heap
// scheduler (heapsched), the timer-wheel scheduler (eventsim), and the
// sharded epoch-merge engine at a sweep of shard and pool-worker counts.
type SchedBenchRow struct {
	Impl string
	// Shards and Workers are set on sharded rows (0 otherwise): the wheel
	// count and the parallel-pool worker count the barrier phase ran with.
	Shards         int
	Workers        int
	Events         int
	Wall           time.Duration
	Allocs         uint64
	AllocBytes     uint64
	AllocsPerEvent float64
	EventsPerSec   float64
}

func (r SchedBenchRow) String() string {
	return fmt.Sprintf("%-16s %9d events in %8v  %11.0f events/s  %6.2f allocs/event",
		r.label(), r.Events, r.Wall.Round(time.Millisecond), r.EventsPerSec, r.AllocsPerEvent)
}

// label renders the row's configuration for charts and trajectory samples.
func (r SchedBenchRow) label() string {
	if r.Shards > 0 {
		return fmt.Sprintf("%s/s=%d,w=%d", r.Impl, r.Shards, r.Workers)
	}
	return r.Impl
}

// schedBenchResident is the steady-state pending-event population: large
// enough that heap operations pay their O(log n) and the wheel spreads over
// many buckets, small enough that the workload is schedule/fire dominated
// like a real simulation.
const schedBenchResident = 10_000

// schedDelay returns the deterministic delay sequence every scheduler
// replays: a xorshift stream shaped like a real simulation's mix — short
// compute costs, medium consensus/poll intervals (all inside the wheel
// window) — with every 64th delay pushed past the window so the overflow
// heap and cascade paths are exercised too.
func schedDelay(rng *uint64, n int) time.Duration {
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	switch {
	case n%64 == 63:
		return 300*time.Millisecond + time.Duration(x%uint64(100*time.Millisecond))
	case n%4 == 0:
		return time.Duration(x % uint64(2*time.Millisecond))
	default:
		return time.Duration(x % uint64(200*time.Millisecond))
	}
}

// runSchedWorkload drives one scheduler through total events: resident
// self-rescheduling timer chains, each carrying a stable shard key (its
// chain index, so the sharded engine spreads chains across wheels), plus a
// cancellation every 16th fire (schedule a far timer, stop it immediately)
// so Stop cost is part of the measurement. Keys never change firing order,
// so every implementation consumes the same delay stream.
func runSchedWorkload(after func(uint64, time.Duration, func()), stopLast func(), run func(), resident, total int) int {
	fired := 0
	scheduled := 0
	var rng uint64 = 0x9E3779B97F4A7C15
	spawn := func(key uint64) {
		var fn func()
		fn = func() {
			fired++
			if fired%16 == 0 {
				after(key, 500*time.Millisecond, func() {})
				stopLast()
			}
			if scheduled < total {
				n := scheduled
				scheduled++
				after(key, schedDelay(&rng, n), fn)
			}
		}
		n := scheduled
		scheduled++
		after(key, schedDelay(&rng, n), fn)
	}
	if resident > total {
		resident = total
	}
	for i := 0; i < resident; i++ {
		spawn(uint64(i))
	}
	run()
	return fired
}

// schedBenchShardCounts is the default shard sweep when the caller does not
// pin one, and schedBenchWorkerCounts the pool sizes each shard count runs
// with (the sharded barrier executes on the parallel pool).
var (
	schedBenchShardCounts  = []int{1, 4}
	schedBenchWorkerCounts = []int{1, 4}
)

// SchedBench runs the microbenchmark at the given event count and returns
// one row per configuration: heap, wheel, then the sharded engine across
// the shard × pool-worker sweep. shards >= 1 pins the sharded rows to that
// single shard count; shards <= 0 uses the default sweep. Every row must
// fire the same number of events — a mismatch is a determinism bug and
// fails the benchmark.
func SchedBench(events, shards int) ([]SchedBenchRow, error) {
	if events < 1 {
		return nil, fmt.Errorf("schedbench: event count must be positive, got %d", events)
	}
	type config struct {
		impl            string
		shards, workers int
		build           func() (func(uint64, time.Duration, func()), func(), func())
	}
	heapRun := func() (func(uint64, time.Duration, func()), func(), func()) {
		s := heapsched.New()
		var last *heapsched.Timer
		after := func(_ uint64, d time.Duration, fn func()) { last = s.After(d, fn) }
		return after, func() { last.Stop() }, s.Run
	}
	schedRun := func(s eventsim.Sched) (func(uint64, time.Duration, func()), func(), func()) {
		var last eventsim.Timer
		after := func(key uint64, d time.Duration, fn func()) { last = s.AfterKey(key, d, fn) }
		return after, func() { last.Stop() }, s.Run
	}

	configs := []config{
		{impl: "heap", build: heapRun},
		{impl: "wheel", build: func() (func(uint64, time.Duration, func()), func(), func()) { return schedRun(eventsim.New()) }},
	}
	shardCounts := schedBenchShardCounts
	if shards >= 1 {
		shardCounts = []int{shards}
	}
	for _, sc := range shardCounts {
		for _, wc := range schedBenchWorkerCounts {
			sc, wc := sc, wc
			configs = append(configs, config{
				impl: "sharded", shards: sc, workers: wc,
				build: func() (func(uint64, time.Duration, func()), func(), func()) {
					return schedRun(eventsim.NewSharded(sc))
				},
			})
		}
	}

	defer parallel.SetWorkers(parallel.Workers())
	var rows []SchedBenchRow
	for _, cfg := range configs {
		if cfg.workers > 0 {
			parallel.SetWorkers(cfg.workers)
		}
		var fired int
		after, stopLast, run := cfg.build()
		row := SchedBenchRow{Impl: cfg.impl, Shards: cfg.shards, Workers: cfg.workers}
		sample, err := perf.Measure(row.label(), func() error {
			fired = runSchedWorkload(after, stopLast, run, schedBenchResident, events)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if fired == 0 {
			return nil, fmt.Errorf("schedbench: %s fired no events", row.label())
		}
		if len(rows) > 0 && fired != rows[0].Events {
			return nil, fmt.Errorf("schedbench: %s fired %d events, %s fired %d — schedulers diverged",
				row.label(), fired, rows[0].label(), rows[0].Events)
		}
		row.Events = fired
		row.Wall = time.Duration(sample.WallSeconds * float64(time.Second))
		row.Allocs = sample.Allocs
		row.AllocBytes = sample.AllocBytes
		row.AllocsPerEvent = float64(sample.Allocs) / float64(fired)
		row.EventsPerSec = float64(fired) / sample.WallSeconds
		rows = append(rows, row)
	}
	return rows, nil
}

// SchedBenchCSV renders the rows for export.
func SchedBenchCSV(rows []SchedBenchRow) ([]string, [][]string) {
	header := []string{"impl", "shards", "workers", "events", "wall_ms", "events_per_sec", "allocs", "allocs_per_event"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Impl,
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.1f", float64(r.Wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%d", r.Allocs),
			fmt.Sprintf("%.3f", r.AllocsPerEvent),
		})
	}
	return header, out
}
