package experiments

import "strings"

// Suggest returns the known experiment name nearest to input by edit
// distance, or "" when nothing is within two edits — close enough to be a
// plausible typo. The CLIs use it to improve their unknown-experiment
// errors.
func Suggest(input string, known []string) string {
	best, bestDist := "", 3
	for _, k := range known {
		if d := editDistance(strings.ToLower(input), k); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short strings.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = minInt(minInt(curr[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
