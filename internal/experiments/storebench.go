package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"hammer/internal/blockbench"
	"hammer/internal/chain"
	"hammer/internal/randx"
	"hammer/internal/store/pagedstate"
)

// StoreBench drives the paged state store directly with IOHeavy-shaped
// operations at populations far beyond what consensus-path account setup
// can reach (10M+ accounts), and measures what the engine-level experiments
// cannot: raw ops/s per phase, the cache hit economics, and the heap
// ceiling. An in-RAM map baseline runs at a capped population for an honest
// like-for-like heap comparison — it is labeled with its own account count,
// never extrapolated.

// StoreBenchOptions parameterises the sweep.
type StoreBenchOptions struct {
	// Accounts is the paged-store population.
	Accounts int
	// CacheMB budgets the page cache (the heap-ceiling claim under test).
	CacheMB int
	// ValueBytes sizes each record.
	ValueBytes int
	// Ops is the operation count per measured phase after population.
	Ops int
	// Dir hosts the store's files ("" = OS temp); it is removed afterwards.
	Dir string
	// Snapshot, when non-empty, warm-starts population: an existing file is
	// loaded instead of populating, otherwise the freshly populated store
	// is saved there for the next invocation.
	Snapshot string
	// BaselineAccounts caps the in-RAM comparison population (0 skips the
	// baseline).
	BaselineAccounts int
	// Seed drives the access pattern.
	Seed int64
}

// DefaultStoreBenchOptions is the quick configuration; the CI/report run
// raises Accounts to 10M.
func DefaultStoreBenchOptions() StoreBenchOptions {
	return StoreBenchOptions{
		Accounts:         1_000_000,
		CacheMB:          64,
		ValueBytes:       64,
		Ops:              1_000_000,
		BaselineAccounts: 1_000_000,
		Seed:             7,
	}
}

// StoreBenchRow is one backend×phase measurement.
type StoreBenchRow struct {
	Backend   string // "paged" or "mem"
	Phase     string // populate | snapshot-load | read-hit | read-miss | mixed
	Accounts  int
	Ops       int
	OpsPerSec float64
	// HitRate and BloomNegatives are paged-only cache economics.
	HitRate        float64
	BloomNegatives int64
	// HeapPeakMB is the max Go heap observed during the phase;
	// CacheBudgetMB the configured ceiling (0 for mem).
	HeapPeakMB    float64
	CacheBudgetMB float64
}

// String renders the row.
func (r StoreBenchRow) String() string {
	s := fmt.Sprintf("%-5s %-13s %9d accts %9d ops %12.0f ops/s  heap peak %7.1f MB",
		r.Backend, r.Phase, r.Accounts, r.Ops, r.OpsPerSec, r.HeapPeakMB)
	if r.Backend == "paged" {
		s += fmt.Sprintf("  (cache %3.0f MB budget, hit %.1f%%)", r.CacheBudgetMB, 100*r.HitRate)
	}
	return s
}

// heapMeter samples the Go heap while a phase runs; Peak reports the max.
type heapMeter struct {
	peak uint64
	n    int
}

// tick samples every 1<<16 calls — cheap enough for multi-million-op loops.
func (h *heapMeter) tick() {
	h.n++
	if h.n&0xFFFF != 0 {
		return
	}
	h.sample()
}

func (h *heapMeter) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
}

func (h *heapMeter) peakMB() float64 { return float64(h.peak) / (1 << 20) }

// storeOps is the uniform state surface both backends are driven through.
type storeOps interface {
	Get(key string) ([]byte, uint64, bool)
	Set(key string, val []byte, version uint64)
}

// runPhase executes ops against the store and returns throughput plus the
// observed heap peak. A GC first isolates the phase's own footprint.
func runPhase(ctx context.Context, ops int, fn func(i int)) (opsPerSec, heapPeakMB float64, err error) {
	runtime.GC()
	var hm heapMeter
	hm.sample()
	start := time.Now()
	for i := 0; i < ops; i++ {
		if i&0xFFFFF == 0 && ctx.Err() != nil {
			return 0, 0, ctx.Err()
		}
		fn(i)
		hm.tick()
	}
	elapsed := time.Since(start)
	hm.sample()
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(ops) / elapsed.Seconds(), hm.peakMB(), nil
}

func storeBenchValue(n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = 'a' + byte(i%26)
	}
	return buf
}

// StoreBench runs the sweep and returns its rows in execution order.
func StoreBench(ctx context.Context, o StoreBenchOptions) ([]StoreBenchRow, error) {
	def := DefaultStoreBenchOptions()
	if o.Accounts <= 0 {
		o.Accounts = def.Accounts
	}
	if o.CacheMB <= 0 {
		o.CacheMB = def.CacheMB
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = def.ValueBytes
	}
	if o.Ops <= 0 {
		o.Ops = def.Ops
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	val := storeBenchValue(o.ValueBytes)

	dir, err := os.MkdirTemp(orTempDir(o.Dir), "storebench-")
	if err != nil {
		return nil, fmt.Errorf("experiments: storebench dir: %w", err)
	}
	defer os.RemoveAll(dir)
	st, err := pagedstate.Open(pagedstate.Config{
		Dir:          dir,
		CacheBytes:   o.CacheMB << 20,
		ExpectedKeys: o.Accounts,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: storebench open: %w", err)
	}
	defer st.Close()

	budgetMB := float64(o.CacheMB)
	var rows []StoreBenchRow
	add := func(phase string, ops int, opsPerSec, heapMB float64) {
		s := st.Stats()
		rows = append(rows, StoreBenchRow{
			Backend: "paged", Phase: phase, Accounts: o.Accounts, Ops: ops,
			OpsPerSec: opsPerSec, HitRate: s.HitRate(), BloomNegatives: s.BloomNegatives,
			HeapPeakMB: heapMB, CacheBudgetMB: budgetMB,
		})
	}

	// Population, or snapshot warm-start when a capture exists.
	warm := false
	if o.Snapshot != "" {
		if _, err := os.Stat(o.Snapshot); err == nil {
			start := time.Now()
			if err := st.LoadSnapshot(o.Snapshot); err != nil {
				return nil, fmt.Errorf("experiments: storebench snapshot load: %w", err)
			}
			if st.Len() != o.Accounts {
				return nil, fmt.Errorf("experiments: snapshot %s holds %d keys, want %d (delete it to repopulate)",
					o.Snapshot, st.Len(), o.Accounts)
			}
			elapsed := time.Since(start).Seconds()
			add("snapshot-load", o.Accounts, float64(o.Accounts)/elapsed, 0)
			warm = true
		}
	}
	if !warm {
		opsPerSec, heapMB, err := runPhase(ctx, o.Accounts, func(i int) {
			st.Set(blockbench.Key(i), val, uint64(i)+1)
		})
		if err != nil {
			return nil, err
		}
		add("populate", o.Accounts, opsPerSec, heapMB)
		if o.Snapshot != "" {
			if err := st.SaveSnapshot(o.Snapshot); err != nil {
				return nil, fmt.Errorf("experiments: storebench snapshot save: %w", err)
			}
		}
	}

	phases := []struct {
		name string
		fn   func(rng *randx.Rand) func(i int)
	}{
		{"read-hit", func(rng *randx.Rand) func(i int) {
			return func(int) { st.Get(blockbench.Key(rng.Intn(o.Accounts))) }
		}},
		{"read-miss", func(rng *randx.Rand) func(i int) {
			return func(int) { st.Get(fmt.Sprintf("absent:%08d", rng.Intn(o.Accounts))) }
		}},
		{"mixed", func(rng *randx.Rand) func(i int) {
			return func(i int) {
				k := blockbench.Key(rng.Intn(o.Accounts))
				if rng.Float64() < 0.5 {
					st.Set(k, val, uint64(o.Accounts+i))
				} else {
					st.Get(k)
				}
			}
		}},
	}
	for _, ph := range phases {
		opsPerSec, heapMB, err := runPhase(ctx, o.Ops, ph.fn(randx.New(o.Seed)))
		if err != nil {
			return nil, err
		}
		add(ph.name, o.Ops, opsPerSec, heapMB)
	}

	// In-RAM baseline at its own (capped) population, for the heap
	// comparison. The map has no cache budget: its heap IS the population.
	if o.BaselineAccounts > 0 {
		mem := chain.NewState()
		n := o.BaselineAccounts
		addMem := func(phase string, ops int, opsPerSec, heapMB float64) {
			rows = append(rows, StoreBenchRow{
				Backend: "mem", Phase: phase, Accounts: n, Ops: ops,
				OpsPerSec: opsPerSec, HeapPeakMB: heapMB,
			})
		}
		opsPerSec, heapMB, err := runPhase(ctx, n, func(i int) {
			mem.Set(blockbench.Key(i), val, uint64(i)+1)
		})
		if err != nil {
			return nil, err
		}
		addMem("populate", n, opsPerSec, heapMB)
		rng := randx.New(o.Seed)
		opsPerSec, heapMB, err = runPhase(ctx, o.Ops, func(i int) {
			k := blockbench.Key(rng.Intn(n))
			if rng.Float64() < 0.5 {
				mem.Set(k, val, uint64(n+i))
			} else {
				mem.Get(k)
			}
		})
		if err != nil {
			return nil, err
		}
		addMem("mixed", o.Ops, opsPerSec, heapMB)
	}
	return rows, nil
}

// StoreBenchCSV renders the rows for the CSV exporter.
func StoreBenchCSV(rows []StoreBenchRow) (header []string, records [][]string) {
	header = []string{"backend", "phase", "accounts", "ops", "ops_per_sec",
		"cache_hit_rate", "bloom_negatives", "heap_peak_mb", "cache_budget_mb"}
	for _, r := range rows {
		records = append(records, []string{
			r.Backend, r.Phase, fmt.Sprint(r.Accounts), fmt.Sprint(r.Ops), fmt.Sprintf("%.0f", r.OpsPerSec),
			fmtF(r.HitRate), fmt.Sprint(r.BloomNegatives), fmtF(r.HeapPeakMB), fmtF(r.CacheBudgetMB),
		})
	}
	return header, records
}
