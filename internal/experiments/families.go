package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/committee"
	"hammer/internal/chains/meepo"
	"hammer/internal/chaos"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/monitor"
	"hammer/internal/smallbank"
	"hammer/internal/workload"
)

// The families experiment sweeps the two consensus families along their
// scale axis — Meepo across shard counts, the BFT committee across committee
// sizes — and runs every point through three scenarios: a healthy baseline,
// a crash-and-heal, and an N-way partition-and-heal. Meepo's load draws a
// configurable fraction of transfers across shard boundaries so the
// cross-epoch relay is always part of what is measured. Each row reports
// throughput and latency alongside the chaos recovery analysis, and the
// whole sweep rides the virtual clock: for a fixed seed the CSVs are
// byte-identical at any worker count and on either scheduler engine.

// FamilyResult is one family×size×scenario row of the sweep.
type FamilyResult struct {
	Family   string
	Size     int // shard count (meepo) or committee size
	Scenario string
	// CrossRate is the cross-shard transfer fraction of the offered load
	// (meepo rows only; 0 for the single-ledger committee).
	CrossRate  float64
	Throughput float64
	AvgLatency time.Duration
	P95Latency time.Duration
	Committed  int
	TimedOut   int
	Rejected   int
	// Retried counts driver resubmissions; Stranded the transactions the
	// chain lost to a fault; ViewChanges the committee's proposer rotations
	// forced by timeouts (0 for meepo).
	Retried     int
	Stranded    int
	ViewChanges int
	// Recovery analysis over the per-second TPS timeline (for the healthy
	// scenario the "fault" window contains no fault, so DipTPS tracks
	// BaselineTPS and recovery is immediate).
	BaselineTPS     float64
	DipTPS          float64
	Recovered       bool
	RecoverySeconds int
	FaultEvents     int
	// Series is the committed-TPS-per-second timeline for the CSV export.
	Series []float64
}

// String renders the row.
func (r FamilyResult) String() string {
	rec := "no recovery"
	if r.Recovered {
		rec = fmt.Sprintf("recovered in %ds", r.RecoverySeconds)
	}
	return fmt.Sprintf("%-9s n=%-3d %-10s %9.1f TPS  latency avg %8v  dip %8.1f TPS  %-17s (%d committed, %d retried, %d stranded)",
		r.Family, r.Size, r.Scenario, r.Throughput, r.AvgLatency.Round(time.Millisecond),
		r.DipTPS, rec, r.Committed, r.Retried, r.Stranded)
}

// crossShardSource drives Meepo with transfers whose destination is drawn
// from a foreign shard at a configurable rate, using the chain's own account
// placement (meepo.ShardIndex) so the rate is exact rather than the ~1-1/N
// that uniform destinations would give. It implements core.TxSource.
type crossShardSource struct {
	rng       *rand.Rand
	accounts  []string
	byShard   [][]string
	shards    int
	crossRate float64
	nonce     uint64
}

func newCrossShardSource(seed int64, accounts, shards int, crossRate float64) *crossShardSource {
	s := &crossShardSource{
		rng:       rand.New(rand.NewSource(seed)),
		byShard:   make([][]string, shards),
		shards:    shards,
		crossRate: crossRate,
	}
	for i := 0; i < accounts; i++ {
		name := smallbank.AccountName(i)
		s.accounts = append(s.accounts, name)
		home := meepo.ShardIndex(name, shards)
		s.byShard[home] = append(s.byShard[home], name)
	}
	return s
}

func (s *crossShardSource) nextNonce() uint64 {
	s.nonce++
	return s.nonce
}

// SetupTxs creates the account population with 1000/1000 balances.
func (s *crossShardSource) SetupTxs() []*chain.Transaction {
	txs := make([]*chain.Transaction, len(s.accounts))
	for i, name := range s.accounts {
		txs[i] = &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpCreate,
			Args:     []string{name, "1000", "1000"},
			From:     name,
			Nonce:    s.nextNonce(),
		}
	}
	return txs
}

// Next draws one transfer; the destination shard is foreign with probability
// crossRate. Retries are bounded in case hashing piles the population onto
// one shard; unique nonces keep transaction IDs distinct regardless.
func (s *crossShardSource) Next(clientID, serverID string) *chain.Transaction {
	from := s.accounts[s.rng.Intn(len(s.accounts))]
	home := meepo.ShardIndex(from, s.shards)
	to := from
	if s.shards > 1 && s.rng.Float64() < s.crossRate {
		for i := 0; i < 32; i++ {
			to = s.accounts[s.rng.Intn(len(s.accounts))]
			if meepo.ShardIndex(to, s.shards) != home {
				break
			}
		}
	} else {
		pool := s.byShard[home] // never empty: from lives there
		to = pool[s.rng.Intn(len(pool))]
		for i := 0; i < 32 && to == from; i++ {
			to = pool[s.rng.Intn(len(pool))]
		}
	}
	amount := 1 + s.rng.Intn(10)
	return &chain.Transaction{
		ClientID: clientID,
		ServerID: serverID,
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args:     []string{from, to, fmt.Sprint(amount)},
		From:     from,
		Nonce:    s.nextNonce(),
	}
}

// familySetup binds one family×size point to its load and fault scenarios.
type familySetup struct {
	family    string
	size      int
	offered   float64
	txTimeout time.Duration
	crossRate float64
	build     func(sched eventsim.Sched, opts Options) chain.Blockchain
	// source, when set, replaces the default SmallBank generator (Meepo's
	// cross-shard-rate source); it is built per run from the run seed.
	source func(seed int64, opts Options) core.TxSource
	engCfg func(*core.Config)
	crash  func(fault, heal time.Duration) chaos.Scenario
	// partition is the family's N-way split: per-shard groups for Meepo
	// (severing every cross-shard relay while each shard keeps quorum),
	// a three-way validator split for the committee (no group reaches the
	// 2f+1 quorum, so consensus stalls entirely until the heal).
	partition func(fault, heal time.Duration) chaos.Scenario
}

func meepoFamilySetup(n int, opts Options) familySetup {
	members := meepo.DefaultConfig().MembersPerShard
	offered := 1500 * float64(n)
	if offered > 12000 {
		offered = 12000
	}
	return familySetup{
		family:    "meepo",
		size:      n,
		offered:   offered,
		txTimeout: 8 * time.Second,
		crossRate: opts.CrossShardRate,
		build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
			cfg := meepo.DefaultConfig()
			cfg.Shards = n
			cfg.PendingCapPerShard = 12000
			cfg.State = opts.stateFactory()
			return meepo.New(sched, cfg)
		},
		source: func(seed int64, opts Options) core.TxSource {
			return newCrossShardSource(seed, opts.Accounts, n, opts.CrossShardRate)
		},
		engCfg: func(c *core.Config) {
			c.Clients = 8
			c.SubmitCost = 100 * time.Microsecond
		},
		// Losing 2 of shard 0's members breaks its quorum: that shard's
		// slice of the account space stalls while the others keep sealing.
		crash: func(fault, heal time.Duration) chaos.Scenario {
			down := []string{"shard0-member0", "shard0-member1"}
			return chaos.Scenario{Name: fmt.Sprintf("meepo-%d/crash", n), Events: []chaos.Event{
				{At: fault, Kind: chaos.KindCrash, Nodes: down},
				{At: heal, Kind: chaos.KindRestart, Nodes: down},
			}}
		},
		// One group per shard: every shard keeps its internal quorum and
		// commits intra-shard traffic, but all cross-epoch relays are
		// severed, so in-flight cross-shard credits are lost until the
		// driver's retries complete them after the heal.
		partition: func(fault, heal time.Duration) chaos.Scenario {
			groups := make([][]string, n)
			for sh := range groups {
				for j := 0; j < members; j++ {
					groups[sh] = append(groups[sh], fmt.Sprintf("shard%d-member%d", sh, j))
				}
			}
			return chaos.Scenario{Name: fmt.Sprintf("meepo-%d/partition", n), Events: []chaos.Event{
				{At: fault, Kind: chaos.KindPartition, Groups: groups},
				{At: heal, Kind: chaos.KindHeal},
			}}
		},
	}
}

func committeeFamilySetup(n int, opts Options) familySetup {
	// Crash the tolerated fault budget f = (n-1)/3; the committee keeps
	// committing but dips whenever rotation lands on a dead proposer. A
	// committee too small to tolerate any fault (f = 0) loses one validator
	// anyway — quorum breaks and the row measures a full stall-and-recover.
	crashCount := committee.MaxFaulty(n)
	if crashCount == 0 {
		crashCount = 1
	}
	crashed := make([]string, 0, crashCount)
	for i := n - crashCount; i < n; i++ {
		crashed = append(crashed, committee.Validator(i))
	}
	return familySetup{
		family:    "committee",
		size:      n,
		offered:   1200,
		txTimeout: 8 * time.Second,
		build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
			cfg := committee.DefaultConfig()
			cfg.Validators = n
			cfg.State = opts.stateFactory()
			return committee.New(sched, cfg)
		},
		engCfg: func(c *core.Config) {
			c.Clients = 4
			c.SubmitCost = 200 * time.Microsecond
			c.Workload.OpMix = map[string]float64{smallbank.OpTransfer: 1}
		},
		crash: func(fault, heal time.Duration) chaos.Scenario {
			return chaos.Scenario{Name: fmt.Sprintf("committee-%d/crash", n), Events: []chaos.Event{
				{At: fault, Kind: chaos.KindCrash, Nodes: crashed},
				{At: heal, Kind: chaos.KindRestart, Nodes: crashed},
			}}
		},
		partition: func(fault, heal time.Duration) chaos.Scenario {
			k := 3
			if n < k {
				k = n
			}
			groups := make([][]string, k)
			for i := 0; i < n; i++ {
				groups[i%k] = append(groups[i%k], committee.Validator(i))
			}
			return chaos.Scenario{Name: fmt.Sprintf("committee-%d/partition", n), Events: []chaos.Event{
				{At: fault, Kind: chaos.KindPartition, Groups: groups},
				{At: heal, Kind: chaos.KindHeal},
			}}
		},
	}
}

// familySetups expands the two scale axes into per-point setups.
func familySetups(opts Options) []familySetup {
	var setups []familySetup
	for _, n := range opts.FamilyShards {
		setups = append(setups, meepoFamilySetup(n, opts))
	}
	for _, n := range opts.FamilyCommittees {
		setups = append(setups, committeeFamilySetup(n, opts))
	}
	return setups
}

// familyScenario is one of the three scenarios each point runs through;
// scen is nil for the healthy baseline.
type familyScenario struct {
	name string
	scen *chaos.Scenario
}

func familyScenarios(setup familySetup, fault, heal time.Duration) []familyScenario {
	crash := setup.crash(fault, heal)
	part := setup.partition(fault, heal)
	return []familyScenario{
		{"none", nil},
		{"crash", &crash},
		{"partition", &part},
	}
}

// FamiliesRuns returns the family×size×scenario sweep as harness runs.
func FamiliesRuns(opts Options) []harness.Run[FamilyResult] {
	opts.fillDefaults()
	faultSec, healSec := faultTimes(opts)
	fault := time.Duration(faultSec) * time.Second
	heal := time.Duration(healSec) * time.Second

	var runs []harness.Run[FamilyResult]
	for _, setup := range familySetups(opts) {
		for _, sc := range familyScenarios(setup, fault, heal) {
			setup, sc := setup, sc
			var inj *chaos.Injector
			runs = append(runs, harness.Run[FamilyResult]{
				Name: fmt.Sprintf("families/%s-%d/%s", setup.family, setup.size, sc.name),
				Seed: opts.Seed,
				Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
					sched := opts.NewSched()
					bc := setup.build(sched, opts)
					cfg := core.DefaultConfig()
					cfg.Seed = seed
					cfg.Workload.Accounts = opts.Accounts
					cfg.Workload.Seed = seed
					cfg.Control = workload.Constant(setup.offered, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
					cfg.SignMode = core.SignOff
					cfg.Metrics = monitor.NewRegistry()
					cfg.TxTimeout = setup.txTimeout
					cfg.MaxRetries = 2
					cfg.RetryBackoff = 500 * time.Millisecond
					if setup.source != nil {
						cfg.Source = setup.source(seed, opts)
						cfg.Contract = smallbank.Contract{}
					}
					if setup.engCfg != nil {
						setup.engCfg(&cfg)
					}
					inj = nil
					if sc.scen != nil {
						nf, ok := bc.(chaos.NodeFaulter)
						if !ok {
							return nil, nil, core.Config{}, fmt.Errorf("families: chain %s exposes no liveness hooks", setup.family)
						}
						var err error
						inj, err = chaos.NewInjector(sched, nf, *sc.scen, cfg.Metrics)
						if err != nil {
							return nil, nil, core.Config{}, err
						}
						cfg.OnMeasureStart = func(start time.Duration) { inj.Arm(start) }
					}
					return sched, bc, cfg, nil
				},
				Digest: func(res *core.Result, bc chain.Blockchain) (FamilyResult, error) {
					rep := res.Report
					rec := chaos.AnalyzeRecovery(rep.TPSSeries, faultSec, healSec, 0.7)
					row := FamilyResult{
						Family:          setup.family,
						Size:            setup.size,
						Scenario:        sc.name,
						CrossRate:       setup.crossRate,
						Throughput:      rep.Throughput,
						AvgLatency:      rep.AvgLatency,
						P95Latency:      rep.P95Latency,
						Committed:       rep.Committed,
						TimedOut:        rep.TimedOut,
						Rejected:        rep.Rejected,
						Retried:         res.Retried,
						BaselineTPS:     rec.BaselineTPS,
						DipTPS:          rec.DipTPS,
						Recovered:       rec.Recovered,
						RecoverySeconds: rec.RecoverySeconds,
						Series:          rep.TPSSeries,
					}
					if inj != nil {
						row.FaultEvents = len(inj.Applied())
					}
					if s, ok := bc.(interface{ Stranded() int }); ok {
						row.Stranded = s.Stranded()
					}
					if v, ok := bc.(interface{ ViewChanges() int }); ok {
						row.ViewChanges = v.ViewChanges()
					}
					return row, nil
				},
			})
		}
	}
	return runs
}

// Families runs the consensus-family sweep: Meepo at each shard count and
// the BFT committee at each committee size, each through the healthy, crash
// and N-way-partition scenarios.
func Families(ctx context.Context, opts Options) ([]FamilyResult, error) {
	opts.fillDefaults()
	rows, err := harness.Collect(harness.Execute(ctx, FamiliesRuns(opts), opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// FamiliesCSV renders the summary rows.
func FamiliesCSV(rows []FamilyResult) (header []string, records [][]string) {
	header = []string{"family", "size", "scenario", "cross_rate", "throughput_tps",
		"avg_latency_s", "p95_latency_s", "committed", "timed_out", "rejected",
		"retried", "stranded", "view_changes", "baseline_tps", "dip_tps",
		"recovered", "recovery_s", "fault_events"}
	for _, r := range rows {
		records = append(records, []string{
			r.Family, fmt.Sprint(r.Size), r.Scenario, fmtF(r.CrossRate), fmtF(r.Throughput),
			fmtSeconds(r.AvgLatency), fmtSeconds(r.P95Latency), fmt.Sprint(r.Committed),
			fmt.Sprint(r.TimedOut), fmt.Sprint(r.Rejected), fmt.Sprint(r.Retried),
			fmt.Sprint(r.Stranded), fmt.Sprint(r.ViewChanges), fmtF(r.BaselineTPS),
			fmtF(r.DipTPS), fmt.Sprint(r.Recovered), fmt.Sprint(r.RecoverySeconds),
			fmt.Sprint(r.FaultEvents),
		})
	}
	return header, records
}

// FamiliesTimelineCSV renders the per-second TPS timelines in long form for
// plotting the dip-and-recovery curves.
func FamiliesTimelineCSV(rows []FamilyResult) (header []string, records [][]string) {
	header = []string{"family", "size", "scenario", "second", "tps"}
	for _, r := range rows {
		for sec, tps := range r.Series {
			records = append(records, []string{
				r.Family, fmt.Sprint(r.Size), r.Scenario, fmt.Sprint(sec), fmtF(tps),
			})
		}
	}
	return header, records
}
