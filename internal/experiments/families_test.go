package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chaos"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/invariant"
	"hammer/internal/monitor"
	"hammer/internal/smallbank"
	"hammer/internal/workload"
)

// TestFamiliesShape checks the qualitative results of the consensus-family
// sweep in quick mode: every point commits under every scenario, the chaos
// scenarios actually engage, and the family-specific fault signatures show
// up (committee view changes under quorum loss, meepo cross-shard work).
func TestFamiliesShape(t *testing.T) {
	rows, err := Families(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	opts := Quick()
	opts.fillDefaults()
	wantRows := 3 * (len(opts.FamilyShards) + len(opts.FamilyCommittees))
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		t.Log(r)
		if r.Committed == 0 {
			t.Errorf("%s n=%d %s: nothing committed", r.Family, r.Size, r.Scenario)
		}
		if r.Scenario == "none" && r.FaultEvents != 0 {
			t.Errorf("%s n=%d: healthy run reports %d fault events", r.Family, r.Size, r.FaultEvents)
		}
		if r.Scenario != "none" && r.FaultEvents == 0 {
			t.Errorf("%s n=%d %s: scenario never engaged", r.Family, r.Size, r.Scenario)
		}
		switch r.Family {
		case "meepo":
			if r.CrossRate != 0.2 {
				t.Errorf("meepo n=%d: cross rate %v, want 0.2", r.Size, r.CrossRate)
			}
		case "committee":
			if r.Scenario == "partition" && r.ViewChanges == 0 {
				t.Errorf("committee n=%d: a quorum-breaking partition must force view changes", r.Size)
			}
			if r.Scenario == "none" && r.Throughput <= 0 {
				t.Errorf("committee n=%d: no healthy throughput", r.Size)
			}
		}
	}
}

func TestFamiliesQuickSerialGolden(t *testing.T) {
	rows, err := Families(context.Background(), goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	header, csvRows := FamiliesCSV(rows)
	checkGolden(t, "families_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}

// TestFamiliesParallelIdentityGolden pins the sweep's determinism across
// worker counts: four concurrent runners must produce the serial golden
// byte for byte.
func TestFamiliesParallelIdentityGolden(t *testing.T) {
	opts := goldenOpts()
	opts.Workers = 4
	rows, err := Families(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	header, csvRows := FamiliesCSV(rows)
	checkGolden(t, "families_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}

// TestFamiliesShardedSchedulerGolden pins the same bytes on the 4-shard
// event engine.
func TestFamiliesShardedSchedulerGolden(t *testing.T) {
	opts := goldenOpts()
	opts.SchedShards = 4
	rows, err := Families(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	header, csvRows := FamiliesCSV(rows)
	checkGolden(t, "families_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}

// TestFamilyFaultsPreserveInvariants reruns the family sweep's crash and
// N-way-partition scenarios with the invariant recorder attached: a leader
// crash mid-round or a relay-severing partition must never produce a hash
// break, a duplicate commit or a conservation violation once the driver's
// retries drain the run.
func TestFamilyFaultsPreserveInvariants(t *testing.T) {
	opts := Quick()
	opts.MeasureSeconds = 9
	opts.fillDefaults()
	faultSec, healSec := faultTimes(opts)
	fault := time.Duration(faultSec) * time.Second
	heal := time.Duration(healSec) * time.Second

	type verdict struct {
		Violations  []invariant.Violation
		Commits     int
		FaultEvents int
	}
	var runs []harness.Run[verdict]
	for _, setup := range familySetups(opts) {
		for _, sc := range familyScenarios(setup, fault, heal)[1:] { // skip "none"
			setup, sc := setup, sc
			var inj *chaos.Injector
			runs = append(runs, harness.Run[verdict]{
				Name: fmt.Sprintf("families-invariants/%s-%d/%s", setup.family, setup.size, sc.name),
				Seed: opts.Seed,
				Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
					sched := eventsim.New()
					bc := setup.build(sched, opts)
					cfg := core.DefaultConfig()
					cfg.Seed = seed
					cfg.Workload.Accounts = opts.Accounts
					cfg.Workload.Seed = seed
					cfg.Control = workload.Constant(setup.offered, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
					cfg.SignMode = core.SignOff
					cfg.Metrics = monitor.NewRegistry()
					cfg.TxTimeout = setup.txTimeout
					cfg.MaxRetries = 2
					cfg.RetryBackoff = 500 * time.Millisecond
					cfg.Invariants = true
					if setup.source != nil {
						cfg.Source = setup.source(seed, opts)
						cfg.Contract = smallbank.Contract{}
					}
					if setup.engCfg != nil {
						setup.engCfg(&cfg)
					}
					nf, ok := bc.(chaos.NodeFaulter)
					if !ok {
						return nil, nil, core.Config{}, fmt.Errorf("chain %s exposes no liveness hooks", setup.family)
					}
					var err error
					inj, err = chaos.NewInjector(sched, nf, *sc.scen, cfg.Metrics)
					if err != nil {
						return nil, nil, core.Config{}, err
					}
					cfg.OnMeasureStart = func(start time.Duration) { inj.Arm(start) }
					return sched, bc, cfg, nil
				},
				Digest: func(res *core.Result, bc chain.Blockchain) (verdict, error) {
					return verdict{
						Violations:  res.Violations,
						Commits:     res.Report.Committed,
						FaultEvents: len(inj.Applied()),
					}, nil
				},
			})
		}
	}

	rows, err := harness.Collect(harness.Execute(context.Background(), runs, harness.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		name := runs[i].Name
		if row.FaultEvents == 0 {
			t.Errorf("%s: no chaos events fired", name)
		}
		if row.Commits == 0 {
			t.Errorf("%s: nothing committed", name)
		}
		for _, v := range row.Violations {
			t.Errorf("%s: invariant violated under fault: %s", name, v)
		}
	}
}
