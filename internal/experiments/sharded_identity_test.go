package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chaos"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/monitor"
	"hammer/internal/workload"
)

// TestChaosIdenticalUnderShardedScheduler pins the sharded engine's
// byte-identity under fault injection: a crash-and-heal scenario replayed on
// the single timer wheel and on a 4-shard scheduler must produce the same
// commit digest, the same retry count, and the same fault-event timeline.
// Chaos timelines are the adversarial case for epoch merging — cross-shard
// crashes and restarts land between injection slices and consensus timers.
func TestChaosIdenticalUnderShardedScheduler(t *testing.T) {
	opts := Quick()
	opts.MeasureSeconds = 9
	opts.fillDefaults()
	faultSec, healSec := faultTimes(opts)
	fault := time.Duration(faultSec) * time.Second
	heal := time.Duration(healSec) * time.Second

	type outcome struct {
		CommitDigest string
		Commits      int
		Retried      int
		Faults       string
	}
	for _, setup := range faultsSetups(opts) {
		setup := setup
		t.Run(setup.name, func(t *testing.T) {
			scen := setup.crash(fault, heal)
			runOn := func(sched eventsim.Sched) (outcome, error) {
				var inj *chaos.Injector
				run := harness.Run[outcome]{
					Name: "sharded-identity/" + setup.name,
					Seed: opts.Seed,
					Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
						bc := setup.build(sched, opts)
						cfg := core.DefaultConfig()
						cfg.Seed = seed
						cfg.Workload.Accounts = opts.Accounts
						cfg.Workload.Seed = seed
						cfg.Control = workload.Constant(setup.offered, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
						cfg.SignMode = core.SignOff
						cfg.Metrics = monitor.NewRegistry()
						cfg.TxTimeout = setup.txTimeout
						cfg.MaxRetries = 2
						cfg.RetryBackoff = 500 * time.Millisecond
						if setup.engCfg != nil {
							setup.engCfg(&cfg)
						}
						nf, ok := bc.(chaos.NodeFaulter)
						if !ok {
							return nil, nil, core.Config{}, fmt.Errorf("chain %s exposes no liveness hooks", setup.name)
						}
						var err error
						inj, err = chaos.NewInjector(sched, nf, scen, cfg.Metrics)
						if err != nil {
							return nil, nil, core.Config{}, err
						}
						cfg.OnMeasureStart = func(start time.Duration) { inj.Arm(start) }
						return sched, bc, cfg, nil
					},
					Digest: func(res *core.Result, bc chain.Blockchain) (outcome, error) {
						return outcome{
							CommitDigest: res.CommitDigest,
							Commits:      res.Report.Committed,
							Retried:      res.Retried,
							Faults:       fmt.Sprintf("%+v", inj.Applied()),
						}, nil
					},
				}
				rows, err := harness.Collect(harness.Execute(context.Background(), []harness.Run[outcome]{run}, harness.Options{}))
				if err != nil {
					return outcome{}, err
				}
				return rows[0], nil
			}

			wheel, err := runOn(eventsim.New())
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := runOn(eventsim.NewSharded(4))
			if err != nil {
				t.Fatal(err)
			}
			if wheel != sharded {
				t.Fatalf("sharded run diverged from wheel run:\n  wheel:   %+v\n  sharded: %+v", wheel, sharded)
			}
			if wheel.Commits == 0 {
				t.Fatalf("nothing committed — the scenario never engaged")
			}
		})
	}
}
