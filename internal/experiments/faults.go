package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/ethereum"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/meepo"
	"hammer/internal/chains/neuchain"
	"hammer/internal/chaos"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/monitor"
	"hammer/internal/smallbank"
	"hammer/internal/workload"
)

// The faults experiment measures resilience rather than peak performance:
// each chain runs a steady load while a chaos scenario (internal/chaos)
// injects a fault a third of the way into the measurement window and heals
// it at two thirds. The per-second TPS timeline shows the dip and the
// recovery; the driver's timeout/retry path recovers transactions the fault
// stranded, so runs always drain. Everything — fault events included — rides
// the shared virtual clock, so results are deterministic for a fixed seed.

// FaultsResult is one chain×scenario row of the resilience experiment.
type FaultsResult struct {
	Chain    string
	Scenario string
	// BaselineTPS is mean committed TPS before the fault; DipTPS the
	// minimum during it.
	BaselineTPS float64
	DipTPS      float64
	// Recovered reports whether post-heal TPS regained 70% of baseline,
	// RecoverySeconds how long after the heal that took (-1 if never).
	Recovered       bool
	RecoverySeconds int
	Committed       int
	TimedOut        int
	Rejected        int
	// Retried counts driver resubmissions; Stranded the transactions the
	// chain lost to the fault (recovered only through those retries).
	Retried  int
	Stranded int
	// FaultEvents is how many scenario events fired.
	FaultEvents int
	// Series is the committed-TPS-per-second timeline for the CSV export.
	Series []float64
}

// String renders the row.
func (r FaultsResult) String() string {
	rec := "no recovery"
	if r.Recovered {
		rec = fmt.Sprintf("recovered in %ds", r.RecoverySeconds)
	}
	return fmt.Sprintf("%-9s %-10s baseline %8.1f TPS  dip %8.1f TPS  %-17s (%d committed, %d timed out, %d retried, %d stranded)",
		r.Chain, r.Scenario, r.BaselineTPS, r.DipTPS, rec, r.Committed, r.TimedOut, r.Retried, r.Stranded)
}

// faultsSetup binds one chain to its load, driver timeout and the two fault
// scenarios (crash-and-heal, partition-and-heal).
type faultsSetup struct {
	name      string
	offered   float64
	txTimeout time.Duration
	build     func(sched eventsim.Sched, opts Options) chain.Blockchain
	engCfg    func(*core.Config)
	crash     func(fault, heal time.Duration) chaos.Scenario
	partition func(fault, heal time.Duration) chaos.Scenario
}

// faultsSetups returns the four chains under ~60-80% of their Fig 6 peak
// load — enough headroom that the post-heal backlog drains and the timeline
// shows a recovery, not a permanently saturated queue.
func faultsSetups(opts Options) []faultsSetup {
	miners := func(idx ...int) []string {
		out := make([]string, len(idx))
		for i, m := range idx {
			out[i] = fmt.Sprintf("miner-%d", m)
		}
		return out
	}
	return []faultsSetup{
		{
			name:      "ethereum",
			offered:   16,
			txTimeout: 30 * time.Second,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := ethereum.DefaultConfig()
				cfg.Seed = opts.Seed
				return ethereum.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.DrainTimeout = 5 * time.Minute
			},
			// Crash 3 of 5 miners: surviving hash power mines at 2/5 rate.
			crash: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "ethereum/crash", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindCrash, Nodes: miners(0, 1, 2)},
					{At: heal, Kind: chaos.KindRestart, Nodes: miners(0, 1, 2)},
				}}
			},
			// Ethereum folds its gossip network into the PoW interval, so
			// the injector emulates the partition by crashing the minority.
			partition: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "ethereum/partition", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindPartition, GroupA: miners(0, 1), GroupB: miners(2, 3, 4)},
					{At: heal, Kind: chaos.KindHeal},
				}}
			},
		},
		{
			name:      "fabric",
			offered:   150,
			txTimeout: 5 * time.Second,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				return fabric.New(sched, fabric.DefaultConfig())
			},
			engCfg: func(c *core.Config) {
				c.Clients = 4
				c.SubmitCost = 500 * time.Microsecond
			},
			// The single orderer is Fabric's availability bottleneck: its
			// crash stalls ordering and strands endorsed transactions.
			crash: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "fabric/crash", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindCrash, Nodes: []string{"orderer"}},
					{At: heal, Kind: chaos.KindRestart, Nodes: []string{"orderer"}},
				}}
			},
			partition: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "fabric/partition", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindPartition,
						GroupA: []string{"orderer"},
						GroupB: []string{"peer-0", "peer-1", "peer-2", "peer-3"}},
					{At: heal, Kind: chaos.KindHeal},
				}}
			},
		},
		{
			name:      "meepo",
			offered:   4000,
			txTimeout: 8 * time.Second,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := meepo.DefaultConfig()
				cfg.PendingCapPerShard = 12000
				return meepo.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
				c.Workload.OpMix = map[string]float64{smallbank.OpTransfer: 1}
			},
			// Losing 2 of shard 0's 3 members breaks its quorum: half the
			// account space stalls while shard 1 keeps committing.
			crash: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "meepo/crash", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindCrash, Nodes: []string{"shard0-member0", "shard0-member1"}},
					{At: heal, Kind: chaos.KindRestart, Nodes: []string{"shard0-member0", "shard0-member1"}},
				}}
			},
			// Splitting the shards severs the cross-epoch relay: intra-shard
			// traffic commits, cross-shard transfers lose their credits and
			// only the driver's retries complete them after the heal.
			partition: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "meepo/partition", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindPartition,
						GroupA: []string{"shard0-member0", "shard0-member1", "shard0-member2"},
						GroupB: []string{"shard1-member0", "shard1-member1", "shard1-member2"}},
					{At: heal, Kind: chaos.KindHeal},
				}}
			},
		},
		{
			name:      "neuchain",
			offered:   6000,
			txTimeout: 3 * time.Second,
			build: func(sched eventsim.Sched, opts Options) chain.Blockchain {
				cfg := neuchain.DefaultConfig()
				// A deep proxy queue absorbs the stall so the post-heal
				// backlog drains instead of shedding at admission.
				cfg.PendingCap = 40000
				return neuchain.New(sched, cfg)
			},
			engCfg: func(c *core.Config) {
				c.Clients = 8
				c.SubmitCost = 100 * time.Microsecond
			},
			crash: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "neuchain/crash", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindCrash, Nodes: []string{"epoch-server"}},
					{At: heal, Kind: chaos.KindRestart, Nodes: []string{"epoch-server"}},
				}}
			},
			partition: func(fault, heal time.Duration) chaos.Scenario {
				return chaos.Scenario{Name: "neuchain/partition", Events: []chaos.Event{
					{At: fault, Kind: chaos.KindPartition,
						GroupA: []string{"proxy"},
						GroupB: []string{"block-server-0", "block-server-1", "block-server-2"}},
					{At: heal, Kind: chaos.KindHeal},
				}}
			},
		},
	}
}

// faultTimes places the fault a third into the measurement window and the
// heal at two thirds.
func faultTimes(opts Options) (faultSec, healSec int) {
	return opts.MeasureSeconds / 3, 2 * opts.MeasureSeconds / 3
}

// FaultsRuns returns the eight chain×scenario evaluations as harness runs.
func FaultsRuns(opts Options) []harness.Run[FaultsResult] {
	opts.fillDefaults()
	faultSec, healSec := faultTimes(opts)
	fault := time.Duration(faultSec) * time.Second
	heal := time.Duration(healSec) * time.Second

	var runs []harness.Run[FaultsResult]
	for _, setup := range faultsSetups(opts) {
		for _, sc := range []struct {
			name string
			scen chaos.Scenario
		}{
			{"crash", setup.crash(fault, heal)},
			{"partition", setup.partition(fault, heal)},
		} {
			setup, sc := setup, sc
			// Build assigns these; Digest (always called after Build in the
			// same run slot) reads them.
			var inj *chaos.Injector
			var reg *monitor.Registry
			runs = append(runs, harness.Run[FaultsResult]{
				Name: "faults/" + setup.name + "/" + sc.name,
				Seed: opts.Seed,
				Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
					sched := opts.NewSched()
					bc := setup.build(sched, opts)
					reg = monitor.NewRegistry()
					cfg := core.DefaultConfig()
					cfg.Seed = seed
					cfg.Workload.Accounts = opts.Accounts
					cfg.Workload.Seed = seed
					cfg.Control = workload.Constant(setup.offered, time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
					cfg.SignMode = core.SignOff
					cfg.Metrics = reg
					cfg.TxTimeout = setup.txTimeout
					cfg.MaxRetries = 2
					cfg.RetryBackoff = 500 * time.Millisecond
					if setup.engCfg != nil {
						setup.engCfg(&cfg)
					}
					nf, ok := bc.(chaos.NodeFaulter)
					if !ok {
						return nil, nil, core.Config{}, fmt.Errorf("faults: chain %s exposes no liveness hooks", setup.name)
					}
					var err error
					inj, err = chaos.NewInjector(sched, nf, sc.scen, reg)
					if err != nil {
						return nil, nil, core.Config{}, err
					}
					// Scenario offsets are relative to measurement start:
					// account setup consumes virtual time first.
					cfg.OnMeasureStart = func(start time.Duration) { inj.Arm(start) }
					return sched, bc, cfg, nil
				},
				Digest: func(res *core.Result, bc chain.Blockchain) (FaultsResult, error) {
					rep := res.Report
					rec := chaos.AnalyzeRecovery(rep.TPSSeries, faultSec, healSec, 0.7)
					reg.Gauge("chaos/recovery_seconds").Set(float64(rec.RecoverySeconds))
					row := FaultsResult{
						Chain:           bc.Name(),
						Scenario:        sc.name,
						BaselineTPS:     rec.BaselineTPS,
						DipTPS:          rec.DipTPS,
						Recovered:       rec.Recovered,
						RecoverySeconds: rec.RecoverySeconds,
						Committed:       rep.Committed,
						TimedOut:        rep.TimedOut,
						Rejected:        rep.Rejected,
						Retried:         res.Retried,
						FaultEvents:     len(inj.Applied()),
						Series:          rep.TPSSeries,
					}
					if s, ok := bc.(interface{ Stranded() int }); ok {
						row.Stranded = s.Stranded()
					}
					return row, nil
				},
			})
		}
	}
	return runs
}

// Faults runs the resilience experiment: all four chains through the
// crash-and-heal and partition-and-heal scenarios.
func Faults(ctx context.Context, opts Options) ([]FaultsResult, error) {
	opts.fillDefaults()
	rows, err := harness.Collect(harness.Execute(ctx, FaultsRuns(opts), opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// FaultsCSV renders the summary rows.
func FaultsCSV(rows []FaultsResult) (header []string, records [][]string) {
	header = []string{"chain", "scenario", "baseline_tps", "dip_tps", "recovered", "recovery_s",
		"committed", "timed_out", "rejected", "retried", "stranded", "fault_events"}
	for _, r := range rows {
		records = append(records, []string{
			r.Chain, r.Scenario, fmtF(r.BaselineTPS), fmtF(r.DipTPS),
			fmt.Sprint(r.Recovered), fmt.Sprint(r.RecoverySeconds),
			fmt.Sprint(r.Committed), fmt.Sprint(r.TimedOut), fmt.Sprint(r.Rejected),
			fmt.Sprint(r.Retried), fmt.Sprint(r.Stranded), fmt.Sprint(r.FaultEvents),
		})
	}
	return header, records
}

// FaultsTimelineCSV renders the per-second TPS timelines in long form
// (chain, scenario, second, tps) for plotting.
func FaultsTimelineCSV(rows []FaultsResult) (header []string, records [][]string) {
	header = []string{"chain", "scenario", "second", "tps"}
	for _, r := range rows {
		for sec, tps := range r.Series {
			records = append(records, []string{
				r.Chain, r.Scenario, fmt.Sprint(sec), fmtF(tps),
			})
		}
	}
	return header, records
}
