package experiments

import "testing"

func TestSuggest(t *testing.T) {
	known := []string{"fig1", "fig6", "faults", "schedbench", "all"}
	cases := []struct {
		input string
		want  string
	}{
		{"fualts", "faults"}, // transposition = 2 edits
		{"Faults", "faults"}, // case-folded exact match
		{"fig66", "fig6"},    // one insertion
		{"shedbench", "schedbench"},
		{"correctness", ""}, // nothing close
		{"", ""},            // empty input matches nothing useful
	}
	for _, c := range cases {
		if got := Suggest(c.input, known); got != c.want {
			t.Errorf("Suggest(%q) = %q, want %q", c.input, got, c.want)
		}
	}
}
