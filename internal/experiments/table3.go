package experiments

import (
	"context"
	"fmt"

	"hammer/internal/harness"
	"hammer/internal/models"
	"hammer/internal/timeseries"
	"hammer/internal/timeseries/datasets"
)

// Table3Row is one row of Table III: one model's test metrics on one
// dataset.
type Table3Row struct {
	Dataset string
	Method  string
	Metrics models.Metrics
}

// String renders the row.
func (r Table3Row) String() string {
	return fmt.Sprintf("%-8s %-12s %s", r.Dataset, r.Method, r.Metrics)
}

// modelBuilders returns the five Table III methods in paper order.
func modelBuilders() []struct {
	Name  string
	Build func(models.Config) models.Predictor
} {
	return []struct {
		Name  string
		Build func(models.Config) models.Predictor
	}{
		{"Linear", func(c models.Config) models.Predictor { return models.NewLinear(c) }},
		{"RNN", models.NewRNN},
		{"TCN", models.NewTCN},
		{"Transformer", models.NewTransformer},
		{"Hammer", models.NewHammer},
	}
}

// table3Config builds the model configuration from options.
func table3Config(opts Options) models.Config {
	cfg := models.DefaultConfig()
	cfg.Epochs = opts.ModelEpochs
	cfg.Lookback = opts.ModelLookback
	cfg.Hidden = opts.ModelHidden
	cfg.Seed = opts.Seed
	return cfg
}

// Table3 trains the five workload predictors on the three synthetic
// application datasets and scores one-step-ahead forecasts on the held-out
// 20%. Expected shape (paper): Hammer's TCN→BiGRU→attention model leads on
// every dataset (>56% MAE reduction, R² near 1 on Sandbox/NFTs), the
// Transformer struggles on these small corpora.
func Table3(ctx context.Context, opts Options) ([]Table3Row, error) {
	opts.fillDefaults()
	cfg := table3Config(opts)

	var runs []harness.Run[Table3Row]
	for i, log := range datasets.All(opts.Seed) {
		i, dataset := i, log.Name
		for _, mb := range modelBuilders() {
			mb := mb
			runs = append(runs, harness.Run[Table3Row]{
				Name: fmt.Sprintf("table3/%s/%s", dataset, mb.Name),
				Fn: func(context.Context) (Table3Row, error) {
					// Regenerate the dataset inside the run so concurrent
					// runs never share series storage.
					series := datasets.All(opts.Seed)[i].HourlySeries()
					train, _ := timeseries.Split(series, 0.8)
					p := mb.Build(cfg)
					if err := p.Fit(train); err != nil {
						return Table3Row{}, fmt.Errorf("fit: %w", err)
					}
					m, err := models.EvaluateNormalized(p, series, len(train))
					if err != nil {
						return Table3Row{}, fmt.Errorf("evaluate: %w", err)
					}
					return Table3Row{Dataset: dataset, Method: mb.Name, Metrics: m}, nil
				},
			})
		}
	}
	rows, err := harness.Collect(harness.Execute(ctx, runs, opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// Table3CSV renders the rows for the CSV exporter.
func Table3CSV(rows []Table3Row) (header []string, records [][]string) {
	header = []string{"dataset", "method", "mae", "mse", "rmse", "r2"}
	for _, r := range rows {
		records = append(records, []string{
			r.Dataset, r.Method, fmtF(r.Metrics.MAE), fmtF(r.Metrics.MSE), fmtF(r.Metrics.RMSE), fmt.Sprintf("%.4f", r.Metrics.R2),
		})
	}
	return header, records
}
