package experiments

import (
	"context"
	"testing"
)

// TestLoadPlaneQuick runs the scale sweep at test size and checks the
// open/closed contrast the experiment exists to show: at identical
// population and service, the open-loop rows expose drops while the
// closed-loop rows self-limit to roughly the service rate.
func TestLoadPlaneQuick(t *testing.T) {
	opts := Quick()
	rows, err := LoadPlane(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(opts.LoadClients) {
		t.Fatalf("expected %d rows, got %d", 2*len(opts.LoadClients), len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		open, closed := rows[i], rows[i+1]
		if open.Mode != "open" || closed.Mode != "closed" {
			t.Fatalf("row order: %q then %q", open.Mode, closed.Mode)
		}
		if open.Clients != closed.Clients {
			t.Fatalf("paired rows differ in population: %d vs %d", open.Clients, closed.Clients)
		}
		// The service model is sized at half the offered rate, so the
		// open-loop run must drop and the closed-loop run must issue below
		// the open-loop offered rate.
		if open.DroppedFrac <= 0 {
			t.Fatalf("open-loop at %d clients dropped nothing", open.Clients)
		}
		if closed.DroppedFrac != 0 {
			t.Fatalf("closed-loop at %d clients dropped %f", closed.Clients, closed.DroppedFrac)
		}
		if closed.OfferedPerS >= open.OfferedPerS {
			t.Fatalf("closed-loop issue rate %d should sit below open-loop offered %d",
				closed.OfferedPerS, open.OfferedPerS)
		}
		if open.Checksum == 0 {
			t.Fatal("open-loop row lost its arrival checksum")
		}
	}
}

// TestLoadPlaneDeterministic: the sweep's rows — including checksums — are
// identical across invocations.
func TestLoadPlaneDeterministic(t *testing.T) {
	opts := Quick()
	opts.LoadClients = []int{1500}
	a, err := LoadPlane(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadPlane(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLoadPlaneSpecIsPure: the canonical spec derivation the CI golden
// comparison relies on is a pure function of its arguments.
func TestLoadPlaneSpecIsPure(t *testing.T) {
	a := LoadPlaneSpec(20_000, 7, 10)
	b := LoadPlaneSpec(20_000, 7, 10)
	if a != b {
		t.Fatalf("spec derivation not pure: %+v vs %+v", a, b)
	}
	// offered = clients × 0.5 = 10k; service = offered/2 + 1.
	if a.Service.RatePerSec != 5001 {
		t.Fatalf("service rate %d, want 5001", a.Service.RatePerSec)
	}
}

// TestLoadPlaneDriveQuick drives Fabric from the open-loop schedule under
// both drivers — the loadplane → core wiring end to end.
func TestLoadPlaneDriveQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chain run")
	}
	opts := Quick()
	rows, err := LoadPlaneDrive(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 driver rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Committed == 0 {
			t.Fatalf("driver %s committed nothing: %+v", r.Driver, r)
		}
	}
}
