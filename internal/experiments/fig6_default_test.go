package experiments

import (
	"context"

	"testing"
	"time"
)

// TestFig6PaperScale runs the full paper-scale Fig 6 configuration and
// checks the quantitative targets: Ethereum ≈ 18.6 TPS with ≈ 4.8 s
// latency, Fabric in the ≈ 239 TPS regime, Neuchain ≈ 8.7k TPS with low
// latency, and Meepo between Fabric and Neuchain. Skipped in -short runs.
func TestFig6PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	rows, err := Fig6(context.Background(), Default())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ChainResult{}
	for _, r := range rows {
		t.Log(r)
		byName[r.Chain] = r
	}
	eth, fab, mee, neu := byName["ethereum"], byName["fabric"], byName["meepo"], byName["neuchain"]

	if eth.Throughput < 15 || eth.Throughput > 22 {
		t.Errorf("ethereum %.1f TPS, paper reports 18.6", eth.Throughput)
	}
	if eth.AvgLatency < 3500*time.Millisecond || eth.AvgLatency > 7*time.Second {
		t.Errorf("ethereum latency %v, paper reports ≈4.8s", eth.AvgLatency)
	}
	if fab.Throughput < 200 || fab.Throughput > 280 {
		t.Errorf("fabric %.1f TPS, paper-regime is ≈239", fab.Throughput)
	}
	if neu.Throughput < 7000 || neu.Throughput > 10500 {
		t.Errorf("neuchain %.0f TPS, paper reports 8688", neu.Throughput)
	}
	if neu.AvgLatency > 400*time.Millisecond {
		t.Errorf("neuchain latency %v, want low", neu.AvgLatency)
	}
	if !(mee.Throughput > fab.Throughput && mee.Throughput < neu.Throughput) {
		t.Errorf("meepo %.0f TPS should sit between fabric %.0f and neuchain %.0f",
			mee.Throughput, fab.Throughput, neu.Throughput)
	}
	if mee.AvgLatency < time.Second {
		t.Errorf("meepo latency %v, paper calls it high", mee.AvgLatency)
	}
}
