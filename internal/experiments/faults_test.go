package experiments

import (
	"context"
	"testing"
)

// The faults experiment must be deterministic for a fixed seed — every
// chaos event, retry, and timeout rides the virtual clock — and must show
// the resilience shape the scenarios are designed to produce: throughput
// dips while the fault holds and regains baseline after the heal. The
// golden file pins the full summary byte-for-byte; regenerate with
// go run ./cmd/hammer-bench -exp faults -quick -parallel 1 only if the
// experiment's semantics deliberately change.
func TestFaultsQuickSerialGolden(t *testing.T) {
	rows, err := Faults(context.Background(), goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expected 4 chains x 2 scenarios = 8 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.DipTPS >= r.BaselineTPS {
			t.Errorf("%s/%s: no measurable dip (baseline %.1f, dip %.1f)", r.Chain, r.Scenario, r.BaselineTPS, r.DipTPS)
		}
		if !r.Recovered {
			t.Errorf("%s/%s: throughput never regained baseline after the heal", r.Chain, r.Scenario)
		}
		if r.FaultEvents == 0 {
			t.Errorf("%s/%s: no chaos events fired", r.Chain, r.Scenario)
		}
		if r.Committed == 0 {
			t.Errorf("%s/%s: nothing committed", r.Chain, r.Scenario)
		}
	}
	header, csvRows := FaultsCSV(rows)
	checkGolden(t, "faults_quick_serial.golden.csv", renderCSV(t, header, csvRows))
}
