package experiments

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"hammer/internal/parallel"
)

// These goldens were captured from the pre-kernel-rewrite internal/nn (naive
// triple-loop MatMul, closure autograd, no fusion, no pooling). They pin the
// tensor-kernel determinism invariant: the blocked GEMM, the fused
// affine/gate/conv/attention kernels, and the buffer freelist must reproduce
// the original training trajectories bit for bit, and the fixed-block
// parallel partition must keep every metric byte identical at ANY worker
// count. Regenerate only if training semantics deliberately change:
// go run ./cmd/hammer-predict -exp table3,fig11 -quick -parallel 1, then
// copy the CSVs over testdata/.

// nnWorkerCounts are the kernel pool sizes the goldens must survive:
// serial, a small pool, and whatever this machine has.
func nnWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func TestTable3QuickGoldenAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains fifteen models per worker count")
	}
	origWorkers := parallel.Workers()
	defer parallel.SetWorkers(origWorkers)
	for _, workers := range nnWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			parallel.SetWorkers(workers)
			rows, err := Table3(context.Background(), goldenOpts())
			if err != nil {
				t.Fatal(err)
			}
			header, csvRows := Table3CSV(rows)
			checkGolden(t, "table3_quick_serial.golden.csv", renderCSV(t, header, csvRows))
		})
	}
}

func TestFig11QuickGoldenAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains and autoregressively rolls out the predictor per worker count")
	}
	origWorkers := parallel.Workers()
	defer parallel.SetWorkers(origWorkers)
	for _, workers := range nnWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			parallel.SetWorkers(workers)
			results, err := Fig11(context.Background(), goldenOpts())
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				header, csvRows := Fig11CSV(r)
				checkGolden(t, fmt.Sprintf("fig11_%s_quick_serial.golden.csv", r.Dataset), renderCSV(t, header, csvRows))
			}
		})
	}
}
