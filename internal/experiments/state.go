package experiments

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"hammer/internal/chain"
	"hammer/internal/store/pagedstate"
)

// State-backend selection. Every SUT experiment mounts its world state
// through Options.StateBackend: "mem" (the default) keeps the original
// in-RAM map, "paged" mounts internal/store/pagedstate behind the
// chain.State seam. The choice must never change results — the
// paged-identity tests compare golden CSVs and conformance digests across
// both backends byte for byte.

// StateBackends lists the accepted Options.StateBackend values.
var StateBackends = []string{"mem", "paged"}

// ValidateStateBackend rejects unknown backend names; the CLIs call it on
// the -state flag before any run starts.
func ValidateStateBackend(name string) error {
	switch name {
	case "", "mem", "paged":
		return nil
	default:
		return fmt.Errorf("experiments: unknown state backend %q (want %v)", name, StateBackends)
	}
}

// StateRuntime tracks every paged store opened behind a chain.State seam so
// the owner can read aggregate stats and release the files once results are
// digested. Factories run concurrently under the harness; all methods are
// safe for concurrent use.
type StateRuntime struct {
	mu     sync.Mutex
	stores []*pagedstate.Store
	dirs   []string
}

// NewStateRuntime returns an empty runtime.
func NewStateRuntime() *StateRuntime { return &StateRuntime{} }

// sharedStates collects stores whose owner supplied no runtime; they are
// released only at process exit (acceptable for a CLI, leaky for tests —
// tests set Options.States).
var sharedStates = NewStateRuntime()

// Factory returns a chain.StateFactory that opens one paged store per call
// in a fresh subdirectory of baseDir ("" = OS temp) and registers it with
// the runtime. Open errors panic: the factory seam has no error path, and
// the harness converts run panics into run errors.
func (rt *StateRuntime) Factory(baseDir string, cacheMB, expectedKeys int) chain.StateFactory {
	return func() *chain.State {
		dir, err := os.MkdirTemp(orTempDir(baseDir), "pagedstate-")
		if err != nil {
			panic(fmt.Sprintf("experiments: paged state dir: %v", err))
		}
		cfg := pagedstate.Config{Dir: dir, ExpectedKeys: expectedKeys}
		if cacheMB > 0 {
			cfg.CacheBytes = cacheMB << 20
		}
		st, err := pagedstate.Open(cfg)
		if err != nil {
			os.RemoveAll(dir)
			panic(fmt.Sprintf("experiments: paged state open: %v", err))
		}
		rt.mu.Lock()
		rt.stores = append(rt.stores, st)
		rt.dirs = append(rt.dirs, dir)
		rt.mu.Unlock()
		return chain.NewStateOn(st)
	}
}

func orTempDir(dir string) string {
	if dir == "" {
		return os.TempDir()
	}
	return dir
}

// Stores reports how many paged stores the runtime has opened.
func (rt *StateRuntime) Stores() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.stores)
}

// Stats sums the counters of every open store — the per-run cache and bloom
// economics the blockbench CSV reports.
func (rt *StateRuntime) Stats() pagedstate.Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var agg pagedstate.Stats
	for _, st := range rt.stores {
		s := st.Stats()
		agg.Gets += s.Gets
		agg.Sets += s.Sets
		agg.Deletes += s.Deletes
		agg.CacheHits += s.CacheHits
		agg.CacheMisses += s.CacheMisses
		agg.BloomNegatives += s.BloomNegatives
		agg.Evictions += s.Evictions
		agg.Compactions += s.Compactions
		agg.PagesAllocated += s.PagesAllocated
		agg.ResidentPages += s.ResidentPages
		agg.CacheBudgetBytes += s.CacheBudgetBytes
		agg.WALBytes += s.WALBytes
		agg.WALFlushes += s.WALFlushes
		agg.LiveKeys += s.LiveKeys
	}
	return agg
}

// Close closes every store and deletes its directory. Safe to call more
// than once; later Factory calls may reuse the runtime.
func (rt *StateRuntime) Close() error {
	rt.mu.Lock()
	stores, dirs := rt.stores, rt.dirs
	rt.stores, rt.dirs = nil, nil
	rt.mu.Unlock()
	var errs []error
	for i, st := range stores {
		if err := st.Close(); err != nil {
			errs = append(errs, err)
		}
		if err := os.RemoveAll(dirs[i]); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// stateFactory translates the Options state knobs into the factory the
// chain configs mount; nil keeps the in-RAM map. Unknown backends panic —
// callers validate with ValidateStateBackend first, and the harness turns a
// Build-time panic into a run error.
func (o *Options) stateFactory() chain.StateFactory {
	switch o.StateBackend {
	case "", "mem":
		return nil
	case "paged":
	default:
		panic(fmt.Sprintf("experiments: unknown state backend %q", o.StateBackend))
	}
	rt := o.States
	if rt == nil {
		rt = sharedStates
	}
	// SmallBank holds a checking and a savings key per account; 4× leaves
	// headroom for result keys and the blockbench populations.
	return rt.Factory(o.StateDir, o.StateCacheMB, 4*o.Accounts)
}
