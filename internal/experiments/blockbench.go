package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/blockbench"
	"hammer/internal/chain"
	"hammer/internal/chains/neuchain"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/harness"
	"hammer/internal/workload"
)

// The blockbench experiment runs the BLOCKBENCH micro-workloads (IOHeavy,
// Analytics, DoNothing) against the deterministic neuchain SUT twice each:
// once on the in-RAM map state and once on the disk-backed paged store.
// Identical committed counts across the backend pair are the visible half
// of the storage-identity claim; the paged rows additionally report the
// cache and bloom economics only that backend has.

// BlockbenchResult is one workload×backend row.
type BlockbenchResult struct {
	Workload   string
	Backend    string
	Throughput float64
	AvgLatency time.Duration
	Committed  int
	Aborted    int
	// Paged-backend economics; zero on mem rows.
	CacheHitRate   float64
	BloomNegatives int64
	Evictions      int64
	ResidentMB     float64
	WALMB          float64
}

// String renders the row.
func (r BlockbenchResult) String() string {
	s := fmt.Sprintf("%-9s %-5s %9.1f TPS  latency avg %8v  (%d committed, %d aborted)",
		r.Workload, r.Backend, r.Throughput, r.AvgLatency.Round(time.Millisecond), r.Committed, r.Aborted)
	if r.Backend == "paged" {
		s += fmt.Sprintf("  cache hit %.1f%%, bloom-neg %d, resident %.1f MB",
			100*r.CacheHitRate, r.BloomNegatives, r.ResidentMB)
	}
	return s
}

// blockbenchOffered is the offered load per workload, tuned so neuchain
// saturates on transaction processing (ioheavy/donothing) or scan execution
// (analytics) rather than on admission.
func blockbenchOffered(workload string) float64 {
	switch workload {
	case blockbench.Analytics:
		return 600
	case blockbench.DoNothing:
		return 4000
	default:
		return 3000
	}
}

// BlockbenchRuns returns the workload×backend sweep as harness runs.
func BlockbenchRuns(opts Options) []harness.Run[BlockbenchResult] {
	opts.fillDefaults()
	var runs []harness.Run[BlockbenchResult]
	for _, wl := range blockbench.Workloads {
		for _, backend := range []string{"mem", "paged"} {
			wl, backend := wl, backend
			// Per-run runtime: the digest reads this run's store stats and
			// releases its files without waiting for the sweep to finish.
			rt := NewStateRuntime()
			runs = append(runs, harness.Run[BlockbenchResult]{
				Name: fmt.Sprintf("blockbench/%s/%s", wl, backend),
				Seed: opts.Seed,
				Build: func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error) {
					sched := opts.NewSched()
					ccfg := neuchain.DefaultConfig()
					if backend == "paged" {
						ccfg.State = rt.Factory(opts.StateDir, opts.StateCacheMB, 4*opts.Accounts)
					}
					bc := neuchain.New(sched, ccfg)

					profile := blockbench.DefaultProfile(wl)
					profile.Records = opts.Accounts
					profile.Seed = seed
					gen, err := blockbench.NewGenerator(profile)
					if err != nil {
						return nil, nil, core.Config{}, err
					}
					cfg := core.DefaultConfig()
					cfg.Seed = seed
					cfg.Source = gen
					cfg.Contract = blockbench.Contract{}
					cfg.Control = workload.Constant(blockbenchOffered(wl),
						time.Duration(opts.MeasureSeconds)*time.Second, time.Second)
					cfg.SignMode = core.SignOff
					cfg.Clients = 8
					cfg.SubmitCost = 100 * time.Microsecond
					return sched, bc, cfg, nil
				},
				Digest: func(res *core.Result, bc chain.Blockchain) (BlockbenchResult, error) {
					defer rt.Close()
					rep := res.Report
					row := BlockbenchResult{
						Workload:   wl,
						Backend:    backend,
						Throughput: rep.Throughput,
						AvgLatency: rep.AvgLatency,
						Committed:  rep.Committed,
						Aborted:    rep.Aborted,
					}
					if backend == "paged" {
						st := rt.Stats()
						row.CacheHitRate = st.HitRate()
						row.BloomNegatives = st.BloomNegatives
						row.Evictions = st.Evictions
						// StateRuntime stores use the default 8 KiB pages.
						row.ResidentMB = float64(st.ResidentPages) * 8192 / (1 << 20)
						row.WALMB = float64(st.WALBytes) / (1 << 20)
					}
					return row, nil
				},
			})
		}
	}
	return runs
}

// Blockbench runs the BLOCKBENCH micro-workloads on both state backends.
func Blockbench(ctx context.Context, opts Options) ([]BlockbenchResult, error) {
	opts.fillDefaults()
	rows, err := harness.Collect(harness.Execute(ctx, BlockbenchRuns(opts), opts.harnessOptions()))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// BlockbenchCSV renders the rows for the CSV exporter.
func BlockbenchCSV(rows []BlockbenchResult) (header []string, records [][]string) {
	header = []string{"workload", "backend", "throughput_tps", "avg_latency_s", "committed", "aborted",
		"cache_hit_rate", "bloom_negatives", "evictions", "resident_mb", "wal_mb"}
	for _, r := range rows {
		records = append(records, []string{
			r.Workload, r.Backend, fmtF(r.Throughput), fmtSeconds(r.AvgLatency),
			fmt.Sprint(r.Committed), fmt.Sprint(r.Aborted),
			fmtF(r.CacheHitRate), fmt.Sprint(r.BloomNegatives), fmt.Sprint(r.Evictions),
			fmtF(r.ResidentMB), fmtF(r.WALMB),
		})
	}
	return header, records
}
