package experiments

import (
	"context"

	"testing"
)

// TestTable3Quick trains all five models with tiny budgets and checks basic
// sanity: every row has finite metrics and the Hammer model is competitive.
func TestTable3Quick(t *testing.T) {
	opts := Quick()
	rows, err := Table3(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	best := map[string]Table3Row{}
	hammer := map[string]Table3Row{}
	for _, r := range rows {
		t.Log(r)
		if r.Metrics.MAE != r.Metrics.MAE { // NaN check
			t.Errorf("%s on %s produced NaN MAE", r.Method, r.Dataset)
		}
		if cur, ok := best[r.Dataset]; !ok || r.Metrics.MAE < cur.Metrics.MAE {
			best[r.Dataset] = r
		}
		if r.Method == "Hammer" {
			hammer[r.Dataset] = r
		}
	}
	// With tiny training budgets we only require the Hammer model to stay
	// within 3x of the best method per dataset (full-budget quality is
	// asserted by TestTable3PaperScale).
	for ds, b := range best {
		h := hammer[ds]
		if h.Metrics.MAE > 3*b.Metrics.MAE {
			t.Errorf("hammer MAE %.3f on %s is far behind best %s (%.3f) even for a smoke test",
				h.Metrics.MAE, ds, b.Method, b.Metrics.MAE)
		}
	}
}

// TestTable3PaperScale runs the full training budget and checks Table III's
// shape: Hammer leads every dataset with R² close to 1 on sandbox/nfts.
func TestTable3PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale training skipped in -short mode")
	}
	rows, err := Table3(context.Background(), Default())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table3Row{}
	for _, r := range rows {
		t.Log(r)
		byKey[r.Dataset+"/"+r.Method] = r
	}
	for _, ds := range []string{"defi", "sandbox", "nfts"} {
		h := byKey[ds+"/Hammer"]
		// Hammer must at worst tie the strongest baseline (the warm-started
		// AR highway guarantees it cannot fall behind ridge regression)...
		for _, m := range []string{"Linear", "RNN", "TCN", "Transformer"} {
			b := byKey[ds+"/"+m]
			if h.Metrics.MAE > b.Metrics.MAE*1.06 {
				t.Errorf("%s: Hammer MAE %.3f should not trail %s's %.3f", ds, h.Metrics.MAE, m, b.Metrics.MAE)
			}
		}
		// ...and beat the neural baselines the paper's >56% claim compares
		// against. On these synthetic corpora (closer to linear-predictable
		// than real application logs — see EXPERIMENTS.md) the margin is
		// 5-15% rather than 56%, but the ordering holds.
		if rnn := byKey[ds+"/RNN"]; h.Metrics.MAE > rnn.Metrics.MAE*0.95 {
			t.Errorf("%s: Hammer MAE %.3f should beat RNN's %.3f by ≥5%%", ds, h.Metrics.MAE, rnn.Metrics.MAE)
		}
		if tf := byKey[ds+"/Transformer"]; h.Metrics.MAE > tf.Metrics.MAE {
			t.Errorf("%s: Hammer MAE %.3f should not trail Transformer's %.3f", ds, h.Metrics.MAE, tf.Metrics.MAE)
		}
	}
	for _, ds := range []string{"sandbox", "nfts"} {
		if r2 := byKey[ds+"/Hammer"].Metrics.R2; r2 < 0.7 {
			t.Errorf("%s: Hammer R² %.3f, want the strong-fit regime (paper: ≈0.95)", ds, r2)
		}
	}
}
