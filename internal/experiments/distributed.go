package experiments

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/harness"
	"hammer/internal/randx"
	"hammer/internal/taskproc"
)

// DistributedResult is one data point of the distributed-testing scenario
// Algorithm 1 calls out: several Hammer drivers share one SUT, so most of
// every block's transactions are foreign to any given driver. The Bloom
// pre-screen rejects them in O(1); the batch baseline pays a full queue scan
// for every foreign transaction, which is why its cost explodes with the
// driver count.
type DistributedResult struct {
	Algorithm string
	Drivers   int
	// TrackedPerDriver is each driver's own population; ForeignFraction is
	// the share of block content owned by other drivers.
	TrackedPerDriver int
	ForeignFraction  float64
	// Duration is one driver's total matching time over the block stream.
	Duration time.Duration
	Matched  int
}

// String renders the row.
func (r DistributedResult) String() string {
	return fmt.Sprintf("%-8s drivers=%d foreign=%.0f%%  %12v  (%d matched)",
		r.Algorithm, r.Drivers, 100*r.ForeignFraction, r.Duration, r.Matched)
}

// Distributed measures per-driver matching cost as the number of co-located
// drivers grows. Every driver tracks `perDriver` transactions; blocks carry
// an even mix from all drivers, and we time driver 0's matcher over the
// full stream.
func Distributed(ctx context.Context, opts Options, driverCounts []int, perDriver int) ([]DistributedResult, error) {
	opts.fillDefaults()
	if perDriver <= 0 {
		perDriver = 5000
	}
	if len(driverCounts) == 0 {
		driverCounts = []int{1, 2, 4, 8}
	}
	var runs []harness.Run[DistributedResult]
	for _, drivers := range driverCounts {
		drivers := drivers
		foreign := float64(drivers-1) / float64(drivers)
		for _, algo := range []string{"taskproc", "batch"} {
			algo := algo
			runs = append(runs, harness.Run[DistributedResult]{
				Name: fmt.Sprintf("distributed/%s drivers=%d", algo, drivers),
				Fn: func(context.Context) (DistributedResult, error) {
					// Regenerated per run: the block stream is mutated-free
					// input, but each run timing its own fresh copy keeps the
					// wall-clock measurement honest.
					tracked, blocks := buildDistributedWorkload(opts.Seed, drivers, perDriver)
					var m taskproc.Matcher
					if algo == "taskproc" {
						m = taskproc.NewProcessor(perDriver)
					} else {
						m = taskproc.NewBatchQueue(perDriver)
					}
					start := time.Now()
					for _, rec := range tracked {
						m.Track(rec)
					}
					matched := 0
					for _, blk := range blocks {
						matched += m.OnBlock(blk)
					}
					dur := time.Since(start)
					if matched != perDriver {
						return DistributedResult{}, fmt.Errorf("matched %d of %d", matched, perDriver)
					}
					return DistributedResult{
						Algorithm:        algo,
						Drivers:          drivers,
						TrackedPerDriver: perDriver,
						ForeignFraction:  foreign,
						Duration:         dur,
						Matched:          matched,
					}, nil
				},
			})
		}
	}
	// This experiment measures real wall-clock matching cost, so concurrent
	// runs would contend for CPU and distort each other's timings: pin the
	// sweep to one worker regardless of the caller's parallelism.
	hopts := opts.harnessOptions()
	hopts.Workers = 1
	rows, err := harness.Collect(harness.Execute(ctx, runs, hopts))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rows, nil
}

// buildDistributedWorkload returns driver 0's tracked records and the block
// stream carrying all drivers' transactions interleaved.
func buildDistributedWorkload(seed int64, drivers, perDriver int) ([]taskproc.TxRecord, []*chain.Block) {
	rng := randx.New(seed)
	total := drivers * perDriver
	ids := make([]chain.TxID, total)
	for i := range ids {
		rng.Read(ids[i][:])
	}
	// Driver 0 owns every drivers-th transaction.
	tracked := make([]taskproc.TxRecord, 0, perDriver)
	for i := 0; i < total; i += drivers {
		tracked = append(tracked, taskproc.TxRecord{
			ID: ids[i], StartTime: time.Duration(i), Status: chain.StatusPending,
		})
	}
	const perBlock = 500
	var blocks []*chain.Block
	for start := 0; start < total; start += perBlock {
		end := start + perBlock
		if end > total {
			end = total
		}
		blk := &chain.Block{Timestamp: time.Duration(start)}
		for _, id := range ids[start:end] {
			blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: id, Status: chain.StatusCommitted})
		}
		blocks = append(blocks, blk)
	}
	return tracked, blocks
}

// DistributedCSV renders the rows for the CSV exporter.
func DistributedCSV(rows []DistributedResult) (header []string, records [][]string) {
	header = []string{"algorithm", "drivers", "tracked_per_driver", "foreign_fraction", "duration_s", "matched"}
	for _, r := range rows {
		records = append(records, []string{
			r.Algorithm, fmt.Sprint(r.Drivers), fmt.Sprint(r.TrackedPerDriver),
			fmtF(r.ForeignFraction), fmtSeconds(r.Duration), fmt.Sprint(r.Matched),
		})
	}
	return header, records
}
