package experiments

import (
	"context"

	"testing"
	"time"
)

// TestFig6Shape checks the qualitative result of Fig 6: Neuchain fastest,
// Ethereum slowest and with multi-second latency, Meepo between them thanks
// to sharding, Fabric in the hundreds of TPS.
func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ChainResult{}
	for _, r := range rows {
		t.Log(r)
		byName[r.Chain] = r
	}
	eth, fab, mee, neu := byName["ethereum"], byName["fabric"], byName["meepo"], byName["neuchain"]

	if !(neu.Throughput > mee.Throughput && mee.Throughput > fab.Throughput && fab.Throughput > eth.Throughput) {
		t.Errorf("throughput ordering broken: neuchain %.0f, meepo %.0f, fabric %.0f, ethereum %.0f",
			neu.Throughput, mee.Throughput, fab.Throughput, eth.Throughput)
	}
	if eth.Throughput > 25 || eth.Throughput < 12 {
		t.Errorf("ethereum throughput %.1f TPS, want ≈19 (paper: 18.6)", eth.Throughput)
	}
	if eth.AvgLatency < 2*time.Second {
		t.Errorf("ethereum latency %v, want multi-second (paper: 4.8s)", eth.AvgLatency)
	}
	if neu.AvgLatency > 300*time.Millisecond {
		t.Errorf("neuchain latency %v, want well under meepo/ethereum", neu.AvgLatency)
	}
	if neu.Throughput < 4000 {
		t.Errorf("neuchain throughput %.0f TPS, want thousands (paper: 8688)", neu.Throughput)
	}
}
