package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hammer/internal/chain"
	"hammer/internal/sign"
	"hammer/internal/workload"
)

// Fig8Result is one Fig 8 data point: the wall-clock workload preparation
// time under one signing strategy.
type Fig8Result struct {
	Strategy string // "serial", "async", "async-pipeline"
	Count    int
	Duration time.Duration
	// Speedup is relative to the serial strategy for the same count.
	Speedup float64
}

// String renders the row.
func (r Fig8Result) String() string {
	return fmt.Sprintf("%-14s %6d txs  %10v  %5.2fx", r.Strategy, r.Count, r.Duration.Round(time.Millisecond), r.Speedup)
}

// Fig8 measures workload generation (signing) time for the serial baseline,
// the asynchronous worker pool, and the asynchronous pipeline that overlaps
// signing with execution. The paper reports ≈6.88× for async pipelining
// over serial on its testbed; the exact factor here depends on GOMAXPROCS.
func Fig8(opts Options) ([]Fig8Result, error) {
	opts.fillDefaults()
	signer, err := sign.NewSigner(opts.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.Profile{
		Name: "fig8", Accounts: 1000, InitialBalance: 1_000_000, MaxAmount: 100, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	fresh := func() []*chain.Transaction {
		txs := gen.Batch(opts.SignCount, "client-0", "server-0")
		for _, tx := range txs {
			tx.Signature = nil
			tx.PubKey = nil
		}
		return txs
	}

	var out []Fig8Result

	// Serial: sign everything on one goroutine, then "execute".
	txs := fresh()
	start := time.Now()
	if err := sign.SignSerial(txs, signer); err != nil {
		return nil, err
	}
	serial := time.Since(start)
	out = append(out, Fig8Result{Strategy: "serial", Count: opts.SignCount, Duration: serial, Speedup: 1})

	// Async: parallel pool, still a barrier before execution.
	txs = fresh()
	start = time.Now()
	if err := sign.SignAsync(txs, signer, runtime.GOMAXPROCS(0)); err != nil {
		return nil, err
	}
	async := time.Since(start)
	out = append(out, Fig8Result{Strategy: "async", Count: opts.SignCount, Duration: async, Speedup: serial.Seconds() / async.Seconds()})

	// Async pipeline: the consumer overlaps "execution" with signing, so
	// the measured preparation cost is the time until the pipeline can
	// keep execution fed — emulated by consuming concurrently.
	txs = fresh()
	start = time.Now()
	p := sign.NewPipeline(signer, runtime.GOMAXPROCS(0))
	done := make(chan int)
	go func() {
		n := 0
		for range p.Out() {
			n++
		}
		done <- n
	}()
	for _, tx := range txs {
		p.Submit(tx)
	}
	p.Close()
	n := <-done
	pipeline := time.Since(start)
	if err := p.Err(); err != nil {
		return nil, err
	}
	if n != len(txs) {
		return nil, fmt.Errorf("experiments: fig8 pipeline lost transactions: %d/%d", n, len(txs))
	}
	out = append(out, Fig8Result{Strategy: "async-pipeline", Count: opts.SignCount, Duration: pipeline, Speedup: serial.Seconds() / pipeline.Seconds()})

	return out, nil
}

// Fig8CSV renders the rows for the CSV exporter.
func Fig8CSV(rows []Fig8Result) (header []string, records [][]string) {
	header = []string{"strategy", "count", "duration_s", "speedup_vs_serial"}
	for _, r := range rows {
		records = append(records, []string{r.Strategy, fmt.Sprint(r.Count), fmtSeconds(r.Duration), fmtF(r.Speedup)})
	}
	return header, records
}
