package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hammer/internal/nn"
	"hammer/internal/parallel"
	"hammer/internal/perf"
	"hammer/internal/randx"
)

// nnbench compares the legacy (pre-rewrite) tensor kernels against the
// blocked/fused engine on the shapes that dominate hammer-predict training:
// square MatMul forward+backward at several sizes, and full train steps of a
// paper-scale model stack (Dense embed → TCN → BiGRU → attention → head,
// DefaultConfig dimensions). The fused train step is swept across kernel
// worker counts; its outputs are bitwise identical at every count
// (nn_golden_test.go pins that), so the sweep isolates pool scheduling
// cost/scaling from arithmetic.

// NNBenchRow is one measured configuration.
type NNBenchRow struct {
	Bench      string // matmul<size> | trainstep
	Impl       string // legacy | blocked | fused
	Workers    int
	Iters      int
	Wall       time.Duration
	Allocs     uint64
	AllocBytes uint64
	PerIter    time.Duration
	PerSec     float64
}

func (r NNBenchRow) String() string {
	return fmt.Sprintf("%-10s %-8s w=%d  %4d iters in %8v  %10v/iter  %8.2f iters/s  %9d allocs",
		r.Bench, r.Impl, r.Workers, r.Iters, r.Wall.Round(time.Millisecond),
		r.PerIter.Round(time.Microsecond), r.PerSec, r.Allocs)
}

// Sample converts the row for a BENCH_<n>.json trajectory.
func (r NNBenchRow) Sample() perf.Sample {
	return perf.Sample{
		Name:           fmt.Sprintf("nnbench/%s/%s/w%d", r.Bench, r.Impl, r.Workers),
		TPS:            r.PerSec,
		WallSeconds:    r.Wall.Seconds(),
		Allocs:         r.Allocs,
		AllocBytes:     r.AllocBytes,
		Events:         r.Iters,
		AllocsPerEvent: float64(r.Allocs) / float64(r.Iters),
	}
}

// nnBenchWorkers are the kernel pool sizes the fused train step is swept
// over: serial, a small pool, and whatever this machine has.
func nnBenchWorkers() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// nnBenchStack mirrors the paper model's dimensions (DefaultConfig: hidden
// 16, three TCN levels of kernel 3, four attention heads).
type nnBenchStack struct {
	embed *nn.Dense
	tcn   *nn.TCN
	gru   *nn.BiGRU
	attn  *nn.MultiHeadAttention
	head  *nn.Dense
}

func newNNBenchStack(rng *randx.Rand) *nnBenchStack {
	return &nnBenchStack{
		embed: nn.NewDense(1, 16, rng),
		tcn:   nn.NewTCN(16, 16, 3, 3, rng),
		gru:   nn.NewBiGRU(16, 8, rng),
		attn:  nn.NewMultiHeadAttention(16, 4, rng),
		head:  nn.NewDense(16, 1, rng),
	}
}

func (s *nnBenchStack) params() []*nn.Tensor {
	out := append(s.embed.Params(), s.tcn.Params()...)
	out = append(out, s.gru.Params()...)
	out = append(out, s.attn.Params()...)
	return append(out, s.head.Params()...)
}

func (s *nnBenchStack) forward(seq nn.Sequence) *nn.Tensor {
	h := nn.MapSequence(seq, s.embed.Forward)
	h = s.tcn.Forward(h)
	h = s.gru.Run(h)
	a := s.attn.Forward(h)
	out := make(nn.Sequence, len(h))
	for t := range h {
		out[t] = nn.Add(h[t], a[t])
	}
	return s.head.Forward(out.Last())
}

func nnBenchMatMul(size, iters int, legacy bool) func() error {
	return func() error {
		prev := nn.SetLegacyKernels(legacy)
		defer nn.SetLegacyKernels(prev)
		rng := randx.New(3)
		x := nn.Param(size, size, 0.1, rng)
		w := nn.Param(size, size, 0.1, rng)
		for i := 0; i < iters; i++ {
			out := nn.MatMul(x, w)
			loss := nn.Mean(out)
			loss.Backward()
			x.ZeroGrad()
			w.ZeroGrad()
			if !legacy {
				nn.Release(loss)
			}
		}
		return nil
	}
}

func nnBenchTrainStep(batch, lookback, steps int, legacy bool) func() error {
	return func() error {
		prev := nn.SetLegacyKernels(legacy)
		defer nn.SetLegacyKernels(prev)
		rng := randx.New(11)
		stack := newNNBenchStack(rng)
		seq := make(nn.Sequence, lookback)
		for t := 0; t < lookback; t++ {
			seq[t] = nn.Zeros(batch, 1)
			for i := range seq[t].Data {
				seq[t].Data[i] = rng.NormFloat64()
			}
		}
		target := nn.Zeros(batch, 1)
		for i := range target.Data {
			target.Data[i] = rng.NormFloat64()
		}
		params := stack.params()
		opt := nn.NewAdam(params, 0.001)
		for s := 0; s < steps; s++ {
			loss := nn.MAELoss(stack.forward(seq), target)
			loss.Backward()
			opt.Step()
			if !legacy {
				nn.Release(loss)
			}
		}
		return nil
	}
}

// NNBench runs the kernel comparison and returns one row per configuration:
// MatMul legacy-vs-blocked per size at one worker, then the train step —
// legacy once, fused across the worker sweep. Quick mode trims sizes and
// iteration counts for CI smoke runs.
func NNBench(quick bool) ([]NNBenchRow, error) {
	origWorkers := parallel.Workers()
	defer parallel.SetWorkers(origWorkers)

	sizes := []int{32, 64, 128}
	matIters, steps := 30, 8
	const batch, lookback = 256, 24
	if quick {
		sizes = []int{32, 64}
		matIters, steps = 5, 2
	}

	var rows []NNBenchRow
	run := func(bench, impl string, workers, iters int, fn func() error) error {
		parallel.SetWorkers(workers)
		sample, err := perf.Measure(bench, fn)
		if err != nil {
			return err
		}
		wall := time.Duration(sample.WallSeconds * float64(time.Second))
		rows = append(rows, NNBenchRow{
			Bench: bench, Impl: impl, Workers: workers, Iters: iters,
			Wall: wall, Allocs: sample.Allocs, AllocBytes: sample.AllocBytes,
			PerIter: wall / time.Duration(iters),
			PerSec:  float64(iters) / sample.WallSeconds,
		})
		return nil
	}

	for _, size := range sizes {
		bench := fmt.Sprintf("matmul%d", size)
		if err := run(bench, "legacy", 1, matIters, nnBenchMatMul(size, matIters, true)); err != nil {
			return nil, err
		}
		if err := run(bench, "blocked", 1, matIters, nnBenchMatMul(size, matIters, false)); err != nil {
			return nil, err
		}
	}
	if err := run("trainstep", "legacy", 1, steps, nnBenchTrainStep(batch, lookback, steps, true)); err != nil {
		return nil, err
	}
	for _, w := range nnBenchWorkers() {
		if err := run("trainstep", "fused", w, steps, nnBenchTrainStep(batch, lookback, steps, false)); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// NNBenchSpeedup returns the headline ratio: legacy train-step time over
// fused train-step time at one worker (zero if either side is missing).
func NNBenchSpeedup(rows []NNBenchRow) float64 {
	var legacy, fused time.Duration
	for _, r := range rows {
		if r.Bench != "trainstep" {
			continue
		}
		switch {
		case r.Impl == "legacy":
			legacy = r.PerIter
		case r.Impl == "fused" && r.Workers == 1:
			fused = r.PerIter
		}
	}
	if legacy == 0 || fused == 0 {
		return 0
	}
	return float64(legacy) / float64(fused)
}

// NNBenchCSV renders the rows for export.
func NNBenchCSV(rows []NNBenchRow) ([]string, [][]string) {
	header := []string{"bench", "impl", "workers", "iters", "wall_ms", "per_iter_ms", "iters_per_sec", "allocs"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Bench,
			r.Impl,
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Iters),
			fmt.Sprintf("%.1f", float64(r.Wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", float64(r.PerIter)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", r.PerSec),
			fmt.Sprintf("%d", r.Allocs),
		})
	}
	return header, out
}
