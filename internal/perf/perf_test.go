package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestMeasureCountsAllocations(t *testing.T) {
	var sink []byte
	s, err := Measure("alloc", func() error {
		for i := 0; i < 100; i++ {
			sink = make([]byte, 1024)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sink
	if s.Allocs < 100 {
		t.Errorf("Allocs = %d, want >= 100", s.Allocs)
	}
	if s.AllocBytes < 100*1024 {
		t.Errorf("AllocBytes = %d, want >= %d", s.AllocBytes, 100*1024)
	}
	if s.WallSeconds < 0 {
		t.Errorf("WallSeconds = %v, want >= 0", s.WallSeconds)
	}
}

func TestNextPathNumbersSequentially(t *testing.T) {
	dir := t.TempDir()
	p1, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := filepath.Base(p1), "BENCH_0001.json"; got != want {
		t.Fatalf("first path = %s, want %s", got, want)
	}
	if err := os.WriteFile(p1, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A committed higher-numbered file bumps the counter past it.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_0007.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := filepath.Base(p2), "BENCH_0008.json"; got != want {
		t.Fatalf("next path = %s, want %s", got, want)
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	traj := NewTrajectory("unit-test", []string{"-exp", "fig6"})
	traj.Add(Sample{Name: "fig6", TPS: 123.4, WallSeconds: 1.5, Allocs: 42})
	path := filepath.Join(dir, "BENCH_0001.json")
	if err := WriteTrajectory(path, traj); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Trajectory
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tool != "unit-test" || len(got.Samples) != 1 || got.Samples[0].TPS != 123.4 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.GoVersion == "" || got.CPUs < 1 {
		t.Errorf("environment fingerprint missing: %+v", got)
	}
}
