// Package perf provides the measurement plumbing behind the CLIs'
// -cpuprofile, -memprofile and -benchjson flags: wall-clock and allocation
// accounting per experiment, numbered BENCH_<n>.json trajectory files so
// successive optimisation PRs can prove wins (or catch regressions) against
// committed baselines, and thin wrappers over runtime/pprof.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

// Sample is one measured unit of work — an experiment, a sweep, or a
// microbenchmark side.
type Sample struct {
	Name string `json:"name"`
	// TPS is the unit's headline throughput, when it has one (e.g. fig6's
	// peak chain throughput); zero otherwise.
	TPS float64 `json:"tps,omitempty"`
	// WallSeconds is real elapsed time for the unit.
	WallSeconds float64 `json:"wall_seconds"`
	// Allocs and AllocBytes are heap allocation deltas (runtime.MemStats
	// Mallocs / TotalAlloc) across the unit, all goroutines included.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Events and AllocsPerEvent are set by microbenchmarks that count
	// discrete operations.
	Events         int     `json:"events,omitempty"`
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
	Note           string  `json:"note,omitempty"`
}

// Trajectory is the content of one BENCH_<n>.json file: environment
// fingerprint plus the run's samples, append-ordered.
type Trajectory struct {
	Tool      string   `json:"tool"`
	CreatedAt string   `json:"created_at"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Args      []string `json:"args,omitempty"`
	Samples   []Sample `json:"samples"`
}

// NewTrajectory stamps a trajectory with the current environment.
func NewTrajectory(tool string, args []string) *Trajectory {
	return &Trajectory{
		Tool:      tool,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Args:      args,
	}
}

// Add appends a sample.
func (t *Trajectory) Add(s Sample) {
	t.Samples = append(t.Samples, s)
}

// Measure runs fn, accounting wall-clock time and heap allocations. A GC
// runs first so the MemStats deltas are not polluted by garbage from before
// the unit. The sample is returned even when fn fails, so a trajectory can
// record how far a broken run got.
func Measure(name string, fn func() error) (Sample, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return Sample{
		Name:        name,
		WallSeconds: wall.Seconds(),
		Allocs:      after.Mallocs - before.Mallocs,
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
	}, err
}

// NextPath returns the first unused BENCH_<n>.json path under dir, creating
// dir if needed. Numbering starts at 1 and fills the lowest gap-free slot
// after the highest existing file, so committed baselines are never
// overwritten.
func NextPath(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("perf: create output dir: %w", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	max := 0
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", max+1)), nil
}

// WriteTrajectory marshals the trajectory to path, indented for diffability.
func WriteTrajectory(path string, t *Trajectory) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// StartCPUProfile begins a CPU profile into path and returns the stop
// function to defer.
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile dumps a GC-settled heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: create heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("perf: write heap profile: %w", err)
	}
	return nil
}
