package eventsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hammer/internal/parallel"
)

// TestShardedMatchesSingleWheel drives the sharded engine and the single
// timer wheel through the same randomized operation sequence — keyed and
// unkeyed arms, tickers, Stops, reserved sequences, nested scheduling — and
// requires identical observable behaviour at several shard counts. This is
// the byte-identity contract: shard keys decide which wheel holds a timer,
// never when it fires.
func TestShardedMatchesSingleWheel(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		for seed := int64(0); seed < 8; seed++ {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))

				single := New()
				sharded := NewSharded(shards)
				// A small epoch width forces frequent barriers so handoffs
				// actually happen in a short test.
				sharded.SetEpochWidth(2 * time.Millisecond)
				var sLog, shLog []string

				type pair struct {
					s  Timer
					sh Timer
				}
				var timers []pair
				var tickers []*Ticker
				var shTickers []*Ticker

				delay := func() time.Duration {
					switch rng.Intn(10) {
					case 0:
						return 0
					case 1:
						return 300*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))
					default:
						return time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
					}
				}
				key := func() uint64 { return uint64(rng.Intn(shards + 2)) }

				type opcode int
				const (
					opAtKey opcode = iota
					opAfterKeyNested
					opEveryKey
					opStop
					opRunUntil
					opSeq
				)
				n := 300
				for i := 0; i < n; i++ {
					switch op := opcode(rng.Intn(6)); op {
					case opAtKey:
						d, k, id := delay(), key(), i
						sT := single.AtKey(k, single.Now()+d, func() { sLog = append(sLog, fmt.Sprintf("%d@%v", id, single.Now())) })
						shT := sharded.AtKey(k, sharded.Now()+d, func() { shLog = append(shLog, fmt.Sprintf("%d@%v", id, sharded.Now())) })
						timers = append(timers, pair{sT, shT})
					case opAfterKeyNested:
						d, id := delay(), i
						// The nested arm uses a different key than the firing
						// event: a cross-shard arm from inside a callback,
						// the handoff path when it lands beyond the epoch.
						d2, k2 := delay(), key()
						sT := single.After(d, func() {
							sLog = append(sLog, fmt.Sprintf("%d@%v", id, single.Now()))
							single.AfterKey(k2, d2, func() {
								sLog = append(sLog, fmt.Sprintf("n%d@%v", id, single.Now()))
							})
						})
						shT := sharded.After(d, func() {
							shLog = append(shLog, fmt.Sprintf("%d@%v", id, sharded.Now()))
							sharded.AfterKey(k2, d2, func() {
								shLog = append(shLog, fmt.Sprintf("n%d@%v", id, sharded.Now()))
							})
						})
						timers = append(timers, pair{sT, shT})
					case opEveryKey:
						iv := time.Duration(1+rng.Int63n(int64(40*time.Millisecond))) + time.Millisecond
						k, id := key(), i
						tickers = append(tickers, single.EveryKey(k, iv, func() {
							sLog = append(sLog, fmt.Sprintf("t%d@%v", id, single.Now()))
						}))
						shTickers = append(shTickers, sharded.EveryKey(k, iv, func() {
							shLog = append(shLog, fmt.Sprintf("t%d@%v", id, sharded.Now()))
						}))
					case opStop:
						if len(timers) > 0 {
							j := rng.Intn(len(timers))
							gotS := timers[j].s.Stop()
							gotSh := timers[j].sh.Stop()
							if gotS != gotSh {
								t.Fatalf("op %d: Stop mismatch: single=%v sharded=%v", i, gotS, gotSh)
							}
							if timers[j].s.Pending() != timers[j].sh.Pending() {
								t.Fatalf("op %d: Pending mismatch after Stop", i)
							}
						}
					case opRunUntil:
						d := time.Duration(rng.Int63n(int64(80 * time.Millisecond)))
						single.RunUntil(single.Now() + d)
						sharded.RunUntil(sharded.Now() + d)
						if single.Now() != sharded.Now() {
							t.Fatalf("op %d: clock mismatch: single=%v sharded=%v", i, single.Now(), sharded.Now())
						}
						if single.Len() != sharded.Len() {
							t.Fatalf("op %d: Len mismatch: single=%d sharded=%d", i, single.Len(), sharded.Len())
						}
						sAt, sOK := single.NextAt()
						shAt, shOK := sharded.NextAt()
						if sOK != shOK || (sOK && sAt != shAt) {
							t.Fatalf("op %d: NextAt mismatch: single=(%v,%v) sharded=(%v,%v)", i, sAt, sOK, shAt, shOK)
						}
					case opSeq:
						// Reserve a block, attach in reverse order at a shared
						// instant: firing must follow reservation order.
						m := 2 + rng.Intn(3)
						d := delay()
						baseS := single.ReserveSeq(m)
						baseSh := sharded.ReserveSeq(m)
						atS, atSh := single.Now()+d, sharded.Now()+d
						for j := m - 1; j >= 0; j-- {
							id, k := i*10+j, key()
							single.AtKeySeq(k, atS, baseS+uint64(j), func() {
								sLog = append(sLog, fmt.Sprintf("r%d@%v", id, single.Now()))
							})
							sharded.AtKeySeq(k, atSh, baseSh+uint64(j), func() {
								shLog = append(shLog, fmt.Sprintf("r%d@%v", id, sharded.Now()))
							})
						}
					}
				}

				final := single.Now() + 2*time.Second
				single.RunUntil(final)
				sharded.RunUntil(final)
				for _, tk := range tickers {
					tk.Stop()
				}
				for _, tk := range shTickers {
					tk.Stop()
				}
				single.Run()
				sharded.Run()

				if single.Now() != sharded.Now() {
					t.Fatalf("final clock mismatch: single=%v sharded=%v", single.Now(), sharded.Now())
				}
				if len(sLog) != len(shLog) {
					t.Fatalf("fired %d events on single, %d on sharded", len(sLog), len(shLog))
				}
				for i := range sLog {
					if sLog[i] != shLog[i] {
						t.Fatalf("event %d: single fired %s, sharded fired %s", i, sLog[i], shLog[i])
					}
				}
			})
		}
	}
}

// TestShardedWorkerIndependence re-runs one deterministic program at several
// pool worker counts and requires identical logs: the barrier phase's fixed
// shard partition makes helper count invisible to results.
func TestShardedWorkerIndependence(t *testing.T) {
	program := func() []string {
		s := NewSharded(4)
		s.SetEpochWidth(time.Millisecond)
		var log []string
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			id := i
			k := uint64(rng.Intn(6))
			d := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
			d2 := time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
			s.AfterKey(k, d, func() {
				log = append(log, fmt.Sprintf("%d@%v", id, s.Now()))
				s.AfterKey(k+1, d2, func() {
					log = append(log, fmt.Sprintf("n%d@%v", id, s.Now()))
				})
			})
		}
		s.Run()
		return log
	}
	defer parallel.SetWorkers(parallel.Workers())
	var ref []string
	for _, workers := range []int{0, 1, 4} {
		parallel.SetWorkers(workers)
		log := program()
		if ref == nil {
			ref = log
			continue
		}
		if len(log) != len(ref) {
			t.Fatalf("workers=%d: fired %d events, reference fired %d", workers, len(log), len(ref))
		}
		for i := range ref {
			if log[i] != ref[i] {
				t.Fatalf("workers=%d: event %d = %s, reference %s", workers, i, log[i], ref[i])
			}
		}
	}
}

// TestShardedZeroDelayRescheduleAtBarrier arms a chain of zero-delay
// self-reschedules from an event sitting exactly on an epoch boundary; the
// whole chain must fire at one instant, in arm order, within that epoch —
// exactly as the single wheel behaves.
func TestShardedZeroDelayReschedule(t *testing.T) {
	s := NewSharded(4)
	width := s.epochWidth
	var log []string
	hops := 0
	var hop func()
	hop = func() {
		log = append(log, fmt.Sprintf("hop%d@%v", hops, s.Now()))
		hops++
		if hops < 5 {
			// Alternate shards so the zero-delay chain crosses wheels.
			s.AfterKey(uint64(hops), 0, hop)
		}
	}
	// Land the trigger exactly on an epoch boundary (t == k·width), the
	// corner where "due now" and "next epoch" meet.
	s.AtKey(1, width, hop)
	s.AfterKey(2, width, func() { log = append(log, fmt.Sprintf("peer@%v", s.Now())) })
	s.Run()
	want := []string{
		fmt.Sprintf("hop0@%v", width),
		fmt.Sprintf("peer@%v", width),
		fmt.Sprintf("hop1@%v", width),
		fmt.Sprintf("hop2@%v", width),
		fmt.Sprintf("hop3@%v", width),
		fmt.Sprintf("hop4@%v", width),
	}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %v, want %v", log, want)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", s.Len())
	}
}

// TestShardedHandoffOnEpochBoundary arms, from inside a callback, a
// cross-shard timer landing exactly on the current epoch's end. The arm must
// park in the handoff queue (t ≥ epochEnd) and still fire at exactly its
// time, ordered against an event already resident at the same instant by
// sequence number.
func TestShardedHandoffOnEpochBoundary(t *testing.T) {
	s := NewSharded(4)
	width := s.epochWidth
	var log []string
	// Resident event at the boundary, armed first (lower seq).
	s.AtKey(3, width, func() { log = append(log, fmt.Sprintf("resident@%v", s.Now())) })
	s.AtKey(1, width/2, func() {
		// Inside epoch [0, width): arm cross-shard exactly at the end.
		s.AtKey(2, width, func() { log = append(log, fmt.Sprintf("handoff@%v", s.Now())) })
	})
	s.Run()
	want := []string{
		fmt.Sprintf("resident@%v", width),
		fmt.Sprintf("handoff@%v", width),
	}
	if len(log) != len(want) || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("log %v, want %v", log, want)
	}
}

// TestShardedStopRacingHandoff stops timers while they sit in a handoff
// queue — from the same callback turn that armed them and from a later
// event in the same epoch — and checks Stop semantics plus queue hygiene:
// the tombstoned arm never fires, never reaches a wheel, and Len stays
// consistent.
func TestShardedStopRacingHandoff(t *testing.T) {
	s := NewSharded(4)
	width := s.epochWidth
	var log []string
	var victim Timer
	s.AtKey(0, width/4, func() {
		// Lands beyond the epoch end: parked in shard 2's handoff queue.
		victim = s.AtKey(2, width+width/2, func() { log = append(log, "victim") })
		if !victim.Pending() {
			t.Error("handoff arm not pending")
		}
	})
	s.AtKey(1, width/2, func() {
		// Same epoch, later event: the victim is still in the handoff
		// queue when this Stop lands.
		if !victim.Stop() {
			t.Error("Stop on handoff arm returned false")
		}
		if victim.Stop() {
			t.Error("second Stop on handoff arm returned true")
		}
		if victim.Pending() {
			t.Error("handoff arm still pending after Stop")
		}
		log = append(log, fmt.Sprintf("stopper@%v", s.Now()))
	})
	s.AtKey(2, 2*width, func() { log = append(log, fmt.Sprintf("tail@%v", s.Now())) })
	s.Run()
	want := []string{
		fmt.Sprintf("stopper@%v", width/2),
		fmt.Sprintf("tail@%v", 2*width),
	}
	if len(log) != len(want) || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("log %v, want %v", log, want)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", s.Len())
	}
}

// TestShardedStopMidDispatchKeepsHandoffVisible stops the run loop from a
// callback that just armed a handoff event: NextAt and Len must still see
// the parked arm, and a later Run must deliver it.
func TestShardedStopMidDispatch(t *testing.T) {
	s := NewSharded(2)
	width := s.epochWidth
	fired := false
	var at time.Duration
	s.AtKey(0, width/4, func() {
		at = s.Now() + 2*width
		s.AtKey(1, at, func() { fired = true })
		s.Stop()
	})
	s.Run()
	if fired {
		t.Fatal("handoff arm fired before resumed run")
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d with one parked arm, want 1", got)
	}
	if next, ok := s.NextAt(); !ok || next != at {
		t.Fatalf("NextAt = (%v, %v), want (%v, true)", next, ok, at)
	}
	s.Run()
	if !fired {
		t.Fatal("handoff arm lost after Stop mid-dispatch")
	}
}

// TestShardedKeyRouting checks keys actually partition timers across wheels
// (the locality contract) without affecting order.
func TestShardedKeyRouting(t *testing.T) {
	s := NewSharded(4)
	for k := uint64(0); k < 8; k++ {
		s.AfterKey(k, time.Duration(k+1)*time.Millisecond, func() {})
	}
	for i, sh := range s.shards {
		if got := sh.sched.live; got != 2 {
			t.Fatalf("shard %d holds %d events, want 2", i, got)
		}
	}
	if Key("node-0") == Key("node-1") {
		t.Fatal("Key collides on adjacent node names")
	}
}
