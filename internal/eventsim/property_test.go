package eventsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hammer/internal/eventsim/heapsched"
)

// TestWheelMatchesHeapSemantics drives the timer-wheel scheduler and the
// original binary-heap scheduler (preserved in heapsched) through the same
// randomized operation sequence and requires identical observable behaviour:
// firing order, clock readings, pending counts and Stop results. The
// operation mix covers At/After/Every/Stop/RunUntil, nested scheduling from
// callbacks, same-instant ties, cancellations and far-future events that
// land in the overflow heap.
func TestWheelMatchesHeapSemantics(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			wheel := New()
			heap := heapsched.New()
			var wheelLog, heapLog []string

			// Paired live timers so Stop hits the same event on both sides.
			type pair struct {
				w Timer
				h *heapsched.Timer
			}
			var timers []pair
			var tickers []*Ticker
			var heapTickers []*heapsched.Ticker

			delay := func() time.Duration {
				switch rng.Intn(10) {
				case 0:
					return 0 // same-instant tie
				case 1:
					// Beyond the wheel window: overflow heap territory.
					return 300*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))
				default:
					return time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
				}
			}

			type opcode int
			const (
				opAt opcode = iota
				opAfter
				opEvery
				opStop
				opRunUntil
			)
			n := 300
			for i := 0; i < n; i++ {
				switch op := opcode(rng.Intn(5)); op {
				case opAt:
					d := delay()
					id := i
					atW := wheel.Now() + d
					atH := heap.Now() + d
					wTimer := wheel.At(atW, func() { wheelLog = append(wheelLog, fmt.Sprintf("%d@%v", id, wheel.Now())) })
					hTimer := heap.At(atH, func() { heapLog = append(heapLog, fmt.Sprintf("%d@%v", id, heap.Now())) })
					timers = append(timers, pair{wTimer, hTimer})
				case opAfter:
					d := delay()
					id := i
					// Nested: the callback schedules a follow-up with a
					// pre-drawn delay, exercising scheduling from within
					// a firing event on both sides identically.
					d2 := delay()
					wTimer := wheel.After(d, func() {
						wheelLog = append(wheelLog, fmt.Sprintf("%d@%v", id, wheel.Now()))
						wheel.After(d2, func() {
							wheelLog = append(wheelLog, fmt.Sprintf("n%d@%v", id, wheel.Now()))
						})
					})
					hTimer := heap.After(d, func() {
						heapLog = append(heapLog, fmt.Sprintf("%d@%v", id, heap.Now()))
						heap.After(d2, func() {
							heapLog = append(heapLog, fmt.Sprintf("n%d@%v", id, heap.Now()))
						})
					})
					timers = append(timers, pair{wTimer, hTimer})
				case opEvery:
					iv := time.Duration(1+rng.Int63n(int64(40*time.Millisecond))) + time.Millisecond
					id := i
					tickers = append(tickers, wheel.Every(iv, func() {
						wheelLog = append(wheelLog, fmt.Sprintf("t%d@%v", id, wheel.Now()))
					}))
					heapTickers = append(heapTickers, heap.Every(iv, func() {
						heapLog = append(heapLog, fmt.Sprintf("t%d@%v", id, heap.Now()))
					}))
				case opStop:
					if len(timers) > 0 {
						k := rng.Intn(len(timers))
						gotW := timers[k].w.Stop()
						gotH := timers[k].h.Stop()
						if gotW != gotH {
							t.Fatalf("op %d: Stop mismatch: wheel=%v heap=%v", i, gotW, gotH)
						}
					}
				case opRunUntil:
					d := time.Duration(rng.Int63n(int64(80 * time.Millisecond)))
					wheel.RunUntil(wheel.Now() + d)
					heap.RunUntil(heap.Now() + d)
					if wheel.Now() != heap.Now() {
						t.Fatalf("op %d: clock mismatch: wheel=%v heap=%v", i, wheel.Now(), heap.Now())
					}
					if wheel.Len() != heap.Len() {
						t.Fatalf("op %d: Len mismatch: wheel=%d heap=%d", i, wheel.Len(), heap.Len())
					}
				}
			}

			// Stop the tickers (they would otherwise run forever), then
			// drain both schedulers completely.
			final := wheel.Now() + 2*time.Second
			wheel.RunUntil(final)
			heap.RunUntil(final)
			for _, tk := range tickers {
				tk.Stop()
			}
			for _, tk := range heapTickers {
				tk.Stop()
			}
			wheel.Run()
			heap.Run()

			if wheel.Now() != heap.Now() {
				t.Fatalf("final clock mismatch: wheel=%v heap=%v", wheel.Now(), heap.Now())
			}
			if len(wheelLog) != len(heapLog) {
				t.Fatalf("fired %d events on wheel, %d on heap", len(wheelLog), len(heapLog))
			}
			for i := range wheelLog {
				if wheelLog[i] != heapLog[i] {
					t.Fatalf("event %d: wheel fired %s, heap fired %s", i, wheelLog[i], heapLog[i])
				}
			}
		})
	}
}

// TestWheelNextAtMatchesHeap checks the peek path against the oracle across
// a schedule/cancel sequence, including cancelled heads the heap skips
// lazily and the wheel removes eagerly.
func TestWheelNextAtMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	wheel := New()
	heap := heapsched.New()
	type pair struct {
		w Timer
		h *heapsched.Timer
	}
	var timers []pair
	noop := func() {}
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Int63n(int64(400 * time.Millisecond)))
		timers = append(timers, pair{wheel.After(d, noop), heap.After(d, noop)})
		if rng.Intn(3) == 0 {
			k := rng.Intn(len(timers))
			timers[k].w.Stop()
			timers[k].h.Stop()
		}
		wAt, wOK := wheel.NextAt()
		hAt, hOK := heap.NextAt()
		if wOK != hOK || (wOK && wAt != hAt) {
			t.Fatalf("step %d: NextAt mismatch: wheel=(%v,%v) heap=(%v,%v)", i, wAt, wOK, hAt, hOK)
		}
		if wheel.Len() != heap.Len() {
			t.Fatalf("step %d: Len mismatch: wheel=%d heap=%d", i, wheel.Len(), heap.Len())
		}
	}
}
