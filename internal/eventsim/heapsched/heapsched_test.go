package heapsched

import (
	"testing"
	"time"
)

// TestStopRemovesEagerly churns arm/stop cycles against a small resident
// population and asserts the heap never grows past the live event count:
// the old lazy-cancel Stop left every stopped timer in the queue until the
// clock rotated past it, so this workload grew the heap by one dead entry
// per cycle.
func TestStopRemovesEagerly(t *testing.T) {
	s := New()
	const resident = 8
	for i := 0; i < resident; i++ {
		s.After(time.Duration(i+1)*time.Hour, func() {})
	}
	for cycle := 0; cycle < 10000; cycle++ {
		tm := s.After(30*time.Minute, func() {})
		if !tm.Stop() {
			t.Fatalf("cycle %d: Stop returned false for a pending timer", cycle)
		}
		if tm.Stop() {
			t.Fatalf("cycle %d: second Stop returned true", cycle)
		}
		if got := len(s.queue); got > resident {
			t.Fatalf("cycle %d: heap holds %d entries, want ≤ %d live", cycle, got, resident)
		}
	}
	if got := s.Len(); got != resident {
		t.Fatalf("Len = %d after churn, want %d", got, resident)
	}
}

// TestStopOrderingUnaffected checks eager removal does not disturb the
// firing order of the surviving events.
func TestStopOrderingUnaffected(t *testing.T) {
	s := New()
	var got []int
	add := func(id int, d time.Duration) *Timer {
		return s.After(d, func() { got = append(got, id) })
	}
	add(1, 10*time.Millisecond)
	doomed := add(2, 20*time.Millisecond)
	add(3, 30*time.Millisecond)
	doomed2 := add(4, 5*time.Millisecond)
	add(5, 25*time.Millisecond)
	doomed.Stop()
	doomed2.Stop()
	s.Run()
	want := []int{1, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}
