// Package heapsched preserves the original binary-heap discrete-event
// scheduler that internal/eventsim shipped with before the timer-wheel
// rewrite. It is kept for two jobs: (1) it is the semantic reference the
// randomized property test drives the wheel scheduler against — same firing
// order, same clock, same Stop results — and (2) it is the baseline side of
// the scheduler microbenchmark (`hammer-bench -exp schedbench`) that
// quantifies the rewrite's win.
//
// Stop removes events eagerly via an indexed heap.Remove. The original
// lazy-cancel scheme left a dead entry in the heap until the queue rotated
// past it, so a workload that arms and stops timers in a loop (connection
// timeouts, retry guards) grew the heap without bound relative to its live
// event count.
//
// Do not use it in new simulation code; internal/eventsim is strictly
// faster and semantically identical.
package heapsched

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is the original discrete-event scheduler: a binary heap ordered
// by (time, sequence) with eagerly-removed cancellations.
type Scheduler struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	stopped bool
}

// New returns an empty scheduler whose clock reads zero.
func New() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration {
	return s.now
}

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	s  *Scheduler
	ev *event
}

// Stop cancels the timer's event if it has not fired yet, removing it from
// the heap immediately (the maintained index field makes this an O(log n)
// heap.Remove, not a tombstone that lingers until the queue rotates).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	heap.Remove(&t.s.queue, t.ev.index)
	return true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

// At schedules fn to run at absolute virtual time t.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("heapsched: At called with nil function")
	}
	if t < s.now {
		panic(fmt.Sprintf("heapsched: scheduling event at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{s: s, ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Ticker repeatedly fires fn at a fixed virtual interval until stopped.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run every interval.
func (s *Scheduler) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("heapsched: Every called with non-positive interval %v", interval))
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.s.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Len reports the number of pending events. With eager cancellation every
// heap entry is live, so this is the queue length.
func (s *Scheduler) Len() int {
	return len(s.queue)
}

// NextAt reports the virtual time of the earliest pending event, if any.
func (s *Scheduler) NextAt() (time.Duration, bool) {
	return s.peek()
}

// Step runs the next pending event, advancing the clock to its time.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	ev.fired = true
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop aborts a Run or RunUntil loop after the current event returns.
func (s *Scheduler) Stop() {
	s.stopped = true
}

func (s *Scheduler) peek() (time.Duration, bool) {
	if s.queue.Len() == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// eventHeap orders events by (time, sequence) for deterministic firing.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
