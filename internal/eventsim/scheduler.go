// Package eventsim provides a deterministic discrete-event scheduler with a
// virtual clock. It is the timing substrate for every simulated blockchain in
// this repository: consensus rounds, network message delivery, block
// production and workload injection are all events scheduled on a single
// virtual timeline, so a "300 second" evaluation completes in milliseconds of
// wall-clock time and is exactly reproducible.
//
// The scheduler is a hierarchical timer wheel: events within a sliding
// ~268 ms window land in one of 256 ≈1.05 ms buckets, far-future events wait
// in an indexed overflow heap and cascade into the wheel as the clock
// approaches them, and fired or cancelled event structs are recycled through
// a freelist so steady-state scheduling does not allocate. See DESIGN.md
// ("Scheduler internals") for the layout and the determinism argument.
//
// Two implementations share the Sched interface: Scheduler is the single
// timer wheel, and ShardedScheduler partitions timers across N wheels by a
// caller-supplied stable key, advancing the wheels in lock-step epochs on the
// shared worker pool while dispatching callbacks in one merged, deterministic
// (time, sequence) order. DESIGN.md ("Sharded scheduler") has the epoch and
// determinism argument.
package eventsim

import (
	"fmt"
	"time"
)

// Scheduler is a discrete-event scheduler. The zero value is ready to use.
// Events scheduled for the same virtual instant fire in the order they were
// scheduled, which keeps runs deterministic.
//
// Scheduler is not safe for concurrent use; a simulation is single-threaded
// by design (determinism is the point).
type Scheduler struct {
	now time.Duration
	seq uint64
	// live counts pending (non-cancelled) events so Len is O(1).
	live int
	// stopped aborts Run loops early when set by Stop.
	stopped bool

	wheel wheel
}

// New returns an empty scheduler whose clock reads zero.
func New() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration {
	return s.now
}

// Timer is a handle to a scheduled event; Stop cancels it. Timer is a value:
// it can be copied, stored in structs and compared against its zero value
// without allocating. A generation counter makes handles to fired or
// recycled events safely inert.
type Timer struct {
	s   *Scheduler
	ev  *event
	gen uint32
}

// Stop cancels the timer's event if it has not fired yet. It reports whether
// the call prevented the event from firing. Cancellation removes the event
// from the scheduler immediately (swap-delete from its wheel bucket or
// indexed heap.Remove from the overflow heap), so cancelled events cost
// nothing at fire time.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled {
		return false
	}
	t.s.cancel(t.ev)
	return true
}

// Pending reports whether the timer's event is still scheduled: not yet
// fired and not cancelled. The zero Timer is not pending.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a simulation bug, not a recoverable condition.
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	seq := s.seq
	s.seq++
	return s.schedule(t, seq, fn)
}

// After schedules fn to run d after the current virtual time. Negative delays
// are clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtKey is At with a shard key. The single wheel ignores keys; the variant
// exists so code written against Sched behaves identically here and on the
// sharded engine.
func (s *Scheduler) AtKey(_ uint64, t time.Duration, fn func()) Timer {
	return s.At(t, fn)
}

// AfterKey is After with a shard key (ignored by the single wheel).
func (s *Scheduler) AfterKey(_ uint64, d time.Duration, fn func()) Timer {
	return s.After(d, fn)
}

// ReserveSeq reserves n consecutive tie-break sequence numbers and returns
// the first. Same-instant events fire in sequence order, so a caller that
// wants to schedule events lazily — yet have them fire exactly as if they
// had all been scheduled up front — reserves their sequence numbers first
// and later attaches each one with AtSeq. The engine's streaming transaction
// injection depends on this to stay byte-identical with eager scheduling.
func (s *Scheduler) ReserveSeq(n int) uint64 {
	if n < 0 {
		panic("eventsim: ReserveSeq called with negative count")
	}
	base := s.seq
	s.seq += uint64(n)
	return base
}

// AtSeq schedules fn at absolute virtual time t with an explicitly reserved
// sequence number (from ReserveSeq). The (time, sequence) pair decides
// firing order, so a reserved sequence lets a late-scheduled event keep the
// tie-break rank of its reservation. Reusing a sequence number for two live
// events is a bug; the scheduler does not police it.
func (s *Scheduler) AtSeq(t time.Duration, seq uint64, fn func()) Timer {
	if seq >= s.seq {
		panic("eventsim: AtSeq called with unreserved sequence number")
	}
	return s.schedule(t, seq, fn)
}

// AtKeySeq is AtSeq with a shard key (ignored by the single wheel).
func (s *Scheduler) AtKeySeq(_ uint64, t time.Duration, seq uint64, fn func()) Timer {
	return s.AtSeq(t, seq, fn)
}

func (s *Scheduler) schedule(t time.Duration, seq uint64, fn func()) Timer {
	if fn == nil {
		panic("eventsim: At called with nil function")
	}
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", t, s.now))
	}
	ev := s.wheel.alloc()
	ev.at = t
	ev.seq = seq
	ev.fn = fn
	s.wheel.place(ev)
	s.live++
	return Timer{s: s, ev: ev, gen: ev.gen}
}

// cancel removes a live event from whichever structure holds it. An event
// parked in a sharded handoff queue is tombstoned (the queue is compacted at
// the next epoch barrier); everything else is removed eagerly.
func (s *Scheduler) cancel(ev *event) {
	s.live--
	if ev.loc == locHandoff {
		ev.cancelled = true
		return
	}
	s.wheel.remove(ev)
}

// Ticker repeatedly fires fn at a fixed virtual interval until stopped.
type Ticker struct {
	// after rearms the ticker on whichever scheduler (and shard key)
	// created it.
	after    func(time.Duration, func()) Timer
	interval time.Duration
	fn       func()
	// fire is the single rearming closure, bound once so steady-state
	// ticking does not allocate.
	fire    func()
	timer   Timer
	stopped bool
}

// newTicker builds a ticker over any rearm function, shared by the single
// wheel and the sharded engine.
func newTicker(after func(time.Duration, func()) Timer, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("eventsim: Every called with non-positive interval %v", interval))
	}
	t := &Ticker{after: after, interval: interval, fn: fn}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.timer = t.after(t.interval, t.fire)
		}
	}
	t.timer = after(interval, t.fire)
	return t
}

// Every schedules fn to run every interval, with the first firing one
// interval from now. It panics if interval is not positive.
func (s *Scheduler) Every(interval time.Duration, fn func()) *Ticker {
	return newTicker(s.After, interval, fn)
}

// EveryKey is Every with a shard key (ignored by the single wheel).
func (s *Scheduler) EveryKey(_ uint64, interval time.Duration, fn func()) *Ticker {
	return s.Every(interval, fn)
}

// Stop cancels future firings. It is safe to call from within the ticker's
// own callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}

// Len reports the number of pending (non-cancelled) events. It is O(1): the
// scheduler maintains a live-event counter.
func (s *Scheduler) Len() int {
	return s.live
}

// NextAt reports the virtual time of the earliest pending event, if any.
// It lets callers drain bounded follow-up work (e.g. in-flight matching)
// without guessing a polling granularity.
func (s *Scheduler) NextAt() (time.Duration, bool) {
	if ev := s.wheel.next(); ev != nil {
		return ev.at, true
	}
	return 0, false
}

// Step runs the next pending event, advancing the clock to its time. It
// reports false when no events remain.
func (s *Scheduler) Step() bool {
	ev := s.wheel.next()
	if ev == nil {
		return false
	}
	s.fire(ev)
	return true
}

// fire consumes the event at the head of the drain buffer, advances the
// clock and window, recycles the event struct, and runs its callback. The
// struct is released before the callback so the callback's own scheduling
// can reuse it; the callback function value was copied out first.
func (s *Scheduler) fire(ev *event) {
	s.wheel.popNext()
	s.now = ev.at
	s.wheel.advanceTo(s.now)
	fn := ev.fn
	s.live--
	s.wheel.release(ev)
	fn()
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (if it is ahead of the last event). Events scheduled beyond
// the deadline stay queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped {
		ev := s.wheel.next()
		if ev == nil || ev.at > deadline {
			break
		}
		s.fire(ev)
	}
	if s.now < deadline {
		s.now = deadline
		s.wheel.advanceTo(s.now)
	}
}

// Stop aborts a Run or RunUntil loop after the current event returns.
func (s *Scheduler) Stop() {
	s.stopped = true
}
