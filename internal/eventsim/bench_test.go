package eventsim

import (
	"testing"
	"time"

	"hammer/internal/eventsim/heapsched"
)

// The benchmark workload mirrors a simulation's steady state: a resident
// population of self-rescheduling timers with a deterministic mix of short
// and medium delays. benchDelay is shared with the heapsched baseline so
// the two benchmarks are directly comparable with benchstat.
func benchDelay(rng *uint64) time.Duration {
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	return time.Duration(x % uint64(100*time.Millisecond))
}

func BenchmarkWheelScheduleFire(b *testing.B) {
	s := New()
	rng := uint64(1)
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < b.N {
			s.After(benchDelay(&rng), fn)
		}
	}
	resident := 1024
	if resident > b.N {
		resident = b.N
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < resident; i++ {
		s.After(benchDelay(&rng), fn)
	}
	s.Run()
}

func BenchmarkHeapScheduleFire(b *testing.B) {
	s := heapsched.New()
	rng := uint64(1)
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < b.N {
			s.After(benchDelay(&rng), fn)
		}
	}
	resident := 1024
	if resident > b.N {
		resident = b.N
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < resident; i++ {
		s.After(benchDelay(&rng), fn)
	}
	s.Run()
}

func BenchmarkWheelCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Millisecond, fn).Stop()
	}
}

func BenchmarkHeapCancel(b *testing.B) {
	s := heapsched.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Millisecond, fn).Stop()
	}
}
