package eventsim

import (
	"testing"
	"time"
)

// TestRealtimeNoDrift checks the pacing loop tracks the absolute
// speed·elapsed mapping instead of accumulating per-slice sleep error: even
// with a callback that blocks the event loop for many slices, the virtual
// clock lands within one catch-up quantum of the wall clock once the loop
// resumes. A per-tick-sleep implementation lags by roughly the blocked
// duration per stall and never recovers.
func TestRealtimeNoDrift(t *testing.T) {
	s := New()
	const speed = 200.0
	// Block the loop mid-run: with absolute deadlines the following slices
	// collapse into one catch-up RunUntil rather than a permanent lag.
	s.After(20*time.Millisecond*speed/1000, func() { time.Sleep(30 * time.Millisecond) })
	rt := NewRealtime(s, speed)
	start := time.Now()
	rt.Start()
	time.Sleep(120 * time.Millisecond)

	var virt time.Duration
	var elapsed time.Duration
	rt.Do(func() {
		// Inside Do the clock has just been caught up to virtualNow, so
		// measure both sides under the same lock.
		elapsed = time.Since(start)
		virt = s.Now()
	})
	rt.Stop()

	want := time.Duration(float64(elapsed) * speed)
	diff := want - virt
	if diff < 0 {
		diff = -diff
	}
	// Allow generous slack for scheduler jitter on loaded CI hosts: 20 ms
	// of wall time at 200×. A drifting loop loses the full 30 ms stall
	// (6 s of virtual time at 200×), far outside this bound.
	if maxSkew := time.Duration(20 * float64(time.Millisecond) * speed); diff > maxSkew {
		t.Fatalf("virtual clock %v vs absolute mapping %v: skew %v exceeds %v", virt, want, diff, maxSkew)
	}
}

// TestRealtimeSharded exercises the pacing loop over the sharded engine,
// which shares the Sched interface.
func TestRealtimeSharded(t *testing.T) {
	s := NewSharded(4)
	count := 0
	s.EveryKey(3, 10*time.Millisecond, func() { count++ })
	rt := NewRealtime(s, 100)
	rt.Start()
	defer rt.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var n int
		rt.Do(func() { n = count })
		if n >= 20 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("realtime driver advanced only %d ticks in 2s at 100x", count)
}
