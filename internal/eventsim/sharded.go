package eventsim

import (
	"fmt"
	"math"
	"time"

	"hammer/internal/parallel"
)

// DefaultEpochWidth is the virtual-time span of one dispatch epoch: eight
// wheel slots (≈8.4 ms). Any positive width yields the same event order —
// the width only trades barrier frequency against handoff queue length — so
// it is a performance knob, never a correctness knob.
const DefaultEpochWidth = time.Duration(8 << slotShift)

// ShardedScheduler is a discrete-event scheduler built from N timer wheels
// that advance in lock-step epochs. Timers are partitioned across the wheels
// by a caller-supplied stable key (key mod N); the epoch machinery is:
//
//   - Barrier phase (parallelizable): every shard drains its handoff queue
//     into its wheel, slides its window forward, and pre-loads its next due
//     bucket. Shards touch disjoint state, so this phase runs on the
//     internal/parallel pool — blocks of shards, fixed partition — without
//     affecting results.
//   - Dispatch phase (serial): due events across all shards are merged into
//     one global (virtual time, sequence) order and fired one at a time.
//     Sequence numbers are allocated from a single counter at arm time, so
//     the merged order is exactly the order a single wheel would produce:
//     byte-identical replay at any shard and worker count. (The nominal
//     merge rank is (time, shard, sequence), but the global sequence makes
//     the shard tie-break unreachable.)
//
// Timers armed by a callback during dispatch route in one of two ways: an
// arm due before the current epoch ends inserts directly into its shard's
// wheel so it can still fire this epoch (zero-delay self-reschedules behave
// exactly as on the single wheel), while an arm at or beyond the epoch
// boundary is appended to the target shard's handoff queue — an O(1) append
// — and filed at the next barrier, where placement cost is spread across
// the pool. Cross-shard arms therefore never mutate another wheel
// mid-epoch, which is what keeps the barrier phase data-race free.
//
// Like Scheduler, a ShardedScheduler is not safe for concurrent use by
// callers; the parallelism is internal to the barrier phase.
type ShardedScheduler struct {
	shards []*schedShard
	now    time.Duration
	// seq is the global arm-order counter shared by every shard; it is the
	// tie-break that makes the merged dispatch order unique.
	seq     uint64
	stopped bool

	epochWidth time.Duration
	// dispatching and epochEnd gate the handoff path: they are set only
	// while the dispatch loop is firing callbacks inside one epoch.
	dispatching bool
	epochEnd    time.Duration
}

// schedShard is one wheel plus its handoff queue. The inner Scheduler's own
// seq counter is unused — every arm goes through the sharded scheduler's
// global counter — and its clock trails the global clock, advancing only
// when one of its own events fires.
type schedShard struct {
	sched   *Scheduler
	handoff []*event
}

// NewSharded returns a sharded scheduler with n wheels (n < 1 is clamped to
// 1). The clock reads zero.
func NewSharded(n int) *ShardedScheduler {
	if n < 1 {
		n = 1
	}
	ss := &ShardedScheduler{
		shards:     make([]*schedShard, n),
		epochWidth: DefaultEpochWidth,
	}
	for i := range ss.shards {
		ss.shards[i] = &schedShard{sched: &Scheduler{}}
	}
	return ss
}

// Shards reports the wheel count.
func (ss *ShardedScheduler) Shards() int { return len(ss.shards) }

// SetEpochWidth overrides the epoch width. Exposed for tests and benchmarks
// (event order is width-independent); it panics on non-positive widths.
func (ss *ShardedScheduler) SetEpochWidth(w time.Duration) {
	if w <= 0 {
		panic(fmt.Sprintf("eventsim: SetEpochWidth called with non-positive width %v", w))
	}
	ss.epochWidth = w
}

// Now reports the current virtual time.
func (ss *ShardedScheduler) Now() time.Duration { return ss.now }

// At schedules fn at absolute virtual time t on shard key 0.
func (ss *ShardedScheduler) At(t time.Duration, fn func()) Timer {
	return ss.AtKey(0, t, fn)
}

// AtKey schedules fn at absolute virtual time t on the wheel selected by
// key. Scheduling in the past panics.
func (ss *ShardedScheduler) AtKey(key uint64, t time.Duration, fn func()) Timer {
	seq := ss.seq
	ss.seq++
	return ss.scheduleKey(key, t, seq, fn)
}

// After schedules fn d after now on shard key 0 (negative d clamps to zero).
func (ss *ShardedScheduler) After(d time.Duration, fn func()) Timer {
	return ss.AfterKey(0, d, fn)
}

// AfterKey schedules fn d after now on the wheel selected by key.
func (ss *ShardedScheduler) AfterKey(key uint64, d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return ss.AtKey(key, ss.now+d, fn)
}

// ReserveSeq reserves n consecutive global tie-break sequence numbers and
// returns the first; see Scheduler.ReserveSeq.
func (ss *ShardedScheduler) ReserveSeq(n int) uint64 {
	if n < 0 {
		panic("eventsim: ReserveSeq called with negative count")
	}
	base := ss.seq
	ss.seq += uint64(n)
	return base
}

// AtSeq schedules fn at t with a reserved sequence number on shard key 0.
func (ss *ShardedScheduler) AtSeq(t time.Duration, seq uint64, fn func()) Timer {
	return ss.AtKeySeq(0, t, seq, fn)
}

// AtKeySeq schedules fn at t with a reserved sequence number on the wheel
// selected by key.
func (ss *ShardedScheduler) AtKeySeq(key uint64, t time.Duration, seq uint64, fn func()) Timer {
	if seq >= ss.seq {
		panic("eventsim: AtSeq called with unreserved sequence number")
	}
	return ss.scheduleKey(key, t, seq, fn)
}

// Every schedules fn to run every interval on shard key 0.
func (ss *ShardedScheduler) Every(interval time.Duration, fn func()) *Ticker {
	return ss.EveryKey(0, interval, fn)
}

// EveryKey schedules fn to run every interval, with every firing (including
// rearms) pinned to the wheel selected by key.
func (ss *ShardedScheduler) EveryKey(key uint64, interval time.Duration, fn func()) *Ticker {
	return newTicker(func(d time.Duration, f func()) Timer {
		return ss.AfterKey(key, d, f)
	}, interval, fn)
}

// scheduleKey files one arm. Outside dispatch — or inside it, when the event
// is due before the epoch ends — the event inserts directly into its shard's
// wheel. Inside dispatch with the event due at or beyond the boundary, the
// arm parks in the target shard's handoff queue for the next barrier.
func (ss *ShardedScheduler) scheduleKey(key uint64, t time.Duration, seq uint64, fn func()) Timer {
	sh := ss.shards[key%uint64(len(ss.shards))]
	if ss.dispatching && t >= ss.epochEnd {
		if fn == nil {
			panic("eventsim: At called with nil function")
		}
		if t < ss.now {
			panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", t, ss.now))
		}
		ev := sh.sched.wheel.alloc()
		ev.at = t
		ev.seq = seq
		ev.fn = fn
		ev.loc = locHandoff
		sh.handoff = append(sh.handoff, ev)
		sh.sched.live++
		return Timer{s: sh.sched, ev: ev, gen: ev.gen}
	}
	// Direct insert: the inner clock trails the global clock, so re-check
	// against the global one first for a faithful past-scheduling panic.
	if t < ss.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", t, ss.now))
	}
	return sh.sched.schedule(t, seq, fn)
}

// barrier runs the parallel phase: every shard catches its window up to the
// global clock, files its handoff queue, and pre-loads its next due bucket.
// Shard states are disjoint, so the pool's fixed block partition cannot
// change results — with zero workers the same per-shard work runs serially.
func (ss *ShardedScheduler) barrier() {
	if len(ss.shards) == 1 {
		ss.prepare(ss.shards[0])
		return
	}
	parallel.For(len(ss.shards), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ss.prepare(ss.shards[i])
		}
	})
}

func (ss *ShardedScheduler) prepare(sh *schedShard) {
	sh.sched.wheel.advanceTo(ss.now)
	if len(sh.handoff) > 0 {
		for i, ev := range sh.handoff {
			if ev.cancelled {
				// Stop won the race with the handoff: the arm was
				// tombstoned in the queue, so it never reaches a wheel.
				sh.sched.wheel.release(ev)
			} else {
				sh.sched.wheel.place(ev)
			}
			sh.handoff[i] = nil
		}
		sh.handoff = sh.handoff[:0]
	}
	sh.sched.wheel.next()
}

// peekMin returns the globally earliest pending wheel event and its shard
// index, or (-1, nil) when every wheel is empty. Handoff queues are not
// consulted: they are empty outside dispatch (barriers drain them), and
// during dispatch they hold only events at or beyond the epoch end, which
// can never be the next due event.
func (ss *ShardedScheduler) peekMin() (int, *event) {
	best := -1
	var bev *event
	for i, sh := range ss.shards {
		ev := sh.sched.wheel.next()
		if ev != nil && (bev == nil || eventLess(ev, bev)) {
			best, bev = i, ev
		}
	}
	return best, bev
}

// runEpochs alternates barrier and dispatch phases until no event at or
// before the deadline remains (or Stop is called). Each epoch covers the
// fixed-width window containing the earliest due event, so idle stretches
// cost one barrier rather than one per empty epoch.
func (ss *ShardedScheduler) runEpochs(deadline time.Duration) {
	for !ss.stopped {
		ss.barrier()
		_, ev := ss.peekMin()
		if ev == nil || ev.at > deadline {
			return
		}
		end := (ev.at/ss.epochWidth + 1) * ss.epochWidth
		if end < ev.at {
			// Epoch arithmetic overflowed (event near the end of
			// representable time): fall back to one unbounded epoch.
			end = time.Duration(math.MaxInt64)
		}
		ss.dispatching = true
		ss.epochEnd = end
		for !ss.stopped {
			j, ev := ss.peekMin()
			if ev == nil || ev.at > deadline ||
				(ev.at >= end && end != time.Duration(math.MaxInt64)) {
				break
			}
			ss.now = ev.at
			ss.shards[j].sched.fire(ev)
		}
		ss.dispatching = false
	}
}

// Len reports the number of pending (non-cancelled) events across all
// shards, including arms parked in handoff queues.
func (ss *ShardedScheduler) Len() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.sched.live
	}
	return n
}

// NextAt reports the virtual time of the earliest pending event, if any.
// Unlike peekMin it also scans handoff queues, which can be non-empty here
// when Stop aborted a dispatch loop mid-epoch.
func (ss *ShardedScheduler) NextAt() (time.Duration, bool) {
	var best *event
	for _, sh := range ss.shards {
		if ev := sh.sched.wheel.next(); ev != nil && (best == nil || eventLess(ev, best)) {
			best = ev
		}
		for _, ev := range sh.handoff {
			if !ev.cancelled && (best == nil || eventLess(ev, best)) {
				best = ev
			}
		}
	}
	if best == nil {
		return 0, false
	}
	return best.at, true
}

// Step runs the next pending event in merged order, advancing the clock to
// its time. It reports false when no events remain. Arms made by the
// callback insert directly (Step dispatches outside any epoch).
func (ss *ShardedScheduler) Step() bool {
	ss.barrier()
	j, ev := ss.peekMin()
	if ev == nil {
		return false
	}
	ss.now = ev.at
	ss.shards[j].sched.fire(ev)
	return true
}

// Run executes events until every shard drains or Stop is called.
func (ss *ShardedScheduler) Run() {
	ss.stopped = false
	ss.runEpochs(time.Duration(math.MaxInt64))
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (if it is ahead of the last event). Events scheduled beyond
// the deadline stay queued.
func (ss *ShardedScheduler) RunUntil(deadline time.Duration) {
	ss.stopped = false
	ss.runEpochs(deadline)
	if ss.now < deadline {
		ss.now = deadline
	}
}

// Stop aborts a Run or RunUntil loop after the current event returns.
func (ss *ShardedScheduler) Stop() {
	ss.stopped = true
}
