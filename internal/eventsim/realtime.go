package eventsim

import (
	"sync"
	"time"
)

// Realtime plays a scheduler forward in wall-clock time, optionally
// accelerated, so simulated chains can serve live traffic (e.g. through the
// JSON-RPC bridge). External callers interact with the simulation through
// Do, which serialises access with the event loop.
type Realtime struct {
	mu    sync.Mutex
	sched Sched
	speed float64

	epochReal time.Time
	epochVirt time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewRealtime wraps sched; speed is virtual seconds advanced per real
// second (1 = real time, 100 = 100× accelerated).
func NewRealtime(sched Sched, speed float64) *Realtime {
	if speed <= 0 {
		speed = 1
	}
	return &Realtime{
		sched: sched,
		speed: speed,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start begins advancing the simulation. Call Stop to halt.
func (r *Realtime) Start() {
	r.mu.Lock()
	r.epochReal = time.Now()
	r.epochVirt = r.sched.Now()
	r.mu.Unlock()
	go r.loop()
}

// loop paces the simulation against absolute wall-clock deadlines derived
// from the start epoch: slice k wakes at epoch + k·quantum. Sleep overshoot
// in one slice shrinks the next slice's sleep instead of accumulating, so
// the virtual clock tracks speed·elapsed without long-run drift. When a
// slice is delivered late (a slow callback, an overloaded host) the loop
// skips the missed slice indices rather than firing a burst of zero-length
// sleeps to catch up — virtualNow is computed from the epoch, so skipped
// slices lose no virtual time.
func (r *Realtime) loop() {
	defer close(r.done)
	const quantum = time.Millisecond
	r.mu.Lock()
	epoch := r.epochReal
	r.mu.Unlock()
	timer := time.NewTimer(quantum)
	defer timer.Stop()
	for tick := int64(1); ; tick++ {
		deadline := epoch.Add(time.Duration(tick) * quantum)
		wait := time.Until(deadline)
		if wait < 0 {
			tick += int64(-wait / quantum)
			wait = 0
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
			r.mu.Lock()
			r.sched.RunUntil(r.virtualNow())
			r.mu.Unlock()
		case <-r.stop:
			return
		}
	}
}

// virtualNow maps wall time to the virtual clock. Callers hold r.mu.
func (r *Realtime) virtualNow() time.Duration {
	elapsed := time.Since(r.epochReal)
	return r.epochVirt + time.Duration(float64(elapsed)*r.speed)
}

// Do runs fn inside the simulation's critical section with the clock
// caught up to wall time — the safe way for RPC handlers to call into a
// chain while Realtime is running.
func (r *Realtime) Do(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sched.RunUntil(r.virtualNow())
	fn()
}

// Stop halts the loop and waits for it to exit.
func (r *Realtime) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}
