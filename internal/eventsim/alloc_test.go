package eventsim

import (
	"testing"
	"time"
)

// The freelist, the value Timer and the bound ticker closure exist so that
// steady-state simulation — schedule, fire, cancel, tick — does not allocate
// at all once the wheel has warmed up. These tests pin that property;
// regressions here silently reintroduce GC pressure across every experiment.

// warm primes a scheduler's freelist and slot arrays so the measured loops
// run in steady state.
func warm(s *Scheduler, fn func()) {
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Millisecond, fn)
	}
	s.Run()
}

func TestScheduleFireAllocFree(t *testing.T) {
	s := New()
	fn := func() {}
	warm(s, fn)
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Millisecond, fn)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("schedule+fire allocates %.1f per run, want 0", allocs)
	}
}

func TestCancelAllocFree(t *testing.T) {
	s := New()
	fn := func() {}
	warm(s, fn)
	allocs := testing.AllocsPerRun(1000, func() {
		tm := s.After(time.Millisecond, fn)
		if !tm.Stop() {
			t.Fatal("Stop failed on pending timer")
		}
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel allocates %.1f per run, want 0", allocs)
	}
}

func TestOverflowScheduleFireAllocFree(t *testing.T) {
	s := New()
	fn := func() {}
	warm(s, fn)
	// Beyond the 268 ms wheel window: overflow heap and cascade path. The
	// overflow heap's backing array grows once during warm-up, then steady
	// state reuses it.
	for i := 0; i < 64; i++ {
		s.After(time.Second, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Second, fn)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("overflow schedule+fire allocates %.1f per run, want 0", allocs)
	}
}

func TestTickerSteadyStateAllocFree(t *testing.T) {
	s := New()
	n := 0
	tk := s.Every(time.Millisecond, func() { n++ })
	// First tick warms the rearm path.
	s.RunUntil(s.Now() + 2*time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		s.RunUntil(s.Now() + time.Millisecond)
	})
	tk.Stop()
	if allocs != 0 {
		t.Errorf("ticker steady state allocates %.1f per run, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}
