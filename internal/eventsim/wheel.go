package eventsim

import (
	"container/heap"
	"math/bits"
	"time"
)

// Wheel geometry: 256 slots of 2^20 ns ≈ 1.05 ms each, a sliding window of
// ≈268 ms of virtual time. Simulation hot-path events (client submit costs,
// matching costs, poll ticks, consensus rounds) land inside the window;
// coarse events (PoW intervals, drain deadlines) wait in the overflow heap
// and cascade in as the clock approaches them.
const (
	slotShift  = 20
	wheelSlots = 256
	wheelMask  = wheelSlots - 1
	occWords   = wheelSlots / 64
)

// Event locations, tracked so cancellation can remove an event from
// whichever structure currently holds it.
const (
	locNone int8 = iota
	locSlot
	locOverflow
	locDrain
	// locHandoff marks an event parked in a sharded-scheduler handoff
	// queue, waiting for the next epoch barrier to file it into its wheel.
	locHandoff
)

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// gen invalidates Timer handles when the struct is recycled.
	gen       uint32
	loc       int8
	cancelled bool
	// slot is the wheel bucket index when loc == locSlot.
	slot int32
	// index is the position inside the slot slice or overflow heap.
	index int32
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// wheel is the scheduler's event store: the bucketed near-future window, the
// far-future overflow heap, the sorted drain buffer for the bucket currently
// being fired, and the freelist of recycled event structs.
type wheel struct {
	// start is the absolute slot number of the window's lower edge,
	// always floor(now / slotWidth); buckets cover absolute slots
	// [start, start+wheelSlots).
	start int64
	slots [wheelSlots][]*event
	// occ is a 256-bit occupancy bitmap over the buckets, so finding the
	// next non-empty bucket is a handful of word scans.
	occ [occWords]uint64
	// count is the number of events resident in buckets (not drain or
	// overflow).
	count int

	overflow overflowHeap

	// drain holds the events of one absolute slot (drainAbs), sorted by
	// (at, seq); drainIdx is the next event to fire. drainLoaded reports
	// whether a slot is currently loaded.
	drain      []*event
	drainIdx   int
	drainAbs   int64
	drainLoaded bool

	free []*event
}

func absSlot(t time.Duration) int64 {
	return int64(t) >> slotShift
}

func (w *wheel) alloc() *event {
	if n := len(w.free); n > 0 {
		ev := w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		return ev
	}
	return &event{}
}

// release recycles an event struct. Bumping gen turns any outstanding Timer
// handle inert; dropping fn releases the callback's captures to the GC.
func (w *wheel) release(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.loc = locNone
	ev.cancelled = false
	w.free = append(w.free, ev)
}

// place files a live event into the drain buffer, a wheel bucket, or the
// overflow heap. It upholds the ordering invariant from every call site:
// if the event sorts before the currently loaded drain slot, the drain is
// unloaded first so the bucket scan rediscovers both in order.
func (w *wheel) place(ev *event) {
	abs := absSlot(ev.at)
	if w.drainLoaded {
		if abs == w.drainAbs {
			w.insertDrain(ev)
			return
		}
		if abs < w.drainAbs {
			w.unloadDrain()
		}
	}
	if abs >= w.start+wheelSlots {
		ev.loc = locOverflow
		heap.Push(&w.overflow, ev)
		return
	}
	w.pushSlot(abs, ev)
}

func (w *wheel) pushSlot(abs int64, ev *event) {
	k := int32(abs & wheelMask)
	ev.loc = locSlot
	ev.slot = k
	ev.index = int32(len(w.slots[k]))
	w.slots[k] = append(w.slots[k], ev)
	w.occ[k>>6] |= 1 << (uint(k) & 63)
	w.count++
}

// remove takes a live event out of whichever structure holds it. Bucket
// removal is a swap-delete (buckets are unsorted); overflow removal is an
// indexed heap.Remove; drain events are tombstoned and recycled when the
// drain pointer passes them (the sorted buffer cannot be compacted cheaply).
func (w *wheel) remove(ev *event) {
	switch ev.loc {
	case locSlot:
		k := ev.slot
		sl := w.slots[k]
		last := len(sl) - 1
		moved := sl[last]
		sl[ev.index] = moved
		moved.index = ev.index
		sl[last] = nil
		w.slots[k] = sl[:last]
		if last == 0 {
			w.occ[k>>6] &^= 1 << (uint(k) & 63)
		}
		w.count--
		w.release(ev)
	case locOverflow:
		heap.Remove(&w.overflow, int(ev.index))
		w.release(ev)
	case locDrain:
		ev.cancelled = true
	}
}

// insertDrain files an event into the sorted drain buffer at its (at, seq)
// rank, at or after the current drain pointer.
func (w *wheel) insertDrain(ev *event) {
	lo, hi := w.drainIdx, len(w.drain)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(w.drain[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ev.loc = locDrain
	w.drain = append(w.drain, nil)
	copy(w.drain[lo+1:], w.drain[lo:])
	w.drain[lo] = ev
}

// unloadDrain pushes the unfired remainder of the drain buffer back into its
// bucket (or the overflow heap, for a pulled far event) so that an event
// scheduled before it can be discovered in order. This is rare: it only
// happens when a caller schedules an event earlier than the known next one.
func (w *wheel) unloadDrain() {
	backToOverflow := w.drainAbs >= w.start+wheelSlots
	for i := w.drainIdx; i < len(w.drain); i++ {
		ev := w.drain[i]
		if ev.cancelled {
			w.release(ev)
			continue
		}
		if backToOverflow {
			ev.loc = locOverflow
			heap.Push(&w.overflow, ev)
		} else {
			w.pushSlot(w.drainAbs, ev)
		}
	}
	w.clearDrain()
}

func (w *wheel) clearDrain() {
	for i := range w.drain {
		w.drain[i] = nil
	}
	w.drain = w.drain[:0]
	w.drainIdx = 0
	w.drainLoaded = false
}

// loadSlot moves one bucket's events into the drain buffer and sorts them by
// (at, seq).
func (w *wheel) loadSlot(abs int64) {
	k := abs & wheelMask
	sl := w.slots[k]
	w.drain = append(w.drain[:0], sl...)
	for i := range sl {
		sl[i] = nil
	}
	w.slots[k] = sl[:0]
	w.occ[k>>6] &^= 1 << (uint(k) & 63)
	w.count -= len(w.drain)
	w.drainIdx = 0
	w.drainAbs = abs
	w.drainLoaded = true
	sortEvents(w.drain)
	for _, ev := range w.drain {
		ev.loc = locDrain
	}
}

// next returns the earliest live event without consuming it, loading the
// drain buffer as needed. It returns nil when no events remain.
func (w *wheel) next() *event {
	for {
		for w.drainIdx < len(w.drain) {
			ev := w.drain[w.drainIdx]
			if ev.cancelled {
				w.drain[w.drainIdx] = nil
				w.drainIdx++
				w.release(ev)
				continue
			}
			return ev
		}
		if w.drainLoaded {
			w.clearDrain()
		}
		if w.count > 0 {
			abs, ok := w.nextOccupied()
			if !ok {
				panic("eventsim: wheel count positive but no occupied bucket")
			}
			w.loadSlot(abs)
			continue
		}
		if len(w.overflow) > 0 {
			// The window ahead is empty, so the overflow head is the
			// global minimum: pull it as a singleton drain. Its
			// same-slot successors cascade in when the clock advances.
			ev := heap.Pop(&w.overflow).(*event)
			ev.loc = locDrain
			w.drain = append(w.drain[:0], ev)
			w.drainIdx = 0
			w.drainAbs = absSlot(ev.at)
			w.drainLoaded = true
			continue
		}
		return nil
	}
}

// popNext consumes the event last returned by next.
func (w *wheel) popNext() {
	w.drain[w.drainIdx] = nil
	w.drainIdx++
}

// advanceTo slides the window's lower edge to the slot containing now and
// cascades overflow events that fall inside the new window into buckets.
// Amortized each event cascades at most once.
func (w *wheel) advanceTo(now time.Duration) {
	ns := absSlot(now)
	if ns <= w.start {
		return
	}
	w.start = ns
	horizon := (ns + wheelSlots) << slotShift
	for len(w.overflow) > 0 && int64(w.overflow[0].at) < horizon {
		ev := heap.Pop(&w.overflow).(*event)
		w.place(ev)
	}
}

// nextOccupied scans the occupancy bitmap for the first non-empty bucket at
// or after the window's lower edge, wrapping across the 256-slot circle.
func (w *wheel) nextOccupied() (int64, bool) {
	start := int(w.start & wheelMask)
	w0 := start >> 6
	low := uint64(1)<<uint(start&63) - 1
	word := w.occ[w0] &^ low
	for k := 0; k < occWords; k++ {
		wi := (w0 + k) & (occWords - 1)
		if k > 0 {
			word = w.occ[wi]
		}
		if word != 0 {
			b := wi<<6 + bits.TrailingZeros64(word)
			rel := (b - start) & wheelMask
			return w.start + int64(rel), true
		}
	}
	if word = w.occ[w0] & low; word != 0 {
		b := w0<<6 + bits.TrailingZeros64(word)
		rel := (b - start) & wheelMask
		return w.start + int64(rel), true
	}
	return 0, false
}

// sortEvents orders a bucket by (at, seq) without allocating: insertion sort
// for the common small/nearly-sorted case (buckets fill in sequence order,
// so same-instant bursts arrive already sorted), heapsort above that for a
// guaranteed O(n log n) worst case.
func sortEvents(evs []*event) {
	if len(evs) <= 24 {
		insertionSortEvents(evs)
		return
	}
	if sortedEvents(evs) {
		return
	}
	heapsortEvents(evs)
}

func sortedEvents(evs []*event) bool {
	for i := 1; i < len(evs); i++ {
		if eventLess(evs[i], evs[i-1]) {
			return false
		}
	}
	return true
}

func insertionSortEvents(evs []*event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && eventLess(ev, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

func heapsortEvents(evs []*event) {
	n := len(evs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownEvents(evs, i, n)
	}
	for i := n - 1; i > 0; i-- {
		evs[0], evs[i] = evs[i], evs[0]
		siftDownEvents(evs, 0, i)
	}
}

func siftDownEvents(evs []*event, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && eventLess(evs[child], evs[child+1]) {
			child++
		}
		if !eventLess(evs[root], evs[child]) {
			return
		}
		evs[root], evs[child] = evs[child], evs[root]
		root = child
	}
}

// overflowHeap is an indexed min-heap over (at, seq) for events beyond the
// wheel window. The maintained index field makes cancellation a true
// O(log n) heap.Remove instead of a lazy tombstone.
type overflowHeap []*event

func (h overflowHeap) Len() int { return len(h) }

func (h overflowHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }

func (h overflowHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

func (h *overflowHeap) Push(x any) {
	ev := x.(*event)
	ev.index = int32(len(*h))
	*h = append(*h, ev)
}

func (h *overflowHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
