package eventsim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock %v, want 3s", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSchedulerAfterAndNesting(t *testing.T) {
	s := New()
	var fired []time.Duration
	s.After(time.Second, func() {
		fired = append(fired, s.Now())
		s.After(2*time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired at %v, want [1s 3s]", fired)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	s.At(500*time.Millisecond, func() {})
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	timer := s.After(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop should report cancellation")
	}
	if timer.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTickerFiresAndStops(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(10 * time.Second)
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("RunUntil left clock at %v", s.Now())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	s := New()
	fired := false
	s.At(5*time.Second, func() { fired = true })
	s.RunUntil(3 * time.Second)
	if fired {
		t.Fatal("future event fired early")
	}
	if s.Len() != 1 {
		t.Fatalf("pending events %d, want 1", s.Len())
	}
	s.RunUntil(6 * time.Second)
	if !fired {
		t.Fatal("event at 5s never fired")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := New()
	count := 0
	s.Every(time.Second, func() {
		count++
		if count == 2 {
			s.Stop()
		}
	})
	s.Run()
	if count != 2 {
		t.Fatalf("Stop did not halt Run: %d events", count)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New()
		var out []time.Duration
		s.Every(300*time.Millisecond, func() {
			out = append(out, s.Now())
			if len(out) > 20 {
				s.Stop()
			}
		})
		s.Every(700*time.Millisecond, func() { out = append(out, s.Now()) })
		s.RunUntil(5 * time.Second)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic event times at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRealtimeAdvancesAndSerializes(t *testing.T) {
	s := New()
	count := 0
	s.Every(10*time.Millisecond, func() { count++ })
	rt := NewRealtime(s, 100) // 100x: 10ms virtual ticks every 0.1ms real
	rt.Start()
	defer rt.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var n int
		rt.Do(func() { n = count })
		if n >= 20 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("realtime driver advanced only %d ticks in 2s at 100x", count)
}
