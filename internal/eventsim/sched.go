package eventsim

import "time"

// Sched is the scheduling surface shared by the single timer wheel
// (Scheduler) and the sharded engine (ShardedScheduler). Engine, chain and
// network code program against this interface so a simulation can swap
// between the two without touching call sites.
//
// The Key variants carry a stable shard key. On the single wheel the key is
// ignored; on the sharded engine it selects which wheel holds the timer.
// Keys never influence dispatch order — events fire strictly by
// (virtual time, sequence) on both implementations — so the same program
// produces byte-identical results at any shard count. The contract for key
// choice is locality, not correctness: timers touching the same node or
// chain shard should share a key so their wheel work lands on one shard.
type Sched interface {
	// Now reports the current virtual time.
	Now() time.Duration
	// At schedules fn at absolute virtual time t; AtKey routes it by key.
	At(t time.Duration, fn func()) Timer
	AtKey(key uint64, t time.Duration, fn func()) Timer
	// After schedules fn d after now (negative d clamps to zero).
	After(d time.Duration, fn func()) Timer
	AfterKey(key uint64, d time.Duration, fn func()) Timer
	// ReserveSeq reserves n consecutive tie-break sequence numbers; AtSeq
	// and AtKeySeq attach events to reserved numbers later.
	ReserveSeq(n int) uint64
	AtSeq(t time.Duration, seq uint64, fn func()) Timer
	AtKeySeq(key uint64, t time.Duration, seq uint64, fn func()) Timer
	// Every fires fn at a fixed interval until the ticker is stopped.
	Every(interval time.Duration, fn func()) *Ticker
	EveryKey(key uint64, interval time.Duration, fn func()) *Ticker
	// Len counts pending events; NextAt peeks the earliest one.
	Len() int
	NextAt() (time.Duration, bool)
	// Step fires the next event; Run and RunUntil drive the loop; Stop
	// aborts a running loop after the current callback returns.
	Step() bool
	Run()
	RunUntil(deadline time.Duration)
	Stop()
}

var (
	_ Sched = (*Scheduler)(nil)
	_ Sched = (*ShardedScheduler)(nil)
)

// Key hashes a stable identifier (node name, shard label) into a shard key
// with FNV-1a. Chain simulators use it to pin a node's timers to one shard.
func Key(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
