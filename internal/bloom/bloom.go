// Package bloom implements the Bloom filter used by Hammer's task-processing
// algorithm (paper Algorithm 1) to reject, in O(1) and without touching the
// hash index, transactions that were never submitted by this driver — the
// common case in distributed testing where several drivers share one chain.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a standard Bloom filter with double hashing (Kirsch-Mitzenmacher)
// over two FNV-1a digests. The zero value is unusable; construct with New.
type Filter struct {
	bits   []uint64
	m      uint64 // number of bits
	k      int    // number of hash functions
	n      uint64 // elements added
	hashBu [8]byte
}

// New sizes a filter for the expected number of elements n at the target
// false-positive rate fp (0 < fp < 1). It panics on invalid arguments, as a
// misconfigured filter is a programming error.
func New(n int, fp float64) *Filter {
	if n <= 0 {
		panic(fmt.Sprintf("bloom: non-positive capacity %d", n))
	}
	if fp <= 0 || fp >= 1 {
		panic(fmt.Sprintf("bloom: false-positive rate %v out of (0,1)", fp))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits: make([]uint64, (m+63)/64),
		m:    m,
		k:    k,
	}
}

// hashPair computes two independent 64-bit digests of data.
func hashPair(data []byte) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write(data)
	a := h1.Sum64()
	h2 := fnv.New64a()
	var salt [1]byte
	salt[0] = 0x5c
	h2.Write(salt[:])
	h2.Write(data)
	b := h2.Sum64()
	if b == 0 {
		b = 0x9e3779b97f4a7c15
	}
	return a, b
}

// FNV-1a constants, for the allocation-free string path below.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashPairString is hashPair over a string key without converting it to a
// byte slice: bit-identical digests (the pagedstate hot path calls this per
// read, so the conversion alloc and the hash.Hash64 escape both matter).
func hashPairString(s string) (uint64, uint64) {
	var a uint64 = fnvOffset64
	for i := 0; i < len(s); i++ {
		a ^= uint64(s[i])
		a *= fnvPrime64
	}
	var b uint64 = fnvOffset64
	b ^= 0x5c
	b *= fnvPrime64
	for i := 0; i < len(s); i++ {
		b ^= uint64(s[i])
		b *= fnvPrime64
	}
	if b == 0 {
		b = 0x9e3779b97f4a7c15
	}
	return a, b
}

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	a, b := hashPair(data)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// AddString inserts a string key without allocating; equivalent to
// Add([]byte(s)).
func (f *Filter) AddString(s string) {
	a, b := hashPairString(s)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// AddUint64 inserts a 64-bit key.
func (f *Filter) AddUint64(v uint64) {
	binary.BigEndian.PutUint64(f.hashBu[:], v)
	f.Add(f.hashBu[:])
}

// Contains reports whether data may have been added. False means definitely
// absent; true may be a false positive at the configured rate.
func (f *Filter) Contains(data []byte) bool {
	a, b := hashPair(data)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsString tests a string key without allocating; equivalent to
// Contains([]byte(s)).
func (f *Filter) ContainsString(s string) bool {
	a, b := hashPairString(s)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsUint64 tests a 64-bit key.
func (f *Filter) ContainsUint64(v uint64) bool {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return f.Contains(buf[:])
}

// Count reports the number of Add calls.
func (f *Filter) Count() uint64 { return f.n }

// Bits reports the filter width in bits.
func (f *Filter) Bits() uint64 { return f.m }

// Hashes reports the number of hash functions.
func (f *Filter) Hashes() int { return f.k }

// EstimatedFalsePositiveRate computes the expected false-positive rate given
// the current fill.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	exp := -float64(f.k) * float64(f.n) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Reset clears the filter for reuse.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// MarshalBinary serialises the filter (little-endian: m, k, n, then the bit
// words) so stores can persist it across restarts instead of rescanning
// every key.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8+8+8*len(f.bits))
	binary.LittleEndian.PutUint64(out[0:8], f.m)
	binary.LittleEndian.PutUint64(out[8:16], uint64(f.k))
	binary.LittleEndian.PutUint64(out[16:24], f.n)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[24+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary restores a filter serialised by MarshalBinary.
func UnmarshalBinary(data []byte) (*Filter, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("bloom: marshalled filter truncated to %d bytes", len(data))
	}
	m := binary.LittleEndian.Uint64(data[0:8])
	k := binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint64(data[16:24])
	words := (m + 63) / 64
	if m == 0 || k == 0 || k > 64 || uint64(len(data)-24) != 8*words {
		return nil, fmt.Errorf("bloom: inconsistent marshalled filter (m=%d k=%d, %d payload bytes)", m, k, len(data)-24)
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: int(k), n: n}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[24+8*i:])
	}
	return f, nil
}
