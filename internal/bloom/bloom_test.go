package bloom

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.AddUint64(uint64(i))
	}
	for i := 0; i < 10000; i++ {
		if !f.ContainsUint64(uint64(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 20000
	f := New(n, 0.01)
	for i := 0; i < n; i++ {
		f.AddUint64(uint64(i))
	}
	fp := 0
	const probes = 50000
	for i := 0; i < probes; i++ {
		if f.ContainsUint64(uint64(n + i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want ≈0.01", rate)
	}
	if est := f.EstimatedFalsePositiveRate(); est > 0.03 {
		t.Fatalf("estimated fp rate %.4f too high", est)
	}
}

func TestSizing(t *testing.T) {
	f := New(1000, 0.01)
	if f.Bits() < 1000 {
		t.Fatalf("filter too small: %d bits", f.Bits())
	}
	if f.Hashes() < 2 {
		t.Fatalf("too few hash functions: %d", f.Hashes())
	}
}

func TestReset(t *testing.T) {
	f := New(100, 0.01)
	f.Add([]byte("x"))
	if !f.Contains([]byte("x")) {
		t.Fatal("added element missing")
	}
	f.Reset()
	if f.Contains([]byte("x")) {
		t.Fatal("reset filter should be empty")
	}
	if f.Count() != 0 {
		t.Fatalf("count %d after reset", f.Count())
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n  int
		fp float64
	}{{0, 0.01}, {10, 0}, {10, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) should panic", tc.n, tc.fp)
				}
			}()
			New(tc.n, tc.fp)
		}()
	}
}

// TestQuickNoFalseNegatives property-tests membership after insertion.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := New(4096, 0.01)
	inserted := make(map[uint64]bool)
	prop := func(v uint64) bool {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], v)
		f.Add(buf[:])
		inserted[v] = true
		for k := range inserted {
			binary.BigEndian.PutUint64(buf[:], k)
			if !f.Contains(buf[:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringAPIsMatchByteAPIs(t *testing.T) {
	f1 := New(1000, 0.01)
	f2 := New(1000, 0.01)
	keys := []string{"", "a", "acct00001", "c:acct12345", "\x00\xff weird \x5c key"}
	for _, k := range keys {
		f1.Add([]byte(k))
		f2.AddString(k)
	}
	for i := range f1.bits {
		if f1.bits[i] != f2.bits[i] {
			t.Fatalf("bit word %d diverges between Add and AddString", i)
		}
	}
	for _, k := range keys {
		if !f1.ContainsString(k) || !f2.Contains([]byte(k)) {
			t.Fatalf("cross-API lookup of %q failed", k)
		}
	}
}

func TestStringAPIsDoNotAllocate(t *testing.T) {
	f := New(1000, 0.01)
	f.AddString("warm")
	if a := testing.AllocsPerRun(1000, func() { f.ContainsString("acct0099") }); a > 0 {
		t.Fatalf("ContainsString allocates %.1f per op", a)
	}
	if a := testing.AllocsPerRun(1000, func() { f.AddString("acct0099") }); a > 0 {
		t.Fatalf("AddString allocates %.1f per op", a)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(5000, 0.01)
	for i := 0; i < 3000; i++ {
		f.AddUint64(uint64(i * 7))
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.Count() != f.Count() {
		t.Fatalf("round-trip changed geometry: %d/%d/%d vs %d/%d/%d",
			g.Bits(), g.Hashes(), g.Count(), f.Bits(), f.Hashes(), f.Count())
	}
	for i := 0; i < 3000; i++ {
		if !g.ContainsUint64(uint64(i * 7)) {
			t.Fatalf("element %d lost in marshal round-trip", i)
		}
	}
	if _, err := UnmarshalBinary(blob[:10]); err == nil {
		t.Fatal("truncated filter unmarshalled without error")
	}
	if _, err := UnmarshalBinary(nil); err == nil {
		t.Fatal("empty filter unmarshalled without error")
	}
}
