package minisql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"hammer/internal/store/tablestore"
)

// Result is the rowset a query produces.
type Result struct {
	Cols []string
	Rows []tablestore.Row
}

// Query parses and evaluates sql against the store.
func Query(store *tablestore.Store, sql string) (*Result, error) {
	sel, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Eval(store, sel)
}

// Eval evaluates a parsed SELECT.
func Eval(store *tablestore.Store, sel *Select) (*Result, error) {
	table, err := store.Table(sel.From)
	if err != nil {
		return nil, err
	}
	env := &env{table: table}

	var res *Result
	switch {
	case len(sel.GroupBy) > 0:
		res, err = evalGroupBy(env, sel)
	case hasAggregate(sel):
		res, err = evalAggregate(env, sel)
	default:
		res, err = evalScan(env, sel)
	}
	if err != nil {
		return nil, err
	}
	if err := orderRows(res, sel.OrderBy); err != nil {
		return nil, err
	}
	if sel.Limit >= 0 && len(res.Rows) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	return res, nil
}

// orderRows sorts the result by the named output columns.
func orderRows(res *Result, keys []OrderKey) error {
	if len(keys) == 0 {
		return nil
	}
	idx := make([]int, len(keys))
	for i, k := range keys {
		found := -1
		for c, name := range res.Cols {
			if strings.EqualFold(name, k.Column) {
				found = c
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("minisql: ORDER BY column %q not in output", k.Column)
		}
		idx[i] = found
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, k := range keys {
			va, vb := res.Rows[a][idx[i]], res.Rows[b][idx[i]]
			c := compareValues(va, vb)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// compareValues orders two cells: numerics numerically, strings
// lexicographically; mixed kinds order numbers before strings.
func compareValues(a, b tablestore.Value) int {
	fa, oka := a.AsFloat()
	fb, okb := b.AsFloat()
	switch {
	case oka && okb:
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	case oka:
		return -1
	case okb:
		return 1
	default:
		return strings.Compare(a.S, b.S)
	}
}

// evalGroupBy aggregates per group of the GROUP BY columns. Select items
// must be either grouped columns or aggregate calls.
func evalGroupBy(e *env, sel *Select) (*Result, error) {
	groupIdx := make([]int, len(sel.GroupBy))
	for i, name := range sel.GroupBy {
		gi, err := e.columnIndex(name)
		if err != nil {
			return nil, err
		}
		groupIdx[i] = gi
	}
	// Classify select items: grouped column reference or aggregate.
	type itemPlan struct {
		groupPos int // index into groupIdx, or -1
		fc       *FuncCall
	}
	plans := make([]itemPlan, len(sel.Items))
	for i, item := range sel.Items {
		if ref, ok := item.Expr.(*ColumnRef); ok {
			pos := -1
			for gi, name := range sel.GroupBy {
				if strings.EqualFold(name, ref.Name) {
					pos = gi
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("minisql: column %q must appear in GROUP BY or an aggregate", ref.Name)
			}
			plans[i] = itemPlan{groupPos: pos}
			continue
		}
		fc, ok := item.Expr.(*FuncCall)
		if !ok || !exprHasAggregate(item.Expr) {
			return nil, fmt.Errorf("minisql: select item %d must be a grouped column or aggregate", i+1)
		}
		plans[i] = itemPlan{groupPos: -1, fc: fc}
	}

	type group struct {
		key    []tablestore.Value
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string

	newStates := func() ([]*aggState, error) {
		states := make([]*aggState, len(plans))
		for i, pl := range plans {
			if pl.fc == nil {
				continue
			}
			st := &aggState{fn: pl.fc.Name}
			if len(pl.fc.Args) == 1 {
				if _, isStar := pl.fc.Args[0].(*Star); !isStar {
					st.arg = pl.fc.Args[0]
				}
			} else if len(pl.fc.Args) != 0 {
				return nil, fmt.Errorf("minisql: %s takes one argument", pl.fc.Name)
			}
			states[i] = st
		}
		return states, nil
	}

	var evalErr error
	e.table.Scan(func(row tablestore.Row) bool {
		e.row = row
		if sel.Where != nil {
			keep, err := evalBool(e, sel.Where)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		keyParts := make([]string, len(groupIdx))
		keyVals := make([]tablestore.Value, len(groupIdx))
		for i, gi := range groupIdx {
			keyVals[i] = row[gi]
			keyParts[i] = row[gi].String()
		}
		key := strings.Join(keyParts, "\x1f")
		g, ok := groups[key]
		if !ok {
			states, err := newStates()
			if err != nil {
				evalErr = err
				return false
			}
			g = &group{key: keyVals, states: states}
			groups[key] = g
			order = append(order, key)
		}
		for _, st := range g.states {
			if st == nil {
				continue
			}
			if err := st.feed(e); err != nil {
				evalErr = err
				return false
			}
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}

	res := &Result{}
	for i, item := range sel.Items {
		res.Cols = append(res.Cols, itemName(e, item, i))
	}
	for _, key := range order {
		g := groups[key]
		row := make(tablestore.Row, len(plans))
		for i, pl := range plans {
			if pl.fc == nil {
				row[i] = g.key[pl.groupPos]
			} else {
				row[i] = g.states[i].result()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// env resolves column references against one table, case-insensitively.
type env struct {
	table *tablestore.Table
	row   tablestore.Row
}

func (e *env) columnIndex(name string) (int, error) {
	if i, ok := e.table.ColumnIndex(name); ok {
		return i, nil
	}
	for i, c := range e.table.Columns() {
		if strings.EqualFold(c.Name, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("minisql: no column %q in table %q", name, e.table.Name())
}

func hasAggregate(sel *Select) bool {
	for _, item := range sel.Items {
		if exprHasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		switch x.Name {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *UnaryExpr:
		return exprHasAggregate(x.X)
	}
	return false
}

// evalScan projects each matching row.
func evalScan(env *env, sel *Select) (*Result, error) {
	res := &Result{}
	for i, item := range sel.Items {
		res.Cols = append(res.Cols, itemName(env, item, i))
	}
	var evalErr error
	env.table.Scan(func(row tablestore.Row) bool {
		env.row = row
		if sel.Where != nil {
			keep, err := evalBool(env, sel.Where)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		var out tablestore.Row
		for _, item := range sel.Items {
			if _, isStar := item.Expr.(*Star); isStar {
				out = append(out, row...)
				continue
			}
			v, err := evalExpr(env, item.Expr)
			if err != nil {
				evalErr = err
				return false
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	// Expand * into column names.
	if len(sel.Items) == 1 {
		if _, isStar := sel.Items[0].Expr.(*Star); isStar {
			res.Cols = nil
			for _, c := range env.table.Columns() {
				res.Cols = append(res.Cols, c.Name)
			}
		}
	}
	return res, nil
}

func itemName(env *env, item SelectItem, idx int) string {
	if item.Alias != "" {
		return item.Alias
	}
	return item.Expr.String()
}

// aggState accumulates one aggregate function.
type aggState struct {
	fn    string
	arg   Expr // nil for COUNT(*)
	count int64
	sum   float64
	min   float64
	max   float64
	seen  bool
}

func (a *aggState) feed(env *env) error {
	if a.fn == "COUNT" && a.arg == nil {
		a.count++
		return nil
	}
	v, err := evalExpr(env, a.arg)
	if err != nil {
		return err
	}
	f, ok := v.AsFloat()
	if !ok {
		if a.fn == "COUNT" {
			a.count++
			return nil
		}
		return fmt.Errorf("minisql: %s over non-numeric value %q", a.fn, v.S)
	}
	a.count++
	a.sum += f
	if !a.seen || f < a.min {
		a.min = f
	}
	if !a.seen || f > a.max {
		a.max = f
	}
	a.seen = true
	return nil
}

func (a *aggState) result() tablestore.Value {
	switch a.fn {
	case "COUNT":
		return tablestore.Int(a.count)
	case "SUM":
		return tablestore.Float(a.sum)
	case "AVG":
		if a.count == 0 {
			return tablestore.Float(math.NaN())
		}
		return tablestore.Float(a.sum / float64(a.count))
	case "MIN":
		return tablestore.Float(a.min)
	case "MAX":
		return tablestore.Float(a.max)
	}
	return tablestore.Value{}
}

// evalAggregate runs a single-group aggregation query.
func evalAggregate(env *env, sel *Select) (*Result, error) {
	states := make([]*aggState, len(sel.Items))
	for i, item := range sel.Items {
		fc, ok := item.Expr.(*FuncCall)
		if !ok || !exprHasAggregate(item.Expr) {
			return nil, fmt.Errorf("minisql: mixing aggregates and row expressions is unsupported (item %d)", i+1)
		}
		st := &aggState{fn: fc.Name}
		if len(fc.Args) == 1 {
			if _, isStar := fc.Args[0].(*Star); !isStar {
				st.arg = fc.Args[0]
			}
		} else if len(fc.Args) != 0 {
			return nil, fmt.Errorf("minisql: %s takes one argument", fc.Name)
		}
		states[i] = st
	}
	var evalErr error
	env.table.Scan(func(row tablestore.Row) bool {
		env.row = row
		if sel.Where != nil {
			keep, err := evalBool(env, sel.Where)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		for _, st := range states {
			if err := st.feed(env); err != nil {
				evalErr = err
				return false
			}
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	res := &Result{}
	row := make(tablestore.Row, len(states))
	for i, item := range sel.Items {
		res.Cols = append(res.Cols, itemName(env, item, i))
		row[i] = states[i].result()
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

func evalBool(env *env, e Expr) (bool, error) {
	v, err := evalExpr(env, e)
	if err != nil {
		return false, err
	}
	f, ok := v.AsFloat()
	if !ok {
		return v.S != "", nil
	}
	return f != 0, nil
}

func evalExpr(env *env, e Expr) (tablestore.Value, error) {
	switch x := e.(type) {
	case *NumberLit:
		if x.IsInt {
			return tablestore.Int(x.Int), nil
		}
		return tablestore.Float(x.Value), nil
	case *StringLit:
		return tablestore.Str(x.Value), nil
	case *ColumnRef:
		i, err := env.columnIndex(x.Name)
		if err != nil {
			return tablestore.Value{}, err
		}
		return env.row[i], nil
	case *UnaryExpr:
		v, err := evalExpr(env, x.X)
		if err != nil {
			return tablestore.Value{}, err
		}
		f, ok := v.AsFloat()
		if !ok {
			return tablestore.Value{}, fmt.Errorf("minisql: cannot negate string %q", v.S)
		}
		if v.Kind == tablestore.KindInt64 {
			return tablestore.Int(-v.I), nil
		}
		return tablestore.Float(-f), nil
	case *BinaryExpr:
		return evalBinary(env, x)
	case *FuncCall:
		return evalFunc(env, x)
	case *Star:
		return tablestore.Value{}, fmt.Errorf("minisql: * is only valid bare or inside COUNT")
	default:
		return tablestore.Value{}, fmt.Errorf("minisql: unsupported expression %T", e)
	}
}

func evalBinary(env *env, x *BinaryExpr) (tablestore.Value, error) {
	switch x.Op {
	case "AND":
		l, err := evalBool(env, x.L)
		if err != nil {
			return tablestore.Value{}, err
		}
		if !l {
			return tablestore.Int(0), nil
		}
		r, err := evalBool(env, x.R)
		if err != nil {
			return tablestore.Value{}, err
		}
		return boolVal(r), nil
	case "OR":
		l, err := evalBool(env, x.L)
		if err != nil {
			return tablestore.Value{}, err
		}
		if l {
			return tablestore.Int(1), nil
		}
		r, err := evalBool(env, x.R)
		if err != nil {
			return tablestore.Value{}, err
		}
		return boolVal(r), nil
	}

	l, err := evalExpr(env, x.L)
	if err != nil {
		return tablestore.Value{}, err
	}
	r, err := evalExpr(env, x.R)
	if err != nil {
		return tablestore.Value{}, err
	}

	switch x.Op {
	case "=":
		return boolVal(compareEq(l, r)), nil
	case "!=":
		return boolVal(!compareEq(l, r)), nil
	case "<", "<=", ">", ">=":
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			// String ordering for string-string comparisons.
			if l.Kind == tablestore.KindString && r.Kind == tablestore.KindString {
				return boolVal(cmpOrder(strings.Compare(l.S, r.S), x.Op)), nil
			}
			return tablestore.Value{}, fmt.Errorf("minisql: cannot order %v against %v", l.Kind, r.Kind)
		}
		var c int
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
		return boolVal(cmpOrder(c, x.Op)), nil
	case "+", "-", "*", "/":
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return tablestore.Value{}, fmt.Errorf("minisql: arithmetic on non-numeric operands")
		}
		var out float64
		switch x.Op {
		case "+":
			out = lf + rf
		case "-":
			out = lf - rf
		case "*":
			out = lf * rf
		case "/":
			if rf == 0 {
				return tablestore.Value{}, fmt.Errorf("minisql: division by zero")
			}
			out = lf / rf
		}
		if l.Kind == tablestore.KindInt64 && r.Kind == tablestore.KindInt64 && x.Op != "/" {
			return tablestore.Int(int64(out)), nil
		}
		return tablestore.Float(out), nil
	}
	return tablestore.Value{}, fmt.Errorf("minisql: unsupported operator %q", x.Op)
}

func cmpOrder(c int, op string) bool {
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func compareEq(l, r tablestore.Value) bool {
	if l.Kind == tablestore.KindString || r.Kind == tablestore.KindString {
		return l.Kind == r.Kind && l.S == r.S
	}
	lf, _ := l.AsFloat()
	rf, _ := r.AsFloat()
	return lf == rf
}

func boolVal(b bool) tablestore.Value {
	if b {
		return tablestore.Int(1)
	}
	return tablestore.Int(0)
}

// timestampUnits maps TIMESTAMPDIFF units to nanoseconds. Time columns store
// int64 nanoseconds.
var timestampUnits = map[string]int64{
	"MICROSECOND": int64(time.Microsecond),
	"MILLISECOND": int64(time.Millisecond),
	"SECOND":      int64(time.Second),
	"MINUTE":      int64(time.Minute),
	"HOUR":        int64(time.Hour),
}

func evalFunc(env *env, fc *FuncCall) (tablestore.Value, error) {
	switch fc.Name {
	case "TIMESTAMPDIFF":
		if len(fc.Args) != 3 {
			return tablestore.Value{}, fmt.Errorf("minisql: TIMESTAMPDIFF wants (unit, start, end)")
		}
		unitRef, ok := fc.Args[0].(*ColumnRef)
		if !ok {
			return tablestore.Value{}, fmt.Errorf("minisql: TIMESTAMPDIFF unit must be an identifier")
		}
		unitNs, ok := timestampUnits[strings.ToUpper(unitRef.Name)]
		if !ok {
			return tablestore.Value{}, fmt.Errorf("minisql: unsupported TIMESTAMPDIFF unit %q", unitRef.Name)
		}
		start, err := evalExpr(env, fc.Args[1])
		if err != nil {
			return tablestore.Value{}, err
		}
		end, err := evalExpr(env, fc.Args[2])
		if err != nil {
			return tablestore.Value{}, err
		}
		sf, sok := start.AsFloat()
		ef, eok := end.AsFloat()
		if !sok || !eok {
			return tablestore.Value{}, fmt.Errorf("minisql: TIMESTAMPDIFF over non-numeric timestamps")
		}
		return tablestore.Int(int64((ef - sf) / float64(unitNs))), nil
	case "ABS":
		if len(fc.Args) != 1 {
			return tablestore.Value{}, fmt.Errorf("minisql: ABS wants one argument")
		}
		v, err := evalExpr(env, fc.Args[0])
		if err != nil {
			return tablestore.Value{}, err
		}
		f, ok := v.AsFloat()
		if !ok {
			return tablestore.Value{}, fmt.Errorf("minisql: ABS over non-numeric value")
		}
		if v.Kind == tablestore.KindInt64 {
			if v.I < 0 {
				return tablestore.Int(-v.I), nil
			}
			return v, nil
		}
		return tablestore.Float(math.Abs(f)), nil
	default:
		return tablestore.Value{}, fmt.Errorf("minisql: unknown function %q", fc.Name)
	}
}
