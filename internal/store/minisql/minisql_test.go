package minisql

import (
	"strings"
	"testing"
	"time"

	"hammer/internal/store/tablestore"
)

// perfStore builds the Performance table the paper's Table II queries run
// against, with known latencies.
func perfStore(t *testing.T) *tablestore.Store {
	t.Helper()
	s := tablestore.New()
	tbl, err := s.CreateTable("Performance", []tablestore.Column{
		{Name: "tx_id", Kind: tablestore.KindString},
		{Name: "status", Kind: tablestore.KindString},
		{Name: "start_time", Kind: tablestore.KindInt64},
		{Name: "end_time", Kind: tablestore.KindInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id      string
		status  string
		latency time.Duration
	}{
		{"t1", "1", 200 * time.Millisecond},
		{"t2", "1", 900 * time.Millisecond},
		{"t3", "1", 1500 * time.Millisecond}, // committed but slow
		{"t4", "0", 100 * time.Millisecond},  // failed
	}
	for i, r := range rows {
		start := int64(i) * int64(time.Second)
		err := tbl.Insert(tablestore.Row{
			tablestore.Str(r.id),
			tablestore.Str(r.status),
			tablestore.Int(start),
			tablestore.Int(start + int64(r.latency)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestTableIITPSQuery runs the paper's TPS statement verbatim.
func TestTableIITPSQuery(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT COUNT(*) AS TPS
FROM Performance WHERE STATUS = '1' AND
TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Cols[0] != "TPS" {
		t.Fatalf("cols %v", res.Cols)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("TPS = %v, want 3 (t1, t2 and t3-at-1s qualify; t4 failed)", res.Rows[0][0])
	}
}

// TestTableIILatencyQuery runs the paper's latency statement verbatim.
func TestTableIILatencyQuery(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT tx_id, start_time, end_time,
TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency FROM Performance`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Cols[3] != "Latency" {
		t.Fatalf("cols %v", res.Cols)
	}
	if res.Rows[0][3].I != 200 || res.Rows[2][3].I != 1500 {
		t.Fatalf("latencies %v, %v", res.Rows[0][3], res.Rows[2][3])
	}
}

func TestAggregates(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT COUNT(*), MIN(start_time), MAX(end_time), AVG(start_time), SUM(start_time) FROM Performance`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].I != 4 {
		t.Fatalf("count %v", row[0])
	}
	if row[1].F != 0 {
		t.Fatalf("min %v", row[1])
	}
	if row[4].F != float64(6*time.Second) {
		t.Fatalf("sum %v", row[4])
	}
}

func TestWhereOperators(t *testing.T) {
	s := perfStore(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT tx_id FROM Performance WHERE status != '1'`, 1},
		{`SELECT tx_id FROM Performance WHERE status = '1' OR status = '0'`, 4},
		{`SELECT tx_id FROM Performance WHERE start_time > 0 AND start_time < 3000000000`, 2},
		{`SELECT tx_id FROM Performance WHERE tx_id = 't1'`, 1},
		{`SELECT tx_id FROM Performance WHERE start_time >= 3000000000`, 1},
		{`SELECT tx_id FROM Performance WHERE tx_id < 't2'`, 1},
	}
	for _, tc := range cases {
		res, err := Query(s, tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if len(res.Rows) != tc.want {
			t.Errorf("%s: %d rows, want %d", tc.sql, len(res.Rows), tc.want)
		}
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT (end_time - start_time) / 1000000 AS ms, ABS(0 - 5) FROM Performance WHERE tx_id = 't1'`)
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := res.Rows[0][0].AsFloat()
	if ms != 200 {
		t.Fatalf("ms = %v", ms)
	}
	if res.Rows[0][1].I != 5 {
		t.Fatalf("abs = %v", res.Rows[0][1])
	}
}

func TestSelectStar(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT * FROM Performance`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 4 || res.Cols[0] != "tx_id" {
		t.Fatalf("cols %v", res.Cols)
	}
	if len(res.Rows) != 4 || len(res.Rows[0]) != 4 {
		t.Fatal("star should expand all columns")
	}
}

func TestCaseInsensitiveColumnsAndKeywords(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `select TX_ID from Performance where STATUS = '0'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "t4" {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestErrorCases(t *testing.T) {
	s := perfStore(t)
	for _, sql := range []string{
		`SELECT`,
		`SELECT x FROM`,
		`SELECT ghost FROM Performance`,
		`SELECT tx_id FROM Ghost`,
		`SELECT tx_id Performance`,
		`SELECT COUNT(*), tx_id FROM Performance`,
		`SELECT NOSUCHFN(tx_id) FROM Performance`,
		`SELECT TIMESTAMPDIFF(FORTNIGHT, start_time, end_time) FROM Performance`,
		`SELECT tx_id FROM Performance WHERE start_time / 0 > 1`,
		`SELECT 'unterminated FROM Performance`,
		`SELECT tx_id FROM Performance trailing`,
		`SELECT tx_id + status FROM Performance`,
	} {
		if _, err := Query(s, sql); err == nil {
			t.Errorf("%s: expected error", sql)
		}
	}
}

func TestParseStructure(t *testing.T) {
	sel, err := Parse(`SELECT a, b AS bee FROM T WHERE a <= 3 AND b = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Items) != 2 || sel.Items[1].Alias != "bee" || sel.From != "T" {
		t.Fatalf("%+v", sel)
	}
	if sel.Where == nil || !strings.Contains(sel.Where.String(), "AND") {
		t.Fatalf("where %v", sel.Where)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := perfStore(t)
	// 1 + 2 * 3 = 7, not 9.
	res, err := Query(s, `SELECT 1 + 2 * 3 FROM Performance WHERE tx_id = 't1'`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Rows[0][0].AsFloat(); v != 7 {
		t.Fatalf("1+2*3 = %v", v)
	}
	// Parentheses override.
	res, err = Query(s, `SELECT (1 + 2) * 3 FROM Performance WHERE tx_id = 't1'`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Rows[0][0].AsFloat(); v != 9 {
		t.Fatalf("(1+2)*3 = %v", v)
	}
	// Unary minus.
	res, err = Query(s, `SELECT -2 + 5 FROM Performance WHERE tx_id = 't1'`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Rows[0][0].AsFloat(); v != 3 {
		t.Fatalf("-2+5 = %v", v)
	}
}

func TestGroupBy(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT status, COUNT(*) AS n, AVG(start_time) FROM Performance GROUP BY status ORDER BY n DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d groups", len(res.Rows))
	}
	// Three committed rows first (ORDER BY n DESC), one failed row second.
	if res.Rows[0][0].S != "1" || res.Rows[0][1].I != 3 {
		t.Fatalf("first group %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "0" || res.Rows[1][1].I != 1 {
		t.Fatalf("second group %v", res.Rows[1])
	}
}

func TestGroupByValidation(t *testing.T) {
	s := perfStore(t)
	if _, err := Query(s, `SELECT tx_id FROM Performance GROUP BY status`); err == nil {
		t.Fatal("ungrouped column should error")
	}
	if _, err := Query(s, `SELECT status, start_time + 1 FROM Performance GROUP BY status`); err == nil {
		t.Fatal("non-aggregate expression should error")
	}
	if _, err := Query(s, `SELECT status FROM Performance GROUP BY ghost`); err == nil {
		t.Fatal("unknown group column should error")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT tx_id, start_time FROM Performance ORDER BY start_time DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0][0].S != "t4" || res.Rows[1][0].S != "t3" {
		t.Fatalf("order %v, %v", res.Rows[0][0], res.Rows[1][0])
	}
	// Ascending is the default; string ordering works too.
	res, err = Query(s, `SELECT tx_id FROM Performance ORDER BY tx_id ASC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "t1" {
		t.Fatalf("asc order %v", res.Rows[0][0])
	}
	// LIMIT 0 yields nothing.
	res, err = Query(s, `SELECT tx_id FROM Performance LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("LIMIT 0 should return no rows")
	}
	if _, err := Query(s, `SELECT tx_id FROM Performance ORDER BY ghost`); err == nil {
		t.Fatal("unknown order column should error")
	}
	if _, err := Query(s, `SELECT tx_id FROM Performance LIMIT x`); err == nil {
		t.Fatal("non-numeric limit should error")
	}
}

// TestOLAPStyleQuery exercises the combined pipeline the visualization layer
// uses: filter, group, aggregate, order, limit.
func TestOLAPStyleQuery(t *testing.T) {
	s := perfStore(t)
	res, err := Query(s, `SELECT status, COUNT(*) AS n,
MAX(TIMESTAMPDIFF(MILLISECOND, start_time, end_time)) AS worst_ms
FROM Performance WHERE start_time >= 0 GROUP BY status ORDER BY worst_ms DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0][0].S != "1" {
		t.Fatalf("worst-latency group %v", res.Rows[0][0])
	}
	if worst, _ := res.Rows[0][2].AsFloat(); worst != 1500 {
		t.Fatalf("worst latency %v, want 1500ms", worst)
	}
}
