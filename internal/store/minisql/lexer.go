// Package minisql is a small SQL engine — lexer, recursive-descent parser
// and evaluator — sufficient to run the statement family the paper uses for
// its metrics (Table II): SELECT lists with aliases, aggregates
// (COUNT/SUM/AVG/MIN/MAX), arithmetic, comparisons, AND/OR, and the
// TIMESTAMPDIFF function over the tablestore's Performance table.
package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokPlus
	tokMinus
	tokSlash
	tokEq
	tokNeq
	tokLt
	tokLte
	tokGt
	tokGte
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenises a statement. SQL keywords are returned as identifiers; the
// parser treats identifier matching case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case c == '-':
			toks = append(toks, token{tokMinus, "-", i})
			i++
		case c == '/':
			toks = append(toks, token{tokSlash, "/", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("minisql: unexpected %q at position %d", c, i)
			}
		case c == '<':
			switch {
			case i+1 < n && input[i+1] == '=':
				toks = append(toks, token{tokLte, "<=", i})
				i += 2
			case i+1 < n && input[i+1] == '>':
				toks = append(toks, token{tokNeq, "<>", i})
				i += 2
			default:
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokGte, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != '\'' {
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("minisql: unterminated string starting at position %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("minisql: unexpected %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
