package minisql

import (
	"fmt"
	"strings"
)

// Select is the parsed form of a SELECT statement.
type Select struct {
	Items   []SelectItem
	From    string
	Where   Expr     // nil when absent
	GroupBy []string // column names; empty when absent
	OrderBy []OrderKey
	// Limit caps output rows; negative means no limit.
	Limit int
}

// OrderKey is one ORDER BY term, referencing an output column by name
// (alias or rendered expression).
type OrderKey struct {
	Column string
	Desc   bool
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// Expr is a parsed expression node.
type Expr interface {
	exprNode()
	String() string
}

// ColumnRef references a column by (case-insensitive) name.
type ColumnRef struct{ Name string }

// NumberLit is a numeric literal.
type NumberLit struct {
	Text  string
	Value float64
	IsInt bool
	Int   int64
}

// StringLit is a quoted string literal.
type StringLit struct{ Value string }

// Star is the `*` projection (only valid bare or inside COUNT).
type Star struct{}

// BinaryExpr is a two-operand operation.
type BinaryExpr struct {
	Op   string // "=", "!=", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/"
	L, R Expr
}

// UnaryExpr is negation.
type UnaryExpr struct {
	Op string // "-"
	X  Expr
}

// FuncCall is a function or aggregate invocation. For TIMESTAMPDIFF the
// first argument is the unit as a ColumnRef (SECOND, MILLISECOND, ...).
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
}

func (*ColumnRef) exprNode()  {}
func (*NumberLit) exprNode()  {}
func (*StringLit) exprNode()  {}
func (*Star) exprNode()       {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*FuncCall) exprNode()   {}

func (e *ColumnRef) String() string { return e.Name }
func (e *NumberLit) String() string { return e.Text }
func (e *StringLit) String() string { return "'" + e.Value + "'" }
func (e *Star) String() string      { return "*" }
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}
func (e *UnaryExpr) String() string { return e.Op + e.X.String() }
func (e *FuncCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

type parser struct {
	toks []token
	pos  int
}

// Parse compiles a SELECT statement.
func Parse(sql string) (*Select, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("minisql: trailing input at %s", p.peek())
	}
	return sel, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("minisql: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("minisql: expected table name, found %s", t)
	}
	sel.From = t.text
	sel.Limit = -1
	if p.keyword("WHERE") {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = where
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("minisql: expected column in GROUP BY, found %s", t)
			}
			sel.GroupBy = append(sel.GroupBy, t.text)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("minisql: expected column in ORDER BY, found %s", t)
			}
			key := OrderKey{Column: t.text}
			if p.keyword("DESC") {
				key.Desc = true
			} else {
				p.keyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.keyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("minisql: expected number after LIMIT, found %s", t)
		}
		lit, err := parseNumber(t.text)
		if err != nil {
			return nil, err
		}
		num := lit.(*NumberLit)
		if !num.IsInt || num.Int < 0 {
			return nil, fmt.Errorf("minisql: LIMIT must be a non-negative integer, got %s", t)
		}
		sel.Limit = int(num.Int)
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().kind == tokStar {
		p.next()
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.keyword("AS") {
		t := p.next()
		if t.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("minisql: expected alias after AS, found %s", t)
		}
		item.Alias = t.text
	}
	return item, nil
}

// parseExpr parses with precedence: OR < AND < comparison < additive <
// multiplicative < unary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.peek().kind {
	case tokEq:
		op = "="
	case tokNeq:
		op = "!="
	case tokLt:
		op = "<"
	case tokLte:
		op = "<="
	case tokGt:
		op = ">"
	case tokGte:
		op = ">="
	default:
		return l, nil
	}
	p.next()
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokMinus {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return parseNumber(t.text)
	case tokString:
		p.next()
		return &StringLit{Value: t.text}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("minisql: expected ), found %s", p.peek())
		}
		p.next()
		return e, nil
	case tokIdent:
		p.next()
		if p.peek().kind == tokLParen {
			return p.parseFuncCall(strings.ToUpper(t.text))
		}
		return &ColumnRef{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("minisql: unexpected %s in expression", t)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // consume (
	fc := &FuncCall{Name: name}
	if p.peek().kind == tokStar {
		p.next()
		fc.Args = append(fc.Args, &Star{})
	} else if p.peek().kind != tokRParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, a)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.peek().kind != tokRParen {
		return nil, fmt.Errorf("minisql: expected ) closing %s, found %s", name, p.peek())
	}
	p.next()
	return fc, nil
}

func parseNumber(text string) (Expr, error) {
	lit := &NumberLit{Text: text}
	if !strings.Contains(text, ".") {
		var v int64
		if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
			return nil, fmt.Errorf("minisql: bad integer %q: %w", text, err)
		}
		lit.IsInt = true
		lit.Int = v
		lit.Value = float64(v)
		return lit, nil
	}
	var f float64
	if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
		return nil, fmt.Errorf("minisql: bad number %q: %w", text, err)
	}
	lit.Value = f
	return lit, nil
}
