// Package kvstore is the in-memory key-value store standing in for the Redis
// cluster of the paper's architecture (§III-A): the Hammer server pushes
// vector-list state into it during execution, and the visualization phase
// periodically drains it into the SQL table store. It supports TTLs,
// pipelined multi-key operations and atomic counters, and shards its keyspace
// across independently locked segments for concurrent access.
package kvstore

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// shardCount is the number of lock-independent keyspace segments.
const shardCount = 16

type entry struct {
	value []byte
	// expiresAt is the wall-clock deadline; zero means no TTL.
	expiresAt time.Time
}

type shard struct {
	mu   sync.RWMutex
	data map[string]entry
}

// Store is a sharded, TTL-aware key-value store. Construct with New.
type Store struct {
	shards [shardCount]*shard
	clock  func() time.Time
}

// New returns an empty store.
func New() *Store {
	s := &Store{clock: time.Now}
	for i := range s.shards {
		s.shards[i] = &shard{data: make(map[string]entry)}
	}
	return s
}

// WithClock overrides the time source (tests).
func (s *Store) WithClock(clock func() time.Time) *Store {
	s.clock = clock
	return s
}

func (s *Store) shardFor(key string) *shard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return s.shards[h%shardCount]
}

// Set stores key with no TTL.
func (s *Store) Set(key string, value []byte) {
	s.SetTTL(key, value, 0)
}

// SetTTL stores key, expiring after ttl (0 keeps it forever).
func (s *Store) SetTTL(key string, value []byte, ttl time.Duration) {
	sh := s.shardFor(key)
	v := make([]byte, len(value))
	copy(v, value)
	e := entry{value: v}
	if ttl > 0 {
		e.expiresAt = s.clock().Add(ttl)
	}
	sh.mu.Lock()
	sh.data[key] = e
	sh.mu.Unlock()
}

// Get returns a copy of key's value; ok is false for absent or expired keys.
func (s *Store) Get(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.data[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if !e.expiresAt.IsZero() && s.clock().After(e.expiresAt) {
		s.Del(key)
		return nil, false
	}
	v := make([]byte, len(e.value))
	copy(v, e.value)
	return v, true
}

// Del removes key, reporting whether it existed.
func (s *Store) Del(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	_, ok := sh.data[key]
	delete(sh.data, key)
	sh.mu.Unlock()
	return ok
}

// Incr atomically adds delta to the integer at key (absent keys start at 0)
// and returns the new value.
func (s *Store) Incr(key string, delta int64) int64 {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var cur int64
	if e, ok := sh.data[key]; ok {
		if !e.expiresAt.IsZero() && s.clock().After(e.expiresAt) {
			delete(sh.data, key)
		} else if v, err := strconv.ParseInt(string(e.value), 10, 64); err == nil {
			cur = v
		}
	}
	cur += delta
	sh.data[key] = entry{value: []byte(strconv.FormatInt(cur, 10))}
	return cur
}

// MSet stores every pair in one call (pipelined write).
func (s *Store) MSet(pairs map[string][]byte) {
	for k, v := range pairs {
		s.Set(k, v)
	}
}

// MGet fetches every key in one call; missing keys map to nil.
func (s *Store) MGet(keys ...string) map[string][]byte {
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := s.Get(k); ok {
			out[k] = v
		} else {
			out[k] = nil
		}
	}
	return out
}

// Keys returns all live keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	now := s.clock()
	var keys []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, e := range sh.data {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			if !e.expiresAt.IsZero() && now.After(e.expiresAt) {
				continue
			}
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Expire sets a TTL on an existing key, reporting whether the key exists.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.data[key]
	if !ok {
		return false
	}
	if ttl > 0 {
		e.expiresAt = s.clock().Add(ttl)
	} else {
		e.expiresAt = time.Time{}
	}
	sh.data[key] = e
	return true
}

// Len reports the number of live keys (expired keys are swept on the way).
func (s *Store) Len() int {
	now := s.clock()
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, e := range sh.data {
			if !e.expiresAt.IsZero() && now.After(e.expiresAt) {
				delete(sh.data, k)
				continue
			}
			n++
		}
		sh.mu.Unlock()
	}
	return n
}

// Flush removes everything.
func (s *Store) Flush() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.data = make(map[string]entry)
		sh.mu.Unlock()
	}
}
