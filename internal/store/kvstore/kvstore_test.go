package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSetGetDel(t *testing.T) {
	s := New()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store should miss")
	}
	s.Set("k", []byte("v"))
	v, ok := s.Get("k")
	if !ok || string(v) != "v" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
	if !s.Del("k") {
		t.Fatal("delete should report existence")
	}
	if s.Del("k") {
		t.Fatal("double delete should report false")
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	buf := []byte("abc")
	s.Set("k", buf)
	buf[0] = 'z'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("stored value must be isolated from the caller's buffer")
	}
	v[0] = 'q'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("returned value must be a copy")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	s := New().WithClock(func() time.Time { return now })
	s.SetTTL("k", []byte("v"), time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh key should be readable")
	}
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired key should miss")
	}
}

func TestExpire(t *testing.T) {
	now := time.Unix(0, 0)
	s := New().WithClock(func() time.Time { return now })
	s.Set("k", []byte("v"))
	if !s.Expire("k", time.Second) {
		t.Fatal("expire should find the key")
	}
	if s.Expire("ghost", time.Second) {
		t.Fatal("expire on absent key should report false")
	}
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("key should have expired")
	}
}

func TestIncr(t *testing.T) {
	s := New()
	if got := s.Incr("n", 5); got != 5 {
		t.Fatalf("incr from empty = %d", got)
	}
	if got := s.Incr("n", -2); got != 3 {
		t.Fatalf("incr by -2 = %d", got)
	}
	v, _ := s.Get("n")
	if string(v) != "3" {
		t.Fatalf("stored %q", v)
	}
}

func TestMSetMGetKeys(t *testing.T) {
	s := New()
	s.MSet(map[string][]byte{"a:1": []byte("x"), "a:2": []byte("y"), "b:1": []byte("z")})
	got := s.MGet("a:1", "a:2", "ghost")
	if string(got["a:1"]) != "x" || string(got["a:2"]) != "y" || got["ghost"] != nil {
		t.Fatalf("mget %v", got)
	}
	keys := s.Keys("a:")
	if len(keys) != 2 || keys[0] != "a:1" || keys[1] != "a:2" {
		t.Fatalf("keys %v", keys)
	}
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	s.Flush()
	if s.Len() != 0 {
		t.Fatal("flush should empty the store")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("w%d:%d", w, i%50)
				s.Set(key, []byte{byte(i)})
				s.Get(key)
				s.Incr("counter", 1)
			}
		}()
	}
	wg.Wait()
	v, _ := s.Get("counter")
	if string(v) != "4000" {
		t.Fatalf("counter %q, want 4000", v)
	}
}
