package pagedstate

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzPageDecode hardens the page reader against arbitrary on-disk bytes: a
// torn or corrupted page must fail validate() or walk cleanly — never panic
// with an out-of-range slice. Seed corpora live under
// testdata/fuzz/FuzzPageDecode.
func FuzzPageDecode(f *testing.F) {
	// Seed 1: a healthy page with three entries.
	healthy := make([]byte, 4096)
	p := page{buf: healthy}
	p.init()
	scratch := make([]byte, 4096)
	p.insert("alpha", []byte("1"), 7, scratch)
	p.insert("beta", []byte("22"), 8, scratch)
	p.insert("gamma", []byte("333"), 9, scratch)
	f.Add(healthy)
	// Seed 2: empty page.
	empty := make([]byte, 4096)
	page{buf: empty}.init()
	f.Add(empty)
	// Seed 3: slot pointing past the end.
	evil := make([]byte, 4096)
	ep := page{buf: evil}
	ep.init()
	ep.setNslots(1)
	binary.LittleEndian.PutUint16(evil[pageHeaderSize:], 4090)
	binary.LittleEndian.PutUint16(evil[pageHeaderSize+2:], 60)
	f.Add(evil)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Fix the size the way the store does: pages are always read at
		// full page size, so pad/trim to a plausible geometry first.
		buf := make([]byte, 4096)
		copy(buf, data)
		p := page{buf: buf}
		if err := p.validate(); err != nil {
			return // rejected: exactly what the store does on read
		}
		// A page that validates must be fully walkable.
		for i, n := 0, p.nslots(); i < n; i++ {
			if _, cl := p.slot(i); cl == 0 {
				continue
			}
			key := p.cellKey(i)
			val, _ := p.cellValue(i)
			if len(key) > len(buf) || len(val) > len(buf) {
				t.Fatalf("slot %d yields impossible lengths key=%d val=%d", i, len(key), len(val))
			}
			_ = p.find(string(key))
		}
	})
}

// FuzzWALDecode hardens replay against arbitrary log bytes: decoding must
// terminate, never panic, and only ever yield records whose re-encoding is
// exactly the consumed bytes (round-trip integrity). Seed corpora live
// under testdata/fuzz/FuzzWALDecode.
func FuzzWALDecode(f *testing.F) {
	// Seed: two intact records plus a torn third.
	w := &wal{flushBytes: 1 << 20}
	w.appendRecord(walOpSet, "alpha", []byte("value-1"), 42)
	w.appendRecord(walOpDelete, "beta", nil, 0)
	w.appendRecord(walOpSet, "gamma", []byte("value-3"), 43)
	intact := append([]byte(nil), w.buf...)
	f.Add(intact)
	f.Add(intact[:len(intact)-5])
	f.Add([]byte{})
	f.Add([]byte{walOpSet, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		records := 0
		for off < len(data) {
			rec, n, ok := decodeWALRecord(data[off:])
			if !ok {
				break
			}
			if n <= 0 {
				t.Fatal("decode consumed nothing but reported ok")
			}
			// Round-trip: re-encoding the decoded record must reproduce
			// the consumed bytes exactly.
			rw := &wal{flushBytes: 1 << 30}
			if err := rw.appendRecord(rec.op, rec.key, rec.val, rec.version); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rw.buf, data[off:off+n]) {
				t.Fatalf("record at %d does not round-trip", off)
			}
			off += n
			records++
			if records > len(data) {
				t.Fatal("more records than bytes — decoder is not consuming")
			}
		}
	})
}
