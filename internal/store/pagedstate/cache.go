package pagedstate

import (
	"fmt"
	"os"
)

// frame is one resident page. Frames live in a fixed ring once the cache is
// warm; eviction recycles the buffer for the incoming page, so steady-state
// operation allocates nothing.
type frame struct {
	id     uint32
	dirty  bool
	ref    bool // clock reference bit
	pinned bool // in use by the current operation; never evicted
	buf    []byte
}

// pageCache is a clock (second-chance) cache over the page file, bounded by
// a byte budget. It is not safe for concurrent use; the store serialises
// access.
type pageCache struct {
	file      *os.File
	pageSize  int
	maxFrames int
	frames    []*frame
	byID      map[uint32]*frame
	hand      int
	freeBufs  [][]byte // recycled buffers from dropped frames
	// beforeWriteBack, when set, runs before a dirty frame's bytes reach
	// the page file. The store points it at wal.flush so no page image can
	// land on disk ahead of the log records that produced it.
	beforeWriteBack func() error

	hits      int64
	misses    int64
	evictions int64
}

func newPageCache(file *os.File, pageSize, budgetBytes int) *pageCache {
	maxFrames := budgetBytes / pageSize
	if maxFrames < 8 {
		maxFrames = 8
	}
	return &pageCache{
		file:      file,
		pageSize:  pageSize,
		maxFrames: maxFrames,
		byID:      make(map[uint32]*frame, maxFrames),
	}
}

// get returns the frame holding page id, reading it from disk on a miss.
// fresh marks a page that was just allocated and has no disk image yet.
func (c *pageCache) get(id uint32, fresh bool) (*frame, error) {
	if fr, ok := c.byID[id]; ok {
		fr.ref = true
		c.hits++
		return fr, nil
	}
	c.misses++
	fr, err := c.victim()
	if err != nil {
		return nil, err
	}
	fr.id = id
	fr.dirty = false
	fr.ref = true
	if fresh {
		page{buf: fr.buf}.init()
		fr.dirty = true
	} else {
		if _, err := c.file.ReadAt(fr.buf, int64(id)*int64(c.pageSize)); err != nil {
			c.release(fr)
			return nil, fmt.Errorf("pagedstate: read page %d: %w", id, err)
		}
		if err := (page{buf: fr.buf}).validate(); err != nil {
			c.release(fr)
			return nil, fmt.Errorf("page %d: %w", id, err)
		}
	}
	c.byID[id] = fr
	return fr, nil
}

// victim produces an empty frame: a fresh allocation while under budget, a
// recycled buffer, or the first unpinned clock victim (flushed if dirty).
func (c *pageCache) victim() (*frame, error) {
	if len(c.frames) < c.maxFrames {
		fr := &frame{}
		if n := len(c.freeBufs); n > 0 {
			fr.buf = c.freeBufs[n-1]
			c.freeBufs = c.freeBufs[:n-1]
		} else {
			fr.buf = make([]byte, c.pageSize)
		}
		c.frames = append(c.frames, fr)
		return fr, nil
	}
	for sweep := 0; sweep < 2*len(c.frames); sweep++ {
		fr := c.frames[c.hand]
		c.hand = (c.hand + 1) % len(c.frames)
		if fr.pinned {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if err := c.writeBack(fr); err != nil {
			return nil, err
		}
		delete(c.byID, fr.id)
		c.evictions++
		return fr, nil
	}
	return nil, fmt.Errorf("pagedstate: cache of %d frames has no evictable page (all pinned)", len(c.frames))
}

// release returns a frame whose fill failed to the free pool.
func (c *pageCache) release(fr *frame) {
	for i, f := range c.frames {
		if f == fr {
			last := len(c.frames) - 1
			c.frames[i] = c.frames[last]
			c.frames = c.frames[:last]
			if c.hand >= len(c.frames) {
				c.hand = 0
			}
			break
		}
	}
	c.freeBufs = append(c.freeBufs, fr.buf)
}

func (c *pageCache) writeBack(fr *frame) error {
	if !fr.dirty {
		return nil
	}
	if c.beforeWriteBack != nil {
		if err := c.beforeWriteBack(); err != nil {
			return err
		}
	}
	if _, err := c.file.WriteAt(fr.buf, int64(fr.id)*int64(c.pageSize)); err != nil {
		return fmt.Errorf("pagedstate: write page %d: %w", fr.id, err)
	}
	fr.dirty = false
	return nil
}

// flushAll writes every dirty frame back to the page file (checkpoint).
func (c *pageCache) flushAll() error {
	for _, fr := range c.frames {
		if err := c.writeBack(fr); err != nil {
			return err
		}
	}
	return nil
}

// resident reports the number of frames currently held.
func (c *pageCache) resident() int { return len(c.frames) }
