package pagedstate

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// crashStore populates a store and abandons it without Close — the page
// file and meta are whatever eviction happened to flush, and the WAL holds
// the full history. Sync flushes the group-commit buffer the way a crash
// after a durable batch would have.
func crashStore(t *testing.T, cfg Config, n int) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("key%05d", i), []byte(fmt.Sprintf("val%d", i)), uint64(i))
	}
	s.Delete("key00001")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: drop the handles without checkpoint or close.
	s.wal.f.Close()
	s.pageFile.Close()
}

func TestWALCrashRecovery(t *testing.T) {
	cfg := testConfig(t)
	const n = 4000
	crashStore(t, cfg, n)

	s := mustOpen(t, cfg)
	if got := s.Len(); got != n-1 {
		t.Fatalf("recovered Len = %d, want %d", got, n-1)
	}
	if _, _, ok := s.Get("key00001"); ok {
		t.Fatal("deleted key survived recovery")
	}
	for _, i := range []int{0, 2, n / 2, n - 1} {
		k := fmt.Sprintf("key%05d", i)
		v, ver, ok := s.Get(k)
		if !ok || string(v) != fmt.Sprintf("val%d", i) || ver != uint64(i) {
			t.Fatalf("recovered Get(%s) = %q v%d ok=%v", k, v, ver, ok)
		}
	}
	// Recovery checkpoints, so the log is clean and a second open replays
	// nothing new.
	if st := s.Stats(); st.WALBytes != 0 {
		t.Fatalf("post-recovery WAL holds %d bytes, want 0", st.WALBytes)
	}
}

// TestCrashRecoveryAfterCheckpoint crashes a store that had checkpointed
// earlier: post-checkpoint writes land in pages reachable from the
// persisted directory and are flushed by eviction, so replay finds those
// keys already present on disk. Recovery must still end with every key in
// the Bloom filter and an exact count (regression: the meta-restored
// filter and count used to win, silently losing post-checkpoint keys).
func TestCrashRecoveryAfterCheckpoint(t *testing.T) {
	cfg := testConfig(t)
	const base, extra = 2000, 2000
	key := func(i int) string { return fmt.Sprintf("key%05d", i) }
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base; i++ {
		s.Set(key(i), []byte(fmt.Sprintf("val%d", i)), uint64(i))
	}
	// Close checkpoints: meta now holds the directory, count and Bloom
	// filters for the base keys only.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := base; i < base+extra; i++ {
		s2.Set(key(i), []byte(fmt.Sprintf("val%d", i)), uint64(i))
	}
	s2.Delete(key(0)) // a checkpointed key: replay must re-drop it from the rebuilt count
	if st := s2.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions before the crash — the scenario needs flushed dirty pages")
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the handles without checkpoint or close.
	s2.wal.f.Close()
	s2.pageFile.Close()

	s3 := mustOpen(t, cfg)
	if got := s3.Len(); got != base+extra-1 {
		t.Fatalf("recovered Len = %d, want %d", got, base+extra-1)
	}
	if _, _, ok := s3.Get(key(0)); ok {
		t.Fatal("replayed delete resurrected its key")
	}
	for i := 1; i < base+extra; i++ {
		v, ver, ok := s3.Get(key(i))
		if !ok || string(v) != fmt.Sprintf("val%d", i) || ver != uint64(i) {
			t.Fatalf("recovered Get(%s) = %q v%d ok=%v — key lost to a stale bloom/count", key(i), v, ver, ok)
		}
	}
	// Delete is bloom-gated too: a recovered key must stay deletable.
	s3.Delete(key(base + 1))
	if _, _, ok := s3.Get(key(base + 1)); ok {
		t.Fatal("post-recovery delete of a replayed key did not stick")
	}
	if got := s3.Len(); got != base+extra-2 {
		t.Fatalf("Len after post-recovery delete = %d, want %d", got, base+extra-2)
	}
}

// TestEvictionFlushesWALFirst crashes without ever syncing: the only WAL
// flushes are the ones dirty-page eviction performs before write-back.
// Recovery must land on an exact record-aligned prefix of the operation
// sequence — pages on disk may never hold writes the log does not
// (regression: eviction used to write back unlogged mutations).
func TestEvictionFlushesWALFirst(t *testing.T) {
	cfg := testConfig(t)
	cfg.WALFlushBytes = 1 << 30 // group commit never fires on its own
	const base, extra = 1000, 3000
	key := func(i int) string { return fmt.Sprintf("key%05d", i) }
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base; i++ {
		s.Set(key(i), []byte(fmt.Sprintf("val%d", i)), uint64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := base; i < base+extra; i++ {
		s2.Set(key(i), []byte(fmt.Sprintf("val%d", i)), uint64(i))
	}
	if st := s2.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions before the crash — nothing forced a WAL flush")
	}
	// Crash with the group-commit buffer unflushed.
	s2.wal.f.Close()
	s2.pageFile.Close()

	s3 := mustOpen(t, cfg)
	n := s3.Len()
	if n < base {
		t.Fatalf("recovery lost checkpointed keys: Len %d < %d", n, base)
	}
	if got := len(s3.Keys()); got != n {
		t.Fatalf("Len %d but %d live keys on pages — index out of sync with unlogged writes", n, got)
	}
	for i := 0; i < base+extra; i++ {
		_, _, ok := s3.Get(key(i))
		if want := i < n; ok != want {
			t.Fatalf("recovered state is not a prefix: Get(%s) ok=%v with Len %d", key(i), ok, n)
		}
	}
}

// TestWALTornTail truncates the log mid-record at every boundary around the
// last few records: replay must recover exactly the whole-record prefix and
// never error, mirroring a crash that tore the final write.
func TestWALTornTail(t *testing.T) {
	cfg := testConfig(t)
	cfg.Dir = t.TempDir()
	const n = 50
	crashStore(t, cfg, n)
	walPath := filepath.Join(cfg.Dir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Decode the intact log to find each record's end offset.
	var ends []int
	off := 0
	for off < len(full) {
		_, sz, ok := decodeWALRecord(full[off:])
		if !ok {
			t.Fatalf("intact log failed to decode at %d", off)
		}
		off += sz
		ends = append(ends, off)
	}
	if len(ends) != n+1 { // n sets + 1 delete
		t.Fatalf("log has %d records, want %d", len(ends), n+1)
	}

	for _, cut := range []int{
		ends[len(ends)-1] - 1, // tear the last record's CRC
		ends[len(ends)-2] + 3, // tear mid-header
		ends[len(ends)-3],     // clean cut: full prefix
		1,                     // almost everything gone
	} {
		dir := t.TempDir()
		target := Config{Dir: dir, PageSize: cfg.PageSize, CacheBytes: cfg.CacheBytes, ExpectedKeys: cfg.ExpectedKeys}
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Count how many whole records survive the cut.
		whole := 0
		for _, e := range ends {
			if e <= cut {
				whole++
			}
		}
		s, err := Open(target)
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		wantLen := whole
		if whole == n+1 { // the delete replayed too
			wantLen = n - 1
		}
		if got := s.Len(); got != wantLen {
			t.Fatalf("cut=%d: recovered %d keys, want %d", cut, got, wantLen)
		}
		for i := 0; i < whole && i < n; i++ {
			k := fmt.Sprintf("key%05d", i)
			if _, _, ok := s.Get(k); !ok {
				t.Fatalf("cut=%d: key %s lost from whole-record prefix", cut, k)
			}
		}
		s.Close()
	}
}

// TestWALCorruptMiddle flips a byte inside an early record: replay must
// stop at the corruption (CRC) and keep only the prefix, not crash.
func TestWALCorruptMiddle(t *testing.T) {
	cfg := testConfig(t)
	cfg.Dir = t.TempDir()
	crashStore(t, cfg, 50)
	walPath := filepath.Join(cfg.Dir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)/2] ^= 0xFF
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got == 0 || got >= 50 {
		t.Fatalf("corrupt-middle recovery kept %d keys, want a proper prefix", got)
	}
}

func TestWALGroupCommitBatches(t *testing.T) {
	cfg := testConfig(t)
	cfg.WALFlushBytes = 4096
	// Evicting a dirty page forces its own WAL flush; cache everything so
	// this test isolates the threshold-driven batching.
	cfg.CacheBytes = 4 << 20
	s := mustOpen(t, cfg)
	for i := 0; i < 1000; i++ {
		s.Set(fmt.Sprintf("key%04d", i), []byte("0123456789abcdef"), uint64(i))
	}
	st := s.Stats()
	if st.WALFlushes == 0 {
		t.Fatal("threshold crossings never flushed the group-commit buffer")
	}
	// ~37 bytes per record, 1000 records, 4 KiB batches → tens of
	// flushes; one syscall per record would be ≥1000.
	if st.WALFlushes > 100 {
		t.Fatalf("%d WAL flushes for 1000 records — group commit is not batching", st.WALFlushes)
	}
}
