package pagedstate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record layout (little-endian):
//
//	op      uint8   1 = set, 2 = delete
//	keyLen  uint16
//	valLen  uint32  0 for delete
//	version uint64  0 for delete
//	key     keyLen bytes
//	val     valLen bytes
//	crc     uint32  CRC-32 (IEEE) over everything above
//
// Records are appended to an in-memory group-commit buffer and hit the file
// in batches (walFlushBytes, or any explicit Sync/checkpoint), so a burst
// of Sets pays one write syscall, not one per record. Replay stops cleanly
// at the first torn or truncated record — the tail a crash can leave — and
// the store truncates the file back to the last whole record.
const (
	walOpSet    = 1
	walOpDelete = 2

	walRecordHeader = 1 + 2 + 4 + 8
	walCRCSize      = 4

	// defaultWALFlushBytes is the group-commit threshold.
	defaultWALFlushBytes = 64 << 10
)

// wal is the write-ahead log. It is not safe for concurrent use; the store
// serialises access.
type wal struct {
	f          *os.File
	buf        []byte // pending group-commit batch
	flushBytes int
	written    int64 // bytes durably in the file
	flushes    int64
}

func openWAL(path string, flushBytes int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagedstate: open wal: %w", err)
	}
	if flushBytes <= 0 {
		flushBytes = defaultWALFlushBytes
	}
	return &wal{f: f, flushBytes: flushBytes, buf: make([]byte, 0, flushBytes+4096)}, nil
}

// appendRecord encodes one operation into the group-commit buffer and
// flushes the batch once it crosses the threshold.
func (w *wal) appendRecord(op byte, key string, val []byte, version uint64) error {
	start := len(w.buf)
	var hdr [walRecordHeader]byte
	hdr[0] = op
	binary.LittleEndian.PutUint16(hdr[1:3], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(val)))
	binary.LittleEndian.PutUint64(hdr[7:15], version)
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, val...)
	crc := crc32.ChecksumIEEE(w.buf[start:])
	var tail [walCRCSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	w.buf = append(w.buf, tail[:]...)
	if len(w.buf) >= w.flushBytes {
		return w.flush()
	}
	return nil
}

// flush writes the pending batch to the file (group commit).
func (w *wal) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.f.WriteAt(w.buf, w.written)
	if err != nil {
		return fmt.Errorf("pagedstate: wal write: %w", err)
	}
	w.written += int64(n)
	w.buf = w.buf[:0]
	w.flushes++
	return nil
}

// reset truncates the log after a checkpoint has made its records
// redundant.
func (w *wal) reset() error {
	w.buf = w.buf[:0]
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("pagedstate: wal truncate: %w", err)
	}
	w.written = 0
	return nil
}

func (w *wal) close() error {
	if err := w.flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// walRecord is one decoded operation.
type walRecord struct {
	op      byte
	key     string
	val     []byte
	version uint64
}

// decodeWALRecord parses the record at the front of data. It returns the
// record, the bytes consumed, and ok=false when data holds no complete,
// intact record — the torn-tail signal that ends replay.
func decodeWALRecord(data []byte) (rec walRecord, n int, ok bool) {
	if len(data) < walRecordHeader+walCRCSize {
		return walRecord{}, 0, false
	}
	op := data[0]
	if op != walOpSet && op != walOpDelete {
		return walRecord{}, 0, false
	}
	keyLen := int(binary.LittleEndian.Uint16(data[1:3]))
	valLen := int(binary.LittleEndian.Uint32(data[3:7]))
	version := binary.LittleEndian.Uint64(data[7:15])
	total := walRecordHeader + keyLen + valLen + walCRCSize
	if total < walRecordHeader+walCRCSize || total > len(data) {
		return walRecord{}, 0, false
	}
	body := data[:total-walCRCSize]
	want := binary.LittleEndian.Uint32(data[total-walCRCSize : total])
	if crc32.ChecksumIEEE(body) != want {
		return walRecord{}, 0, false
	}
	key := string(data[walRecordHeader : walRecordHeader+keyLen])
	var val []byte
	if valLen > 0 {
		val = append([]byte(nil), data[walRecordHeader+keyLen:walRecordHeader+keyLen+valLen]...)
	}
	return walRecord{op: op, key: key, val: val, version: version}, total, true
}

// replayWAL reads the log file and invokes apply for every intact record in
// order. It returns the offset of the first torn byte (== file size on a
// clean log); the caller truncates there so a crashed tail never resurfaces.
func replayWAL(f *os.File, apply func(walRecord)) (int64, error) {
	data, err := io.ReadAll(io.NewSectionReader(f, 0, 1<<40))
	if err != nil {
		return 0, fmt.Errorf("pagedstate: wal read: %w", err)
	}
	off := 0
	for off < len(data) {
		rec, n, ok := decodeWALRecord(data[off:])
		if !ok {
			break
		}
		apply(rec)
		off += n
	}
	return int64(off), nil
}
