// Package pagedstate is a disk-backed, paged key-value state store
// implementing the chain.StateBackend contract, so every simulated chain
// can run 10M+ account populations with a bounded heap. It is the storage
// layer BLOCKBENCH's IOHeavy/Analytics macro workloads measure.
//
// Layout: world state lives in fixed-size slotted pages (page.go) reached
// through a hash directory of bucket → overflow-chain heads. A clock page
// cache with a configurable byte budget keeps the hot working set resident
// and recycles evicted frames' buffers, so steady-state operation allocates
// almost nothing. Every mutation is logged to a group-commit write-ahead
// log before it touches a page, and evicting a dirty page flushes the
// pending log batch first, so no page image ever reaches disk ahead of the
// records that produced it; replay at open is idempotent, so any crash-time
// mix of flushed and unflushed pages converges to the logged state, and the
// key count and Bloom filters are rebuilt from the surviving pages after
// replay. Once the log outgrows CheckpointWALBytes the store checkpoints
// automatically, so WAL growth stays bounded across arbitrarily long runs.
// A stack of Bloom filters (internal/bloom) fronts the directory and
// short-circuits reads of never-written keys — the SmallBank/YCSB read-miss
// path — without any page access.
//
// Durability scope: the store targets deterministic simulation runs, not a
// production ledger. Writes are durable at checkpoint granularity plus
// whatever the OS has accepted of the WAL (no fsync on the group-commit
// path), and a torn *page* write — unlike a torn WAL tail, which replay
// handles — is detected at open but not repaired.
//
// The chain.StateBackend interface has no error returns, so unrecoverable
// I/O failures on the hot path panic with a descriptive pagedstate error;
// a full disk is fatal to a benchmark run anyway.
package pagedstate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hammer/internal/bloom"
)

// Config parameterises a store.
type Config struct {
	// Dir is the directory holding pages.db, wal.log and meta.bin. It is
	// created if absent. Required.
	Dir string
	// PageSize is the fixed page size in bytes, 4096–16384 (default 8192).
	PageSize int
	// CacheBytes budgets the resident page cache (default 64 MiB). The
	// store's heap ceiling is CacheBytes plus the directory and Bloom
	// filters (a few bytes per key).
	CacheBytes int
	// ExpectedKeys sizes the hash directory and the first Bloom filter
	// (default 1M). Under-estimates degrade gracefully: chains grow longer
	// and further filters stack up.
	ExpectedKeys int
	// WALFlushBytes is the group-commit threshold (default 64 KiB).
	WALFlushBytes int
	// CheckpointWALBytes triggers an automatic checkpoint once the durable
	// log plus the pending batch crosses this size, bounding WAL growth
	// during long runs (default 64 MiB; negative disables).
	CheckpointWALBytes int
	// DisableBloom turns the negative-read filter off (ablation).
	DisableBloom bool
}

func (c *Config) fillDefaults() error {
	if c.Dir == "" {
		return fmt.Errorf("pagedstate: Config.Dir is required")
	}
	if c.PageSize == 0 {
		c.PageSize = 8192
	}
	if c.PageSize < 4096 || c.PageSize > 16384 {
		return fmt.Errorf("pagedstate: PageSize %d out of [4096,16384]", c.PageSize)
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.ExpectedKeys <= 0 {
		c.ExpectedKeys = 1 << 20
	}
	if c.CheckpointWALBytes == 0 {
		c.CheckpointWALBytes = 64 << 20
	}
	return nil
}

// Stats is a point-in-time view of the store's counters.
type Stats struct {
	Gets, Sets, Deletes int64
	// CacheHits/CacheMisses count page-cache lookups; BloomNegatives are
	// reads answered "absent" by the filter without any page access.
	CacheHits, CacheMisses, BloomNegatives int64
	// Evictions counts dirty-or-clean frame recycles; Compactions counts
	// in-page garbage collections.
	Evictions, Compactions int64
	// PagesAllocated is the page-file length in pages; ResidentPages the
	// frames currently cached; CacheBudgetBytes the configured ceiling.
	PagesAllocated, ResidentPages int
	CacheBudgetBytes              int
	// WALBytes is the durable log length; WALFlushes the group commits;
	// Checkpoints the page/meta/log reconciliations (explicit or automatic).
	WALBytes    int64
	WALFlushes  int64
	Checkpoints int64
	// LiveKeys mirrors Len().
	LiveKeys int
}

// HitRate is CacheHits / (CacheHits+CacheMisses), 0 when cold.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Store is the paged state store. It satisfies chain.StateBackend; all
// methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	cfg      Config
	dir      []uint32 // bucket → head page, nilPage when empty
	cache    *pageCache
	wal      *wal
	pageFile *os.File
	nextPage uint32
	count    int
	scratch  []byte // compaction buffer, one page
	// blooms is the scalable negative-read filter: adds go to the newest
	// filter, lookups consult newest→oldest. Deletes leave the filters
	// untouched (stale positives only cost a page probe).
	blooms   []*bloom.Filter
	bloomCap int
	closed   bool

	gets, sets, deletes, bloomNeg int64
	compactions, checkpoints      int64
}

const (
	metaMagic         = 0x4850534d // "HPSM"
	metaFormatVersion = 1
	// bloomFPRate is the per-filter false-positive target.
	bloomFPRate = 0.01
)

// bucketsFor sizes the directory: ~128 keys per bucket keeps the average
// overflow chain at one page, rounded up to a power of two.
func bucketsFor(expectedKeys int) int {
	n := 256
	for n*128 < expectedKeys && n < 1<<26 {
		n <<= 1
	}
	return n
}

// Open creates or reopens the store in cfg.Dir. Reopening replays any WAL
// tail left by a crash (stopping cleanly at a torn record), rebuilds the
// key count and Bloom filters from the surviving pages, and then
// checkpoints, so an opened store always starts from a clean log.
func Open(cfg Config) (*Store, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("pagedstate: mkdir: %w", err)
	}
	pageFile, err := os.OpenFile(filepath.Join(cfg.Dir, "pages.db"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagedstate: open pages: %w", err)
	}
	s := &Store{
		cfg:      cfg,
		pageFile: pageFile,
		cache:    newPageCache(pageFile, cfg.PageSize, cfg.CacheBytes),
		scratch:  make([]byte, cfg.PageSize),
	}
	if err := s.loadMeta(); err != nil {
		pageFile.Close()
		return nil, err
	}
	if s.dir == nil { // fresh store
		s.dir = make([]uint32, bucketsFor(cfg.ExpectedKeys))
		for i := range s.dir {
			s.dir[i] = nilPage
		}
		s.resetBloom(cfg.ExpectedKeys)
	}
	s.wal, err = openWAL(filepath.Join(cfg.Dir, "wal.log"), cfg.WALFlushBytes)
	if err != nil {
		pageFile.Close()
		return nil, err
	}
	// No page image may reach disk ahead of the log records that produced
	// it: eviction write-backs flush the pending WAL batch first.
	s.cache.beforeWriteBack = s.wal.flush
	walInfo, err := s.wal.f.Stat()
	if err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("pagedstate: stat wal: %w", err)
	}
	tail, err := replayWAL(s.wal.f, func(rec walRecord) {
		switch rec.op {
		case walOpSet:
			s.set(rec.key, rec.val, rec.version)
		case walOpDelete:
			s.delete(rec.key)
		}
	})
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	if err := s.wal.f.Truncate(tail); err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("pagedstate: truncate torn wal: %w", err)
	}
	s.wal.written = tail
	if walInfo.Size() > 0 {
		// Crash recovery: the pages may already contain logged writes that
		// were evicted and flushed before the crash, so replay alone cannot
		// maintain the key count or the Bloom filters (a replayed Set that
		// finds its key present takes the update path). The surviving pages
		// are the ground truth — rebuild both from a full scan, then
		// checkpoint so the next open starts clean.
		s.rebuildIndex()
		if err := s.checkpoint(); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	return s, nil
}

// rebuildIndex recomputes the live-key count and repopulates the Bloom
// filters from a scan of every reachable page. Caller holds s.mu (or is
// single-threaded in Open).
func (s *Store) rebuildIndex() {
	s.count = 0
	s.resetBloom(s.cfg.ExpectedKeys)
	s.iterate(func(key string, _ []byte, _ uint64) {
		s.count++
		s.bloomAdd(key)
	})
}

func (s *Store) closeFiles() {
	if s.wal != nil {
		s.wal.f.Close()
	}
	s.pageFile.Close()
}

func (s *Store) resetBloom(expected int) {
	if s.cfg.DisableBloom {
		return
	}
	if expected < 1024 {
		expected = 1024
	}
	s.blooms = []*bloom.Filter{bloom.New(expected, bloomFPRate)}
	s.bloomCap = expected
}

// bucketOf hashes a key to its directory bucket (inline FNV-1a: the hot
// path must not allocate a byte-slice copy of every key).
func (s *Store) bucketOf(key string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & uint32(len(s.dir)-1)
}

// fatal wraps an unrecoverable I/O error. The StateBackend interface has
// no error returns, so the hot path surfaces disk failure by panicking.
func fatal(err error) {
	panic(fmt.Sprintf("pagedstate: unrecoverable store error: %v", err))
}

// Get implements chain.StateBackend.
func (s *Store) Get(key string) (val []byte, version uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if !s.mayContain(key) {
		s.bloomNeg++
		return nil, 0, false
	}
	id := s.dir[s.bucketOf(key)]
	for id != nilPage {
		fr, err := s.cache.get(id, false)
		if err != nil {
			fatal(err)
		}
		p := page{buf: fr.buf}
		if i := p.find(key); i >= 0 {
			v, ver := p.cellValue(i)
			// Copy out: the frame's buffer is recycled on eviction.
			return append([]byte(nil), v...), ver, true
		}
		id = p.next()
	}
	return nil, 0, false
}

// Set implements chain.StateBackend.
func (s *Store) Set(key string, val []byte, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets++
	if err := s.wal.appendRecord(walOpSet, key, val, version); err != nil {
		fatal(err)
	}
	s.set(key, val, version)
	s.maybeCheckpoint()
}

// set applies a write to the pages (shared by Set, WAL replay and snapshot
// load, which log — or don't — at their own layer).
func (s *Store) set(key string, val []byte, version uint64) {
	maxCell := s.cfg.PageSize - pageHeaderSize - slotSize
	if len(key) > 0xFFFF || len(val) > 0xFFFF || cellSize(len(key), len(val)) > maxCell {
		fatal(fmt.Errorf("entry %q: key %d + value %d bytes exceeds page capacity %d", key, len(key), len(val), maxCell-cellHeaderSize))
	}
	bucket := s.bucketOf(key)
	var fitID = nilPage
	id := s.dir[bucket]
	for id != nilPage {
		fr, err := s.cache.get(id, false)
		if err != nil {
			fatal(err)
		}
		p := page{buf: fr.buf}
		if i := p.find(key); i >= 0 {
			if p.update(i, key, val, version, s.scratch) {
				fr.dirty = true
				return
			}
			// The longer value no longer fits here: delete and reinsert.
			p.remove(i)
			fr.dirty = true
			s.count--
			break
		}
		if fitID == nilPage && p.fits(len(key), len(val)) {
			fitID = id
		}
		id = p.next()
	}
	s.insertNew(bucket, fitID, key, val, version)
	s.count++
	s.bloomAdd(key)
}

// insertNew places a key known to be absent, into fitID when the walk found
// room there, else into a freshly allocated page linked at the chain head.
func (s *Store) insertNew(bucket uint32, fitID uint32, key string, val []byte, version uint64) {
	if fitID != nilPage {
		fr, err := s.cache.get(fitID, false)
		if err != nil {
			fatal(err)
		}
		p := page{buf: fr.buf}
		if p.garbage() > 0 && p.freeSpace() < slotSize+cellSize(len(key), len(val)) {
			s.compactions++
		}
		p.insert(key, val, version, s.scratch)
		fr.dirty = true
		return
	}
	newID := s.nextPage
	s.nextPage++
	fr, err := s.cache.get(newID, true)
	if err != nil {
		fatal(err)
	}
	p := page{buf: fr.buf}
	p.setNext(s.dir[bucket])
	p.insert(key, val, version, s.scratch)
	fr.dirty = true
	s.dir[bucket] = newID
}

// Delete implements chain.StateBackend.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deletes++
	if !s.mayContain(key) {
		s.bloomNeg++
		return
	}
	if err := s.wal.appendRecord(walOpDelete, key, nil, 0); err != nil {
		fatal(err)
	}
	s.delete(key)
	s.maybeCheckpoint()
}

// maybeCheckpoint bounds WAL growth during long runs: once the log (durable
// plus pending) outgrows the configured budget, fold it into the pages.
// Caller holds s.mu.
func (s *Store) maybeCheckpoint() {
	if s.cfg.CheckpointWALBytes < 0 {
		return
	}
	if s.wal.written+int64(len(s.wal.buf)) >= int64(s.cfg.CheckpointWALBytes) {
		if err := s.checkpoint(); err != nil {
			fatal(err)
		}
	}
}

func (s *Store) delete(key string) {
	id := s.dir[s.bucketOf(key)]
	for id != nilPage {
		fr, err := s.cache.get(id, false)
		if err != nil {
			fatal(err)
		}
		p := page{buf: fr.buf}
		if i := p.find(key); i >= 0 {
			p.remove(i)
			fr.dirty = true
			s.count--
			return
		}
		id = p.next()
	}
}

// Len implements chain.StateBackend.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Keys implements chain.StateBackend: every live key in ascending order.
// This scans the whole store — it serves audits, conservation checks and
// tests, not the hot path.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, s.count)
	s.iterate(func(key string, _ []byte, _ uint64) {
		keys = append(keys, key)
	})
	sort.Strings(keys)
	return keys
}

// iterate visits every live entry in directory order. Value bytes alias the
// page buffer and are only valid within the callback. Caller holds s.mu.
func (s *Store) iterate(fn func(key string, val []byte, version uint64)) {
	for _, head := range s.dir {
		id := head
		for id != nilPage {
			fr, err := s.cache.get(id, false)
			if err != nil {
				fatal(err)
			}
			fr.pinned = true
			p := page{buf: fr.buf}
			for i, n := 0, p.nslots(); i < n; i++ {
				if _, cl := p.slot(i); cl == 0 {
					continue
				}
				v, ver := p.cellValue(i)
				fn(string(p.cellKey(i)), v, ver)
			}
			fr.pinned = false
			id = p.next()
		}
	}
}

func (s *Store) mayContain(key string) bool {
	if s.cfg.DisableBloom {
		return true
	}
	for i := len(s.blooms) - 1; i >= 0; i-- {
		if s.blooms[i].ContainsString(key) {
			return true
		}
	}
	return false
}

func (s *Store) bloomAdd(key string) {
	if s.cfg.DisableBloom {
		return
	}
	top := s.blooms[len(s.blooms)-1]
	if top.Count() >= uint64(s.bloomCap) {
		// Stack a filter 4× the last capacity: lookups stay O(filters)
		// while the false-positive rate of each layer holds its target.
		s.bloomCap *= 4
		top = bloom.New(s.bloomCap, bloomFPRate)
		s.blooms = append(s.blooms, top)
	}
	top.AddString(key)
}

// Sync forces the pending WAL batch to the file (an explicit group commit).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.flush()
}

// Checkpoint makes pages and meta self-consistent on disk and truncates the
// WAL: flush the log, write back every dirty page, persist the directory
// and Bloom filters, then reset the log.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoint()
}

func (s *Store) checkpoint() error {
	if err := s.wal.flush(); err != nil {
		return err
	}
	if err := s.cache.flushAll(); err != nil {
		return err
	}
	if err := s.saveMeta(); err != nil {
		return err
	}
	s.checkpoints++
	return s.wal.reset()
}

// Close checkpoints and releases the files. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.checkpoint()
	if werr := s.wal.close(); err == nil {
		err = werr
	}
	if perr := s.pageFile.Close(); err == nil {
		err = perr
	}
	return err
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Gets: s.gets, Sets: s.sets, Deletes: s.deletes,
		CacheHits: s.cache.hits, CacheMisses: s.cache.misses,
		BloomNegatives:   s.bloomNeg,
		Evictions:        s.cache.evictions,
		Compactions:      s.compactions,
		PagesAllocated:   int(s.nextPage),
		ResidentPages:    s.cache.resident(),
		CacheBudgetBytes: s.cfg.CacheBytes,
		WALBytes:         s.wal.written + int64(len(s.wal.buf)),
		WALFlushes:       s.wal.flushes,
		Checkpoints:      s.checkpoints,
		LiveKeys:         s.count,
	}
}

// saveMeta atomically persists the directory, allocation cursor, key count
// and Bloom filters (meta.bin.tmp + rename).
func (s *Store) saveMeta() error {
	var out []byte
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		out = append(out, u32[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		out = append(out, u64[:]...)
	}
	put32(metaMagic)
	put32(metaFormatVersion)
	put32(uint32(s.cfg.PageSize))
	put32(uint32(len(s.dir)))
	put32(s.nextPage)
	put64(uint64(s.count))
	put32(uint32(s.bloomCap))
	put32(uint32(len(s.blooms)))
	for _, f := range s.blooms {
		blob, err := f.MarshalBinary()
		if err != nil {
			return fmt.Errorf("pagedstate: marshal bloom: %w", err)
		}
		put32(uint32(len(blob)))
		out = append(out, blob...)
	}
	for _, head := range s.dir {
		put32(head)
	}
	put32(crc32.ChecksumIEEE(out))

	path := filepath.Join(s.cfg.Dir, "meta.bin")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("pagedstate: write meta: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("pagedstate: commit meta: %w", err)
	}
	return nil
}

// loadMeta restores the directory and filters; a missing file means a
// fresh store (s.dir stays nil for Open to initialise).
func (s *Store) loadMeta() error {
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, "meta.bin"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("pagedstate: read meta: %w", err)
	}
	if len(data) < 4+4+4+4+4+8+4+4+4 {
		return fmt.Errorf("pagedstate: meta truncated to %d bytes", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("pagedstate: meta checksum mismatch")
	}
	off := 0
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	if get32() != metaMagic {
		return fmt.Errorf("pagedstate: meta magic mismatch")
	}
	if v := get32(); v != metaFormatVersion {
		return fmt.Errorf("pagedstate: meta format %d unsupported", v)
	}
	if ps := int(get32()); ps != s.cfg.PageSize {
		return fmt.Errorf("pagedstate: store has %d-byte pages, config wants %d", ps, s.cfg.PageSize)
	}
	nBuckets := int(get32())
	s.nextPage = get32()
	s.count = int(binary.LittleEndian.Uint64(body[off:]))
	off += 8
	s.bloomCap = int(get32())
	nBlooms := int(get32())
	if nBuckets <= 0 || nBuckets > 1<<26 || nBlooms > 64 {
		return fmt.Errorf("pagedstate: meta inconsistent (%d buckets, %d blooms)", nBuckets, nBlooms)
	}
	s.blooms = nil
	for i := 0; i < nBlooms; i++ {
		if off+4 > len(body) {
			return fmt.Errorf("pagedstate: meta bloom %d truncated", i)
		}
		bl := int(get32())
		if off+bl > len(body) {
			return fmt.Errorf("pagedstate: meta bloom %d truncated", i)
		}
		f, err := bloom.UnmarshalBinary(body[off : off+bl])
		if err != nil {
			return fmt.Errorf("pagedstate: meta bloom %d: %w", i, err)
		}
		off += bl
		s.blooms = append(s.blooms, f)
	}
	if off+4*nBuckets != len(body) {
		return fmt.Errorf("pagedstate: meta directory length mismatch")
	}
	s.dir = make([]uint32, nBuckets)
	for i := range s.dir {
		s.dir[i] = get32()
	}
	if s.cfg.DisableBloom {
		s.blooms = nil
	} else if len(s.blooms) == 0 {
		s.resetBloom(s.cfg.ExpectedKeys)
	}
	return nil
}
