package pagedstate

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Snapshot format: a point-in-time, store-independent stream of live
// entries, for warm-starting a run without replaying the population phase.
//
//	magic   uint32  "HPSS"
//	version uint32  1
//	count   uint64  entries
//	entries count × [keyLen uint16][valLen uint16][version uint64][key][val]
//	crc     uint32  CRC-32 (IEEE) over everything above
//
// Snapshots are portable across page sizes, cache budgets and directory
// sizes — load is a bulk insert, so a snapshot taken by a huge-cache writer
// warm-starts a tiny-cache reader.
const (
	snapMagic         = 0x48505353 // "HPSS"
	snapFormatVersion = 1
)

// crcWriter tees writes through a running CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// SaveSnapshot writes every live entry to path (tmp + rename, so a crashed
// save never leaves a half snapshot behind).
func (s *Store) SaveSnapshot(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.wal.flush(); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("pagedstate: create snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcWriter{w: bw}

	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapFormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(s.count))
	if _, err := cw.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("pagedstate: write snapshot: %w", err)
	}
	var werr error
	var entry [cellHeaderSize]byte
	s.iterate(func(key string, val []byte, version uint64) {
		if werr != nil {
			return
		}
		binary.LittleEndian.PutUint16(entry[0:2], uint16(len(key)))
		binary.LittleEndian.PutUint16(entry[2:4], uint16(len(val)))
		binary.LittleEndian.PutUint64(entry[4:12], version)
		if _, err := cw.Write(entry[:]); err != nil {
			werr = err
			return
		}
		if _, err := io.WriteString(cw, key); err != nil {
			werr = err
			return
		}
		if _, err := cw.Write(val); err != nil {
			werr = err
		}
	})
	if werr != nil {
		f.Close()
		return fmt.Errorf("pagedstate: write snapshot: %w", werr)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		f.Close()
		return fmt.Errorf("pagedstate: write snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("pagedstate: flush snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pagedstate: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("pagedstate: commit snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot bulk-inserts a snapshot into the store, which must be empty,
// then checkpoints so the loaded state is durable without a WAL replay of
// millions of records. The whole file is integrity-checked before the first
// entry is applied.
func (s *Store) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("pagedstate: read snapshot: %w", err)
	}
	count, err := validateSnapshot(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 0 {
		return fmt.Errorf("pagedstate: snapshot load into non-empty store (%d keys)", s.count)
	}
	// Bulk path: apply straight to pages — the trailing checkpoint makes
	// the load durable, so logging every entry would only double the I/O.
	off := 16
	for i := uint64(0); i < count; i++ {
		kl := int(binary.LittleEndian.Uint16(data[off : off+2]))
		vl := int(binary.LittleEndian.Uint16(data[off+2 : off+4]))
		ver := binary.LittleEndian.Uint64(data[off+4 : off+12])
		key := string(data[off+cellHeaderSize : off+cellHeaderSize+kl])
		val := data[off+cellHeaderSize+kl : off+cellHeaderSize+kl+vl]
		s.set(key, val, ver)
		off += cellHeaderSize + kl + vl
	}
	return s.checkpoint()
}

// validateSnapshot structurally checks a snapshot image and returns its
// entry count.
func validateSnapshot(data []byte) (uint64, error) {
	if len(data) < 20 {
		return 0, fmt.Errorf("pagedstate: snapshot truncated to %d bytes", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("pagedstate: snapshot checksum mismatch")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != snapMagic {
		return 0, fmt.Errorf("pagedstate: snapshot magic mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != snapFormatVersion {
		return 0, fmt.Errorf("pagedstate: snapshot format %d unsupported", v)
	}
	count := binary.LittleEndian.Uint64(data[8:16])
	off := 16
	for i := uint64(0); i < count; i++ {
		if off+cellHeaderSize > len(body) {
			return 0, fmt.Errorf("pagedstate: snapshot entry %d truncated", i)
		}
		kl := int(binary.LittleEndian.Uint16(data[off : off+2]))
		vl := int(binary.LittleEndian.Uint16(data[off+2 : off+4]))
		off += cellHeaderSize + kl + vl
		if off > len(body) {
			return 0, fmt.Errorf("pagedstate: snapshot entry %d overruns file", i)
		}
	}
	if off != len(body) {
		return 0, fmt.Errorf("pagedstate: snapshot has %d trailing bytes", len(body)-off)
	}
	return count, nil
}
