package pagedstate

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Dir:          t.TempDir(),
		PageSize:     4096,
		CacheBytes:   64 << 10, // 16 frames: forces eviction in every test
		ExpectedKeys: 1024,
	}
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestBasicCRUD(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("Get on empty store reported ok")
	}
	s.Set("a", []byte("alpha"), 3)
	s.Set("b", []byte("beta"), 4)
	if v, ver, ok := s.Get("a"); !ok || string(v) != "alpha" || ver != 3 {
		t.Fatalf("Get(a) = %q v%d ok=%v", v, ver, ok)
	}
	s.Set("a", []byte("ALPHA"), 9) // same length: in-place patch
	if v, ver, ok := s.Get("a"); !ok || string(v) != "ALPHA" || ver != 9 {
		t.Fatalf("after update Get(a) = %q v%d ok=%v", v, ver, ok)
	}
	s.Set("a", []byte("much longer value than before"), 10) // resize path
	if v, _, ok := s.Get("a"); !ok || string(v) != "much longer value than before" {
		t.Fatalf("after resize Get(a) = %q ok=%v", v, ok)
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	s.Delete("a")
	if _, _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len after delete = %d, want 1", n)
	}
	if keys := s.Keys(); !reflect.DeepEqual(keys, []string{"b"}) {
		t.Fatalf("Keys = %v", keys)
	}
}

// TestReferenceModel drives the store and a plain map through an identical
// random operation sequence and diffs them continuously — the same oracle
// style the invariant subsystem uses.
func TestReferenceModel(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	rng := rand.New(rand.NewSource(7))
	type vv struct {
		val string
		ver uint64
	}
	model := make(map[string]vv)
	keyOf := func(i int) string { return fmt.Sprintf("acct%05d", i) }

	const ops = 30000
	const keySpace = 2000
	for op := 0; op < ops; op++ {
		k := keyOf(rng.Intn(keySpace))
		switch rng.Intn(10) {
		case 0: // delete
			delete(model, k)
			s.Delete(k)
		case 1, 2, 3: // read
			v, ver, ok := s.Get(k)
			want, wok := model[k]
			if ok != wok || (ok && (string(v) != want.val || ver != want.ver)) {
				t.Fatalf("op %d: Get(%s) = %q v%d ok=%v, model %q v%d ok=%v",
					op, k, v, ver, ok, want.val, want.ver, wok)
			}
		default: // write, variable-length values exercise resize/compaction
			val := fmt.Sprintf("balance=%d;pad=%s", rng.Intn(1_000_000),
				"x"[:0]+fmt.Sprintf("%0*d", rng.Intn(40), 0))
			ver := uint64(op)
			model[k] = vv{val: val, ver: ver}
			s.Set(k, []byte(val), ver)
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	wantKeys := make([]string, 0, len(model))
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	if got := s.Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("Keys diverged: got %d keys, want %d", len(got), len(wantKeys))
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Errorf("test never evicted (cache %d frames) — shrink the budget", st.CacheBudgetBytes/4096)
	}
}

// TestReopenPersists closes a populated store and reopens it: everything
// must come back, including the key count and Bloom filters from meta.
func TestReopenPersists(t *testing.T) {
	cfg := testConfig(t)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("key%05d", i), []byte(fmt.Sprintf("val%d", i)), uint64(i))
	}
	s.Delete("key00000")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, cfg)
	if got := s2.Len(); got != n-1 {
		t.Fatalf("reopened Len = %d, want %d", got, n-1)
	}
	if _, _, ok := s2.Get("key00000"); ok {
		t.Fatal("deleted key resurrected by reopen")
	}
	if v, ver, ok := s2.Get("key04999"); !ok || string(v) != "val4999" || ver != 4999 {
		t.Fatalf("reopened Get = %q v%d ok=%v", v, ver, ok)
	}
	// The persisted bloom must still gate never-written keys.
	st0 := s2.Stats()
	if _, _, ok := s2.Get("never-written-key"); ok {
		t.Fatal("phantom key")
	}
	if st := s2.Stats(); st.BloomNegatives != st0.BloomNegatives+1 {
		t.Errorf("miss read did not short-circuit through the bloom filter (neg %d -> %d)",
			st0.BloomNegatives, st.BloomNegatives)
	}
}

func TestBloomGateCounts(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	for i := 0; i < 1000; i++ {
		s.Set(fmt.Sprintf("present%04d", i), []byte("v"), 1)
	}
	st0 := s.Stats()
	misses := 0
	for i := 0; i < 1000; i++ {
		if _, _, ok := s.Get(fmt.Sprintf("absent%04d", i)); ok {
			t.Fatalf("absent key %d present", i)
		}
		misses++
	}
	st := s.Stats()
	gated := st.BloomNegatives - st0.BloomNegatives
	// At a 1% per-filter false-positive target, nearly all of the 1000
	// misses must be answered without touching a page.
	if gated < 900 {
		t.Errorf("bloom gated only %d of %d negative reads", gated, misses)
	}
}

func TestDisableBloom(t *testing.T) {
	cfg := testConfig(t)
	cfg.DisableBloom = true
	s := mustOpen(t, cfg)
	s.Set("k", []byte("v"), 1)
	if _, _, ok := s.Get("absent"); ok {
		t.Fatal("phantom key")
	}
	if st := s.Stats(); st.BloomNegatives != 0 {
		t.Fatalf("disabled bloom still gated %d reads", st.BloomNegatives)
	}
}

// TestTinyCacheLargePopulation proves correctness when the working set is
// far larger than the cache: every page access churns through eviction.
func TestTinyCacheLargePopulation(t *testing.T) {
	cfg := testConfig(t)
	cfg.CacheBytes = 1 // clamped to the 8-frame floor
	s := mustOpen(t, cfg)
	const n = 20000
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("acct%06d", i), []byte(fmt.Sprintf("balance-%06d", i)), uint64(i))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	rng := rand.New(rand.NewSource(3))
	for probe := 0; probe < 2000; probe++ {
		i := rng.Intn(n)
		v, ver, ok := s.Get(fmt.Sprintf("acct%06d", i))
		if !ok || string(v) != fmt.Sprintf("balance-%06d", i) || ver != uint64(i) {
			t.Fatalf("probe %d: Get(acct%06d) = %q v%d ok=%v", probe, i, v, ver, ok)
		}
	}
	st := s.Stats()
	if st.ResidentPages > 8 {
		t.Fatalf("cache exceeded its budget: %d frames resident", st.ResidentPages)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions at 8 frames over 20k keys")
	}
}

// TestAutoCheckpointBoundsWAL proves a long run cannot grow the log without
// bound: the store folds the WAL into the pages whenever it crosses the
// configured budget, and the data survives the mid-run checkpoints.
func TestAutoCheckpointBoundsWAL(t *testing.T) {
	cfg := testConfig(t)
	cfg.WALFlushBytes = 1024
	cfg.CheckpointWALBytes = 8 << 10
	s := mustOpen(t, cfg)
	const n = 3000
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("key%05d", i), []byte(fmt.Sprintf("val%d", i)), uint64(i))
		if st := s.Stats(); st.WALBytes >= int64(cfg.CheckpointWALBytes) {
			t.Fatalf("op %d: WAL at %d bytes exceeds the %d-byte checkpoint budget", i, st.WALBytes, cfg.CheckpointWALBytes)
		}
	}
	st := s.Stats()
	if st.Checkpoints == 0 {
		t.Fatalf("no automatic checkpoint over %d sets with an %d-byte budget", n, cfg.CheckpointWALBytes)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		k := fmt.Sprintf("key%05d", i)
		v, ver, ok := s.Get(k)
		if !ok || string(v) != fmt.Sprintf("val%d", i) || ver != uint64(i) {
			t.Fatalf("after auto checkpoints Get(%s) = %q v%d ok=%v", k, v, ver, ok)
		}
	}

	// A negative budget disables the trigger entirely.
	off := testConfig(t)
	off.CheckpointWALBytes = -1
	s2 := mustOpen(t, off)
	for i := 0; i < n; i++ {
		s2.Set(fmt.Sprintf("key%05d", i), []byte("v"), uint64(i))
	}
	if st := s2.Stats(); st.Checkpoints != 0 {
		t.Fatalf("disabled auto checkpoint still fired %d times", st.Checkpoints)
	}
}

func TestVersionZeroValueAndEmptyValue(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	s.Set("empty", []byte{}, 0)
	v, ver, ok := s.Get("empty")
	if !ok || len(v) != 0 || ver != 0 {
		t.Fatalf("Get(empty) = %q v%d ok=%v, want present empty value at version 0", v, ver, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i%100)
				s.Set(k, []byte(fmt.Sprintf("v%d", i)), uint64(i))
				s.Get(k)
				if i%10 == 0 {
					s.Len()
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with no Dir succeeded")
	}
	if _, err := Open(Config{Dir: t.TempDir(), PageSize: 1024}); err == nil {
		t.Fatal("Open with undersized pages succeeded")
	}
	cfg := testConfig(t)
	s := mustOpen(t, cfg)
	s.Set("k", []byte("v"), 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.PageSize = 16384
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open with mismatched page size succeeded")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	s := mustOpen(t, cfg)
	const n = 3000
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("acct%05d", i), []byte(fmt.Sprintf("bal=%d", i*i)), uint64(i))
	}
	snap := filepath.Join(t.TempDir(), "state.snap")
	if err := s.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh store with a different geometry: snapshots are
	// portable across page size and cache budget.
	cfg2 := Config{Dir: t.TempDir(), PageSize: 16384, CacheBytes: 1, ExpectedKeys: 64}
	s2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != n {
		t.Fatalf("loaded Len = %d, want %d", s2.Len(), n)
	}
	for _, i := range []int{0, 1, 1499, n - 1} {
		k := fmt.Sprintf("acct%05d", i)
		v, ver, ok := s2.Get(k)
		if !ok || string(v) != fmt.Sprintf("bal=%d", i*i) || ver != uint64(i) {
			t.Fatalf("Get(%s) = %q v%d ok=%v", k, v, ver, ok)
		}
	}
	if !reflect.DeepEqual(s.Keys(), s2.Keys()) {
		t.Fatal("snapshot load changed the key set")
	}
	// Refusing to load over existing state keeps warm-start semantics
	// unambiguous.
	if err := s2.LoadSnapshot(snap); err == nil {
		t.Fatal("LoadSnapshot into non-empty store succeeded")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte("v"), 1)
	}
	snap := filepath.Join(t.TempDir(), "state.snap")
	if err := s.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []struct {
		name string
		f    func([]byte) []byte
	}{
		{"flip byte", func(b []byte) []byte { b = append([]byte(nil), b...); b[20] ^= 0xFF; return b }},
		{"truncate", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		bad := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(bad, mutate.f(data), 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := mustOpen(t, testConfig(t))
		if err := s2.LoadSnapshot(bad); err == nil {
			t.Errorf("%s: corrupted snapshot loaded without error", mutate.name)
		}
		if s2.Len() != 0 {
			t.Errorf("%s: corrupted snapshot partially applied (%d keys)", mutate.name, s2.Len())
		}
	}
}
