package pagedstate

import (
	"encoding/binary"
	"fmt"
)

// Page layout (all integers little-endian). Pages are fixed-size slotted
// pages in the charvel_db idiom: a small header, a slot array growing up
// from the header, and cells growing down from the end of the page.
//
//	offset 0  next       uint32  overflow-chain successor (nilPage = none)
//	offset 4  nslots     uint16  live slot count
//	offset 6  cellStart  uint16  lowest byte used by cell data
//	offset 8  garbage    uint16  dead cell bytes reclaimable by compaction
//	offset 10 reserved   uint16  zero
//	offset 12 slots      nslots × {cellOff uint16, cellLen uint16}
//
// A cell is [keyLen uint16][valLen uint16][version uint64][key][val]. Slot
// order within a page carries no meaning — Keys() sorts globally — so
// deletion swaps the last slot into the vacated index.
const (
	pageHeaderSize = 12
	slotSize       = 4
	cellHeaderSize = 12

	// nilPage terminates an overflow chain. Page IDs index the page file
	// directly (offset = id × pageSize), so 0 is a valid page.
	nilPage = ^uint32(0)
)

// page is a view over one fixed-size buffer. The methods never allocate;
// compaction borrows a scratch buffer from the store's frame pool.
type page struct {
	buf []byte
}

func (p page) next() uint32      { return binary.LittleEndian.Uint32(p.buf[0:4]) }
func (p page) setNext(id uint32) { binary.LittleEndian.PutUint32(p.buf[0:4], id) }

func (p page) nslots() int       { return int(binary.LittleEndian.Uint16(p.buf[4:6])) }
func (p page) setNslots(n int)   { binary.LittleEndian.PutUint16(p.buf[4:6], uint16(n)) }
func (p page) cellStart() int    { return int(binary.LittleEndian.Uint16(p.buf[6:8])) }
func (p page) setCellStart(o int) { binary.LittleEndian.PutUint16(p.buf[6:8], uint16(o)) }
func (p page) garbage() int      { return int(binary.LittleEndian.Uint16(p.buf[8:10])) }
func (p page) setGarbage(g int)  { binary.LittleEndian.PutUint16(p.buf[8:10], uint16(g)) }

// init formats the buffer as an empty page.
func (p page) init() {
	for i := 0; i < pageHeaderSize; i++ {
		p.buf[i] = 0
	}
	p.setNext(nilPage)
	p.setCellStart(len(p.buf))
}

func (p page) slotOff(i int) int { return pageHeaderSize + i*slotSize }

func (p page) slot(i int) (cellOff, cellLen int) {
	o := p.slotOff(i)
	return int(binary.LittleEndian.Uint16(p.buf[o : o+2])), int(binary.LittleEndian.Uint16(p.buf[o+2 : o+4]))
}

func (p page) setSlot(i, cellOff, cellLen int) {
	o := p.slotOff(i)
	binary.LittleEndian.PutUint16(p.buf[o:o+2], uint16(cellOff))
	binary.LittleEndian.PutUint16(p.buf[o+2:o+4], uint16(cellLen))
}

// cellKey returns the key bytes of slot i, aliasing the page buffer.
func (p page) cellKey(i int) []byte {
	off, _ := p.slot(i)
	kl := int(binary.LittleEndian.Uint16(p.buf[off : off+2]))
	return p.buf[off+cellHeaderSize : off+cellHeaderSize+kl]
}

// cellValue returns the value bytes and version of slot i, aliasing the
// page buffer.
func (p page) cellValue(i int) ([]byte, uint64) {
	off, _ := p.slot(i)
	kl := int(binary.LittleEndian.Uint16(p.buf[off : off+2]))
	vl := int(binary.LittleEndian.Uint16(p.buf[off+2 : off+4]))
	ver := binary.LittleEndian.Uint64(p.buf[off+4 : off+12])
	vo := off + cellHeaderSize + kl
	return p.buf[vo : vo+vl], ver
}

// find returns the slot index holding key, or -1.
func (p page) find(key string) int {
	for i, n := 0, p.nslots(); i < n; i++ {
		k := p.cellKey(i)
		if string(k) == key { // no alloc: compiler-recognised comparison
			return i
		}
	}
	return -1
}

// freeSpace is the contiguous gap between the slot array and the cells.
func (p page) freeSpace() int {
	return p.cellStart() - (pageHeaderSize + p.nslots()*slotSize)
}

// cellSize is the cell footprint of an entry.
func cellSize(keyLen, valLen int) int { return cellHeaderSize + keyLen + valLen }

// fits reports whether a fresh insert of the given entry can succeed,
// counting reclaimable garbage (an insert may first compact).
func (p page) fits(keyLen, valLen int) bool {
	return p.freeSpace()+p.garbage() >= slotSize+cellSize(keyLen, valLen)
}

// insert adds a new entry. The caller has checked fits() and that the key
// is absent; insert compacts first when the contiguous gap alone is too
// small. scratch must be a buffer of the same size as the page.
func (p page) insert(key string, val []byte, version uint64, scratch []byte) {
	need := slotSize + cellSize(len(key), len(val))
	if p.freeSpace() < need {
		p.compact(scratch)
	}
	n := p.nslots()
	cl := cellSize(len(key), len(val))
	off := p.cellStart() - cl
	p.writeCell(off, key, val, version)
	p.setCellStart(off)
	p.setSlot(n, off, cl)
	p.setNslots(n + 1)
}

func (p page) writeCell(off int, key string, val []byte, version uint64) {
	binary.LittleEndian.PutUint16(p.buf[off:off+2], uint16(len(key)))
	binary.LittleEndian.PutUint16(p.buf[off+2:off+4], uint16(len(val)))
	binary.LittleEndian.PutUint64(p.buf[off+4:off+12], version)
	copy(p.buf[off+cellHeaderSize:], key)
	copy(p.buf[off+cellHeaderSize+len(key):], val)
}

// update rewrites slot i's value. Same-length values are patched in place;
// otherwise the old cell becomes garbage and a new cell is written (the
// caller has checked fitsUpdate). Returns false when the page cannot hold
// the longer value even after compaction, in which case the caller deletes
// here and reinserts elsewhere in the chain.
func (p page) update(i int, key string, val []byte, version uint64, scratch []byte) bool {
	off, cl := p.slot(i)
	kl := int(binary.LittleEndian.Uint16(p.buf[off : off+2]))
	oldVl := int(binary.LittleEndian.Uint16(p.buf[off+2 : off+4]))
	if len(val) == oldVl {
		binary.LittleEndian.PutUint64(p.buf[off+4:off+12], version)
		copy(p.buf[off+cellHeaderSize+kl:], val)
		return true
	}
	newCl := cellSize(kl, len(val))
	if p.freeSpace()+p.garbage()+cl < newCl {
		return false
	}
	// Retire the old cell, then place the new one (compacting if the
	// contiguous gap is too small — compaction runs after the slot is
	// re-pointed at nothing, so mark it garbage first).
	p.setGarbage(p.garbage() + cl)
	p.setSlot(i, 0, 0)
	if p.freeSpace() < newCl {
		p.compact(scratch)
	}
	noff := p.cellStart() - newCl
	p.writeCell(noff, key, val, version)
	p.setCellStart(noff)
	p.setSlot(i, noff, newCl)
	return true
}

// remove deletes slot i by swapping the last slot into its place.
func (p page) remove(i int) {
	_, cl := p.slot(i)
	n := p.nslots()
	if cl > 0 {
		p.setGarbage(p.garbage() + cl)
	}
	last := n - 1
	if i != last {
		lo, ll := p.slot(last)
		p.setSlot(i, lo, ll)
	}
	p.setSlot(last, 0, 0)
	p.setNslots(last)
}

// compact repacks live cells against the end of the page, zeroing garbage.
// scratch receives the packed image and is copied back.
func (p page) compact(scratch []byte) {
	s := page{buf: scratch}
	s.init()
	s.setNext(p.next())
	write := len(scratch)
	n := p.nslots()
	s.setNslots(n)
	for i := 0; i < n; i++ {
		off, cl := p.slot(i)
		if cl == 0 { // tombstoned slot mid-update
			s.setSlot(i, 0, 0)
			continue
		}
		write -= cl
		copy(scratch[write:], p.buf[off:off+cl])
		s.setSlot(i, write, cl)
	}
	s.setCellStart(write)
	s.setGarbage(0)
	copy(p.buf, scratch)
}

// validate structurally checks a page read from disk: every slot must
// reference a well-formed cell inside the cell area, with no overlap into
// the slot array. It returns nil for a healthy page.
func (p page) validate() error {
	size := len(p.buf)
	if size < pageHeaderSize {
		return fmt.Errorf("pagedstate: page truncated to %d bytes", size)
	}
	n := p.nslots()
	cs := p.cellStart()
	slotEnd := pageHeaderSize + n*slotSize
	if cs > size || slotEnd > cs {
		return fmt.Errorf("pagedstate: page header inconsistent: %d slots, cellStart %d, size %d", n, cs, size)
	}
	for i := 0; i < n; i++ {
		off, cl := p.slot(i)
		if cl == 0 {
			continue
		}
		if cl < cellHeaderSize || off < cs || off+cl > size {
			return fmt.Errorf("pagedstate: slot %d references cell [%d,%d) outside cell area [%d,%d)", i, off, off+cl, cs, size)
		}
		kl := int(binary.LittleEndian.Uint16(p.buf[off : off+2]))
		vl := int(binary.LittleEndian.Uint16(p.buf[off+2 : off+4]))
		if cellHeaderSize+kl+vl != cl {
			return fmt.Errorf("pagedstate: slot %d cell length %d does not match key %d + val %d", i, cl, kl, vl)
		}
	}
	return nil
}
