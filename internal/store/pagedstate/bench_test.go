package pagedstate

import (
	"fmt"
	"testing"
)

// TestSteadyStateAllocs pins the pooled-buffer promise: once the cache and
// WAL batch buffer are warm, a same-length overwrite allocates nothing and
// a hit read allocates only the one value copy handed to the caller.
func TestSteadyStateAllocs(t *testing.T) {
	cfg := testConfig(t)
	cfg.CacheBytes = 1 << 20 // population fits: measure cache hits, not I/O
	s := mustOpen(t, cfg)
	for i := 0; i < 500; i++ {
		s.Set(fmt.Sprintf("acct%04d", i), []byte("balance=00000000"), uint64(i))
	}
	val := []byte("balance=99999999") // same length: in-place page patch
	if a := testing.AllocsPerRun(2000, func() { s.Set("acct0042", val, 9) }); a > 0 {
		t.Errorf("steady-state Set allocates %.2f per op, want 0", a)
	}
	if a := testing.AllocsPerRun(2000, func() { s.Get("acct0042") }); a > 1 {
		t.Errorf("steady-state Get allocates %.2f per op, want <=1 (the value copy)", a)
	}
	if a := testing.AllocsPerRun(2000, func() { s.Get("never-written") }); a > 0 {
		t.Errorf("bloom-gated miss allocates %.2f per op, want 0", a)
	}
}

func benchStore(b *testing.B, cacheBytes int) *Store {
	b.Helper()
	s, err := Open(Config{Dir: b.TempDir(), CacheBytes: cacheBytes, ExpectedKeys: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func BenchmarkSetSequential(b *testing.B) {
	s := benchStore(b, 32<<20)
	val := []byte("balance=000000000000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(fmt.Sprintf("acct%08d", i), val, uint64(i))
	}
}

func BenchmarkGetHit(b *testing.B) {
	s := benchStore(b, 32<<20)
	const n = 100000
	val := []byte("balance=000000000000")
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("acct%08d", i), val, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("acct%08d", i%n))
	}
}

func BenchmarkGetBloomMiss(b *testing.B) {
	s := benchStore(b, 32<<20)
	for i := 0; i < 100000; i++ {
		s.Set(fmt.Sprintf("acct%08d", i), []byte("v"), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("missing%08d", i))
	}
}
