package tablestore

import (
	"sync"
	"testing"
)

func newPerf(t *testing.T) (*Store, *Table) {
	t.Helper()
	s := New()
	tbl, err := s.CreateTable("Performance", []Column{
		{Name: "tx_id", Kind: KindString},
		{Name: "status", Kind: KindString},
		{Name: "latency", Kind: KindInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func TestCreateAndLookup(t *testing.T) {
	s, tbl := newPerf(t)
	if tbl.Name() != "Performance" {
		t.Fatal("table name")
	}
	if _, err := s.CreateTable("Performance", nil); err == nil {
		t.Fatal("duplicate table should error")
	}
	if _, err := s.Table("Nope"); err == nil {
		t.Fatal("unknown table should error")
	}
	if got := s.Names(); len(got) != 1 || got[0] != "Performance" {
		t.Fatalf("names %v", got)
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	s := New()
	_, err := s.CreateTable("T", []Column{{Name: "a", Kind: KindInt64}, {Name: "a", Kind: KindString}})
	if err == nil {
		t.Fatal("duplicate column should error")
	}
}

func TestInsertValidation(t *testing.T) {
	_, tbl := newPerf(t)
	if err := tbl.Insert(Row{Str("x")}); err == nil {
		t.Fatal("wrong arity should error")
	}
	if err := tbl.Insert(Row{Str("x"), Int(1), Int(2)}); err == nil {
		t.Fatal("wrong kind should error")
	}
	if err := tbl.Insert(Row{Str("x"), Str("1"), Int(12)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len %d", tbl.Len())
	}
}

func TestScanAndTruncate(t *testing.T) {
	_, tbl := newPerf(t)
	for i := 0; i < 5; i++ {
		if err := tbl.Insert(Row{Str("tx"), Str("1"), Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sum := int64(0)
	tbl.Scan(func(row Row) bool {
		sum += row[2].I
		return true
	})
	if sum != 10 {
		t.Fatalf("sum %d", sum)
	}
	// Early stop.
	count := 0
	tbl.Scan(func(Row) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop scanned %d", count)
	}
	tbl.Truncate()
	if tbl.Len() != 0 {
		t.Fatal("truncate should empty the table")
	}
}

func TestValueHelpers(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Fatal("int as float")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Fatal("float as float")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Fatal("string should not coerce")
	}
	if !Int(2).Equal(Float(2)) {
		t.Fatal("numeric cross-kind equality")
	}
	if Str("2").Equal(Int(2)) {
		t.Fatal("string/number must not be equal")
	}
	if Int(1).String() != "1" || Str("a").String() != "a" || Float(1.5).String() != "1.5" {
		t.Fatal("string renderings")
	}
	if KindInt64.String() != "INT64" || KindString.String() != "STRING" || KindFloat64.String() != "FLOAT64" {
		t.Fatal("kind strings")
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	_, tbl := newPerf(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = tbl.Insert(Row{Str("tx"), Str("1"), Int(1)})
				tbl.Scan(func(Row) bool { return false })
			}
		}()
	}
	wg.Wait()
	if tbl.Len() != 800 {
		t.Fatalf("len %d, want 800", tbl.Len())
	}
}

func TestColumnIndexAndDrop(t *testing.T) {
	s, tbl := newPerf(t)
	if i, ok := tbl.ColumnIndex("status"); !ok || i != 1 {
		t.Fatalf("status index %d ok=%v", i, ok)
	}
	if _, ok := tbl.ColumnIndex("ghost"); ok {
		t.Fatal("unknown column")
	}
	s.Drop("Performance")
	if _, err := s.Table("Performance"); err == nil {
		t.Fatal("dropped table should be gone")
	}
}
