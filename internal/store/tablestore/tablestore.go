// Package tablestore is the relational store standing in for MySQL in the
// paper's architecture (§III-A): the visualization phase drains the KV store
// into its Performance table, and the minisql engine evaluates the paper's
// Table II statements over it.
package tablestore

import (
	"fmt"
	"sort"
	"sync"
)

// Kind is a column type.
type Kind int

// Column kinds. Times are stored as Int64 nanoseconds, as TIMESTAMPDIFF
// operates on numeric columns.
const (
	KindInt64 Kind = iota + 1
	KindFloat64
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "INT64"
	case KindFloat64:
		return "FLOAT64"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically-typed cell.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Int returns an Int64 value.
func Int(v int64) Value { return Value{Kind: KindInt64, I: v} }

// Float returns a Float64 value.
func Float(v float64) Value { return Value{Kind: KindFloat64, F: v} }

// Str returns a String value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt64:
		return float64(v.I), true
	case KindFloat64:
		return v.F, true
	default:
		return 0, false
	}
}

// String renders the cell for display.
func (v Value) String() string {
	switch v.Kind {
	case KindInt64:
		return fmt.Sprintf("%d", v.I)
	case KindFloat64:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	default:
		return "<nil>"
	}
}

// Equal compares two values, coercing numerics.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindString || o.Kind == KindString {
		return v.Kind == o.Kind && v.S == o.S
	}
	a, _ := v.AsFloat()
	b, _ := o.AsFloat()
	return a == b
}

// Column declares one table column.
type Column struct {
	Name string
	Kind Kind
}

// Table is a schemaful row store. It is safe for concurrent use.
type Table struct {
	name string
	cols []Column
	byN  map[string]int

	mu   sync.RWMutex
	rows [][]Value
}

// Row is one record keyed by column position.
type Row []Value

// Store is a named collection of tables.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty store.
func New() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// CreateTable registers a table schema. Table names are case-sensitive.
func (s *Store) CreateTable(name string, cols []Column) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("tablestore: table %q already exists", name)
	}
	t := &Table{name: name, cols: append([]Column(nil), cols...), byN: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.byN[c.Name]; dup {
			return nil, fmt.Errorf("tablestore: duplicate column %q in table %q", c.Name, name)
		}
		t.byN[c.Name] = i
	}
	s.tables[name] = t
	return t, nil
}

// Table fetches a table by name.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("tablestore: no table %q", name)
	}
	return t, nil
}

// Drop removes a table.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tables, name)
}

// Names lists table names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name reports the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the schema.
func (t *Table) Columns() []Column { return append([]Column(nil), t.cols...) }

// ColumnIndex resolves a column name (exact match) to its position.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.byN[name]
	return i, ok
}

// Insert appends a row after checking arity and kinds.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("tablestore: table %q wants %d columns, got %d", t.name, len(t.cols), len(row))
	}
	for i, v := range row {
		if v.Kind != t.cols[i].Kind {
			return fmt.Errorf("tablestore: table %q column %q wants %v, got %v", t.name, t.cols[i].Name, t.cols[i].Kind, v.Kind)
		}
	}
	t.mu.Lock()
	t.rows = append(t.rows, append(Row(nil), row...))
	t.mu.Unlock()
	return nil
}

// InsertBatch appends several rows atomically.
func (t *Table) InsertBatch(rows []Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Scan invokes fn for every row until fn returns false. The row slice must
// not be retained or mutated.
func (t *Table) Scan(fn func(row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r) {
			return
		}
	}
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	t.rows = nil
	t.mu.Unlock()
}
