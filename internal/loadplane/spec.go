// Package loadplane is the distributed traffic-generation layer: a
// coordinator partitions a population of simulated clients across workers,
// each worker generates open-loop arrivals for its client range with
// bounded resident memory, and the coordinator merges the windowed metrics
// the workers stream back — aligned on the shared virtual clock — into one
// deterministic series.
//
// Determinism is by construction, at three levels:
//
//  1. Every client's arrival process is a pure function of (Seed, client
//     index): worker count and partitioning cannot change what any client
//     generates.
//  2. Per-window metrics are integers; the merge is integer addition, which
//     is associative and commutative, so report batching, interleaving and
//     network reordering cannot change the totals.
//  3. The service model that turns merged arrivals into
//     admitted/served/latency columns runs on the coordinator, over the
//     merged series only, in integer arithmetic.
//
// Consequently a same-seed in-process run and a multi-process run — at any
// worker count — produce byte-identical merged CSVs.
package loadplane

import (
	"fmt"
	"time"
)

// ServiceModel is the coordinator-side admission/service queue that merged
// arrivals flow through: a fluid single-queue approximation of a SUT's
// ingress (Rate served per second, a bounded admission queue, and a floor
// latency). Integer fields keep its evaluation bit-deterministic.
type ServiceModel struct {
	// RatePerSec is the service capacity in arrivals per virtual second.
	RatePerSec int64 `json:"rate_per_sec"`
	// QueueCap bounds the admission queue; arrivals beyond it are dropped.
	QueueCap int64 `json:"queue_cap"`
	// BaseLatency is the unloaded service latency.
	BaseLatency time.Duration `json:"base_latency_ns"`
}

// Spec declares one load-plane run: the client population, its open-loop
// arrival law, the virtual measurement window grid, and the service model
// applied to the merged arrival stream.
type Spec struct {
	// Clients is the simulated client population.
	Clients int `json:"clients"`
	// RatePerClient is each client's mean open-loop arrival rate (1/s);
	// inter-arrival gaps are exponential.
	RatePerClient float64 `json:"rate_per_client"`
	// Duration is the virtual span generated.
	Duration time.Duration `json:"duration_ns"`
	// Window is the metric window width on the shared virtual clock.
	Window time.Duration `json:"window_ns"`
	// Seed drives every client's arrival process.
	Seed int64 `json:"seed"`
	// Service parameterises the merged-stream queue model.
	Service ServiceModel `json:"service"`
	// BatchWindows is how many windows a worker packs into one report
	// batch over RPC.
	BatchWindows int `json:"batch_windows"`
}

// DefaultSpec is a 100k-client open-loop run: 0.5 arrivals/s per client
// against a 40k/s service — saturated 25%, so queue dynamics are visible
// without being degenerate.
func DefaultSpec() Spec {
	return Spec{
		Clients:       100_000,
		RatePerClient: 0.5,
		Duration:      30 * time.Second,
		Window:        time.Second,
		Seed:          7,
		Service: ServiceModel{
			RatePerSec:  40_000,
			QueueCap:    80_000,
			BaseLatency: 20 * time.Millisecond,
		},
		BatchWindows: 8,
	}
}

func (s *Spec) fillDefaults() {
	def := DefaultSpec()
	if s.Clients <= 0 {
		s.Clients = def.Clients
	}
	if s.RatePerClient <= 0 {
		s.RatePerClient = def.RatePerClient
	}
	if s.Duration <= 0 {
		s.Duration = def.Duration
	}
	if s.Window <= 0 {
		s.Window = def.Window
	}
	if s.Seed == 0 {
		s.Seed = def.Seed
	}
	if s.Service.RatePerSec <= 0 {
		s.Service.RatePerSec = def.Service.RatePerSec
	}
	if s.Service.QueueCap <= 0 {
		s.Service.QueueCap = def.Service.QueueCap
	}
	if s.Service.BaseLatency <= 0 {
		s.Service.BaseLatency = def.Service.BaseLatency
	}
	if s.BatchWindows <= 0 {
		s.BatchWindows = def.BatchWindows
	}
}

// maxClients bounds the population: client indexes travel as uint32 through
// the calendar ring.
const maxClients = 1 << 31

// Validate rejects impossible specs. The exported entry points call it
// after filling defaults.
func (s Spec) Validate() error {
	if s.Clients < 1 || s.Clients > maxClients {
		return fmt.Errorf("loadplane: clients %d out of range [1, %d]", s.Clients, maxClients)
	}
	if s.RatePerClient <= 0 {
		return fmt.Errorf("loadplane: rate per client %g must be positive", s.RatePerClient)
	}
	if s.Window <= 0 || s.Duration <= 0 {
		return fmt.Errorf("loadplane: window %v and duration %v must be positive", s.Window, s.Duration)
	}
	if s.Duration < s.Window {
		return fmt.Errorf("loadplane: duration %v shorter than one window %v", s.Duration, s.Window)
	}
	if s.Windows() > 1<<22 {
		return fmt.Errorf("loadplane: %d windows exceeds the merge bound; widen Window", s.Windows())
	}
	if s.Service.RatePerSec <= 0 || s.Service.QueueCap <= 0 {
		return fmt.Errorf("loadplane: service model rate %d and queue cap %d must be positive",
			s.Service.RatePerSec, s.Service.QueueCap)
	}
	return nil
}

// Windows is the number of whole metric windows the run covers.
func (s Spec) Windows() int64 {
	return int64(s.Duration / s.Window)
}

// OfferedPerSec is the population's aggregate open-loop arrival rate.
func (s Spec) OfferedPerSec() float64 {
	return float64(s.Clients) * s.RatePerClient
}

// Range is a half-open client-index range [Lo, Hi) assigned to one worker.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len is the number of clients in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// String renders the range.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Valid reports whether the range is well-formed and within the population.
func (r Range) Valid(clients int) bool {
	return 0 <= r.Lo && r.Lo < r.Hi && r.Hi <= clients
}

// PartitionClients splits the population into contiguous, disjoint,
// covering ranges, sizes differing by at most one. The split is a pure
// function of (clients, workers), so coordinator and tests always agree on
// who owns which client.
func PartitionClients(clients, workers int) []Range {
	if workers < 1 {
		workers = 1
	}
	if workers > clients {
		workers = clients
	}
	ranges := make([]Range, 0, workers)
	base := clients / workers
	extra := clients % workers
	lo := 0
	for w := 0; w < workers; w++ {
		n := base
		if w < extra {
			n++
		}
		ranges = append(ranges, Range{Lo: lo, Hi: lo + n})
		lo += n
	}
	return ranges
}
