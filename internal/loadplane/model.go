package loadplane

import (
	"fmt"

	"hammer/internal/metrics"
)

// Row is one evaluated window of the load-plane run: the merged arrival
// stream pushed through the service model. Every field is an integer so the
// series — and the CSV rendered from it — is bit-deterministic regardless of
// how the arrivals were generated or merged.
type Row struct {
	Window   int64  `json:"window"`
	Offered  int64  `json:"offered"`
	Admitted int64  `json:"admitted"`
	Dropped  int64  `json:"dropped"`
	Served   int64  `json:"served"`
	Queue    int64  `json:"queue"` // backlog at window end
	Busy     int64  `json:"busy"`  // clients that fired this window
	// AvgLatencyNs is the mean sojourn estimate for arrivals admitted this
	// window: base latency plus the time to drain the backlog ahead of the
	// window's midpoint arrival.
	AvgLatencyNs int64  `json:"avg_latency_ns"`
	Checksum     uint64 `json:"checksum"`
}

// Evaluate pushes the merged arrival series through the spec's service
// model: a fluid single queue with capacity RatePerSec, admission bounded by
// QueueCap, arrivals beyond the bound dropped. All arithmetic is int64 over
// already-merged integers, so the output is partition-invariant by
// construction.
func Evaluate(spec Spec, merged []metrics.Window) []Row {
	spec.fillDefaults()
	winNs := spec.Window.Nanoseconds()
	capPerWin := spec.Service.RatePerSec * winNs / 1e9
	baseNs := spec.Service.BaseLatency.Nanoseconds()

	rows := make([]Row, len(merged))
	var queue int64
	for i := range merged {
		w := &merged[i]
		offered := w.Arrivals
		room := spec.Service.QueueCap - queue
		if room < 0 {
			room = 0
		}
		adm := offered
		if adm > room {
			adm = room
		}
		dropped := offered - adm
		// The window's midpoint admitted arrival waits behind the backlog
		// at window start plus half the window's own admissions.
		waitNs := (queue + adm/2) * 1e9 / spec.Service.RatePerSec
		served := queue + adm
		if served > capPerWin {
			served = capPerWin
		}
		queue = queue + adm - served
		rows[i] = Row{
			Window:       w.Index,
			Offered:      offered,
			Admitted:     adm,
			Dropped:      dropped,
			Served:       served,
			Queue:        queue,
			Busy:         w.Busy,
			AvgLatencyNs: baseNs + waitNs,
			Checksum:     w.Checksum,
		}
	}
	return rows
}

// ClosedLoop models the same population driven Caliper-style: each client
// waits for its previous request to clear the queue (think time = mean
// inter-arrival gap) before issuing the next, and blocks — rather than
// dropping — when the admission queue is full. Issue rate is therefore
// capped by idle clients, and idle clients shrink as requests back up: the
// feedback loop that makes closed-loop injection self-limiting. In steady
// state the issue rate collapses to the service rate regardless of the
// population's true demand — the coordinated-omission blind spot the
// open-loop plane exists to avoid. It consumes no arrival stream because
// the feedback loop, not the arrival law, dominates.
func ClosedLoop(spec Spec) []Row {
	spec.fillDefaults()
	winNs := spec.Window.Nanoseconds()
	capPerWin := spec.Service.RatePerSec * winNs / 1e9
	baseNs := spec.Service.BaseLatency.Nanoseconds()
	thinkNs := int64(1e9 / spec.RatePerClient)
	if thinkNs < 1 {
		thinkNs = 1
	}
	windows := spec.Windows()

	rows := make([]Row, windows)
	var queue, blocked int64
	for w := int64(0); w < windows; w++ {
		// Clients with a request in flight — queued, being served, or
		// blocked at the full queue — are not thinking; only the idle
		// remainder can issue.
		idle := int64(spec.Clients) - queue - blocked
		if idle < 0 {
			idle = 0
		}
		issued := idle * winNs / thinkNs
		if issued > idle {
			issued = idle
		}
		wanting := blocked + issued
		room := spec.Service.QueueCap - queue
		if room < 0 {
			room = 0
		}
		adm := wanting
		if adm > room {
			adm = room
		}
		blocked = wanting - adm
		waitNs := (queue + adm/2) * 1e9 / spec.Service.RatePerSec
		served := queue + adm
		if served > capPerWin {
			served = capPerWin
		}
		queue = queue + adm - served
		rows[w] = Row{
			Window:       w,
			Offered:      issued,
			Admitted:     adm,
			Dropped:      0, // closed loops block; they never shed load
			Served:       served,
			Queue:        queue,
			Busy:         issued,
			AvgLatencyNs: baseNs + waitNs,
		}
	}
	return rows
}

// RowsCSV renders an evaluated series as CSV header + records. Derived
// float columns (latency in ms) are formatted from the integer fields at
// this final step only, so identical rows always render identical bytes.
func RowsCSV(rows []Row) (header []string, records [][]string) {
	header = []string{
		"window", "offered", "admitted", "dropped", "served",
		"queue", "busy", "avg_latency_ms", "checksum",
	}
	records = make([][]string, len(rows))
	for i, r := range rows {
		records[i] = []string{
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%d", r.Offered),
			fmt.Sprintf("%d", r.Admitted),
			fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%d", r.Served),
			fmt.Sprintf("%d", r.Queue),
			fmt.Sprintf("%d", r.Busy),
			fmt.Sprintf("%.3f", float64(r.AvgLatencyNs)/1e6),
			fmt.Sprintf("%016x", r.Checksum),
		}
	}
	return header, records
}
