package loadplane

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"hammer/internal/metrics"
)

func planeSpec() Spec {
	return Spec{
		Clients:       2000,
		RatePerClient: 3,
		Duration:      6 * time.Second,
		Window:        time.Second,
		Seed:          99,
		Service:       ServiceModel{RatePerSec: 5000, QueueCap: 10000, BaseLatency: 5 * time.Millisecond},
		BatchWindows:  2,
	}
}

// startCoordinator boots a coordinator on a loopback port.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, string) {
	t.Helper()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, "http://" + addr
}

// TestLoopbackRoundTripByteIdentity is the tentpole acceptance test: a
// coordinator with 3 workers over loopback RPC must merge to the exact
// series — and the exact CSV bytes — of a same-seed in-process run.
func TestLoopbackRoundTripByteIdentity(t *testing.T) {
	spec := planeSpec()
	coord, url := startCoordinator(t, CoordinatorConfig{Spec: spec, Workers: 3, Liveness: 5 * time.Second})

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "w" + string(rune('0'+i))
			if _, err := RunWorker(context.Background(), name, url, 5*time.Second); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := InProcess(context.Background(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(ref) {
		t.Fatalf("distributed run has %d windows, in-process %d", len(merged), len(ref))
	}
	for i := range ref {
		if merged[i] != ref[i] {
			t.Fatalf("window %d diverged over RPC: %+v vs %+v", i, merged[i], ref[i])
		}
	}
	distCSV, err := MergedCSV(spec, merged)
	if err != nil {
		t.Fatal(err)
	}
	refCSV, err := MergedCSV(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	if distCSV != refCSV {
		t.Fatal("distributed CSV bytes differ from in-process CSV")
	}
	if len(coord.Lost()) != 0 {
		t.Fatalf("clean run should lose no ranges: %v", coord.Lost())
	}
}

// crashingWorker joins, reports a few batches, then vanishes without Done —
// simulating a mid-run process crash.
func crashingWorker(t *testing.T, name, url string, batches int) {
	t.Helper()
	w := NewWorker(name, url, 5*time.Second)
	defer w.Close()
	var join JoinResult
	if err := w.conn.Call(context.Background(), MethodJoin, JoinParams{Worker: name}, &join); err != nil {
		t.Fatal(err)
	}
	sent := 0
	err := GenerateRange(context.Background(), join.Spec, join.Range, join.StartWindow, func(ws []metrics.Window) error {
		if sent >= batches {
			return context.Canceled // die mid-stream
		}
		sent++
		return w.conn.Call(context.Background(), MethodReport, ReportParams{Worker: name, Windows: ws}, nil)
	})
	if err == nil {
		t.Fatal("crashing worker should not finish")
	}
}

// TestWorkerCrashRecovery: a worker dies mid-run; the coordinator must not
// hang — the liveness monitor frees the range and Wait's recovery
// regenerates the missing windows byte-identically.
func TestWorkerCrashRecovery(t *testing.T) {
	spec := planeSpec()
	coord, url := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workers: 2, Liveness: 200 * time.Millisecond, RecoverLost: true,
	})

	// Worker 0 completes; worker 1 crashes after one batch.
	if _, err := RunWorker(context.Background(), "alive", url, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	crashingWorker(t, "doomed", url, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lost := coord.Lost()
	if len(lost) != 1 {
		t.Fatalf("expected exactly one lost range, got %v", lost)
	}
	ref, err := InProcess(context.Background(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if merged[i] != ref[i] {
			t.Fatalf("recovered window %d diverged: %+v vs %+v", i, merged[i], ref[i])
		}
	}
}

// TestWorkerCrashNoRecovery: without RecoverLost the coordinator still
// returns — with an error naming the incomplete range — instead of hanging.
func TestWorkerCrashNoRecovery(t *testing.T) {
	spec := planeSpec()
	coord, url := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workers: 2, Liveness: 100 * time.Millisecond,
	})
	if _, err := RunWorker(context.Background(), "alive", url, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	crashingWorker(t, "doomed", url, 1)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	_, err := coord.Wait(ctx)
	if err == nil {
		t.Fatal("incomplete run without recovery should error")
	}
	if !strings.Contains(err.Error(), "incomplete ranges") {
		t.Fatalf("error should name incomplete ranges: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait hung past its context")
	}
}

// TestWorkerRejoinResumes: a crashed worker rejoining under the same name
// gets its old range back with StartWindow at the received prefix, and the
// finished run still matches the reference bytes.
func TestWorkerRejoinResumes(t *testing.T) {
	spec := planeSpec()
	coord, url := startCoordinator(t, CoordinatorConfig{
		Spec: spec, Workers: 2, Liveness: 10 * time.Second,
	})
	if _, err := RunWorker(context.Background(), "steady", url, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	crashingWorker(t, "phoenix", url, 2) // 2 batches × 2 windows = prefix 4

	// Rejoin under the same name: the coordinator must hand back the same
	// range starting at the contiguous prefix.
	w := NewWorker("phoenix", url, 5*time.Second)
	defer w.Close()
	var join JoinResult
	if err := w.conn.Call(context.Background(), MethodJoin, JoinParams{Worker: "phoenix"}, &join); err != nil {
		t.Fatal(err)
	}
	if join.StartWindow != 4 {
		t.Fatalf("rejoin should resume at window 4, got %d", join.StartWindow)
	}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := InProcess(context.Background(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if merged[i] != ref[i] {
			t.Fatalf("resumed run window %d diverged: %+v vs %+v", i, merged[i], ref[i])
		}
	}
}

// TestReportValidation: out-of-order and out-of-range reports are rejected;
// duplicate (retried) reports are accepted idempotently.
func TestReportValidation(t *testing.T) {
	spec := planeSpec()
	coord, _ := startCoordinator(t, CoordinatorConfig{Spec: spec, Workers: 1})
	if _, e := coord.join("w"); e != nil {
		t.Fatal(e)
	}
	w0 := metrics.Window{Index: 0, Arrivals: 5, Checksum: 1}
	if _, e := coord.report("w", []metrics.Window{w0}); e != nil {
		t.Fatal(e)
	}
	// Retry of the same batch: idempotent, and the stored window unchanged.
	if _, e := coord.report("w", []metrics.Window{w0}); e != nil {
		t.Fatalf("duplicate report should be idempotent: %v", e)
	}
	if got := coord.states[0].windows[0]; got != w0 {
		t.Fatalf("duplicate report mutated stored window: %+v", got)
	}
	if _, e := coord.report("w", []metrics.Window{{Index: 3}}); e == nil {
		t.Fatal("gap report should be rejected")
	}
	if _, e := coord.report("w", []metrics.Window{{Index: spec.Windows()}}); e == nil {
		t.Fatal("out-of-range report should be rejected")
	}
	if _, e := coord.report("stranger", nil); e == nil {
		t.Fatal("unknown worker should be rejected")
	}
	if _, e := coord.markDone("w"); e == nil {
		t.Fatal("done before all windows should be rejected")
	}
}

// TestJoinAssignmentsAndOverflow: playbook-pinned assignments are honored
// and a surplus worker is turned away with a useful error.
func TestJoinAssignmentsAndOverflow(t *testing.T) {
	spec := planeSpec()
	ranges := PartitionClients(spec.Clients, 2)
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec: spec, Workers: 2,
		Assignments: map[string]Range{"pinned": ranges[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, e := coord.join("pinned")
	if e != nil {
		t.Fatal(e)
	}
	if res.Range != ranges[1] {
		t.Fatalf("pinned worker got %v, want %v", res.Range, ranges[1])
	}
	if res.Spec.Clients != spec.Clients || res.Spec.Seed != spec.Seed {
		t.Fatalf("join should carry the spec: %+v", res.Spec)
	}
	if _, e := coord.join("free"); e != nil {
		t.Fatal(e)
	}
	if _, e := coord.join("surplus"); e == nil {
		t.Fatal("third worker against two ranges should be refused")
	}

	// A pin that matches no partition range is a config error.
	if _, err := NewCoordinator(CoordinatorConfig{
		Spec: spec, Workers: 2,
		Assignments: map[string]Range{"odd": {Lo: 1, Hi: 2}},
	}); err == nil {
		t.Fatal("assignment outside the partition should fail")
	}
}
