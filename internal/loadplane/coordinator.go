package loadplane

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"hammer/internal/metrics"
	"hammer/internal/rpc"
)

// Wire methods of the coordinator's control plane.
const (
	MethodJoin   = "loadplane.join"
	MethodReport = "loadplane.report"
	MethodDone   = "loadplane.done"
)

// JoinParams identifies a worker asking for (or reclaiming) a client range.
type JoinParams struct {
	Worker string `json:"worker"`
}

// JoinResult hands the worker everything it needs: the full spec, its client
// range, and the window to resume from (non-zero when rejoining after a
// crash — the coordinator already holds the prefix).
type JoinResult struct {
	Spec        Spec  `json:"spec"`
	Range       Range `json:"range"`
	StartWindow int64 `json:"start_window"`
}

// ReportParams carries one batch of consecutive metric windows for the
// worker's range. Reports are idempotent: windows the coordinator already
// holds are ignored, so transport-level retries are safe.
type ReportParams struct {
	Worker  string           `json:"worker"`
	Windows []metrics.Window `json:"windows"`
}

// ReportResult acknowledges a batch.
type ReportResult struct {
	OK bool `json:"ok"`
}

// DoneParams marks a worker's range finished.
type DoneParams struct {
	Worker string `json:"worker"`
}

// CoordinatorConfig parameterises a run of the control plane.
type CoordinatorConfig struct {
	// Spec is the workload; defaults are filled.
	Spec Spec
	// Workers is how many ranges to partition the population into.
	Workers int
	// Liveness is the real-time silence after which an assigned,
	// unfinished worker is declared lost. Zero means 10 s.
	Liveness time.Duration
	// RecoverLost makes the coordinator regenerate a lost range's missing
	// windows locally — arrival generation is a pure function of (seed,
	// client), so recovery is byte-identical to what the worker would have
	// sent. When false, Wait reports lost ranges as an error instead.
	RecoverLost bool
	// Assignments optionally pins worker names to specific ranges (e.g.
	// from a deploy playbook). Unnamed workers draw from the remaining
	// ranges in order.
	Assignments map[string]Range
}

// rangeState tracks one partition's progress. Workers emit windows in
// order, so received windows always form a contiguous prefix; prefix is
// both the dedup cursor and the rejoin point.
type rangeState struct {
	rng     Range
	windows []metrics.Window // filled [0, prefix)
	prefix  int64
	worker  string // current owner; "" when unassigned or lost
	last    time.Time
	done    bool
	lost    bool // true if a worker was declared dead while owning it
}

// Coordinator is the run's control plane: it assigns client ranges to
// joining workers, folds their window reports into per-range series, and
// merges the series on the shared virtual clock once every range is
// complete. It never hangs on a dead worker: liveness deadlines mark the
// range lost and (by default) regenerate it locally.
type Coordinator struct {
	cfg    CoordinatorConfig
	ranges []Range

	mu     sync.Mutex
	states []*rangeState
	byName map[string]int // worker name → range index

	complete chan struct{}
	once     sync.Once

	srv      *rpc.Server
	stopMon  chan struct{}
	monOnce  sync.Once
	monWg    sync.WaitGroup
}

// NewCoordinator builds the control plane for cfg.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.Spec.fillDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Liveness <= 0 {
		cfg.Liveness = 10 * time.Second
	}
	ranges := PartitionClients(cfg.Spec.Clients, cfg.Workers)
	c := &Coordinator{
		cfg:      cfg,
		ranges:   ranges,
		states:   make([]*rangeState, len(ranges)),
		byName:   make(map[string]int),
		complete: make(chan struct{}),
		stopMon:  make(chan struct{}),
	}
	windows := cfg.Spec.Windows()
	for i, rng := range ranges {
		c.states[i] = &rangeState{rng: rng, windows: make([]metrics.Window, windows)}
	}
	for name, rng := range cfg.Assignments {
		idx := -1
		for i, r := range ranges {
			if r == rng {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("loadplane: assignment %s=%v matches no partition range", name, rng)
		}
		if owner := c.states[idx].worker; owner != "" {
			return nil, fmt.Errorf("loadplane: range %v assigned to both %s and %s", rng, owner, name)
		}
		c.states[idx].worker = name
		c.byName[name] = idx
	}
	return c, nil
}

// Spec returns the (default-filled) spec the coordinator runs.
func (c *Coordinator) Spec() Spec { return c.cfg.Spec }

// Ranges returns the partition handed to workers.
func (c *Coordinator) Ranges() []Range { return c.ranges }

// Mux returns a method table carrying the loadplane.* control plane,
// suitable for rpc.NewMuxServer.
func (c *Coordinator) Mux() *rpc.Mux {
	mux := rpc.NewMux()
	mux.Handle(MethodJoin, func(params json.RawMessage) (any, *rpc.Error) {
		var p JoinParams
		if e := rpc.DecodeParams(params, &p); e != nil {
			return nil, e
		}
		return c.join(p.Worker)
	})
	mux.Handle(MethodReport, func(params json.RawMessage) (any, *rpc.Error) {
		var p ReportParams
		if e := rpc.DecodeParams(params, &p); e != nil {
			return nil, e
		}
		return c.report(p.Worker, p.Windows)
	})
	mux.Handle(MethodDone, func(params json.RawMessage) (any, *rpc.Error) {
		var p DoneParams
		if e := rpc.DecodeParams(params, &p); e != nil {
			return nil, e
		}
		return c.markDone(p.Worker)
	})
	return mux
}

// Listen serves the control plane on addr and starts the liveness monitor;
// it returns the bound address for workers to dial.
func (c *Coordinator) Listen(addr string) (string, error) {
	c.srv = rpc.NewMuxServer(c.Mux())
	bound, err := c.srv.Listen(addr)
	if err != nil {
		return "", err
	}
	c.monWg.Add(1)
	go c.monitor()
	return bound, nil
}

// Close stops the server and the liveness monitor.
func (c *Coordinator) Close() error {
	c.monOnce.Do(func() { close(c.stopMon) })
	c.monWg.Wait()
	if c.srv != nil {
		return c.srv.Close()
	}
	return nil
}

func (c *Coordinator) join(name string) (*JoinResult, *rpc.Error) {
	if name == "" {
		return nil, &rpc.Error{Code: rpc.CodeInvalidParams, Message: "worker name required"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, known := c.byName[name]
	if !known {
		idx = -1
		for i, st := range c.states {
			if st.worker == "" && !st.done {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, &rpc.Error{Code: rpc.CodeInvalidParams,
				Message: fmt.Sprintf("no range available for worker %q (%d ranges, all claimed)", name, len(c.states))}
		}
		c.byName[name] = idx
	}
	st := c.states[idx]
	st.worker = name
	st.last = time.Now()
	return &JoinResult{Spec: c.cfg.Spec, Range: st.rng, StartWindow: st.prefix}, nil
}

func (c *Coordinator) report(name string, ws []metrics.Window) (*ReportResult, *rpc.Error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.byName[name]
	if !ok {
		return nil, &rpc.Error{Code: rpc.CodeInvalidParams, Message: "unknown worker " + name}
	}
	st := c.states[idx]
	st.last = time.Now()
	total := c.cfg.Spec.Windows()
	for i := range ws {
		w := ws[i]
		if w.Index < 0 || w.Index >= total {
			return nil, &rpc.Error{Code: rpc.CodeInvalidParams,
				Message: fmt.Sprintf("window index %d outside [0, %d)", w.Index, total)}
		}
		if w.Index < st.prefix {
			continue // duplicate from a retried report: idempotent
		}
		if w.Index > st.prefix {
			return nil, &rpc.Error{Code: rpc.CodeInvalidParams,
				Message: fmt.Sprintf("window %d reported before %d; reports must be in order", w.Index, st.prefix)}
		}
		st.windows[w.Index] = w
		st.prefix++
	}
	// Completion is declared by loadplane.done, not inferred from the last
	// report: the worker must receive its final ack before the coordinator
	// can consider shutting down.
	return &ReportResult{OK: true}, nil
}

func (c *Coordinator) markDone(name string) (*ReportResult, *rpc.Error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.byName[name]
	if !ok {
		return nil, &rpc.Error{Code: rpc.CodeInvalidParams, Message: "unknown worker " + name}
	}
	st := c.states[idx]
	if st.prefix != c.cfg.Spec.Windows() {
		return nil, &rpc.Error{Code: rpc.CodeInvalidParams,
			Message: fmt.Sprintf("done with %d/%d windows reported", st.prefix, c.cfg.Spec.Windows())}
	}
	st.done = true
	c.checkComplete()
	return &ReportResult{OK: true}, nil
}

// checkComplete fires the completion signal once every range is done.
// Callers hold c.mu.
func (c *Coordinator) checkComplete() {
	for _, st := range c.states {
		if !st.done {
			return
		}
	}
	c.once.Do(func() { close(c.complete) })
}

// monitor declares silent workers lost so a crash never wedges the run:
// the range is released for a rejoining worker, and Wait's recovery path
// regenerates whatever nobody finished.
func (c *Coordinator) monitor() {
	defer c.monWg.Done()
	tick := time.NewTicker(c.cfg.Liveness / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stopMon:
			return
		case <-c.complete:
			return
		case now := <-tick.C:
			c.mu.Lock()
			for _, st := range c.states {
				if st.done || st.worker == "" {
					continue
				}
				if now.Sub(st.last) > c.cfg.Liveness {
					delete(c.byName, st.worker)
					st.worker = ""
					st.lost = true
				}
			}
			c.mu.Unlock()
		}
	}
}

// Lost returns the ranges whose worker was declared dead at least once,
// sorted by Lo — the run's casualty report.
func (c *Coordinator) Lost() []Range {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Range
	for _, st := range c.states {
		if st.lost {
			out = append(out, st.rng)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// Wait blocks until every range is complete or ctx ends, then returns the
// merged window series. If ranges are unfinished when ctx ends (worker
// crashes with no rejoin), RecoverLost regenerates the missing windows
// locally — byte-identical by purity — otherwise Wait returns an error
// naming the incomplete ranges. Either way it returns; it never hangs.
func (c *Coordinator) Wait(ctx context.Context) ([]metrics.Window, error) {
	select {
	case <-c.complete:
	case <-ctx.Done():
	}
	c.mu.Lock()
	var incomplete []*rangeState
	for _, st := range c.states {
		if !st.done {
			incomplete = append(incomplete, st)
		}
	}
	c.mu.Unlock()
	if len(incomplete) > 0 {
		if !c.cfg.RecoverLost {
			names := make([]string, len(incomplete))
			for i, st := range incomplete {
				names[i] = st.rng.String()
			}
			return nil, fmt.Errorf("loadplane: run ended with incomplete ranges %v", names)
		}
		for _, st := range incomplete {
			// Regenerate from the contiguous prefix. Purity guarantees the
			// suffix equals what the lost worker would have reported.
			c.mu.Lock()
			start := st.prefix
			rng := st.rng
			c.mu.Unlock()
			suffix, err := CollectRange(context.Background(), c.cfg.Spec, rng, start)
			if err != nil {
				return nil, fmt.Errorf("loadplane: recover %v: %w", rng, err)
			}
			c.mu.Lock()
			for i := range suffix {
				if suffix[i].Index >= st.prefix {
					st.windows[suffix[i].Index] = suffix[i]
				}
			}
			st.prefix = c.cfg.Spec.Windows()
			st.done = true
			st.lost = true
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	parts := make([][]metrics.Window, len(c.states))
	for i, st := range c.states {
		parts[i] = st.windows
	}
	c.mu.Unlock()
	return metrics.MergeWindows(parts...), nil
}
