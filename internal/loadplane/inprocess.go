package loadplane

import (
	"context"
	"encoding/csv"
	"fmt"
	"strings"
	"sync"

	"hammer/internal/metrics"
)

// InProcess runs the spec's client population as `workers` in-process shards
// — the same partitioning the coordinator would hand to remote workers — and
// merges their window series. It is the reference implementation the
// distributed path must match byte-for-byte, and the test harness for
// partition invariance.
func InProcess(ctx context.Context, spec Spec, workers int) ([]metrics.Window, error) {
	spec.fillDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ranges := PartitionClients(spec.Clients, workers)
	parts := make([][]metrics.Window, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, rng := range ranges {
		wg.Add(1)
		go func(i int, rng Range) {
			defer wg.Done()
			parts[i], errs[i] = CollectRange(ctx, spec, rng, 0)
		}(i, rng)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return metrics.MergeWindows(parts...), nil
}

// MergedCSV evaluates the merged series under the spec's service model and
// renders it as one CSV document. This is the byte-comparison artifact: a
// same-seed in-process run and a distributed run at any worker count must
// produce identical output.
func MergedCSV(spec Spec, merged []metrics.Window) (string, error) {
	if err := metrics.ValidateWindows(merged); err != nil {
		return "", err
	}
	header, records := RowsCSV(Evaluate(spec, merged))
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(header); err != nil {
		return "", fmt.Errorf("loadplane: csv header: %w", err)
	}
	if err := w.WriteAll(records); err != nil {
		return "", fmt.Errorf("loadplane: csv rows: %w", err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	return b.String(), nil
}
