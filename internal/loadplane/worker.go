package loadplane

import (
	"context"
	"fmt"
	"time"

	"hammer/internal/metrics"
	"hammer/internal/rpc"
)

// Worker is one traffic-generation process: it joins a coordinator, receives
// a client range, streams its windowed metrics back in batches over a
// keep-alive retrying connection, and reports done. All workload knowledge
// comes from the coordinator, so the worker binary is spec-free.
type Worker struct {
	name string
	conn *rpc.Conn
}

// NewWorker prepares a worker named name against the coordinator at url.
// RPC calls ride the default bounded-backoff retry policy, so transient
// coordinator hiccups do not kill the worker; report idempotence on the
// coordinator makes those retries safe.
func NewWorker(name, url string, timeout time.Duration) *Worker {
	return &Worker{name: name, conn: rpc.NewConn(url, timeout, rpc.DefaultRetry())}
}

// Close releases the worker's connection.
func (w *Worker) Close() { w.conn.Close() }

// Run executes the worker's whole life: join (or rejoin — the coordinator
// returns the resume window), generate the assigned range, stream report
// batches, mark done. It returns the number of windows reported.
func (w *Worker) Run(ctx context.Context) (int64, error) {
	var join JoinResult
	if err := w.conn.Call(ctx, MethodJoin, JoinParams{Worker: w.name}, &join); err != nil {
		return 0, fmt.Errorf("loadplane: worker %s join: %w", w.name, err)
	}
	var reported int64
	err := GenerateRange(ctx, join.Spec, join.Range, join.StartWindow, func(ws []metrics.Window) error {
		var res ReportResult
		if err := w.conn.Call(ctx, MethodReport, ReportParams{Worker: w.name, Windows: ws}, &res); err != nil {
			return fmt.Errorf("loadplane: worker %s report: %w", w.name, err)
		}
		reported += int64(len(ws))
		return nil
	})
	if err != nil {
		return reported, err
	}
	if err := w.conn.Call(ctx, MethodDone, DoneParams{Worker: w.name}, nil); err != nil {
		return reported, fmt.Errorf("loadplane: worker %s done: %w", w.name, err)
	}
	return reported, nil
}

// RunWorker is the one-call form used by cmd/hammer-worker: dial, run,
// close.
func RunWorker(ctx context.Context, name, url string, timeout time.Duration) (int64, error) {
	w := NewWorker(name, url, timeout)
	defer w.Close()
	return w.Run(ctx)
}
