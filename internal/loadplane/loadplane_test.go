package loadplane

import (
	"context"
	"strings"
	"testing"
	"time"

	"hammer/internal/metrics"
)

// smallSpec is a population small enough for fast tests but large enough
// that partitionings genuinely interleave arrivals.
func smallSpec() Spec {
	return Spec{
		Clients:       3000,
		RatePerClient: 2,
		Duration:      8 * time.Second,
		Window:        time.Second,
		Seed:          42,
		Service:       ServiceModel{RatePerSec: 4000, QueueCap: 9000, BaseLatency: 10 * time.Millisecond},
		BatchWindows:  3,
	}
}

func TestPartitionClientsProperties(t *testing.T) {
	cases := []struct{ clients, workers int }{
		{10, 3}, {10, 1}, {10, 10}, {10, 20}, {1_000_000, 7}, {5, 4},
	}
	for _, c := range cases {
		ranges := PartitionClients(c.clients, c.workers)
		lo := 0
		minLen, maxLen := c.clients+1, -1
		for _, r := range ranges {
			if r.Lo != lo {
				t.Fatalf("%v: ranges not contiguous at %v", c, r)
			}
			if !r.Valid(c.clients) {
				t.Fatalf("%v: invalid range %v", c, r)
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			lo = r.Hi
		}
		if lo != c.clients {
			t.Fatalf("%v: ranges cover %d of %d clients", c, lo, c.clients)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("%v: unbalanced ranges (%d..%d)", c, minLen, maxLen)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	s := smallSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Clients = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero clients should fail")
	}
	bad = s
	bad.Duration = time.Millisecond
	if err := bad.Validate(); err == nil {
		t.Fatal("duration shorter than a window should fail")
	}
	bad = s
	bad.Window = time.Nanosecond
	if err := bad.Validate(); err == nil {
		t.Fatal("absurd window count should fail")
	}
}

// TestPartitionInvariance is the core determinism property: generating the
// same population as 1, 3, or 5 shards must merge to the identical series —
// arrivals, busy counts, and the arrival-multiset checksum all equal.
func TestPartitionInvariance(t *testing.T) {
	spec := smallSpec()
	ctx := context.Background()
	ref, err := InProcess(ctx, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.SumArrivals(ref) == 0 {
		t.Fatal("reference run generated no arrivals")
	}
	for _, workers := range []int{2, 3, 5} {
		got, err := InProcess(ctx, spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%d workers: %d windows, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%d workers: window %d diverged: %+v vs %+v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestMergedCSVByteIdentity pins the end artifact: the full CSV, including
// the service-model columns, is byte-identical across partitionings.
func TestMergedCSVByteIdentity(t *testing.T) {
	spec := smallSpec()
	ctx := context.Background()
	var want string
	for i, workers := range []int{1, 4} {
		merged, err := InProcess(ctx, spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		csv, err := MergedCSV(spec, merged)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = csv
			if !strings.HasPrefix(csv, "window,offered,") {
				t.Fatalf("unexpected header: %q", csv[:40])
			}
			continue
		}
		if csv != want {
			t.Fatalf("CSV bytes diverged between 1 and %d workers", workers)
		}
	}
}

// TestSeedChangesStream: a different seed must produce a different arrival
// multiset (checksum catches it even if totals happened to collide).
func TestSeedChangesStream(t *testing.T) {
	a := smallSpec()
	b := smallSpec()
	b.Seed = 43
	ra, err := InProcess(context.Background(), a, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := InProcess(context.Background(), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ra {
		if ra[i].Checksum != rb[i].Checksum {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical checksums")
	}
}

// TestResumeFromWindow: generating with startWindow=k must emit exactly the
// suffix of the full series — the worker-rejoin path.
func TestResumeFromWindow(t *testing.T) {
	spec := smallSpec()
	rng := Range{Lo: 100, Hi: 900}
	full, err := CollectRange(context.Background(), spec, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	suffix, err := CollectRange(context.Background(), spec, rng, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(suffix) != len(full)-k {
		t.Fatalf("suffix has %d windows, want %d", len(suffix), len(full)-k)
	}
	for i := range suffix {
		if suffix[i] != full[k+i] {
			t.Fatalf("resumed window %d diverged: %+v vs %+v", k+i, suffix[i], full[k+i])
		}
	}
}

// TestGenerateRangeBatching: emit batches respect BatchWindows and arrive in
// window order.
func TestGenerateRangeBatching(t *testing.T) {
	spec := smallSpec()
	var sizes []int
	var lastIdx int64 = -1
	err := GenerateRange(context.Background(), spec, Range{Lo: 0, Hi: 50}, 0, func(ws []metrics.Window) error {
		sizes = append(sizes, len(ws))
		for _, w := range ws {
			if w.Index != lastIdx+1 {
				t.Fatalf("out-of-order emit: %d after %d", w.Index, lastIdx)
			}
			lastIdx = w.Index
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastIdx != spec.Windows()-1 {
		t.Fatalf("emitted through window %d, want %d", lastIdx, spec.Windows()-1)
	}
	for i, n := range sizes {
		if n > spec.BatchWindows {
			t.Fatalf("batch %d has %d windows, cap %d", i, n, spec.BatchWindows)
		}
	}
}

func TestGenerateRangeCancellation(t *testing.T) {
	spec := smallSpec()
	spec.Clients = 50_000
	spec.Duration = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := GenerateRange(ctx, spec, Range{Lo: 0, Hi: spec.Clients}, 0, func([]metrics.Window) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestGenerateRangeRejectsBadInput(t *testing.T) {
	spec := smallSpec()
	sink := func([]metrics.Window) error { return nil }
	if err := GenerateRange(context.Background(), spec, Range{Lo: 5, Hi: 5}, 0, sink); err == nil {
		t.Fatal("empty range should fail")
	}
	if err := GenerateRange(context.Background(), spec, Range{Lo: 0, Hi: spec.Clients + 1}, 0, sink); err == nil {
		t.Fatal("out-of-population range should fail")
	}
	if err := GenerateRange(context.Background(), spec, Range{Lo: 0, Hi: 10}, -1, sink); err == nil {
		t.Fatal("negative start window should fail")
	}
}

// TestOpenLoopQueueDynamics: with offered load above capacity the open-loop
// model must grow the queue, saturate at the cap, and start dropping —
// exactly what closed-loop injection hides.
func TestOpenLoopQueueDynamics(t *testing.T) {
	spec := smallSpec()
	spec.RatePerClient = 4 // 12k/s offered vs 4k/s service
	merged, err := InProcess(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := Evaluate(spec, merged)
	if rows[0].Queue <= 0 {
		t.Fatal("overloaded queue should grow in the first window")
	}
	last := rows[len(rows)-1]
	// Steady state: admission refills exactly what service drains, so the
	// end-of-window backlog pins at cap − (service rate × window).
	capPerWin := spec.Service.RatePerSec * spec.Window.Nanoseconds() / 1e9
	if want := spec.Service.QueueCap - capPerWin; last.Queue != want {
		t.Fatalf("queue should pin at %d, got %d", want, last.Queue)
	}
	if prev := rows[len(rows)-2]; prev.Queue != last.Queue {
		t.Fatalf("queue should be pinned: %d then %d", prev.Queue, last.Queue)
	}
	if last.Dropped <= 0 {
		t.Fatal("saturated run should drop arrivals")
	}
	if last.AvgLatencyNs <= rows[0].AvgLatencyNs {
		t.Fatal("latency should climb with the backlog")
	}
	var offered, admitted, dropped int64
	for _, r := range rows {
		offered += r.Offered
		admitted += r.Admitted
		dropped += r.Dropped
	}
	if offered != admitted+dropped {
		t.Fatalf("conservation: offered %d != admitted %d + dropped %d", offered, admitted, dropped)
	}
}

// TestClosedLoopSelfLimits: the closed-loop model's issue rate must collapse
// toward service capacity instead of exposing the true offered load.
func TestClosedLoopSelfLimits(t *testing.T) {
	spec := smallSpec()
	spec.Clients = 20_000
	spec.RatePerClient = 4 // open-loop would offer 80k/s vs 4k/s service
	rows := ClosedLoop(spec)
	last := rows[len(rows)-1]
	// In steady state the loop issues roughly what the service drains — far
	// below the open-loop offered rate.
	if last.Offered > 2*spec.Service.RatePerSec {
		t.Fatalf("closed loop issued %d/s; feedback should cap it near %d/s", last.Offered, spec.Service.RatePerSec)
	}
	if last.Dropped != 0 {
		t.Fatalf("self-limited loop should not drop, got %d", last.Dropped)
	}
}

// TestShardFootprintBounded pins the bounded-memory claim: 1M clients fit in
// ~16 MB of fixed-layout state.
func TestShardFootprintBounded(t *testing.T) {
	fp := ShardFootprint(Range{Lo: 0, Hi: 1_000_000})
	if fp > 20<<20 {
		t.Fatalf("1M-client footprint %d exceeds 20 MB", fp)
	}
}
