package loadplane

import (
	"context"
	"fmt"
	"math"

	"hammer/internal/metrics"
)

// ringWindows is the calendar-ring horizon in windows. Inter-arrival gaps
// are clamped below the horizon, so a client's next arrival always lands
// within ringWindows of the window being drained; with the default 1 s
// window and sane per-client rates the clamp is astronomically unlikely to
// bind (P ≈ e^(-rate·255s)), and when it does it binds identically in every
// partitioning.
const ringWindows = 256

// splitmix64 is the SplitMix64 finaliser: a bijective 64-bit mixer. Each
// (seed, client, arrival#) triple maps through it to an independent draw, so
// client processes are stateless functions of their identity — the property
// the whole determinism story leans on.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// arrivalBits draws the 64 random bits for client c's k-th arrival.
func arrivalBits(seed int64, c uint32, k uint32) uint64 {
	return splitmix64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(c)<<32 ^ uint64(k))
}

// expGapNs converts 64 random bits into an exponential inter-arrival gap
// with the given mean, quantised to nanoseconds and clamped to [1, maxGap].
// The float excursion (one Log, one multiply) is immediately quantised; Go's
// math.Log is a portable software implementation, so the quantised gap is a
// deterministic function of the bits on every platform this repo targets.
func expGapNs(bits uint64, meanNs float64, maxGapNs int64) int64 {
	// 53 high bits → u ∈ (0, 1): never 0 (offset by 0.5), never 1.
	u := (float64(bits>>11) + 0.5) / (1 << 53)
	gap := int64(-math.Log(u) * meanNs)
	if gap < 1 {
		gap = 1
	}
	if gap > maxGapNs {
		gap = maxGapNs
	}
	return gap
}

// ShardFootprint estimates the fixed-layout resident bytes one worker needs
// for a client range: 8-byte next-arrival plus 4-byte arrival counter per
// client, one 4-byte ring entry per in-flight client, and the ring headers.
// It is O(clients in range) and independent of how many arrivals the run
// generates — the bounded-memory claim in one formula.
func ShardFootprint(rng Range) int64 {
	return int64(rng.Len())*(8+4+4) + ringWindows*24
}

// GenerateRange runs the open-loop arrival processes of clients [rng.Lo,
// rng.Hi) across the spec's window grid, calling emit with consecutive
// batches of BatchWindows windows. Windows below startWindow are generated
// (client state must be replayed) but not emitted — the resume path for a
// worker that rejoins after a crash. emit owns the slice it receives.
//
// Memory is bounded by ShardFootprint: client state lives in two flat
// arrays, and arrivals stream through per-window counters — nothing
// per-arrival is retained.
func GenerateRange(ctx context.Context, spec Spec, rng Range, startWindow int64, emit func([]metrics.Window) error) error {
	spec.fillDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	if !rng.Valid(spec.Clients) {
		return fmt.Errorf("loadplane: range %v invalid for %d clients", rng, spec.Clients)
	}
	windows := spec.Windows()
	if startWindow < 0 || startWindow > windows {
		return fmt.Errorf("loadplane: start window %d outside [0, %d]", startWindow, windows)
	}

	winNs := spec.Window.Nanoseconds()
	endNs := windows * winNs
	meanNs := 1e9 / spec.RatePerClient
	maxGapNs := int64(ringWindows-1) * winNs

	n := rng.Len()
	next := make([]int64, n)  // absolute ns of the client's next arrival
	count := make([]uint32, n) // arrivals drawn so far (the hash-stream cursor)
	ring := make([][]uint32, ringWindows)

	push := func(local int, atNs int64) {
		if atNs >= endNs {
			return // the client falls silent past the run's end
		}
		w := atNs / winNs
		ring[w%ringWindows] = append(ring[w%ringWindows], uint32(local))
	}

	for local := 0; local < n; local++ {
		client := uint32(rng.Lo + local)
		gap := expGapNs(arrivalBits(spec.Seed, client, 0), meanNs, maxGapNs)
		count[local] = 1
		next[local] = gap
		push(local, gap)
	}

	batch := make([]metrics.Window, 0, spec.BatchWindows)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		out := batch
		batch = make([]metrics.Window, 0, spec.BatchWindows)
		return emit(out)
	}

	for w := int64(0); w < windows; w++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		stat := metrics.Window{Index: w}
		winEnd := (w + 1) * winNs
		slot := w % ringWindows
		bucket := ring[slot]
		ring[slot] = bucket[:0]
		for _, local := range bucket {
			client := uint32(rng.Lo + int(local))
			fired := false
			for next[local] < winEnd {
				bits := arrivalBits(spec.Seed, client, count[local])
				stat.Arrivals++
				stat.Checksum += splitmix64(bits ^ 0xa5a5a5a5a5a5a5a5)
				fired = true
				next[local] += expGapNs(bits, meanNs, maxGapNs)
				count[local]++
			}
			if fired {
				stat.Busy++
			}
			push(int(local), next[local])
		}
		if w >= startWindow {
			batch = append(batch, stat)
			if len(batch) >= spec.BatchWindows {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// CollectRange is GenerateRange with an in-memory sink: it returns the full
// window series for the range. Tests and the coordinator's lost-range
// recovery use it.
func CollectRange(ctx context.Context, spec Spec, rng Range, startWindow int64) ([]metrics.Window, error) {
	var out []metrics.Window
	err := GenerateRange(ctx, spec, rng, startWindow, func(ws []metrics.Window) error {
		out = append(out, ws...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
