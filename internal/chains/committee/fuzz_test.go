package committee

import (
	"bytes"
	"testing"

	"hammer/internal/chain"
)

// FuzzCommitteeVotes fuzzes the round-message decoders and the quorum
// arithmetic behind them: arbitrary bytes must never panic, anything that
// decodes must round-trip bit-for-bit, and however hostile the decoded votes
// are, a Tally must never count past the committee size or report a quorum
// below the 2/3+1 threshold.
func FuzzCommitteeVotes(f *testing.F) {
	f.Add(EncodeVote(Vote{Height: 1, Round: 0, Kind: Prevote, Validator: 0}))
	f.Add(EncodeVote(Vote{Height: 9, Round: 2, Kind: Precommit, Validator: 3,
		BlockHash: chain.Hash{0xaa, 0xbb}}))
	f.Add(EncodeVotes([]Vote{
		{Height: 5, Round: 1, Kind: Prevote, Validator: 0},
		{Height: 5, Round: 1, Kind: Prevote, Validator: 2},
		{Height: 5, Round: 1, Kind: Prevote, Validator: 3},
	}))
	f.Add([]byte{})
	f.Add([]byte{voteMagic})
	f.Add(bytes.Repeat([]byte{0xff}, VoteSize))

	f.Fuzz(func(t *testing.T, raw []byte) {
		if v, err := DecodeVote(raw); err == nil {
			if got := EncodeVote(v); !bytes.Equal(got, raw) {
				t.Fatalf("vote round trip diverged:\n in %x\nout %x", raw, got)
			}
		}
		votes, err := DecodeVotes(raw)
		if err != nil {
			return
		}
		if got := EncodeVotes(votes); !bytes.Equal(got, raw) {
			t.Fatalf("vote-set round trip diverged:\n in %x\nout %x", raw, got)
		}
		if len(votes) == 0 {
			return
		}
		// Bounded quorum math: feed the decoded set (plus duplicates) into a
		// tally targeted at the first vote; the count must stay within the
		// committee and Reached must agree with the threshold.
		lead := votes[0]
		for _, size := range []int{1, 4, 7} {
			tl := NewTally(lead.Height, lead.Round, lead.Kind, lead.BlockHash, size)
			for _, v := range votes {
				tl.Add(v)
				tl.Add(v) // replays must not double-count
			}
			if tl.Count() > size {
				t.Fatalf("tally counted %d votes in a committee of %d", tl.Count(), size)
			}
			if tl.Reached() != (tl.Count() >= Quorum(size)) {
				t.Fatalf("Reached()=%v disagrees with count %d vs quorum %d", tl.Reached(), tl.Count(), Quorum(size))
			}
		}
	})
}
