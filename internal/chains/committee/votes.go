package committee

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hammer/internal/chain"
)

// Vote wire format and quorum math for the committee's round messages. The
// chain itself counts votes through Tally, so the same bounded arithmetic the
// fuzz target hammers is what decides consensus in simulation runs.

// VoteKind tags a round message's phase.
type VoteKind uint8

// Round message kinds.
const (
	// Prevote is the first voting phase: a validator has seen the proposal.
	Prevote VoteKind = 1
	// Precommit is the second phase: a validator has seen a prevote quorum.
	Precommit VoteKind = 2
)

func (k VoteKind) String() string {
	switch k {
	case Prevote:
		return "prevote"
	case Precommit:
		return "precommit"
	default:
		return fmt.Sprintf("votekind(%d)", uint8(k))
	}
}

// MaxCommittee bounds validator indices on the wire; decoders reject
// anything larger so a hostile message cannot size allocations.
const MaxCommittee = 1 << 16

// Vote is one validator's signed round message for a proposed block.
type Vote struct {
	Height    uint64
	Round     uint32
	Kind      VoteKind
	Validator uint32
	BlockHash chain.Hash
}

// Wire layout: magic, kind, height, round, validator, block hash.
const (
	voteMagic = 0xC7
	// VoteSize is the encoded size of one vote in bytes.
	VoteSize = 1 + 1 + 8 + 4 + 4 + 32
	// maxVotesPerMessage bounds a vote-set message; a committee never needs
	// more than one vote per validator per phase.
	maxVotesPerMessage = MaxCommittee
)

// EncodeVote serialises one vote into its fixed 50-byte wire form.
func EncodeVote(v Vote) []byte {
	buf := make([]byte, VoteSize)
	buf[0] = voteMagic
	buf[1] = byte(v.Kind)
	binary.BigEndian.PutUint64(buf[2:], v.Height)
	binary.BigEndian.PutUint32(buf[10:], v.Round)
	binary.BigEndian.PutUint32(buf[14:], v.Validator)
	copy(buf[18:], v.BlockHash[:])
	return buf
}

// DecodeVote parses one vote, rejecting short input, trailing bytes, bad
// magic, unknown kinds and out-of-range validator indices.
func DecodeVote(data []byte) (Vote, error) {
	var v Vote
	if len(data) != VoteSize {
		return v, fmt.Errorf("committee: vote is %d bytes, want %d", len(data), VoteSize)
	}
	if data[0] != voteMagic {
		return v, fmt.Errorf("committee: bad vote magic 0x%02x", data[0])
	}
	v.Kind = VoteKind(data[1])
	if v.Kind != Prevote && v.Kind != Precommit {
		return v, fmt.Errorf("committee: unknown vote kind %d", data[1])
	}
	v.Height = binary.BigEndian.Uint64(data[2:])
	v.Round = binary.BigEndian.Uint32(data[10:])
	v.Validator = binary.BigEndian.Uint32(data[14:])
	if v.Validator >= MaxCommittee {
		return v, fmt.Errorf("committee: validator index %d exceeds the committee bound %d", v.Validator, MaxCommittee)
	}
	copy(v.BlockHash[:], data[18:])
	return v, nil
}

// EncodeVotes serialises a vote set (a quorum certificate) as a big-endian
// count followed by the fixed-size votes.
func EncodeVotes(votes []Vote) []byte {
	buf := make([]byte, 4, 4+len(votes)*VoteSize)
	binary.BigEndian.PutUint32(buf, uint32(len(votes)))
	for _, v := range votes {
		buf = append(buf, EncodeVote(v)...)
	}
	return buf
}

// DecodeVotes parses a vote-set message with a bounded count: the declared
// length must match the payload exactly and stay under maxVotesPerMessage,
// so a forged header cannot drive allocation.
func DecodeVotes(data []byte) ([]Vote, error) {
	if len(data) < 4 {
		return nil, errors.New("committee: vote set shorter than its count header")
	}
	n := binary.BigEndian.Uint32(data)
	if n > maxVotesPerMessage {
		return nil, fmt.Errorf("committee: vote set declares %d votes, bound is %d", n, maxVotesPerMessage)
	}
	body := data[4:]
	if len(body) != int(n)*VoteSize {
		return nil, fmt.Errorf("committee: vote set body is %d bytes, want %d for %d votes", len(body), int(n)*VoteSize, n)
	}
	votes := make([]Vote, 0, n)
	for i := 0; i < int(n); i++ {
		v, err := DecodeVote(body[i*VoteSize : (i+1)*VoteSize])
		if err != nil {
			return nil, fmt.Errorf("committee: vote %d: %w", i, err)
		}
		votes = append(votes, v)
	}
	return votes, nil
}

// MaxFaulty is the number of Byzantine validators an n-member committee
// tolerates: f = (n-1)/3.
func MaxFaulty(n int) int {
	if n < 1 {
		return 0
	}
	return (n - 1) / 3
}

// Quorum is the vote count needed to decide: strictly more than two thirds
// of the committee.
func Quorum(n int) int {
	if n < 1 {
		return 1
	}
	return 2*n/3 + 1
}

// Tally counts distinct validators' votes toward one (height, round, kind,
// block) target. It is equivocation-safe: a validator is counted at most
// once however many copies of its vote arrive, and votes for any other
// target or an out-of-range validator are rejected rather than counted.
type Tally struct {
	height    uint64
	round     uint32
	kind      VoteKind
	blockHash chain.Hash
	committee int
	seen      []uint64 // validator bitset
	count     int
}

// NewTally builds a tally for one voting target in a committee of the given
// size. Sizes outside [1, MaxCommittee] are clamped.
func NewTally(height uint64, round uint32, kind VoteKind, blockHash chain.Hash, committee int) *Tally {
	if committee < 1 {
		committee = 1
	}
	if committee > MaxCommittee {
		committee = MaxCommittee
	}
	return &Tally{
		height: height, round: round, kind: kind, blockHash: blockHash,
		committee: committee,
		seen:      make([]uint64, (committee+63)/64),
	}
}

// Add counts the vote if it matches the tally's target, comes from an
// in-range validator, and is that validator's first counted vote. It
// reports whether the count advanced.
func (t *Tally) Add(v Vote) bool {
	if v.Height != t.height || v.Round != t.round || v.Kind != t.kind || v.BlockHash != t.blockHash {
		return false
	}
	if int(v.Validator) >= t.committee {
		return false
	}
	word, bit := v.Validator/64, uint64(1)<<(v.Validator%64)
	if t.seen[word]&bit != 0 {
		return false
	}
	t.seen[word] |= bit
	t.count++
	return true
}

// Count reports how many distinct validators have voted for the target.
func (t *Tally) Count() int { return t.count }

// Reached reports whether the tally holds a quorum.
func (t *Tally) Reached() bool { return t.count >= Quorum(t.committee) }
